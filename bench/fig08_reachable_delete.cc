// Figure 8: `reachable` view maintenance as deletions are performed.
// After inserting all link tuples, a shuffled fraction is deleted one at a
// time ("each deletion occurs in isolation"); metrics cover the deletion
// phase only. DRed's over-delete/re-derive makes it an order of magnitude
// more expensive than absorption provenance here.

#include <cstdio>

#include "bench_util.h"
#include "engine/reachable_runtime.h"
#include "topology/transit_stub.h"
#include "topology/workload.h"

using namespace recnet;
using namespace recnet::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  BenchEnv env = GetBenchEnv();
  // Slightly smaller default than Figure 7 so that even the eager
  // strategies fully converge on the insertion phase before deletions are
  // measured.
  Topology topo = env.paper_scale
                      ? DefaultTopology(/*dense=*/true, env)
                      : MakeTransitStubWithTargetLinks(60, true, env.seed);
  std::printf("Figure 8 workload: %d nodes, %zu link tuples; delete-phase "
              "metrics only%s\n",
              topo.num_nodes, topo.num_link_tuples(),
              env.paper_scale ? " (paper scale)" : " (reduced scale)");

  // The paper drops Relative Eager after Figure 7 (it does not converge);
  // we keep the remaining four series.
  std::vector<Strategy> strategies = {
      {"DRed", ProvMode::kSet, ShipMode::kDirect},
      {"Relative Lazy", ProvMode::kRelative, ShipMode::kLazy},
      {"Absorption Eager", ProvMode::kAbsorption, ShipMode::kEager},
      {"Absorption Lazy", ProvMode::kAbsorption, ShipMode::kLazy},
  };
  FigurePrinter fig("Figure 8", "reachable query, deletion workload",
                    "deletion ratio",
                    {"DRed", "Relative Lazy", "Absorption Eager",
                     "Absorption Lazy"});

  for (const Strategy& strategy : strategies) {
    for (double ratio : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      ReachableRuntime rt(topo.num_nodes,
                          MakeOptions(strategy, 12, 200'000'000));
      for (const LinkTuple& l : InsertionPrefix(topo, 1.0, env.seed)) {
        rt.InsertLink(l.src, l.dst);
      }
      if (!rt.Run()) continue;
      rt.ResetMetrics();  // Measure the deletion phase in isolation.
      bool ok = true;
      for (const LinkTuple& l : DeletionSequence(topo, ratio, env.seed)) {
        rt.DeleteLink(l.src, l.dst);
        if (!rt.Run()) {
          ok = false;
          break;
        }
      }
      (void)ok;
      fig.Add(strategy.name, ratio, rt.Metrics());
      std::fprintf(stderr, "  [fig8] %s ratio=%.2f done (%llu msgs)\n",
                   strategy.name.c_str(), ratio,
                   static_cast<unsigned long long>(rt.Metrics().messages));
    }
  }
  fig.PrintAll();
  if (!args.json_path.empty() && !fig.WriteJson(args.json_path)) return 1;
  return 0;
}
