// Figure 14: aggregate-selection performance on the shortestPath +
// cheapestCostPath query over dense and sparse 100-node-class topologies.
//
//   Multi AggSel  — one execution pruning on MIN(cost) and MIN(length)
//                   simultaneously, producing both aggregate views.
//   Single AggSel — aggregate selection on one metric at a time; producing
//                   both views takes two executions (cost-pruned +
//                   hops-pruned), whose costs are summed. This is why the
//                   paper finds Multi AggSel costs about half of Single.
//   No AggSel     — unrestricted path enumeration; cyclic topologies do
//                   not terminate, so runs are budget-capped and reported
//                   as ">" values (the paper's ">5min" bars).

#include <cstdio>

#include "bench_util.h"
#include "engine/shortest_path_runtime.h"
#include "topology/workload.h"

using namespace recnet;
using namespace recnet::bench;

namespace {

RunMetrics RunOnce(const Topology& topo, AggSelPolicy policy,
                   uint64_t budget, uint64_t seed) {
  RuntimeOptions opts;
  opts.prov = ProvMode::kAbsorption;
  opts.ship = ShipMode::kLazy;
  opts.num_physical = 12;
  opts.message_budget = budget;
  opts.time_budget_s = 60;
  ShortestPathRuntime rt(topo.num_nodes, opts, policy);
  for (const LinkTuple& l : InsertionPrefix(topo, 1.0, seed)) {
    rt.InsertLink(l.src, l.dst, l.cost_ms);
  }
  rt.Run();
  return rt.Metrics();
}

RunMetrics Sum(const RunMetrics& a, const RunMetrics& b) {
  RunMetrics out = a;
  out.comm_mb += b.comm_mb;
  out.state_mb += b.state_mb;
  out.wall_seconds += b.wall_seconds;
  out.sim_seconds += b.sim_seconds;
  out.messages += b.messages;
  out.kill_messages += b.kill_messages;
  out.batches += b.batches;
  // A summed cell is tagged exactly like a single-run cell: converged only
  // if both executions converged, with the abort accounting carried over so
  // a non-converged cell always shows aborted_runs > 0.
  out.aborted_runs += b.aborted_runs;
  out.dropped_messages += b.dropped_messages;
  out.per_tuple_prov_bytes =
      (a.per_tuple_prov_bytes + b.per_tuple_prov_bytes) / 2;
  out.converged = a.converged && b.converged;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  BenchEnv env = GetBenchEnv();
  FigurePrinter fig("Figure 14",
                    "aggregate selections on shortestPath/cheapestCostPath",
                    "density (1=dense, 0=sparse)",
                    {"Multi AggSel", "Single AggSel", "No AggSel"});

  for (bool dense : {true, false}) {
    Topology topo = DefaultTopology(dense, env);
    double x = dense ? 1.0 : 0.0;
    std::fprintf(stderr, "  [fig14] %s: %d nodes, %zu link tuples\n",
                 dense ? "dense" : "sparse", topo.num_nodes,
                 topo.num_link_tuples());

    fig.Add("Multi AggSel", x,
            RunOnce(topo, AggSelPolicy::kMulti, 50'000'000, env.seed));
    std::fprintf(stderr, "  [fig14] multi done\n");
    RunMetrics cost =
        RunOnce(topo, AggSelPolicy::kCost, 50'000'000, env.seed);
    RunMetrics hops =
        RunOnce(topo, AggSelPolicy::kHops, 50'000'000, env.seed);
    fig.Add("Single AggSel", x, Sum(cost, hops));
    std::fprintf(stderr, "  [fig14] single done\n");
    // No AggSel enumerates unboundedly many paths on cyclic inputs: cap it.
    fig.Add("No AggSel", x,
            RunOnce(topo, AggSelPolicy::kNone, 400'000, env.seed));
    std::fprintf(stderr, "  [fig14] none done (budget-capped)\n");
  }
  fig.PrintAll();
  if (!args.json_path.empty() && !fig.WriteJson(args.json_path)) return 1;
  return 0;
}
