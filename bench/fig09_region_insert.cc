// Figure 9: `region` query computation as insertions (sensor triggers) are
// performed. Workload per the paper: a 100-sensor grid with 5 seed groups;
// all seeds trigger, then half of the remaining sensors trigger. The X axis
// is the fraction of those triggers applied.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "topology/sensor_grid.h"

using namespace recnet;
using namespace recnet::bench;

namespace {

// Query 3 as executed through the Engine facade (the sensor deployment
// itself comes from EngineOptions::field).
constexpr char kQuery3[] = R"(
  activeRegion(r,x) :- seed(r,x), triggered(x).
  activeRegion(r,y) :- activeRegion(r,x), triggered(x), near(x,y).
  regionSizes(r,count<x>) :- activeRegion(r,x).
)";

// Seeds first, then a shuffled half of the remaining sensors.
std::vector<int> TriggerPool(const SensorField& field, uint64_t seed) {
  std::vector<int> pool = field.seed_sensors;
  std::vector<int> rest;
  for (int s = 0; s < field.num_sensors; ++s) {
    if (std::find(pool.begin(), pool.end(), s) == pool.end()) {
      rest.push_back(s);
    }
  }
  Rng rng(seed);
  rng.Shuffle(&rest);
  rest.resize(rest.size() / 2);
  pool.insert(pool.end(), rest.begin(), rest.end());
  return pool;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  BenchEnv env = GetBenchEnv();
  SensorGridOptions grid;
  grid.seed = env.seed;
  SensorField field = MakeSensorGrid(grid);
  std::vector<int> pool = TriggerPool(field, env.seed);
  std::printf("Figure 9 workload: %d sensors, %zu regions, %zu triggers\n",
              field.num_sensors, field.seed_sensors.size(), pool.size());

  FigurePrinter fig("Figure 9", "region query, insertion workload",
                    "insertion ratio",
                    {"DRed", "Absorption Eager", "Absorption Lazy"});

  fig.set_shards(args.shards);
  for (const Strategy& strategy : RegionStrategies()) {
    for (double ratio : {0.5, 0.75, 1.0}) {
      EngineOptions options;
      options.field = field;
      options.runtime = MakeOptions(strategy, 12, 30'000'000);
      options.runtime.shards = args.shards;
      auto engine = Engine::Compile(kQuery3, options);
      if (!engine.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     engine.status().ToString().c_str());
        return 1;
      }
      size_t count = static_cast<size_t>(ratio * pool.size());
      for (size_t i = 0; i < count; ++i) {
        (*engine)->Insert("triggered", {double(pool[i])});
      }
      (void)(*engine)->Apply();
      fig.Add(strategy.name, ratio, (*engine)->Metrics());
    }
  }
  // Shard sweep (determinism contract): the full-trigger workload re-run at
  // 1/2/4 router shards must produce bit-identical traffic counters; only
  // wall time may move. Recorded into the JSON for cross-PR diffing.
  std::printf("shard sweep (full trigger set):\n");
  for (const Strategy& strategy : RegionStrategies()) {
    if (strategy.ship == ShipMode::kEager) continue;
    for (int shards : {1, 2, 4}) {
      EngineOptions options;
      options.field = field;
      options.runtime = MakeOptions(strategy, 12, 30'000'000);
      options.runtime.shards = shards;
      auto engine = Engine::Compile(kQuery3, options);
      if (!engine.ok()) return 1;
      for (int sensor : pool) {
        (*engine)->Insert("triggered", {double(sensor)});
      }
      (void)(*engine)->Apply();
      fig.AddShardCell(strategy.name, 1.0, shards, (*engine)->Metrics());
    }
  }

  fig.PrintAll();
  if (!args.json_path.empty() && !fig.WriteJson(args.json_path)) return 1;
  return 0;
}
