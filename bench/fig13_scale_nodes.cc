// Figure 13: varying the number of physical query-processing peers for the
// reachable view (DRed vs Absorption Lazy). Logical network nodes are
// hash-mapped onto {4, 8, 12, 16, 24} physical peers; only cross-peer
// traffic costs bandwidth. Per the paper, panels (b) and (c) report
// *per-peer* communication and state, and convergence uses the simulated
// parallel-time estimate.

#include <cstdio>

#include "bench_util.h"
#include "engine/reachable_runtime.h"
#include "topology/workload.h"

using namespace recnet;
using namespace recnet::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  BenchEnv env = GetBenchEnv();
  Topology topo = DefaultTopology(/*dense=*/true, env);
  std::printf("Figure 13 workload: %d nodes, %zu link tuples; insert all + "
              "delete 10%%\n",
              topo.num_nodes, topo.num_link_tuples());

  FigurePrinter fig("Figure 13", "reachable, varying physical peers",
                    "physical peers", {"DRed", "Absorption Lazy"});

  std::vector<Strategy> strategies = {
      {"DRed", ProvMode::kSet, ShipMode::kDirect},
      {"Absorption Lazy", ProvMode::kAbsorption, ShipMode::kLazy},
  };
  for (const Strategy& strategy : strategies) {
    for (int peers : {4, 8, 12, 16, 24}) {
      ReachableRuntime rt(topo.num_nodes,
                          MakeOptions(strategy, peers, 100'000'000));
      for (const LinkTuple& l : InsertionPrefix(topo, 1.0, env.seed)) {
        rt.InsertLink(l.src, l.dst);
      }
      if (!rt.Run()) continue;
      for (const LinkTuple& l : DeletionSequence(topo, 0.1, env.seed)) {
        rt.DeleteLink(l.src, l.dst);
        if (!rt.Run()) break;
      }
      RunMetrics m = rt.Metrics();
      // Report per-peer communication and state (the paper computes
      // per-node cost here), and the simulated parallel convergence time.
      m.comm_mb /= peers;
      m.state_mb /= peers;
      m.wall_seconds = m.sim_seconds;
      fig.Add(strategy.name, peers, m);
      std::fprintf(stderr, "  [fig13] %s peers=%d done\n",
                   strategy.name.c_str(), peers);
    }
  }
  fig.PrintAll();
  if (!args.json_path.empty() && !fig.WriteJson(args.json_path)) return 1;
  std::printf("Note: panel (d) reports the simulated parallel convergence "
              "estimate (single-core work divided across peers plus "
              "cross-peer latency).\n");
  return 0;
}
