#ifndef RECNET_BENCH_BENCH_UTIL_H_
#define RECNET_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "engine/metrics.h"
#include "engine/runtime_base.h"
#include "fault/fault.h"
#include "topology/topology.h"

namespace recnet {
namespace bench {

// Experiment scale. The default runs a reduced topology so the whole bench
// suite completes in minutes on one core; RECNET_PAPER_SCALE=1 switches to
// the paper's 100-node / ~200-bidirectional-link GT-ITM default.
struct BenchEnv {
  bool paper_scale = false;
  uint64_t seed = 1;
};

BenchEnv GetBenchEnv();

// Command-line options shared by the figure benches.
struct BenchArgs {
  // --json=PATH: after the text tables, write the figure's cells as a
  // machine-readable JSON document (see FigurePrinter::WriteJson).
  std::string json_path;
  // --shards=N: router shards for the main figure cells (default 1, the
  // sequential drain). Results and traffic counters are bit-identical for
  // any shard count; wall times are what changes.
  int shards = 1;
  // --faults=SPEC: seeded fault plan for the run (see fault::ParseFaultSpec,
  // e.g. "seed=7,drop=0.01,dup=0.005"). Benches with a lossy mode run their
  // convergence-under-loss workload when the plan has drop/dup rates; the
  // parsed plan also lands in the JSON meta block so a trajectory records
  // the faults it ran under. A malformed spec aborts with the parse error
  // (exit code 2).
  fault::FaultPlan faults;
  // The spec string as given (empty = no --faults), for the JSON meta.
  std::string faults_spec;
  // --ckpt-save=PATH / --ckpt-load=PATH: run the bench's checkpoint
  // workload instead of the figure cells — save runs the first half of the
  // workload, snapshots the session to PATH, and finishes; load restores
  // PATH into a fresh process and runs the same second half. Both print a
  // `CKPT-DIGEST <hex>` line over the final counters and view contents; CI
  // diffs the two lines to pin cross-process snapshot determinism.
  std::string ckpt_save;
  std::string ckpt_load;
};

// Parses argv; unknown flags abort with a usage message (exit code 2).
BenchArgs ParseArgs(int argc, char** argv);

// The figure-7/8/13/14 base topology at the chosen scale.
Topology DefaultTopology(bool dense, const BenchEnv& env);

// A named maintenance strategy (series in the figures).
struct Strategy {
  std::string name;
  ProvMode prov;
  ShipMode ship;
};

// The five series of Figures 7-8.
std::vector<Strategy> AllStrategies();
// DRed + the two absorption variants (Figures 9-10).
std::vector<Strategy> RegionStrategies();

RuntimeOptions MakeOptions(const Strategy& strategy, int num_physical,
                           uint64_t budget);

// Collects one RunMetrics per (series, x) cell and prints the figure's four
// panels — (a) per-tuple provenance overhead (B), (b) communication
// overhead (MB), (c) state within operators (MB), (d) convergence time (s)
// — as aligned text tables matching the paper's layout.
class FigurePrinter {
 public:
  FigurePrinter(std::string figure, std::string title, std::string x_label,
                std::vector<std::string> series);

  void Add(const std::string& series, double x, const RunMetrics& m);

  // Records one shard-sweep cell: the same (series, x) workload re-run at
  // `shards` router shards. The sweep documents the sharded drain's
  // determinism contract in the trajectory JSON — messages/kill_messages
  // must be bit-identical down the sweep — plus the wall-clock effect of
  // parallel drains.
  void AddShardCell(const std::string& series, double x, int shards,
                    const RunMetrics& m);

  // Records one convergence-under-loss cell: the (series) full workload
  // re-run under the seeded lossy-link plan `spec` at `shards` shards. The
  // trajectory pins the drop/retry/duplicate counters (fully determined by
  // the plan seed and the workload), giving the fault model a committed
  // baseline to diff across PRs.
  void AddLossyCell(const std::string& series, const std::string& spec,
                    int shards, const RunMetrics& m);

  // Shard count of the main figure cells (recorded in the JSON).
  void set_shards(int shards) { shards_ = shards; }

  // Whether this run exercised a checkpoint/restore cycle (recorded in the
  // JSON's run metadata).
  void set_checkpoint(bool on) { checkpoint_ = on; }

  // Fault spec the run executed under (recorded in the JSON's run metadata;
  // empty = fault-free).
  void set_faults(const std::string& spec) { faults_ = spec; }

  void PrintAll() const;

  // Writes every recorded cell as JSON: figure/title/x_label, the series
  // and x-value lists, one record per (series, x) with the four panel
  // metrics plus traffic counters, and the wall time since construction.
  // Benchmark trajectories (BENCH_*.json) are diffed across PRs, so the
  // format is stable and append-only. Returns false on I/O failure.
  bool WriteJson(const std::string& path) const;

 private:
  void PrintPanel(const std::string& panel_title,
                  double (*extract)(const RunMetrics&),
                  const char* format) const;

  struct ShardCell {
    std::string series;
    double x;
    int shards;
    RunMetrics metrics;
  };

  struct LossyCell {
    std::string series;
    std::string spec;
    int shards;
    RunMetrics metrics;
  };

  std::string figure_;
  std::string title_;
  std::string x_label_;
  std::vector<std::string> series_;
  std::vector<double> xs_;
  std::map<std::pair<std::string, double>, RunMetrics> cells_;
  std::vector<ShardCell> shard_cells_;
  std::vector<LossyCell> lossy_cells_;
  int shards_ = 1;
  bool checkpoint_ = false;
  std::string faults_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bench
}  // namespace recnet

#endif  // RECNET_BENCH_BENCH_UTIL_H_
