// Figure 7: `reachable` view computation as insertions are performed.
// Series: DRed, Relative Eager/Lazy, Absorption Eager/Lazy.
// X axis: insertion ratio (fraction of link tuples inserted).
//
// The workload executes through recnet::Engine: the query is compiled from
// the paper's Datalog text, so this bench also measures the facade path.

#include <cstdio>

#include "bench_util.h"
#include "engine/engine.h"
#include "topology/workload.h"

using namespace recnet;
using namespace recnet::bench;

namespace {

constexpr char kQuery1[] = R"(
  reachable(x,y) :- link(x,y).
  reachable(x,y) :- link(x,z), reachable(z,y).
)";

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  BenchEnv env = GetBenchEnv();
  Topology topo = DefaultTopology(/*dense=*/true, env);
  std::printf(
      "Figure 7 workload: transit-stub topology, %d nodes, %zu link tuples"
      "%s\n",
      topo.num_nodes, topo.num_link_tuples(),
      env.paper_scale ? " (paper scale)" : " (reduced scale; "
                                           "RECNET_PAPER_SCALE=1 for 100 "
                                           "nodes)");

  FigurePrinter fig("Figure 7", "reachable query, insertion workload",
                    "insertion ratio",
                    {"DRed", "Relative Eager", "Relative Lazy",
                     "Absorption Eager", "Absorption Lazy"});

  fig.set_shards(args.shards);
  for (const Strategy& strategy : AllStrategies()) {
    for (double ratio : {0.5, 0.75, 1.0}) {
      EngineOptions options;
      options.num_nodes = topo.num_nodes;
      options.runtime = MakeOptions(strategy, 12, 30'000'000);
      options.runtime.shards = args.shards;
      auto engine = Engine::Compile(kQuery1, options);
      if (!engine.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     engine.status().ToString().c_str());
        return 1;
      }
      for (const LinkTuple& l : InsertionPrefix(topo, ratio, env.seed)) {
        (*engine)->Insert("link", {double(l.src), double(l.dst)});
      }
      (void)(*engine)->Apply();
      fig.Add(strategy.name, ratio, (*engine)->Metrics());
      std::fprintf(
          stderr, "  [fig7] %s ratio=%.2f done (%llu msgs)\n",
          strategy.name.c_str(), ratio,
          static_cast<unsigned long long>((*engine)->Metrics().messages));
    }
  }
  // Shard sweep (determinism contract): the full-insert workload re-run at
  // 1/2/4 router shards must produce bit-identical traffic counters; only
  // wall time may move. Recorded into the JSON for cross-PR diffing.
  std::printf("shard sweep (full insert):\n");
  for (const Strategy& strategy : AllStrategies()) {
    if (strategy.ship == ShipMode::kEager) continue;  // Time-capped cells.
    for (int shards : {1, 2, 4}) {
      EngineOptions options;
      options.num_nodes = topo.num_nodes;
      options.runtime = MakeOptions(strategy, 12, 30'000'000);
      options.runtime.shards = shards;
      auto engine = Engine::Compile(kQuery1, options);
      if (!engine.ok()) return 1;
      for (const LinkTuple& l : InsertionPrefix(topo, 1.0, env.seed)) {
        (*engine)->Insert("link", {double(l.src), double(l.dst)});
      }
      (void)(*engine)->Apply();
      fig.AddShardCell(strategy.name, 1.0, shards, (*engine)->Metrics());
    }
  }

  fig.PrintAll();
  if (!args.json_path.empty() && !fig.WriteJson(args.json_path)) return 1;
  return 0;
}
