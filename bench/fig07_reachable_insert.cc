// Figure 7: `reachable` view computation as insertions are performed.
// Series: DRed, Relative Eager/Lazy, Absorption Eager/Lazy.
// X axis: insertion ratio (fraction of link tuples inserted).

#include <cstdio>

#include "bench_util.h"
#include "engine/reachable_runtime.h"
#include "topology/workload.h"

using namespace recnet;
using namespace recnet::bench;

int main() {
  BenchEnv env = GetBenchEnv();
  Topology topo = DefaultTopology(/*dense=*/true, env);
  std::printf(
      "Figure 7 workload: transit-stub topology, %d nodes, %zu link tuples"
      "%s\n",
      topo.num_nodes, topo.num_link_tuples(),
      env.paper_scale ? " (paper scale)" : " (reduced scale; "
                                           "RECNET_PAPER_SCALE=1 for 100 "
                                           "nodes)");

  FigurePrinter fig("Figure 7", "reachable query, insertion workload",
                    "insertion ratio",
                    {"DRed", "Relative Eager", "Relative Lazy",
                     "Absorption Eager", "Absorption Lazy"});

  for (const Strategy& strategy : AllStrategies()) {
    for (double ratio : {0.5, 0.75, 1.0}) {
      ReachableRuntime rt(topo.num_nodes,
                          MakeOptions(strategy, 12, 30'000'000));
      for (const LinkTuple& l : InsertionPrefix(topo, ratio, env.seed)) {
        rt.InsertLink(l.src, l.dst);
      }
      rt.Run();
      fig.Add(strategy.name, ratio, rt.Metrics());
      std::fprintf(stderr, "  [fig7] %s ratio=%.2f done (%llu msgs)\n",
                   strategy.name.c_str(), ratio,
                   static_cast<unsigned long long>(rt.Metrics().messages));
    }
  }
  fig.PrintAll();
  return 0;
}
