// Figure 7: `reachable` view computation as insertions are performed.
// Series: DRed, Relative Eager/Lazy, Absorption Eager/Lazy.
// X axis: insertion ratio (fraction of link tuples inserted).
//
// The workload executes through recnet::Engine: the query is compiled from
// the paper's Datalog text, so this bench also measures the facade path.

#include <cstdint>
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "engine/engine.h"
#include "engine/session.h"
#include "topology/workload.h"

using namespace recnet;
using namespace recnet::bench;

namespace {

constexpr char kQuery1[] = R"(
  reachable(x,y) :- link(x,y).
  reachable(x,y) :- link(x,z), reachable(z,y).
)";

void DigestU64(uint64_t v, uint64_t* h) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xff;
    *h *= 1099511628211ull;  // FNV-1a.
  }
}

void DigestDouble(double v, uint64_t* h) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  DigestU64(bits, h);
}

// One number over everything the resumed run observed: traffic counters,
// wire bytes, and the full converged view contents. Two processes that
// print the same digest walked the same trajectory.
uint64_t TrajectoryDigest(const View* view) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis.
  RunMetrics m = view->Metrics();
  DigestU64(m.messages, &h);
  DigestU64(m.kill_messages, &h);
  DigestDouble(m.comm_mb, &h);
  auto rows = view->Scan("reachable");
  RECNET_CHECK(rows.ok());
  DigestU64(rows->size(), &h);
  for (const Tuple& t : rows.value()) {
    for (size_t i = 0; i < t.size(); ++i) {
      const Value& v = t.at(i);
      if (v.is_double()) {
        DigestDouble(v.AsDouble(), &h);
      } else if (v.is_int()) {
        DigestU64(static_cast<uint64_t>(v.AsInt()), &h);
      }
    }
  }
  return h;
}

// The --ckpt-save / --ckpt-load workload: the full-insert Absorption Lazy
// cell, split in half. Save runs the first half, checkpoints, then resumes;
// load restores the checkpoint in a fresh process and resumes identically.
// Both print `CKPT-DIGEST <hex>`; matching digests mean the restored
// session's trajectory is bit-identical to the uninterrupted one across a
// process boundary (CI diffs the two lines).
int RunCheckpointMode(const BenchArgs& args, const BenchEnv& env,
                      const Topology& topo) {
  const Strategy strategy{"Absorption Lazy", ProvMode::kAbsorption,
                          ShipMode::kLazy};
  const std::vector<LinkTuple> links = InsertionPrefix(topo, 1.0, env.seed);
  const size_t half = links.size() / 2;

  SessionOptions session_options;
  session_options.num_nodes = topo.num_nodes;
  session_options.num_physical = 12;
  session_options.shards = args.shards;
  Session session(session_options);

  const bool saving = !args.ckpt_save.empty();
  const std::string& path = saving ? args.ckpt_save : args.ckpt_load;
  View* view = nullptr;
  if (saving) {
    EngineOptions options;
    options.num_nodes = topo.num_nodes;
    options.runtime = MakeOptions(strategy, 12, 30'000'000);
    options.runtime.shards = args.shards;
    auto added = session.AddProgram(kQuery1, options);
    if (!added.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   added.status().ToString().c_str());
      return 1;
    }
    view = added.value();
    for (size_t i = 0; i < half; ++i) {
      (void)session.Insert("link",
                           {double(links[i].src), double(links[i].dst)});
    }
    (void)session.Apply();
    Status st = session.Checkpoint(path);
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("checkpointed after %zu/%zu links to %s\n", half,
                links.size(), path.c_str());
  } else {
    Status st = session.Restore(path);
    if (!st.ok()) {
      std::fprintf(stderr, "restore failed: %s\n", st.ToString().c_str());
      return 1;
    }
    view = session.view(0);
    std::printf("restored %s at %zu/%zu links\n", path.c_str(), half,
                links.size());
  }

  // Resume: the second half of the insertion workload.
  for (size_t i = half; i < links.size(); ++i) {
    (void)session.Insert("link",
                         {double(links[i].src), double(links[i].dst)});
  }
  (void)session.Apply();
  std::printf("CKPT-DIGEST %016llx\n",
              static_cast<unsigned long long>(TrajectoryDigest(view)));
  return 0;
}

// Digest over the converged view contents only (no traffic counters): a
// lossy run retries dropped envelopes, so its message counts legitimately
// differ from a lossless run's — the contract is that the *fixpoint* is
// identical.
uint64_t FixpointDigest(const Engine* engine) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis.
  auto rows = engine->Scan("reachable");
  RECNET_CHECK(rows.ok());
  DigestU64(rows->size(), &h);
  for (const Tuple& t : rows.value()) {
    for (size_t i = 0; i < t.size(); ++i) {
      const Value& v = t.at(i);
      if (v.is_double()) {
        DigestDouble(v.AsDouble(), &h);
      } else if (v.is_int()) {
        DigestU64(static_cast<uint64_t>(v.AsInt()), &h);
      }
    }
  }
  return h;
}

// The --faults workload: the full-insert Absorption Lazy cell run twice —
// once lossless, once under the seeded fault plan — and the converged view
// contents compared. Passing means the lossy drain (seeded drops,
// duplicates, bounded retry) converged to the same fixpoint; the printed
// counters show the plan actually exercised the loss paths.
int RunFaultMode(const BenchArgs& args, const BenchEnv& env,
                 const Topology& topo) {
  const Strategy strategy{"Absorption Lazy", ProvMode::kAbsorption,
                          ShipMode::kLazy};
  const int shards = args.shards;
  if (shards < 2) {
    std::fprintf(stderr,
                 "--faults link loss needs --shards>=2 (loss is injected on "
                 "shard-boundary links; at 1 shard the plan is inert)\n");
    return 2;
  }
  uint64_t digests[2];
  RunMetrics lossy_metrics;
  for (int lossy = 0; lossy < 2; ++lossy) {
    EngineOptions options;
    options.num_nodes = topo.num_nodes;
    options.runtime = MakeOptions(strategy, 12, 30'000'000);
    options.runtime.shards = shards;
    if (lossy) options.runtime.faults = args.faults;
    auto engine = Engine::Compile(kQuery1, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    for (const LinkTuple& l : InsertionPrefix(topo, 1.0, env.seed)) {
      (*engine)->Insert("link", {double(l.src), double(l.dst)});
    }
    Status st = (*engine)->Apply();
    RunMetrics m = (*engine)->Metrics();
    if (!st.ok() || !m.converged) {
      std::fprintf(stderr, "%s run did not converge: %s\n",
                   lossy ? "lossy" : "lossless", st.ToString().c_str());
      return 1;
    }
    digests[lossy] = FixpointDigest(engine->get());
    if (lossy) lossy_metrics = m;
  }
  std::printf("FAULT-RUN spec=%s shards=%d dropped=%llu retried=%llu "
              "duplicated=%llu\n",
              args.faults_spec.c_str(), shards,
              static_cast<unsigned long long>(lossy_metrics.link_dropped),
              static_cast<unsigned long long>(lossy_metrics.link_retried),
              static_cast<unsigned long long>(lossy_metrics.link_duplicated));
  std::printf("FAULT-DIGEST %016llx lossless\n",
              static_cast<unsigned long long>(digests[0]));
  std::printf("FAULT-DIGEST %016llx lossy\n",
              static_cast<unsigned long long>(digests[1]));
  if (digests[0] != digests[1]) {
    std::fprintf(stderr, "lossy fixpoint diverged from lossless baseline\n");
    return 1;
  }
  std::printf("lossy convergence OK: fixpoint matches lossless baseline\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  BenchEnv env = GetBenchEnv();
  Topology topo = DefaultTopology(/*dense=*/true, env);
  if (!args.ckpt_save.empty() || !args.ckpt_load.empty()) {
    return RunCheckpointMode(args, env, topo);
  }
  if (!args.faults_spec.empty()) {
    return RunFaultMode(args, env, topo);
  }
  std::printf(
      "Figure 7 workload: transit-stub topology, %d nodes, %zu link tuples"
      "%s\n",
      topo.num_nodes, topo.num_link_tuples(),
      env.paper_scale ? " (paper scale)" : " (reduced scale; "
                                           "RECNET_PAPER_SCALE=1 for 100 "
                                           "nodes)");

  FigurePrinter fig("Figure 7", "reachable query, insertion workload",
                    "insertion ratio",
                    {"DRed", "Relative Eager", "Relative Lazy",
                     "Absorption Eager", "Absorption Lazy"});

  fig.set_shards(args.shards);
  for (const Strategy& strategy : AllStrategies()) {
    for (double ratio : {0.5, 0.75, 1.0}) {
      EngineOptions options;
      options.num_nodes = topo.num_nodes;
      options.runtime = MakeOptions(strategy, 12, 30'000'000);
      options.runtime.shards = args.shards;
      auto engine = Engine::Compile(kQuery1, options);
      if (!engine.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     engine.status().ToString().c_str());
        return 1;
      }
      for (const LinkTuple& l : InsertionPrefix(topo, ratio, env.seed)) {
        (*engine)->Insert("link", {double(l.src), double(l.dst)});
      }
      (void)(*engine)->Apply();
      fig.Add(strategy.name, ratio, (*engine)->Metrics());
      std::fprintf(
          stderr, "  [fig7] %s ratio=%.2f done (%llu msgs)\n",
          strategy.name.c_str(), ratio,
          static_cast<unsigned long long>((*engine)->Metrics().messages));
    }
  }
  // Shard sweep (determinism contract): the full-insert workload re-run at
  // 1/2/4 router shards must produce bit-identical traffic counters; only
  // wall time may move. Recorded into the JSON for cross-PR diffing.
  std::printf("shard sweep (full insert):\n");
  for (const Strategy& strategy : AllStrategies()) {
    if (strategy.ship == ShipMode::kEager) continue;  // Time-capped cells.
    for (int shards : {1, 2, 4}) {
      EngineOptions options;
      options.num_nodes = topo.num_nodes;
      options.runtime = MakeOptions(strategy, 12, 30'000'000);
      options.runtime.shards = shards;
      auto engine = Engine::Compile(kQuery1, options);
      if (!engine.ok()) return 1;
      for (const LinkTuple& l : InsertionPrefix(topo, 1.0, env.seed)) {
        (*engine)->Insert("link", {double(l.src), double(l.dst)});
      }
      (void)(*engine)->Apply();
      fig.AddShardCell(strategy.name, 1.0, shards, (*engine)->Metrics());
    }
  }

  // Lossy-link cell: the full-insert Absorption Lazy workload under a
  // pinned seeded drop/dup plan at 2 shards (loss is injected on
  // shard-boundary links, so 1 shard would make the plan inert). The
  // drop/retry/duplicate counters are deterministic given the seed, so the
  // recorded cell is a baseline the fault injector is diffed against.
  {
    static constexpr char kLossySpec[] = "seed=7,drop=0.05,dup=0.02";
    auto plan = fault::ParseFaultSpec(kLossySpec);
    RECNET_CHECK(plan.ok());
    const Strategy strategy{"Absorption Lazy", ProvMode::kAbsorption,
                            ShipMode::kLazy};
    EngineOptions options;
    options.num_nodes = topo.num_nodes;
    options.runtime = MakeOptions(strategy, 12, 30'000'000);
    options.runtime.shards = 2;
    options.runtime.faults = plan.value();
    auto engine = Engine::Compile(kQuery1, options);
    if (!engine.ok()) return 1;
    for (const LinkTuple& l : InsertionPrefix(topo, 1.0, env.seed)) {
      (*engine)->Insert("link", {double(l.src), double(l.dst)});
    }
    (void)(*engine)->Apply();
    fig.AddLossyCell(strategy.name, kLossySpec, 2, (*engine)->Metrics());
  }

  fig.PrintAll();
  if (!args.json_path.empty() && !fig.WriteJson(args.json_path)) return 1;
  return 0;
}
