// Micro-benchmarks (google-benchmark) for the substrates: BDD algebra,
// provenance composition, operator hot paths.

#include <benchmark/benchmark.h>

#include "bdd/bdd.h"
#include "common/rng.h"
#include "operators/fixpoint.h"
#include "operators/hash_join.h"
#include "operators/min_ship.h"
#include "provenance/prov.h"

namespace recnet {
namespace {

void BM_BddAndChain(benchmark::State& state) {
  bdd::Manager mgr;
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    // Bdd handles pin intermediates: long benchmark loops accumulate
    // garbage and trigger collections.
    bdd::Bdd f(&mgr, mgr.True());
    for (int v = 0; v < n; ++v) {
      f = f.And(bdd::Bdd(&mgr, mgr.MakeVar(v)));
    }
    benchmark::DoNotOptimize(f.index());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BddAndChain)->Arg(8)->Arg(64)->Arg(256)->Iterations(5000);

void BM_BddOrOfProducts(benchmark::State& state) {
  bdd::Manager mgr;
  const int terms = static_cast<int>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    bdd::Bdd f(&mgr, mgr.False());
    for (int t = 0; t < terms; ++t) {
      // Products over a contiguous variable window: path-provenance-like
      // locality (random sparse DNF would be an exponential worst case for
      // ROBDDs and measure nothing useful).
      bdd::Var base = static_cast<bdd::Var>(rng.NextBounded(20));
      bdd::Bdd p(&mgr, mgr.True());
      for (bdd::Var j = 0; j < 4; ++j) {
        p = p.And(bdd::Bdd(&mgr, mgr.MakeVar(base + j)));
      }
      f = f.Or(p);
    }
    benchmark::DoNotOptimize(f.index());
  }
  state.SetItemsProcessed(state.iterations() * terms);
}
BENCHMARK(BM_BddOrOfProducts)->Arg(16)->Arg(128)->Iterations(1000);

void BM_BddRestrict(benchmark::State& state) {
  bdd::Manager mgr;
  Rng rng(11);
  bdd::Bdd f(&mgr, mgr.False());
  for (int t = 0; t < 64; ++t) {
    bdd::Var base = static_cast<bdd::Var>(rng.NextBounded(28));
    bdd::Bdd p(&mgr, mgr.True());
    for (bdd::Var j = 0; j < 4; ++j) {
      p = p.And(bdd::Bdd(&mgr, mgr.MakeVar(base + j)));
    }
    f = f.Or(p);
  }
  bdd::Var v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.Restrict(f.index(), v, false));
    v = (v + 1) % 32;
  }
}
BENCHMARK(BM_BddRestrict)->Iterations(50000);

// O(1) complement-edge negation: Not() is a tag flip, so the timed loop
// must leave the unique-table probe and node-allocation counters exactly
// where they started. A probe or an allocation here means the tagged-ref
// invariant broke, so the bench hard-fails rather than just timing it.
void BM_BddNotO1(benchmark::State& state) {
  bdd::Manager mgr;
  Rng rng(13);
  bdd::Bdd f(&mgr, mgr.False());
  for (int t = 0; t < 64; ++t) {
    bdd::Var base = static_cast<bdd::Var>(rng.NextBounded(24));
    bdd::Bdd p(&mgr, mgr.True());
    for (bdd::Var j = 0; j < 4; ++j) {
      p = p.And(bdd::Bdd(&mgr, mgr.MakeVar(base + j)));
    }
    f = f.Or(p);
  }
  const uint64_t probes_before = mgr.unique_probes();
  const size_t nodes_before = mgr.allocated_nodes();
  bdd::BddRef r = f.index();
  for (auto _ : state) {
    r = mgr.Not(r);
    benchmark::DoNotOptimize(r);
  }
  if (mgr.unique_probes() != probes_before) {
    state.SkipWithError("Not() touched the unique table");
  }
  if (mgr.allocated_nodes() != nodes_before) {
    state.SkipWithError("Not() allocated nodes");
  }
}
BENCHMARK(BM_BddNotO1)->Iterations(1000000);

// Diff over complemented operands: Diff(¬a, ¬b) = And(¬a, b) recurses on
// the same tagged pairs as earlier And calls, so after a warm-up pass the
// steady state is pure op-cache hits — no materialized negation of either
// operand is ever built.
void BM_BddDiffComplemented(benchmark::State& state) {
  bdd::Manager mgr;
  Rng rng(17);
  auto product = [&](int seed) {
    Rng r(seed);
    bdd::Bdd p(&mgr, mgr.True());
    for (int j = 0; j < 6; ++j) {
      p = p.And(bdd::Bdd(&mgr, mgr.MakeVar(static_cast<bdd::Var>(
                                  r.NextBounded(24)))));
    }
    return p;
  };
  bdd::Bdd a = product(1).Or(product(2)).Or(product(3));
  bdd::Bdd b = product(4).Or(product(5)).Or(product(6));
  const bdd::BddRef na = mgr.Not(a.index());
  const bdd::BddRef nb = mgr.Not(b.index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.Diff(na, nb));
  }
  state.counters["cache_hit_rate"] =
      mgr.cache_lookups() == 0
          ? 0.0
          : static_cast<double>(mgr.cache_hits()) /
                static_cast<double>(mgr.cache_lookups());
}
BENCHMARK(BM_BddDiffComplemented)->Iterations(200000);

// Negated-result sharing on a deep Or chain: with complement edges,
// Or(a, b) = ¬And(¬a, ¬b), so re-deriving the chain's De Morgan dual
// (And of the negated products) walks cache entries the forward pass
// already populated. The /0 variant measures the forward chain alone; the
// /1 variant appends the dual pass, which must ride the warm cache rather
// than re-expanding the recursion.
void BM_BddOrChainNegated(benchmark::State& state) {
  bdd::Manager mgr;
  const bool negate = state.range(0) != 0;
  Rng rng(23);
  std::vector<bdd::Bdd> products;
  for (int t = 0; t < 64; ++t) {
    bdd::Var base = static_cast<bdd::Var>(rng.NextBounded(20));
    bdd::Bdd p(&mgr, mgr.True());
    for (bdd::Var j = 0; j < 4; ++j) {
      p = p.And(bdd::Bdd(&mgr, mgr.MakeVar(base + j)));
    }
    products.push_back(p);
  }
  for (auto _ : state) {
    bdd::Bdd f(&mgr, mgr.False());
    for (const bdd::Bdd& p : products) f = f.Or(p);
    if (negate) {
      bdd::Bdd g(&mgr, mgr.True());
      for (const bdd::Bdd& p : products) {
        g = g.And(bdd::Bdd(&mgr, mgr.Not(p.index())));
      }
      if (g.index() != mgr.Not(f.index())) {
        state.SkipWithError("De Morgan dual is not the complement edge");
      }
      benchmark::DoNotOptimize(g.index());
    }
    benchmark::DoNotOptimize(f.index());
  }
  state.counters["cache_hit_rate"] =
      mgr.cache_lookups() == 0
          ? 0.0
          : static_cast<double>(mgr.cache_hits()) /
                static_cast<double>(mgr.cache_lookups());
}
BENCHMARK(BM_BddOrChainNegated)->Arg(0)->Arg(1)->Iterations(2000);

void BM_FixpointInsertAbsorption(benchmark::State& state) {
  bdd::Manager mgr;
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    Fixpoint fix(ProvMode::kAbsorption);
    state.ResumeTiming();
    for (int i = 0; i < 512; ++i) {
      Tuple t = Tuple::OfInts({static_cast<int64_t>(rng.NextBounded(64)),
                               static_cast<int64_t>(rng.NextBounded(64))});
      Prov pv = Prov::BaseVar(ProvMode::kAbsorption, &mgr,
                              static_cast<bdd::Var>(rng.NextBounded(256)));
      benchmark::DoNotOptimize(fix.ProcessInsert(t, pv));
    }
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_FixpointInsertAbsorption)->Iterations(200);

void BM_PipelinedHashJoinProbe(benchmark::State& state) {
  bdd::Manager mgr;
  PipelinedHashJoin join(ProvMode::kAbsorption, {1}, {0},
                         [](const Tuple& l, const Tuple& r) {
                           return Tuple::OfInts({l.IntAt(0), r.IntAt(1)});
                         });
  for (int64_t i = 0; i < 64; ++i) {
    join.ProcessInsert(PipelinedHashJoin::kLeft, Tuple::OfInts({i, 0}),
                       Prov::BaseVar(ProvMode::kAbsorption, &mgr,
                                     static_cast<bdd::Var>(i)));
  }
  int64_t next = 0;
  for (auto _ : state) {
    Tuple probe = Tuple::OfInts({0, next});
    benchmark::DoNotOptimize(join.ProcessInsert(
        PipelinedHashJoin::kRight, probe,
        Prov::BaseVar(ProvMode::kAbsorption, &mgr,
                      static_cast<bdd::Var>(1000 + (next % 512)))));
    ++next;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PipelinedHashJoinProbe)->Iterations(10000);

void BM_MinShipLazyAbsorbs(benchmark::State& state) {
  bdd::Manager mgr;
  size_t sent = 0;
  MinShip ship(ProvMode::kAbsorption, ShipMode::kLazy, 8,
               [&sent](const Tuple&, const Prov&) { ++sent; });
  Rng rng(5);
  for (auto _ : state) {
    Tuple t = Tuple::OfInts({static_cast<int64_t>(rng.NextBounded(32)), 1});
    ship.ProcessInsert(t, Prov::BaseVar(ProvMode::kAbsorption, &mgr,
                                        static_cast<bdd::Var>(
                                            rng.NextBounded(512))));
  }
  benchmark::DoNotOptimize(sent);
}
BENCHMARK(BM_MinShipLazyAbsorbs)->Iterations(50000);

void BM_RelativeProvCompose(benchmark::State& state) {
  bdd::Manager mgr;
  Prov a = Prov::BaseVar(ProvMode::kRelative, &mgr, 1);
  Prov b = Prov::BaseVar(ProvMode::kRelative, &mgr, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.And(b).Or(a));
  }
}
BENCHMARK(BM_RelativeProvCompose)->Iterations(50000);

}  // namespace
}  // namespace recnet

BENCHMARK_MAIN();
