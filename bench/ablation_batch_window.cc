// Ablation (paper §5's batching-interval discussion): sweeping MinShip's
// eager batching window between "ship every derivation" (W=1) and lazy
// (W=inf) trades bandwidth against deletion-time work. "By changing the
// batching interval or conditions, we can adjust how many alternate
// derivations are propagated through the query plan."

#include <cstdio>

#include "bench_util.h"
#include "engine/reachable_runtime.h"
#include "topology/workload.h"

using namespace recnet;
using namespace recnet::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  BenchEnv env = GetBenchEnv();
  Topology topo = DefaultTopology(/*dense=*/true, env);
  std::printf("MinShip batching-window ablation: %d nodes, %zu link tuples; "
              "insert all + delete 20%%\n",
              topo.num_nodes, topo.num_link_tuples());
  std::printf("%-12s %14s %14s %14s %14s\n", "window", "insert MB",
              "delete MB", "insert s", "delete s");

  // JSON trajectory: phases as series, batching window as x (0 = lazy).
  FigurePrinter fig("Ablation", "MinShip batching window", "window",
                    {"insert", "delete"});

  auto run = [&](ShipMode ship, size_t window, const char* label) {
    RuntimeOptions opts;
    opts.prov = ProvMode::kAbsorption;
    opts.ship = ship;
    opts.batch_window = window;
    opts.num_physical = 12;
    opts.message_budget = 50'000'000;
    opts.time_budget_s = 30;
    ReachableRuntime rt(topo.num_nodes, opts);
    for (const LinkTuple& l : InsertionPrefix(topo, 1.0, env.seed)) {
      rt.InsertLink(l.src, l.dst);
    }
    rt.Run();
    RunMetrics insert = rt.Metrics();
    rt.ResetMetrics();
    for (const LinkTuple& l : DeletionSequence(topo, 0.2, env.seed)) {
      rt.DeleteLink(l.src, l.dst);
      if (!rt.Run()) break;
    }
    RunMetrics del = rt.Metrics();
    std::printf("%-12s %14.3f %14.3f %14.3f %14.3f\n", label, insert.comm_mb,
                del.comm_mb, insert.wall_seconds, del.wall_seconds);
    fig.Add("insert", static_cast<double>(window), insert);
    fig.Add("delete", static_cast<double>(window), del);
  };

  run(ShipMode::kEager, 128, "eager W=128");
  run(ShipMode::kEager, 256, "eager W=256");
  run(ShipMode::kEager, 512, "eager W=512");
  run(ShipMode::kEager, 2048, "eager W=2048");
  run(ShipMode::kLazy, 0, "lazy (W=inf)");
  if (!args.json_path.empty() && !fig.WriteJson(args.json_path)) return 1;
  return 0;
}
