// Figure 10: `region` query maintenance as deletions (sensor un-triggers)
// are performed. All triggers are applied first; then a shuffled fraction
// is removed one at a time. Metrics cover the deletion phase only.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "engine/region_runtime.h"
#include "topology/sensor_grid.h"

using namespace recnet;
using namespace recnet::bench;

namespace {

std::vector<int> TriggerPool(const SensorField& field, uint64_t seed) {
  std::vector<int> pool = field.seed_sensors;
  std::vector<int> rest;
  for (int s = 0; s < field.num_sensors; ++s) {
    if (std::find(pool.begin(), pool.end(), s) == pool.end()) {
      rest.push_back(s);
    }
  }
  Rng rng(seed);
  rng.Shuffle(&rest);
  rest.resize(rest.size() / 2);
  pool.insert(pool.end(), rest.begin(), rest.end());
  return pool;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  BenchEnv env = GetBenchEnv();
  SensorGridOptions grid;
  grid.seed = env.seed;
  SensorField field = MakeSensorGrid(grid);
  std::vector<int> pool = TriggerPool(field, env.seed);
  std::printf("Figure 10 workload: %d sensors, %zu triggers, delete-phase "
              "metrics only\n",
              field.num_sensors, pool.size());

  FigurePrinter fig("Figure 10", "region query, deletion workload",
                    "deletion ratio",
                    {"DRed", "Absorption Eager", "Absorption Lazy"});

  for (const Strategy& strategy : RegionStrategies()) {
    for (double ratio : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      RegionRuntime rt(field, MakeOptions(strategy, 12, 100'000'000));
      for (int s : pool) rt.Trigger(s);
      if (!rt.Run()) continue;
      rt.ResetMetrics();
      std::vector<int> victims = pool;
      Rng rng(env.seed ^ 0xfeedULL);
      rng.Shuffle(&victims);
      victims.resize(static_cast<size_t>(ratio * victims.size()));
      for (int s : victims) {
        rt.Untrigger(s);
        if (!rt.Run()) break;
      }
      fig.Add(strategy.name, ratio, rt.Metrics());
    }
  }
  fig.PrintAll();
  if (!args.json_path.empty() && !fig.WriteJson(args.json_path)) return 1;
  return 0;
}
