// Figure 11: scaling the number of links (and nodes) for the reachability
// query over inserts. Series: {Eager, Lazy} x {Dense, Sparse} absorption
// provenance. X axis: total links in the network.

#include <cstdio>

#include "bench_util.h"
#include "engine/reachable_runtime.h"
#include "topology/transit_stub.h"
#include "topology/workload.h"

using namespace recnet;
using namespace recnet::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  BenchEnv env = GetBenchEnv();
  // Reduced scale sweeps 50..400 target links; paper scale 100..800.
  std::vector<int> targets = env.paper_scale
                                 ? std::vector<int>{100, 200, 400, 800}
                                 : std::vector<int>{50, 100, 200, 400};
  FigurePrinter fig("Figure 11",
                    "reachability over inserts, link-count sweep",
                    "target links",
                    {"Eager Dense", "Lazy Dense", "Eager Sparse",
                     "Lazy Sparse"});

  for (bool dense : {true, false}) {
    for (ShipMode ship : {ShipMode::kEager, ShipMode::kLazy}) {
      std::string name = std::string(ship == ShipMode::kEager ? "Eager"
                                                              : "Lazy") +
                         (dense ? " Dense" : " Sparse");
      for (int target : targets) {
        Topology topo =
            MakeTransitStubWithTargetLinks(target, dense, env.seed);
        Strategy strategy{name, ProvMode::kAbsorption, ship};
        ReachableRuntime rt(topo.num_nodes,
                            MakeOptions(strategy, 12, 40'000'000));
        for (const LinkTuple& l : InsertionPrefix(topo, 1.0, env.seed)) {
          rt.InsertLink(l.src, l.dst);
        }
        rt.Run();
        fig.Add(name, target, rt.Metrics());
        std::fprintf(stderr, "  [fig11] %s links=%d (%d nodes) done\n",
                     name.c_str(), target, topo.num_nodes);
      }
    }
  }
  fig.PrintAll();
  if (!args.json_path.empty() && !fig.WriteJson(args.json_path)) return 1;
  return 0;
}
