// Figure 12: scaling the number of links (and nodes) for the reachability
// query over deletions — after full insertion, an additional 20% of the
// links are deleted (paper §7.3). Deletion-phase metrics only.

#include <cstdio>

#include "bench_util.h"
#include "engine/reachable_runtime.h"
#include "topology/transit_stub.h"
#include "topology/workload.h"

using namespace recnet;
using namespace recnet::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  BenchEnv env = GetBenchEnv();
  std::vector<int> targets = env.paper_scale
                                 ? std::vector<int>{100, 200, 400, 800}
                                 : std::vector<int>{50, 100, 200, 400};
  FigurePrinter fig("Figure 12",
                    "reachability over deletions (20% of links), link sweep",
                    "target links",
                    {"Eager Dense", "Lazy Dense", "Eager Sparse",
                     "Lazy Sparse"});

  for (bool dense : {true, false}) {
    for (ShipMode ship : {ShipMode::kEager, ShipMode::kLazy}) {
      std::string name = std::string(ship == ShipMode::kEager ? "Eager"
                                                              : "Lazy") +
                         (dense ? " Dense" : " Sparse");
      for (int target : targets) {
        Topology topo =
            MakeTransitStubWithTargetLinks(target, dense, env.seed);
        Strategy strategy{name, ProvMode::kAbsorption, ship};
        RuntimeOptions opts = MakeOptions(strategy, 12, 40'000'000);
        // Tighter cap than Figure 11: a non-converging insertion phase
        // cannot produce a meaningful deletion measurement (the paper's
        // figure likewise has no Eager Dense bars at the large scales).
        opts.time_budget_s = 20;
        ReachableRuntime rt(topo.num_nodes, opts);
        for (const LinkTuple& l : InsertionPrefix(topo, 1.0, env.seed)) {
          rt.InsertLink(l.src, l.dst);
        }
        if (!rt.Run()) {
          std::fprintf(stderr,
                       "  [fig12] %s links=%d skipped (insert phase "
                       "exceeded budget)\n",
                       name.c_str(), target);
          continue;
        }
        rt.ResetMetrics();
        for (const LinkTuple& l : DeletionSequence(topo, 0.2, env.seed)) {
          rt.DeleteLink(l.src, l.dst);
          if (!rt.Run()) break;
        }
        fig.Add(name, target, rt.Metrics());
        std::fprintf(stderr, "  [fig12] %s links=%d done\n", name.c_str(),
                     target);
      }
    }
  }
  fig.PrintAll();
  if (!args.json_path.empty() && !fig.WriteJson(args.json_path)) return 1;
  return 0;
}
