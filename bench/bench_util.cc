#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "topology/transit_stub.h"

namespace recnet {
namespace bench {

BenchEnv GetBenchEnv() {
  BenchEnv env;
  const char* scale = std::getenv("RECNET_PAPER_SCALE");
  env.paper_scale = scale != nullptr && scale[0] == '1';
  const char* seed = std::getenv("RECNET_SEED");
  if (seed != nullptr) env.seed = std::strtoull(seed, nullptr, 10);
  return env;
}

Topology DefaultTopology(bool dense, const BenchEnv& env) {
  if (env.paper_scale) {
    TransitStubOptions options;
    options.dense = dense;
    options.seed = env.seed;
    return MakeTransitStub(options);  // 100 nodes, ~200 links.
  }
  return MakeTransitStubWithTargetLinks(dense ? 100 : 55, dense, env.seed);
}

std::vector<Strategy> AllStrategies() {
  return {
      {"DRed", ProvMode::kSet, ShipMode::kDirect},
      {"Relative Eager", ProvMode::kRelative, ShipMode::kEager},
      {"Relative Lazy", ProvMode::kRelative, ShipMode::kLazy},
      {"Absorption Eager", ProvMode::kAbsorption, ShipMode::kEager},
      {"Absorption Lazy", ProvMode::kAbsorption, ShipMode::kLazy},
  };
}

std::vector<Strategy> RegionStrategies() {
  return {
      {"DRed", ProvMode::kSet, ShipMode::kDirect},
      {"Absorption Eager", ProvMode::kAbsorption, ShipMode::kEager},
      {"Absorption Lazy", ProvMode::kAbsorption, ShipMode::kLazy},
  };
}

RuntimeOptions MakeOptions(const Strategy& strategy, int num_physical,
                           uint64_t budget) {
  RuntimeOptions opts;
  opts.prov = strategy.prov;
  opts.ship = strategy.ship;
  opts.num_physical = num_physical;
  opts.message_budget = budget;
  // Wall-clock cap per fixpoint run (the paper's 5-minute cap, scaled to
  // the reduced default topology); capped cells print as ">" values.
  opts.time_budget_s = 45;
  return opts;
}

FigurePrinter::FigurePrinter(std::string figure, std::string title,
                             std::string x_label,
                             std::vector<std::string> series)
    : figure_(std::move(figure)),
      title_(std::move(title)),
      x_label_(std::move(x_label)),
      series_(std::move(series)) {}

void FigurePrinter::Add(const std::string& series, double x,
                        const RunMetrics& m) {
  if (std::find(xs_.begin(), xs_.end(), x) == xs_.end()) xs_.push_back(x);
  cells_[{series, x}] = m;
}

void FigurePrinter::PrintPanel(const std::string& panel_title,
                               double (*extract)(const RunMetrics&),
                               const char* format) const {
  std::printf("\n%s\n", panel_title.c_str());
  std::printf("%-18s", x_label_.c_str());
  for (const std::string& s : series_) std::printf(" %18s", s.c_str());
  std::printf("\n");
  for (double x : xs_) {
    std::printf("%-18g", x);
    for (const std::string& s : series_) {
      auto it = cells_.find({s, x});
      if (it == cells_.end()) {
        std::printf(" %18s", "-");
        continue;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), format, extract(it->second));
      if (!it->second.converged) {
        // The paper reports these as ">5min" / off-scale arrows. One byte
        // wider than buf so the prefix can never truncate.
        char capped[66];
        std::snprintf(capped, sizeof(capped), ">%s", buf);
        std::printf(" %18s", capped);
      } else {
        std::printf(" %18s", buf);
      }
    }
    std::printf("\n");
  }
}

void FigurePrinter::PrintAll() const {
  std::printf("==== %s: %s ====\n", figure_.c_str(), title_.c_str());
  PrintPanel("(a) Per-tuple provenance overhead (B)",
             [](const RunMetrics& m) { return m.per_tuple_prov_bytes; },
             "%.1f");
  PrintPanel("(b) Communication overhead (MB)",
             [](const RunMetrics& m) { return m.comm_mb; }, "%.3f");
  PrintPanel("(c) State within operators (MB)",
             [](const RunMetrics& m) { return m.state_mb; }, "%.3f");
  PrintPanel("(d) Convergence time (s)",
             [](const RunMetrics& m) { return m.wall_seconds; }, "%.3f");
  std::printf("\n");
}

}  // namespace bench
}  // namespace recnet
