#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "topology/transit_stub.h"

namespace recnet {
namespace bench {

BenchEnv GetBenchEnv() {
  BenchEnv env;
  const char* scale = std::getenv("RECNET_PAPER_SCALE");
  env.paper_scale = scale != nullptr && scale[0] == '1';
  const char* seed = std::getenv("RECNET_SEED");
  if (seed != nullptr) env.seed = std::strtoull(seed, nullptr, 10);
  return env;
}

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string json_prefix = "--json=";
    if (arg.compare(0, json_prefix.size(), json_prefix) == 0) {
      args.json_path = arg.substr(json_prefix.size());
      continue;
    }
    const std::string shards_prefix = "--shards=";
    if (arg.compare(0, shards_prefix.size(), shards_prefix) == 0) {
      args.shards =
          static_cast<int>(std::strtol(arg.c_str() + shards_prefix.size(),
                                       nullptr, 10));
      if (args.shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        std::exit(2);
      }
      continue;
    }
    const std::string faults_prefix = "--faults=";
    if (arg.compare(0, faults_prefix.size(), faults_prefix) == 0) {
      args.faults_spec = arg.substr(faults_prefix.size());
      auto plan = fault::ParseFaultSpec(args.faults_spec);
      if (!plan.ok()) {
        std::fprintf(stderr, "--faults: %s\n",
                     plan.status().ToString().c_str());
        std::exit(2);
      }
      args.faults = *plan;
      continue;
    }
    const std::string save_prefix = "--ckpt-save=";
    if (arg.compare(0, save_prefix.size(), save_prefix) == 0) {
      args.ckpt_save = arg.substr(save_prefix.size());
      continue;
    }
    const std::string load_prefix = "--ckpt-load=";
    if (arg.compare(0, load_prefix.size(), load_prefix) == 0) {
      args.ckpt_load = arg.substr(load_prefix.size());
      continue;
    }
    std::fprintf(stderr,
                 "unknown argument '%s'\nusage: %s [--json=PATH] "
                 "[--shards=N] [--faults=SPEC] "
                 "[--ckpt-save=PATH | --ckpt-load=PATH]\n"
                 "env: RECNET_PAPER_SCALE=1 (paper topology), RECNET_SEED=N\n",
                 arg.c_str(), argv[0]);
    std::exit(2);
  }
  if (!args.ckpt_save.empty() && !args.ckpt_load.empty()) {
    std::fprintf(stderr, "--ckpt-save and --ckpt-load are exclusive\n");
    std::exit(2);
  }
  return args;
}

Topology DefaultTopology(bool dense, const BenchEnv& env) {
  if (env.paper_scale) {
    TransitStubOptions options;
    options.dense = dense;
    options.seed = env.seed;
    return MakeTransitStub(options);  // 100 nodes, ~200 links.
  }
  return MakeTransitStubWithTargetLinks(dense ? 100 : 55, dense, env.seed);
}

std::vector<Strategy> AllStrategies() {
  return {
      {"DRed", ProvMode::kSet, ShipMode::kDirect},
      {"Relative Eager", ProvMode::kRelative, ShipMode::kEager},
      {"Relative Lazy", ProvMode::kRelative, ShipMode::kLazy},
      {"Absorption Eager", ProvMode::kAbsorption, ShipMode::kEager},
      {"Absorption Lazy", ProvMode::kAbsorption, ShipMode::kLazy},
  };
}

std::vector<Strategy> RegionStrategies() {
  return {
      {"DRed", ProvMode::kSet, ShipMode::kDirect},
      {"Absorption Eager", ProvMode::kAbsorption, ShipMode::kEager},
      {"Absorption Lazy", ProvMode::kAbsorption, ShipMode::kLazy},
  };
}

RuntimeOptions MakeOptions(const Strategy& strategy, int num_physical,
                           uint64_t budget) {
  RuntimeOptions opts;
  opts.prov = strategy.prov;
  opts.ship = strategy.ship;
  opts.num_physical = num_physical;
  opts.message_budget = budget;
  // Wall-clock cap per fixpoint run (the paper's 5-minute cap, scaled to
  // the reduced default topology); capped cells print as ">" values.
  opts.time_budget_s = 45;
  return opts;
}

FigurePrinter::FigurePrinter(std::string figure, std::string title,
                             std::string x_label,
                             std::vector<std::string> series)
    : figure_(std::move(figure)),
      title_(std::move(title)),
      x_label_(std::move(x_label)),
      series_(std::move(series)),
      start_(std::chrono::steady_clock::now()) {}

void FigurePrinter::Add(const std::string& series, double x,
                        const RunMetrics& m) {
  if (std::find(xs_.begin(), xs_.end(), x) == xs_.end()) xs_.push_back(x);
  cells_[{series, x}] = m;
}

void FigurePrinter::AddShardCell(const std::string& series, double x,
                                 int shards, const RunMetrics& m) {
  shard_cells_.push_back(ShardCell{series, x, shards, m});
  std::printf("  [shard sweep] %s x=%g shards=%d: %llu msgs, %llu kills, "
              "%.3fs wall%s\n",
              series.c_str(), x, shards,
              static_cast<unsigned long long>(m.messages),
              static_cast<unsigned long long>(m.kill_messages),
              m.wall_seconds, m.converged ? "" : " (>budget)");
}

void FigurePrinter::AddLossyCell(const std::string& series,
                                 const std::string& spec, int shards,
                                 const RunMetrics& m) {
  lossy_cells_.push_back(LossyCell{series, spec, shards, m});
  std::printf("  [lossy link] %s spec=%s shards=%d: dropped=%llu "
              "retried=%llu duplicated=%llu, %.3fs wall%s\n",
              series.c_str(), spec.c_str(), shards,
              static_cast<unsigned long long>(m.link_dropped),
              static_cast<unsigned long long>(m.link_retried),
              static_cast<unsigned long long>(m.link_duplicated),
              m.wall_seconds, m.converged ? "" : " (>budget)");
}

void FigurePrinter::PrintPanel(const std::string& panel_title,
                               double (*extract)(const RunMetrics&),
                               const char* format) const {
  std::printf("\n%s\n", panel_title.c_str());
  std::printf("%-18s", x_label_.c_str());
  for (const std::string& s : series_) std::printf(" %18s", s.c_str());
  std::printf("\n");
  for (double x : xs_) {
    std::printf("%-18g", x);
    for (const std::string& s : series_) {
      auto it = cells_.find({s, x});
      if (it == cells_.end()) {
        std::printf(" %18s", "-");
        continue;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), format, extract(it->second));
      if (!it->second.converged) {
        // The paper reports these as ">5min" / off-scale arrows. One byte
        // wider than buf so the prefix can never truncate.
        char capped[66];
        std::snprintf(capped, sizeof(capped), ">%s", buf);
        std::printf(" %18s", capped);
      } else {
        std::printf(" %18s", buf);
      }
    }
    std::printf("\n");
  }
}

namespace {

// JSON string escaping for the small identifier strings we emit (series
// names, titles): quotes, backslashes, and control characters.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// %.17g round-trips doubles exactly; trims to the shortest representation
// for typical metric values.
void PrintJsonDouble(std::FILE* f, double v) {
  std::fprintf(f, "%.17g", v);
}

}  // namespace

bool FigurePrinter::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  double total_wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
  std::fprintf(f, "{\n  \"figure\": \"%s\",\n  \"title\": \"%s\",\n",
               JsonEscape(figure_).c_str(), JsonEscape(title_).c_str());
  std::fprintf(f, "  \"x_label\": \"%s\",\n", JsonEscape(x_label_).c_str());
  std::fprintf(f, "  \"series\": [");
  for (size_t i = 0; i < series_.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                 JsonEscape(series_[i]).c_str());
  }
  std::fprintf(f, "],\n  \"x\": [");
  for (size_t i = 0; i < xs_.size(); ++i) {
    std::fprintf(f, "%s", i == 0 ? "" : ", ");
    PrintJsonDouble(f, xs_[i]);
  }
  std::fprintf(f, "],\n  \"cells\": [\n");
  bool first = true;
  for (const std::string& s : series_) {
    for (double x : xs_) {
      auto it = cells_.find({s, x});
      if (it == cells_.end()) continue;
      const RunMetrics& m = it->second;
      std::fprintf(f, "%s    {\"series\": \"%s\", \"x\": ",
                   first ? "" : ",\n", JsonEscape(s).c_str());
      first = false;
      PrintJsonDouble(f, x);
      std::fprintf(f, ", \"per_tuple_prov_bytes\": ");
      PrintJsonDouble(f, m.per_tuple_prov_bytes);
      std::fprintf(f, ", \"comm_mb\": ");
      PrintJsonDouble(f, m.comm_mb);
      std::fprintf(f, ", \"state_mb\": ");
      PrintJsonDouble(f, m.state_mb);
      std::fprintf(f, ", \"wall_seconds\": ");
      PrintJsonDouble(f, m.wall_seconds);
      std::fprintf(f, ", \"sim_seconds\": ");
      PrintJsonDouble(f, m.sim_seconds);
      std::fprintf(f,
                   ", \"messages\": %llu, \"kill_messages\": %llu, "
                   "\"batches\": %llu, \"aborted_runs\": %llu, "
                   "\"dropped_messages\": %llu, \"link_dropped\": %llu, "
                   "\"link_retried\": %llu, \"link_duplicated\": %llu, "
                   "\"recoveries\": %llu, \"converged\": %s",
                   static_cast<unsigned long long>(m.messages),
                   static_cast<unsigned long long>(m.kill_messages),
                   static_cast<unsigned long long>(m.batches),
                   static_cast<unsigned long long>(m.aborted_runs),
                   static_cast<unsigned long long>(m.dropped_messages),
                   static_cast<unsigned long long>(m.link_dropped),
                   static_cast<unsigned long long>(m.link_retried),
                   static_cast<unsigned long long>(m.link_duplicated),
                   static_cast<unsigned long long>(m.recoveries),
                   m.converged ? "true" : "false");
      // Concurrent-manager observability (appended keys; the trajectory
      // format is append-only for the cross-PR diff scripts).
      std::fprintf(f,
                   ", \"bdd_stripe_contention\": %llu, "
                   "\"bdd_store_segments\": %llu, \"bdd_cache_hit_rate\": ",
                   static_cast<unsigned long long>(m.bdd_stripe_contention),
                   static_cast<unsigned long long>(m.bdd_store_segments));
      PrintJsonDouble(f, m.bdd_cache_hit_rate);
      std::fprintf(f, ", \"ship_demotions\": %llu",
                   static_cast<unsigned long long>(m.ship_demotions));
      std::fprintf(f, "}");
    }
  }
  // Run metadata: enough to interpret a trajectory file on its own —
  // which drain configuration produced it, whether the binary was an
  // optimized build, and whether the run went through a checkpoint/restore
  // cycle. ("shards" at top level predates this block and is kept for the
  // cross-PR diff scripts.)
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  std::fprintf(f,
               "\n  ],\n  \"shards\": %d,\n  \"meta\": {\"shards\": %d, "
               "\"build_type\": \"%s\", \"checkpoint\": %s, "
               "\"faults\": \"%s\"},\n"
               "  \"shard_sweep\": [",
               shards_, shards_, build_type, checkpoint_ ? "true" : "false",
               JsonEscape(faults_).c_str());
  // The shard sweep pins the sharded drain's determinism contract into the
  // trajectory: for one workload, messages/kill_messages must be identical
  // down the sweep while wall_seconds reflects the parallel drain.
  for (size_t i = 0; i < shard_cells_.size(); ++i) {
    const ShardCell& c = shard_cells_[i];
    std::fprintf(f, "%s\n    {\"series\": \"%s\", \"x\": ",
                 i == 0 ? "" : ",", JsonEscape(c.series).c_str());
    PrintJsonDouble(f, c.x);
    std::fprintf(f, ", \"shards\": %d, \"messages\": %llu, "
                 "\"kill_messages\": %llu, \"comm_mb\": ",
                 c.shards,
                 static_cast<unsigned long long>(c.metrics.messages),
                 static_cast<unsigned long long>(c.metrics.kill_messages));
    PrintJsonDouble(f, c.metrics.comm_mb);
    std::fprintf(f, ", \"wall_seconds\": ");
    PrintJsonDouble(f, c.metrics.wall_seconds);
    std::fprintf(f, ", \"converged\": %s}",
                 c.metrics.converged ? "true" : "false");
  }
  std::fprintf(f, "%s", shard_cells_.empty() ? "]" : "\n  ]");
  // Lossy-link cells (appended block): the same workload under a seeded
  // drop/dup plan must converge to the lossless fixpoint; the counters pin
  // the fault schedule the seed produces, so injector changes show up as a
  // trajectory diff rather than silently reshaping the fault model.
  if (!lossy_cells_.empty()) {
    std::fprintf(f, ",\n  \"lossy_link\": [");
    for (size_t i = 0; i < lossy_cells_.size(); ++i) {
      const LossyCell& c = lossy_cells_[i];
      std::fprintf(f,
                   "%s\n    {\"series\": \"%s\", \"spec\": \"%s\", "
                   "\"shards\": %d, \"messages\": %llu, "
                   "\"link_dropped\": %llu, \"link_retried\": %llu, "
                   "\"link_duplicated\": %llu, \"wall_seconds\": ",
                   i == 0 ? "" : ",", JsonEscape(c.series).c_str(),
                   JsonEscape(c.spec).c_str(), c.shards,
                   static_cast<unsigned long long>(c.metrics.messages),
                   static_cast<unsigned long long>(c.metrics.link_dropped),
                   static_cast<unsigned long long>(c.metrics.link_retried),
                   static_cast<unsigned long long>(c.metrics.link_duplicated));
      PrintJsonDouble(f, c.metrics.wall_seconds);
      std::fprintf(f, ", \"converged\": %s}",
                   c.metrics.converged ? "true" : "false");
    }
    std::fprintf(f, "\n  ]");
  }
  std::fprintf(f, ",\n  \"total_wall_seconds\": ");
  PrintJsonDouble(f, total_wall);
  std::fprintf(f, "\n}\n");
  bool ok = std::fclose(f) == 0;
  if (ok) std::printf("wrote %s\n", path.c_str());
  return ok;
}

void FigurePrinter::PrintAll() const {
  std::printf("==== %s: %s ====\n", figure_.c_str(), title_.c_str());
  PrintPanel("(a) Per-tuple provenance overhead (B)",
             [](const RunMetrics& m) { return m.per_tuple_prov_bytes; },
             "%.1f");
  PrintPanel("(b) Communication overhead (MB)",
             [](const RunMetrics& m) { return m.comm_mb; }, "%.3f");
  PrintPanel("(c) State within operators (MB)",
             [](const RunMetrics& m) { return m.state_mb; }, "%.3f");
  PrintPanel("(d) Convergence time (s)",
             [](const RunMetrics& m) { return m.wall_seconds; }, "%.3f");
  std::printf("\n");
}

}  // namespace bench
}  // namespace recnet
