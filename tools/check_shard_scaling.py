#!/usr/bin/env python3
"""Shard-scaling regression gate over a bench trajectory JSON.

Reads the `shard_sweep` block of a figure bench's --json output and checks
that the parallel drain actually pays off: for the gated (series, x) cell,
the wall time at the highest recorded shard count must be below the
1-shard (sequential drain) wall time, scaled by --max-ratio.

The sweep's traffic counters are checked elsewhere (the determinism step);
this gate is purely about wall-clock scaling, so it refuses to run on a
machine that cannot exhibit scaling at all: with a single hardware thread
the router never spawns drain workers (oversubscription only adds cost),
and the gate exits 0 with a SKIP note instead of measuring noise.

Exit codes: 0 pass/skip, 1 regression, 2 usage or malformed input.
"""

import argparse
import json
import os
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_path", help="bench --json output (e.g. fig07.json)")
    ap.add_argument("--series", default="Absorption Lazy",
                    help="series to gate (default: %(default)s)")
    ap.add_argument("--x", type=float, default=1.0,
                    help="x value of the gated cell (default: %(default)s)")
    ap.add_argument("--max-ratio", type=float, default=1.0,
                    help="max allowed wall(max shards)/wall(1 shard) "
                         "(default: %(default)s — sharded must be faster)")
    args = ap.parse_args()

    cores = os.cpu_count() or 1
    if cores < 2:
        print(f"SKIP: {cores} hardware thread(s); the drain cannot scale "
              "here (workers are clamped to hardware concurrency)")
        return 0

    try:
        with open(args.json_path) as f:
            doc = json.load(f)
        sweep = doc["shard_sweep"]
    except (OSError, ValueError, KeyError) as e:
        print(f"error: cannot read shard_sweep from {args.json_path}: {e}",
              file=sys.stderr)
        return 2

    cells = {c["shards"]: c for c in sweep
             if c["series"] == args.series and c["x"] == args.x}
    if 1 not in cells or len(cells) < 2:
        print(f"error: sweep lacks a 1-shard baseline and a sharded cell "
              f"for ({args.series!r}, x={args.x})", file=sys.stderr)
        return 2

    base = cells[1]["wall_seconds"]
    top_shards = max(cells)
    top = cells[top_shards]["wall_seconds"]
    if base <= 0:
        print(f"error: non-positive 1-shard wall time {base}",
              file=sys.stderr)
        return 2

    ratio = top / base
    verdict = "OK" if ratio <= args.max_ratio else "REGRESSION"
    print(f"{verdict}: {args.series!r} x={args.x}: "
          f"1 shard {base:.3f}s -> {top_shards} shards {top:.3f}s "
          f"(ratio {ratio:.2f}, limit {args.max_ratio:.2f}, {cores} cores)")
    return 0 if ratio <= args.max_ratio else 1


if __name__ == "__main__":
    sys.exit(main())
