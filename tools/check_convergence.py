#!/usr/bin/env python3
"""CI gate: every cell of a committed benchmark trajectory must converge.

Scans the cell blocks of one or more benchmark JSON files (BENCH_fig07.json,
BENCH_fig09.json, ...) and fails if any run records "converged": false or a
nonzero aborted_runs. A cell that blows its drain budget means the committed
trajectory no longer demonstrates the paper's result for that configuration —
that should fail the build, not sit silently in the JSON.

Usage: check_convergence.py BENCH_fig07.json [BENCH_fig09.json ...]
Exit codes: 0 all cells converged, 1 non-converged cell(s), 2 bad input.
"""

import json
import sys

# Top-level keys whose values are lists of per-run cells. "meta"/"shards"
# and scalar totals are skipped; unknown future list-of-dict blocks are
# scanned too, so new sweeps are gated by default.
_SKIP_KEYS = {"meta"}


def iter_cells(doc):
    for key, block in doc.items():
        if key in _SKIP_KEYS or not isinstance(block, list):
            continue
        for i, cell in enumerate(block):
            if isinstance(cell, dict):
                yield key, i, cell


def describe(cell):
    parts = []
    for k in ("series", "strategy", "x", "shards", "links", "nodes"):
        if k in cell:
            parts.append(f"{k}={cell[k]}")
    return " ".join(parts) or "<unlabeled cell>"


def main(paths):
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    total = 0
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print(f"error: cannot read {path}: {e}", file=sys.stderr)
            return 2
        cells = list(iter_cells(doc))
        if not cells:
            print(f"error: {path} contains no cell blocks", file=sys.stderr)
            return 2
        for block, i, cell in cells:
            total += 1
            converged = cell.get("converged", True)
            aborted = cell.get("aborted_runs", 0)
            if converged and not aborted:
                continue
            why = []
            if not converged:
                why.append("converged: false")
            if aborted:
                why.append(f"aborted_runs: {aborted}")
            failures.append(f"{path} {block}[{i}] ({describe(cell)}): "
                            + ", ".join(why))
    if failures:
        print(f"{len(failures)} non-converged cell(s) out of {total}:",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"all {total} cells converged")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
