// recnet_ckpt — session checkpoint inspector.
//
//   recnet_ckpt <snapshot>            describe the snapshot
//   recnet_ckpt --verify <snapshot>   also recompute and check the checksum
//
// Reads only the self-describing summary (persist/snapshot.h): deployment
// parameters, per-relation live-fact counts, per-view provenance modes and
// message totals, and the serialized BDD unique-table size. Exits non-zero
// (with the typed error on stderr) when the file is missing, truncated,
// version-skewed, or — under --verify — fails its checksum.

#include <cstdio>
#include <cstring>
#include <string>

#include "persist/snapshot.h"
#include "persist/wire.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--verify] <snapshot>\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (path == nullptr) return Usage(argv[0]);

  recnet::persist::SnapshotHeader header;
  recnet::persist::SnapshotSummary summary;
  recnet::Status st =
      recnet::persist::InspectSnapshot(path, verify, &header, &summary);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", path, st.ToString().c_str());
    return 1;
  }

  std::printf("%s\n", path);
  std::printf("  format version %u, payload %llu bytes, checksum %016llx%s\n",
              header.version,
              static_cast<unsigned long long>(header.payload_size),
              static_cast<unsigned long long>(header.checksum),
              verify ? " (verified)" : "");
  std::printf(
      "  deployment: %d logical nodes on %d physical peers, %d shard(s), "
      "batch delivery %s\n",
      summary.num_nodes, summary.num_physical, summary.shards,
      summary.batch_delivery ? "on" : "off");
  std::printf("  bdd: %u serialized node(s)\n", summary.bdd_nodes);
  std::printf("  relations (%zu):\n", summary.relations.size());
  for (const auto& rel : summary.relations) {
    std::printf("    %-20s arity %llu  %-10s %llu live fact(s)\n",
                rel.name.c_str(), static_cast<unsigned long long>(rel.arity),
                rel.dynamic ? "dynamic" : "static",
                static_cast<unsigned long long>(rel.live_facts));
  }
  std::printf("  views (%zu):\n", summary.views.size());
  for (const auto& view : summary.views) {
    std::printf("    %-20s prov %-10s %llu message(s)\n", view.name.c_str(),
                view.prov_mode.c_str(),
                static_cast<unsigned long long>(view.messages));
  }
  return 0;
}
