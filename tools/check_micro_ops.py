#!/usr/bin/env python3
"""Regression gate for the micro_ops benchmark suite.

Compares a fresh google-benchmark JSON dump against the committed baseline
(BENCH_micro_ops_baseline.json) and fails when any benchmark's per-iteration
CPU time regressed beyond the threshold. The threshold is deliberately
generous (default 2x): the gate exists to catch order-of-magnitude
regressions on the operator/BDD hot paths, not to flag scheduler noise on
shared CI runners.

Usage: check_micro_ops.py CURRENT.json BASELINE.json [--threshold 2.0]
Exit codes: 0 ok, 1 regression, 2 bad input.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate entries (mean/median/stddev) would double-count; the
        # suite runs plain fixed-iteration benchmarks only.
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = float(bench["cpu_time"])
    if not out:
        print(f"error: {path} contains no benchmarks", file=sys.stderr)
        sys.exit(2)
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when current > threshold * baseline")
    args = parser.parse_args()

    current = load_benchmarks(args.current)
    baseline = load_benchmarks(args.baseline)

    regressions = []
    width = max(len(n) for n in sorted(set(current) | set(baseline)))
    for name in sorted(baseline):
        if name not in current:
            # A baseline benchmark that vanished counts as a failure —
            # otherwise deleting (or crashing out of) a regressed benchmark
            # would silently bypass the gate.
            regressions.append((name, float("inf")))
            print(f"{name:<{width}}  MISSING from current run", file=sys.stderr)
            continue
        ratio = current[name] / baseline[name] if baseline[name] > 0 else 1.0
        flag = ""
        if ratio > args.threshold:
            regressions.append((name, ratio))
            flag = f"  REGRESSION (> {args.threshold:.1f}x)"
        print(f"{name:<{width}}  baseline {baseline[name]:>12.1f}ns"
              f"  current {current[name]:>12.1f}ns  ratio {ratio:5.2f}x{flag}")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  (new benchmark, no baseline)")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.1f}x:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        sys.exit(1)
    print("\nmicro_ops within threshold")


if __name__ == "__main__":
    main()
