#ifndef RECNET_QUERIES_REFERENCE_H_
#define RECNET_QUERIES_REFERENCE_H_

#include <optional>
#include <set>
#include <vector>

#include "topology/sensor_grid.h"
#include "topology/workload.h"

namespace recnet {

// Centralized, from-scratch oracle implementations of the paper's queries.
// The distributed engines are validated against these in tests and in
// EXPERIMENTS.md: after any sequence of insertions and deletions, the
// incrementally maintained views must equal a from-scratch recomputation.

// Query 1: reachable(x, y) — transitive closure of the directed link set.
// reachable[x] is the set of nodes reachable from x in >= 1 hop.
std::vector<std::set<int>> ReferenceReachability(
    int num_nodes, const std::vector<LinkTuple>& links);

// Query 2 aggregates: min path cost and min hop count per (src, dst) pair,
// via Dijkstra / BFS over the directed links. Unreachable pairs are
// nullopt. Paths with >= 1 hop only (matching the view's base case).
struct ReferenceShortestPaths {
  std::vector<std::vector<std::optional<double>>> min_cost;
  std::vector<std::vector<std::optional<int64_t>>> min_hops;
};
ReferenceShortestPaths ReferenceShortest(int num_nodes,
                                         const std::vector<LinkTuple>& links);

// Query 3: activeRegion(r, x) — for each region r, the contiguous set of
// sensors grown from the (triggered) seed: y joins if some member x is
// triggered and distance(x, y) < k.
std::vector<std::set<int>> ReferenceRegions(
    const SensorField& field, const std::vector<bool>& triggered);

}  // namespace recnet

#endif  // RECNET_QUERIES_REFERENCE_H_
