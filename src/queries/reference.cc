#include "queries/reference.h"

#include <limits>
#include <queue>

namespace recnet {

std::vector<std::set<int>> ReferenceReachability(
    int num_nodes, const std::vector<LinkTuple>& links) {
  std::vector<std::vector<int>> adj(static_cast<size_t>(num_nodes));
  for (const LinkTuple& link : links) {
    adj[static_cast<size_t>(link.src)].push_back(link.dst);
  }
  std::vector<std::set<int>> out(static_cast<size_t>(num_nodes));
  for (int src = 0; src < num_nodes; ++src) {
    // BFS from each successor of src (>= 1 hop reachability, so src itself
    // is included only when it lies on a cycle).
    std::vector<bool> seen(static_cast<size_t>(num_nodes), false);
    std::queue<int> frontier;
    for (int next : adj[static_cast<size_t>(src)]) {
      if (!seen[static_cast<size_t>(next)]) {
        seen[static_cast<size_t>(next)] = true;
        frontier.push(next);
      }
    }
    while (!frontier.empty()) {
      int n = frontier.front();
      frontier.pop();
      out[static_cast<size_t>(src)].insert(n);
      for (int next : adj[static_cast<size_t>(n)]) {
        if (!seen[static_cast<size_t>(next)]) {
          seen[static_cast<size_t>(next)] = true;
          frontier.push(next);
        }
      }
    }
  }
  return out;
}

ReferenceShortestPaths ReferenceShortest(int num_nodes,
                                         const std::vector<LinkTuple>& links) {
  std::vector<std::vector<std::pair<int, double>>> adj(
      static_cast<size_t>(num_nodes));
  for (const LinkTuple& link : links) {
    adj[static_cast<size_t>(link.src)].emplace_back(link.dst, link.cost_ms);
  }
  ReferenceShortestPaths result;
  result.min_cost.assign(
      static_cast<size_t>(num_nodes),
      std::vector<std::optional<double>>(static_cast<size_t>(num_nodes)));
  result.min_hops.assign(
      static_cast<size_t>(num_nodes),
      std::vector<std::optional<int64_t>>(static_cast<size_t>(num_nodes)));

  for (int src = 0; src < num_nodes; ++src) {
    // Dijkstra for cost. Distances are for paths of >= 1 hop, so dist[src]
    // is the cheapest cycle through src (may stay unset).
    std::vector<double> dist(static_cast<size_t>(num_nodes),
                             std::numeric_limits<double>::infinity());
    using Entry = std::pair<double, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
    for (const auto& [next, cost] : adj[static_cast<size_t>(src)]) {
      if (cost < dist[static_cast<size_t>(next)]) {
        dist[static_cast<size_t>(next)] = cost;
        pq.push({cost, next});
      }
    }
    while (!pq.empty()) {
      auto [d, n] = pq.top();
      pq.pop();
      if (d > dist[static_cast<size_t>(n)]) continue;
      for (const auto& [next, cost] : adj[static_cast<size_t>(n)]) {
        if (d + cost < dist[static_cast<size_t>(next)]) {
          dist[static_cast<size_t>(next)] = d + cost;
          pq.push({d + cost, next});
        }
      }
    }
    // BFS for hops, same >= 1 hop convention.
    std::vector<int64_t> hops(static_cast<size_t>(num_nodes), -1);
    std::queue<int> frontier;
    for (const auto& [next, cost] : adj[static_cast<size_t>(src)]) {
      if (hops[static_cast<size_t>(next)] < 0) {
        hops[static_cast<size_t>(next)] = 1;
        frontier.push(next);
      }
    }
    while (!frontier.empty()) {
      int n = frontier.front();
      frontier.pop();
      for (const auto& [next, cost] : adj[static_cast<size_t>(n)]) {
        if (hops[static_cast<size_t>(next)] < 0) {
          hops[static_cast<size_t>(next)] = hops[static_cast<size_t>(n)] + 1;
          frontier.push(next);
        }
      }
    }
    for (int dst = 0; dst < num_nodes; ++dst) {
      if (dist[static_cast<size_t>(dst)] !=
          std::numeric_limits<double>::infinity()) {
        result.min_cost[static_cast<size_t>(src)][static_cast<size_t>(dst)] =
            dist[static_cast<size_t>(dst)];
      }
      if (hops[static_cast<size_t>(dst)] >= 0) {
        result.min_hops[static_cast<size_t>(src)][static_cast<size_t>(dst)] =
            hops[static_cast<size_t>(dst)];
      }
    }
  }
  return result;
}

std::vector<std::set<int>> ReferenceRegions(
    const SensorField& field, const std::vector<bool>& triggered) {
  std::vector<std::set<int>> regions(field.seed_sensors.size());
  for (size_t r = 0; r < field.seed_sensors.size(); ++r) {
    int seed = field.seed_sensors[r];
    if (!triggered[static_cast<size_t>(seed)]) continue;
    // Grow: members whose (triggered) presence admits neighbors.
    std::set<int>& members = regions[r];
    members.insert(seed);
    std::queue<int> frontier;
    frontier.push(seed);
    while (!frontier.empty()) {
      int x = frontier.front();
      frontier.pop();
      if (!triggered[static_cast<size_t>(x)]) continue;  // Cannot expand.
      for (int y : field.neighbors[static_cast<size_t>(x)]) {
        if (members.insert(y).second) frontier.push(y);
      }
    }
  }
  return regions;
}

}  // namespace recnet
