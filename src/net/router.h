#ifndef RECNET_NET_ROUTER_H_
#define RECNET_NET_ROUTER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "operators/update.h"

namespace recnet {

// Traffic accounting for one engine run. These counters back the paper's
// evaluation metrics: communication overhead (bytes of messages exchanged
// between *physical* peers), per-tuple provenance overhead (average
// annotation bytes on shipped insertions), and per-peer traffic (Figure 13
// reports per-node communication as physical peers vary).
struct NetworkStats {
  uint64_t messages = 0;        // Cross-physical messages.
  uint64_t bytes = 0;           // Cross-physical bytes.
  uint64_t local_messages = 0;  // Same-peer messages (free on the wire).
  uint64_t insert_messages = 0;
  uint64_t delete_messages = 0;
  uint64_t kill_messages = 0;
  uint64_t prov_bytes = 0;    // Annotation bytes on cross-physical inserts.
  uint64_t prov_samples = 0;  // Number of such inserts.
  // Delivery batches (runs of same-(dst, port) messages handed to the
  // handler in one call). Equals deliveries when batching is off.
  uint64_t batches = 0;
  // Budget-exhaustion accounting: runs cut off before quiescence, and the
  // messages discarded from the queue when that happened. Non-zero exactly
  // when a figure cell is reported as "did not complete".
  uint64_t aborted_runs = 0;
  uint64_t dropped_messages = 0;
  std::vector<uint64_t> per_peer_bytes;

  double AvgProvBytesPerTuple() const {
    return prov_samples == 0
               ? 0.0
               : static_cast<double>(prov_bytes) / prov_samples;
  }
  double CommMB() const { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

  void Reset();
};

// A message in flight between two logical nodes.
struct Envelope {
  Envelope() = default;
  Envelope(LogicalNode s, LogicalNode d, int p, Update&& u)
      : src(s), dst(d), port(p), update(std::move(u)) {}

  LogicalNode src = 0;
  LogicalNode dst = 0;
  int port = 0;  // Which operator input at the destination.
  Update update;
};

// Discrete, deterministic substitute for the paper's cluster + FreePastry
// transport: logical query-processing nodes exchange updates over reliable
// FIFO channels, and logical nodes are mapped onto a configurable number of
// physical peers (messages between co-located logical nodes cost nothing on
// the wire). A single global FIFO queue preserves per-channel ordering and
// makes runs exactly reproducible, which implements the paper's pipelined
// semi-naive evaluation ("tuples are processed in the order in which they
// arrive via the network, assuming a FIFO channel").
//
// Delivery is batched: consecutive queued messages bound for the same
// logical destination *and operator port* are handed to the batch handler as
// one contiguous run, amortizing handler dispatch across the run and letting
// runtimes hoist per-destination/per-port state lookups out of their inner
// loops (every envelope of a run hits the same operator input). Batching
// never reorders messages — a run is a prefix of the global FIFO — so runs
// are delivery-for-delivery identical to unbatched execution and every
// NetworkStats counter except `batches` matches exactly (wire accounting
// happens at Send time, one message per update, batched or not).
//
// Port namespaces: several co-resident runtimes (the views of one
// recnet::Session) can share a router by operating in disjoint port ranges
// of kPortsPerNamespace ports each — view v uses absolute ports
// [v*kPortsPerNamespace, (v+1)*kPortsPerNamespace). Traffic accounting is
// kept per namespace (charged from the port at Send time), so every view
// reads exactly the counters it would have produced on a private router;
// batching keys on (dst, absolute port), so runs never mix views. A router
// starts with one namespace, which also absorbs any out-of-range port, so
// single-runtime use is unchanged.
class Router {
 public:
  using Handler = std::function<void(const Envelope&)>;
  // Receives contiguous same-(dst, port) runs.
  using BatchHandler = std::function<void(const Envelope* envs, size_t n)>;

  // Width of one port namespace. Wider than any runtime's operator-port
  // count (the region plan uses 5) to leave room for new operators.
  static constexpr int kPortsPerNamespace = 8;

  Router(int num_logical, int num_physical);

  // Registers one more port namespace and returns its id (the first
  // namespace, id 0, always exists). Namespace `ns` owns absolute ports
  // [ns*kPortsPerNamespace, (ns+1)*kPortsPerNamespace) and its own
  // NetworkStats.
  int AddNamespace();
  int num_namespaces() const { return static_cast<int>(stats_.size()); }

  // Extends the logical-node id space (the dynamic topology of a session);
  // shrinking is not supported. Physical peer count is fixed at
  // construction — new logical nodes map onto the existing peers.
  void GrowLogical(int num_logical);

  // Per-envelope handler. Used as a fallback when no batch handler is set
  // (each envelope of a batch is dispatched individually).
  void set_handler(Handler handler) { handler_ = std::move(handler); }
  // Batch-aware handler: receives contiguous same-(dst, port) runs.
  void set_batch_handler(BatchHandler handler) {
    batch_handler_ = std::move(handler);
  }
  // Disables run coalescing (batches of size 1). The engine exposes this
  // via RuntimeOptions::batch_delivery for A/B runs; results and traffic
  // counters are identical either way.
  void set_batching(bool enabled) { batching_ = enabled; }

  int num_logical() const { return num_logical_; }
  int num_physical() const { return num_physical_; }
  int PhysicalOf(LogicalNode n) const { return n % num_physical_; }

  // Enqueues an update from `src` to `dst`. Wire cost is charged only when
  // the endpoints live on different physical peers. Takes the update by
  // rvalue: exactly one move lands it in the queue.
  void Send(LogicalNode src, LogicalNode dst, int port, Update&& update);

  // Enqueues a batch of updates along one channel, equivalent to (and
  // charged exactly like) one Send per update. The contiguous enqueue makes
  // the whole batch eligible for single-dispatch delivery.
  void SendBatch(LogicalNode src, LogicalNode dst, int port,
                 std::vector<Update> updates);

  // Delivers the oldest pending message to the handler. Returns false when
  // the network is quiescent.
  bool Step();

  // Delivers the oldest pending run of same-(dst, port) messages (at most
  // `max_n`) as one batch. Returns the number of messages delivered, 0 when
  // quiescent.
  size_t StepBatch(size_t max_n = SIZE_MAX);

  // Drains the queue. Returns false if `max_messages` deliveries did not
  // reach quiescence (the experiment's work budget — the paper's "did not
  // complete within 5 minutes"); the undelivered remainder is discarded and
  // recorded in NetworkStats::{aborted_runs,dropped_messages} so the run
  // cannot silently resume from a stale queue.
  bool RunUntilQuiescent(uint64_t max_messages);

  // Discards all pending messages, recording them as dropped and the run as
  // aborted (the abort is charged to namespace `ns`, the runtime whose
  // budget ran out; dropped messages count against their own namespaces).
  // Called on budget exhaustion. The dropped messages' wire charges are
  // reversed: a message that never reached its destination is not
  // communication the truncated run performed, so ">budget" figure cells
  // report the traffic delivered up to the cutoff instead of whatever
  // happened to be sitting in the queue. (Do not Reset stats while messages
  // are pending; uncharging assumes the pending charges are still in the
  // counters.)
  void AbortRun(int ns = 0);

  // Discards (and uncharges) the pending messages of one port namespace,
  // leaving every other namespace's FIFO order intact. Called when a view
  // detaches from a shared router with traffic still queued (e.g. a
  // program whose ground-fact load failed after fanning out) so later
  // drains cannot dispatch into the retired namespace.
  void PurgeNamespace(int ns);

  size_t pending() const { return current_.size() - head_ + inbox_.size(); }
  uint64_t delivered() const { return delivered_; }

  NetworkStats& stats(int ns = 0) { return stats_[static_cast<size_t>(ns)]; }
  const NetworkStats& stats(int ns = 0) const {
    return stats_[static_cast<size_t>(ns)];
  }

 private:
  // The namespace owning absolute port `port`. Out-of-range ports fall into
  // the last namespace, so a single-namespace router accepts any port.
  int NamespaceOf(int port) const {
    int ns = port / kPortsPerNamespace;
    int last = static_cast<int>(stats_.size()) - 1;
    return ns < 0 ? 0 : (ns > last ? last : ns);
  }

  void ChargeSend(LogicalNode src, LogicalNode dst, int port,
                  const Update& update);
  // Reverses ChargeSend for a message that is being dropped undelivered.
  void UnchargeSend(const Envelope& env);
  // Moves inbox_ into the drain position once current_ is exhausted.
  // Returns false when both are empty (quiescent).
  bool Refill();

  int num_logical_;
  int num_physical_;
  Handler handler_;
  BatchHandler batch_handler_;
  bool batching_ = true;
  // Two-phase FIFO: deliveries drain `current_` front to back (head_ is the
  // next undelivered index) while handlers enqueue into `inbox_`; when
  // current_ runs dry the vectors swap. This keeps runs contiguous in
  // memory for batch dispatch and reuses capacity instead of paying deque
  // node churn per message.
  std::vector<Envelope> current_;
  size_t head_ = 0;
  std::vector<Envelope> inbox_;
  // One NetworkStats per port namespace (size >= 1).
  std::vector<NetworkStats> stats_;
  uint64_t delivered_ = 0;
};

}  // namespace recnet

#endif  // RECNET_NET_ROUTER_H_
