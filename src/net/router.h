#ifndef RECNET_NET_ROUTER_H_
#define RECNET_NET_ROUTER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "operators/update.h"

namespace recnet {

// Traffic accounting for one engine run. These counters back the paper's
// evaluation metrics: communication overhead (bytes of messages exchanged
// between *physical* peers), per-tuple provenance overhead (average
// annotation bytes on shipped insertions), and per-peer traffic (Figure 13
// reports per-node communication as physical peers vary).
struct NetworkStats {
  uint64_t messages = 0;        // Cross-physical messages.
  uint64_t bytes = 0;           // Cross-physical bytes.
  uint64_t local_messages = 0;  // Same-peer messages (free on the wire).
  uint64_t insert_messages = 0;
  uint64_t delete_messages = 0;
  uint64_t kill_messages = 0;
  uint64_t prov_bytes = 0;    // Annotation bytes on cross-physical inserts.
  uint64_t prov_samples = 0;  // Number of such inserts.
  std::vector<uint64_t> per_peer_bytes;

  double AvgProvBytesPerTuple() const {
    return prov_samples == 0
               ? 0.0
               : static_cast<double>(prov_bytes) / prov_samples;
  }
  double CommMB() const { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

  void Reset();
};

// A message in flight between two logical nodes.
struct Envelope {
  LogicalNode src = 0;
  LogicalNode dst = 0;
  int port = 0;  // Which operator input at the destination.
  Update update;
};

// Discrete, deterministic substitute for the paper's cluster + FreePastry
// transport: logical query-processing nodes exchange updates over reliable
// FIFO channels, and logical nodes are mapped onto a configurable number of
// physical peers (messages between co-located logical nodes cost nothing on
// the wire). A single global FIFO queue preserves per-channel ordering and
// makes runs exactly reproducible, which implements the paper's pipelined
// semi-naive evaluation ("tuples are processed in the order in which they
// arrive via the network, assuming a FIFO channel").
class Router {
 public:
  using Handler = std::function<void(const Envelope&)>;

  Router(int num_logical, int num_physical);

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  int num_logical() const { return num_logical_; }
  int num_physical() const { return num_physical_; }
  int PhysicalOf(LogicalNode n) const { return n % num_physical_; }

  // Enqueues an update from `src` to `dst`. Wire cost is charged only when
  // the endpoints live on different physical peers.
  void Send(LogicalNode src, LogicalNode dst, int port, Update update);

  // Delivers the oldest pending message to the handler. Returns false when
  // the network is quiescent.
  bool Step();

  // Drains the queue. Returns false if `max_messages` deliveries did not
  // reach quiescence (the experiment's work budget — the paper's "did not
  // complete within 5 minutes").
  bool RunUntilQuiescent(uint64_t max_messages);

  size_t pending() const { return queue_.size(); }
  uint64_t delivered() const { return delivered_; }

  NetworkStats& stats() { return stats_; }
  const NetworkStats& stats() const { return stats_; }

 private:
  int num_logical_;
  int num_physical_;
  Handler handler_;
  std::deque<Envelope> queue_;
  NetworkStats stats_;
  uint64_t delivered_ = 0;
};

}  // namespace recnet

#endif  // RECNET_NET_ROUTER_H_
