#ifndef RECNET_NET_ROUTER_H_
#define RECNET_NET_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/router_shard.h"
#include "operators/update.h"

namespace recnet {

namespace fault {
class FaultInjector;
}  // namespace fault

// Discrete, deterministic substitute for the paper's cluster + FreePastry
// transport: logical query-processing nodes exchange updates over reliable
// FIFO channels, and logical nodes are mapped onto a configurable number of
// physical peers (messages between co-located logical nodes cost nothing on
// the wire). The global FIFO order preserves per-channel ordering and makes
// runs exactly reproducible, which implements the paper's pipelined
// semi-naive evaluation ("tuples are processed in the order in which they
// arrive via the network, assuming a FIFO channel").
//
// Sharding: the logical node-id space is partitioned across `num_shards`
// RouterShards (node n resides on shard n % num_shards); each shard owns
// the queues, outgoing mailboxes, and per-namespace NetworkStats of its
// resident nodes. The drain is a superstep loop: within a generation every
// shard processes its slice of the global delivery sequence (in parallel
// worker threads when the engine requests it), sends land in per-(src shard,
// dst shard) mailboxes, and the superstep barrier merges all mailboxes by
// the canonical send-order key (Envelope::key_trig/key_sub) into the next
// generation, assigning global sequence numbers as it goes.
//
// Determinism contract: the barrier merge reconstructs, for every shard
// count, exactly the delivery order of the classic single-FIFO router —
// each node sees its messages in the same order, so per-node operator state,
// every sent message, and every NetworkStats counter except `batches` are
// bit-identical across shard counts (and identical to the pre-sharding
// sequential router when num_shards == 1). The one requirement on handlers
// is that messages sent while processing a delivery originate (`src`) from
// the node being processed — true of every runtime, and what charges the
// send to the right shard without locks.
//
// Delivery is batched: runs of consecutive-sequence messages bound for the
// same (dst, port) are handed to the batch handler as one contiguous run,
// amortizing handler dispatch and letting runtimes hoist per-destination
// state lookups (every envelope of a run hits the same operator input).
// Batching never reorders messages, so runs are delivery-for-delivery
// identical to unbatched execution and every NetworkStats counter except
// `batches` matches exactly (wire accounting happens at Send time).
//
// Port namespaces: several co-resident runtimes (the views of one
// recnet::Session) can share a router by operating in disjoint port ranges
// of kPortsPerNamespace ports each — view v uses absolute ports
// [v*kPortsPerNamespace, (v+1)*kPortsPerNamespace). Traffic accounting is
// kept per namespace (charged from the port at Send time), so every view
// reads exactly the counters it would have produced on a private router;
// batching keys on (dst, absolute port), so runs never mix views. A router
// starts with one namespace, which also absorbs any out-of-range port, so
// single-runtime use is unchanged.
class Router {
 public:
  using Handler = std::function<void(const Envelope&)>;
  // Receives contiguous same-(dst, port) runs.
  using BatchHandler = std::function<void(const Envelope* envs, size_t n)>;

  // Width of one port namespace. Wider than any runtime's operator-port
  // count (the region plan uses 5) to leave room for new operators.
  static constexpr int kPortsPerNamespace = 8;

  Router(int num_logical, int num_physical, int num_shards = 1);

  // Registers one more port namespace and returns its id (the first
  // namespace, id 0, always exists). Namespace `ns` owns absolute ports
  // [ns*kPortsPerNamespace, (ns+1)*kPortsPerNamespace) and its own
  // NetworkStats.
  int AddNamespace();
  int num_namespaces() const { return num_namespaces_; }

  // Extends the logical-node id space (the dynamic topology of a session);
  // shrinking is not supported. Physical peer count and shard count are
  // fixed at construction — new logical nodes map onto the existing peers
  // and shards (node n resides on shard n % num_shards, so growth never
  // rebalances existing nodes).
  void GrowLogical(int num_logical);

  // Per-envelope handler. Used as a fallback when no batch handler is set
  // (each envelope of a batch is dispatched individually).
  void set_handler(Handler handler) { handler_ = std::move(handler); }
  // Batch-aware handler: receives contiguous same-(dst, port) runs.
  void set_batch_handler(BatchHandler handler) {
    batch_handler_ = std::move(handler);
  }
  // Disables run coalescing (batches of size 1). The engine exposes this
  // via RuntimeOptions::batch_delivery for A/B runs; results and traffic
  // counters are identical either way.
  void set_batching(bool enabled) { batching_ = enabled; }

  int num_logical() const { return num_logical_; }
  int num_physical() const { return num_physical_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int PhysicalOf(LogicalNode n) const { return n % num_physical_; }
  int ShardOf(LogicalNode n) const {
    return static_cast<int>(n) % num_shards();
  }

  // The shard whose queue the calling thread is draining (0 outside a
  // drain). Runtimes index per-shard side state (e.g. view-delta logs) by
  // it so parallel workers never contend.
  static int current_shard() { return tls_shard_; }

  // Worker-thread budget of the parallel drain: the machine's hardware
  // concurrency unless overridden. Each worker drains a strided subset of
  // the shard queues, so any width produces the same result; spawning more
  // threads than hardware threads only buys context-switch and cold-cache
  // cost. Width 1 (a single-core host) short-circuits to the interleaved
  // drain — and lets the engine keep the BDD manager's cheaper
  // single-threaded mode.
  static int ParallelWidth();
  // Test hook: forces the width (0 restores hardware auto-detection), so
  // race detectors on small CI machines still exercise the genuinely
  // multi-threaded drain.
  static void OverrideParallelWidth(int width);

  // True when no shard holds an undelivered envelope of the current
  // generation (trivially true between generations). Generation boundaries
  // are shard-count invariant — PrepareGeneration is a no-op mid
  // generation — so this is where the engine publishes cross-node effects
  // staged during parallel dispatch. Coordinator-only (workers joined).
  bool generation_consumed() const {
    for (const RouterShard& s : shards_) {
      if (s.head < s.queue.size()) return false;
    }
    return true;
  }

  // Number of generations begun so far: incremented exactly when
  // PrepareGeneration merges staged sends into a new deliverable
  // generation. Generation boundaries are BSP points determined by the
  // message dependency depth alone, so this count is identical for every
  // shard count (single-shard StepBatch refills and superstep merges bump
  // it at the same logical instants). The engine derives the dead-variable
  // visibility epoch from it. Stable while workers run (merges happen with
  // workers joined).
  uint64_t generations_begun() const { return generations_; }

  // True while ProcessGeneration / StepBatch dispatches handlers. The
  // engine uses it to classify side effects as mid-generation (published at
  // the next barrier) versus external (immediately visible). Written only
  // with workers joined.
  bool draining() const { return draining_; }

  // Enqueues an update from `src` to `dst`. Wire cost is charged (to the
  // sending node's shard) only when the endpoints live on different
  // physical peers. Takes the update by rvalue: exactly one move lands it
  // in the mailbox.
  void Send(LogicalNode src, LogicalNode dst, int port, Update&& update);

  // Enqueues a batch of updates along one channel, equivalent to (and
  // charged exactly like) one Send per update. The contiguous enqueue makes
  // the whole batch eligible for single-dispatch delivery.
  void SendBatch(LogicalNode src, LogicalNode dst, int port,
                 std::vector<Update> updates);

  // --- Sequential drain (single-shard fast path) ----------------------------

  // Delivers the oldest pending message to the handler. Returns false when
  // the network is quiescent. Single-shard routers only.
  bool Step();

  // Delivers the oldest pending run of same-(dst, port) messages (at most
  // `max_n`) as one batch. Returns the number of messages delivered, 0 when
  // quiescent. Single-shard routers only.
  size_t StepBatch(size_t max_n = SIZE_MAX);

  // Drains the queue. Returns false if `max_messages` deliveries did not
  // reach quiescence (the experiment's work budget — the paper's "did not
  // complete within 5 minutes"); the undelivered remainder is discarded and
  // recorded in NetworkStats::{aborted_runs,dropped_messages} so the run
  // cannot silently resume from a stale queue. Single-shard routers only.
  bool RunUntilQuiescent(uint64_t max_messages);

  // --- Superstep drain (any shard count) ------------------------------------

  // If every shard's queue is drained, merges the pending mailboxes into
  // the next generation: a k-way merge over all (src, dst)-shard mailboxes
  // by the canonical send-order key, assigning global sequence numbers and
  // distributing envelopes to their destination shards. No-op mid
  // generation. Returns pending().
  size_t PrepareGeneration();

  struct StepResult {
    uint64_t delivered = 0;
    bool deadline_exceeded = false;
  };

  // Delivers up to `max_n` messages of the prepared generation, in global
  // sequence order. When `parallel` is set (and more than one shard has
  // work), shards drain on worker threads — callers must first make the
  // handlers thread-safe across *different* destination nodes (the engine's
  // concurrent BDD manager and barrier-published dead-variable epochs make
  // every provenance mode safe, relative included). Otherwise shards are
  // interleaved in sequence order on the calling thread; both schedules
  // produce bit-identical results. If `deadline` is non-null, workers poll
  // it and stop early (the run is then expected to be aborted).
  StepResult ProcessGeneration(
      uint64_t max_n, bool parallel,
      const std::chrono::steady_clock::time_point* deadline = nullptr);

  // --- Abort / purge --------------------------------------------------------

  // Discards all pending messages, recording them as dropped and the run as
  // aborted (the abort is charged to namespace `ns`, the runtime whose
  // budget ran out; dropped messages count against their own namespaces).
  // The dropped messages' wire charges are reversed: a message that never
  // reached its destination is not communication the truncated run
  // performed, so ">budget" figure cells report the traffic delivered up to
  // the cutoff instead of whatever happened to be sitting in the queue. (Do
  // not reset stats while messages are pending; uncharging assumes the
  // pending charges are still in the counters.)
  void AbortRun(int ns = 0);

  // Budget-abort isolation for co-resident views: discards (and uncharges)
  // only namespace `ns`'s pending envelopes and records the aborted run
  // against it, leaving every other namespace's traffic queued in FIFO
  // order so surviving views can keep draining on the next run.
  void AbortNamespace(int ns);

  // Discards (and uncharges) the pending messages of one port namespace,
  // leaving every other namespace's FIFO order intact. Called when a view
  // detaches from a shared router with traffic still queued (e.g. a
  // program whose ground-fact load failed after fanning out) so later
  // drains cannot dispatch into the retired namespace.
  void PurgeNamespace(int ns);

  size_t pending() const;
  uint64_t delivered() const;
  // Total messages delivered into port namespace `ns` since construction
  // (summed over shards). Monotone across drains; the engine's fair-share
  // budget arbitration reads it at drain entry and charges each view for
  // the deliveries it received since.
  uint64_t DeliveredByNs(int ns) const;

  bool batching() const { return batching_; }

  // Merged per-namespace traffic view: the element-wise sum of every
  // shard's NetworkStats for `ns` (a single-shard router's counters pass
  // through unchanged). Returns a snapshot by value.
  NetworkStats stats(int ns = 0) const;
  // Zeroes namespace `ns`'s counters on every shard.
  void ResetStats(int ns = 0);
  // Restores namespace `ns`'s counters from a snapshot: the merged view is
  // loaded into shard 0 and every other shard's slice is zeroed, so
  // stats(ns) reproduces the checkpointed totals for any shard count.
  void LoadStats(int ns, const NetworkStats& stats);

  // Recycled kill-list storage (the arena behind Update::Kill): pops a
  // cleared buffer scavenged from delivered kill envelopes of `src`'s
  // shard, so steady-state kill routing stops allocating. Thread-safe under
  // the same ownership rule as Send (src is the node being processed).
  std::vector<bdd::Var> AcquireKillBuffer(LogicalNode src);

  // --- Fault injection ------------------------------------------------------

  // Arms lossy-link mode: shard-boundary envelopes consult the injector's
  // drop/duplication decisions at every superstep barrier. The injector is
  // owned by the caller (Substrate) and must outlive the router. Null
  // disarms. Intra-shard traffic is never lossy, so a single-shard router
  // is unaffected.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

  // --- Micro-checkpoint support (session fault tolerance) -------------------
  //
  // Session's barrier-consistent micro-checkpoints serialize the router's
  // ordering context and every in-flight envelope, so a rebuilt substrate
  // resumes the EXACT delivery schedule (global sequence numbers included)
  // of the faulted run. Only coordinator-side state is covered — these are
  // called between delivery runs, never while workers are active.

  struct FlowState {
    uint64_t next_seq = 1;
    uint64_t ext_trig = 0;
    uint32_t ext_sub = 0;
    uint64_t delivered = 0;
  };
  FlowState SaveFlowState() const;
  // Restores the ordering context; the delivered total is loaded into shard
  // 0 (like LoadStats, the per-shard split is not observable).
  void RestoreFlowState(const FlowState& fs);
  void RestoreDeliveredByNs(int ns, uint64_t delivered);

  // Where an in-flight envelope was captured: the undelivered tail of a
  // generation queue (already sequence-stamped), a pre-merge mailbox (still
  // carrying its send-order key), or a lossy-mode retry buffer.
  enum class EnvelopeHome { kQueue, kMailbox, kRetry };
  // Visits every in-flight envelope: per shard the queue tail in sequence
  // order, then each mailbox in send order, then the retry buffer.
  void ForEachPendingEnvelope(
      const std::function<void(EnvelopeHome, const Envelope&)>& fn) const;
  // Re-enqueues a captured envelope into the home its endpoints imply.
  // Envelopes must be replayed in capture order (the buffers' internal
  // ordering invariants rely on it).
  void RestoreEnvelope(EnvelopeHome home, Envelope&& env);

 private:
  // The namespace owning absolute port `port`. Out-of-range ports fall into
  // the last namespace, so a single-namespace router accepts any port.
  int NamespaceOf(int port) const {
    int ns = port / kPortsPerNamespace;
    int last = num_namespaces_ - 1;
    return ns < 0 ? 0 : (ns > last ? last : ns);
  }

  void ChargeSend(LogicalNode src, LogicalNode dst, int port,
                  const Update& update);
  // Reverses ChargeSend for a message that is being dropped undelivered.
  void UnchargeSend(const Envelope& env);

  // Delivers queue[start, end) of `shard` as one batch (same (dst, port),
  // consecutive sequence numbers) and scavenges kill buffers.
  void DeliverRun(RouterShard& shard, size_t start, size_t end);
  // End (exclusive) of the maximal delivery run starting at `start`:
  // consecutive sequence numbers, same (dst, port), below `cutoff`.
  size_t RunEnd(const RouterShard& shard, size_t start, uint64_t cutoff) const;
  // Drains `shard`'s queue up to (excluding) sequence `cutoff`, checking
  // `deadline` periodically; sets / honors `stop` so sibling workers wind
  // down together once the deadline passes.
  void DrainShardQueue(int shard_id, uint64_t cutoff,
                       const std::chrono::steady_clock::time_point* deadline,
                       std::atomic<bool>* stop);
  // Interleaves all shard queues in global sequence order on the calling
  // thread (bit-identical to the parallel schedule by construction).
  void DrainInterleaved(uint64_t cutoff,
                        const std::chrono::steady_clock::time_point* deadline,
                        std::atomic<bool>* stop);
  // Moves the external send context past the last delivered sequence so
  // later external sends order after every handler send.
  void SyncExternalContext();

  int num_logical_;
  int num_physical_;
  int num_namespaces_ = 1;
  Handler handler_;
  BatchHandler batch_handler_;
  bool batching_ = true;
  std::vector<RouterShard> shards_;
  // Global delivery sequence numbers start at 1 so the pre-run external
  // context (trig 0) orders before every handler send.
  uint64_t next_seq_ = 1;
  // Generations begun (see generations_begun()).
  uint64_t generations_ = 0;
  // External send context: used when no drain is active (fact ingestion,
  // AfterQuiescent seeding). ext_trig_ tracks the last delivered sequence.
  uint64_t ext_trig_ = 0;
  uint32_t ext_sub_ = 0;
  // True while ProcessGeneration / StepBatch dispatches handlers; routes
  // Send's ordering context to the sending shard instead of the external
  // counters. Written only by the coordinating thread while workers are
  // quiescent.
  bool draining_ = false;
  // Scratch for the barrier merge (kept across generations so the merge
  // allocates nothing in steady state).
  struct MergeSource {
    std::vector<Envelope>* mailbox;
    size_t next;
    // Source is a retry buffer (lossy mode): a merged envelope counts as
    // link_retried.
    bool is_retry;
  };
  std::vector<MergeSource> merge_sources_;

  // Lossy-link mode (null = lossless). Consulted only at superstep barriers
  // on the coordinating thread.
  fault::FaultInjector* injector_ = nullptr;

  static thread_local int tls_shard_;
};

}  // namespace recnet

#endif  // RECNET_NET_ROUTER_H_
