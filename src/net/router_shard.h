#ifndef RECNET_NET_ROUTER_SHARD_H_
#define RECNET_NET_ROUTER_SHARD_H_

#include <cstdint>
#include <vector>

#include "operators/update.h"

namespace recnet {

// Traffic accounting for one engine run. These counters back the paper's
// evaluation metrics: communication overhead (bytes of messages exchanged
// between *physical* peers), per-tuple provenance overhead (average
// annotation bytes on shipped insertions), and per-peer traffic (Figure 13
// reports per-node communication as physical peers vary).
//
// On a sharded router each shard keeps its own NetworkStats per namespace
// (charged at Send time by the shard owning the sending node, so workers
// never contend); Router::stats() sums them into the merged per-namespace
// view callers read.
struct NetworkStats {
  uint64_t messages = 0;        // Cross-physical messages.
  uint64_t bytes = 0;           // Cross-physical bytes.
  uint64_t local_messages = 0;  // Same-peer messages (free on the wire).
  uint64_t insert_messages = 0;
  uint64_t delete_messages = 0;
  uint64_t kill_messages = 0;
  uint64_t prov_bytes = 0;    // Annotation bytes on cross-physical inserts.
  uint64_t prov_samples = 0;  // Number of such inserts.
  // Delivery batches (runs of same-(dst, port) messages handed to the
  // handler in one call). Equals deliveries when batching is off.
  uint64_t batches = 0;
  // Budget-exhaustion accounting: runs cut off before quiescence, and the
  // messages discarded from the queue when that happened. Non-zero exactly
  // when a figure cell is reported as "did not complete".
  uint64_t aborted_runs = 0;
  uint64_t dropped_messages = 0;
  // Lossy-link accounting (fault-injected runs only): shard-boundary
  // envelopes dropped at a superstep barrier, duplicated on delivery, and
  // successfully re-delivered after a drop. Charged to the sending node's
  // namespace like every other traffic counter.
  uint64_t link_dropped = 0;
  uint64_t link_duplicated = 0;
  uint64_t link_retried = 0;
  std::vector<uint64_t> per_peer_bytes;

  double AvgProvBytesPerTuple() const {
    return prov_samples == 0
               ? 0.0
               : static_cast<double>(prov_bytes) / prov_samples;
  }
  double CommMB() const { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

  void Reset();
  // Element-wise sum (used by the Router facade's merged-stats view).
  void Accumulate(const NetworkStats& o);
};

// A message in flight between two logical nodes.
//
// Ordering metadata: the sharded drain totally orders deliveries with global
// sequence numbers. `key_trig`/`key_sub` are stamped at Send time — the
// sequence number of the delivery that triggered this send (the global
// frontier for external sends) and the send's index within that delivery —
// and the superstep barrier merges all shard mailboxes by this key, which
// reconstructs the exact single-FIFO delivery order for any shard count.
// Once an envelope is merged into a generation, `key_trig` is overwritten
// with the envelope's *own* assigned sequence number (the key has served its
// purpose) and `key_sub` is dead.
struct Envelope {
  Envelope() = default;
  Envelope(LogicalNode s, LogicalNode d, int p, Update&& u)
      : src(s), dst(d), port(p), update(std::move(u)) {}

  LogicalNode src = 0;
  LogicalNode dst = 0;
  int port = 0;  // Which operator input at the destination.
  uint64_t key_trig = 0;
  uint32_t key_sub = 0;
  // Lossy-link mode: how many superstep barriers dropped this envelope so
  // far. A dropped envelope keeps its pre-merge ordering key, so a retry
  // sorts before newer traffic; at FaultPlan::max_drop_attempts it is
  // force-delivered (delivery is eventual). Occupies the padding hole after
  // key_sub, so the struct size is unchanged.
  uint32_t attempts = 0;
  Update update;
};

// One partition of the sharded simulated network. A RouterShard owns
// everything touched while its resident logical nodes (those with
// `node % num_shards == shard_id`) process messages:
//
//   * `queue`    — the shard's slice of the current generation (superstep),
//                  sorted by global delivery sequence number (stored in
//                  Envelope::key_trig after the merge). `head` is the next
//                  undelivered index.
//   * `mailboxes`— one outbox per destination shard, filled by this shard's
//                  handlers (and, between drains, by external senders whose
//                  source node resides here). Entries are appended in send
//                  order, which keeps each mailbox sorted by the envelope
//                  ordering key; the barrier merge relies on that invariant.
//   * `stats`    — per-port-namespace NetworkStats for traffic *sent from*
//                  this shard's nodes.
//
// `cur_trig` / `cur_sub` are the shard's send-ordering context: while the
// shard drains a delivery run, `cur_trig` is the global sequence number of
// the run's first envelope and `cur_sub` counts the sends made since, so
// every send is stamped with a key that totally orders the next generation
// across shards, independent of the shard count.
struct RouterShard {
  std::vector<Envelope> queue;
  size_t head = 0;
  std::vector<std::vector<Envelope>> mailboxes;  // Indexed by dest shard.
  std::vector<NetworkStats> stats;               // Indexed by namespace.
  uint64_t delivered = 0;
  // Deliveries broken down by the receiving port namespace (a delivery run
  // never mixes namespaces). Feeds the per-view budget arbitration of a
  // shared drain: each view is charged for the messages delivered *to* it,
  // not for whatever co-resident views processed.
  std::vector<uint64_t> delivered_by_ns;
  uint64_t cur_trig = 0;
  uint32_t cur_sub = 0;
  // Highest sequence number this shard has delivered (for re-syncing the
  // external send context after a drain).
  uint64_t last_seq = 0;
  // Recycled kill-list buffers scavenged from delivered kill envelopes
  // (the arena behind Update::Kill; see Router::AcquireKillBuffer).
  std::vector<std::vector<bdd::Var>> kill_pool;
  // Lossy-link mode: envelopes bound for THIS shard that a superstep
  // barrier dropped, still carrying their pre-merge ordering keys. They
  // re-enter the next barrier merge (via `retry_scratch`, so a repeat drop
  // cannot append to the buffer being merged) and therefore stay pending
  // until delivered.
  std::vector<Envelope> retry;
  std::vector<Envelope> retry_scratch;

  size_t queued() const { return queue.size() - head; }
  size_t outgoing() const {
    size_t n = 0;
    for (const std::vector<Envelope>& m : mailboxes) n += m.size();
    return n;
  }
};

}  // namespace recnet

#endif  // RECNET_NET_ROUTER_SHARD_H_
