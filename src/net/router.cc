#include "net/router.h"

#include <algorithm>
#include <cstddef>

#include "common/logging.h"

namespace recnet {

void NetworkStats::Reset() {
  messages = 0;
  bytes = 0;
  local_messages = 0;
  insert_messages = 0;
  delete_messages = 0;
  kill_messages = 0;
  prov_bytes = 0;
  prov_samples = 0;
  batches = 0;
  aborted_runs = 0;
  dropped_messages = 0;
  std::fill(per_peer_bytes.begin(), per_peer_bytes.end(), 0);
}

Router::Router(int num_logical, int num_physical)
    : num_logical_(num_logical), num_physical_(num_physical) {
  RECNET_CHECK_GE(num_logical, 0);
  RECNET_CHECK_GT(num_physical, 0);
  stats_.resize(1);
  stats_[0].per_peer_bytes.assign(static_cast<size_t>(num_physical), 0);
  // Head off the first run's reallocation cascade (every grow moves all
  // pending envelopes).
  current_.reserve(1024);
  inbox_.reserve(1024);
}

int Router::AddNamespace() {
  stats_.emplace_back();
  stats_.back().per_peer_bytes.assign(static_cast<size_t>(num_physical_), 0);
  return static_cast<int>(stats_.size()) - 1;
}

void Router::GrowLogical(int num_logical) {
  if (num_logical > num_logical_) num_logical_ = num_logical;
}

void Router::ChargeSend(LogicalNode src, LogicalNode dst, int port,
                        const Update& update) {
  RECNET_DCHECK(src >= 0 && src < num_logical_);
  RECNET_DCHECK(dst >= 0 && dst < num_logical_);
  NetworkStats& s = stats_[static_cast<size_t>(NamespaceOf(port))];
  if (PhysicalOf(src) == PhysicalOf(dst)) {
    ++s.local_messages;
    return;
  }
  size_t wire = update.WireSizeBytes();
  ++s.messages;
  s.bytes += wire;
  s.per_peer_bytes[PhysicalOf(src)] += wire;
  switch (update.type) {
    case UpdateType::kInsert:
      ++s.insert_messages;
      s.prov_bytes += update.pv.WireSizeBytes();
      ++s.prov_samples;
      break;
    case UpdateType::kDelete:
      ++s.delete_messages;
      break;
    case UpdateType::kKill:
      ++s.kill_messages;
      break;
  }
}

void Router::Send(LogicalNode src, LogicalNode dst, int port,
                  Update&& update) {
  ChargeSend(src, dst, port, update);
  // Construct in place: one Update move, not temporary-then-move.
  inbox_.emplace_back(src, dst, port, std::move(update));
}

void Router::SendBatch(LogicalNode src, LogicalNode dst, int port,
                       std::vector<Update> updates) {
  inbox_.reserve(inbox_.size() + updates.size());
  for (Update& update : updates) {
    ChargeSend(src, dst, port, update);
    inbox_.emplace_back(src, dst, port, std::move(update));
  }
}

bool Router::Refill() {
  if (head_ < current_.size()) return true;
  if (inbox_.empty()) return false;
  current_.clear();
  head_ = 0;
  std::swap(current_, inbox_);
  return true;
}

bool Router::Step() { return StepBatch(1) == 1; }

size_t Router::StepBatch(size_t max_n) {
  if (max_n == 0 || !Refill()) return 0;
  size_t start = head_;
  size_t end = start + 1;
  if (batching_) {
    LogicalNode dst = current_[start].dst;
    int port = current_[start].port;
    size_t limit = std::min(current_.size(), start + max_n);
    while (end < limit && current_[end].dst == dst &&
           current_[end].port == port) {
      ++end;
    }
  }
  size_t n = end - start;
  head_ = end;
  delivered_ += n;
  ++stats_[static_cast<size_t>(NamespaceOf(current_[start].port))].batches;
  // Handlers may Send during dispatch; those enqueue into inbox_, so the
  // run we are pointing into cannot move under us.
  if (batch_handler_ != nullptr) {
    batch_handler_(&current_[start], n);
  } else {
    RECNET_CHECK(handler_ != nullptr);
    for (size_t i = start; i < end; ++i) handler_(current_[i]);
  }
  return n;
}

bool Router::RunUntilQuiescent(uint64_t max_messages) {
  uint64_t done = 0;
  while (pending() > 0) {
    if (done >= max_messages) {
      AbortRun();
      return false;
    }
    done += StepBatch(static_cast<size_t>(max_messages - done));
  }
  return true;
}

void Router::UnchargeSend(const Envelope& env) {
  NetworkStats& s = stats_[static_cast<size_t>(NamespaceOf(env.port))];
  ++s.dropped_messages;
  if (PhysicalOf(env.src) == PhysicalOf(env.dst)) {
    --s.local_messages;
    return;
  }
  size_t wire = env.update.WireSizeBytes();
  --s.messages;
  s.bytes -= wire;
  s.per_peer_bytes[PhysicalOf(env.src)] -= wire;
  switch (env.update.type) {
    case UpdateType::kInsert:
      --s.insert_messages;
      s.prov_bytes -= env.update.pv.WireSizeBytes();
      --s.prov_samples;
      break;
    case UpdateType::kDelete:
      --s.delete_messages;
      break;
    case UpdateType::kKill:
      --s.kill_messages;
      break;
  }
}

void Router::PurgeNamespace(int ns) {
  auto in_ns = [this, ns](const Envelope& env) {
    return NamespaceOf(env.port) == ns;
  };
  for (size_t i = head_; i < current_.size(); ++i) {
    if (in_ns(current_[i])) UnchargeSend(current_[i]);
  }
  current_.erase(std::remove_if(current_.begin() +
                                    static_cast<std::ptrdiff_t>(head_),
                                current_.end(), in_ns),
                 current_.end());
  for (const Envelope& env : inbox_) {
    if (in_ns(env)) UnchargeSend(env);
  }
  inbox_.erase(std::remove_if(inbox_.begin(), inbox_.end(), in_ns),
               inbox_.end());
}

void Router::AbortRun(int ns) {
  for (size_t i = head_; i < current_.size(); ++i) UnchargeSend(current_[i]);
  for (const Envelope& env : inbox_) UnchargeSend(env);
  ++stats_[static_cast<size_t>(ns)].aborted_runs;
  current_.clear();
  head_ = 0;
  inbox_.clear();
}

}  // namespace recnet
