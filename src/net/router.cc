#include "net/router.h"

#include <algorithm>
#include <cstddef>
#include <thread>

#include "bdd/bdd.h"
#include "common/logging.h"
#include "fault/fault.h"

namespace recnet {
namespace {

// Mailbox buffers scavenged back into the per-shard kill pool are capped so
// pathological kill storms cannot pin unbounded memory.
constexpr size_t kMaxKillPool = 256;

// Below this many queued messages a generation is drained by interleaving
// shards on the calling thread: the schedules are bit-identical, so this is
// purely a thread-spawn amortization threshold.
constexpr size_t kParallelCutover = 64;

// Test override of the drain's worker-thread budget (0 = hardware auto).
std::atomic<int> g_parallel_width_override{0};

}  // namespace

thread_local int Router::tls_shard_ = 0;

int Router::ParallelWidth() {
  int forced = g_parallel_width_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  static const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  return hw;
}

void Router::OverrideParallelWidth(int width) {
  g_parallel_width_override.store(width, std::memory_order_relaxed);
}

void NetworkStats::Reset() {
  messages = 0;
  bytes = 0;
  local_messages = 0;
  insert_messages = 0;
  delete_messages = 0;
  kill_messages = 0;
  prov_bytes = 0;
  prov_samples = 0;
  batches = 0;
  aborted_runs = 0;
  dropped_messages = 0;
  link_dropped = 0;
  link_duplicated = 0;
  link_retried = 0;
  std::fill(per_peer_bytes.begin(), per_peer_bytes.end(), 0);
}

void NetworkStats::Accumulate(const NetworkStats& o) {
  messages += o.messages;
  bytes += o.bytes;
  local_messages += o.local_messages;
  insert_messages += o.insert_messages;
  delete_messages += o.delete_messages;
  kill_messages += o.kill_messages;
  prov_bytes += o.prov_bytes;
  prov_samples += o.prov_samples;
  batches += o.batches;
  aborted_runs += o.aborted_runs;
  dropped_messages += o.dropped_messages;
  link_dropped += o.link_dropped;
  link_duplicated += o.link_duplicated;
  link_retried += o.link_retried;
  if (per_peer_bytes.size() < o.per_peer_bytes.size()) {
    per_peer_bytes.resize(o.per_peer_bytes.size(), 0);
  }
  for (size_t i = 0; i < o.per_peer_bytes.size(); ++i) {
    per_peer_bytes[i] += o.per_peer_bytes[i];
  }
}

Router::Router(int num_logical, int num_physical, int num_shards)
    : num_logical_(num_logical), num_physical_(num_physical) {
  RECNET_CHECK_GE(num_logical, 0);
  RECNET_CHECK_GT(num_physical, 0);
  RECNET_CHECK_GT(num_shards, 0);
  shards_.resize(static_cast<size_t>(num_shards));
  for (RouterShard& s : shards_) {
    s.mailboxes.resize(static_cast<size_t>(num_shards));
    s.stats.resize(1);
    s.stats[0].per_peer_bytes.assign(static_cast<size_t>(num_physical), 0);
    s.delivered_by_ns.assign(1, 0);
  }
  if (num_shards == 1) {
    // Head off the first run's reallocation cascade (every grow moves all
    // pending envelopes). Sharded routers spread the load, so each buffer
    // starts small and keeps whatever capacity its generations reach.
    shards_[0].queue.reserve(1024);
    shards_[0].mailboxes[0].reserve(1024);
  }
}

int Router::AddNamespace() {
  for (RouterShard& s : shards_) {
    s.stats.emplace_back();
    s.stats.back().per_peer_bytes.assign(static_cast<size_t>(num_physical_),
                                         0);
    s.delivered_by_ns.push_back(0);
  }
  return num_namespaces_++;
}

void Router::GrowLogical(int num_logical) {
  if (num_logical > num_logical_) num_logical_ = num_logical;
}

void Router::ChargeSend(LogicalNode src, LogicalNode dst, int port,
                        const Update& update) {
  RECNET_DCHECK(src >= 0 && src < num_logical_);
  RECNET_DCHECK(dst >= 0 && dst < num_logical_);
  NetworkStats& s =
      shards_[static_cast<size_t>(ShardOf(src))]
          .stats[static_cast<size_t>(NamespaceOf(port))];
  if (PhysicalOf(src) == PhysicalOf(dst)) {
    ++s.local_messages;
    return;
  }
  size_t wire = update.WireSizeBytes();
  ++s.messages;
  s.bytes += wire;
  s.per_peer_bytes[static_cast<size_t>(PhysicalOf(src))] += wire;
  switch (update.type) {
    case UpdateType::kInsert:
      ++s.insert_messages;
      s.prov_bytes += update.pv.WireSizeBytes();
      ++s.prov_samples;
      break;
    case UpdateType::kDelete:
      ++s.delete_messages;
      break;
    case UpdateType::kKill:
      ++s.kill_messages;
      break;
  }
}

void Router::Send(LogicalNode src, LogicalNode dst, int port,
                  Update&& update) {
  ChargeSend(src, dst, port, update);
  RouterShard& shard = shards_[static_cast<size_t>(ShardOf(src))];
  std::vector<Envelope>& mailbox =
      shard.mailboxes[static_cast<size_t>(ShardOf(dst))];
  // Construct in place: one Update move, not temporary-then-move.
  mailbox.emplace_back(src, dst, port, std::move(update));
  Envelope& env = mailbox.back();
  if (draining_) {
    // Handler send: ordered after the delivery being processed. The shard
    // context is race-free because handlers send from the node they are
    // processing, which resides on this worker's shard.
    env.key_trig = shard.cur_trig;
    env.key_sub = shard.cur_sub++;
  } else {
    env.key_trig = ext_trig_;
    env.key_sub = ext_sub_++;
  }
}

void Router::SendBatch(LogicalNode src, LogicalNode dst, int port,
                       std::vector<Update> updates) {
  std::vector<Envelope>& mailbox =
      shards_[static_cast<size_t>(ShardOf(src))]
          .mailboxes[static_cast<size_t>(ShardOf(dst))];
  mailbox.reserve(mailbox.size() + updates.size());
  for (Update& update : updates) {
    Send(src, dst, port, std::move(update));
  }
}

std::vector<bdd::Var> Router::AcquireKillBuffer(LogicalNode src) {
  auto& pool = shards_[static_cast<size_t>(ShardOf(src))].kill_pool;
  if (pool.empty()) return {};
  std::vector<bdd::Var> buf = std::move(pool.back());
  pool.pop_back();
  return buf;
}

size_t Router::pending() const {
  size_t n = 0;
  for (const RouterShard& s : shards_) {
    n += s.queued() + s.outgoing() + s.retry.size();
  }
  return n;
}

uint64_t Router::delivered() const {
  uint64_t n = 0;
  for (const RouterShard& s : shards_) n += s.delivered;
  return n;
}

NetworkStats Router::stats(int ns) const {
  NetworkStats out = shards_[0].stats[static_cast<size_t>(ns)];
  for (size_t i = 1; i < shards_.size(); ++i) {
    out.Accumulate(shards_[i].stats[static_cast<size_t>(ns)]);
  }
  return out;
}

void Router::ResetStats(int ns) {
  for (RouterShard& s : shards_) s.stats[static_cast<size_t>(ns)].Reset();
}

void Router::LoadStats(int ns, const NetworkStats& stats) {
  ResetStats(ns);
  NetworkStats& s0 = shards_[0].stats[static_cast<size_t>(ns)];
  s0 = stats;
  s0.per_peer_bytes.resize(static_cast<size_t>(num_physical_), 0);
}

uint64_t Router::DeliveredByNs(int ns) const {
  uint64_t n = 0;
  for (const RouterShard& s : shards_) {
    n += s.delivered_by_ns[static_cast<size_t>(ns)];
  }
  return n;
}

size_t Router::PrepareGeneration() {
  for (const RouterShard& s : shards_) {
    if (s.head < s.queue.size()) return pending();  // Mid-generation.
  }
  if (num_shards() == 1) {
    // Single-shard fast path: the swap *is* the merge (one mailbox, already
    // in send order), exactly the classic router's two-phase FIFO refill.
    RouterShard& s = shards_[0];
    std::vector<Envelope>& mailbox = s.mailboxes[0];
    if (mailbox.empty()) return 0;
    s.queue.clear();
    s.head = 0;
    std::swap(s.queue, mailbox);
    for (Envelope& e : s.queue) e.key_trig = next_seq_++;
    ++generations_;
    return s.queue.size();
  }
  // Superstep barrier: k-way merge of every (src, dst) mailbox by the
  // canonical send-order key. Each mailbox is key-sorted (appends happen in
  // send order), so the merge emits the exact global send order of the
  // previous generation; sequence numbers are assigned in that order and
  // envelopes distributed to their destination shards, whose queues end up
  // sequence-sorted. Consumed buffers are recycled in place (cleared, not
  // freed), so steady-state generations reuse envelope storage.
  merge_sources_.clear();
  const bool lossy = injector_ != nullptr && injector_->plan().lossy();
  size_t total = 0;
  for (RouterShard& s : shards_) {
    s.queue.clear();
    s.head = 0;
    // Lossy mode: previously dropped envelopes re-enter this merge. They
    // are moved aside first so a repeat drop appends to an empty `retry`
    // instead of the buffer being iterated.
    if (!s.retry.empty()) {
      std::swap(s.retry, s.retry_scratch);
      merge_sources_.push_back(MergeSource{&s.retry_scratch, 0, true});
      total += s.retry_scratch.size();
    }
    for (std::vector<Envelope>& mailbox : s.mailboxes) {
      if (!mailbox.empty()) {
        merge_sources_.push_back(MergeSource{&mailbox, 0, false});
        total += mailbox.size();
      }
    }
  }
  if (total == 0) return 0;
  ++generations_;
  while (true) {
    MergeSource* best = nullptr;
    for (MergeSource& src : merge_sources_) {
      if (src.next >= src.mailbox->size()) continue;
      if (best == nullptr) {
        best = &src;
        continue;
      }
      const Envelope& a = (*src.mailbox)[src.next];
      const Envelope& b = (*best->mailbox)[best->next];
      if (a.key_trig < b.key_trig ||
          (a.key_trig == b.key_trig && a.key_sub < b.key_sub)) {
        best = &src;
      }
    }
    if (best == nullptr) break;
    Envelope& env = (*best->mailbox)[best->next++];
    const size_t dst_shard = static_cast<size_t>(ShardOf(env.dst));
    bool duplicate = false;
    if (lossy && ShardOf(env.src) != static_cast<int>(dst_shard)) {
      // Decisions key on the envelope's pre-merge stamp, which uniquely
      // identifies the send, so a retried envelope draws a fresh coin per
      // attempt while a given (plan, workload) replays exactly.
      if (injector_->ShouldDropLink(env.key_trig, env.key_sub,
                                    env.attempts)) {
        NetworkStats& st =
            shards_[static_cast<size_t>(ShardOf(env.src))]
                .stats[static_cast<size_t>(NamespaceOf(env.port))];
        ++st.link_dropped;
        Envelope dropped = std::move(env);
        ++dropped.attempts;  // Keeps its ordering key for the next merge.
        shards_[dst_shard].retry.push_back(std::move(dropped));
        continue;  // No sequence number consumed.
      }
      if (best->is_retry) {
        ++shards_[static_cast<size_t>(ShardOf(env.src))]
              .stats[static_cast<size_t>(NamespaceOf(env.port))]
              .link_retried;
      }
      duplicate = injector_->ShouldDuplicateLink(env.key_trig, env.key_sub);
    }
    if (duplicate) {
      // The duplicate is real wire traffic: charged like any send, delivered
      // right after the original with its own sequence number. Fixpoints are
      // insensitive to it (re-derivations are absorbed, kills are idempotent).
      Envelope copy(env.src, env.dst, env.port, Update(env.update));
      ChargeSend(copy.src, copy.dst, copy.port, copy.update);
      ++shards_[static_cast<size_t>(ShardOf(env.src))]
            .stats[static_cast<size_t>(NamespaceOf(env.port))]
            .link_duplicated;
      env.key_trig = next_seq_++;
      shards_[dst_shard].queue.push_back(std::move(env));
      copy.key_trig = next_seq_++;
      shards_[dst_shard].queue.push_back(std::move(copy));
      continue;
    }
    env.key_trig = next_seq_++;  // Now the envelope's own sequence number.
    shards_[dst_shard].queue.push_back(std::move(env));
  }
  for (RouterShard& s : shards_) {
    for (std::vector<Envelope>& mailbox : s.mailboxes) mailbox.clear();
    s.retry_scratch.clear();
  }
  return total;
}

void Router::DeliverRun(RouterShard& shard, size_t start, size_t end) {
  size_t n = end - start;
  shard.head = end;
  shard.delivered += n;
  shard.cur_trig = shard.queue[start].key_trig;
  shard.cur_sub = 0;
  shard.last_seq = shard.queue[end - 1].key_trig;
  size_t run_ns = static_cast<size_t>(NamespaceOf(shard.queue[start].port));
  shard.delivered_by_ns[run_ns] += n;
  ++shard.stats[run_ns].batches;
  // Handlers may Send during dispatch; those enqueue into mailboxes, so the
  // run we are pointing into cannot move under us.
  if (batch_handler_ != nullptr) {
    batch_handler_(&shard.queue[start], n);
  } else {
    RECNET_CHECK(handler_ != nullptr);
    for (size_t i = start; i < end; ++i) handler_(shard.queue[i]);
  }
  // Scavenge delivered kill-list buffers into the shard's pool: the
  // envelopes are dead weight until the next barrier clears the queue, and
  // recycling them lets steady-state kill routing allocate nothing.
  for (size_t i = start; i < end; ++i) {
    Update& u = shard.queue[i].update;
    if (u.type == UpdateType::kKill && u.killed.capacity() != 0 &&
        shard.kill_pool.size() < kMaxKillPool) {
      u.killed.clear();
      shard.kill_pool.push_back(std::move(u.killed));
    }
  }
}

size_t Router::RunEnd(const RouterShard& shard, size_t start,
                      uint64_t cutoff) const {
  size_t end = start + 1;
  if (!batching_) return end;
  const Envelope& first = shard.queue[start];
  while (end < shard.queue.size()) {
    const Envelope& e = shard.queue[end];
    // Runs extend only over globally *consecutive* sequence numbers: that
    // makes run boundaries (and thus send-ordering keys) independent of the
    // shard count — a gap means another shard owns the message in between.
    if (e.key_trig != shard.queue[end - 1].key_trig + 1 ||
        e.key_trig >= cutoff || e.dst != first.dst || e.port != first.port) {
      break;
    }
    ++end;
  }
  return end;
}

void Router::DrainShardQueue(
    int shard_id, uint64_t cutoff,
    const std::chrono::steady_clock::time_point* deadline,
    std::atomic<bool>* stop) {
  tls_shard_ = shard_id;
  // Bind this worker to its private BDD cache/scratch slot for the
  // duration of the drain (the engine sized the slot array to the shard
  // count before spawning workers). The interleaved fallback keeps slot 0:
  // it runs all shards on one thread, so sharing a slot is race-free.
  bdd::Manager::SetThreadWorkerSlot(shard_id);
  RouterShard& shard = shards_[static_cast<size_t>(shard_id)];
  uint64_t since_check = 0;
  while (shard.head < shard.queue.size()) {
    if (stop->load(std::memory_order_relaxed)) break;
    size_t start = shard.head;
    if (shard.queue[start].key_trig >= cutoff) break;
    size_t end = RunEnd(shard, start, cutoff);
    DeliverRun(shard, start, end);
    if (deadline != nullptr && (since_check += end - start) >= 32) {
      since_check = 0;
      if (std::chrono::steady_clock::now() > *deadline) {
        stop->store(true, std::memory_order_relaxed);
        break;
      }
    }
  }
  bdd::Manager::SetThreadWorkerSlot(0);
  tls_shard_ = 0;
}

void Router::DrainInterleaved(
    uint64_t cutoff, const std::chrono::steady_clock::time_point* deadline,
    std::atomic<bool>* stop) {
  // Deliver runs in global sequence order across all shard queues. This is
  // the reference schedule: the parallel drain is bit-identical to it
  // because per-node state is only ever touched from the owning shard.
  uint64_t since_check = 0;
  while (!stop->load(std::memory_order_relaxed)) {
    int best = -1;
    uint64_t best_seq = cutoff;
    for (int i = 0; i < num_shards(); ++i) {
      const RouterShard& s = shards_[static_cast<size_t>(i)];
      if (s.head < s.queue.size() && s.queue[s.head].key_trig < best_seq) {
        best = i;
        best_seq = s.queue[s.head].key_trig;
      }
    }
    if (best < 0) break;
    tls_shard_ = best;
    RouterShard& shard = shards_[static_cast<size_t>(best)];
    size_t start = shard.head;
    size_t end = RunEnd(shard, start, cutoff);
    DeliverRun(shard, start, end);
    tls_shard_ = 0;
    if (deadline != nullptr && (since_check += end - start) >= 32) {
      since_check = 0;
      if (std::chrono::steady_clock::now() > *deadline) {
        stop->store(true, std::memory_order_relaxed);
        break;
      }
    }
  }
}

void Router::SyncExternalContext() {
  uint64_t max_seq = 0;
  const RouterShard* owner = nullptr;
  for (const RouterShard& s : shards_) {
    if (s.last_seq > max_seq) {
      max_seq = s.last_seq;
      owner = &s;
    }
  }
  if (owner != nullptr && max_seq > ext_trig_) {
    // External sends must order after every handler send. If the last
    // delivered run *started* at max_seq its handler subs share that trig,
    // so continue the counter; otherwise trig max_seq is fresh.
    ext_trig_ = max_seq;
    ext_sub_ = owner->cur_trig == max_seq ? owner->cur_sub : 0;
  }
}

Router::StepResult Router::ProcessGeneration(
    uint64_t max_n, bool parallel,
    const std::chrono::steady_clock::time_point* deadline) {
  StepResult res;
  if (max_n == 0) return res;
  PrepareGeneration();
  uint64_t frontier = UINT64_MAX;
  size_t queued = 0;
  int busy = 0;
  for (const RouterShard& s : shards_) {
    if (s.head >= s.queue.size()) continue;
    frontier = std::min(frontier, s.queue[s.head].key_trig);
    queued += s.queued();
    ++busy;
  }
  if (queued == 0) return res;
  uint64_t cutoff =
      max_n >= UINT64_MAX - frontier ? UINT64_MAX : frontier + max_n;
  uint64_t before = delivered();
  std::atomic<bool> stop{false};
  draining_ = true;
  // One OS thread per *hardware* thread, not per shard: worker w drains
  // shard queues w, w+width, ... back to back. The shard queues of one
  // generation are mutually independent (per-node state is only ever
  // touched from the owning shard), so any shard-to-thread assignment
  // yields the same result; clamping to the machine's parallelism avoids
  // paying context-switch and cold-cache costs for oversubscribed workers.
  // On a single hardware thread the interleaved drain delivers the
  // identical schedule with no spawn at all.
  const int width = std::min(busy, ParallelWidth());
  // A forced width (test hook) also bypasses the spawn-amortization
  // cutover: the point of forcing is to run the real threaded path on
  // workloads whose generations are otherwise too small to warrant it.
  const bool forced =
      g_parallel_width_override.load(std::memory_order_relaxed) > 0;
  if (parallel && width > 1 && (forced || queued >= kParallelCutover)) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(width - 1));
    for (int w = 1; w < width; ++w) {
      workers.emplace_back([this, w, width, cutoff, deadline, &stop] {
        for (int i = w; i < num_shards(); i += width) {
          DrainShardQueue(i, cutoff, deadline, &stop);
        }
      });
    }
    for (int i = 0; i < num_shards(); i += width) {
      DrainShardQueue(i, cutoff, deadline, &stop);
    }
    for (std::thread& w : workers) w.join();
  } else {
    DrainInterleaved(cutoff, deadline, &stop);
  }
  draining_ = false;
  SyncExternalContext();
  res.delivered = delivered() - before;
  res.deadline_exceeded = stop.load(std::memory_order_relaxed);
  return res;
}

bool Router::Step() { return StepBatch(1) == 1; }

size_t Router::StepBatch(size_t max_n) {
  RECNET_CHECK_EQ(num_shards(), 1);
  if (max_n == 0) return 0;
  PrepareGeneration();
  RouterShard& shard = shards_[0];
  if (shard.head >= shard.queue.size()) return 0;
  size_t start = shard.head;
  size_t end = start + 1;
  if (batching_) {
    // Queue adjacency and consecutive sequence numbers coincide on a single
    // shard; clip the run at max_n exactly like the classic router.
    LogicalNode dst = shard.queue[start].dst;
    int port = shard.queue[start].port;
    size_t limit = std::min(shard.queue.size(), start + max_n);
    while (end < limit && shard.queue[end].dst == dst &&
           shard.queue[end].port == port) {
      ++end;
    }
  }
  draining_ = true;
  DeliverRun(shard, start, end);
  draining_ = false;
  SyncExternalContext();
  return end - start;
}

bool Router::RunUntilQuiescent(uint64_t max_messages) {
  RECNET_CHECK_EQ(num_shards(), 1);
  uint64_t done = 0;
  while (pending() > 0) {
    if (done >= max_messages) {
      AbortRun();
      return false;
    }
    done += StepBatch(static_cast<size_t>(max_messages - done));
  }
  return true;
}

void Router::UnchargeSend(const Envelope& env) {
  NetworkStats& s =
      shards_[static_cast<size_t>(ShardOf(env.src))]
          .stats[static_cast<size_t>(NamespaceOf(env.port))];
  ++s.dropped_messages;
  if (PhysicalOf(env.src) == PhysicalOf(env.dst)) {
    --s.local_messages;
    return;
  }
  size_t wire = env.update.WireSizeBytes();
  --s.messages;
  s.bytes -= wire;
  s.per_peer_bytes[static_cast<size_t>(PhysicalOf(env.src))] -= wire;
  switch (env.update.type) {
    case UpdateType::kInsert:
      --s.insert_messages;
      s.prov_bytes -= env.update.pv.WireSizeBytes();
      --s.prov_samples;
      break;
    case UpdateType::kDelete:
      --s.delete_messages;
      break;
    case UpdateType::kKill:
      --s.kill_messages;
      break;
  }
}

void Router::PurgeNamespace(int ns) {
  auto in_ns = [this, ns](const Envelope& env) {
    return NamespaceOf(env.port) == ns;
  };
  for (RouterShard& s : shards_) {
    for (size_t i = s.head; i < s.queue.size(); ++i) {
      if (in_ns(s.queue[i])) UnchargeSend(s.queue[i]);
    }
    s.queue.erase(
        std::remove_if(s.queue.begin() + static_cast<std::ptrdiff_t>(s.head),
                       s.queue.end(), in_ns),
        s.queue.end());
    for (std::vector<Envelope>& mailbox : s.mailboxes) {
      for (const Envelope& env : mailbox) {
        if (in_ns(env)) UnchargeSend(env);
      }
      mailbox.erase(std::remove_if(mailbox.begin(), mailbox.end(), in_ns),
                    mailbox.end());
    }
    for (const Envelope& env : s.retry) {
      if (in_ns(env)) UnchargeSend(env);
    }
    s.retry.erase(std::remove_if(s.retry.begin(), s.retry.end(), in_ns),
                  s.retry.end());
    // Retired envelopes (the consumed prefix of the last generation) are
    // normally recycled at the next PrepareGeneration; a detaching
    // namespace must not leave its provenance handles alive in them, so
    // drop fully consumed queues now.
    if (s.head == s.queue.size()) {
      s.queue.clear();
      s.head = 0;
    }
  }
}

void Router::AbortNamespace(int ns) {
  PurgeNamespace(ns);
  ++shards_[0].stats[static_cast<size_t>(ns)].aborted_runs;
}

void Router::AbortRun(int ns) {
  for (RouterShard& s : shards_) {
    for (size_t i = s.head; i < s.queue.size(); ++i) UnchargeSend(s.queue[i]);
    s.queue.clear();
    s.head = 0;
    for (std::vector<Envelope>& mailbox : s.mailboxes) {
      for (const Envelope& env : mailbox) UnchargeSend(env);
      mailbox.clear();
    }
    for (const Envelope& env : s.retry) UnchargeSend(env);
    s.retry.clear();
  }
  ++shards_[0].stats[static_cast<size_t>(ns)].aborted_runs;
}

Router::FlowState Router::SaveFlowState() const {
  FlowState fs;
  fs.next_seq = next_seq_;
  fs.ext_trig = ext_trig_;
  fs.ext_sub = ext_sub_;
  fs.delivered = delivered();
  return fs;
}

void Router::RestoreFlowState(const FlowState& fs) {
  next_seq_ = fs.next_seq;
  ext_trig_ = fs.ext_trig;
  ext_sub_ = fs.ext_sub;
  shards_[0].delivered = fs.delivered;
}

void Router::RestoreDeliveredByNs(int ns, uint64_t delivered) {
  shards_[0].delivered_by_ns[static_cast<size_t>(ns)] = delivered;
}

void Router::ForEachPendingEnvelope(
    const std::function<void(EnvelopeHome, const Envelope&)>& fn) const {
  for (const RouterShard& s : shards_) {
    for (size_t i = s.head; i < s.queue.size(); ++i) {
      fn(EnvelopeHome::kQueue, s.queue[i]);
    }
    for (const std::vector<Envelope>& mailbox : s.mailboxes) {
      for (const Envelope& env : mailbox) fn(EnvelopeHome::kMailbox, env);
    }
    for (const Envelope& env : s.retry) fn(EnvelopeHome::kRetry, env);
  }
}

void Router::RestoreEnvelope(EnvelopeHome home, Envelope&& env) {
  switch (home) {
    case EnvelopeHome::kQueue:
      // Queue tails are captured per shard in sequence order and the queue
      // is keyed by the destination shard, so append order is preserved.
      shards_[static_cast<size_t>(ShardOf(env.dst))].queue.push_back(
          std::move(env));
      break;
    case EnvelopeHome::kMailbox:
      shards_[static_cast<size_t>(ShardOf(env.src))]
          .mailboxes[static_cast<size_t>(ShardOf(env.dst))]
          .push_back(std::move(env));
      break;
    case EnvelopeHome::kRetry:
      shards_[static_cast<size_t>(ShardOf(env.dst))].retry.push_back(
          std::move(env));
      break;
  }
}

}  // namespace recnet
