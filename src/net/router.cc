#include "net/router.h"

#include "common/logging.h"

namespace recnet {

void NetworkStats::Reset() {
  messages = 0;
  bytes = 0;
  local_messages = 0;
  insert_messages = 0;
  delete_messages = 0;
  kill_messages = 0;
  prov_bytes = 0;
  prov_samples = 0;
  std::fill(per_peer_bytes.begin(), per_peer_bytes.end(), 0);
}

Router::Router(int num_logical, int num_physical)
    : num_logical_(num_logical), num_physical_(num_physical) {
  RECNET_CHECK_GT(num_logical, 0);
  RECNET_CHECK_GT(num_physical, 0);
  stats_.per_peer_bytes.assign(static_cast<size_t>(num_physical), 0);
}

void Router::Send(LogicalNode src, LogicalNode dst, int port, Update update) {
  RECNET_DCHECK(src >= 0 && src < num_logical_);
  RECNET_DCHECK(dst >= 0 && dst < num_logical_);
  if (PhysicalOf(src) == PhysicalOf(dst)) {
    ++stats_.local_messages;
  } else {
    size_t wire = update.WireSizeBytes();
    ++stats_.messages;
    stats_.bytes += wire;
    stats_.per_peer_bytes[PhysicalOf(src)] += wire;
    switch (update.type) {
      case UpdateType::kInsert:
        ++stats_.insert_messages;
        stats_.prov_bytes += update.pv.WireSizeBytes();
        ++stats_.prov_samples;
        break;
      case UpdateType::kDelete:
        ++stats_.delete_messages;
        break;
      case UpdateType::kKill:
        ++stats_.kill_messages;
        break;
    }
  }
  queue_.push_back(Envelope{src, dst, port, std::move(update)});
}

bool Router::Step() {
  if (queue_.empty()) return false;
  Envelope env = std::move(queue_.front());
  queue_.pop_front();
  ++delivered_;
  RECNET_CHECK(handler_ != nullptr);
  handler_(env);
  return true;
}

bool Router::RunUntilQuiescent(uint64_t max_messages) {
  uint64_t start = delivered_;
  while (!queue_.empty()) {
    if (delivered_ - start >= max_messages) return false;
    Step();
  }
  return true;
}

}  // namespace recnet
