#include "datalog/parser.h"

#include "datalog/lexer.h"

namespace recnet {
namespace datalog {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Program> ParseProgram() {
    Program program;
    while (!At(TokenKind::kEnd)) {
      StatusOr<Rule> rule = ParseRule();
      if (!rule.ok()) return rule.status();
      program.rules.push_back(std::move(rule.value()));
    }
    return program;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  Token Advance() { return tokens_[pos_++]; }

  Status Expect(TokenKind kind) {
    if (!At(kind)) {
      return Status::InvalidArgument(
          std::string("expected ") + TokenKindName(kind) + " but found " +
          TokenKindName(Peek().kind) + " at line " +
          std::to_string(Peek().line));
    }
    Advance();
    return Status::OK();
  }

  StatusOr<Rule> ParseRule() {
    Rule rule;
    rule.line = Peek().line;
    StatusOr<Atom> head = ParseAtom(/*allow_aggregates=*/true);
    if (!head.ok()) return head.status();
    rule.head = std::move(head.value());
    if (At(TokenKind::kColonDash)) {
      Advance();
      while (true) {
        StatusOr<Atom> atom = ParseAtom(/*allow_aggregates=*/false);
        if (!atom.ok()) return atom.status();
        rule.body.push_back(std::move(atom.value()));
        if (At(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    RECNET_RETURN_IF_ERROR(Expect(TokenKind::kPeriod));
    return rule;
  }

  StatusOr<Atom> ParseAtom(bool allow_aggregates) {
    Atom atom;
    if (!At(TokenKind::kIdent)) {
      return Status::InvalidArgument(
          std::string("expected predicate name but found ") +
          TokenKindName(Peek().kind) + " at line " +
          std::to_string(Peek().line));
    }
    atom.predicate = Advance().text;
    RECNET_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!At(TokenKind::kRParen)) {
      while (true) {
        StatusOr<Term> term = ParseTerm(allow_aggregates);
        if (!term.ok()) return term.status();
        atom.args.push_back(std::move(term.value()));
        if (At(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    RECNET_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return atom;
  }

  StatusOr<Term> ParseTerm(bool allow_aggregates) {
    if (At(TokenKind::kNumber)) {
      Term t;
      t.kind = Term::Kind::kNumber;
      t.number = Advance().number;
      return t;
    }
    if (At(TokenKind::kString)) {
      Term t;
      t.kind = Term::Kind::kString;
      t.text = Advance().text;
      return t;
    }
    if (!At(TokenKind::kIdent)) {
      return Status::InvalidArgument(
          std::string("expected term but found ") +
          TokenKindName(Peek().kind) + " at line " +
          std::to_string(Peek().line));
    }
    Token ident = Advance();
    AggKind agg = AggKind::kNone;
    if (ident.text == "min") agg = AggKind::kMin;
    if (ident.text == "max") agg = AggKind::kMax;
    if (ident.text == "count") agg = AggKind::kCount;
    if (ident.text == "sum") agg = AggKind::kSum;
    if (agg != AggKind::kNone && At(TokenKind::kLAngle)) {
      if (!allow_aggregates) {
        return Status::InvalidArgument(
            "aggregate term not allowed in rule body (line " +
            std::to_string(ident.line) + ")");
      }
      Advance();  // <
      if (!At(TokenKind::kIdent)) {
        return Status::InvalidArgument(
            "expected variable inside aggregate at line " +
            std::to_string(Peek().line));
      }
      std::string over = Advance().text;
      RECNET_RETURN_IF_ERROR(Expect(TokenKind::kRAngle));
      return Term::Aggregate(agg, std::move(over));
    }
    return Term::Variable(std::move(ident.text));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Program> Parse(const std::string& source) {
  StatusOr<std::vector<Token>> tokens = Lex(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens.value()));
  return parser.ParseProgram();
}

}  // namespace datalog
}  // namespace recnet
