#include "datalog/ast.h"

#include <sstream>

namespace recnet {
namespace datalog {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kNone:
      return "none";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
  }
  return "?";
}

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kVariable:
      return name;
    case Kind::kNumber: {
      std::ostringstream os;
      os << number;
      return os.str();
    }
    case Kind::kString:
      return "\"" + text + "\"";
    case Kind::kAggregate:
      return std::string(AggKindName(agg)) + "<" + name + ">";
  }
  return "?";
}

std::string Atom::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    out += args[i].ToString();
  }
  return out + ")";
}

std::string Rule::ToString() const {
  std::string out = head.ToString();
  if (!body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += ", ";
      out += body[i].ToString();
    }
  }
  return out + ".";
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& rule : rules) {
    out += rule.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace datalog
}  // namespace recnet
