#ifndef RECNET_DATALOG_TOKEN_H_
#define RECNET_DATALOG_TOKEN_H_

#include <string>

namespace recnet {
namespace datalog {

// Lexical tokens of the paper's Datalog dialect, e.g.
//   reachable(x,y) :- link(x,z), reachable(z,y).
//   minCost(x,y,min<c>) :- path(x,y,p,c,l).
enum class TokenKind {
  kIdent,     // reachable, x, min (aggregates resolved by the parser)
  kNumber,    // 42, 3.5
  kString,    // "foo"
  kLParen,    // (
  kRParen,    // )
  kComma,     // ,
  kPeriod,    // .
  kColonDash, // :-
  kLAngle,    // <
  kRAngle,    // >
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0;
  int line = 1;
  int column = 1;
};

const char* TokenKindName(TokenKind kind);

}  // namespace datalog
}  // namespace recnet

#endif  // RECNET_DATALOG_TOKEN_H_
