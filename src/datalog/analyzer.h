#ifndef RECNET_DATALOG_ANALYZER_H_
#define RECNET_DATALOG_ANALYZER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"

namespace recnet {
namespace datalog {

// Semantic facts the planner needs about a program.
struct ProgramInfo {
  // Predicates defined by some rule head (IDB); everything else referenced
  // only in bodies is base data (EDB).
  std::set<std::string> idb;
  std::set<std::string> edb;
  // Predicates involved in recursion (their own [mutual] dependency cycle).
  std::set<std::string> recursive;
  // True iff every recursive rule is linear: at most one body atom is
  // mutually recursive with the head (SQL-99's restriction, which the paper
  // notes "comprises a bulk of network queries of interest").
  bool linear_recursion = true;
  // Arity of each predicate.
  std::map<std::string, size_t> arity;
};

// Validates the program and derives ProgramInfo. Errors:
//  * unsafe rules (head variable or aggregated variable not bound in body);
//  * inconsistent predicate arity;
//  * aggregates in recursive rule heads (not supported).
StatusOr<ProgramInfo> Analyze(const Program& program);

}  // namespace datalog
}  // namespace recnet

#endif  // RECNET_DATALOG_ANALYZER_H_
