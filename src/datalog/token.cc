#include "datalog/token.h"

namespace recnet {
namespace datalog {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kPeriod:
      return "'.'";
    case TokenKind::kColonDash:
      return "':-'";
    case TokenKind::kLAngle:
      return "'<'";
    case TokenKind::kRAngle:
      return "'>'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

}  // namespace datalog
}  // namespace recnet
