#ifndef RECNET_DATALOG_AST_H_
#define RECNET_DATALOG_AST_H_

#include <string>
#include <vector>

namespace recnet {
namespace datalog {

// Aggregate functions allowed in head terms, e.g. minCost(x,y,min<c>).
enum class AggKind { kNone, kMin, kMax, kCount, kSum };

// A term in an atom: variable, constant, or (head-only) aggregate over a
// body variable.
struct Term {
  enum class Kind { kVariable, kNumber, kString, kAggregate };
  Kind kind = Kind::kVariable;
  std::string name;         // Variable name / aggregated variable.
  double number = 0;        // kNumber.
  std::string text;         // kString.
  AggKind agg = AggKind::kNone;  // kAggregate.

  static Term Variable(std::string n) {
    Term t;
    t.kind = Kind::kVariable;
    t.name = std::move(n);
    return t;
  }
  static Term Aggregate(AggKind agg, std::string over) {
    Term t;
    t.kind = Kind::kAggregate;
    t.agg = agg;
    t.name = std::move(over);
    return t;
  }

  std::string ToString() const;
};

// predicate(term, term, ...).
struct Atom {
  std::string predicate;
  std::vector<Term> args;

  std::string ToString() const;
};

// head :- body_0, ..., body_n.   (facts have an empty body)
struct Rule {
  Atom head;
  std::vector<Atom> body;
  // Source line of the rule head (1-based; 0 when synthesized), carried so
  // planner diagnostics can point back into the program text.
  int line = 0;

  bool IsFact() const { return body.empty(); }
  std::string ToString() const;
};

struct Program {
  std::vector<Rule> rules;

  std::string ToString() const;
};

const char* AggKindName(AggKind kind);

}  // namespace datalog
}  // namespace recnet

#endif  // RECNET_DATALOG_AST_H_
