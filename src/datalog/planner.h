#ifndef RECNET_DATALOG_PLANNER_H_
#define RECNET_DATALOG_PLANNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/analyzer.h"
#include "datalog/ast.h"

namespace recnet {
namespace datalog {

// A derived (non-recursive) aggregate view over the recursive view, e.g.
// regionSizes(rid, count<x>) :- activeRegion(rid, x).
struct AggViewSpec {
  std::string name;
  std::vector<size_t> group_cols;  // Positions in the recursive view.
  AggKind agg = AggKind::kNone;
  size_t value_col = 0;
};

// The distributed plan shape the planner recognized. The recnet operator
// library executes transitive-closure-shaped linear recursion (the paper's
// Figure 4 plan); richer recursion is reported as Unimplemented.
struct PlanSpec {
  // Recursive view name (e.g. "reachable") and the EDB it closes over
  // (e.g. "link").
  std::string view;
  std::string edb;
  size_t arity = 2;
  // Positions joined in the recursive rule: edb.dst = view.src.
  size_t edb_join_col = 1;
  size_t view_join_col = 0;
  std::vector<AggViewSpec> agg_views;

  std::string ToString() const;
};

// Lowers a parsed + analyzed program onto the operator library's
// transitive-closure plan (paper Figure 4):
//
//   view(x, y) :- edb(x, y).
//   view(x, y) :- edb(x, z), view(z, y).
//   [optional aggregate views over `view`]
//
// Variable names are arbitrary; the shape is matched structurally. Returns
// Unimplemented for recursion the engine cannot execute.
StatusOr<PlanSpec> PlanProgram(const Program& program,
                               const ProgramInfo& info);

// Convenience: parse, analyze and plan in one call.
StatusOr<PlanSpec> PlanSource(const std::string& source);

}  // namespace datalog
}  // namespace recnet

#endif  // RECNET_DATALOG_PLANNER_H_
