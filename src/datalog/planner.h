#ifndef RECNET_DATALOG_PLANNER_H_
#define RECNET_DATALOG_PLANNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/analyzer.h"
#include "datalog/ast.h"

namespace recnet {
namespace datalog {

// A derived (non-recursive) aggregate view over the recursive view, e.g.
// regionSizes(rid, count<x>) :- activeRegion(rid, x).
struct AggViewSpec {
  std::string name;
  std::vector<size_t> group_cols;  // Positions in the recursive view.
  AggKind agg = AggKind::kNone;
  size_t value_col = 0;
};

// Which distributed runtime a recognized program lowers onto. Each kind maps
// to a QueryRuntime adapter in engine/runtime_registry; new query shapes add
// a kind here and a factory there.
enum class PlanKind {
  // Transitive closure over a binary EDB (paper Query 1, Figure 4).
  kReachable,
  // Cost-annotated paths with aggregate selections (paper Query 2).
  kShortestPath,
  // Contiguous sensor regions grown from seeds (paper Query 3).
  kRegion,
};

const char* PlanKindName(PlanKind kind);

// One base relation a compiled plan touches. `dynamic` relations accept
// runtime Insert/Delete traffic; static ones describe the deployment (the
// region plan's seed and proximity EDBs) and are fixed at compile time.
// Sessions use these declarations to route shared-EDB ingestion: a fact for
// relation R fans out to every co-resident view declaring R, and two views
// may share R only if their declarations agree.
struct RelationDecl {
  std::string name;
  size_t arity = 0;
  bool dynamic = true;
};

// The distributed plan shape the planner recognized, lowered from the
// source program structurally (variable names are irrelevant).
//
// Recognized shapes, by recursive-view arity and rule structure:
//
//   kReachable   view(x,y) :- edb(x,y).
//                view(x,y) :- edb(x,z), view(z,y).     [left-linear]
//             or view(x,y) :- view(x,z), edb(z,y).     [right-linear]
//     Both orientations compute the transitive closure of `edb` and lower
//     onto the same Figure-4 dataflow; the join columns record which was
//     written.
//
//   kShortestPath  view(x,y,c) :- edb(x,y,c).
//                  view(x,y,c) :- edb(x,z,c1), view(z,y,c2).
//     The dialect has no arithmetic, so the head's cost column stands for
//     the runtime-computed sum c1 + c2 (the paper writes C = C1 + C2 with
//     function symbols); the runtime additionally maintains the paper's
//     hidden `vec` and `length` attributes and prunes via AggSel. Aggregate
//     views over the path view must use min<>.
//
//   kRegion      view(r,x) :- seed(r,x), trig(x).
//                view(r,y) :- view(r,x), trig(x), near(x,y).
//     `seed` and `near` describe the (static) sensor deployment; `trig` is
//     the dynamic unary trigger relation. The paper's `distance(x,y) < k`
//     guard is precomputed into the binary proximity EDB `near`.
struct PlanSpec {
  PlanKind kind = PlanKind::kReachable;
  // Recursive view name (e.g. "reachable") and the EDB it closes over
  // (e.g. "link"; the seed relation for kRegion).
  std::string view;
  std::string edb;
  size_t arity = 2;
  // Positions joined in the recursive rule. Left-linear closure joins
  // edb.1 = view.0; right-linear joins edb.0 = view.1.
  size_t edb_join_col = 1;
  size_t view_join_col = 0;
  // kShortestPath: position of the cost attribute in view and EDB.
  size_t cost_col = 2;
  // kRegion: the dynamic unary trigger EDB and the static binary
  // proximity EDB.
  std::string trigger_edb;
  std::string proximity_edb;
  std::vector<AggViewSpec> agg_views;
  // Ground EDB facts written directly in the program (e.g. `link(1,2).`),
  // loaded by the Engine as initial insertions.
  std::vector<Rule> facts;

  // The base relations this plan ingests, with their expected arity and
  // whether they are dynamic (see RelationDecl). This is the per-view
  // namespace a Session consults when fanning one shared EDB fact out to
  // every co-resident view that declares the relation.
  std::vector<RelationDecl> Relations() const;
  // True iff `name` is a deployment-defined (static) relation of this plan.
  bool IsStaticRelation(const std::string& name) const;

  std::string ToString() const;
};

// Lowers a parsed + analyzed program onto one of the distributed plans
// above. Errors:
//   * Unimplemented   — well-formed Datalog outside the recognized
//                       fragment (no recursion, mutual recursion,
//                       non-linear recursion, unsupported arity);
//   * InvalidArgument — a program whose structure is close to a supported
//                       shape but malformed (join columns that do not line
//                       up, a base rule that does not copy the EDB, rules
//                       that participate in no view), with the offending
//                       rule and its source line in the message.
StatusOr<PlanSpec> PlanProgram(const Program& program,
                               const ProgramInfo& info);

// Convenience: parse, analyze and plan in one call.
StatusOr<PlanSpec> PlanSource(const std::string& source);

}  // namespace datalog
}  // namespace recnet

#endif  // RECNET_DATALOG_PLANNER_H_
