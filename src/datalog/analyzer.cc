#include "datalog/analyzer.h"

namespace recnet {
namespace datalog {
namespace {

Status CheckAritiesAndCollect(const Program& program, ProgramInfo* info) {
  auto check = [&](const Atom& atom) -> Status {
    auto [it, inserted] = info->arity.emplace(atom.predicate, atom.args.size());
    if (!inserted && it->second != atom.args.size()) {
      return Status::InvalidArgument("predicate '" + atom.predicate +
                                     "' used with inconsistent arity");
    }
    return Status::OK();
  };
  for (const Rule& rule : program.rules) {
    RECNET_RETURN_IF_ERROR(check(rule.head));
    // Ground facts are base data, not view definitions: a predicate defined
    // only by facts stays EDB so the planner can load the facts into it.
    if (!rule.IsFact()) info->idb.insert(rule.head.predicate);
    for (const Atom& atom : rule.body) {
      RECNET_RETURN_IF_ERROR(check(atom));
    }
  }
  for (const Rule& rule : program.rules) {
    if (rule.IsFact() &&
        info->idb.find(rule.head.predicate) == info->idb.end()) {
      info->edb.insert(rule.head.predicate);
    }
    for (const Atom& atom : rule.body) {
      if (info->idb.find(atom.predicate) == info->idb.end()) {
        info->edb.insert(atom.predicate);
      }
    }
  }
  return Status::OK();
}

Status CheckSafety(const Rule& rule) {
  std::set<std::string> bound;
  for (const Atom& atom : rule.body) {
    for (const Term& term : atom.args) {
      if (term.kind == Term::Kind::kVariable) bound.insert(term.name);
    }
  }
  for (const Term& term : rule.head.args) {
    if (term.kind == Term::Kind::kVariable &&
        bound.find(term.name) == bound.end() && !rule.IsFact()) {
      return Status::InvalidArgument("unsafe rule: head variable '" +
                                     term.name + "' not bound in body of " +
                                     rule.ToString());
    }
    if (term.kind == Term::Kind::kAggregate &&
        bound.find(term.name) == bound.end()) {
      return Status::InvalidArgument("unsafe rule: aggregated variable '" +
                                     term.name + "' not bound in body of " +
                                     rule.ToString());
    }
  }
  return Status::OK();
}

// Computes the set of predicates on a dependency cycle by iterating
// "depends, transitively" until fixpoint (programs are small).
std::set<std::string> FindRecursive(const Program& program) {
  // deps[p] = predicates appearing in bodies of rules with head p.
  std::map<std::string, std::set<std::string>> deps;
  for (const Rule& rule : program.rules) {
    for (const Atom& atom : rule.body) {
      deps[rule.head.predicate].insert(atom.predicate);
    }
  }
  // Transitive closure.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [head, body] : deps) {
      std::set<std::string> grown = body;
      for (const std::string& p : body) {
        auto it = deps.find(p);
        if (it == deps.end()) continue;
        grown.insert(it->second.begin(), it->second.end());
      }
      if (grown.size() != body.size()) {
        body = std::move(grown);
        changed = true;
      }
    }
  }
  std::set<std::string> recursive;
  for (const auto& [head, reach] : deps) {
    if (reach.find(head) != reach.end()) recursive.insert(head);
  }
  return recursive;
}

}  // namespace

StatusOr<ProgramInfo> Analyze(const Program& program) {
  ProgramInfo info;
  RECNET_RETURN_IF_ERROR(CheckAritiesAndCollect(program, &info));
  for (const Rule& rule : program.rules) {
    RECNET_RETURN_IF_ERROR(CheckSafety(rule));
  }
  info.recursive = FindRecursive(program);

  for (const Rule& rule : program.rules) {
    bool head_recursive =
        info.recursive.find(rule.head.predicate) != info.recursive.end();
    if (!head_recursive) continue;
    // Aggregates inside the recursion are not supported (the paper pushes
    // aggregate *selections* into recursion but defines aggregate views
    // outside it).
    for (const Term& term : rule.head.args) {
      if (term.kind == Term::Kind::kAggregate) {
        return Status::Unimplemented(
            "aggregate in recursive rule head: " + rule.ToString());
      }
    }
    int recursive_atoms = 0;
    for (const Atom& atom : rule.body) {
      if (info.recursive.find(atom.predicate) != info.recursive.end()) {
        ++recursive_atoms;
      }
    }
    if (recursive_atoms > 1) info.linear_recursion = false;
  }
  return info;
}

}  // namespace datalog
}  // namespace recnet
