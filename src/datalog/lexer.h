#ifndef RECNET_DATALOG_LEXER_H_
#define RECNET_DATALOG_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/token.h"

namespace recnet {
namespace datalog {

// Tokenizes a Datalog program. `%`-to-end-of-line comments are skipped.
StatusOr<std::vector<Token>> Lex(const std::string& source);

}  // namespace datalog
}  // namespace recnet

#endif  // RECNET_DATALOG_LEXER_H_
