#ifndef RECNET_DATALOG_PARSER_H_
#define RECNET_DATALOG_PARSER_H_

#include <string>

#include "common/status.h"
#include "datalog/ast.h"

namespace recnet {
namespace datalog {

// Parses a Datalog program in the paper's dialect:
//
//   reachable(x,y) :- link(x,y).
//   reachable(x,y) :- link(x,z), reachable(z,y).
//   minCost(x,y,min<c>) :- path(x,y,p,c,l).
//
// Bare identifiers in argument position are variables; numbers and quoted
// strings are constants; head terms may be aggregates (min/max/count/sum
// over a body variable).
StatusOr<Program> Parse(const std::string& source);

}  // namespace datalog
}  // namespace recnet

#endif  // RECNET_DATALOG_PARSER_H_
