#include "datalog/planner.h"

#include <optional>
#include <sstream>

#include "datalog/parser.h"

namespace recnet {
namespace datalog {
namespace {

// Renders a rule with its source line for planner diagnostics.
std::string RuleContext(const Rule& rule) {
  return rule.ToString() + " (line " + std::to_string(rule.line) + ")";
}

bool SameVariable(const Term& a, const Term& b) {
  return a.kind == Term::Kind::kVariable && b.kind == Term::Kind::kVariable &&
         a.name == b.name;
}

// Matches `view(args...) :- edb(args...).` (base rule: head vars = body vars
// in order), for any arity.
bool MatchesBaseRule(const Rule& rule, const std::string& edb) {
  if (rule.body.size() != 1) return false;
  const Atom& body = rule.body[0];
  if (body.predicate != edb) return false;
  if (body.args.size() != rule.head.args.size()) return false;
  for (size_t i = 0; i < body.args.size(); ++i) {
    if (!SameVariable(rule.head.args[i], body.args[i])) return false;
  }
  return true;
}

// Matches the linear closure of `edb` through `view` on the first two
// columns, in either orientation:
//
//   left-linear:   view(x, y, ...) :- edb(x, z, ...), view(z, y, ...).
//   right-linear:  view(x, y, ...) :- view(x, z, ...), edb(z, y, ...).
//
// Columns >= 2 are computed by the runtime (cost accumulation) and only
// need to hold variables. Fills the join columns on success.
bool MatchesClosureRule(const Rule& rule, const Atom& edb_atom,
                        const Atom& view_atom, size_t* edb_join_col,
                        size_t* view_join_col) {
  const Atom& head = rule.head;
  for (const Atom* atom : {&head, &edb_atom, &view_atom}) {
    for (const Term& term : atom->args) {
      if (term.kind != Term::Kind::kVariable) return false;
    }
  }
  if (SameVariable(head.args[0], edb_atom.args[0]) &&
      SameVariable(head.args[1], view_atom.args[1]) &&
      SameVariable(edb_atom.args[1], view_atom.args[0])) {
    *edb_join_col = 1;
    *view_join_col = 0;
    return true;
  }
  if (SameVariable(head.args[0], view_atom.args[0]) &&
      SameVariable(head.args[1], edb_atom.args[1]) &&
      SameVariable(view_atom.args[1], edb_atom.args[0])) {
    *edb_join_col = 0;
    *view_join_col = 1;
    return true;
  }
  return false;
}

std::optional<AggViewSpec> MatchAggView(const Rule& rule,
                                        const std::string& view) {
  if (rule.body.size() != 1 || rule.body[0].predicate != view) {
    return std::nullopt;
  }
  const Atom& body = rule.body[0];
  AggViewSpec spec;
  spec.name = rule.head.predicate;
  bool has_agg = false;
  for (const Term& term : rule.head.args) {
    if (term.kind == Term::Kind::kAggregate) {
      if (has_agg) return std::nullopt;  // One aggregate per view.
      has_agg = true;
      spec.agg = term.agg;
      for (size_t i = 0; i < body.args.size(); ++i) {
        if (body.args[i].kind == Term::Kind::kVariable &&
            body.args[i].name == term.name) {
          spec.value_col = i;
        }
      }
    } else if (term.kind == Term::Kind::kVariable) {
      for (size_t i = 0; i < body.args.size(); ++i) {
        if (SameVariable(term, body.args[i])) spec.group_cols.push_back(i);
      }
    }
  }
  if (!has_agg) return std::nullopt;
  return spec;
}

// The rules of one program, split by their role relative to the recursive
// view.
struct RuleGroups {
  std::vector<const Rule*> base;       // head == view, no view atom in body.
  std::vector<const Rule*> recursive;  // head == view, view atom in body.
  std::vector<const Rule*> other;      // candidate aggregate views.
};

Status SplitRules(const Program& program, const std::string& view,
                  RuleGroups* groups, PlanSpec* spec) {
  for (const Rule& rule : program.rules) {
    if (rule.IsFact()) {
      if (rule.head.predicate == view) {
        return Status::InvalidArgument(
            "ground fact for the recursive view is not supported: " +
            RuleContext(rule));
      }
      for (const Term& term : rule.head.args) {
        if (term.kind != Term::Kind::kNumber &&
            term.kind != Term::Kind::kString) {
          return Status::InvalidArgument("fact with non-constant argument: " +
                                         RuleContext(rule));
        }
      }
      spec->facts.push_back(rule);
      continue;
    }
    if (rule.head.predicate != view) {
      groups->other.push_back(&rule);
      continue;
    }
    bool is_recursive = false;
    for (const Atom& atom : rule.body) {
      if (atom.predicate == view) is_recursive = true;
    }
    (is_recursive ? groups->recursive : groups->base).push_back(&rule);
  }
  return Status::OK();
}

// Locates the single view atom and the single non-view atom in a binary
// recursive-rule body. The analyzer's linearity check guarantees at most one
// view atom.
Status PickClosureAtoms(const Rule& rule, const std::string& view,
                        const Atom** edb_atom, const Atom** view_atom) {
  *edb_atom = nullptr;
  *view_atom = nullptr;
  for (const Atom& atom : rule.body) {
    if (atom.predicate == view) {
      *view_atom = &atom;
    } else {
      if (*edb_atom != nullptr) {
        return Status::InvalidArgument(
            "recursive rule joins more than one EDB: " + RuleContext(rule));
      }
      *edb_atom = &atom;
    }
  }
  if (*view_atom == nullptr) {
    // Callers only pass rules SplitRules classified as recursive, so a
    // missing view atom means the classification and this search disagree —
    // a planner bug surfaced as a typed error rather than a process abort.
    return Status::Internal("recursive rule lost its view atom: " +
                            RuleContext(rule));
  }
  if (*edb_atom == nullptr) {
    return Status::InvalidArgument("recursive rule has no EDB atom: " +
                                   RuleContext(rule));
  }
  return Status::OK();
}

Status CheckConsistentEdb(const Rule& rule, const std::string& found,
                          std::string* edb) {
  if (!edb->empty() && *edb != found) {
    return Status::InvalidArgument(
        "recursive rules close over different EDBs ('" + *edb + "' vs '" +
        found + "'): " + RuleContext(rule));
  }
  *edb = found;
  return Status::OK();
}

Status CheckBaseRules(const RuleGroups& groups, const PlanSpec& spec) {
  if (groups.base.empty()) {
    return Status::InvalidArgument("no base rule found for view '" +
                                   spec.view + "'");
  }
  for (const Rule* rule : groups.base) {
    if (!MatchesBaseRule(*rule, spec.edb)) {
      return Status::InvalidArgument("base rule does not copy the EDB '" +
                                     spec.edb + "': " + RuleContext(*rule));
    }
  }
  return Status::OK();
}

Status MatchAggViews(const RuleGroups& groups, PlanSpec* spec) {
  for (const Rule* rule : groups.other) {
    std::optional<AggViewSpec> agg = MatchAggView(*rule, spec->view);
    if (!agg.has_value()) {
      return Status::InvalidArgument(
          "rule defines neither the recursive view nor an aggregate view "
          "over it: " +
          RuleContext(*rule));
    }
    if (spec->kind == PlanKind::kShortestPath && agg->agg != AggKind::kMin) {
      return Status::Unimplemented(
          "only min<> aggregate views are supported over the path view "
          "(its materialization is pruned by aggregate selection): " +
          RuleContext(*rule));
    }
    spec->agg_views.push_back(std::move(*agg));
  }
  return Status::OK();
}

// The shared shape of kReachable (arity 2) and kShortestPath (arity 3):
//   view(x, y, ...) :- edb(x, z, ...), view(z, y, ...).   [or right-linear]
// The caller sets spec->kind/cost_col and passes the expected atom arity.
Status PlanLinearClosure(const RuleGroups& groups, size_t atom_arity,
                         PlanSpec* spec) {
  for (const Rule* rule : groups.recursive) {
    const Atom* edb_atom;
    const Atom* view_atom;
    RECNET_RETURN_IF_ERROR(
        PickClosureAtoms(*rule, spec->view, &edb_atom, &view_atom));
    RECNET_RETURN_IF_ERROR(
        CheckConsistentEdb(*rule, edb_atom->predicate, &spec->edb));
    if (edb_atom->args.size() != atom_arity ||
        view_atom->args.size() != atom_arity) {
      return Status::InvalidArgument(
          "closure over a " + std::to_string(edb_atom->args.size()) +
          "-ary EDB where " + std::to_string(atom_arity) +
          "-ary is required: " + RuleContext(*rule));
    }
    if (!MatchesClosureRule(*rule, *edb_atom, *view_atom, &spec->edb_join_col,
                            &spec->view_join_col)) {
      return Status::InvalidArgument(
          "recursive rule matches neither linear-closure orientation: " +
          RuleContext(*rule));
    }
  }
  return CheckBaseRules(groups, *spec);
}

// view(r, x) :- seed(r, x), trig(x).
// view(r, y) :- view(r, x), trig(x), near(x, y).
Status PlanRegion(const RuleGroups& groups, PlanSpec* spec) {
  spec->kind = PlanKind::kRegion;
  for (const Rule* rule : groups.recursive) {
    const Atom* view_atom = nullptr;
    const Atom* trig_atom = nullptr;
    const Atom* near_atom = nullptr;
    for (const Atom& atom : rule->body) {
      if (atom.predicate == spec->view) {
        view_atom = &atom;
      } else if (atom.args.size() == 1) {
        trig_atom = &atom;
      } else {
        near_atom = &atom;
      }
    }
    if (view_atom == nullptr || trig_atom == nullptr || near_atom == nullptr ||
        view_atom->args.size() != 2 || near_atom->args.size() != 2) {
      return Status::InvalidArgument(
          "region rule needs the view, a unary trigger and a binary "
          "proximity atom: " +
          RuleContext(*rule));
    }
    // view(r, y) :- view(r, x), trig(x), near(x, y).
    if (!SameVariable(rule->head.args[0], view_atom->args[0]) ||
        !SameVariable(rule->head.args[1], near_atom->args[1]) ||
        !SameVariable(view_atom->args[1], trig_atom->args[0]) ||
        !SameVariable(view_atom->args[1], near_atom->args[0])) {
      return Status::InvalidArgument(
          "region rule does not grow the view along the proximity EDB: " +
          RuleContext(*rule));
    }
    RECNET_RETURN_IF_ERROR(CheckConsistentEdb(
        *rule, near_atom->predicate, &spec->proximity_edb));
    RECNET_RETURN_IF_ERROR(
        CheckConsistentEdb(*rule, trig_atom->predicate, &spec->trigger_edb));
  }
  if (groups.base.empty()) {
    return Status::InvalidArgument("no base rule found for view '" +
                                   spec->view + "'");
  }
  for (const Rule* rule : groups.base) {
    // view(r, x) :- seed(r, x), trig(x).
    const Atom* seed_atom = nullptr;
    const Atom* trig_atom = nullptr;
    for (const Atom& atom : rule->body) {
      if (atom.args.size() == 1) {
        trig_atom = &atom;
      } else {
        seed_atom = &atom;
      }
    }
    if (seed_atom == nullptr || trig_atom == nullptr ||
        rule->body.size() != 2 || seed_atom->args.size() != 2 ||
        trig_atom->predicate != spec->trigger_edb) {
      return Status::InvalidArgument(
          "region base rule needs a binary seed atom guarded by the "
          "trigger relation: " +
          RuleContext(*rule));
    }
    if (!SameVariable(rule->head.args[0], seed_atom->args[0]) ||
        !SameVariable(rule->head.args[1], seed_atom->args[1]) ||
        !SameVariable(trig_atom->args[0], seed_atom->args[1])) {
      return Status::InvalidArgument(
          "region base rule does not copy the triggered seed: " +
          RuleContext(*rule));
    }
    RECNET_RETURN_IF_ERROR(
        CheckConsistentEdb(*rule, seed_atom->predicate, &spec->edb));
  }
  if (spec->edb == spec->proximity_edb) {
    return Status::InvalidArgument("seed and proximity EDB coincide ('" +
                                   spec->edb + "')");
  }
  return Status::OK();
}

}  // namespace

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kReachable:
      return "reachable";
    case PlanKind::kShortestPath:
      return "shortest-path";
    case PlanKind::kRegion:
      return "region";
  }
  return "?";
}

std::vector<RelationDecl> PlanSpec::Relations() const {
  switch (kind) {
    case PlanKind::kReachable:
      return {{edb, 2, /*dynamic=*/true}};
    case PlanKind::kShortestPath:
      return {{edb, 3, /*dynamic=*/true}};
    case PlanKind::kRegion:
      // The trigger relation is the only dynamic input; the seed and
      // proximity EDBs are fixed by the sensor deployment.
      return {{trigger_edb, 1, /*dynamic=*/true},
              {edb, 2, /*dynamic=*/false},
              {proximity_edb, 2, /*dynamic=*/false}};
  }
  return {};
}

bool PlanSpec::IsStaticRelation(const std::string& name) const {
  for (const RelationDecl& decl : Relations()) {
    if (decl.name == name) return !decl.dynamic;
  }
  return false;
}

std::string PlanSpec::ToString() const {
  std::ostringstream os;
  os << "Plan[" << PlanKindName(kind) << " view=" << view << " edb=" << edb;
  if (kind == PlanKind::kRegion) {
    os << " trigger=" << trigger_edb << " proximity=" << proximity_edb;
  } else {
    os << " join(" << edb << "." << edb_join_col << "=" << view << "."
       << view_join_col << ")";
  }
  for (const AggViewSpec& agg : agg_views) {
    os << " agg:" << agg.name << "=" << AggKindName(agg.agg) << "(col"
       << agg.value_col << ")";
  }
  if (!facts.empty()) os << " facts=" << facts.size();
  os << "]";
  return os.str();
}

StatusOr<PlanSpec> PlanProgram(const Program& program,
                               const ProgramInfo& info) {
  if (info.recursive.empty()) {
    return Status::Unimplemented(
        "program has no recursive view; nothing to plan");
  }
  if (info.recursive.size() != 1) {
    return Status::Unimplemented(
        "mutual recursion between multiple predicates is not supported");
  }
  if (!info.linear_recursion) {
    return Status::Unimplemented(
        "non-linear recursion is not supported (SQL-99 restriction)");
  }
  PlanSpec spec;
  spec.view = *info.recursive.begin();
  auto arity_it = info.arity.find(spec.view);
  if (arity_it == info.arity.end()) {
    // The analyzer records an arity for every predicate it marks recursive;
    // disagreement means the ProgramInfo is not from this program.
    return Status::Internal("analysis has no arity for recursive view '" +
                            spec.view + "'");
  }
  spec.arity = arity_it->second;

  RuleGroups groups;
  RECNET_RETURN_IF_ERROR(SplitRules(program, spec.view, &groups, &spec));
  if (groups.recursive.empty()) {
    return Status::Internal(
        "analysis marked '" + spec.view +
        "' recursive but no recursive rule mentions it in its body");
  }

  // Dispatch on the structural signature of the recursion.
  size_t rec_body = groups.recursive.front()->body.size();
  for (const Rule* rule : groups.recursive) {
    if (rule->body.size() != rec_body) {
      return Status::InvalidArgument(
          "recursive rules have inconsistent shapes: " + RuleContext(*rule));
    }
  }
  if (spec.arity == 2 && rec_body == 2) {
    spec.kind = PlanKind::kReachable;
    RECNET_RETURN_IF_ERROR(PlanLinearClosure(groups, 2, &spec));
  } else if (spec.arity == 3 && rec_body == 2) {
    spec.kind = PlanKind::kShortestPath;
    spec.cost_col = 2;
    RECNET_RETURN_IF_ERROR(PlanLinearClosure(groups, 3, &spec));
  } else if (spec.arity == 2 && rec_body == 3) {
    RECNET_RETURN_IF_ERROR(PlanRegion(groups, &spec));
  } else {
    return Status::Unimplemented(
        "no runtime executes a " + std::to_string(spec.arity) +
        "-ary recursive view with " + std::to_string(rec_body) +
        "-atom recursive rules: " + RuleContext(*groups.recursive.front()));
  }
  RECNET_RETURN_IF_ERROR(MatchAggViews(groups, &spec));
  // Ground facts must target a relation the plan actually ingests; catching
  // strays here keeps Compile's error contract (InvalidArgument with rule
  // context) instead of a late NotFound during fact loading.
  for (const Rule& fact : spec.facts) {
    const std::string& p = fact.head.predicate;
    if (p != spec.edb && p != spec.trigger_edb && p != spec.proximity_edb) {
      return Status::InvalidArgument("fact for relation '" + p +
                                     "' which the plan does not ingest: " +
                                     RuleContext(fact));
    }
  }
  return spec;
}

StatusOr<PlanSpec> PlanSource(const std::string& source) {
  StatusOr<Program> program = Parse(source);
  if (!program.ok()) return program.status();
  StatusOr<ProgramInfo> info = Analyze(program.value());
  if (!info.ok()) return info.status();
  return PlanProgram(program.value(), info.value());
}

}  // namespace datalog
}  // namespace recnet
