#include "datalog/planner.h"

#include <optional>
#include <sstream>

#include "datalog/parser.h"

namespace recnet {
namespace datalog {
namespace {

bool SameVariable(const Term& a, const Term& b) {
  return a.kind == Term::Kind::kVariable && b.kind == Term::Kind::kVariable &&
         a.name == b.name;
}

// Matches `view(x, y) :- edb(x, y).` (base rule: head vars = body vars in
// order).
bool MatchesBaseRule(const Rule& rule, const std::string& view,
                     const std::string& edb) {
  if (rule.head.predicate != view || rule.body.size() != 1) return false;
  const Atom& body = rule.body[0];
  if (body.predicate != edb) return false;
  if (body.args.size() != rule.head.args.size()) return false;
  for (size_t i = 0; i < body.args.size(); ++i) {
    if (!SameVariable(rule.head.args[i], body.args[i])) return false;
  }
  return true;
}

// Matches `view(x, y) :- edb(x, z), view(z, y).` up to variable renaming
// and body-atom order; fills the join columns.
bool MatchesRecursiveRule(const Rule& rule, const std::string& view,
                          const std::string& edb, PlanSpec* spec) {
  if (rule.head.predicate != view || rule.body.size() != 2) return false;
  const Atom* edb_atom = nullptr;
  const Atom* view_atom = nullptr;
  for (const Atom& atom : rule.body) {
    if (atom.predicate == edb) edb_atom = &atom;
    if (atom.predicate == view) view_atom = &atom;
  }
  if (edb_atom == nullptr || view_atom == nullptr) return false;
  if (edb_atom->args.size() != 2 || view_atom->args.size() != 2 ||
      rule.head.args.size() != 2) {
    return false;
  }
  // head.0 comes from the edb atom, head.1 from the view atom, and the
  // remaining edb/view positions join.
  if (!SameVariable(rule.head.args[0], edb_atom->args[0])) return false;
  if (!SameVariable(rule.head.args[1], view_atom->args[1])) return false;
  if (!SameVariable(edb_atom->args[1], view_atom->args[0])) return false;
  spec->edb_join_col = 1;
  spec->view_join_col = 0;
  return true;
}

std::optional<AggViewSpec> MatchAggView(const Rule& rule,
                                        const std::string& view) {
  if (rule.body.size() != 1 || rule.body[0].predicate != view) {
    return std::nullopt;
  }
  const Atom& body = rule.body[0];
  AggViewSpec spec;
  spec.name = rule.head.predicate;
  bool has_agg = false;
  for (const Term& term : rule.head.args) {
    if (term.kind == Term::Kind::kAggregate) {
      if (has_agg) return std::nullopt;  // One aggregate per view.
      has_agg = true;
      spec.agg = term.agg;
      for (size_t i = 0; i < body.args.size(); ++i) {
        if (body.args[i].kind == Term::Kind::kVariable &&
            body.args[i].name == term.name) {
          spec.value_col = i;
        }
      }
    } else if (term.kind == Term::Kind::kVariable) {
      for (size_t i = 0; i < body.args.size(); ++i) {
        if (SameVariable(term, body.args[i])) spec.group_cols.push_back(i);
      }
    }
  }
  if (!has_agg) return std::nullopt;
  return spec;
}

}  // namespace

std::string PlanSpec::ToString() const {
  std::ostringstream os;
  os << "Plan[view=" << view << " edb=" << edb << " join(" << edb << "."
     << edb_join_col << "=" << view << "." << view_join_col << ")";
  for (const AggViewSpec& agg : agg_views) {
    os << " agg:" << agg.name << "=" << AggKindName(agg.agg) << "(col"
       << agg.value_col << ")";
  }
  os << "]";
  return os.str();
}

StatusOr<PlanSpec> PlanProgram(const Program& program,
                               const ProgramInfo& info) {
  if (info.recursive.empty()) {
    return Status::Unimplemented(
        "program has no recursive view; nothing to plan");
  }
  if (info.recursive.size() != 1) {
    return Status::Unimplemented(
        "mutual recursion between multiple predicates is not supported");
  }
  if (!info.linear_recursion) {
    return Status::Unimplemented(
        "non-linear recursion is not supported (SQL-99 restriction)");
  }
  PlanSpec spec;
  spec.view = *info.recursive.begin();
  auto arity_it = info.arity.find(spec.view);
  RECNET_CHECK(arity_it != info.arity.end());
  spec.arity = arity_it->second;
  if (spec.arity != 2) {
    return Status::Unimplemented(
        "only binary recursive views lower onto the reachability plan");
  }

  // Identify the EDB from the recursive rule(s).
  bool base_seen = false;
  bool recursive_seen = false;
  for (const Rule& rule : program.rules) {
    if (rule.head.predicate != spec.view) {
      std::optional<AggViewSpec> agg = MatchAggView(rule, spec.view);
      if (agg.has_value()) spec.agg_views.push_back(std::move(*agg));
      continue;
    }
    bool is_recursive = false;
    for (const Atom& atom : rule.body) {
      if (atom.predicate == spec.view) is_recursive = true;
    }
    if (is_recursive) {
      std::string edb;
      for (const Atom& atom : rule.body) {
        if (atom.predicate != spec.view) edb = atom.predicate;
      }
      if (edb.empty() || (spec.edb != "" && spec.edb != edb)) {
        return Status::Unimplemented(
            "unsupported recursive rule shape: " + rule.ToString());
      }
      spec.edb = edb;
      if (!MatchesRecursiveRule(rule, spec.view, spec.edb, &spec)) {
        return Status::Unimplemented(
            "recursive rule does not match the link/reachable join shape: " +
            rule.ToString());
      }
      recursive_seen = true;
    }
  }
  if (!recursive_seen) {
    return Status::Unimplemented("no recursive rule found for " + spec.view);
  }
  for (const Rule& rule : program.rules) {
    if (rule.head.predicate == spec.view && !rule.IsFact()) {
      bool is_recursive = false;
      for (const Atom& atom : rule.body) {
        if (atom.predicate == spec.view) is_recursive = true;
      }
      if (!is_recursive) {
        if (!MatchesBaseRule(rule, spec.view, spec.edb)) {
          return Status::Unimplemented(
              "base rule does not copy the EDB: " + rule.ToString());
        }
        base_seen = true;
      }
    }
  }
  if (!base_seen) {
    return Status::Unimplemented("no base rule found for " + spec.view);
  }
  return spec;
}

StatusOr<PlanSpec> PlanSource(const std::string& source) {
  StatusOr<Program> program = Parse(source);
  if (!program.ok()) return program.status();
  StatusOr<ProgramInfo> info = Analyze(program.value());
  if (!info.ok()) return info.status();
  return PlanProgram(program.value(), info.value());
}

}  // namespace datalog
}  // namespace recnet
