#include "datalog/lexer.h"

#include <cctype>

namespace recnet {
namespace datalog {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<std::vector<Token>> Lex(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;
  auto make = [&](TokenKind kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = column;
    return t;
  };
  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++column;
      ++i;
      continue;
    }
    if (c == '%') {  // Comment to end of line.
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      Token t = make(TokenKind::kIdent);
      size_t start = i;
      while (i < source.size() && IsIdentChar(source[i])) {
        ++i;
        ++column;
      }
      t.text = source.substr(start, i - start);
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Token t = make(TokenKind::kNumber);
      size_t start = i;
      while (i < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[i])) ||
              source[i] == '.')) {
        // A period followed by a non-digit terminates the number (it is the
        // rule terminator).
        if (source[i] == '.' &&
            (i + 1 >= source.size() ||
             !std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
          break;
        }
        ++i;
        ++column;
      }
      t.text = source.substr(start, i - start);
      t.number = std::stod(t.text);
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      Token t = make(TokenKind::kString);
      ++i;
      ++column;
      size_t start = i;
      while (i < source.size() && source[i] != '"') {
        if (source[i] == '\n') {
          return Status::InvalidArgument(
              "unterminated string literal at line " + std::to_string(line));
        }
        ++i;
        ++column;
      }
      if (i >= source.size()) {
        return Status::InvalidArgument(
            "unterminated string literal at line " + std::to_string(line));
      }
      t.text = source.substr(start, i - start);
      ++i;  // Closing quote.
      ++column;
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == ':' && i + 1 < source.size() && source[i + 1] == '-') {
      tokens.push_back(make(TokenKind::kColonDash));
      i += 2;
      column += 2;
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '(':
        kind = TokenKind::kLParen;
        break;
      case ')':
        kind = TokenKind::kRParen;
        break;
      case ',':
        kind = TokenKind::kComma;
        break;
      case '.':
        kind = TokenKind::kPeriod;
        break;
      case '<':
        kind = TokenKind::kLAngle;
        break;
      case '>':
        kind = TokenKind::kRAngle;
        break;
      default:
        return Status::InvalidArgument(
            std::string("unexpected character '") + c + "' at line " +
            std::to_string(line) + ", column " + std::to_string(column));
    }
    tokens.push_back(make(kind));
    ++i;
    ++column;
  }
  tokens.push_back(Token{TokenKind::kEnd, "", 0, line, column});
  return tokens;
}

}  // namespace datalog
}  // namespace recnet
