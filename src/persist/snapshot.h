#ifndef RECNET_PERSIST_SNAPSHOT_H_
#define RECNET_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "persist/wire.h"

namespace recnet {
namespace persist {

// Self-describing prefix of a session snapshot payload. Everything an
// inspector (tools/recnet_ckpt) reports lives here, so tooling can describe
// a checkpoint without linking the engine or decoding operator state.
struct SnapshotRelationInfo {
  std::string name;
  uint64_t arity = 0;
  bool dynamic = false;
  uint64_t live_facts = 0;
};

struct SnapshotViewInfo {
  std::string name;       // The view's head relation (plan name).
  std::string prov_mode;  // Human-readable ProvMode.
  uint64_t messages = 0;  // Cross-physical messages at checkpoint time.
};

struct SnapshotSummary {
  int32_t num_nodes = 0;      // Logical node-id space at checkpoint.
  int32_t num_physical = 0;   // Effective physical peer pool.
  bool batch_delivery = true;
  int32_t shards = 1;         // Shard count of the checkpointing session.
  uint32_t bdd_nodes = 0;     // Serialized BDD unique-table size.
  std::vector<SnapshotRelationInfo> relations;
  std::vector<SnapshotViewInfo> views;
};

// Writes the summary at the current position; `bdd_nodes` is written as a
// placeholder and the returned offset is PatchU32'd by the session encoder
// once every annotation has been interned.
size_t WriteSummary(Writer* w, const SnapshotSummary& s);

Status ReadSummary(Reader* r, SnapshotSummary* out);

// Tool entry point: validates the container (including the checksum when
// `verify` is set; otherwise just the header) and decodes the summary.
Status InspectSnapshot(const std::string& path, bool verify,
                       SnapshotHeader* header, SnapshotSummary* summary);

}  // namespace persist
}  // namespace recnet

#endif  // RECNET_PERSIST_SNAPSHOT_H_
