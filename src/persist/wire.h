#ifndef RECNET_PERSIST_WIRE_H_
#define RECNET_PERSIST_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace recnet {
namespace persist {

// Snapshot file container: a fixed header followed by an opaque payload.
//
//   u64 magic | u32 format version | u32 endianness tag |
//   u64 payload size | u64 FNV-1a checksum of payload | payload bytes
//
// All integers are stored in native byte order; the endianness tag rejects a
// snapshot written on a machine with different endianness (the paper's
// engine state is a memory image, not an interchange format).
inline constexpr uint64_t kSnapshotMagic = 0x706B63'74656E6372ULL;  // "rcnetckp"
// Version 2: NetworkStats/RunMetrics gained the lossy-link and recovery
// counters (link_dropped / link_duplicated / link_retried / recoveries).
// Version 3: the BDD node table and every stored root are complement-edge
// tagged refs — (remapped node id << 1) | complement bit, with id 0 the
// single TRUE terminal — instead of version 2's plain node ids with two
// terminal ids. Writers emit version 3; readers accept 2 and 3 (a v2 table
// decodes through the manager's canonicalizing restore path).
inline constexpr uint32_t kSnapshotVersion = 3;
inline constexpr uint32_t kMinSnapshotVersion = 2;
inline constexpr uint32_t kEndianTag = 0x01020304;
inline constexpr size_t kSnapshotHeaderBytes = 8 + 4 + 4 + 8 + 8;

uint64_t Fnv1a(const uint8_t* data, size_t n);

// Append-only byte buffer with fixed-width little-endian-native encodings.
class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { PutRaw(&v, sizeof v); }
  void U32(uint32_t v) { PutRaw(&v, sizeof v); }
  void U64(uint64_t v) { PutRaw(&v, sizeof v); }
  void I32(int32_t v) { PutRaw(&v, sizeof v); }
  void I64(int64_t v) { PutRaw(&v, sizeof v); }
  // Doubles round-trip as their raw 8-byte bit pattern (bit-identical
  // restore is the whole point; no text formatting).
  void F64(double v) { PutRaw(&v, sizeof v); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }
  void Bytes(const void* data, size_t n) { PutRaw(data, n); }

  size_t Tell() const { return buf_.size(); }
  // Back-patches a u32 written earlier (e.g. a count known only after the
  // section body is encoded).
  void PatchU32(size_t pos, uint32_t v) {
    std::memcpy(buf_.data() + pos, &v, sizeof v);
  }
  void Append(const Writer& o) {
    buf_.insert(buf_.end(), o.buf_.begin(), o.buf_.end());
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }

 private:
  void PutRaw(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<uint8_t> buf_;
};

// Bounds-checked sequential reader with a sticky error flag: once a read
// runs past the end, every subsequent read returns a zero value and ok()
// stays false, so decode loops can check status once per section instead of
// per field. The payload checksum is verified before parsing, so a sticky
// error indicates a logic/version mismatch rather than bit rot.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}
  explicit Reader(const std::vector<uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  uint8_t U8() { return GetRaw<uint8_t>(); }
  uint16_t U16() { return GetRaw<uint16_t>(); }
  uint32_t U32() { return GetRaw<uint32_t>(); }
  uint64_t U64() { return GetRaw<uint64_t>(); }
  int32_t I32() { return GetRaw<int32_t>(); }
  int64_t I64() { return GetRaw<int64_t>(); }
  double F64() { return GetRaw<double>(); }
  bool Bool() { return U8() != 0; }
  std::string Str() {
    uint32_t n = U32();
    if (!CanRead(n)) return std::string();
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }

  // Reads an element count for a loop whose elements occupy at least
  // `min_bytes_per_item` bytes each; an implausible count (corrupt data)
  // trips the error flag instead of driving a huge allocation.
  uint64_t Count(size_t min_bytes_per_item = 1) {
    uint64_t n = U64();
    if (min_bytes_per_item > 0 &&
        n > remaining() / static_cast<uint64_t>(min_bytes_per_item)) {
      ok_ = false;
      return 0;
    }
    return n;
  }

  bool ok() const { return ok_; }
  // Trips the error flag from a semantic validation failure (bad enum tag,
  // dangling node id) so it surfaces through the same Check() path.
  void Invalidate() { ok_ = false; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool CanRead(size_t n) {
    if (remaining() < n) ok_ = false;
    return ok_;
  }
  // Section checkpoint: DataLoss once any read overran.
  Status Check(const char* what) const {
    if (ok_) return Status::OK();
    return Status::DataLoss(std::string("snapshot payload ended inside ") +
                            what);
  }

 private:
  template <typename T>
  T GetRaw() {
    T v{};
    if (!CanRead(sizeof v)) return v;
    std::memcpy(&v, p_, sizeof v);
    p_ += sizeof v;
    return v;
  }

  const uint8_t* p_;
  const uint8_t* end_;
  bool ok_ = true;
};

struct SnapshotHeader {
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
};

// Crash-atomic write: header + payload go to `path + ".tmp"`, which is
// flushed, closed, and renamed over `path` only once complete — so a crash
// (or injected fault) mid-write never leaves a partial file at `path`; at
// worst a torn `.tmp` remains, which the next successful write replaces.
//
// `tear_after_bytes` is the fault-injection hook: when set to less than the
// full container size, exactly that many bytes are written to the temporary,
// the rename is skipped, and Unavailable is returned — modeling a process
// death mid-checkpoint. Production callers leave it at the default (no
// tear).
Status WriteSnapshotFile(const std::string& path, const Writer& payload,
                         size_t tear_after_bytes = SIZE_MAX);

// Reads and validates the container. Typed failures:
//   InvalidArgument  — wrong magic, unsupported version, endianness mismatch
//   DataLoss         — truncated file or checksum mismatch
//   NotFound         — file missing/unreadable
// `verify_checksum` is on for every engine restore; the inspector turns it
// off to describe a file whose corruption it is about to report.
Status ReadSnapshotPayload(const std::string& path,
                           std::vector<uint8_t>* payload,
                           SnapshotHeader* header = nullptr,
                           bool verify_checksum = true);

// Header-only probe for tooling; performs the same validation except the
// checksum, which is reported (and separately recomputable) so an inspector
// can distinguish "unreadable" from "corrupt".
Status ReadSnapshotHeader(const std::string& path, SnapshotHeader* header);

}  // namespace persist
}  // namespace recnet

#endif  // RECNET_PERSIST_WIRE_H_
