#ifndef RECNET_PERSIST_CODEC_H_
#define RECNET_PERSIST_CODEC_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"
#include "common/value.h"
#include "engine/metrics.h"
#include "net/router_shard.h"
#include "persist/wire.h"
#include "provenance/prov.h"

namespace recnet {
namespace persist {

// Serializes BDD roots against one shared node table: every root encoded
// through one encoder contributes its reachable internal nodes exactly once,
// children before parents, with manager-independent remapped refs mirroring
// the in-memory tagging — (remapped node id << 1) | complement bit, node
// id 0 the single TRUE terminal, internal node i = table position i + 1
// (snapshot format version 3; version 2 stored plain node ids with two
// terminal ids). The table is emitted separately from the sections
// referencing the roots, so a snapshot stores the manager's live graph once
// no matter how many annotations share it — the on-disk analogue of
// hash-consing.
class BddEncoder {
 public:
  explicit BddEncoder(const bdd::Manager* mgr) : mgr_(mgr) {}

  // Returns the remapped tagged ref of `root`, interning its subgraph on
  // first use. The complement bit of `root` round-trips through the low bit
  // of the returned id.
  uint32_t Encode(bdd::BddRef root);

  // u32 node count, then (u32 var, u32 low ref, u32 high ref) per node in
  // table order. Children-before-parents, so a decoder interns in one pass.
  void WriteNodeTable(Writer* w) const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct EncodedNode {
    uint32_t var;
    uint32_t low;
    uint32_t high;
  };

  const bdd::Manager* mgr_;
  // Keyed by node index (complement stripped): a root and its negation
  // share one table entry, exactly as they share one stored node.
  std::unordered_map<bdd::NodeIndex, uint32_t> id_of_;
  std::vector<EncodedNode> nodes_;
};

// Decodes a BddEncoder node table into a live manager, holding a protecting
// reference on every interned node until the decoder is destroyed (fresh
// nodes start unreferenced, and restore runs long enough that a GC could
// otherwise reclaim a node before the annotation referencing it is built).
//
// `version` is the snapshot format version of the payload being decoded
// (defaults to the current writer version, which in-memory micro-checkpoint
// payloads always are). Version 2 tables — plain node ids, separate FALSE
// and TRUE ids — decode through MakeNodeForRestore, whose canonical-polarity
// normalization converts them to tagged refs on the fly.
class BddDecoder {
 public:
  explicit BddDecoder(bdd::Manager* mgr, uint32_t version = kSnapshotVersion)
      : mgr_(mgr), version_(version) {}

  Status ReadNodeTable(Reader* r);

  // Live tagged ref for a remapped id; trips `r`'s error flag on a dangling
  // id (corrupt payload) and returns FALSE.
  bdd::BddRef Resolve(uint32_t id, Reader* r) const;

  bdd::Manager* manager() const { return mgr_; }
  uint32_t version() const { return version_; }

 private:
  bdd::Manager* mgr_;
  uint32_t version_;
  // Live (possibly complemented) refs by table position.
  std::vector<bdd::BddRef> index_of_;
  std::vector<bdd::Bdd> protect_;
};

// Typed encoding layer over Writer: engine values, tuples, provenance
// annotations (BDD roots go through the shared encoder) and metric structs.
class SnapshotWriter {
 public:
  SnapshotWriter(Writer* out, BddEncoder* bdds) : out_(out), bdds_(bdds) {}

  Writer& raw() { return *out_; }

  void PutValue(const Value& v);
  void PutTuple(const Tuple& t);
  void PutProv(const Prov& p);
  void PutStats(const NetworkStats& s);
  void PutMetrics(const RunMetrics& m);

 private:
  Writer* out_;
  BddEncoder* bdds_;
};

// Typed decoding counterpart; `mgr` owns restored BDD roots and annotations.
class SnapshotReader {
 public:
  SnapshotReader(Reader* in, BddDecoder* bdds) : in_(in), bdds_(bdds) {}

  Reader& raw() { return *in_; }
  Status Check(const char* what) const { return in_->Check(what); }
  // Snapshot format version of the payload being decoded (operators with
  // version-dependent state layouts branch on this).
  uint32_t version() const { return bdds_->version(); }

  Value GetValue();
  Tuple GetTuple();
  Prov GetProv();
  NetworkStats GetStats();
  RunMetrics GetMetrics();

 private:
  Reader* in_;
  BddDecoder* bdds_;
};

}  // namespace persist
}  // namespace recnet

#endif  // RECNET_PERSIST_CODEC_H_
