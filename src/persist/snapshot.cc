#include "persist/snapshot.h"

namespace recnet {
namespace persist {

size_t WriteSummary(Writer* w, const SnapshotSummary& s) {
  w->I32(s.num_nodes);
  w->I32(s.num_physical);
  w->Bool(s.batch_delivery);
  w->I32(s.shards);
  size_t bdd_nodes_pos = w->Tell();
  w->U32(s.bdd_nodes);  // Placeholder; patched once annotations are interned.
  w->U32(static_cast<uint32_t>(s.relations.size()));
  for (const SnapshotRelationInfo& r : s.relations) {
    w->Str(r.name);
    w->U64(r.arity);
    w->Bool(r.dynamic);
    w->U64(r.live_facts);
  }
  w->U32(static_cast<uint32_t>(s.views.size()));
  for (const SnapshotViewInfo& v : s.views) {
    w->Str(v.name);
    w->Str(v.prov_mode);
    w->U64(v.messages);
  }
  return bdd_nodes_pos;
}

Status ReadSummary(Reader* r, SnapshotSummary* out) {
  out->num_nodes = r->I32();
  out->num_physical = r->I32();
  out->batch_delivery = r->Bool();
  out->shards = r->I32();
  out->bdd_nodes = r->U32();
  uint32_t nrel = r->U32();
  if (!r->CanRead(nrel)) return r->Check("summary relations");
  out->relations.clear();
  out->relations.reserve(nrel);
  for (uint32_t i = 0; i < nrel; ++i) {
    SnapshotRelationInfo info;
    info.name = r->Str();
    info.arity = r->U64();
    info.dynamic = r->Bool();
    info.live_facts = r->U64();
    out->relations.push_back(std::move(info));
  }
  uint32_t nviews = r->U32();
  if (!r->CanRead(nviews)) return r->Check("summary views");
  out->views.clear();
  out->views.reserve(nviews);
  for (uint32_t i = 0; i < nviews; ++i) {
    SnapshotViewInfo info;
    info.name = r->Str();
    info.prov_mode = r->Str();
    info.messages = r->U64();
    out->views.push_back(std::move(info));
  }
  return r->Check("summary");
}

Status InspectSnapshot(const std::string& path, bool verify,
                       SnapshotHeader* header, SnapshotSummary* summary) {
  std::vector<uint8_t> payload;
  RECNET_RETURN_IF_ERROR(
      ReadSnapshotPayload(path, &payload, header, /*verify_checksum=*/verify));
  Reader r(payload);
  return ReadSummary(&r, summary);
}

}  // namespace persist
}  // namespace recnet
