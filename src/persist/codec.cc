#include "persist/codec.h"

#include <memory>
#include <utility>

namespace recnet {
namespace persist {

namespace {

// Version-3 remapped-ref space mirrors the in-memory tagging: a ref is
// (node id << 1) | complement, node id 0 is the single TRUE terminal, and
// internal node ids are table position + 1. So kTrue encodes to 0 and
// kFalse to 1, just like the live constants.
constexpr uint32_t kIdTerminalNode = 0;
constexpr uint32_t kIdBiasV3 = 1;
// Version-2 space: plain node ids, two terminal ids, bias 2.
constexpr uint32_t kIdFalseV2 = 0;
constexpr uint32_t kIdTrueV2 = 1;
constexpr uint32_t kIdBiasV2 = 2;

}  // namespace

uint32_t BddEncoder::Encode(bdd::BddRef root) {
  const uint32_t root_node = root >> 1;
  const uint32_t root_c = root & 1u;
  if (root_node == kIdTerminalNode) return root;  // kTrue -> 0, kFalse -> 1.
  auto found = id_of_.find(root_node);
  if (found != id_of_.end()) return (found->second << 1) | root_c;

  auto mapped = [this](bdd::BddRef n) -> uint32_t {
    const uint32_t node = n >> 1;
    const uint32_t id = node == kIdTerminalNode ? kIdTerminalNode
                                                : id_of_.at(node);
    return (id << 1) | (n & 1u);
  };

  // Iterative post-order over node indices (both polarities of a ref share
  // one table entry): a node is interned only after both children, so the
  // table is topologically ordered and a decoder never sees a forward
  // reference.
  std::vector<std::pair<bdd::NodeIndex, bool>> stack;
  stack.emplace_back(root_node, false);
  while (!stack.empty()) {
    auto [n, expanded] = stack.back();
    stack.pop_back();
    if (n == kIdTerminalNode || id_of_.find(n) != id_of_.end()) continue;
    const bdd::BddRef ref = n << 1;  // Regular ref for this node.
    if (expanded) {
      uint32_t id = static_cast<uint32_t>(nodes_.size()) + kIdBiasV3;
      nodes_.push_back(EncodedNode{mgr_->var_of(ref),
                                   mapped(mgr_->low_of(ref)),
                                   mapped(mgr_->high_of(ref))});
      id_of_.emplace(n, id);
    } else {
      stack.emplace_back(n, true);
      stack.emplace_back(mgr_->high_of(ref) >> 1, false);
      stack.emplace_back(mgr_->low_of(ref) >> 1, false);
    }
  }
  return (id_of_.at(root_node) << 1) | root_c;
}

void BddEncoder::WriteNodeTable(Writer* w) const {
  w->U32(static_cast<uint32_t>(nodes_.size()));
  for (const EncodedNode& n : nodes_) {
    w->U32(n.var);
    w->U32(n.low);
    w->U32(n.high);
  }
}

Status BddDecoder::ReadNodeTable(Reader* r) {
  uint32_t count = r->U32();
  if (!r->CanRead(static_cast<size_t>(count) * 12)) {
    return r->Check("bdd node table");
  }
  const bool v3 = version_ >= 3;
  index_of_.reserve(count);
  protect_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t var = r->U32();
    uint32_t low = r->U32();
    uint32_t high = r->U32();
    // Children must precede their parent, and the variable must be a real
    // one (the terminal marker would trip the manager's invariants). In the
    // v3 space a child's node id is its ref shifted right by one.
    const bool dangling = v3 ? ((low >> 1) > i || (high >> 1) > i)
                             : (low >= i + kIdBiasV2 || high >= i + kIdBiasV2);
    if (dangling || var == ~uint32_t{0}) {
      r->Invalidate();
      break;
    }
    bdd::BddRef lo = Resolve(low, r);
    bdd::BddRef hi = Resolve(high, r);
    // MakeNodeForRestore re-derives the canonical polarity, so both a v3
    // table (already canonical) and a v2 table (plain nodes; e.g. its
    // explicit ¬f subgraphs) intern to canonical tagged refs.
    bdd::BddRef ref = mgr_->MakeNodeForRestore(var, lo, hi);
    index_of_.push_back(ref);
    protect_.emplace_back(mgr_, ref);
  }
  return r->Check("bdd node table");
}

bdd::BddRef BddDecoder::Resolve(uint32_t id, Reader* r) const {
  if (version_ >= 3) {
    const uint32_t node = id >> 1;
    const uint32_t c = id & 1u;
    if (node == kIdTerminalNode) return c == 0 ? bdd::kTrue : bdd::kFalse;
    size_t slot = node - kIdBiasV3;
    if (slot >= index_of_.size()) {
      r->Invalidate();
      return bdd::kFalse;
    }
    return index_of_[slot] ^ c;
  }
  if (id == kIdFalseV2) return bdd::kFalse;
  if (id == kIdTrueV2) return bdd::kTrue;
  size_t slot = id - kIdBiasV2;
  if (slot >= index_of_.size()) {
    r->Invalidate();
    return bdd::kFalse;
  }
  return index_of_[slot];
}

void SnapshotWriter::PutValue(const Value& v) {
  if (v.is_int()) {
    out_->U8(0);
    out_->I64(v.AsInt());
  } else if (v.is_double()) {
    out_->U8(1);
    out_->F64(v.AsDouble());
  } else {
    out_->U8(2);
    out_->Str(v.AsString());
  }
}

void SnapshotWriter::PutTuple(const Tuple& t) {
  out_->U16(static_cast<uint16_t>(t.size()));
  for (size_t i = 0; i < t.size(); ++i) PutValue(t.at(i));
}

void SnapshotWriter::PutProv(const Prov& p) {
  out_->U8(static_cast<uint8_t>(p.mode()));
  switch (p.mode()) {
    case ProvMode::kSet:
      out_->Bool(!p.IsFalse());
      break;
    case ProvMode::kAbsorption:
      out_->U32(bdds_->Encode(p.bdd().index()));
      break;
    case ProvMode::kRelative: {
      const RelSop& rel = p.rel();
      out_->U32(static_cast<uint32_t>(rel.derivations.size()));
      for (const std::vector<bdd::Var>& d : rel.derivations) {
        out_->U32(static_cast<uint32_t>(d.size()));
        for (bdd::Var v : d) out_->U32(v);
      }
      break;
    }
  }
}

void SnapshotWriter::PutStats(const NetworkStats& s) {
  out_->U64(s.messages);
  out_->U64(s.bytes);
  out_->U64(s.local_messages);
  out_->U64(s.insert_messages);
  out_->U64(s.delete_messages);
  out_->U64(s.kill_messages);
  out_->U64(s.prov_bytes);
  out_->U64(s.prov_samples);
  out_->U64(s.batches);
  out_->U64(s.aborted_runs);
  out_->U64(s.dropped_messages);
  out_->U64(s.link_dropped);
  out_->U64(s.link_duplicated);
  out_->U64(s.link_retried);
  out_->U64(s.per_peer_bytes.size());
  for (uint64_t b : s.per_peer_bytes) out_->U64(b);
}

void SnapshotWriter::PutMetrics(const RunMetrics& m) {
  out_->F64(m.per_tuple_prov_bytes);
  out_->F64(m.comm_mb);
  out_->F64(m.state_mb);
  out_->F64(m.wall_seconds);
  out_->F64(m.sim_seconds);
  out_->U64(m.messages);
  out_->U64(m.kill_messages);
  out_->U64(m.batches);
  out_->U64(m.aborted_runs);
  out_->U64(m.dropped_messages);
  out_->U64(m.link_dropped);
  out_->U64(m.link_duplicated);
  out_->U64(m.link_retried);
  out_->U64(m.recoveries);
  out_->Bool(m.converged);
}

Value SnapshotReader::GetValue() {
  switch (in_->U8()) {
    case 0:
      return Value(in_->I64());
    case 1:
      return Value(in_->F64());
    case 2:
      return Value(in_->Str());
    default:
      in_->Invalidate();
      return Value();
  }
}

Tuple SnapshotReader::GetTuple() {
  uint16_t arity = in_->U16();
  if (!in_->CanRead(arity)) return Tuple();
  Tuple::Values values;
  values.reserve(arity);
  for (uint16_t i = 0; i < arity; ++i) values.push_back(GetValue());
  return Tuple(std::move(values));
}

Prov SnapshotReader::GetProv() {
  bdd::Manager* mgr = bdds_->manager();
  switch (in_->U8()) {
    case static_cast<uint8_t>(ProvMode::kSet):
      return in_->Bool() ? Prov::True(ProvMode::kSet, mgr)
                         : Prov::False(ProvMode::kSet, mgr);
    case static_cast<uint8_t>(ProvMode::kAbsorption): {
      bdd::BddRef ref = bdds_->Resolve(in_->U32(), in_);
      return Prov::FromBdd(bdd::Bdd(mgr, ref));
    }
    case static_cast<uint8_t>(ProvMode::kRelative): {
      uint32_t nderiv = in_->U32();
      if (!in_->CanRead(static_cast<size_t>(nderiv) * 4)) return Prov();
      auto rel = std::make_shared<RelSop>();
      rel->derivations.reserve(nderiv);
      for (uint32_t i = 0; i < nderiv; ++i) {
        uint32_t nvars = in_->U32();
        if (!in_->CanRead(static_cast<size_t>(nvars) * 4)) return Prov();
        std::vector<bdd::Var> d;
        d.reserve(nvars);
        for (uint32_t j = 0; j < nvars; ++j) d.push_back(in_->U32());
        rel->derivations.push_back(std::move(d));
      }
      return Prov::FromRel(std::move(rel));
    }
    default:
      in_->Invalidate();
      return Prov();
  }
}

NetworkStats SnapshotReader::GetStats() {
  NetworkStats s;
  s.messages = in_->U64();
  s.bytes = in_->U64();
  s.local_messages = in_->U64();
  s.insert_messages = in_->U64();
  s.delete_messages = in_->U64();
  s.kill_messages = in_->U64();
  s.prov_bytes = in_->U64();
  s.prov_samples = in_->U64();
  s.batches = in_->U64();
  s.aborted_runs = in_->U64();
  s.dropped_messages = in_->U64();
  s.link_dropped = in_->U64();
  s.link_duplicated = in_->U64();
  s.link_retried = in_->U64();
  uint64_t peers = in_->Count(8);
  s.per_peer_bytes.reserve(peers);
  for (uint64_t i = 0; i < peers; ++i) s.per_peer_bytes.push_back(in_->U64());
  return s;
}

RunMetrics SnapshotReader::GetMetrics() {
  RunMetrics m;
  m.per_tuple_prov_bytes = in_->F64();
  m.comm_mb = in_->F64();
  m.state_mb = in_->F64();
  m.wall_seconds = in_->F64();
  m.sim_seconds = in_->F64();
  m.messages = in_->U64();
  m.kill_messages = in_->U64();
  m.batches = in_->U64();
  m.aborted_runs = in_->U64();
  m.dropped_messages = in_->U64();
  m.link_dropped = in_->U64();
  m.link_duplicated = in_->U64();
  m.link_retried = in_->U64();
  m.recoveries = in_->U64();
  m.converged = in_->Bool();
  return m;
}

}  // namespace persist
}  // namespace recnet
