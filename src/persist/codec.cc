#include "persist/codec.h"

#include <memory>
#include <utility>

namespace recnet {
namespace persist {

namespace {

// Remapped-id space: 0 and 1 are the terminals, internal nodes follow.
constexpr uint32_t kIdFalse = 0;
constexpr uint32_t kIdTrue = 1;
constexpr uint32_t kIdBias = 2;

}  // namespace

uint32_t BddEncoder::Encode(bdd::NodeIndex root) {
  if (root == bdd::kFalse) return kIdFalse;
  if (root == bdd::kTrue) return kIdTrue;
  auto found = id_of_.find(root);
  if (found != id_of_.end()) return found->second;

  auto mapped = [this](bdd::NodeIndex n) -> uint32_t {
    if (n == bdd::kFalse) return kIdFalse;
    if (n == bdd::kTrue) return kIdTrue;
    return id_of_.at(n);
  };

  // Iterative post-order: a node is interned only after both children, so
  // the table is topologically ordered and a decoder never sees a forward
  // reference.
  std::vector<std::pair<bdd::NodeIndex, bool>> stack;
  stack.emplace_back(root, false);
  while (!stack.empty()) {
    auto [n, expanded] = stack.back();
    stack.pop_back();
    if (n <= bdd::kTrue || id_of_.find(n) != id_of_.end()) continue;
    if (expanded) {
      uint32_t id = static_cast<uint32_t>(nodes_.size()) + kIdBias;
      nodes_.push_back(EncodedNode{mgr_->var_of(n), mapped(mgr_->low_of(n)),
                                   mapped(mgr_->high_of(n))});
      id_of_.emplace(n, id);
    } else {
      stack.emplace_back(n, true);
      stack.emplace_back(mgr_->high_of(n), false);
      stack.emplace_back(mgr_->low_of(n), false);
    }
  }
  return id_of_.at(root);
}

void BddEncoder::WriteNodeTable(Writer* w) const {
  w->U32(static_cast<uint32_t>(nodes_.size()));
  for (const EncodedNode& n : nodes_) {
    w->U32(n.var);
    w->U32(n.low);
    w->U32(n.high);
  }
}

Status BddDecoder::ReadNodeTable(Reader* r) {
  uint32_t count = r->U32();
  if (!r->CanRead(static_cast<size_t>(count) * 12)) {
    return r->Check("bdd node table");
  }
  index_of_.reserve(count);
  protect_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t var = r->U32();
    uint32_t low = r->U32();
    uint32_t high = r->U32();
    // Children must precede their parent, and the variable must be a real
    // one (the terminal marker would trip the manager's invariants).
    if (low >= i + kIdBias || high >= i + kIdBias || var == ~uint32_t{0}) {
      r->Invalidate();
      break;
    }
    bdd::NodeIndex lo = Resolve(low, r);
    bdd::NodeIndex hi = Resolve(high, r);
    bdd::NodeIndex idx = mgr_->MakeNodeForRestore(var, lo, hi);
    index_of_.push_back(idx);
    protect_.emplace_back(mgr_, idx);
  }
  return r->Check("bdd node table");
}

bdd::NodeIndex BddDecoder::Resolve(uint32_t id, Reader* r) const {
  if (id == kIdFalse) return bdd::kFalse;
  if (id == kIdTrue) return bdd::kTrue;
  size_t slot = id - kIdBias;
  if (slot >= index_of_.size()) {
    r->Invalidate();
    return bdd::kFalse;
  }
  return index_of_[slot];
}

void SnapshotWriter::PutValue(const Value& v) {
  if (v.is_int()) {
    out_->U8(0);
    out_->I64(v.AsInt());
  } else if (v.is_double()) {
    out_->U8(1);
    out_->F64(v.AsDouble());
  } else {
    out_->U8(2);
    out_->Str(v.AsString());
  }
}

void SnapshotWriter::PutTuple(const Tuple& t) {
  out_->U16(static_cast<uint16_t>(t.size()));
  for (size_t i = 0; i < t.size(); ++i) PutValue(t.at(i));
}

void SnapshotWriter::PutProv(const Prov& p) {
  out_->U8(static_cast<uint8_t>(p.mode()));
  switch (p.mode()) {
    case ProvMode::kSet:
      out_->Bool(!p.IsFalse());
      break;
    case ProvMode::kAbsorption:
      out_->U32(bdds_->Encode(p.bdd().index()));
      break;
    case ProvMode::kRelative: {
      const RelSop& rel = p.rel();
      out_->U32(static_cast<uint32_t>(rel.derivations.size()));
      for (const std::vector<bdd::Var>& d : rel.derivations) {
        out_->U32(static_cast<uint32_t>(d.size()));
        for (bdd::Var v : d) out_->U32(v);
      }
      break;
    }
  }
}

void SnapshotWriter::PutStats(const NetworkStats& s) {
  out_->U64(s.messages);
  out_->U64(s.bytes);
  out_->U64(s.local_messages);
  out_->U64(s.insert_messages);
  out_->U64(s.delete_messages);
  out_->U64(s.kill_messages);
  out_->U64(s.prov_bytes);
  out_->U64(s.prov_samples);
  out_->U64(s.batches);
  out_->U64(s.aborted_runs);
  out_->U64(s.dropped_messages);
  out_->U64(s.link_dropped);
  out_->U64(s.link_duplicated);
  out_->U64(s.link_retried);
  out_->U64(s.per_peer_bytes.size());
  for (uint64_t b : s.per_peer_bytes) out_->U64(b);
}

void SnapshotWriter::PutMetrics(const RunMetrics& m) {
  out_->F64(m.per_tuple_prov_bytes);
  out_->F64(m.comm_mb);
  out_->F64(m.state_mb);
  out_->F64(m.wall_seconds);
  out_->F64(m.sim_seconds);
  out_->U64(m.messages);
  out_->U64(m.kill_messages);
  out_->U64(m.batches);
  out_->U64(m.aborted_runs);
  out_->U64(m.dropped_messages);
  out_->U64(m.link_dropped);
  out_->U64(m.link_duplicated);
  out_->U64(m.link_retried);
  out_->U64(m.recoveries);
  out_->Bool(m.converged);
}

Value SnapshotReader::GetValue() {
  switch (in_->U8()) {
    case 0:
      return Value(in_->I64());
    case 1:
      return Value(in_->F64());
    case 2:
      return Value(in_->Str());
    default:
      in_->Invalidate();
      return Value();
  }
}

Tuple SnapshotReader::GetTuple() {
  uint16_t arity = in_->U16();
  if (!in_->CanRead(arity)) return Tuple();
  Tuple::Values values;
  values.reserve(arity);
  for (uint16_t i = 0; i < arity; ++i) values.push_back(GetValue());
  return Tuple(std::move(values));
}

Prov SnapshotReader::GetProv() {
  bdd::Manager* mgr = bdds_->manager();
  switch (in_->U8()) {
    case static_cast<uint8_t>(ProvMode::kSet):
      return in_->Bool() ? Prov::True(ProvMode::kSet, mgr)
                         : Prov::False(ProvMode::kSet, mgr);
    case static_cast<uint8_t>(ProvMode::kAbsorption): {
      bdd::NodeIndex idx = bdds_->Resolve(in_->U32(), in_);
      return Prov::FromBdd(bdd::Bdd(mgr, idx));
    }
    case static_cast<uint8_t>(ProvMode::kRelative): {
      uint32_t nderiv = in_->U32();
      if (!in_->CanRead(static_cast<size_t>(nderiv) * 4)) return Prov();
      auto rel = std::make_shared<RelSop>();
      rel->derivations.reserve(nderiv);
      for (uint32_t i = 0; i < nderiv; ++i) {
        uint32_t nvars = in_->U32();
        if (!in_->CanRead(static_cast<size_t>(nvars) * 4)) return Prov();
        std::vector<bdd::Var> d;
        d.reserve(nvars);
        for (uint32_t j = 0; j < nvars; ++j) d.push_back(in_->U32());
        rel->derivations.push_back(std::move(d));
      }
      return Prov::FromRel(std::move(rel));
    }
    default:
      in_->Invalidate();
      return Prov();
  }
}

NetworkStats SnapshotReader::GetStats() {
  NetworkStats s;
  s.messages = in_->U64();
  s.bytes = in_->U64();
  s.local_messages = in_->U64();
  s.insert_messages = in_->U64();
  s.delete_messages = in_->U64();
  s.kill_messages = in_->U64();
  s.prov_bytes = in_->U64();
  s.prov_samples = in_->U64();
  s.batches = in_->U64();
  s.aborted_runs = in_->U64();
  s.dropped_messages = in_->U64();
  s.link_dropped = in_->U64();
  s.link_duplicated = in_->U64();
  s.link_retried = in_->U64();
  uint64_t peers = in_->Count(8);
  s.per_peer_bytes.reserve(peers);
  for (uint64_t i = 0; i < peers; ++i) s.per_peer_bytes.push_back(in_->U64());
  return s;
}

RunMetrics SnapshotReader::GetMetrics() {
  RunMetrics m;
  m.per_tuple_prov_bytes = in_->F64();
  m.comm_mb = in_->F64();
  m.state_mb = in_->F64();
  m.wall_seconds = in_->F64();
  m.sim_seconds = in_->F64();
  m.messages = in_->U64();
  m.kill_messages = in_->U64();
  m.batches = in_->U64();
  m.aborted_runs = in_->U64();
  m.dropped_messages = in_->U64();
  m.link_dropped = in_->U64();
  m.link_duplicated = in_->U64();
  m.link_retried = in_->U64();
  m.recoveries = in_->U64();
  m.converged = in_->Bool();
  return m;
}

}  // namespace persist
}  // namespace recnet
