#include "persist/wire.h"

#include <cstdio>
#include <memory>

namespace recnet {
namespace persist {

uint64_t Fnv1a(const uint8_t* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

Status ValidatePrefix(Reader& r, const std::string& path,
                      SnapshotHeader* header) {
  uint64_t magic = r.U64();
  uint32_t version = r.U32();
  uint32_t endian = r.U32();
  uint64_t payload_size = r.U64();
  uint64_t checksum = r.U64();
  if (!r.ok()) {
    return Status::DataLoss("truncated snapshot header: " + path);
  }
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a recnet snapshot: " + path);
  }
  if (endian != kEndianTag) {
    return Status::InvalidArgument(
        "snapshot written with different endianness: " + path);
  }
  if (version < kMinSnapshotVersion || version > kSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) +
        " (expected " + std::to_string(kMinSnapshotVersion) + ".." +
        std::to_string(kSnapshotVersion) + "): " + path);
  }
  if (header != nullptr) {
    header->version = version;
    header->payload_size = payload_size;
    header->checksum = checksum;
  }
  return Status::OK();
}

}  // namespace

Status WriteSnapshotFile(const std::string& path, const Writer& payload,
                         size_t tear_after_bytes) {
  Writer head;
  head.U64(kSnapshotMagic);
  head.U32(kSnapshotVersion);
  head.U32(kEndianTag);
  head.U64(payload.bytes().size());
  head.U64(Fnv1a(payload.bytes().data(), payload.bytes().size()));

  // Everything lands in the temporary first; `path` is only ever touched by
  // the final rename, which the filesystem performs atomically. An injected
  // tear stops the write short and skips the rename — the torn file is the
  // .tmp, never the target.
  const std::string tmp = path + ".tmp";
  const size_t head_n = head.bytes().size();
  const size_t total = head_n + payload.bytes().size();
  const size_t limit = tear_after_bytes < total ? tear_after_bytes : total;
  const size_t head_write = limit < head_n ? limit : head_n;
  const size_t payload_write = limit - head_write;

  File f(std::fopen(tmp.c_str(), "wb"));
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + tmp);
  }
  if (std::fwrite(head.bytes().data(), 1, head_write, f.get()) != head_write ||
      std::fwrite(payload.bytes().data(), 1, payload_write, f.get()) !=
          payload_write) {
    return Status::Internal("short write: " + tmp);
  }
  if (std::fflush(f.get()) != 0) {
    return Status::Internal("flush failed: " + tmp);
  }
  f.reset();  // Close before rename: a renamed-but-open file is not durable.
  if (limit != total) {
    return Status::Unavailable("injected snapshot tear after " +
                               std::to_string(limit) + " bytes: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

Status ReadSnapshotPayload(const std::string& path,
                           std::vector<uint8_t>* payload,
                           SnapshotHeader* header, bool verify_checksum) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open snapshot: " + path);
  }
  uint8_t head_buf[kSnapshotHeaderBytes];
  size_t got = std::fread(head_buf, 1, sizeof head_buf, f.get());
  Reader head_reader(head_buf, got);
  SnapshotHeader head;
  RECNET_RETURN_IF_ERROR(ValidatePrefix(head_reader, path, &head));
  payload->resize(head.payload_size);
  if (std::fread(payload->data(), 1, payload->size(), f.get()) !=
      payload->size()) {
    return Status::DataLoss("truncated snapshot payload: " + path);
  }
  // A well-formed file ends exactly at the payload; trailing bytes mean the
  // declared size is wrong (the checksum would likely pass on the prefix,
  // so check explicitly).
  uint8_t extra;
  if (std::fread(&extra, 1, 1, f.get()) == 1) {
    return Status::DataLoss("snapshot has trailing bytes: " + path);
  }
  if (verify_checksum &&
      Fnv1a(payload->data(), payload->size()) != head.checksum) {
    return Status::DataLoss("snapshot checksum mismatch: " + path);
  }
  if (header != nullptr) *header = head;
  return Status::OK();
}

Status ReadSnapshotHeader(const std::string& path, SnapshotHeader* header) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open snapshot: " + path);
  }
  uint8_t head_buf[kSnapshotHeaderBytes];
  size_t got = std::fread(head_buf, 1, sizeof head_buf, f.get());
  Reader head_reader(head_buf, got);
  return ValidatePrefix(head_reader, path, header);
}

}  // namespace persist
}  // namespace recnet
