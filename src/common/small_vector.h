#ifndef RECNET_COMMON_SMALL_VECTOR_H_
#define RECNET_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace recnet {

// Inline-first sequence for the tuple hot path: the first N elements live
// in raw inline storage (constructed on demand — an empty or two-element
// sequence touches exactly zero or two slots), longer sequences spill to a
// heap vector. Network tuples are 2-5 attributes, so with N=5 every tuple
// construction, copy, move, and message enqueue is allocation-free and
// proportional to the tuple's actual arity. This is the difference between
// a Tuple and a heap-backed std::vector<Value> on every router hop.
//
// Deliberately minimal: exactly the std::vector surface Tuple and its call
// sites use (push_back / emplace_back / reserve / iteration / indexing /
// lexicographic comparison). Moved-from SmallVectors are empty.
template <typename T, size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;
  SmallVector(const SmallVector& o) : heap_(o.heap_), size_(o.size_) {
    for (size_t i = 0, n = o.InlineCount(); i < n; ++i) {
      ::new (Slot(i)) T(o.InlineAt(i));
    }
  }
  SmallVector(SmallVector&& o) noexcept
      : heap_(std::move(o.heap_)), size_(o.size_) {
    for (size_t i = 0, n = o.InlineCount(); i < n; ++i) {
      ::new (Slot(i)) T(std::move(o.InlineAt(i)));
    }
    o.DestroyInline();
    o.size_ = 0;
    o.heap_.clear();
  }
  SmallVector& operator=(const SmallVector& o) {
    if (this == &o) return *this;
    DestroyInline();
    heap_ = o.heap_;
    size_ = o.size_;
    for (size_t i = 0, n = o.InlineCount(); i < n; ++i) {
      ::new (Slot(i)) T(o.InlineAt(i));
    }
    return *this;
  }
  SmallVector& operator=(SmallVector&& o) noexcept {
    if (this == &o) return *this;
    DestroyInline();
    heap_ = std::move(o.heap_);
    size_ = o.size_;
    for (size_t i = 0, n = o.InlineCount(); i < n; ++i) {
      ::new (Slot(i)) T(std::move(o.InlineAt(i)));
    }
    o.DestroyInline();
    o.size_ = 0;
    o.heap_.clear();
    return *this;
  }
  ~SmallVector() { DestroyInline(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void reserve(size_t n) {
    if (n > N) heap_.reserve(n);
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ < N) {
      T* p = ::new (Slot(size_)) T(std::forward<Args>(args)...);
      ++size_;
      return *p;
    }
    if (size_ == N && heap_.empty()) {
      // Spill: move the inline prefix into the heap buffer once.
      heap_.reserve(N + 1);
      for (size_t i = 0; i < N; ++i) heap_.push_back(std::move(InlineAt(i)));
      DestroyInline();
    }
    heap_.emplace_back(std::forward<Args>(args)...);
    return heap_[size_++];
  }

  void clear() {
    DestroyInline();
    heap_.clear();
    size_ = 0;
  }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }

  T* data() {
    return size_ <= N ? reinterpret_cast<T*>(inline_buf_) : heap_.data();
  }
  const T* data() const {
    return size_ <= N ? reinterpret_cast<const T*>(inline_buf_)
                      : heap_.data();
  }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }
  friend bool operator<(const SmallVector& a, const SmallVector& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

 private:
  // Number of live elements in inline storage (0 once spilled).
  size_t InlineCount() const { return size_ <= N ? size_ : 0; }
  void* Slot(size_t i) { return inline_buf_ + i * sizeof(T); }
  T& InlineAt(size_t i) { return reinterpret_cast<T*>(inline_buf_)[i]; }
  const T& InlineAt(size_t i) const {
    return reinterpret_cast<const T*>(inline_buf_)[i];
  }
  void DestroyInline() {
    for (size_t i = 0, n = InlineCount(); i < n; ++i) InlineAt(i).~T();
  }

  alignas(T) unsigned char inline_buf_[N * sizeof(T)];
  std::vector<T> heap_;
  size_t size_ = 0;
};

}  // namespace recnet

#endif  // RECNET_COMMON_SMALL_VECTOR_H_
