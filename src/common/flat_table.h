#ifndef RECNET_COMMON_FLAT_TABLE_H_
#define RECNET_COMMON_FLAT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace recnet {

// Flat open-addressing hash table: the shared tuple-table substrate of the
// operator hot paths (Fixpoint / join / MinShip / AggSel state and the
// facade's lookup indexes).
//
// Layout: a power-of-two probe array of 16-byte slots (precomputed full
// hash + dense index) with a parallel byte-per-slot control array, group
// probing with tombstones, entries packed in a dense array. Each control
// byte holds a 7-bit fragment of the slot's hash (top bit clear) or an
// empty/tombstone sentinel (top bit set), so one 8-byte SWAR load filters
// eight slots per probe step: candidate slots are picked by byte-matching
// the key's fragment, then verified against the full stored hash. A probe
// walks only the compact control/slot metadata and touches an entry exactly
// once, on a full-hash match; iteration sweeps the dense array
// contiguously. Unlike the node-per-element libstdc++ `unordered_map`
// this replaces, inserts don't allocate per element, and unlike a
// slot-per-entry flat map, reserving capacity costs 17 bytes per slot no
// matter how wide the entries are. Hashes are computed once per key and
// carried in the slots, so growth rehashes never re-hash tuple values.
//
// Semantics mirror the `unordered_map` subset the operators use: find /
// try_emplace / operator[] / at / erase. Erase is swap-with-last in the
// dense array; `erase(iterator)` returns the iterator to the entry that
// took the erased entry's place (the not-yet-visited former last entry),
// which preserves the erase-while-iterating idiom. Iterators stay valid
// under erases of *other* entries; any insert may rehash and invalidates
// them. Iteration order is insertion order perturbed by erases —
// deterministic for a fixed operation sequence, arbitrary otherwise, like
// the hash containers this replaces.
template <typename K, typename V, typename HashFn = std::hash<K>>
class FlatTable {
  static constexpr int32_t kEmpty = -1;
  static constexpr int32_t kTomb = -2;

 public:
  using value_type = std::pair<K, V>;

  template <typename PairT>
  class Iter {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::pair<K, V>;
    using difference_type = std::ptrdiff_t;
    using pointer = PairT*;
    using reference = PairT&;

    Iter() : p_(nullptr) {}
    explicit Iter(PairT* p) : p_(p) {}

    PairT& operator*() const { return *p_; }
    PairT* operator->() const { return p_; }
    Iter& operator++() {
      ++p_;
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.p_ == b.p_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.p_ != b.p_;
    }

   private:
    friend class FlatTable;
    PairT* p_;
  };

  using iterator = Iter<value_type>;
  using const_iterator = Iter<const value_type>;

  FlatTable() = default;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  iterator begin() { return iterator(entries_.data()); }
  iterator end() { return iterator(entries_.data() + entries_.size()); }
  const_iterator begin() const { return const_iterator(entries_.data()); }
  const_iterator end() const {
    return const_iterator(entries_.data() + entries_.size());
  }

  // Pre-sizes the table so `n` entries fit without growth (wired from
  // topology size by the operators' Reserve paths).
  void reserve(size_t n) {
    entries_.reserve(n);
    entry_slot_.reserve(n);
    size_t want = CapacityFor(n);
    if (want > slots_.size()) Rehash(want);
  }

  void clear() {
    std::fill(slots_.begin(), slots_.end(), Slot{0, kEmpty});
    std::fill(ctrl_.begin(), ctrl_.end(), kCtrlEmpty);
    entries_.clear();
    entry_slot_.clear();
    tombs_ = 0;
  }

  size_t hash_of(const K& key) const { return HashFn()(key); }

  iterator find(const K& key) { return find_hashed(key, hash_of(key)); }
  const_iterator find(const K& key) const {
    return find_hashed(key, hash_of(key));
  }
  iterator find_hashed(const K& key, size_t hash) {
    int32_t e = ProbeFind(key, hash);
    return e < 0 ? end() : iterator(entries_.data() + e);
  }
  const_iterator find_hashed(const K& key, size_t hash) const {
    int32_t e = ProbeFind(key, hash);
    return e < 0 ? end() : const_iterator(entries_.data() + e);
  }

  bool contains(const K& key) const {
    return ProbeFind(key, hash_of(key)) >= 0;
  }

  V& at(const K& key) {
    int32_t e = ProbeFind(key, hash_of(key));
    RECNET_CHECK(e >= 0);
    return entries_[static_cast<size_t>(e)].second;
  }
  const V& at(const K& key) const {
    int32_t e = ProbeFind(key, hash_of(key));
    RECNET_CHECK(e >= 0);
    return entries_[static_cast<size_t>(e)].second;
  }

  // Inserts (key, V(args...)) if absent; returns {iterator, inserted}. The
  // mapped value is only constructed on actual insertion.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    return TryEmplaceHashed(key, hash_of(key), std::forward<Args>(args)...);
  }
  template <typename... Args>
  std::pair<iterator, bool> try_emplace_hashed(const K& key, size_t hash,
                                               Args&&... args) {
    return TryEmplaceHashed(key, hash, std::forward<Args>(args)...);
  }
  // unordered_map-compatible spelling used by the operator code.
  template <typename... Args>
  std::pair<iterator, bool> emplace(const K& key, Args&&... args) {
    return TryEmplaceHashed(key, hash_of(key), std::forward<Args>(args)...);
  }

  V& operator[](const K& key) { return try_emplace(key).first->second; }

  size_t erase(const K& key) {
    int32_t e = ProbeFind(key, hash_of(key));
    if (e < 0) return 0;
    EraseEntry(static_cast<size_t>(e));
    return 1;
  }

  // Erases the pointed-to entry. The former last entry is swapped into its
  // place, so the returned iterator (same position) continues with the
  // remaining unvisited entries.
  iterator erase(iterator it) {
    EraseEntry(static_cast<size_t>(it.p_ - entries_.data()));
    return it;
  }

 private:
  struct Slot {
    size_t hash;
    int32_t entry;  // Dense index, or kEmpty / kTomb.
  };

  // Control-byte values. Full slots carry H2(hash) with the top bit clear;
  // the sentinels keep it set, so no fragment ever collides with them.
  static constexpr uint8_t kCtrlEmpty = 0x80;
  static constexpr uint8_t kCtrlTomb = 0x81;
  static constexpr size_t kGroup = 8;  // Slots filtered per SWAR load.
  static constexpr uint64_t kLsbBytes = 0x0101010101010101ull;
  static constexpr uint64_t kMsbBytes = 0x8080808080808080ull;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  // 7-bit hash fragment from the TOP bits — `hash & mask` consumes the low
  // bits for slot placement, so the fragment stays independent of it.
  static uint8_t H2(size_t hash) {
    return static_cast<uint8_t>(hash >> (sizeof(size_t) * 8 - 7)) & 0x7F;
  }

  uint64_t LoadGroup(size_t base) const {
    uint64_t g;
    std::memcpy(&g, ctrl_.data() + base, sizeof(g));
    return g;
  }

  // Per-byte equality mask: bit 7 of each byte is set where `group`'s byte
  // equals `byte`. The zero-byte trick can set spurious flags, but only in
  // bytes ABOVE a true match (borrow propagation runs low-to-high): probes
  // scan low bit first, so the lowest flagged byte is always a true match,
  // and extra match candidates are discarded by the full-hash verify.
  static uint64_t MatchMask(uint64_t group, uint8_t byte) {
    uint64_t x = group ^ (kLsbBytes * byte);
    return (x - kLsbBytes) & ~x & kMsbBytes;
  }

  static size_t Ctz(uint64_t v) {
    return static_cast<size_t>(__builtin_ctzll(v));
  }

  static size_t NextPow2(size_t n) {
    size_t cap = 16;
    while (cap < n) cap <<= 1;
    return cap;
  }
  // Smallest power-of-two capacity that keeps `n` entries under the 3/4
  // load bound.
  static size_t CapacityFor(size_t n) {
    size_t cap = 16;
    while (n * 4 > cap * 3) cap <<= 1;
    return cap;
  }

  // Group probe: check every fragment match in the 8-slot group, then stop
  // if the group holds an empty slot (an inserted key never sits past the
  // first empty in its probe sequence). The first group is entered
  // mid-stride, so bytes before the home slot are masked off; they are
  // re-scanned if the probe wraps the whole table, which is harmless.
  int32_t ProbeFind(const K& key, size_t hash) const {
    if (slots_.empty()) return kEmpty;
    const size_t mask = slots_.size() - 1;
    const uint8_t h2 = H2(hash);
    const size_t start = hash & mask;
    size_t base = start & ~(kGroup - 1);
    uint64_t ignore = ~0ull << ((start - base) * 8);
    while (true) {
      // Bytes below the home slot are neutralized IN the loaded word (0xFF
      // matches nothing and kills borrow propagation) — masking only the
      // result would let a skipped byte raise a spurious flag above it.
      const uint64_t group = LoadGroup(base) | ~ignore;
      uint64_t match = MatchMask(group, h2);
      while (match != 0) {
        const Slot& s = slots_[base + (Ctz(match) >> 3)];
        if (s.entry >= 0 && s.hash == hash &&
            entries_[static_cast<size_t>(s.entry)].first == key) {
          return s.entry;
        }
        match &= match - 1;
      }
      if (MatchMask(group, kCtrlEmpty) != 0) return kEmpty;
      base = (base + kGroup) & mask;
      ignore = ~0ull;
    }
  }

  template <typename... Args>
  std::pair<iterator, bool> TryEmplaceHashed(const K& key, size_t hash,
                                             Args&&... args) {
    if (slots_.empty() || (entries_.size() + tombs_ + 1) * 4 > slots_.size() * 3) {
      // Growth also reclaims tombstones; a tombstone-heavy table re-packs
      // at the same capacity instead of doubling.
      Rehash(CapacityFor(entries_.size() + 1) > slots_.size()
                 ? NextPow2(slots_.size() == 0 ? 16 : slots_.size() * 2)
                 : slots_.size());
    }
    const size_t mask = slots_.size() - 1;
    const uint8_t h2 = H2(hash);
    const size_t start = hash & mask;
    size_t base = start & ~(kGroup - 1);
    uint64_t ignore = ~0ull << ((start - base) * 8);
    size_t tomb = kNoSlot;
    size_t i;
    while (true) {
      // See ProbeFind: skipped bytes are neutralized in the word itself so
      // they neither flag nor leak borrows into visible bytes.
      const uint64_t group = LoadGroup(base) | ~ignore;
      const uint64_t empties = MatchMask(group, kCtrlEmpty);
      uint64_t match = MatchMask(group, h2);
      while (match != 0) {
        const Slot& s = slots_[base + (Ctz(match) >> 3)];
        if (s.entry >= 0 && s.hash == hash &&
            entries_[static_cast<size_t>(s.entry)].first == key) {
          return {iterator(entries_.data() + s.entry), false};
        }
        match &= match - 1;
      }
      if (tomb == kNoSlot) {
        uint64_t tombs = MatchMask(group, kCtrlTomb);
        // Only a tombstone BEFORE the first empty may be recycled: placing
        // past an empty would strand the key beyond find's stopping point.
        if (empties != 0) tombs &= (empties & (~empties + 1)) - 1;
        if (tombs != 0) tomb = base + (Ctz(tombs) >> 3);
      }
      if (empties != 0) {
        if (tomb != kNoSlot) {
          i = tomb;
          --tombs_;
        } else {
          i = base + (Ctz(empties) >> 3);
        }
        break;
      }
      base = (base + kGroup) & mask;
      ignore = ~0ull;
    }
    slots_[i] = Slot{hash, static_cast<int32_t>(entries_.size())};
    ctrl_[i] = h2;
    entries_.emplace_back(std::piecewise_construct,
                          std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<Args>(args)...));
    entry_slot_.push_back(static_cast<uint32_t>(i));
    return {iterator(entries_.data() + entries_.size() - 1), true};
  }

  void EraseEntry(size_t e) {
    RECNET_DCHECK(e < entries_.size());
    slots_[entry_slot_[e]].entry = kTomb;
    ctrl_[entry_slot_[e]] = kCtrlTomb;
    ++tombs_;
    size_t last = entries_.size() - 1;
    if (e != last) {
      entries_[e] = std::move(entries_[last]);
      entry_slot_[e] = entry_slot_[last];
      slots_[entry_slot_[e]].entry = static_cast<int32_t>(e);
    }
    entries_.pop_back();
    entry_slot_.pop_back();
  }

  void Rehash(size_t new_cap) {
    if (new_cap < CapacityFor(entries_.size())) {
      new_cap = CapacityFor(entries_.size());
    }
    // Recover each entry's stored hash from its current slot before the
    // probe array is rebuilt — growth never re-hashes keys.
    std::vector<size_t> hashes(entries_.size());
    for (size_t e = 0; e < entries_.size(); ++e) {
      hashes[e] = slots_[entry_slot_[e]].hash;
    }
    slots_.assign(new_cap, Slot{0, kEmpty});
    ctrl_.assign(new_cap, kCtrlEmpty);
    tombs_ = 0;
    size_t mask = new_cap - 1;
    for (size_t e = 0; e < entries_.size(); ++e) {
      // Linear placement is probe-compatible with the group scan: the key
      // lands at the first empty from its home slot, so no empty precedes
      // it anywhere in its probe sequence.
      size_t i = hashes[e] & mask;
      while (slots_[i].entry != kEmpty) i = (i + 1) & mask;
      slots_[i] = Slot{hashes[e], static_cast<int32_t>(e)};
      ctrl_[i] = H2(hashes[e]);
      entry_slot_[e] = static_cast<uint32_t>(i);
    }
  }

  std::vector<Slot> slots_;
  // Byte-per-slot probe filter: H2 fragment or empty/tombstone sentinel,
  // scanned eight at a time by the SWAR group loop.
  std::vector<uint8_t> ctrl_;
  std::vector<value_type> entries_;
  // Dense index -> probe-array slot (so erase can tombstone its slot).
  std::vector<uint32_t> entry_slot_;
  size_t tombs_ = 0;
};

}  // namespace recnet

#endif  // RECNET_COMMON_FLAT_TABLE_H_
