#ifndef RECNET_COMMON_FLAT_TABLE_H_
#define RECNET_COMMON_FLAT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace recnet {

// Flat open-addressing hash table: the shared tuple-table substrate of the
// operator hot paths (Fixpoint / join / MinShip / AggSel state and the
// facade's lookup indexes).
//
// Layout: a power-of-two probe array of 16-byte slots (precomputed full
// hash + dense index), linear probing with tombstones, entries packed in a
// dense array. A probe walks only the compact slot metadata and touches an
// entry exactly once, on a full-hash match; iteration sweeps the dense
// array contiguously. Unlike the node-per-element libstdc++ `unordered_map`
// this replaces, inserts don't allocate per element, and unlike a
// slot-per-entry flat map, reserving capacity costs 16 bytes per slot no
// matter how wide the entries are. Hashes are computed once per key and
// carried in the slots, so growth rehashes never re-hash tuple values.
//
// Semantics mirror the `unordered_map` subset the operators use: find /
// try_emplace / operator[] / at / erase. Erase is swap-with-last in the
// dense array; `erase(iterator)` returns the iterator to the entry that
// took the erased entry's place (the not-yet-visited former last entry),
// which preserves the erase-while-iterating idiom. Iterators stay valid
// under erases of *other* entries; any insert may rehash and invalidates
// them. Iteration order is insertion order perturbed by erases —
// deterministic for a fixed operation sequence, arbitrary otherwise, like
// the hash containers this replaces.
template <typename K, typename V, typename HashFn = std::hash<K>>
class FlatTable {
  static constexpr int32_t kEmpty = -1;
  static constexpr int32_t kTomb = -2;

 public:
  using value_type = std::pair<K, V>;

  template <typename PairT>
  class Iter {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::pair<K, V>;
    using difference_type = std::ptrdiff_t;
    using pointer = PairT*;
    using reference = PairT&;

    Iter() : p_(nullptr) {}
    explicit Iter(PairT* p) : p_(p) {}

    PairT& operator*() const { return *p_; }
    PairT* operator->() const { return p_; }
    Iter& operator++() {
      ++p_;
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.p_ == b.p_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.p_ != b.p_;
    }

   private:
    friend class FlatTable;
    PairT* p_;
  };

  using iterator = Iter<value_type>;
  using const_iterator = Iter<const value_type>;

  FlatTable() = default;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  iterator begin() { return iterator(entries_.data()); }
  iterator end() { return iterator(entries_.data() + entries_.size()); }
  const_iterator begin() const { return const_iterator(entries_.data()); }
  const_iterator end() const {
    return const_iterator(entries_.data() + entries_.size());
  }

  // Pre-sizes the table so `n` entries fit without growth (wired from
  // topology size by the operators' Reserve paths).
  void reserve(size_t n) {
    entries_.reserve(n);
    entry_slot_.reserve(n);
    size_t want = CapacityFor(n);
    if (want > slots_.size()) Rehash(want);
  }

  void clear() {
    std::fill(slots_.begin(), slots_.end(), Slot{0, kEmpty});
    entries_.clear();
    entry_slot_.clear();
    tombs_ = 0;
  }

  size_t hash_of(const K& key) const { return HashFn()(key); }

  iterator find(const K& key) { return find_hashed(key, hash_of(key)); }
  const_iterator find(const K& key) const {
    return find_hashed(key, hash_of(key));
  }
  iterator find_hashed(const K& key, size_t hash) {
    int32_t e = ProbeFind(key, hash);
    return e < 0 ? end() : iterator(entries_.data() + e);
  }
  const_iterator find_hashed(const K& key, size_t hash) const {
    int32_t e = ProbeFind(key, hash);
    return e < 0 ? end() : const_iterator(entries_.data() + e);
  }

  bool contains(const K& key) const {
    return ProbeFind(key, hash_of(key)) >= 0;
  }

  V& at(const K& key) {
    int32_t e = ProbeFind(key, hash_of(key));
    RECNET_CHECK(e >= 0);
    return entries_[static_cast<size_t>(e)].second;
  }
  const V& at(const K& key) const {
    int32_t e = ProbeFind(key, hash_of(key));
    RECNET_CHECK(e >= 0);
    return entries_[static_cast<size_t>(e)].second;
  }

  // Inserts (key, V(args...)) if absent; returns {iterator, inserted}. The
  // mapped value is only constructed on actual insertion.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    return TryEmplaceHashed(key, hash_of(key), std::forward<Args>(args)...);
  }
  template <typename... Args>
  std::pair<iterator, bool> try_emplace_hashed(const K& key, size_t hash,
                                               Args&&... args) {
    return TryEmplaceHashed(key, hash, std::forward<Args>(args)...);
  }
  // unordered_map-compatible spelling used by the operator code.
  template <typename... Args>
  std::pair<iterator, bool> emplace(const K& key, Args&&... args) {
    return TryEmplaceHashed(key, hash_of(key), std::forward<Args>(args)...);
  }

  V& operator[](const K& key) { return try_emplace(key).first->second; }

  size_t erase(const K& key) {
    int32_t e = ProbeFind(key, hash_of(key));
    if (e < 0) return 0;
    EraseEntry(static_cast<size_t>(e));
    return 1;
  }

  // Erases the pointed-to entry. The former last entry is swapped into its
  // place, so the returned iterator (same position) continues with the
  // remaining unvisited entries.
  iterator erase(iterator it) {
    EraseEntry(static_cast<size_t>(it.p_ - entries_.data()));
    return it;
  }

 private:
  struct Slot {
    size_t hash;
    int32_t entry;  // Dense index, or kEmpty / kTomb.
  };

  static size_t NextPow2(size_t n) {
    size_t cap = 16;
    while (cap < n) cap <<= 1;
    return cap;
  }
  // Smallest power-of-two capacity that keeps `n` entries under the 3/4
  // load bound.
  static size_t CapacityFor(size_t n) {
    size_t cap = 16;
    while (n * 4 > cap * 3) cap <<= 1;
    return cap;
  }

  int32_t ProbeFind(const K& key, size_t hash) const {
    if (slots_.empty()) return kEmpty;
    size_t mask = slots_.size() - 1;
    size_t i = hash & mask;
    while (true) {
      const Slot& s = slots_[i];
      if (s.entry == kEmpty) return kEmpty;
      if (s.entry >= 0 && s.hash == hash &&
          entries_[static_cast<size_t>(s.entry)].first == key) {
        return s.entry;
      }
      i = (i + 1) & mask;
    }
  }

  template <typename... Args>
  std::pair<iterator, bool> TryEmplaceHashed(const K& key, size_t hash,
                                             Args&&... args) {
    if (slots_.empty() || (entries_.size() + tombs_ + 1) * 4 > slots_.size() * 3) {
      // Growth also reclaims tombstones; a tombstone-heavy table re-packs
      // at the same capacity instead of doubling.
      Rehash(CapacityFor(entries_.size() + 1) > slots_.size()
                 ? NextPow2(slots_.size() == 0 ? 16 : slots_.size() * 2)
                 : slots_.size());
    }
    size_t mask = slots_.size() - 1;
    size_t i = hash & mask;
    size_t tomb = static_cast<size_t>(-1);
    while (true) {
      Slot& s = slots_[i];
      if (s.entry == kEmpty) break;
      if (s.entry == kTomb) {
        if (tomb == static_cast<size_t>(-1)) tomb = i;
      } else if (s.hash == hash &&
                 entries_[static_cast<size_t>(s.entry)].first == key) {
        return {iterator(entries_.data() + s.entry), false};
      }
      i = (i + 1) & mask;
    }
    if (tomb != static_cast<size_t>(-1)) {
      i = tomb;
      --tombs_;
    }
    slots_[i] = Slot{hash, static_cast<int32_t>(entries_.size())};
    entries_.emplace_back(std::piecewise_construct,
                          std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<Args>(args)...));
    entry_slot_.push_back(static_cast<uint32_t>(i));
    return {iterator(entries_.data() + entries_.size() - 1), true};
  }

  void EraseEntry(size_t e) {
    RECNET_DCHECK(e < entries_.size());
    slots_[entry_slot_[e]].entry = kTomb;
    ++tombs_;
    size_t last = entries_.size() - 1;
    if (e != last) {
      entries_[e] = std::move(entries_[last]);
      entry_slot_[e] = entry_slot_[last];
      slots_[entry_slot_[e]].entry = static_cast<int32_t>(e);
    }
    entries_.pop_back();
    entry_slot_.pop_back();
  }

  void Rehash(size_t new_cap) {
    if (new_cap < CapacityFor(entries_.size())) {
      new_cap = CapacityFor(entries_.size());
    }
    // Recover each entry's stored hash from its current slot before the
    // probe array is rebuilt — growth never re-hashes keys.
    std::vector<size_t> hashes(entries_.size());
    for (size_t e = 0; e < entries_.size(); ++e) {
      hashes[e] = slots_[entry_slot_[e]].hash;
    }
    slots_.assign(new_cap, Slot{0, kEmpty});
    tombs_ = 0;
    size_t mask = new_cap - 1;
    for (size_t e = 0; e < entries_.size(); ++e) {
      size_t i = hashes[e] & mask;
      while (slots_[i].entry != kEmpty) i = (i + 1) & mask;
      slots_[i] = Slot{hashes[e], static_cast<int32_t>(e)};
      entry_slot_[e] = static_cast<uint32_t>(i);
    }
  }

  std::vector<Slot> slots_;
  std::vector<value_type> entries_;
  // Dense index -> probe-array slot (so erase can tombstone its slot).
  std::vector<uint32_t> entry_slot_;
  size_t tombs_ = 0;
};

}  // namespace recnet

#endif  // RECNET_COMMON_FLAT_TABLE_H_
