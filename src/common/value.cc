#include "common/value.h"

#include <functional>
#include <sstream>

namespace recnet {

size_t Value::WireSizeBytes() const {
  if (is_string()) return 4 + AsString().size();
  return 8;
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    std::ostringstream os;
    os << AsDouble();
    return os.str();
  }
  return AsString();
}

size_t Value::Hash() const {
  // Single dispatch on the variant index: this sits under every tuple-table
  // probe on the hot path.
  switch (rep_.index()) {
    case 0:
      return static_cast<size_t>(Mix64(0x11 ^ std::get<int64_t>(rep_)));
    case 1: {
      double d = std::get<double>(rep_);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return static_cast<size_t>(Mix64(0x22 ^ bits));
    }
    default:
      return HashCombine(0x33, std::hash<std::string>()(AsString()));
  }
}

Tuple Tuple::OfInts(std::initializer_list<int64_t> ints) {
  Values values;
  values.reserve(ints.size());
  for (int64_t v : ints) values.emplace_back(v);
  return Tuple(std::move(values));
}

size_t Tuple::WireSizeBytes() const {
  size_t bytes = 2;  // arity
  for (const Value& v : values_) bytes += v.WireSizeBytes();
  return bytes;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ",";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

size_t Tuple::ComputeHash() const {
  size_t h = 0x9e3779b9;
  for (const Value& v : values_) h = HashCombine(h, v.Hash());
  return h;
}

}  // namespace recnet
