#ifndef RECNET_COMMON_STATUS_H_
#define RECNET_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/logging.h"

namespace recnet {

// Error codes used across the library. The set mirrors the subset of
// canonical codes (as used by RocksDB/Arrow-style Status types) that recnet
// actually needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  // An operation was rejected because the system is not in the state the
  // operation requires (e.g. checkpointing a session with queued messages).
  kFailedPrecondition,
  // Unrecoverable loss or corruption of persisted data (bad checksum,
  // truncated snapshot file).
  kDataLoss,
  // A transient infrastructure fault (worker death, allocation failure,
  // torn snapshot write). Retrying — possibly after recovery — may succeed;
  // Session's fault-tolerant Apply path does exactly that.
  kUnavailable,
};

// A Status describes the result of an operation that can fail.
//
// recnet does not use exceptions (per the project style rules); fallible
// public APIs return Status or StatusOr<T>. Hot-path internal invariants use
// RECNET_CHECK instead.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable rendering, e.g. "InvalidArgument: bad arity".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// StatusOr<T> holds either a value or an error Status.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work
  // inside functions returning StatusOr<T>, matching absl::StatusOr usage.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    RECNET_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RECNET_CHECK(ok());
    return value_;
  }
  T& value() & {
    RECNET_CHECK(ok());
    return value_;
  }
  T&& value() && {
    RECNET_CHECK(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

#define RECNET_RETURN_IF_ERROR(expr)         \
  do {                                       \
    ::recnet::Status _st = (expr);           \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace recnet

#endif  // RECNET_COMMON_STATUS_H_
