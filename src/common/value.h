#ifndef RECNET_COMMON_VALUE_H_
#define RECNET_COMMON_VALUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/small_vector.h"

namespace recnet {

// Identifier of a logical query-processing node (a partition owner). The
// paper horizontally partitions every relation by its first attribute; that
// attribute's value names the node that stores the partition.
using LogicalNode = int32_t;

// A single attribute value. Network-state relations carry node ids and
// costs; path relations additionally carry path vectors rendered as strings
// (the `vec` attribute of Query 2).
//
// Strings are held behind an immutable shared pointer: a Value is 24 bytes
// (vs. 40 with an inline std::string alternative) and copying or moving one
// never touches the heap, which matters because every router hop and every
// tuple-table probe copies values. Comparison semantics are those of the
// plain variant<int64, double, string> this replaces (ordered by
// alternative index, then by value; strings compare by content).
class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v)
      : rep_(std::make_shared<const std::string>(std::move(v))) {}

  bool is_int() const { return rep_.index() == 0; }
  bool is_double() const { return rep_.index() == 1; }
  bool is_string() const { return rep_.index() == 2; }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const {
    return *std::get<std::shared_ptr<const std::string>>(rep_);
  }

  // Bytes this value occupies in a wire message (used by the bandwidth
  // accounting that backs the paper's "communication overhead" metric).
  size_t WireSizeBytes() const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    if (a.rep_.index() != b.rep_.index()) return false;
    switch (a.rep_.index()) {
      case 0:
        return std::get<int64_t>(a.rep_) == std::get<int64_t>(b.rep_);
      case 1:
        return std::get<double>(a.rep_) == std::get<double>(b.rep_);
      default: {
        const auto& sa = std::get<std::shared_ptr<const std::string>>(a.rep_);
        const auto& sb = std::get<std::shared_ptr<const std::string>>(b.rep_);
        return sa == sb || *sa == *sb;
      }
    }
  }
  friend bool operator<(const Value& a, const Value& b) {
    if (a.rep_.index() != b.rep_.index()) {
      return a.rep_.index() < b.rep_.index();
    }
    switch (a.rep_.index()) {
      case 0:
        return std::get<int64_t>(a.rep_) < std::get<int64_t>(b.rep_);
      case 1:
        return std::get<double>(a.rep_) < std::get<double>(b.rep_);
      default:
        return *std::get<std::shared_ptr<const std::string>>(a.rep_) <
               *std::get<std::shared_ptr<const std::string>>(b.rep_);
    }
  }

  size_t Hash() const;

 private:
  std::variant<int64_t, double, std::shared_ptr<const std::string>> rep_;
};

// A tuple is an ordered list of values. Equality and hashing are structural,
// so tuples can key the provenance hash tables of Algorithms 1-4. Storage is
// inline for up to five attributes (every relation of Queries 1-3, including
// the five-column path tuples), so constructing, copying, or enqueueing a
// network tuple does not allocate.
class Tuple {
 public:
  using Values = SmallVector<Value, 5>;

  // The hash memo is a relaxed atomic (so concurrent shard workers hashing
  // a shared tuple race benignly instead of UB), which makes the copy and
  // move members user-provided. Moves clear the source's hash memo: the
  // moved-from tuple is empty, so a stale memo would violate the
  // hash/equality contract if it were reused as a key.
  Tuple() = default;
  Tuple(const Tuple& o)
      : values_(o.values_),
        hash_memo_(o.hash_memo_.load(std::memory_order_relaxed)) {}
  Tuple& operator=(const Tuple& o) {
    values_ = o.values_;
    hash_memo_.store(o.hash_memo_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }
  Tuple(Tuple&& o) noexcept
      : values_(std::move(o.values_)),
        hash_memo_(o.hash_memo_.load(std::memory_order_relaxed)) {
    o.hash_memo_.store(0, std::memory_order_relaxed);
  }
  Tuple& operator=(Tuple&& o) noexcept {
    values_ = std::move(o.values_);
    hash_memo_.store(o.hash_memo_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    o.hash_memo_.store(0, std::memory_order_relaxed);
    return *this;
  }
  explicit Tuple(Values values) : values_(std::move(values)) {}
  explicit Tuple(const std::vector<Value>& values) {
    values_.reserve(values.size());
    for (const Value& v : values) values_.push_back(v);
  }
  explicit Tuple(std::vector<Value>&& values) {
    values_.reserve(values.size());
    for (Value& v : values) values_.push_back(std::move(v));
  }

  // Convenience constructors for the common network-relation shapes.
  static Tuple OfInts(std::initializer_list<int64_t> ints);

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& at(size_t i) const { return values_[i]; }
  const Values& values() const { return values_; }

  int64_t IntAt(size_t i) const { return values_[i].AsInt(); }
  double DoubleAt(size_t i) const { return values_[i].AsDouble(); }
  const std::string& StringAt(size_t i) const {
    return values_[i].AsString();
  }

  size_t WireSizeBytes() const;
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

  // Structural hash, memoized: a tuple is immutable after construction, and
  // the same tuple object (or a copy, which inherits the memo) keys several
  // operator tables along one delivery. Relaxed atomics suffice — every
  // racing writer stores the same structural hash.
  size_t Hash() const {
    size_t memo = hash_memo_.load(std::memory_order_relaxed);
    if (memo != 0) return memo;
    size_t h = ComputeHash();
    if (h == 0) h = 1;  // Reserve 0 as "not yet computed".
    hash_memo_.store(h, std::memory_order_relaxed);
    return h;
  }

 private:
  size_t ComputeHash() const;

  Values values_;
  mutable std::atomic<size_t> hash_memo_{0};
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

// 64-bit mixing (splitmix64 finalizer); used for hash combining everywhere.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline size_t HashCombine(size_t seed, size_t v) {
  return static_cast<size_t>(Mix64(seed * 0x100000001b3ULL ^ v));
}

}  // namespace recnet

#endif  // RECNET_COMMON_VALUE_H_
