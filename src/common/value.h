#ifndef RECNET_COMMON_VALUE_H_
#define RECNET_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace recnet {

// Identifier of a logical query-processing node (a partition owner). The
// paper horizontally partitions every relation by its first attribute; that
// attribute's value names the node that stores the partition.
using LogicalNode = int32_t;

// A single attribute value. Network-state relations carry node ids and
// costs; path relations additionally carry path vectors rendered as strings
// (the `vec` attribute of Query 2).
class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}

  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  // Bytes this value occupies in a wire message (used by the bandwidth
  // accounting that backs the paper's "communication overhead" metric).
  size_t WireSizeBytes() const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.rep_ < b.rep_;
  }

  size_t Hash() const;

 private:
  std::variant<int64_t, double, std::string> rep_;
};

// A tuple is an ordered list of values. Equality and hashing are structural,
// so tuples can key the provenance hash tables of Algorithms 1-4.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  // Convenience constructors for the common network-relation shapes.
  static Tuple OfInts(std::initializer_list<int64_t> ints);

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  int64_t IntAt(size_t i) const { return values_[i].AsInt(); }
  double DoubleAt(size_t i) const { return values_[i].AsDouble(); }
  const std::string& StringAt(size_t i) const {
    return values_[i].AsString();
  }

  size_t WireSizeBytes() const;
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

  size_t Hash() const;

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

// 64-bit mixing (splitmix64 finalizer); used for hash combining everywhere.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline size_t HashCombine(size_t seed, size_t v) {
  return static_cast<size_t>(Mix64(seed * 0x100000001b3ULL ^ v));
}

}  // namespace recnet

#endif  // RECNET_COMMON_VALUE_H_
