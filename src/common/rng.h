#ifndef RECNET_COMMON_RNG_H_
#define RECNET_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace recnet {

// Deterministic pseudo-random generator (xoshiro256**). Every workload and
// topology generator takes an explicit seed so that experiments are exactly
// reproducible run-to-run — the paper averages across 10 runs; we expose the
// seed as the run index instead.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Returns true with probability p.
  bool NextBool(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace recnet

#endif  // RECNET_COMMON_RNG_H_
