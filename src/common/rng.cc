#include "common/rng.h"

#include "common/logging.h"
#include "common/value.h"

namespace recnet {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four xoshiro words via splitmix64, as recommended by the
  // xoshiro reference implementation.
  uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = Mix64(x);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  RECNET_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace recnet
