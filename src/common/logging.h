#ifndef RECNET_COMMON_LOGGING_H_
#define RECNET_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

// Lightweight assertion macros in the style of glog/absl CHECK.
//
// RECNET_CHECK(cond) aborts with a diagnostic when `cond` is false. These
// guards stay enabled in release builds: the engine's invariants (canonical
// BDD nodes, FIFO delivery, provenance bookkeeping) are cheap to test and
// catastrophic to violate silently.

#define RECNET_CHECK(cond)                                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "RECNET_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define RECNET_CHECK_EQ(a, b) RECNET_CHECK((a) == (b))
#define RECNET_CHECK_NE(a, b) RECNET_CHECK((a) != (b))
#define RECNET_CHECK_LT(a, b) RECNET_CHECK((a) < (b))
#define RECNET_CHECK_LE(a, b) RECNET_CHECK((a) <= (b))
#define RECNET_CHECK_GT(a, b) RECNET_CHECK((a) > (b))
#define RECNET_CHECK_GE(a, b) RECNET_CHECK((a) >= (b))

#ifdef NDEBUG
#define RECNET_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define RECNET_DCHECK(cond) RECNET_CHECK(cond)
#endif

#endif  // RECNET_COMMON_LOGGING_H_
