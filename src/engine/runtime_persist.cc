// Snapshot round-trips for the query runtimes. Each override appends to the
// base-class section (kill routing, pseudo-variables, run bookkeeping) the
// runtime's own tables and every node's operator state, in iteration order,
// so a restored runtime's message trajectory is bit-identical to the saved
// one's. LoadState expects a freshly constructed runtime of the same
// program, options, and topology and refuses shape mismatches with
// InvalidArgument.

#include <utility>

#include "engine/reachable_runtime.h"
#include "engine/region_runtime.h"
#include "engine/shortest_path_runtime.h"
#include "persist/codec.h"

namespace recnet {

void ReachableRuntime::SaveState(persist::SnapshotWriter& w) const {
  RuntimeBase::SaveState(w);
  persist::Writer& raw = w.raw();
  raw.U64(link_vars_.size());
  for (const auto& [tuple, var] : link_vars_) {
    w.PutTuple(tuple);
    raw.U32(var);
  }
  // DRed's re-derivation base case fires links in exactly this order.
  raw.U32(static_cast<uint32_t>(links_by_src_.size()));
  for (const auto& dsts : links_by_src_) {
    raw.U32(static_cast<uint32_t>(dsts.size()));
    for (LogicalNode d : dsts) raw.I32(d);
  }
  raw.Bool(rederive_pending_);
  raw.Bool(relative_check_pending_);
  raw.U32(static_cast<uint32_t>(nodes_.size()));
  for (const NodeState& state : nodes_) {
    raw.Bool(state.fix != nullptr);
    if (state.fix == nullptr) continue;
    state.fix->SaveState(w);
    state.join->SaveState(w);
    state.ship->SaveState(w);
  }
}

Status ReachableRuntime::LoadState(persist::SnapshotReader& r) {
  RECNET_RETURN_IF_ERROR(RuntimeBase::LoadState(r));
  persist::Reader& raw = r.raw();
  RECNET_CHECK(link_vars_.empty());
  uint64_t nlinks = raw.Count(4);
  link_vars_.reserve(nlinks);
  for (uint64_t i = 0; i < nlinks && raw.ok(); ++i) {
    Tuple tuple = r.GetTuple();
    bdd::Var var = raw.U32();
    link_vars_.emplace(std::move(tuple), var);
  }
  uint32_t nsrc = raw.U32();
  if (raw.ok() && nsrc != links_by_src_.size()) {
    return Status::InvalidArgument(
        "snapshot link table spans a different node count than the "
        "reconstructed runtime");
  }
  for (uint32_t n = 0; n < nsrc && raw.ok(); ++n) {
    uint32_t ndsts = raw.U32();
    if (!raw.CanRead(static_cast<size_t>(ndsts) * 4)) break;
    std::vector<LogicalNode>& dsts = links_by_src_[n];
    RECNET_CHECK(dsts.empty());
    dsts.reserve(ndsts);
    for (uint32_t j = 0; j < ndsts; ++j) dsts.push_back(raw.I32());
  }
  rederive_pending_ = raw.Bool();
  relative_check_pending_ = raw.Bool();
  uint32_t nnodes = raw.U32();
  if (raw.ok() && nnodes != nodes_.size()) {
    return Status::InvalidArgument(
        "snapshot operator state spans a different node count than the "
        "reconstructed runtime");
  }
  for (uint32_t n = 0; n < nnodes && raw.ok(); ++n) {
    if (!raw.Bool()) continue;
    if (nodes_[n].fix == nullptr) {
      InitNode(static_cast<int>(n), nodes_.size());
    }
    RECNET_RETURN_IF_ERROR(nodes_[n].fix->LoadState(r));
    RECNET_RETURN_IF_ERROR(nodes_[n].join->LoadState(r));
    RECNET_RETURN_IF_ERROR(nodes_[n].ship->LoadState(r));
  }
  return r.Check("reachable runtime state");
}

void ShortestPathRuntime::SaveState(persist::SnapshotWriter& w) const {
  RuntimeBase::SaveState(w);
  persist::Writer& raw = w.raw();
  raw.U64(link_vars_.size());
  for (const auto& [tuple, var] : link_vars_) {
    w.PutTuple(tuple);
    raw.U32(var);
  }
  raw.U32(static_cast<uint32_t>(nodes_.size()));
  for (const NodeState& state : nodes_) {
    raw.Bool(state.fix != nullptr);
    if (state.fix == nullptr) continue;
    state.fix->SaveState(w);
    state.join->SaveState(w);
    state.ship->SaveState(w);
    state.agg_fix->SaveState(w);
    state.agg_ship->SaveState(w);
  }
}

Status ShortestPathRuntime::LoadState(persist::SnapshotReader& r) {
  RECNET_RETURN_IF_ERROR(RuntimeBase::LoadState(r));
  persist::Reader& raw = r.raw();
  RECNET_CHECK(link_vars_.empty());
  uint64_t nlinks = raw.Count(4);
  link_vars_.reserve(nlinks);
  for (uint64_t i = 0; i < nlinks && raw.ok(); ++i) {
    Tuple tuple = r.GetTuple();
    bdd::Var var = raw.U32();
    link_vars_.emplace(std::move(tuple), var);
  }
  uint32_t nnodes = raw.U32();
  if (raw.ok() && nnodes != nodes_.size()) {
    return Status::InvalidArgument(
        "snapshot operator state spans a different node count than the "
        "reconstructed runtime");
  }
  for (uint32_t n = 0; n < nnodes && raw.ok(); ++n) {
    if (!raw.Bool()) continue;
    if (nodes_[n].fix == nullptr) {
      InitNode(static_cast<int>(n), nodes_.size());
    }
    RECNET_RETURN_IF_ERROR(nodes_[n].fix->LoadState(r));
    RECNET_RETURN_IF_ERROR(nodes_[n].join->LoadState(r));
    RECNET_RETURN_IF_ERROR(nodes_[n].ship->LoadState(r));
    RECNET_RETURN_IF_ERROR(nodes_[n].agg_fix->LoadState(r));
    RECNET_RETURN_IF_ERROR(nodes_[n].agg_ship->LoadState(r));
  }
  return r.Check("shortest-path runtime state");
}

void RegionRuntime::SaveState(persist::SnapshotWriter& w) const {
  RuntimeBase::SaveState(w);
  persist::Writer& raw = w.raw();
  raw.U32(static_cast<uint32_t>(trig_var_.size()));
  for (const std::optional<bdd::Var>& v : trig_var_) {
    raw.Bool(v.has_value());
    if (v.has_value()) raw.U32(*v);
  }
  // sizes_at_root_ iteration order is observable (LargestRegions walks it),
  // so reproduce it with the reverse-insertion bucket trick (see
  // MinShip::LoadState).
  raw.U64(sizes_at_root_.bucket_count());
  raw.U64(sizes_at_root_.size());
  for (const auto& [region, size] : sizes_at_root_) {
    raw.I32(region);
    raw.I64(size);
  }
  raw.Bool(rederive_pending_);
  raw.Bool(relative_check_pending_);
  raw.U32(static_cast<uint32_t>(nodes_.size()));
  for (const NodeState& state : nodes_) {
    raw.Bool(state.fix != nullptr);
    if (state.fix != nullptr) state.fix->SaveState(w);
    raw.Bool(state.ship != nullptr);
    if (state.ship != nullptr) state.ship->SaveState(w);
    raw.Bool(state.region_sizes != nullptr);
    if (state.region_sizes != nullptr) state.region_sizes->SaveState(w);
  }
}

Status RegionRuntime::LoadState(persist::SnapshotReader& r) {
  RECNET_RETURN_IF_ERROR(RuntimeBase::LoadState(r));
  persist::Reader& raw = r.raw();
  uint32_t ntrig = raw.U32();
  if (raw.ok() && ntrig != trig_var_.size()) {
    return Status::InvalidArgument(
        "snapshot trigger state spans a different sensor count than the "
        "reconstructed runtime");
  }
  for (uint32_t i = 0; i < ntrig && raw.ok(); ++i) {
    if (raw.Bool()) trig_var_[i] = raw.U32();
  }
  uint64_t buckets = raw.U64();
  uint64_t nsizes = raw.Count(3);
  std::vector<std::pair<int, int64_t>> saved_sizes;
  saved_sizes.reserve(nsizes);
  for (uint64_t i = 0; i < nsizes && raw.ok(); ++i) {
    int region = static_cast<int>(raw.I32());
    int64_t size = raw.I64();
    saved_sizes.emplace_back(region, size);
  }
  RECNET_CHECK(sizes_at_root_.empty());
  sizes_at_root_.rehash(static_cast<size_t>(buckets));
  for (auto it = saved_sizes.rbegin(); it != saved_sizes.rend(); ++it) {
    sizes_at_root_.emplace(it->first, it->second);
  }
  rederive_pending_ = raw.Bool();
  relative_check_pending_ = raw.Bool();
  uint32_t nnodes = raw.U32();
  if (raw.ok() && nnodes != nodes_.size()) {
    return Status::InvalidArgument(
        "snapshot operator state spans a different node count than the "
        "reconstructed runtime");
  }
  for (uint32_t n = 0; n < nnodes && raw.ok(); ++n) {
    NodeState& state = nodes_[n];
    // InitNodes() is deterministic from the field, so the reconstructed
    // operator layout must equal the saved one exactly.
    if (raw.Bool() != (state.fix != nullptr) && raw.ok()) {
      return Status::InvalidArgument("snapshot operator layout mismatch");
    }
    if (state.fix != nullptr) {
      RECNET_RETURN_IF_ERROR(state.fix->LoadState(r));
    }
    if (raw.Bool() != (state.ship != nullptr) && raw.ok()) {
      return Status::InvalidArgument("snapshot operator layout mismatch");
    }
    if (state.ship != nullptr) {
      RECNET_RETURN_IF_ERROR(state.ship->LoadState(r));
    }
    if (raw.Bool() != (state.region_sizes != nullptr) && raw.ok()) {
      return Status::InvalidArgument("snapshot operator layout mismatch");
    }
    if (state.region_sizes != nullptr) {
      RECNET_RETURN_IF_ERROR(state.region_sizes->LoadState(r));
    }
  }
  return r.Check("region runtime state");
}

}  // namespace recnet
