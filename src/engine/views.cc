#include "engine/views.h"

namespace recnet {
namespace {

Status RunToFixpoint(RuntimeBase* rt) {
  if (!rt->Run()) {
    return Status::ResourceExhausted(
        "message budget exceeded before fixpoint");
  }
  return Status::OK();
}

}  // namespace

Status ReachabilityView::Apply() { return RunToFixpoint(&rt_); }
Status ShortestPathView::Apply() { return RunToFixpoint(&rt_); }
Status RegionView::Apply() { return RunToFixpoint(&rt_); }

void SoftStateReachabilityView::InsertLink(int src, int dst, double ttl) {
  Tuple link = Tuple::OfInts({src, dst});
  if (clock_.Contains(link)) {
    // Renewal: soft-state refresh extends the deadline; the view tuple and
    // its base variable stay alive, so nothing propagates.
    clock_.Insert(link, ttl);
    return;
  }
  clock_.Insert(link, ttl);
  rt_.InsertLink(src, dst);
}

void SoftStateReachabilityView::DeleteLink(int src, int dst) {
  clock_.Remove(Tuple::OfInts({src, dst}));
  rt_.DeleteLink(src, dst);
}

void SoftStateReachabilityView::AdvanceTime(double t) {
  for (const Tuple& expired : clock_.AdvanceTo(t)) {
    rt_.DeleteLink(static_cast<int>(expired.IntAt(0)),
                   static_cast<int>(expired.IntAt(1)));
  }
}

Status SoftStateReachabilityView::Apply() { return RunToFixpoint(&rt_); }

std::optional<std::vector<std::pair<int, int>>> ReachabilityView::Why(
    int src, int dst) const {
  const Prov* pv = rt_.ViewProvenance(src, dst);
  if (pv == nullptr || pv->mode() != ProvMode::kAbsorption) {
    return std::nullopt;
  }
  std::vector<std::pair<bdd::Var, bool>> assignment;
  const bdd::Bdd& b = pv->bdd();
  if (!b.manager()->AnyWitness(b.index(), &assignment)) return std::nullopt;
  // Map witness variables back to the live links they annotate.
  std::vector<std::pair<int, int>> links;
  for (const auto& [var, value] : assignment) {
    if (!value) continue;
    auto link = rt_.LinkOfVar(var);
    if (link.has_value()) links.push_back(*link);
  }
  return links;
}

}  // namespace recnet
