#ifndef RECNET_ENGINE_SESSION_H_
#define RECNET_ENGINE_SESSION_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "datalog/planner.h"
#include "engine/runtime_registry.h"
#include "engine/soft_state.h"
#include "engine/substrate.h"

namespace recnet {

class View;

// Deployment of one session's shared substrate (see Substrate): the
// parameters that describe the simulated network rather than any one
// compiled program.
struct SessionOptions {
  // Initial logical topology. The node-id space is dynamic — late facts and
  // AddNode() grow it — so 0 (start empty) is valid.
  int num_nodes = 0;
  // Physical peers the logical nodes are mapped onto.
  int num_physical = 12;
  // Coalesce same-(dst, port) delivery runs into single handler batches.
  bool batch_delivery = true;
  // Router shards the simulated network is partitioned across (see
  // SubstrateOptions::shards): node n resides on shard n % shards, so nodes
  // added later (AddNode / late facts) land on their shard without
  // rebalancing anything. Every view's counters and scan results are
  // bit-identical for any shard count.
  int shards = 1;
  // Seeded fault plan the session's substrate runs under (default: no
  // faults). Infrastructure faults surface as kUnavailable from Apply —
  // unless `recovery` masks them; drop/dup rates arm the lossy shard-link
  // workload mode. The session keeps ONE injector across substrate rebuilds
  // so the fault clock survives recovery.
  fault::FaultPlan faults;
  // Crash-recovery policy: when enabled, Apply takes barrier-consistent
  // in-memory micro-checkpoints and masks injected infrastructure faults by
  // rebuilding the substrate from the last one (bounded retries with
  // exponential backoff). A recovered Apply finishes with Scan results and
  // traffic counters bit-identical to an uninterrupted run.
  fault::RecoveryPolicy recovery;
};

// ---------------------------------------------------------------------------
// recnet::Session — a long-lived context hosting many compiled Datalog
// programs as co-resident views over one network substrate: one Router, one
// BDD manager, one shared EDB store, one dynamic node-id space.
//
//   recnet::Session session(recnet::SessionOptions{/*num_nodes=*/12});
//   auto* reach = *session.AddProgram(R"(
//     reachable(x,y) :- link(x,y).
//     reachable(x,y) :- link(x,z), reachable(z,y).
//   )", {});
//   auto* spans = *session.AddProgram(R"(
//     span(x,y) :- link(x,y).
//     span(x,y) :- span(x,z), link(z,y).
//   )", {});
//   session.Insert("link", {0, 1});      // One fact feeds both views.
//   session.Apply();                     // One fixpoint over the substrate.
//   reach->Contains("reachable", {0, 1});
//   spans->Contains("span", {0, 1});
//
// Ingestion is session-scoped: a fact for relation R fans out to every view
// declaring R (the declarations come from each plan's Relations()), and the
// session records it so programs added later replay the shared EDB. Views
// added to one session must agree on the schema of any relation they share.
// Reads (Scan / Lookup / Contains / Explain) are per-view, through the View
// handles AddProgram returns.
//
// recnet::Engine (engine/engine.h) is a thin one-program session and keeps
// the original compile-one-program API.
// ---------------------------------------------------------------------------
class Session {
 public:
  explicit Session(const SessionOptions& options = SessionOptions());
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Compiles `source` (parse -> analyze -> plan -> instantiate) as a
  // co-resident view and returns its handle, valid for the session's
  // lifetime. Session facts already recorded for relations the new program
  // declares are replayed into it, and the program's own ground facts are
  // loaded through the session store (fanning out to older views that share
  // the relation). Errors mirror Engine::Compile, plus InvalidArgument when
  // the program declares a relation whose schema conflicts with a
  // co-resident view's declaration.
  StatusOr<View*> AddProgram(const std::string& source,
                             const EngineOptions& options);

  // Retires a co-resident view: deregisters its relation declarations,
  // destroys its runtime (freeing the port namespace back to the router),
  // and garbage-collects the BDD manager so the view's provenance nodes are
  // reclaimed. Co-resident views are untouched — their scans, counters, and
  // subsequent runs proceed as if the removed program had never shared the
  // substrate. Session facts stay in the shared EDB store (other declaring
  // views may still depend on them). NotFound when `view` is not (or no
  // longer) resident; the handle is invalid afterwards.
  Status RemoveProgram(View* view);

  // --- Checkpoint / restore -------------------------------------------------
  //
  // Whole-session persistence: Checkpoint serializes every layer of the
  // session — the BDD manager's unique table, the shared EDB store and
  // soft-state clock, each view's program + options + operator state, the
  // base-variable allocator, and per-view network counters — into a
  // versioned, checksummed snapshot file. Restore rebuilds the session in
  // one pass such that the subsequent Apply/Scan/counter trajectory is
  // bit-identical to a session that never stopped, for any shard count.

  // Preconditions: the router queue must be drained (call Apply() first;
  // FailedPrecondition otherwise) and every view must expose its native
  // runtime (Unimplemented for external-factory views).
  Status Checkpoint(const std::string& path) const;

  // Restores into a freshly constructed session whose SessionOptions match
  // the snapshot's num_physical / batch_delivery (the shard count may
  // differ: delivery is shard-count invariant). FailedPrecondition when the
  // session already holds views or facts; InvalidArgument on a deployment
  // mismatch or version skew; DataLoss on corruption.
  Status Restore(const std::string& path);

  // --- Shared fact ingestion, keyed by relation name ------------------------
  //
  // Fans out to every view declaring the relation; updates propagate on the
  // next Apply(). NotFound when no view declares it. If the fact is valid
  // for some declaring views but not all (co-resident schema drift), the
  // error is returned after the earlier views already enqueued it.

  Status Insert(const std::string& relation, const Tuple& fact);
  Status Delete(const std::string& relation, const Tuple& fact);
  Status Insert(const std::string& relation,
                std::initializer_list<double> fact);
  Status Delete(const std::string& relation,
                std::initializer_list<double> fact);

  // Soft-state ingestion (paper §3.1): the fact expires `ttl` time units
  // after the session clock; expiry is processed as an ordinary deletion in
  // every declaring view. Re-inserting a live fact renews its deadline
  // without re-propagating.
  Status InsertWithTtl(const std::string& relation, const Tuple& fact,
                       double ttl);
  // Advances the soft-state clock, enqueueing deletions for expired facts
  // (propagated on the next Apply()).
  Status AdvanceTime(double t);
  double now() const { return clock_.now(); }

  // Runs the shared dataflow to session-wide fixpoint (all views converge
  // in one drain; each view's caches are patched from its own delta log).
  // Budgets are taken from the first view's RuntimeOptions.
  // ResourceExhausted when they were exceeded before convergence.
  Status Apply();

  // --- Dynamic node-id space ------------------------------------------------

  // Registers one more logical node and returns its id. (Facts mentioning
  // unseen node ids grow the space implicitly; this is the explicit form.)
  int AddNode();
  // Grows the space to at least `num_nodes`.
  void EnsureNodes(int num_nodes);
  int num_nodes() const;

  // Crash recoveries performed over the session's lifetime (0 unless
  // SessionOptions::recovery masked an injected fault). Also overlaid onto
  // every View's RunMetrics.
  uint64_t recoveries() const { return recoveries_; }

  size_t num_views() const { return views_.size(); }
  // Resident views in AddProgram order (RemoveProgram compacts the list).
  View* view(size_t i) { return views_[i].get(); }
  const View* view(size_t i) const { return views_[i].get(); }
  const std::shared_ptr<Substrate>& substrate() const { return substrate_; }

 private:
  friend class View;

  struct RelationInfo {
    size_t arity = 0;
    bool dynamic = true;
    std::vector<View*> views;  // Declaring views, in AddProgram order.
  };

  // Tags a fact with its relation name (clock keys and the fact index must
  // not collide across relations).
  static Tuple TaggedFact(const std::string& relation, const Tuple& fact);

  // Fan-out without touching the soft-state clock (Insert/Delete wrap these
  // with clock maintenance; expiry calls them directly).
  Status IngestInsert(const std::string& relation, const Tuple& fact);
  Status IngestDelete(const std::string& relation, const Tuple& fact);

  // Coordinated fixpoint: arms every view's cache-delta log, drains the
  // substrate once through `initiator`'s runtime (its budgets apply), then
  // patches every view's caches.
  Status ApplyFrom(QueryRuntime* initiator);

  // AddProgram body; Restore re-adds saved programs with load_facts=false
  // (neither session-fact replay nor ground-fact loading — the restored
  // operator state already contains their effects, and loading would
  // allocate base variables the snapshot's allocator image owns).
  StatusOr<View*> AddProgramImpl(const std::string& source,
                                 const EngineOptions& options,
                                 bool load_facts);

  // --- Fault recovery -------------------------------------------------------

  // True when every resident view exposes its native runtime (external
  // factories cannot be re-instantiated from a micro-checkpoint).
  bool RecoverySupported() const;
  // (Re-)installs the micro-checkpoint barrier hook on the current
  // substrate, per SessionOptions::recovery.checkpoint_interval.
  void ArmBarrierHook();
  // Serializes the substrate-level session state — view operator states,
  // BDD node table, base-variable allocator, per-view network counters,
  // router ordering context, and every in-flight envelope — into the
  // in-memory micro-checkpoint buffer. Called at Apply entry and (when
  // checkpoint_interval > 0) at drain barriers, where workers are joined
  // and queue contents are sequence-stamped, so restoring resumes the EXACT
  // delivery schedule of the captured run.
  void CaptureMicroCheckpoint();
  // Masks an infrastructure fault: rebuilds a fresh substrate (same
  // deployment, same shared injector), re-instantiates every view's runtime
  // on it, and restores the last micro-checkpoint into the rebuilt session.
  Status RecoverFromFault();

  // Deployment parameters, kept verbatim so a recovery rebuild constructs a
  // substrate identical to the original.
  SessionOptions options_;
  // The session's one fault injector (null when the plan enables nothing);
  // shared with every substrate this session builds so the generation clock
  // and recovery epoch survive rebuilds.
  std::shared_ptr<fault::FaultInjector> injector_;
  std::shared_ptr<Substrate> substrate_;
  std::vector<std::unique_ptr<View>> views_;
  std::unordered_map<std::string, RelationInfo> relations_;
  // Session EDB store: live facts in insertion order, for replay into views
  // added later. Deleted entries are tombstoned (empty relation name) so
  // replay order is stable; the index maps a tagged fact to its slot.
  std::vector<std::pair<std::string, Tuple>> fact_log_;
  std::unordered_map<Tuple, size_t, TupleHash> fact_index_;
  SoftStateClock clock_;
  // Last micro-checkpoint (empty = none captured yet). In-memory only:
  // recovery masks process-internal faults; durability is Checkpoint's job.
  std::vector<uint8_t> micro_ckpt_;
  uint64_t recoveries_ = 0;
};

// A compiled program co-resident in a Session: the per-view read surface
// (the same Scan/Lookup/Contains/Explain/metrics contract Engine exposes).
// Handles are owned by the session and valid for its lifetime.
class View {
 public:
  // The plan the program lowered onto.
  const datalog::PlanSpec& plan() const { return plan_; }

  // Session-wide fixpoint using this view's budgets (all co-resident views
  // share one queue, so convergence is necessarily collective).
  Status Apply();

  // All tuples of the recursive view or a declared aggregate view.
  StatusOr<std::vector<Tuple>> Scan(const std::string& view) const;

  // Membership test against the recursive view or an aggregate view.
  StatusOr<bool> Contains(const std::string& view, const Tuple& tuple) const;
  StatusOr<bool> Contains(const std::string& view,
                          std::initializer_list<double> tuple) const;

  // First tuple of `view` whose leading columns equal `key` (group-by
  // columns for aggregate views). Path-view lookups surface the runtime's
  // auxiliary columns: (src, dst, cost, vec, length).
  StatusOr<Tuple> Lookup(const std::string& view, const Tuple& key) const;
  StatusOr<Tuple> Lookup(const std::string& view,
                         std::initializer_list<double> key) const;

  // Provenance witness: one set of base facts supporting `tuple` in the
  // recursive view — the paper's "why is this tuple here" diagnostic.
  // Requires ProvMode::kAbsorption (reachable and shortest-path views).
  StatusOr<std::vector<Tuple>> Explain(const std::string& view,
                                       const Tuple& tuple) const;

  // Run bookkeeping, scoped to this view's traffic on the shared router.
  // The session-wide recovery count is overlaid so a figure cell can report
  // how many crashes the run masked.
  RunMetrics Metrics() const {
    RunMetrics m = runtime_->Metrics();
    m.recoveries = session_->recoveries_;
    return m;
  }
  void ResetMetrics() { runtime_->ResetMetrics(); }
  bool converged() const { return runtime_->converged(); }
  const RuntimeOptions& options() const { return runtime_->options(); }

 private:
  friend class Session;

  View(Session* session, datalog::PlanSpec plan,
       std::unique_ptr<QueryRuntime> runtime, std::string source,
       EngineOptions options)
      : session_(session),
        plan_(std::move(plan)),
        runtime_(std::move(runtime)),
        source_(std::move(source)),
        options_(std::move(options)) {}

  Session* session_;
  datalog::PlanSpec plan_;
  std::unique_ptr<QueryRuntime> runtime_;
  // The program text and options the view was compiled from, kept verbatim
  // so Checkpoint can re-instantiate the identical plan on Restore.
  std::string source_;
  EngineOptions options_;
};

}  // namespace recnet

#endif  // RECNET_ENGINE_SESSION_H_
