#ifndef RECNET_ENGINE_RUNTIME_REGISTRY_H_
#define RECNET_ENGINE_RUNTIME_REGISTRY_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "datalog/planner.h"
#include "engine/runtime_base.h"
#include "engine/shortest_path_runtime.h"
#include "topology/sensor_grid.h"

namespace recnet {

// Configuration of an Engine session: the shared RuntimeOptions plus the
// deployment parameters a Datalog program cannot carry.
struct EngineOptions {
  RuntimeOptions runtime;
  // Number of network nodes for the graph-shaped plans (reachable /
  // shortest path). Required > 0 for those plans.
  int num_nodes = 0;
  // Aggregate-selection policy for the shortest-path runtime.
  AggSelPolicy aggsel = AggSelPolicy::kMulti;
  // Sensor deployment for region plans: defines the seed and proximity
  // EDBs. Required for PlanKind::kRegion.
  std::optional<SensorField> field;
};

// The uniform runtime interface every query shape is adapted onto: typed
// tuples in, Status / StatusOr out. Implementations wrap one of the
// distributed runtimes (ReachableRuntime, ShortestPathRuntime,
// RegionRuntime) and translate generic relation-name-keyed facts onto its
// native ingestion calls.
//
// View reads are served from materialized per-view caches: the first Scan
// of a view enumerates the runtime's partitions once (ScanView) and caches
// the rows; Lookup consults a lazily built hash index over the cached rows
// instead of a linear search. Every mutation entry point — Insert, Delete
// (including the soft-state TTL expirations the engine converts to
// deletions), and Apply — invalidates the caches, so reads between updates
// are O(1) amortized and never stale.
class QueryRuntime {
 public:
  virtual ~QueryRuntime() = default;

  // Enqueues an insertion / deletion of `fact` into the named base
  // relation. Updates propagate on the next Apply().
  Status Insert(const std::string& relation, const Tuple& fact);
  Status Delete(const std::string& relation, const Tuple& fact);

  // Runs the distributed dataflow to fixpoint. ResourceExhausted when the
  // message or time budget was exceeded before convergence.
  Status Apply();

  // All tuples of the recursive view or of a declared aggregate view, in
  // deterministic (sorted) order. NotFound for unknown view names. Served
  // from the materialized cache after the first call.
  StatusOr<std::vector<Tuple>> Scan(const std::string& view) const;

  // First tuple of `view` whose leading columns equal `key` (the full tuple
  // for the recursive view, the group-by columns for an aggregate view).
  // Adapters may return auxiliary runtime-maintained columns beyond the
  // declared arity (the path runtime's vec / length attributes). The
  // default is a hash-index probe over the cached scan; adapters override
  // to surface native runtime state.
  virtual StatusOr<Tuple> Lookup(const std::string& view,
                                 const Tuple& key) const;

  // Provenance witness for a view tuple: one set of base facts that
  // supports it (absorption provenance only).
  virtual StatusOr<std::vector<Tuple>> Explain(const Tuple& view_tuple) const;

  virtual RunMetrics Metrics() const = 0;
  virtual void ResetMetrics() = 0;
  virtual bool converged() const = 0;
  virtual const RuntimeOptions& options() const = 0;

 protected:
  // --- Implementation interface (wrapped by the caching layer above) -------

  virtual Status InsertFact(const std::string& relation,
                            const Tuple& fact) = 0;
  virtual Status DeleteFact(const std::string& relation,
                            const Tuple& fact) = 0;
  virtual Status ApplyUpdates() = 0;
  // Enumerates `view` from runtime state (the expensive partition sweep the
  // cache amortizes).
  virtual StatusOr<std::vector<Tuple>> ScanView(
      const std::string& view) const = 0;

  // For adapters whose native accessors mutate view state outside the
  // wrapped entry points (none today; defensive hook).
  void InvalidateViewCaches() const { view_caches_.clear(); }

 private:
  struct ViewCache {
    std::vector<Tuple> rows;
    // Lookup indexes, built lazily per probed key length: normalized key
    // prefix -> index of the first matching row.
    std::unordered_map<size_t, std::unordered_map<Tuple, size_t, TupleHash>>
        index;
  };

  // Returns the cache entry for `view`, materializing it via ScanView on
  // first use.
  StatusOr<ViewCache*> CacheFor(const std::string& view) const;

  mutable std::unordered_map<std::string, ViewCache> view_caches_;
};

// Evaluates a declared aggregate view over the scanned contents of the
// recursive view (group by group_cols, aggregate value_col). Results are
// sorted by group. Shared by the adapters; a runtime that maintains the
// aggregate distributedly (RegionRuntime) converges to the same answer.
std::vector<Tuple> EvalAggView(const datalog::AggViewSpec& spec,
                               const std::vector<Tuple>& view_tuples);

// Instantiates the runtime registered for `plan.kind`. InvalidArgument when
// `options` lacks the deployment parameters the plan needs.
StatusOr<std::unique_ptr<QueryRuntime>> InstantiateRuntime(
    const datalog::PlanSpec& plan, const EngineOptions& options);

// Extension point: future query shapes register a factory for their
// PlanKind instead of forking a runtime. Re-registering a kind replaces the
// builtin factory.
using RuntimeFactory = StatusOr<std::unique_ptr<QueryRuntime>> (*)(
    const datalog::PlanSpec& plan, const EngineOptions& options);
void RegisterRuntimeFactory(datalog::PlanKind kind, RuntimeFactory factory);

}  // namespace recnet

#endif  // RECNET_ENGINE_RUNTIME_REGISTRY_H_
