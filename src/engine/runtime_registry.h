#ifndef RECNET_ENGINE_RUNTIME_REGISTRY_H_
#define RECNET_ENGINE_RUNTIME_REGISTRY_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_table.h"
#include "common/status.h"
#include "common/value.h"
#include "datalog/planner.h"
#include "engine/runtime_base.h"
#include "engine/shortest_path_runtime.h"
#include "topology/sensor_grid.h"

namespace recnet {

class Session;

// Configuration of one compiled program (one view): the shared
// RuntimeOptions plus the deployment parameters a Datalog program cannot
// carry.
struct EngineOptions {
  RuntimeOptions runtime;
  // Initial number of network nodes for the graph-shaped plans (reachable /
  // shortest path). The node-id space is dynamic: facts mentioning unseen
  // node ids grow the topology, so 0 (start empty) is valid; negative is
  // not.
  int num_nodes = 0;
  // Aggregate-selection policy for the shortest-path runtime.
  AggSelPolicy aggsel = AggSelPolicy::kMulti;
  // Sensor deployment for region plans: defines the seed and proximity
  // EDBs. When unset, the deployment is derived from the program's ground
  // seed/near facts; InvalidArgument when neither is present.
  std::optional<SensorField> field;
};

// The uniform runtime interface every query shape is adapted onto: typed
// tuples in, Status / StatusOr out. Implementations wrap one of the
// distributed runtimes (ReachableRuntime, ShortestPathRuntime,
// RegionRuntime) and translate generic relation-name-keyed facts onto its
// native ingestion calls.
//
// View reads are served from materialized per-view caches: the first Scan
// of a view enumerates the runtime's partitions once (ScanView) and caches
// the rows (kept in sorted order); Lookup consults a lazily built flat hash
// index over the cached rows instead of a linear search.
//
// The caches maintain themselves incrementally: base-relation Insert /
// Delete only enqueue updates (view state cannot change before Apply), and
// Apply patches the cached rows and indexes from the run's view deltas —
// the runtime's log of tuples that entered or left the view — instead of
// rebuilding from scratch. Dependent (aggregate) view caches re-derive
// lazily from the patched recursive rows, never from a runtime sweep. The
// only full-rebuild paths are soft-state TTL expiry
// (InvalidateCachesForExpiry), aborted runs, and adapters that opt out of
// delta reporting.
class QueryRuntime {
 public:
  virtual ~QueryRuntime() = default;

  // Enqueues an insertion / deletion of `fact` into the named base
  // relation. Updates propagate on the next Apply().
  Status Insert(const std::string& relation, const Tuple& fact);
  Status Delete(const std::string& relation, const Tuple& fact);

  // Runs the distributed dataflow to fixpoint. ResourceExhausted when the
  // message or time budget was exceeded before convergence. Equivalent to
  // PrepareApply + ApplyUpdates + FinishApply; a Session coordinating
  // several co-resident views calls the three phases itself so every view's
  // delta log is armed before the shared queue drains.
  Status Apply();

  // Soft-state TTL expiry hook (called by the engine clock): drops every
  // materialized cache. Expiry-driven deletions renew base variables
  // outside the normal delta flow, so this stays a full rebuild.
  void InvalidateCachesForExpiry() { InvalidateViewCaches(); }

  // All tuples of the recursive view or of a declared aggregate view, in
  // deterministic (sorted) order. NotFound for unknown view names. Served
  // from the materialized cache after the first call.
  StatusOr<std::vector<Tuple>> Scan(const std::string& view) const;

  // First tuple of `view` whose leading columns equal `key` (the full tuple
  // for the recursive view, the group-by columns for an aggregate view).
  // Adapters may return auxiliary runtime-maintained columns beyond the
  // declared arity (the path runtime's vec / length attributes). The
  // default is a hash-index probe over the cached scan; adapters override
  // to surface native runtime state.
  virtual StatusOr<Tuple> Lookup(const std::string& view,
                                 const Tuple& key) const;

  // Provenance witness for a view tuple: one set of base facts that
  // supports it (absorption provenance only).
  virtual StatusOr<std::vector<Tuple>> Explain(const Tuple& view_tuple) const;

  virtual RunMetrics Metrics() const = 0;
  virtual void ResetMetrics() = 0;
  virtual bool converged() const = 0;
  virtual const RuntimeOptions& options() const = 0;

  // The wrapped distributed runtime, for session-level machinery that works
  // on the common runtime interface (checkpoint/restore walks each view's
  // RuntimeBase state). External factories may return nullptr; such views
  // cannot be checkpointed.
  virtual RuntimeBase* native_runtime() { return nullptr; }
  const RuntimeBase* native_runtime() const {
    return const_cast<QueryRuntime*>(this)->native_runtime();
  }

 protected:
  // --- Implementation interface (wrapped by the caching layer above) -------

  virtual Status InsertFact(const std::string& relation,
                            const Tuple& fact) = 0;
  virtual Status DeleteFact(const std::string& relation,
                            const Tuple& fact) = 0;
  virtual Status ApplyUpdates() = 0;
  // Enumerates `view` from runtime state (the expensive partition sweep the
  // cache amortizes away). Adapters must return rows in sorted order (all
  // runtimes enumerate sorted today); the cache keeps that invariant under
  // incremental patching.
  virtual StatusOr<std::vector<Tuple>> ScanView(
      const std::string& view) const = 0;

  // --- Incremental maintenance interface -----------------------------------

  // Name of the view whose cache the adapter can patch from run deltas
  // (the recursive view); empty disables incremental maintenance.
  virtual std::string IncrementalView() const { return std::string(); }
  // Arms / disarms the wrapped runtime's view-delta log. Called with true
  // right before ApplyUpdates whenever IncrementalView()'s cache is live.
  virtual void BeginViewDeltaLog(bool /*enabled*/) {}
  // Translates the armed run's delta log into exact rows removed from and
  // added to IncrementalView(). Returns false when the adapter cannot say
  // (the caching layer then falls back to full invalidation).
  virtual bool DrainViewDeltas(std::vector<Tuple>* removed,
                               std::vector<Tuple>* added) {
    (void)removed;
    (void)added;
    return false;
  }

  // Currently cached rows of `view` (nullptr when not materialized); lets
  // adapters diff run deltas against what readers have seen.
  const std::vector<Tuple>* CachedRows(const std::string& view) const;

  // Last-write-wins compression of a chronological membership log into
  // disjoint removed/added row sets (relative to the pre-run view).
  static void CompressDeltaLog(std::vector<std::pair<Tuple, bool>> log,
                               std::vector<Tuple>* removed,
                               std::vector<Tuple>* added);

  // For adapters whose native accessors mutate view state outside the
  // wrapped entry points, and for the TTL full-rebuild path.
  void InvalidateViewCaches() const { view_caches_.clear(); }

 private:
  friend class Session;

  // --- Session-coordinated Apply phases ------------------------------------
  //
  // One Apply over a shared substrate drains every co-resident view's
  // messages, so each view's cache maintenance must bracket the drain:
  // PrepareApply (arm the delta log while a cache is live) on every view
  // BEFORE the run, FinishApply (patch or invalidate) on every view after.

  void PrepareApply();
  Status FinishApply(Status run_status);

  struct ViewCache {
    // Sorted, deduplicated view rows (the Scan result).
    std::vector<Tuple> rows;
    // Lookup indexes, built lazily per probed key length: normalized key
    // prefix -> the first matching row in scan order. Patched in place by
    // ApplyRowDelta.
    std::unordered_map<size_t, FlatTable<Tuple, Tuple, TupleHash>> index;
  };

  // Returns the cache entry for `view`, materializing it via ScanView on
  // first use.
  StatusOr<ViewCache*> CacheFor(const std::string& view) const;

  // Patches `cache` (rows + live indexes) with the removed/added rows of
  // one Apply run.
  static void ApplyRowDelta(ViewCache* cache, std::vector<Tuple> removed,
                            std::vector<Tuple> added);

  mutable std::unordered_map<std::string, ViewCache> view_caches_;
  // Set by PrepareApply when the incremental view's cache is live (the
  // delta log is armed); consumed by FinishApply.
  bool patching_ = false;
};

// Evaluates a declared aggregate view over the scanned contents of the
// recursive view (group by group_cols, aggregate value_col). Results are
// sorted by group. Shared by the adapters; a runtime that maintains the
// aggregate distributedly (RegionRuntime) converges to the same answer.
std::vector<Tuple> EvalAggView(const datalog::AggViewSpec& spec,
                               const std::vector<Tuple>& view_tuples);

// Instantiates the runtime registered for `plan.kind` as a co-resident view
// of `session`: the runtime attaches to the session's substrate (shared
// router, BDD manager, node-id space) instead of building its own.
// InvalidArgument when `options` lacks the deployment parameters the plan
// needs.
StatusOr<std::unique_ptr<QueryRuntime>> InstantiateRuntime(
    const datalog::PlanSpec& plan, const EngineOptions& options,
    Session& session);

// Extension point: future query shapes register a factory for their
// PlanKind instead of forking a runtime. Factories receive the owning
// session and must attach their runtime to its substrate. Re-registering a
// kind replaces the builtin factory.
using RuntimeFactory = StatusOr<std::unique_ptr<QueryRuntime>> (*)(
    const datalog::PlanSpec& plan, const EngineOptions& options,
    Session& session);
void RegisterRuntimeFactory(datalog::PlanKind kind, RuntimeFactory factory);

}  // namespace recnet

#endif  // RECNET_ENGINE_RUNTIME_REGISTRY_H_
