#ifndef RECNET_ENGINE_RUNTIME_BASE_H_
#define RECNET_ENGINE_RUNTIME_BASE_H_

#include <atomic>
#include <iterator>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bdd/bdd.h"
#include "common/flat_table.h"
#include "common/status.h"
#include "engine/metrics.h"
#include "engine/substrate.h"
#include "net/router.h"
#include "operators/min_ship.h"
#include "operators/update.h"

namespace recnet {

namespace persist {
class SnapshotReader;
class SnapshotWriter;
}  // namespace persist

// Operator input ports shared by the query runtimes. These are *local*
// ports: on the wire they are offset by the runtime's port-namespace base
// (view v occupies absolute ports [v*Router::kPortsPerNamespace, ...)), so
// co-resident views never collide on one router.
inline constexpr int kPortJoinBuild = 0;  // Re-partitioned base tuples.
inline constexpr int kPortFix = 1;        // Recursive view stream.
inline constexpr int kPortKill = 2;       // Base-deletion notifications.
inline constexpr int kPortAgg = 3;        // Final aggregation deltas.

// Configuration of one distributed engine run.
struct RuntimeOptions {
  // Which view-maintenance strategy annotates tuples. kSet selects the
  // DRed baseline (over-delete + re-derive); the provenance modes delete
  // incrementally by zeroing base variables.
  ProvMode prov = ProvMode::kAbsorption;
  // MinShip policy (paper Section 5). Ignored in kSet mode (DRed ships
  // directly, like the conventional Ship operator).
  ShipMode ship = ShipMode::kLazy;
  // Eager-mode batching interval, in processed updates (the paper flushes
  // once a second; our discrete equivalent counts updates — 256 updates
  // approximates one wall-clock second of their cluster's message rate).
  size_t batch_window = 256;
  // Adaptive eager→lazy demotion ceiling for absorption provenance: when a
  // tuple's merged annotation in a MinShip exceeds this many live BDD
  // nodes, that operator drops to lazy semantics for the rest of the run
  // (no periodic eager flushes; buffered alternates ship only when a kill
  // promotes them), re-absorbing its buffer at each quiescent point.
  // Bounds the quadratic Or-churn eager mode pays on wide fan-in nodes;
  // 0 disables. Calibrated on the fig07 sweep: every converging eager
  // cell's merged annotations stay under 384 nodes (zero demotions ⇒
  // traffic bit-identical to the undemoted engine), while the one cell
  // that blew the 45 s budget (Absorption-Eager x=1) crosses it within
  // the first storms and converges in ~11 s demoted.
  size_t eager_demote_width = 512;
  // Physical peers the logical nodes are mapped onto (paper default: 12).
  // Substrate-level: when a runtime attaches to a shared Substrate, the
  // substrate's own deployment wins.
  int num_physical = 12;
  // Work budget: maximum message deliveries per Run(). Exceeding it marks
  // the run non-converged (the paper's "did not complete within 5 min").
  uint64_t message_budget = 50'000'000;
  // Wall-clock budget per Run() in seconds (0 = unlimited). The second half
  // of the paper's 5-minute cap: runs whose per-message work explodes
  // (e.g. eager propagation of huge annotations) are cut off and reported
  // as non-converged.
  double time_budget_s = 0;
  // Mean per-message latency for the simulated convergence estimate.
  double per_msg_latency_s = 0.0005;
  // Coalesce same-(dst, port) delivery runs into single handler batches.
  // Purely a dispatch-cost optimization: delivery order, results, and all
  // traffic counters except NetworkStats::batches are identical with it
  // off (kept as a switch for A/B measurement). Substrate-level, like
  // num_physical.
  bool batch_delivery = true;
  // Router shards the simulated network is partitioned across (see
  // SubstrateOptions::shards). 1 keeps the classic sequential drain; more
  // shards drain generations on parallel worker threads with bit-identical
  // results and traffic counters (except NetworkStats::batches).
  // Substrate-level, like num_physical.
  int shards = 1;
  // Fault injection (src/fault/fault.h): seeded worker-death / allocation
  // failures surface as non-converged runs with RuntimeBase::last_fault()
  // set (Session masks them via recovery); drop/dup rates arm the lossy
  // shard-boundary link mode. Substrate-level, like num_physical; default
  // is a fault-free plan. Deliberately NOT serialized into checkpoints —
  // faults describe the run, not the session's durable state.
  fault::FaultPlan faults;
};

// Common machinery of the distributed query runtimes: substrate access
// (router + BDD manager + base-variable allocation), the view-scoped port
// namespace, view-scoped deletion ("kill") routing, and run/metrics
// bookkeeping.
//
// A runtime either owns a private Substrate (the historical standalone
// construction: `ReachableRuntime rt(num_nodes, options)`) or attaches to a
// shared one as a co-resident view of a recnet::Session. In both cases it
// keeps its own kill-subscription tables, kill dedup sets, and metrics, so
// a view's observable behavior is independent of its neighbors.
//
// Deletion routing: when an update is shipped, the sender records, for each
// base variable in the update's provenance support, that the destination is
// a subscriber of that variable. When a base tuple is deleted, the kill
// follows those subscription edges (with per-node deduplication), so it
// reaches exactly the nodes whose state mentions the variable — the paper's
// observation that zeroing out p4 "only requires two message transmissions"
// while "deletions may need to be propagated to all nodes in the worst
// case" (Section 4).
class RuntimeBase {
 public:
  // Standalone: builds a private substrate of `num_logical` nodes (the
  // historical one-router-per-runtime construction).
  RuntimeBase(int num_logical, const RuntimeOptions& options);
  // Co-resident: attaches to `substrate` as one view spanning `num_logical`
  // of the substrate's nodes (the substrate grows to at least that many).
  RuntimeBase(std::shared_ptr<Substrate> substrate, int num_logical,
              const RuntimeOptions& options);
  virtual ~RuntimeBase();

  RuntimeBase(const RuntimeBase&) = delete;
  RuntimeBase& operator=(const RuntimeBase&) = delete;

  // Drains the substrate to quiescence (fixpoint), honoring the message
  // budget. On a shared substrate this drains every co-resident view's
  // pending messages too (they share one network); each view's handlers and
  // counters stay its own. Returns false if the budget was exhausted — in
  // that case only THIS view's queued envelopes are dropped (and uncharged)
  // and only this view is marked non-converged; co-resident views keep
  // their in-flight traffic and can finish on a later Apply.
  bool Run();

  // Metrics accumulated since construction (or the last ResetMetrics),
  // scoped to this view's traffic. If a run was aborted on budget
  // exhaustion, this returns the snapshot taken at abort time — the dropped
  // queue is already uncharged and operator state is frozen as of the
  // cutoff — so a figure cell for a ">budget" run is consistent no matter
  // when the bench reads it.
  RunMetrics Metrics() const;
  // Clears traffic and timing counters, e.g. to measure the deletion phase
  // separately from initial computation.
  void ResetMetrics();

  // --- Persistence ----------------------------------------------------------
  //
  // Snapshot round-trip of the view's mutable state: the base implementation
  // covers the shared machinery (kill-subscription routing, kill dedup sets,
  // relative-provenance pseudo-variables, run bookkeeping); runtime
  // subclasses override to append their operator state and MUST call the
  // base implementation first. LoadState requires a freshly constructed
  // runtime of the same program, options, and topology — it refuses (with
  // InvalidArgument) when the recorded shape disagrees.
  virtual void SaveState(persist::SnapshotWriter& w) const;
  virtual Status LoadState(persist::SnapshotReader& r);

  // --- View-delta log (incremental scan caches) -----------------------------
  //
  // When enabled, the runtime records every recursive-view membership
  // change — tuple entered (true) / left (false) the view — in
  // chronological order. The facade's caching layer turns the log into
  // patches for its materialized scan caches. Logging defaults to off so
  // runs without live caches (all benchmarks) never pay for it.
  //
  // Sharded drains keep one log per router shard (indexed by the worker's
  // Router::current_shard()), so parallel workers never contend; all events
  // for one tuple land in its owner node's shard log, preserving the
  // per-tuple chronology the caching layer's last-write-wins compression
  // needs.
  void SetViewDeltaLogging(bool enabled) {
    log_view_deltas_ = enabled;
    if (!enabled) {
      for (auto& log : view_delta_logs_) log.clear();
    }
  }
  std::vector<std::pair<Tuple, bool>> TakeViewDeltaLog() {
    if (view_delta_logs_.size() == 1) return std::move(view_delta_logs_[0]);
    std::vector<std::pair<Tuple, bool>> merged;
    size_t total = 0;
    for (const auto& log : view_delta_logs_) total += log.size();
    merged.reserve(total);
    for (auto& log : view_delta_logs_) {
      merged.insert(merged.end(), std::make_move_iterator(log.begin()),
                    std::make_move_iterator(log.end()));
      log.clear();
    }
    return merged;
  }

  Substrate& substrate() { return *sub_; }
  const std::shared_ptr<Substrate>& substrate_ptr() const { return sub_; }
  Router& router() { return sub_->router(); }
  const Router& router() const { return sub_->router(); }
  bdd::Manager* bdd_manager() { return sub_->bdd_manager(); }
  const RuntimeOptions& options() const { return opts_; }
  // Nodes this view spans (<= the substrate's logical node count when
  // co-resident with a larger view).
  int num_logical() const { return num_logical_; }
  int port_namespace() const { return ns_; }
  bool converged() const { return converged_; }
  // Non-empty when the last Run() was stopped by an injected infrastructure
  // fault (names the fault site). The run is incomplete but uncorrupted:
  // queues are intact, so recovery (or simply re-running) can finish it.
  const std::string& last_fault() const { return last_fault_; }

 protected:
  // Delivers a contiguous run of same-(dst, port) envelopes: every envelope
  // of a run targets the same logical node and operator input. The default
  // processes them in order through HandleEnvelope; the query runtimes
  // override to hoist the per-destination/per-port state lookups out of the
  // inner loop and apply the operator across the whole run.
  virtual void HandleBatch(const Envelope* envs, size_t n) {
    for (size_t i = 0; i < n; ++i) HandleEnvelope(envs[i]);
  }

  // Delivers one envelope to the runtime's operators.
  virtual void HandleEnvelope(const Envelope& env) = 0;

  // Hook called at quiescence; return true to continue draining (used by
  // DRed to start its re-derivation phase after over-deletion finishes).
  // On a shared substrate every attached view is polled each round.
  virtual bool AfterQuiescent() { return false; }

  // Called when the substrate's node-id space grows to `num_nodes`.
  // Graph-shaped runtimes override to extend their per-node state (and must
  // call GrowKillRouting); deployment-bound runtimes (region) keep their
  // fixed span and ignore it.
  virtual void OnTopologyGrown(int num_nodes) { (void)num_nodes; }

  // Extends the view's kill-routing tables (and num_logical()) to
  // `num_nodes`. Called by OnTopologyGrown overrides.
  void GrowKillRouting(int num_nodes);

  // Records one recursive-view membership change (no-op unless logging is
  // enabled). Runtimes call this at every point a tuple enters or leaves
  // their fixpoint view. Safe from parallel shard workers: each appends to
  // its own shard's log.
  void LogViewDelta(const Tuple& tuple, bool added) {
    if (log_view_deltas_) {
      view_delta_logs_[static_cast<size_t>(Router::current_shard())]
          .emplace_back(tuple, added);
    }
  }
  bool view_delta_logging() const { return log_view_deltas_; }

  // Total bytes of operator state across all logical nodes.
  virtual size_t StateSizeBytes() const = 0;

  // Total eager→lazy absorption demotions across the view's MinShips (see
  // RuntimeOptions::eager_demote_width). Runtimes with shipping operators
  // override; 0 means the view never crossed the width threshold.
  virtual uint64_t CountShipDemotions() const { return 0; }

  // --- Namespaced transport -------------------------------------------------
  //
  // All runtime traffic goes through these wrappers, which offset the local
  // operator port by the view's namespace base so co-resident views share
  // the router without port collisions (and so the router charges the
  // message to this view's stats).

  void Send(LogicalNode src, LogicalNode dst, int port, Update&& update) {
    sub_->router().Send(src, dst, port_base_ + port, std::move(update));
  }
  void SendBatch(LogicalNode src, LogicalNode dst, int port,
                 std::vector<Update> updates) {
    sub_->router().SendBatch(src, dst, port_base_ + port, std::move(updates));
  }
  // The local operator port of a delivered envelope.
  int LocalPort(const Envelope& env) const { return env.port - port_base_; }

  // --- Base-variable lifecycle ---------------------------------------------
  //
  // Variables come from the substrate's session-wide allocator, so
  // co-resident views sharing the BDD manager never collide. The dead set
  // lives on the substrate, but each view counts only its own kills: a
  // view's annotations never mention another view's variables, so its
  // GuardIncoming fast path must not degrade because a neighbor deleted
  // something.

  bdd::Var AllocVar() { return sub_->AllocVar(); }
  void MarkDead(bdd::Var v) {
    if (sub_->MarkDead(v)) num_dead_.fetch_add(1, std::memory_order_relaxed);
  }
  bool AnyDead() const {
    return num_dead_.load(std::memory_order_relaxed) > 0;
  }

  // Restricts an incoming annotation by any base variables that died while
  // the update was in flight, so late arrivals cannot resurrect state.
  Prov GuardIncoming(const Prov& pv) const;

  Prov TrueProv() { return Prov::True(opts_.prov, sub_->bdd_manager()); }
  Prov VarProv(bdd::Var v) {
    return Prov::BaseVar(opts_.prov, sub_->bdd_manager(), v);
  }

  // --- Shipping & kill routing ---------------------------------------------

  // Records destination `to` as a subscriber of every variable in `pv`'s
  // support, then sends the insert.
  void ShipInsert(LogicalNode from, LogicalNode to, int port, Tuple tuple,
                  Prov pv);

  // Starts a kill at `origin` (the deleted base tuple's home node).
  void StartKill(LogicalNode origin, std::vector<bdd::Var> killed);

  // Splits `killed` into variables this node has not yet processed, marks
  // them processed, and forwards them along subscription edges. Returns the
  // fresh set the caller should restrict its operators with.
  std::vector<bdd::Var> AcceptKill(LogicalNode at,
                                   const std::vector<bdd::Var>& killed);

  // --- Relative provenance (derivation-edge model) --------------------------
  //
  // The relative-provenance baseline [14] records, per view tuple, its
  // *immediate* derivations: each derivation references the base facts and
  // antecedent view tuples it fired from. We encode an antecedent reference
  // as a pseudo-variable owned by that tuple; a derivation is then a small
  // set {base vars} ∪ {tuple vars}, reusing the RelSop machinery while
  // keeping annotations polynomial (one entry per rule firing).
  //
  // Deletion semantics require a reachability ("derivability") test over
  // the derivation graph — the graph-traversal cost the paper attributes to
  // relative provenance. The kill cascade handles the acyclic part; cyclic
  // self-support (A derives B derives A) is detected by the global
  // least-fixpoint check below, run at quiescence.

  // The pseudo-variable standing for view tuple `t` (allocated on demand).
  bdd::Var TupleVar(const Tuple& t);
  // The singleton annotation {TupleVar(t)} used as a derivation reference.
  Prov RefProv(const Tuple& t);
  // Called when view tuple `t` (owned by `owner`) leaves the view: kills
  // its pseudo-variable so derivations referencing it die everywhere.
  void OnTupleRemoved(LogicalNode owner, const Tuple& t);

  struct ViewEntry {
    LogicalNode owner;
    const Tuple* tuple;
    const Prov* pv;
  };
  // Least-fixpoint derivability over the derivation graph: returns the view
  // entries that are *not* derivable from live base facts (i.e. only
  // supported through cycles) and must be force-removed.
  std::vector<std::pair<LogicalNode, Tuple>> FindUnderivable(
      const std::vector<ViewEntry>& view) const;

  RuntimeOptions opts_;

 private:
  friend class Substrate;

  // Substrate entry point (delivery dispatch).
  void DeliverBatch(const Envelope* envs, size_t n) { HandleBatch(envs, n); }

  // Drain-side budget abort: called by the shared drain's fair-share
  // arbitration the moment this view's own deliveries exhaust its message
  // budget. Purges (and uncharges) the view's queued traffic, marks it
  // non-converged, and freezes its metrics at the cutoff — exactly the
  // record a budget-aborted Run() used to produce, but scoped to this view
  // while co-resident views keep draining.
  void AbortForBudget();

  // The live metric computation behind Metrics(); bypassed once an abort
  // snapshot exists.
  RunMetrics ComputeMetrics() const;

  std::shared_ptr<Substrate> sub_;
  int ns_ = 0;         // Port namespace id on the substrate's router.
  int port_base_ = 0;  // ns_ * Router::kPortsPerNamespace.
  int num_logical_ = 0;
  // Variables THIS view killed (fast path for GuardIncoming; the full dead
  // set is the substrate's). Atomic: parallel shard workers kill
  // concurrently during a drain.
  std::atomic<size_t> num_dead_{0};
  // Relative mode: pseudo-variables standing for view tuples. Shard workers
  // allocate pseudo-variables concurrently mid-drain, so both tables are
  // guarded by tuple_vars_mu_. Which worker wins the find-or-alloc race is
  // schedule-dependent, but the *values* handed out come from the
  // substrate's per-shard interleaved id streams, so every observable
  // (traffic counters, scans, kill fan-out) stays deterministic.
  mutable std::mutex tuple_vars_mu_;
  FlatTable<Tuple, bdd::Var, TupleHash> tuple_vars_;
  std::unordered_map<bdd::Var, Tuple> var_tuples_;
  // Per logical node: variable -> destinations shipped annotations
  // mentioning it. View-scoped: co-resident views keep separate
  // subscription universes even though kills ride one router.
  std::vector<FlatTable<bdd::Var, std::vector<LogicalNode>>> subs_;
  // Per logical node: kills already applied.
  std::vector<std::unordered_set<bdd::Var>> kills_done_;
  double wall_seconds_ = 0;
  bool converged_ = true;
  // Fault site of the last faulted Run() (empty = no fault). Transient run
  // bookkeeping, not persisted state.
  std::string last_fault_;
  // Metrics frozen at the moment a run was cut off (budget exhaustion);
  // cleared by ResetMetrics.
  std::optional<RunMetrics> abort_metrics_;
  bool log_view_deltas_ = false;
  // One membership log per router shard (size >= 1; see LogViewDelta).
  std::vector<std::vector<std::pair<Tuple, bool>>> view_delta_logs_;
};

}  // namespace recnet

#endif  // RECNET_ENGINE_RUNTIME_BASE_H_
