#ifndef RECNET_ENGINE_RUNTIME_BASE_H_
#define RECNET_ENGINE_RUNTIME_BASE_H_

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bdd/bdd.h"
#include "common/flat_table.h"
#include "engine/metrics.h"
#include "net/router.h"
#include "operators/min_ship.h"
#include "operators/update.h"

namespace recnet {

// Operator input ports shared by the query runtimes.
inline constexpr int kPortJoinBuild = 0;  // Re-partitioned base tuples.
inline constexpr int kPortFix = 1;        // Recursive view stream.
inline constexpr int kPortKill = 2;       // Base-deletion notifications.
inline constexpr int kPortAgg = 3;        // Final aggregation deltas.

// Configuration of one distributed engine run.
struct RuntimeOptions {
  // Which view-maintenance strategy annotates tuples. kSet selects the
  // DRed baseline (over-delete + re-derive); the provenance modes delete
  // incrementally by zeroing base variables.
  ProvMode prov = ProvMode::kAbsorption;
  // MinShip policy (paper Section 5). Ignored in kSet mode (DRed ships
  // directly, like the conventional Ship operator).
  ShipMode ship = ShipMode::kLazy;
  // Eager-mode batching interval, in processed updates (the paper flushes
  // once a second; our discrete equivalent counts updates — 256 updates
  // approximates one wall-clock second of their cluster's message rate).
  size_t batch_window = 256;
  // Physical peers the logical nodes are mapped onto (paper default: 12).
  int num_physical = 12;
  // Work budget: maximum message deliveries per Run(). Exceeding it marks
  // the run non-converged (the paper's "did not complete within 5 min").
  uint64_t message_budget = 50'000'000;
  // Wall-clock budget per Run() in seconds (0 = unlimited). The second half
  // of the paper's 5-minute cap: runs whose per-message work explodes
  // (e.g. eager propagation of huge annotations) are cut off and reported
  // as non-converged.
  double time_budget_s = 0;
  // Mean per-message latency for the simulated convergence estimate.
  double per_msg_latency_s = 0.0005;
  // Coalesce same-(dst, port) delivery runs into single handler batches.
  // Purely a dispatch-cost optimization: delivery order, results, and all
  // traffic counters except NetworkStats::batches are identical with it
  // off (kept as a switch for A/B measurement).
  bool batch_delivery = true;
};

// Common machinery of the distributed query runtimes: the router, the BDD
// manager, base-variable allocation, deletion ("kill") routing, and run/
// metrics bookkeeping.
//
// Deletion routing: when an update is shipped, the sender records, for each
// base variable in the update's provenance support, that the destination is
// a subscriber of that variable. When a base tuple is deleted, the kill
// follows those subscription edges (with per-node deduplication), so it
// reaches exactly the nodes whose state mentions the variable — the paper's
// observation that zeroing out p4 "only requires two message transmissions"
// while "deletions may need to be propagated to all nodes in the worst
// case" (Section 4).
class RuntimeBase {
 public:
  RuntimeBase(int num_logical, const RuntimeOptions& options);
  virtual ~RuntimeBase() = default;

  RuntimeBase(const RuntimeBase&) = delete;
  RuntimeBase& operator=(const RuntimeBase&) = delete;

  // Drains the network to quiescence (fixpoint), honoring the message
  // budget. Returns false if the budget was exhausted.
  bool Run();

  // Metrics accumulated since construction (or the last ResetMetrics). If a
  // run was aborted on budget exhaustion, this returns the snapshot taken
  // at abort time — the dropped queue is already uncharged and operator
  // state is frozen as of the cutoff — so a figure cell for a ">budget" run
  // is consistent no matter when the bench reads it.
  RunMetrics Metrics() const;
  // Clears traffic and timing counters, e.g. to measure the deletion phase
  // separately from initial computation.
  void ResetMetrics();

  // --- View-delta log (incremental scan caches) -----------------------------
  //
  // When enabled, the runtime records every recursive-view membership
  // change — tuple entered (true) / left (false) the view — in
  // chronological order. The facade's caching layer turns the log into
  // patches for its materialized scan caches. Logging defaults to off so
  // runs without live caches (all benchmarks) never pay for it.
  void SetViewDeltaLogging(bool enabled) {
    log_view_deltas_ = enabled;
    if (!enabled) view_delta_log_.clear();
  }
  std::vector<std::pair<Tuple, bool>> TakeViewDeltaLog() {
    return std::move(view_delta_log_);
  }

  Router& router() { return router_; }
  const Router& router() const { return router_; }
  bdd::Manager* bdd_manager() { return &bdd_; }
  const RuntimeOptions& options() const { return opts_; }
  int num_logical() const { return router_.num_logical(); }
  bool converged() const { return converged_; }

 protected:
  // Delivers a contiguous run of same-(dst, port) envelopes: every envelope
  // of a run targets the same logical node and operator input. The default
  // processes them in order through HandleEnvelope; the query runtimes
  // override to hoist the per-destination/per-port state lookups out of the
  // inner loop and apply the operator across the whole run.
  virtual void HandleBatch(const Envelope* envs, size_t n) {
    for (size_t i = 0; i < n; ++i) HandleEnvelope(envs[i]);
  }

  // Delivers one envelope to the runtime's operators.
  virtual void HandleEnvelope(const Envelope& env) = 0;

  // Hook called at quiescence; return true to continue draining (used by
  // DRed to start its re-derivation phase after over-deletion finishes).
  virtual bool AfterQuiescent() { return false; }

  // Records one recursive-view membership change (no-op unless logging is
  // enabled). Runtimes call this at every point a tuple enters or leaves
  // their fixpoint view.
  void LogViewDelta(const Tuple& tuple, bool added) {
    if (log_view_deltas_) view_delta_log_.emplace_back(tuple, added);
  }
  bool view_delta_logging() const { return log_view_deltas_; }

  // Total bytes of operator state across all logical nodes.
  virtual size_t StateSizeBytes() const = 0;

  // --- Base-variable lifecycle ---------------------------------------------

  bdd::Var AllocVar();
  void MarkDead(bdd::Var v);
  bool AnyDead() const { return num_dead_ > 0; }

  // Restricts an incoming annotation by any base variables that died while
  // the update was in flight, so late arrivals cannot resurrect state.
  Prov GuardIncoming(const Prov& pv) const;

  Prov TrueProv() { return Prov::True(opts_.prov, &bdd_); }
  Prov VarProv(bdd::Var v) { return Prov::BaseVar(opts_.prov, &bdd_, v); }

  // --- Shipping & kill routing ---------------------------------------------

  // Records destination `to` as a subscriber of every variable in `pv`'s
  // support, then sends the insert.
  void ShipInsert(LogicalNode from, LogicalNode to, int port, Tuple tuple,
                  Prov pv);

  // Starts a kill at `origin` (the deleted base tuple's home node).
  void StartKill(LogicalNode origin, std::vector<bdd::Var> killed);

  // Splits `killed` into variables this node has not yet processed, marks
  // them processed, and forwards them along subscription edges. Returns the
  // fresh set the caller should restrict its operators with.
  std::vector<bdd::Var> AcceptKill(LogicalNode at,
                                   const std::vector<bdd::Var>& killed);

  // --- Relative provenance (derivation-edge model) --------------------------
  //
  // The relative-provenance baseline [14] records, per view tuple, its
  // *immediate* derivations: each derivation references the base facts and
  // antecedent view tuples it fired from. We encode an antecedent reference
  // as a pseudo-variable owned by that tuple; a derivation is then a small
  // set {base vars} ∪ {tuple vars}, reusing the RelSop machinery while
  // keeping annotations polynomial (one entry per rule firing).
  //
  // Deletion semantics require a reachability ("derivability") test over
  // the derivation graph — the graph-traversal cost the paper attributes to
  // relative provenance. The kill cascade handles the acyclic part; cyclic
  // self-support (A derives B derives A) is detected by the global
  // least-fixpoint check below, run at quiescence.

  // The pseudo-variable standing for view tuple `t` (allocated on demand).
  bdd::Var TupleVar(const Tuple& t);
  // The singleton annotation {TupleVar(t)} used as a derivation reference.
  Prov RefProv(const Tuple& t);
  // Called when view tuple `t` (owned by `owner`) leaves the view: kills
  // its pseudo-variable so derivations referencing it die everywhere.
  void OnTupleRemoved(LogicalNode owner, const Tuple& t);

  struct ViewEntry {
    LogicalNode owner;
    const Tuple* tuple;
    const Prov* pv;
  };
  // Least-fixpoint derivability over the derivation graph: returns the view
  // entries that are *not* derivable from live base facts (i.e. only
  // supported through cycles) and must be force-removed.
  std::vector<std::pair<LogicalNode, Tuple>> FindUnderivable(
      const std::vector<ViewEntry>& view) const;

  RuntimeOptions opts_;
  bdd::Manager bdd_;
  Router router_;

 private:
  // The live metric computation behind Metrics(); bypassed once an abort
  // snapshot exists.
  RunMetrics ComputeMetrics() const;

  std::vector<bool> dead_;
  size_t num_dead_ = 0;
  // Scratch for provenance-support extraction on the per-message path
  // (GuardIncoming / ShipInsert): reused so the common case allocates
  // nothing. Mutable because GuardIncoming is const.
  mutable std::vector<bdd::Var> support_scratch_;
  mutable std::vector<bdd::Var> dead_scratch_;
  // Relative mode: pseudo-variables standing for view tuples.
  FlatTable<Tuple, bdd::Var, TupleHash> tuple_vars_;
  std::unordered_map<bdd::Var, Tuple> var_tuples_;
  // Per logical node: variable -> destinations shipped annotations
  // mentioning it.
  std::vector<FlatTable<bdd::Var, std::vector<LogicalNode>>> subs_;
  // Per logical node: kills already applied.
  std::vector<std::unordered_set<bdd::Var>> kills_done_;
  double wall_seconds_ = 0;
  bool converged_ = true;
  // Metrics frozen at the moment a run was cut off (budget exhaustion);
  // cleared by ResetMetrics.
  std::optional<RunMetrics> abort_metrics_;
  bool log_view_deltas_ = false;
  std::vector<std::pair<Tuple, bool>> view_delta_log_;
};

}  // namespace recnet

#endif  // RECNET_ENGINE_RUNTIME_BASE_H_
