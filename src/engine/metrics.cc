#include "engine/metrics.h"

#include <sstream>

namespace recnet {

std::string RunMetrics::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << "prov_B/tuple=" << per_tuple_prov_bytes << " comm_MB=" << comm_mb
     << " state_MB=" << state_mb << " time_s=" << wall_seconds
     << " sim_s=" << sim_seconds << " msgs=" << messages;
  if (link_dropped > 0 || link_duplicated > 0) {
    os << " [lossy: " << link_dropped << " dropped, " << link_retried
       << " retried, " << link_duplicated << " duplicated]";
  }
  if (recoveries > 0) {
    os << " [recovered " << recoveries << " time(s)]";
  }
  if (ship_demotions > 0) {
    os << " [eager demoted " << ship_demotions << " time(s)]";
  }
  if (!converged) {
    os << " [budget exceeded: " << aborted_runs << " aborted run(s), "
       << dropped_messages << " dropped msg(s)]";
  }
  return os.str();
}

double EstimateSimSeconds(double wall_seconds, uint64_t cross_messages,
                          int num_physical, double per_msg_latency_s) {
  double compute = wall_seconds / num_physical;
  double latency = per_msg_latency_s * static_cast<double>(cross_messages) /
                   num_physical;
  return compute + latency;
}

}  // namespace recnet
