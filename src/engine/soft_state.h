#ifndef RECNET_ENGINE_SOFT_STATE_H_
#define RECNET_ENGINE_SOFT_STATE_H_

#include <map>
#include <vector>

#include "common/logging.h"
#include "common/value.h"

namespace recnet {

// Soft-state window over base tuples (paper §3.1): every base tuple carries
// a time-to-live; advancing the clock past a tuple's deadline expires it,
// and the expiration is processed as an ordinary deletion ("a base tuple
// that results from an insertion may receive an associated timeout, after
// which the tuple gets deleted"). Windows apply to base data only, never to
// derived tuples (§4.3.3).
//
// SoftStateClock tracks (tuple -> deadline) and hands back the expired
// tuples as the clock advances; the owner turns them into DeleteLink /
// Untrigger calls. Renewing (re-inserting) a live tuple extends its
// deadline, the soft-state refresh idiom of [26].
class SoftStateClock {
 public:
  SoftStateClock() = default;

  double now() const { return now_; }
  size_t live() const { return deadline_of_.size(); }

  // Registers (or renews) `tuple` to expire at now + ttl.
  void Insert(const Tuple& tuple, double ttl) {
    RECNET_CHECK_GT(ttl, 0.0);
    Remove(tuple);
    double deadline = now_ + ttl;
    deadline_of_[tuple] = deadline;
    by_deadline_.emplace(deadline, tuple);
  }

  // Explicit deletion before expiry.
  void Remove(const Tuple& tuple) {
    auto it = deadline_of_.find(tuple);
    if (it == deadline_of_.end()) return;
    auto range = by_deadline_.equal_range(it->second);
    for (auto dit = range.first; dit != range.second; ++dit) {
      if (dit->second == tuple) {
        by_deadline_.erase(dit);
        break;
      }
    }
    deadline_of_.erase(it);
  }

  bool Contains(const Tuple& tuple) const {
    return deadline_of_.find(tuple) != deadline_of_.end();
  }

  // Advances the clock and returns the tuples whose windows closed, in
  // deadline order (deterministic for equal deadlines by insertion order).
  std::vector<Tuple> AdvanceTo(double t) {
    RECNET_CHECK_GE(t, now_);
    now_ = t;
    std::vector<Tuple> expired;
    while (!by_deadline_.empty() && by_deadline_.begin()->first <= now_) {
      expired.push_back(by_deadline_.begin()->second);
      deadline_of_.erase(by_deadline_.begin()->second);
      by_deadline_.erase(by_deadline_.begin());
    }
    return expired;
  }

  // --- Snapshot hooks -------------------------------------------------------

  // Deadlines in expiry order (ties in insertion order); the session
  // serializer walks this and replays it through RestoreDeadline, which
  // appends equal keys at the upper bound — the same relative order Insert
  // produces — so a restored clock expires tuples in the identical sequence.
  const std::multimap<double, Tuple>& deadlines() const {
    return by_deadline_;
  }

  void RestoreNow(double now) {
    RECNET_CHECK(deadline_of_.empty());
    now_ = now;
  }

  void RestoreDeadline(double deadline, const Tuple& tuple) {
    deadline_of_[tuple] = deadline;
    by_deadline_.emplace(deadline, tuple);
  }

 private:
  double now_ = 0;
  std::map<Tuple, double> deadline_of_;
  std::multimap<double, Tuple> by_deadline_;
};

}  // namespace recnet

#endif  // RECNET_ENGINE_SOFT_STATE_H_
