#ifndef RECNET_ENGINE_METRICS_H_
#define RECNET_ENGINE_METRICS_H_

#include <cstdint>
#include <string>

#include "net/router.h"

namespace recnet {

// Metrics of one experiment run, matching the four panels that every figure
// in the paper's evaluation reports (Section 7.1).
struct RunMetrics {
  // (a) Per-tuple provenance overhead, bytes.
  double per_tuple_prov_bytes = 0;
  // (b) Communication overhead, MB (cross-physical-peer traffic).
  double comm_mb = 0;
  // (c) State within operators, MB.
  double state_mb = 0;
  // (d) Convergence time, seconds. Wall-clock of the single-threaded
  // simulation (the dominating compute cost), plus a simulated
  // parallel-time estimate when physical peers vary (Figure 13).
  double wall_seconds = 0;
  double sim_seconds = 0;

  uint64_t messages = 0;
  uint64_t kill_messages = 0;
  // Delivery batches dispatched (same-destination runs); equals deliveries
  // when batching is disabled.
  uint64_t batches = 0;
  // Budget-exhaustion record: how many runs were cut off before quiescence
  // and how many queued messages were discarded when that happened. A
  // non-converged figure cell ("did not complete") always has
  // aborted_runs > 0, so the abort is explicit rather than inferred.
  uint64_t aborted_runs = 0;
  uint64_t dropped_messages = 0;
  // Lossy-link workload counters (zero on a lossless run): shard-boundary
  // envelopes the seeded fault injector dropped / duplicated, and how many
  // of the drops were later retried to delivery. Note the distinction from
  // dropped_messages above, which counts *budget-abort* discards.
  uint64_t link_dropped = 0;
  uint64_t link_duplicated = 0;
  uint64_t link_retried = 0;
  // Crash recoveries the session performed while (re-)running this view's
  // updates (0 outside the fault-tolerant Apply path).
  uint64_t recoveries = 0;
  bool converged = true;

  // Concurrent BDD manager observability (manager-wide — co-resident views
  // share one manager, so these are substrate totals, not per-view):
  // contended first acquisitions of a unique-table stripe lock, op-cache
  // hit rate across all worker slots, and node-store segments allocated.
  // Transient diagnostics: sampled live from the manager, deliberately NOT
  // serialized into checkpoint metrics (the v2 snapshot format is stable).
  uint64_t bdd_stripe_contention = 0;
  double bdd_cache_hit_rate = 0;
  uint64_t bdd_store_segments = 0;
  // Eager→lazy absorption demotions across this view's MinShips (see
  // RuntimeOptions::eager_demote_width). Like the bdd_* fields above, a
  // live diagnostic that is not serialized into checkpoint metrics.
  uint64_t ship_demotions = 0;

  std::string ToString() const;
};

// Derives a parallel-convergence estimate from traffic accounting: the
// single-threaded work divides across `num_physical` peers, while every
// cross-peer message adds latency (`per_msg_latency_s`) amortized across
// peers that communicate concurrently.
double EstimateSimSeconds(double wall_seconds, uint64_t cross_messages,
                          int num_physical, double per_msg_latency_s);

}  // namespace recnet

#endif  // RECNET_ENGINE_METRICS_H_
