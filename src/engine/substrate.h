#ifndef RECNET_ENGINE_SUBSTRATE_H_
#define RECNET_ENGINE_SUBSTRATE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "fault/fault.h"
#include "net/router.h"

namespace recnet {

class RuntimeBase;

// Deployment parameters of the shared substrate (they describe the network,
// not any one view, so they are fixed per substrate rather than per
// runtime).
struct SubstrateOptions {
  // Physical peers the logical nodes are mapped onto (paper default: 12).
  int num_physical = 12;
  // Coalesce same-(dst, port) delivery runs into single handler batches.
  bool batch_delivery = true;
  // Router shards the logical node-id space is partitioned across. With
  // more than one shard the drain becomes a superstep loop whose shards
  // run on parallel worker threads (every provenance mode, relative
  // included: tuple variables come from per-shard id streams and kill
  // visibility is published at superstep barriers); results and traffic
  // counters are bit-identical for every shard count.
  int shards = 1;
  // Fault injection: when `injector` is set it is shared with the caller
  // (Session keeps one injector across substrate rebuilds so the fault
  // clock survives recovery); otherwise a private injector is built from
  // `faults` when that plan enables anything.
  std::shared_ptr<fault::FaultInjector> injector;
  fault::FaultPlan faults;
};

// The shared execution substrate of one session: a single sharded Router, a
// single BDD manager, a session-wide base-variable space, and a dynamic
// logical node-id space. One or more distributed runtimes attach to it as
// co-resident views; each attached runtime is assigned a router port
// namespace so its messages interleave with the others' on the one network
// without collisions, and each keeps its own NetworkStats.
//
// A standalone runtime (the pre-session construction path used by tests and
// benchmarks) owns a private Substrate with exactly one attached view,
// which makes its behavior — message for message and counter for counter —
// identical to the historical one-router-per-runtime design.
class Substrate {
 public:
  Substrate(int num_nodes, const SubstrateOptions& options);
  ~Substrate();

  Substrate(const Substrate&) = delete;
  Substrate& operator=(const Substrate&) = delete;

  Router& router() { return router_; }
  const Router& router() const { return router_; }
  bdd::Manager* bdd_manager() { return &bdd_; }

  int num_logical() const { return router_.num_logical(); }

  // --- Dynamic node-id space ------------------------------------------------

  // Grows the logical node-id space to at least `num_nodes` (no-op when the
  // space is already that large) and notifies every attached runtime so
  // graph-shaped views extend their per-node state. Late base facts that
  // mention unseen node ids route through here instead of erroring. New
  // nodes land on shard (id % shards), so growth never rebalances existing
  // nodes' queues or state.
  void EnsureNodes(int num_nodes);

  // --- Session-wide base-variable space -------------------------------------
  //
  // Variables are allocated from per-shard interleaved id streams: the
  // stream of router shard s hands out ids k*S + s (S = shard count, fixed
  // at construction), and a caller draws from the stream of the shard it is
  // running on (Router::current_shard(); external callers — fact ingestion,
  // AfterQuiescent — use stream 0). Within a stream ids are monotone in
  // allocation order, so a view's variables keep their relative order and
  // its BDDs stay isomorphic to a private-manager build; across streams the
  // interleaving lets relative-provenance views allocate tuple variables
  // from parallel shard workers with no lock and no schedule dependence. At
  // S == 1 the scheme degenerates to the classic sequential counter. Id
  // VALUES differ across shard counts, but no observable (traffic counters,
  // wire sizes, Scan results) depends on them — only the tuple↔variable
  // bijection and per-stream order do.

  bdd::Var AllocVar();

  // Dead-variable set with epoch-quantized visibility. A kill marked while
  // a delivery generation is in flight (Router::draining()) is *staged*: it
  // becomes visible to is_dead() only at the next generation boundary (or
  // at quiescence), uniformly for every shard count — immediate visibility
  // inside a generation would depend on the parallel schedule. Kills marked
  // outside a generation (fact deletion, AfterQuiescent sweeps) are visible
  // immediately, as before. Returns true when `v` was newly marked (callers
  // keep per-view dead counts for their fast paths); safe from parallel
  // shard workers.
  bool MarkDead(bdd::Var v);
  bool is_dead(bdd::Var v) const {
    if ((v >> kDeadChunkBits) >= kMaxDeadChunks) return false;
    const std::atomic<uint32_t>* chunk =
        dead_chunks_[v >> kDeadChunkBits].load(std::memory_order_acquire);
    if (chunk == nullptr) return false;
    uint32_t t = chunk[v & kDeadChunkMask].load(std::memory_order_relaxed);
    // Stored value is epoch-at-mark + 1 (0 = alive). Visible once the
    // current epoch has passed it: staged marks carry epoch + 1 and so stay
    // hidden until the epoch advances at a barrier.
    return t != 0 && static_cast<uint64_t>(t) <= dead_epoch() + 1;
  }
  bool AnyDead() const {
    return num_dead_.load(std::memory_order_relaxed) > 0;
  }

  // Snapshot hooks for the allocator. The byte vector has one entry per id
  // below the allocation watermark: 0 = alive (or an unallocated hole of an
  // interleaved stream), 1 = dead and visible, 2 = dead but still staged
  // (marked mid-generation, not yet published at a barrier) — so a
  // micro-checkpoint taken between generations round-trips visibility
  // exactly. Restore requires a virgin substrate and re-seeds every id
  // stream past the watermark, for any shard count.
  std::vector<char> dead_vars() const;
  void RestoreDeadVars(std::vector<char> dead);

  // --- View registration ----------------------------------------------------

  // Attaches `runtime` as a co-resident view and returns its port-namespace
  // id (0 for the first view). Delivery batches whose ports fall in that
  // namespace are dispatched to the runtime's handler.
  int Attach(RuntimeBase* runtime);
  // Unregisters a runtime (called from ~RuntimeBase). Its namespace id is
  // retired, never reused.
  void Detach(RuntimeBase* runtime);

  // --- Shared drain loop ----------------------------------------------------

  struct DrainBudget {
    // The initiating view's message budget (kept for the time-cap plumbing;
    // message arbitration is per attached view, see DrainToFixpoint).
    uint64_t message_budget = 0;
    // Wall-clock cap in seconds (0 = unlimited).
    double time_budget_s = 0;
  };

  struct DrainOutcome {
    // The initiator's wall-clock budget expired (the drain stopped; nothing
    // was purged — the caller decides who pays, as before).
    bool timed_out = false;
    // An injected infrastructure fault (worker death / allocation failure)
    // fired: the drain stopped at a generation boundary with queues intact.
    // `fault_site` names the fault for diagnostics. Session's recovery path
    // restores the last micro-checkpoint and re-drains.
    bool faulted = false;
    std::string fault_site;
    // Views whose own message budgets ran out during the drain. Each was
    // aborted in place (queued traffic purged and uncharged, metrics frozen
    // via RuntimeBase::AbortForBudget); co-resident views kept draining.
    std::vector<int> aborted;
  };

  // Drains the shared network to session-wide quiescence, then polls every
  // attached runtime's AfterQuiescent hook (DRed re-derivation,
  // relative-mode derivability sweeps) and keeps draining until no view
  // seeds more work. On a single-shard substrate this is the classic
  // sequential FIFO drain, bit-for-bit; on a sharded substrate it is a
  // superstep loop whose generations drain on parallel workers for every
  // provenance mode (relative views allocate tuple variables from
  // per-shard id streams and their kills publish at barriers, so they no
  // longer serialize the schedule).
  //
  // Message budgets are arbitrated per view: each attached runtime is
  // charged for the deliveries *it* received (Router::DeliveredByNs against
  // a baseline taken at drain entry) against its own message_budget, so one
  // view's runaway fixpoint can no longer starve or falsely abort a
  // co-resident view sharing the drain. A view that exhausts its budget is
  // aborted immediately — exactly the cutoff semantics a solo run had —
  // while the drain continues for the survivors.
  DrainOutcome DrainToFixpoint(const DrainBudget& budget);

  // --- Fault injection ------------------------------------------------------

  // The substrate's fault injector (null on a lossless, fault-free
  // substrate). Owned jointly with the Session that threads it through
  // rebuilds.
  fault::FaultInjector* fault_injector() const { return injector_.get(); }

  // Installs a barrier hook the drain loops call every `interval`
  // generations (superstep barriers on a sharded drain, delivery rounds on
  // the sequential one) with all workers joined — Session points it at its
  // micro-checkpoint capture. interval == 0 disables periodic invocation.
  void set_barrier_hook(std::function<void()> hook, uint64_t interval) {
    barrier_hook_ = std::move(hook);
    hook_interval_ = interval;
    gens_since_hook_ = 0;
  }

 private:
  // Per-drain budget bookkeeping: one slot per namespace, baselines taken at
  // drain entry so a view is charged only for what this drain delivered to
  // it.
  struct ViewBudget {
    RuntimeBase* rt = nullptr;
    uint64_t base = 0;
    uint64_t budget = 0;
  };
  struct Arbitration {
    std::vector<ViewBudget> views;
    // Indexed by namespace; doubles as the PollAfterQuiescent skip set.
    std::vector<char> aborted;
  };
  Arbitration BeginArbitration() const;
  // Aborts every live view at or over its budget (purge + frozen metrics via
  // AbortForBudget) and records it in `out`. Run between delivery steps and
  // once more at quiescence, so a view stops at exactly the delivery count a
  // solo drain would have stopped at.
  void EnforceBudgets(Arbitration* arb, DrainOutcome* out);
  // Deliveries possible before the tightest surviving view reaches its
  // budget; delivery steps are clipped to this so no view overshoots.
  uint64_t StepCapacity(const Arbitration& arb) const;

  void Dispatch(const Envelope* envs, size_t n);
  // Polls AfterQuiescent on every live view not marked in `skip_aborted`
  // (budget-aborted views must not seed new work for a drain that just
  // discarded their queues).
  bool PollAfterQuiescent(const std::vector<char>& skip_aborted);
  // The pre-sharding sequential drain (single-shard fast path).
  DrainOutcome DrainSequential(const DrainBudget& budget);
  // Superstep drain across router shards.
  DrainOutcome DrainSupersteps(const DrainBudget& budget);
  // Ticks the injector's generation clock and polls the coordinator-side
  // infrastructure faults. Returns true (and fills `out`) when one fired —
  // the drain stops with queues intact so recovery can roll back.
  bool PollFault(DrainOutcome* out);
  // Invokes the barrier hook every hook_interval_ generations (workers
  // joined at the call site).
  void MaybeBarrierHook();

  // The dead-variable visibility epoch: router generation merges plus
  // quiescence points, both shard-count-invariant BSP boundaries. Advances
  // only with workers joined, so it is stable within a generation.
  uint64_t dead_epoch() const {
    return router_.generations_begun() + quiesce_epochs_;
  }
  // The slot holding variable v's mark, materializing its chunk on first
  // use (chunk allocation is double-checked under a spinlock; published
  // chunks never move, so readers need only the acquire load in is_dead).
  std::atomic<uint32_t>& DeadSlot(bdd::Var v);
  // Allocation watermark: one past the highest id any stream has handed
  // out (ids below it from less-advanced streams are unallocated holes).
  uint64_t VarWatermark() const;

  // Declaration order is load-bearing: queued Envelopes hold Prov handles
  // into bdd_, so the router (destroyed first, in reverse order) must be
  // declared after the manager.
  bdd::Manager bdd_;
  Router router_;
  // Attached runtimes, indexed by namespace id (nullptr once detached).
  std::vector<RuntimeBase*> runtimes_;
  // Dead-variable store: a fixed spine of lazily allocated chunks of
  // per-variable epoch marks (0 = alive). Chunks are append-only and never
  // move, so parallel workers mark and query without locks while other
  // streams allocate.
  static constexpr size_t kDeadChunkBits = 12;
  static constexpr size_t kDeadChunkSize = size_t{1} << kDeadChunkBits;
  static constexpr size_t kDeadChunkMask = kDeadChunkSize - 1;
  static constexpr size_t kMaxDeadChunks = size_t{1} << 12;  // 16M variables.
  std::array<std::atomic<std::atomic<uint32_t>*>, kMaxDeadChunks>
      dead_chunks_{};
  std::atomic<bool> dead_alloc_lock_{false};
  std::atomic<size_t> num_dead_{0};
  // Per-shard variable-stream counters: stream s has handed out ids
  // k*S + s for k < next_k_[s]. Each stream is only advanced by its own
  // shard's worker (or the coordinator, for stream 0), so no atomics.
  std::vector<uint64_t> next_k_;
  // Quiescence epochs folded into dead_epoch() (bumped once per
  // PollAfterQuiescent round, identically on both drain paths).
  uint64_t quiesce_epochs_ = 0;
  // Fault injection (null when the options enabled none).
  std::shared_ptr<fault::FaultInjector> injector_;
  std::function<void()> barrier_hook_;
  uint64_t hook_interval_ = 0;
  uint64_t gens_since_hook_ = 0;
};

}  // namespace recnet

#endif  // RECNET_ENGINE_SUBSTRATE_H_
