#ifndef RECNET_ENGINE_SUBSTRATE_H_
#define RECNET_ENGINE_SUBSTRATE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "fault/fault.h"
#include "net/router.h"

namespace recnet {

class RuntimeBase;

// Deployment parameters of the shared substrate (they describe the network,
// not any one view, so they are fixed per substrate rather than per
// runtime).
struct SubstrateOptions {
  // Physical peers the logical nodes are mapped onto (paper default: 12).
  int num_physical = 12;
  // Coalesce same-(dst, port) delivery runs into single handler batches.
  bool batch_delivery = true;
  // Router shards the logical node-id space is partitioned across. With
  // more than one shard the drain becomes a superstep loop whose shards
  // run on parallel worker threads (serialized — but still sharded — when
  // a relative-provenance view is attached); results and traffic counters
  // are bit-identical for every shard count.
  int shards = 1;
  // Fault injection: when `injector` is set it is shared with the caller
  // (Session keeps one injector across substrate rebuilds so the fault
  // clock survives recovery); otherwise a private injector is built from
  // `faults` when that plan enables anything.
  std::shared_ptr<fault::FaultInjector> injector;
  fault::FaultPlan faults;
};

// The shared execution substrate of one session: a single sharded Router, a
// single BDD manager, a session-wide base-variable space, and a dynamic
// logical node-id space. One or more distributed runtimes attach to it as
// co-resident views; each attached runtime is assigned a router port
// namespace so its messages interleave with the others' on the one network
// without collisions, and each keeps its own NetworkStats.
//
// A standalone runtime (the pre-session construction path used by tests and
// benchmarks) owns a private Substrate with exactly one attached view,
// which makes its behavior — message for message and counter for counter —
// identical to the historical one-router-per-runtime design.
class Substrate {
 public:
  Substrate(int num_nodes, const SubstrateOptions& options);

  Substrate(const Substrate&) = delete;
  Substrate& operator=(const Substrate&) = delete;

  Router& router() { return router_; }
  const Router& router() const { return router_; }
  bdd::Manager* bdd_manager() { return &bdd_; }

  int num_logical() const { return router_.num_logical(); }

  // --- Dynamic node-id space ------------------------------------------------

  // Grows the logical node-id space to at least `num_nodes` (no-op when the
  // space is already that large) and notifies every attached runtime so
  // graph-shaped views extend their per-node state. Late base facts that
  // mention unseen node ids route through here instead of erroring. New
  // nodes land on shard (id % shards), so growth never rebalances existing
  // nodes' queues or state.
  void EnsureNodes(int num_nodes);

  // --- Session-wide base-variable space -------------------------------------
  //
  // Base variables are allocated from one counter so co-resident views can
  // share the BDD manager without id collisions; each view's variables keep
  // their relative allocation order, which keeps its annotations isomorphic
  // to the ones it would build on a private manager.

  bdd::Var AllocVar();
  // Returns true when `v` was newly marked (callers keep per-view dead
  // counts for their fast paths).
  bool MarkDead(bdd::Var v);
  bool is_dead(bdd::Var v) const {
    return v < dead_.size() && dead_[v] != 0;
  }
  bool AnyDead() const { return num_dead_ > 0; }

  // Snapshot hooks for the allocator: the dead-variable byte vector IS the
  // allocation state (its length is the next variable id), so a checkpoint
  // stores it verbatim and a restore reinstates it before any view state is
  // decoded.
  const std::vector<char>& dead_vars() const { return dead_; }
  void RestoreDeadVars(std::vector<char> dead);

  // --- View registration ----------------------------------------------------

  // Attaches `runtime` as a co-resident view and returns its port-namespace
  // id (0 for the first view). Delivery batches whose ports fall in that
  // namespace are dispatched to the runtime's handler.
  int Attach(RuntimeBase* runtime);
  // Unregisters a runtime (called from ~RuntimeBase). Its namespace id is
  // retired, never reused.
  void Detach(RuntimeBase* runtime);

  // --- Shared drain loop ----------------------------------------------------

  struct DrainBudget {
    // The initiating view's message budget (kept for the time-cap plumbing;
    // message arbitration is per attached view, see DrainToFixpoint).
    uint64_t message_budget = 0;
    // Wall-clock cap in seconds (0 = unlimited).
    double time_budget_s = 0;
  };

  struct DrainOutcome {
    // The initiator's wall-clock budget expired (the drain stopped; nothing
    // was purged — the caller decides who pays, as before).
    bool timed_out = false;
    // An injected infrastructure fault (worker death / allocation failure)
    // fired: the drain stopped at a generation boundary with queues intact.
    // `fault_site` names the fault for diagnostics. Session's recovery path
    // restores the last micro-checkpoint and re-drains.
    bool faulted = false;
    std::string fault_site;
    // Views whose own message budgets ran out during the drain. Each was
    // aborted in place (queued traffic purged and uncharged, metrics frozen
    // via RuntimeBase::AbortForBudget); co-resident views kept draining.
    std::vector<int> aborted;
  };

  // Drains the shared network to session-wide quiescence, then polls every
  // attached runtime's AfterQuiescent hook (DRed re-derivation,
  // relative-mode derivability sweeps) and keeps draining until no view
  // seeds more work. On a single-shard substrate this is the classic
  // sequential FIFO drain, bit-for-bit; on a sharded substrate it is a
  // superstep loop whose generations drain on parallel workers when every
  // attached view tolerates it (relative-provenance views allocate tuple
  // variables mid-drain, so their presence serializes the schedule — the
  // sharded structure and results are unchanged).
  //
  // Message budgets are arbitrated per view: each attached runtime is
  // charged for the deliveries *it* received (Router::DeliveredByNs against
  // a baseline taken at drain entry) against its own message_budget, so one
  // view's runaway fixpoint can no longer starve or falsely abort a
  // co-resident view sharing the drain. A view that exhausts its budget is
  // aborted immediately — exactly the cutoff semantics a solo run had —
  // while the drain continues for the survivors.
  DrainOutcome DrainToFixpoint(const DrainBudget& budget);

  // --- Fault injection ------------------------------------------------------

  // The substrate's fault injector (null on a lossless, fault-free
  // substrate). Owned jointly with the Session that threads it through
  // rebuilds.
  fault::FaultInjector* fault_injector() const { return injector_.get(); }

  // Installs a barrier hook the drain loops call every `interval`
  // generations (superstep barriers on a sharded drain, delivery rounds on
  // the sequential one) with all workers joined — Session points it at its
  // micro-checkpoint capture. interval == 0 disables periodic invocation.
  void set_barrier_hook(std::function<void()> hook, uint64_t interval) {
    barrier_hook_ = std::move(hook);
    hook_interval_ = interval;
    gens_since_hook_ = 0;
  }

 private:
  // Per-drain budget bookkeeping: one slot per namespace, baselines taken at
  // drain entry so a view is charged only for what this drain delivered to
  // it.
  struct ViewBudget {
    RuntimeBase* rt = nullptr;
    uint64_t base = 0;
    uint64_t budget = 0;
  };
  struct Arbitration {
    std::vector<ViewBudget> views;
    // Indexed by namespace; doubles as the PollAfterQuiescent skip set.
    std::vector<char> aborted;
  };
  Arbitration BeginArbitration() const;
  // Aborts every live view at or over its budget (purge + frozen metrics via
  // AbortForBudget) and records it in `out`. Run between delivery steps and
  // once more at quiescence, so a view stops at exactly the delivery count a
  // solo drain would have stopped at.
  void EnforceBudgets(Arbitration* arb, DrainOutcome* out);
  // Deliveries possible before the tightest surviving view reaches its
  // budget; delivery steps are clipped to this so no view overshoots.
  uint64_t StepCapacity(const Arbitration& arb) const;

  void Dispatch(const Envelope* envs, size_t n);
  // Polls AfterQuiescent on every live view not marked in `skip_aborted`
  // (budget-aborted views must not seed new work for a drain that just
  // discarded their queues).
  bool PollAfterQuiescent(const std::vector<char>& skip_aborted);
  // The pre-sharding sequential drain (single-shard fast path).
  DrainOutcome DrainSequential(const DrainBudget& budget);
  // Superstep drain across router shards.
  DrainOutcome DrainSupersteps(const DrainBudget& budget);
  // Ticks the injector's generation clock and polls the coordinator-side
  // infrastructure faults. Returns true (and fills `out`) when one fired —
  // the drain stops with queues intact so recovery can roll back.
  bool PollFault(DrainOutcome* out);
  // Invokes the barrier hook every hook_interval_ generations (workers
  // joined at the call site).
  void MaybeBarrierHook();
  // True when every attached view's maintenance mode is safe to drain on
  // parallel workers (per-node state only, no mid-drain variable
  // allocation): everything but ProvMode::kRelative.
  bool ParallelSafe() const;

  // Declaration order is load-bearing: queued Envelopes hold Prov handles
  // into bdd_, so the router (destroyed first, in reverse order) must be
  // declared after the manager.
  bdd::Manager bdd_;
  Router router_;
  // Attached runtimes, indexed by namespace id (nullptr once detached).
  std::vector<RuntimeBase*> runtimes_;
  // Session-wide dead-variable set (vector<char>: element access is
  // branch-free, unlike vector<bool>).
  std::vector<char> dead_;
  size_t num_dead_ = 0;
  // Fault injection (null when the options enabled none).
  std::shared_ptr<fault::FaultInjector> injector_;
  std::function<void()> barrier_hook_;
  uint64_t hook_interval_ = 0;
  uint64_t gens_since_hook_ = 0;
};

}  // namespace recnet

#endif  // RECNET_ENGINE_SUBSTRATE_H_
