#include "engine/region_runtime.h"

#include <algorithm>

namespace recnet {
namespace {

// Second-level aggregate deltas (regionSizes -> largestRegion at node 0).
constexpr int kPortAggRoot = 4;

}  // namespace

RegionRuntime::RegionRuntime(const SensorField& field,
                             const RuntimeOptions& options)
    : RuntimeBase(field.num_sensors, options), field_(field) {
  InitNodes();
}

RegionRuntime::RegionRuntime(std::shared_ptr<Substrate> substrate,
                             const SensorField& field,
                             const RuntimeOptions& options)
    : RuntimeBase(std::move(substrate), field.num_sensors, options),
      field_(field) {
  InitNodes();
}

void RegionRuntime::InitNodes() {
  nodes_.resize(static_cast<size_t>(field_.num_sensors));
  trig_var_.resize(static_cast<size_t>(field_.num_sensors));
  seeds_of_.resize(static_cast<size_t>(field_.num_sensors));
  for (size_t r = 0; r < field_.seed_sensors.size(); ++r) {
    seeds_of_[static_cast<size_t>(field_.seed_sensors[r])].push_back(
        static_cast<int>(r));
  }
  for (int n = 0; n < field_.num_sensors; ++n) {
    NodeState& state = nodes_[static_cast<size_t>(n)];
    state.fix = std::make_unique<Fixpoint>(opts_.prov);
    // A sensor can belong to at most one partition slot per region; size
    // the per-node tables for the region count up front.
    state.fix->Reserve(field_.seed_sensors.size());
    ShipMode ship_mode =
        opts_.prov == ProvMode::kSet ? ShipMode::kDirect : opts_.ship;
    state.ship = std::make_unique<MinShip>(
        opts_.prov, ship_mode, opts_.batch_window,
        [this, n](const Tuple& tuple, const Prov& pv) {
          LogicalNode dest = static_cast<LogicalNode>(tuple.IntAt(1));
          ShipInsert(n, dest, kPortFix, tuple, pv);
        },
        opts_.eager_demote_width);
    state.ship->Reserve(field_.seed_sensors.size());
    state.region_sizes = std::make_unique<GroupByAggregate>(
        std::vector<size_t>{0},
        std::vector<GroupAggSpec>{{GroupAggFn::kCount, 0}});
    state.region_sizes->Reserve(field_.seed_sensors.size());
  }
}

void RegionRuntime::Trigger(int sensor) {
  if (trig_var_[static_cast<size_t>(sensor)].has_value()) return;
  bdd::Var v = AllocVar();
  trig_var_[static_cast<size_t>(sensor)] = v;
  Prov trig_pv = opts_.prov == ProvMode::kSet ? TrueProv() : VarProv(v);
  // Base case: seed(r, sensor) ∧ isTriggered(sensor) -> active(r, sensor).
  for (int r : seeds_of_[static_cast<size_t>(sensor)]) {
    Send(sensor, sensor, kPortFix,
                 Update::Insert(Tuple::OfInts({r, sensor}), trig_pv));
  }
  // Recursive case unblocked: existing memberships of this sensor can now
  // propagate to its proximity neighbors. Relative mode derives through a
  // reference to the membership tuple instead of its full annotation.
  for (const auto& [tuple, pv] : node(sensor).fix->contents()) {
    if (opts_.prov == ProvMode::kRelative) {
      ExpandFrom(sensor, node(sensor), tuple, RefProv(tuple).And(trig_pv));
    } else {
      ExpandFrom(sensor, node(sensor), tuple, pv.And(trig_pv));
    }
  }
}

void RegionRuntime::Untrigger(int sensor) {
  auto& slot = trig_var_[static_cast<size_t>(sensor)];
  if (!slot.has_value()) return;
  bdd::Var v = *slot;
  slot.reset();
  if (opts_.prov == ProvMode::kSet) {
    // DRed over-deletion: retract the seed memberships and everything this
    // sensor's trigger helped derive.
    for (int r : seeds_of_[static_cast<size_t>(sensor)]) {
      Send(sensor, sensor, kPortFix,
                   Update::Delete(Tuple::OfInts({r, sensor})));
    }
    for (const auto& [tuple, pv] : node(sensor).fix->contents()) {
      int64_t region = tuple.IntAt(0);
      for (int nb : field_.neighbors[static_cast<size_t>(sensor)]) {
        Send(sensor, nb, kPortFix,
                     Update::Delete(Tuple::OfInts({region, nb})));
      }
    }
    rederive_pending_ = true;
    return;
  }
  StartKill(sensor, {v});
}

bool RegionRuntime::IsTriggered(int sensor) const {
  return trig_var_[static_cast<size_t>(sensor)].has_value();
}

bool RegionRuntime::InRegion(int region, int sensor) const {
  return node(sensor).fix->Contains(Tuple::OfInts({region, sensor}));
}

std::set<int> RegionRuntime::RegionMembers(int region) const {
  std::set<int> out;
  for (int s = 0; s < field_.num_sensors; ++s) {
    if (InRegion(region, s)) out.insert(s);
  }
  return out;
}

size_t RegionRuntime::ViewSize() const {
  size_t total = 0;
  for (const NodeState& state : nodes_) total += state.fix->size();
  return total;
}

const Prov* RegionRuntime::ViewProvenance(int region, int sensor) const {
  return node(sensor).fix->Lookup(Tuple::OfInts({region, sensor}));
}

std::optional<int> RegionRuntime::SensorOfVar(bdd::Var v) const {
  for (size_t s = 0; s < trig_var_.size(); ++s) {
    if (trig_var_[s].has_value() && *trig_var_[s] == v) {
      return static_cast<int>(s);
    }
  }
  return std::nullopt;
}

int64_t RegionRuntime::RegionSize(int region) const {
  auto result =
      node(AggOwner(region)).region_sizes->Result(Tuple::OfInts({region}));
  return result.has_value() ? (*result)[0].AsInt() : 0;
}

int64_t RegionRuntime::LargestRegionSize() const {
  int64_t best = 0;
  for (const auto& [region, size] : sizes_at_root_) {
    best = std::max(best, size);
  }
  return best;
}

std::vector<int> RegionRuntime::LargestRegions() const {
  int64_t best = LargestRegionSize();
  std::vector<int> out;
  if (best == 0) return out;
  for (const auto& [region, size] : sizes_at_root_) {
    if (size == best) out.push_back(region);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void RegionRuntime::ExpandFrom(LogicalNode x, NodeState& state,
                               const Tuple& active, const Prov& pv) {
  if (pv.IsFalse()) return;
  int64_t region = active.IntAt(0);
  for (int nb : field_.neighbors[static_cast<size_t>(x)]) {
    Tuple derived = Tuple::OfInts({region, nb});
    if (opts_.prov == ProvMode::kSet) {
      Send(x, nb, kPortFix, Update::Insert(derived, pv));
    } else {
      state.ship->ProcessInsert(derived, pv);
    }
  }
}

void RegionRuntime::NotifyViewInsert(LogicalNode at, const Tuple& active) {
  LogViewDelta(active, /*added=*/true);
  LogicalNode owner = AggOwner(static_cast<int>(active.IntAt(0)));
  Send(at, owner, kPortAgg, Update::Insert(active, TrueProv()));
}

void RegionRuntime::NotifyViewDelete(LogicalNode at, const Tuple& active) {
  LogViewDelta(active, /*added=*/false);
  LogicalNode owner = AggOwner(static_cast<int>(active.IntAt(0)));
  Send(at, owner, kPortAgg, Update::Delete(active));
}

void RegionRuntime::HandleActiveInsert(LogicalNode at, NodeState& state,
                                       const Tuple& tuple, const Prov& pv) {
  Prov guarded = GuardIncoming(pv);
  if (guarded.IsFalse()) return;
  bool is_new = false;
  std::optional<Prov> delta = state.fix->ProcessInsert(tuple, guarded, &is_new);
  if (!delta.has_value()) return;
  if (is_new) NotifyViewInsert(at, tuple);
  const auto& trig = trig_var_[static_cast<size_t>(at)];
  if (!trig.has_value()) return;
  Prov trig_pv =
      opts_.prov == ProvMode::kSet ? TrueProv() : VarProv(*trig);
  if (opts_.prov == ProvMode::kRelative) {
    // Derivation-edge model: neighbors reference this membership tuple;
    // only its first derivation expands.
    if (is_new) ExpandFrom(at, state, tuple, RefProv(tuple).And(trig_pv));
    return;
  }
  ExpandFrom(at, state, tuple, delta->And(trig_pv));
}

void RegionRuntime::HandleActiveDelete(LogicalNode at, NodeState& state,
                                       const Tuple& tuple) {
  if (!state.fix->ProcessDelete(tuple)) return;
  NotifyViewDelete(at, tuple);
  // Over-delete cascade: derivations through this member die too.
  if (trig_var_[static_cast<size_t>(at)].has_value()) {
    int64_t region = tuple.IntAt(0);
    for (int nb : field_.neighbors[static_cast<size_t>(at)]) {
      Send(at, nb, kPortFix,
                   Update::Delete(Tuple::OfInts({region, nb})));
    }
  }
}

void RegionRuntime::HandleKill(LogicalNode at, NodeState& state,
                               const std::vector<bdd::Var>& killed) {
  std::vector<bdd::Var> fresh = AcceptKill(at, killed);
  if (fresh.empty()) return;
  Fixpoint::KillResult result = state.fix->ProcessKill(fresh);
  for (const Tuple& removed : result.removed) NotifyViewDelete(at, removed);
  state.ship->ProcessKill(fresh);
  if (opts_.prov == ProvMode::kRelative) {
    for (const Tuple& removed : result.removed) OnTupleRemoved(at, removed);
    relative_check_pending_ = true;
  }
}

void RegionRuntime::HandleBatch(const Envelope* envs, size_t n) {
  // The run shares one (dst, port): resolve the destination's operator
  // state and the port dispatch once, then apply the operator across the
  // whole batch.
  LogicalNode at = envs[0].dst;
  NodeState& state = node(at);
  switch (LocalPort(envs[0])) {
    case kPortFix:
      for (size_t i = 0; i < n; ++i) {
        const Update& u = envs[i].update;
        if (u.type == UpdateType::kInsert) {
          HandleActiveInsert(at, state, u.tuple, u.pv);
        } else {
          HandleActiveDelete(at, state, u.tuple);
        }
      }
      return;
    case kPortKill:
      for (size_t i = 0; i < n; ++i) {
        HandleKill(at, state, envs[i].update.killed);
      }
      return;
    case kPortAgg: {
      // regionSizes aggregator for regions owned by this node.
      GroupByAggregate& sizes = *state.region_sizes;
      for (size_t i = 0; i < n; ++i) {
        const Update& u = envs[i].update;
        Tuple group = Tuple::OfInts({u.tuple.IntAt(0)});
        auto before = sizes.Result(group);
        if (u.type == UpdateType::kInsert) {
          sizes.OnInsert(u.tuple);
        } else {
          sizes.OnDelete(u.tuple);
        }
        auto after = sizes.Result(group);
        int64_t old_size = before.has_value() ? (*before)[0].AsInt() : 0;
        int64_t new_size = after.has_value() ? (*after)[0].AsInt() : 0;
        if (old_size != new_size) {
          // Feed largestRegion at node 0 with the revised regionSizes row.
          Send(at, 0, kPortAggRoot,
                       Update::Insert(
                           Tuple::OfInts({u.tuple.IntAt(0), new_size}),
                           TrueProv()));
        }
      }
      return;
    }
    case kPortAggRoot:
      for (size_t i = 0; i < n; ++i) {
        const Update& u = envs[i].update;
        int region = static_cast<int>(u.tuple.IntAt(0));
        int64_t size = u.tuple.IntAt(1);
        if (size == 0) {
          sizes_at_root_.erase(region);
        } else {
          sizes_at_root_[region] = size;
        }
      }
      return;
    default:
      RECNET_CHECK(false);
  }
}

void RegionRuntime::HandleEnvelope(const Envelope& env) {
  HandleBatch(&env, 1);
}

uint64_t RegionRuntime::CountShipDemotions() const {
  uint64_t total = 0;
  for (LogicalNode n = 0; n < num_logical(); ++n) {
    total += node(n).ship->demotions();
  }
  return total;
}

bool RegionRuntime::AfterQuiescent() {
  // Demoted MinShips compact their buffers against the shipped state now
  // that the insert storm has drained (no traffic is generated).
  bool reabsorbed = false;
  for (LogicalNode n = 0; n < num_logical(); ++n) {
    if (node(n).ship->FlushIfDemoted()) reabsorbed = true;
  }
  if (reabsorbed) return true;
  if (rederive_pending_) {
    rederive_pending_ = false;
    SeedRederivation();
    return true;
  }
  if (relative_check_pending_) {
    // Derivability traversal for cyclically self-supported memberships
    // (two adjacent triggered sensors keep each other in the region).
    relative_check_pending_ = false;
    std::vector<ViewEntry> view;
    for (LogicalNode n = 0; n < num_logical(); ++n) {
      for (const auto& [tuple, pv] : node(n).fix->contents()) {
        view.push_back(ViewEntry{n, &tuple, &pv});
      }
    }
    auto underivable = FindUnderivable(view);
    for (const auto& [owner, tuple] : underivable) {
      node(owner).fix->ProcessDelete(tuple);
      NotifyViewDelete(owner, tuple);
      OnTupleRemoved(owner, tuple);
    }
    return !underivable.empty();
  }
  return false;
}

void RegionRuntime::SeedRederivation() {
  for (int x = 0; x < field_.num_sensors; ++x) {
    if (!trig_var_[static_cast<size_t>(x)].has_value()) continue;
    for (int r : seeds_of_[static_cast<size_t>(x)]) {
      Send(x, x, kPortFix,
                   Update::Insert(Tuple::OfInts({r, x}), TrueProv()));
    }
    for (const auto& [tuple, pv] : node(x).fix->contents()) {
      ExpandFrom(x, node(x), tuple, TrueProv());
    }
  }
}

size_t RegionRuntime::StateSizeBytes() const {
  size_t bytes = 0;
  for (const NodeState& state : nodes_) {
    bytes += state.fix->StateSizeBytes() + state.ship->StateSizeBytes() +
             state.region_sizes->StateSizeBytes();
  }
  return bytes;
}

}  // namespace recnet
