#ifndef RECNET_ENGINE_REGION_RUNTIME_H_
#define RECNET_ENGINE_REGION_RUNTIME_H_

#include <atomic>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "engine/runtime_base.h"
#include "operators/fixpoint.h"
#include "operators/group_by.h"
#include "topology/sensor_grid.h"

namespace recnet {

// Distributed maintenance of the paper's Query 3 (Largest Region): the
// recursive view activeRegion(rid, sensor) grows a contiguous region of
// triggered sensors outward from each seed, and the aggregate views
// regionSizes / largestRegion(s) are layered on top.
//
// Partitioning: activeRegion tuples live at the member sensor's node (one
// logical node per sensor, co-located onto physical peers). Region-size
// counts live at the node owning the region id; the global largest-region
// view lives at node 0. View membership changes ship count deltas upward,
// so aggregate traffic is part of the measured communication, as in the
// paper's region experiments (Figures 9-10).
//
// Rules (paper Query 3):
//   activeRegion(r, x) :- seed(r, x), isTriggered(x).           [pv = t_x]
//   activeRegion(r, y) :- activeRegion(r, x), isTriggered(x),
//                         distance(x, y) < k.                   [pv ∧ t_x]
class RegionRuntime : public RuntimeBase {
 public:
  RegionRuntime(const SensorField& field, const RuntimeOptions& options);
  // Co-resident construction: one view on a shared session substrate. The
  // view spans the field's sensors; unlike the graph runtimes it is
  // deployment-bound and does not extend when the session topology grows.
  RegionRuntime(std::shared_ptr<Substrate> substrate, const SensorField& field,
                const RuntimeOptions& options);

  // Marks sensor as triggered / untriggered (inserts or deletes the
  // isTriggered(sensor) base fact). Call Run() to propagate.
  void Trigger(int sensor);
  void Untrigger(int sensor);
  bool IsTriggered(int sensor) const;

  // --- View access ----------------------------------------------------------

  bool InRegion(int region, int sensor) const;
  std::set<int> RegionMembers(int region) const;
  size_t ViewSize() const;

  // regionSizes(region): current member count, from the distributed count
  // view (0 when the region is empty).
  int64_t RegionSize(int region) const;
  // largestRegion(): max over regionSizes; 0 when all regions are empty.
  int64_t LargestRegionSize() const;
  // largestRegions(): regions whose size equals the maximum.
  std::vector<int> LargestRegions() const;

  int num_regions() const { return static_cast<int>(field_.seed_sensors.size()); }

  // Provenance annotation of activeRegion(region, sensor), if present
  // (provenance modes only); supports "why is this sensor in the region"
  // witnesses.
  const Prov* ViewProvenance(int region, int sensor) const;

  // Reverse-maps a base variable to the live isTriggered(sensor) fact it
  // annotates (for rendering provenance witnesses).
  std::optional<int> SensorOfVar(bdd::Var v) const;

  // Snapshot round-trip (see RuntimeBase::SaveState): appends the trigger
  // variables, the aggregate views, and every sensor node's operator state.
  // Defined in engine/runtime_persist.cc.
  void SaveState(persist::SnapshotWriter& w) const override;
  Status LoadState(persist::SnapshotReader& r) override;

 protected:
  // Vectorized delivery: one (dst, port) switch and node-state lookup per
  // run, with the operator applied across the whole batch.
  void HandleBatch(const Envelope* envs, size_t n) override;
  void HandleEnvelope(const Envelope& env) override;
  bool AfterQuiescent() override;
  uint64_t CountShipDemotions() const override;
  size_t StateSizeBytes() const override;

 private:
  struct NodeState {
    std::unique_ptr<Fixpoint> fix;
    std::unique_ptr<MinShip> ship;
    // Aggregator state for regions owned by this node: region -> count.
    std::unique_ptr<GroupByAggregate> region_sizes;
  };

  NodeState& node(LogicalNode n) { return nodes_[static_cast<size_t>(n)]; }
  const NodeState& node(LogicalNode n) const {
    return nodes_[static_cast<size_t>(n)];
  }

  // Builds the per-sensor operator pipelines (shared by both ctors).
  void InitNodes();

  LogicalNode AggOwner(int region) const {
    return static_cast<LogicalNode>(region % num_logical());
  }

  // The handlers take the destination's NodeState, resolved once per
  // delivery batch rather than once per envelope.
  void HandleActiveInsert(LogicalNode at, NodeState& state, const Tuple& tuple,
                          const Prov& pv);
  void HandleActiveDelete(LogicalNode at, NodeState& state,
                          const Tuple& tuple);
  void HandleKill(LogicalNode at, NodeState& state,
                  const std::vector<bdd::Var>& killed);
  // Derives neighbors of x from activeRegion(r, x), given x is triggered.
  void ExpandFrom(LogicalNode x, NodeState& state, const Tuple& active,
                  const Prov& pv);
  void NotifyViewInsert(LogicalNode at, const Tuple& active);
  void NotifyViewDelete(LogicalNode at, const Tuple& active);
  void SeedRederivation();

  SensorField field_;
  std::vector<NodeState> nodes_;
  // Trigger fact variable per sensor (nullopt = not triggered).
  std::vector<std::optional<bdd::Var>> trig_var_;
  // seeds_of_[x] = region ids whose main sensor is x.
  std::vector<std::vector<int>> seeds_of_;
  // Node 0's largestRegion state: region -> size.
  std::unordered_map<int, int64_t> sizes_at_root_;
  bool rederive_pending_ = false;
  // Set by parallel shard workers in HandleKill, consumed at quiescence.
  std::atomic<bool> relative_check_pending_{false};
};

}  // namespace recnet

#endif  // RECNET_ENGINE_REGION_RUNTIME_H_
