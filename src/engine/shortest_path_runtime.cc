#include "engine/shortest_path_runtime.h"

#include <limits>

namespace recnet {
namespace {

// path tuple layout: (src, dst, vec, cost, length).
constexpr size_t kSrc = 0;
constexpr size_t kDst = 1;
constexpr size_t kVec = 2;
constexpr size_t kCost = 3;
constexpr size_t kLen = 4;

Tuple MakePath(int64_t src, int64_t dst, std::string vec, double cost,
               int64_t len) {
  Tuple::Values values;
  values.reserve(5);
  values.emplace_back(src);
  values.emplace_back(dst);
  values.emplace_back(std::move(vec));
  values.emplace_back(cost);
  values.emplace_back(len);
  return Tuple(std::move(values));
}

// link(x, z, c0) ⋈ path(z, y, vec, c1, l1)
//   -> path(x, y, x|'.'|vec, c0+c1, l1+1)            (paper Query 2)
Tuple CombineLinkPath(const Tuple& link, const Tuple& path) {
  return MakePath(link.IntAt(0), path.IntAt(kDst),
                  std::to_string(link.IntAt(0)) + "." + path.StringAt(kVec),
                  link.DoubleAt(2) + path.DoubleAt(kCost),
                  path.IntAt(kLen) + 1);
}

}  // namespace

const char* AggSelPolicyName(AggSelPolicy policy) {
  switch (policy) {
    case AggSelPolicy::kMulti:
      return "multi";
    case AggSelPolicy::kCost:
      return "cost";
    case AggSelPolicy::kHops:
      return "hops";
    case AggSelPolicy::kNone:
      return "none";
  }
  return "?";
}

ShortestPathRuntime::ShortestPathRuntime(int num_nodes,
                                         const RuntimeOptions& options,
                                         AggSelPolicy policy)
    : RuntimeBase(num_nodes, options), policy_(policy) {
  // The shortest-path family runs under absorption provenance (the paper's
  // Figure 14 evaluates aggregate selection with the main scheme only).
  RECNET_CHECK(opts_.prov == ProvMode::kAbsorption);
  nodes_.resize(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    InitNode(n, static_cast<size_t>(num_nodes));
  }
}

ShortestPathRuntime::ShortestPathRuntime(std::shared_ptr<Substrate> substrate,
                                         int num_nodes,
                                         const RuntimeOptions& options,
                                         AggSelPolicy policy)
    : RuntimeBase(std::move(substrate), num_nodes, options), policy_(policy) {
  RECNET_CHECK(opts_.prov == ProvMode::kAbsorption);
  nodes_.resize(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    InitNode(n, static_cast<size_t>(num_nodes));
  }
}

void ShortestPathRuntime::InitNode(int n, size_t expected_nodes) {
  NodeState& state = nodes_[static_cast<size_t>(n)];
  state.fix = std::make_unique<Fixpoint>(opts_.prov);
  // Aggregate selection prunes the path view towards one surviving tuple
  // per (src, dst); size the operator tables for that bound up front.
  state.fix->Reserve(expected_nodes);
  state.join = std::make_unique<PipelinedHashJoin>(
      opts_.prov, std::vector<size_t>{1}, std::vector<size_t>{kSrc},
      CombineLinkPath);
  state.join->Reserve(expected_nodes);
  state.ship = std::make_unique<MinShip>(
      opts_.prov, opts_.ship, opts_.batch_window,
      [this, n](const Tuple& tuple, const Prov& pv) {
        LogicalNode dest = static_cast<LogicalNode>(tuple.IntAt(kSrc));
        ShipInsert(n, dest, kPortFix, tuple, pv);
      },
      opts_.eager_demote_width);
  state.ship->Reserve(expected_nodes);
  if (policy_ != AggSelPolicy::kNone) {
    state.agg_fix = std::make_unique<AggSel>(
        opts_.prov, std::vector<size_t>{kSrc, kDst}, AggSpecs());
    state.agg_ship = std::make_unique<AggSel>(
        opts_.prov, std::vector<size_t>{kSrc, kDst}, AggSpecs());
  }
}

void ShortestPathRuntime::OnTopologyGrown(int num_nodes) {
  if (num_nodes <= num_logical()) return;
  int old_nodes = num_logical();
  GrowKillRouting(num_nodes);
  nodes_.resize(static_cast<size_t>(num_nodes));
  for (int n = old_nodes; n < num_nodes; ++n) {
    InitNode(n, static_cast<size_t>(num_nodes));
  }
}

std::vector<AggSpec> ShortestPathRuntime::AggSpecs() const {
  std::vector<AggSpec> specs;
  if (policy_ == AggSelPolicy::kMulti || policy_ == AggSelPolicy::kCost) {
    specs.push_back(AggSpec{AggFn::kMin, kCost});
  }
  if (policy_ == AggSelPolicy::kMulti || policy_ == AggSelPolicy::kHops) {
    specs.push_back(AggSpec{AggFn::kMin, kLen});
  }
  return specs;
}

void ShortestPathRuntime::InsertLink(LogicalNode src, LogicalNode dst,
                                     double cost) {
  Tuple::Values link_values;
  link_values.emplace_back(static_cast<int64_t>(src));
  link_values.emplace_back(static_cast<int64_t>(dst));
  link_values.emplace_back(cost);
  Tuple link(std::move(link_values));
  if (link_vars_.find(link) != link_vars_.end()) return;
  bdd::Var v = AllocVar();
  link_vars_.emplace(link, v);
  Prov pv = VarProv(v);
  // Base case: path(src, dst, src|'.'|dst, cost, 1).
  Tuple base = MakePath(src, dst,
                        std::to_string(src) + "." + std::to_string(dst), cost,
                        1);
  Send(src, src, kPortFix, Update::Insert(std::move(base), pv));
  // Distributed join: ship the link to its dst partition.
  ShipInsert(src, dst, kPortJoinBuild, link, pv);
}

void ShortestPathRuntime::DeleteLink(LogicalNode src, LogicalNode dst) {
  for (auto it = link_vars_.begin(); it != link_vars_.end(); ++it) {
    if (it->first.IntAt(0) == src && it->first.IntAt(1) == dst) {
      bdd::Var v = it->second;
      link_vars_.erase(it);
      StartKill(src, {v});
      return;
    }
  }
}

void ShortestPathRuntime::ShipPath(LogicalNode at, NodeState& state,
                                   const Tuple& tuple, const Prov& pv) {
  if (state.agg_ship != nullptr) {
    // Aggregate selection pushed into MinShip (Algorithm 3 lines 4-8).
    for (Update& u : state.agg_ship->ProcessInsert(tuple, pv)) {
      if (u.type == UpdateType::kInsert) {
        state.ship->ProcessInsert(u.tuple, u.pv);
      } else {
        ShipRetraction(at, state, std::move(u.tuple));
      }
    }
    return;
  }
  state.ship->ProcessInsert(tuple, pv);
}

void ShortestPathRuntime::ShipRetraction(LogicalNode at, NodeState& state,
                                         Tuple tuple) {
  LogicalNode dest = static_cast<LogicalNode>(tuple.IntAt(kSrc));
  state.ship->ProcessDelete(tuple);
  Send(at, dest, kPortFix, Update::Delete(std::move(tuple)));
}

void ShortestPathRuntime::ApplyFixInsert(LogicalNode at, NodeState& state,
                                         const Tuple& tuple, const Prov& pv) {
  bool is_new = false;
  std::optional<Prov> delta = state.fix->ProcessInsert(tuple, pv, &is_new);
  if (!delta.has_value()) return;
  if (is_new) LogViewDelta(tuple, /*added=*/true);
  for (Update& out :
       state.join->ProcessInsert(PipelinedHashJoin::kRight, tuple, *delta)) {
    if (out.type == UpdateType::kInsert) {
      ShipPath(at, state, out.tuple, out.pv);
    } else {
      ShipRetraction(at, state, std::move(out.tuple));
    }
  }
}

void ShortestPathRuntime::ApplyFixDelete(LogicalNode at, NodeState& state,
                                         const Tuple& tuple) {
  if (!state.fix->ProcessDelete(tuple)) return;
  LogViewDelta(tuple, /*added=*/false);
  for (Update& out :
       state.join->ProcessDelete(PipelinedHashJoin::kRight, tuple)) {
    // Retractions of this path's extensions cascade through the shipping
    // aggregate selection (replacement winners may be promoted).
    if (state.agg_ship != nullptr) {
      for (Update& agg_out : state.agg_ship->ProcessDelete(out.tuple)) {
        if (agg_out.type == UpdateType::kInsert) {
          state.ship->ProcessInsert(agg_out.tuple, agg_out.pv);
        } else {
          ShipRetraction(at, state, std::move(agg_out.tuple));
        }
      }
    } else {
      ShipRetraction(at, state, std::move(out.tuple));
    }
  }
}

void ShortestPathRuntime::HandleFixStream(LogicalNode at, NodeState& state,
                                          const Update& u) {
  if (u.type == UpdateType::kInsert) {
    Prov guarded = GuardIncoming(u.pv);
    if (guarded.IsFalse()) return;
    if (state.agg_fix != nullptr) {
      // Aggregate selection pushed into the Fixpoint (Algorithm 1
      // lines 2-8).
      for (Update& out : state.agg_fix->ProcessInsert(u.tuple, guarded)) {
        if (out.type == UpdateType::kInsert) {
          ApplyFixInsert(at, state, out.tuple, out.pv);
        } else {
          ApplyFixDelete(at, state, out.tuple);
        }
      }
    } else {
      ApplyFixInsert(at, state, u.tuple, guarded);
    }
    return;
  }
  // Retraction stream (displaced aggregate winners).
  if (state.agg_fix != nullptr) {
    for (Update& out : state.agg_fix->ProcessDelete(u.tuple)) {
      if (out.type == UpdateType::kInsert) {
        ApplyFixInsert(at, state, out.tuple, out.pv);
      } else {
        ApplyFixDelete(at, state, out.tuple);
      }
    }
  } else {
    ApplyFixDelete(at, state, u.tuple);
  }
}

void ShortestPathRuntime::HandleKill(LogicalNode at, NodeState& state,
                                     const std::vector<bdd::Var>& killed) {
  std::vector<bdd::Var> fresh = AcceptKill(at, killed);
  if (fresh.empty()) return;
  Fixpoint::KillResult result = state.fix->ProcessKill(fresh);
  for (const Tuple& removed : result.removed) {
    LogViewDelta(removed, /*added=*/false);
  }
  state.join->ProcessKill(fresh);
  if (state.agg_fix != nullptr) {
    // Replacement winners re-enter the local fixpoint.
    for (Update& out : state.agg_fix->ProcessKill(fresh)) {
      RECNET_CHECK(out.type == UpdateType::kInsert);
      ApplyFixInsert(at, state, out.tuple, out.pv);
    }
  }
  if (state.agg_ship != nullptr) {
    for (Update& out : state.agg_ship->ProcessKill(fresh)) {
      RECNET_CHECK(out.type == UpdateType::kInsert);
      state.ship->ProcessInsert(out.tuple, out.pv);
    }
  }
  state.ship->ProcessKill(fresh);
}

void ShortestPathRuntime::HandleBatch(const Envelope* envs, size_t n) {
  // The run shares one (dst, port): resolve the destination's operator
  // state and the port dispatch once, then apply the operator across the
  // whole batch.
  LogicalNode at = envs[0].dst;
  NodeState& state = node(at);
  switch (LocalPort(envs[0])) {
    case kPortJoinBuild:
      for (size_t i = 0; i < n; ++i) {
        const Update& u = envs[i].update;
        RECNET_CHECK(u.type == UpdateType::kInsert);
        Prov guarded = GuardIncoming(u.pv);
        if (guarded.IsFalse()) continue;
        for (Update& out : state.join->ProcessInsert(PipelinedHashJoin::kLeft,
                                                     u.tuple, guarded)) {
          RECNET_CHECK(out.type == UpdateType::kInsert);
          ShipPath(at, state, out.tuple, out.pv);
        }
      }
      return;
    case kPortFix:
      for (size_t i = 0; i < n; ++i) {
        HandleFixStream(at, state, envs[i].update);
      }
      return;
    case kPortKill:
      for (size_t i = 0; i < n; ++i) {
        HandleKill(at, state, envs[i].update.killed);
      }
      return;
    default:
      RECNET_CHECK(false);
  }
}

void ShortestPathRuntime::HandleEnvelope(const Envelope& env) {
  HandleBatch(&env, 1);
}

bool ShortestPathRuntime::AfterQuiescent() {
  // Demoted MinShips compact their buffers against the shipped state now
  // that the insert storm has drained (no traffic is generated).
  bool reabsorbed = false;
  for (LogicalNode n = 0; n < num_logical(); ++n) {
    if (node(n).ship->FlushIfDemoted()) reabsorbed = true;
  }
  return reabsorbed;
}

uint64_t ShortestPathRuntime::CountShipDemotions() const {
  uint64_t total = 0;
  for (LogicalNode n = 0; n < num_logical(); ++n) {
    total += node(n).ship->demotions();
  }
  return total;
}

std::optional<double> ShortestPathRuntime::MinCost(LogicalNode src,
                                                   LogicalNode dst) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [tuple, pv] : node(src).fix->contents()) {
    if (tuple.IntAt(kDst) != dst) continue;
    best = std::min(best, tuple.DoubleAt(kCost));
  }
  if (best == std::numeric_limits<double>::infinity()) return std::nullopt;
  return best;
}

std::vector<std::optional<double>> ShortestPathRuntime::MinCosts(
    LogicalNode src, const std::vector<LogicalNode>& dsts) const {
  std::vector<std::optional<double>> out(dsts.size());
  std::vector<int32_t> slot_of(static_cast<size_t>(num_logical()), -1);
  for (size_t i = 0; i < dsts.size(); ++i) {
    slot_of[static_cast<size_t>(dsts[i])] = static_cast<int32_t>(i);
  }
  for (const auto& [tuple, pv] : node(src).fix->contents()) {
    int32_t slot = slot_of[static_cast<size_t>(tuple.IntAt(kDst))];
    if (slot < 0) continue;
    double cost = tuple.DoubleAt(kCost);
    auto& best = out[static_cast<size_t>(slot)];
    if (!best.has_value() || cost < *best) best = cost;
  }
  return out;
}

const Prov* ShortestPathRuntime::ViewProvenance(LogicalNode src,
                                                LogicalNode dst) const {
  // The stable projection of the pruned path view is its min-cost tuple per
  // (src, dst) — the same row Lookup surfaces — so witnesses explain that
  // tuple's derivation.
  const Prov* best_pv = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& [tuple, pv] : node(src).fix->contents()) {
    if (tuple.IntAt(kDst) != dst) continue;
    double cost = tuple.DoubleAt(kCost);
    if (best_pv == nullptr || cost < best_cost) {
      best_pv = &pv;
      best_cost = cost;
    }
  }
  return best_pv;
}

std::optional<Tuple> ShortestPathRuntime::LinkOfVar(bdd::Var v) const {
  for (const auto& [link, var] : link_vars_) {
    if (var == v) return link;
  }
  return std::nullopt;
}

std::optional<int64_t> ShortestPathRuntime::MinHops(LogicalNode src,
                                                    LogicalNode dst) const {
  int64_t best = std::numeric_limits<int64_t>::max();
  for (const auto& [tuple, pv] : node(src).fix->contents()) {
    if (tuple.IntAt(kDst) != dst) continue;
    best = std::min(best, tuple.IntAt(kLen));
  }
  if (best == std::numeric_limits<int64_t>::max()) return std::nullopt;
  return best;
}

std::optional<std::string> ShortestPathRuntime::CheapestPathVec(
    LogicalNode src, LogicalNode dst) const {
  std::optional<double> best = MinCost(src, dst);
  if (!best.has_value()) return std::nullopt;
  for (const auto& [tuple, pv] : node(src).fix->contents()) {
    if (tuple.IntAt(kDst) == dst && tuple.DoubleAt(kCost) == *best) {
      return tuple.StringAt(kVec);
    }
  }
  return std::nullopt;
}

std::optional<std::string> ShortestPathRuntime::FewestHopsVec(
    LogicalNode src, LogicalNode dst) const {
  std::optional<int64_t> best = MinHops(src, dst);
  if (!best.has_value()) return std::nullopt;
  for (const auto& [tuple, pv] : node(src).fix->contents()) {
    if (tuple.IntAt(kDst) == dst && tuple.IntAt(kLen) == *best) {
      return tuple.StringAt(kVec);
    }
  }
  return std::nullopt;
}

std::optional<ShortestPathRuntime::ShortestCheapest>
ShortestPathRuntime::ShortestCheapestPath(LogicalNode src,
                                          LogicalNode dst) const {
  std::optional<double> cost = MinCost(src, dst);
  std::optional<int64_t> hops = MinHops(src, dst);
  std::optional<std::string> cheapest = CheapestPathVec(src, dst);
  std::optional<std::string> fewest = FewestHopsVec(src, dst);
  if (!cost || !hops || !cheapest || !fewest) return std::nullopt;
  ShortestCheapest out;
  out.cheapest_vec = *cheapest;
  out.cost = *cost;
  out.fewest_vec = *fewest;
  out.length = *hops;
  return out;
}

size_t ShortestPathRuntime::ViewSize() const {
  size_t total = 0;
  for (const NodeState& state : nodes_) total += state.fix->size();
  return total;
}

size_t ShortestPathRuntime::StateSizeBytes() const {
  size_t bytes = 0;
  for (const NodeState& state : nodes_) {
    bytes += state.fix->StateSizeBytes() + state.join->StateSizeBytes() +
             state.ship->StateSizeBytes();
    if (state.agg_fix != nullptr) bytes += state.agg_fix->StateSizeBytes();
    if (state.agg_ship != nullptr) bytes += state.agg_ship->StateSizeBytes();
  }
  return bytes;
}

}  // namespace recnet
