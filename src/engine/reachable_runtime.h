#ifndef RECNET_ENGINE_REACHABLE_RUNTIME_H_
#define RECNET_ENGINE_REACHABLE_RUNTIME_H_

#include <atomic>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "engine/runtime_base.h"
#include "operators/fixpoint.h"
#include "operators/hash_join.h"

namespace recnet {

// Distributed, incrementally maintained transitive closure — the paper's
// Query 1 and the running example of Sections 3-5.
//
// Plan (paper Figure 4), instantiated per logical node n:
//   * link(n, y) lives at n; a copy ships to node y's join build side
//     (the distributed join on link.dst = reachable.src).
//   * Fixpoint at n stores the view partition reachable(n, *).
//   * Fixpoint deltas probe the local join; joined results
//     reachable(x, z) ship through MinShip to node x's fixpoint.
//
// Maintenance strategy is selected by RuntimeOptions::prov:
//   * kAbsorption / kRelative — provenance annotations; deletion kills the
//     link's base variable along subscription edges.
//   * kSet — the DRed baseline: deletion over-deletes through the same
//     dataflow, then a re-derivation phase re-fires the join over the
//     surviving tuples (paper Figure 5).
class ReachableRuntime : public RuntimeBase {
 public:
  ReachableRuntime(int num_nodes, const RuntimeOptions& options);
  // Co-resident construction: one view on a shared session substrate.
  ReachableRuntime(std::shared_ptr<Substrate> substrate, int num_nodes,
                   const RuntimeOptions& options);

  // Injects link(src, dst) at node src (call Run() to propagate). Inserting
  // a link twice is a no-op while the first copy is alive; re-inserting
  // after deletion creates a fresh base variable (soft-state renewal).
  void InsertLink(LogicalNode src, LogicalNode dst);

  // Deletes link(src, dst). In the provenance modes this enqueues a kill of
  // the link's variable; in set mode it enqueues DRed's over-deletion and
  // schedules the re-derivation phase. Call Run() to propagate.
  void DeleteLink(LogicalNode src, LogicalNode dst);

  bool HasLink(LogicalNode src, LogicalNode dst) const;

  // --- View access ----------------------------------------------------------

  bool IsReachable(LogicalNode src, LogicalNode dst) const;
  std::set<LogicalNode> ReachableFrom(LogicalNode src) const;
  size_t ViewSize() const;

  // Provenance annotation of reachable(src, dst), if present (provenance
  // modes only); supports "why is this tuple here" diagnostics.
  const Prov* ViewProvenance(LogicalNode src, LogicalNode dst) const;

  // Reverse-maps a base variable to the live link it annotates (for
  // rendering provenance witnesses).
  std::optional<std::pair<LogicalNode, LogicalNode>> LinkOfVar(
      bdd::Var v) const;

  // Snapshot round-trip (see RuntimeBase::SaveState): appends the link
  // table, the DRed bookkeeping, and every node's operator state. Defined
  // in engine/runtime_persist.cc.
  void SaveState(persist::SnapshotWriter& w) const override;
  Status LoadState(persist::SnapshotReader& r) override;

 protected:
  // Vectorized delivery: one (dst, port) switch and node-state lookup per
  // run, with the operator applied across the whole batch.
  void HandleBatch(const Envelope* envs, size_t n) override;
  void HandleEnvelope(const Envelope& env) override;
  bool AfterQuiescent() override;
  uint64_t CountShipDemotions() const override;
  // Dynamic node-id space: extends the per-node operator state when the
  // substrate's topology grows (late facts mentioning unseen node ids).
  void OnTopologyGrown(int num_nodes) override;
  size_t StateSizeBytes() const override;

 private:
  struct NodeState {
    std::unique_ptr<Fixpoint> fix;
    std::unique_ptr<PipelinedHashJoin> join;
    std::unique_ptr<MinShip> ship;
  };

  NodeState& node(LogicalNode n) { return nodes_[static_cast<size_t>(n)]; }
  const NodeState& node(LogicalNode n) const {
    return nodes_[static_cast<size_t>(n)];
  }

  // Builds node n's operator pipeline, sizing tables for `expected_nodes`.
  void InitNode(int n, size_t expected_nodes);

  // The handlers take the destination's NodeState, resolved once per
  // delivery batch rather than once per envelope.
  void ShipJoinOutputs(LogicalNode at, NodeState& state,
                       std::vector<Update> outs);
  void SendDirect(LogicalNode at, NodeState& state, Update out);
  void HandleFixInsert(LogicalNode at, NodeState& state, const Tuple& tuple,
                       const Prov& pv);
  void HandleFixDelete(LogicalNode at, NodeState& state, const Tuple& tuple);
  void HandleKill(LogicalNode at, NodeState& state,
                  const std::vector<bdd::Var>& killed);
  void SeedRederivation();

  std::vector<NodeState> nodes_;
  // Alive links and their base variables (set mode stores var 0 sentinels).
  std::unordered_map<Tuple, bdd::Var, TupleHash> link_vars_;
  // Alive links grouped by source (for DRed re-derivation's base case).
  std::vector<std::vector<LogicalNode>> links_by_src_;
  bool rederive_pending_ = false;
  // Relative mode: a kill happened; run the derivability traversal at
  // quiescence to collect cyclically self-supported tuples. Atomic: set by
  // parallel shard workers in HandleKill, consumed at the quiescence
  // barrier.
  std::atomic<bool> relative_check_pending_{false};
};

}  // namespace recnet

#endif  // RECNET_ENGINE_REACHABLE_RUNTIME_H_
