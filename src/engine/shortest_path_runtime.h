#ifndef RECNET_ENGINE_SHORTEST_PATH_RUNTIME_H_
#define RECNET_ENGINE_SHORTEST_PATH_RUNTIME_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/runtime_base.h"
#include "operators/agg_sel.h"
#include "operators/fixpoint.h"
#include "operators/hash_join.h"

namespace recnet {

// Which aggregate selections are pushed into the path recursion (paper
// Section 6 / Figure 14):
//   * kMulti  — prune on MIN(cost) and MIN(length) simultaneously
//               ("Multi AggSel").
//   * kCost   — prune on MIN(cost) only ("Single AggSel").
//   * kHops   — prune on MIN(length) only (the symmetric single run).
//   * kNone   — no aggregate selection: path enumerates all paths and "may
//               not terminate" (paper §2); runs are budget-capped.
enum class AggSelPolicy { kMulti, kCost, kHops, kNone };

const char* AggSelPolicyName(AggSelPolicy policy);

// Distributed maintenance of the paper's Query 2 (Shortest Path): the
// recursive view path(src, dst, vec, cost, length) plus the derived views
// minCost, minHops, cheapestPath, fewestHops and shortestCheapestPath.
//
// The plan mirrors ReachableRuntime's (Figure 4) with path tuples instead
// of reachable tuples; the AggSel module (Algorithm 4) is embedded at the
// Fixpoint input and at the MinShip input (Algorithm 1 lines 2-8,
// Algorithm 3 lines 4-8), so tuples that cannot affect any group aggregate
// are suppressed before they are stored or shipped.
class ShortestPathRuntime : public RuntimeBase {
 public:
  ShortestPathRuntime(int num_nodes, const RuntimeOptions& options,
                      AggSelPolicy policy);
  // Co-resident construction: one view on a shared session substrate.
  ShortestPathRuntime(std::shared_ptr<Substrate> substrate, int num_nodes,
                      const RuntimeOptions& options, AggSelPolicy policy);

  void InsertLink(LogicalNode src, LogicalNode dst, double cost);
  void DeleteLink(LogicalNode src, LogicalNode dst);

  // --- Derived views (computed at the src partition) -------------------------

  // minCost(src, dst): cheapest path cost.
  std::optional<double> MinCost(LogicalNode src, LogicalNode dst) const;
  // Batch variant: minimum cost for each destination in `dsts`, computed in
  // one pass over src's path partition (the facade's incremental cache
  // patching asks about many destinations of one source after a delta).
  std::vector<std::optional<double>> MinCosts(
      LogicalNode src, const std::vector<LogicalNode>& dsts) const;
  // minHops(src, dst): fewest-hop path length.
  std::optional<int64_t> MinHops(LogicalNode src, LogicalNode dst) const;
  // cheapestPath(src, dst): vec of a cost-minimal path.
  std::optional<std::string> CheapestPathVec(LogicalNode src,
                                             LogicalNode dst) const;
  // fewestHops(src, dst): vec of a length-minimal path.
  std::optional<std::string> FewestHopsVec(LogicalNode src,
                                           LogicalNode dst) const;

  struct ShortestCheapest {
    std::string cheapest_vec;
    double cost = 0;
    std::string fewest_vec;
    int64_t length = 0;
  };
  // shortestCheapestPath(src, dst): join of cheapestPath and fewestHops.
  std::optional<ShortestCheapest> ShortestCheapestPath(LogicalNode src,
                                                       LogicalNode dst) const;

  size_t ViewSize() const;

  // Provenance annotation of a cost-minimal path(src, dst) tuple, if one is
  // materialized (the runtime always runs under absorption provenance);
  // backs the facade's Explain witnesses for the path view.
  const Prov* ViewProvenance(LogicalNode src, LogicalNode dst) const;

  // Reverse-maps a base variable to the live link it annotates, as
  // (src, dst, cost) — for rendering provenance witnesses.
  std::optional<Tuple> LinkOfVar(bdd::Var v) const;

  // Snapshot round-trip (see RuntimeBase::SaveState): appends the link
  // table and every node's operator state. Defined in
  // engine/runtime_persist.cc.
  void SaveState(persist::SnapshotWriter& w) const override;
  Status LoadState(persist::SnapshotReader& r) override;

 protected:
  // Vectorized delivery: one (dst, port) switch and node-state lookup per
  // run, with the operator applied across the whole batch.
  void HandleBatch(const Envelope* envs, size_t n) override;
  void HandleEnvelope(const Envelope& env) override;
  // Re-absorbs demoted MinShips at quiescence (the eager→lazy demotion
  // policy; see RuntimeOptions::eager_demote_width).
  bool AfterQuiescent() override;
  uint64_t CountShipDemotions() const override;
  // Dynamic node-id space: extends the per-node operator state when the
  // substrate's topology grows (late facts mentioning unseen node ids).
  void OnTopologyGrown(int num_nodes) override;
  size_t StateSizeBytes() const override;

 private:
  struct NodeState {
    std::unique_ptr<Fixpoint> fix;
    std::unique_ptr<PipelinedHashJoin> join;
    std::unique_ptr<MinShip> ship;
    std::unique_ptr<AggSel> agg_fix;   // Pushed into the Fixpoint.
    std::unique_ptr<AggSel> agg_ship;  // Pushed into MinShip.
  };

  NodeState& node(LogicalNode n) { return nodes_[static_cast<size_t>(n)]; }
  const NodeState& node(LogicalNode n) const {
    return nodes_[static_cast<size_t>(n)];
  }

  // Builds node n's operator pipeline, sizing tables for `expected_nodes`.
  void InitNode(int n, size_t expected_nodes);

  std::vector<AggSpec> AggSpecs() const;
  // The handlers take the destination's NodeState, resolved once per
  // delivery batch rather than once per envelope.
  void HandleFixStream(LogicalNode at, NodeState& state, const Update& u);
  void ApplyFixInsert(LogicalNode at, NodeState& state, const Tuple& tuple,
                      const Prov& pv);
  void ApplyFixDelete(LogicalNode at, NodeState& state, const Tuple& tuple);
  void ShipPath(LogicalNode at, NodeState& state, const Tuple& tuple,
                const Prov& pv);
  void ShipRetraction(LogicalNode at, NodeState& state, Tuple tuple);
  void HandleKill(LogicalNode at, NodeState& state,
                  const std::vector<bdd::Var>& killed);

  AggSelPolicy policy_;
  std::vector<NodeState> nodes_;
  std::unordered_map<Tuple, bdd::Var, TupleHash> link_vars_;
};

}  // namespace recnet

#endif  // RECNET_ENGINE_SHORTEST_PATH_RUNTIME_H_
