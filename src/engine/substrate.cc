#include "engine/substrate.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "engine/runtime_base.h"

namespace recnet {

Substrate::Substrate(int num_nodes, const SubstrateOptions& options)
    : router_(num_nodes,
              // The physical peer pool is capped by the initial logical
              // topology exactly as the one-runtime-per-router design did;
              // a substrate created empty (num_nodes == 0, nodes arrive
              // with the first facts) keeps the full peer pool.
              num_nodes > 0 ? std::min(num_nodes, options.num_physical)
                            : options.num_physical,
              std::max(1, options.shards)) {
  router_.set_batch_handler(
      [this](const Envelope* envs, size_t n) { Dispatch(envs, n); });
  router_.set_batching(options.batch_delivery);
  injector_ = options.injector;
  if (injector_ == nullptr && options.faults.enabled()) {
    injector_ = std::make_shared<fault::FaultInjector>(options.faults);
  }
  if (injector_ != nullptr) router_.set_fault_injector(injector_.get());
}

bool Substrate::PollFault(DrainOutcome* out) {
  if (injector_ == nullptr) return false;
  injector_->TickGeneration();
  std::string site;
  if (injector_->ShouldKillWorker(&site) ||
      injector_->ShouldFailAlloc(&site)) {
    out->faulted = true;
    out->fault_site = std::move(site);
    return true;
  }
  return false;
}

void Substrate::MaybeBarrierHook() {
  if (barrier_hook_ == nullptr || hook_interval_ == 0) return;
  if (++gens_since_hook_ >= hook_interval_) {
    gens_since_hook_ = 0;
    barrier_hook_();
  }
}

void Substrate::EnsureNodes(int num_nodes) {
  if (num_nodes <= router_.num_logical()) return;
  router_.GrowLogical(num_nodes);
  for (RuntimeBase* rt : runtimes_) {
    if (rt != nullptr) rt->OnTopologyGrown(num_nodes);
  }
}

bdd::Var Substrate::AllocVar() {
  bdd::Var v = static_cast<bdd::Var>(dead_.size());
  dead_.push_back(0);
  return v;
}

bool Substrate::MarkDead(bdd::Var v) {
  RECNET_CHECK_LT(v, dead_.size());
  if (dead_[v] != 0) return false;
  dead_[v] = 1;
  ++num_dead_;
  return true;
}

void Substrate::RestoreDeadVars(std::vector<char> dead) {
  // Only a virgin substrate may be restored into: any allocation that
  // happened before this point would alias the snapshot's variable ids.
  RECNET_CHECK(dead_.empty());
  dead_ = std::move(dead);
  num_dead_ = static_cast<size_t>(
      std::count_if(dead_.begin(), dead_.end(), [](char c) { return c != 0; }));
}

int Substrate::Attach(RuntimeBase* runtime) {
  int ns = static_cast<int>(runtimes_.size());
  if (ns > 0) {
    int router_ns = router_.AddNamespace();
    RECNET_CHECK_EQ(router_ns, ns);
  }
  runtimes_.push_back(runtime);
  return ns;
}

void Substrate::Detach(RuntimeBase* runtime) {
  for (size_t ns = 0; ns < runtimes_.size(); ++ns) {
    if (runtimes_[ns] != runtime) continue;
    runtimes_[ns] = nullptr;
    // Drop any traffic the retiring view still has queued, so a later
    // drain cannot dispatch into the dead namespace (Dispatch CHECKs).
    router_.PurgeNamespace(static_cast<int>(ns));
  }
}

void Substrate::Dispatch(const Envelope* envs, size_t n) {
  // A delivery run never mixes ports, so one namespace lookup routes the
  // whole batch to its owning view.
  size_t ns = static_cast<size_t>(envs[0].port) /
              static_cast<size_t>(Router::kPortsPerNamespace);
  if (ns >= runtimes_.size()) ns = runtimes_.size() - 1;
  RuntimeBase* rt = runtimes_[ns];
  RECNET_CHECK(rt != nullptr);
  rt->DeliverBatch(envs, n);
}

bool Substrate::PollAfterQuiescent(const std::vector<char>& skip_aborted) {
  // Every live view is polled every round (no short-circuit): one view's
  // re-derivation must not starve another's. Budget-aborted views are
  // skipped — their queues were just purged, so seeding re-derivation work
  // for them would resurrect a run the arbitration cut off.
  bool any = false;
  for (size_t ns = 0; ns < runtimes_.size(); ++ns) {
    RuntimeBase* rt = runtimes_[ns];
    if (rt == nullptr || skip_aborted[ns] != 0) continue;
    if (rt->AfterQuiescent()) any = true;
  }
  return any;
}

Substrate::Arbitration Substrate::BeginArbitration() const {
  Arbitration arb;
  arb.views.resize(runtimes_.size());
  arb.aborted.assign(runtimes_.size(), 0);
  for (size_t ns = 0; ns < runtimes_.size(); ++ns) {
    RuntimeBase* rt = runtimes_[ns];
    if (rt == nullptr) continue;
    arb.views[ns].rt = rt;
    arb.views[ns].base = router_.DeliveredByNs(static_cast<int>(ns));
    arb.views[ns].budget = rt->options().message_budget;
  }
  return arb;
}

void Substrate::EnforceBudgets(Arbitration* arb, DrainOutcome* out) {
  for (size_t ns = 0; ns < arb->views.size(); ++ns) {
    const ViewBudget& v = arb->views[ns];
    if (v.rt == nullptr || arb->aborted[ns] != 0) continue;
    uint64_t used = router_.DeliveredByNs(static_cast<int>(ns)) - v.base;
    if (used >= v.budget) {
      arb->aborted[ns] = 1;
      out->aborted.push_back(static_cast<int>(ns));
      v.rt->AbortForBudget();
    }
  }
}

uint64_t Substrate::StepCapacity(const Arbitration& arb) const {
  uint64_t cap = std::numeric_limits<uint64_t>::max();
  for (size_t ns = 0; ns < arb.views.size(); ++ns) {
    const ViewBudget& v = arb.views[ns];
    if (v.rt == nullptr || arb.aborted[ns] != 0) continue;
    uint64_t used = router_.DeliveredByNs(static_cast<int>(ns)) - v.base;
    // EnforceBudgets runs before every step, so live views have headroom.
    cap = std::min(cap, v.budget - used);
  }
  return cap;
}

bool Substrate::ParallelSafe() const {
  for (RuntimeBase* rt : runtimes_) {
    if (rt != nullptr && rt->options().prov == ProvMode::kRelative) {
      // Relative provenance allocates tuple pseudo-variables and marks
      // variables dead *during* the drain; both are cross-node effects
      // whose timing the parallel schedule would perturb. The serialized
      // superstep schedule is bit-identical to the sequential drain, so
      // correctness (and the determinism contract) is preserved — only the
      // parallelism is given up.
      return false;
    }
  }
  return true;
}

Substrate::DrainOutcome Substrate::DrainToFixpoint(const DrainBudget& budget) {
  return router_.num_shards() == 1 ? DrainSequential(budget)
                                   : DrainSupersteps(budget);
}

Substrate::DrainOutcome Substrate::DrainSequential(const DrainBudget& budget) {
  auto start = std::chrono::steady_clock::now();
  DrainOutcome out;
  Arbitration arb = BeginArbitration();
  uint64_t processed = 0;
  // The wall-clock budget is polled every 32 deliveries; batches are
  // clipped at the next poll point so a long coalesced run cannot overshoot
  // the time cap unchecked.
  uint64_t next_time_check = 32;
  do {
    while (router_.pending() > 0) {
      EnforceBudgets(&arb, &out);
      if (router_.pending() == 0) break;  // Aborts purged everything queued.
      // One injector tick per delivery round — the sequential analogue of a
      // superstep generation. A fault stops the drain with the queue intact.
      if (PollFault(&out)) break;
      uint64_t step_cap = StepCapacity(arb);
      if (budget.time_budget_s > 0) {
        step_cap = std::min(step_cap, next_time_check - processed);
      }
      processed += router_.StepBatch(static_cast<size_t>(step_cap));
      if (budget.time_budget_s > 0 && processed >= next_time_check) {
        next_time_check = processed + 32;
        double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        if (elapsed > budget.time_budget_s) {
          out.timed_out = true;
          break;
        }
      }
      MaybeBarrierHook();
    }
    if (out.timed_out || out.faulted) break;
    // Quiescence is the historic abort point for a view that landed exactly
    // on its budget: charge the final step before polling for more work.
    EnforceBudgets(&arb, &out);
  } while (PollAfterQuiescent(arb.aborted));
  return out;
}

Substrate::DrainOutcome Substrate::DrainSupersteps(const DrainBudget& budget) {
  std::chrono::steady_clock::time_point deadline;
  bool timed = budget.time_budget_s > 0;
  if (timed) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(budget.time_budget_s));
  }
  bool parallel = ParallelSafe();
  // Shard workers share the manager: engage its operation lock for the
  // drain. Workers are joined at every superstep barrier, so toggling here
  // is race-free.
  bdd_.set_concurrent(parallel);
  DrainOutcome out;
  Arbitration arb = BeginArbitration();
  do {
    while (router_.pending() > 0) {
      // Between generations the workers are joined, so enforcing budgets
      // (and the namespace purges an abort triggers) is race-free.
      EnforceBudgets(&arb, &out);
      if (router_.pending() == 0) break;
      // One injector tick per superstep generation, polled on the
      // coordinator with workers joined: a fired fault models a shard
      // worker dying mid-superstep (the generation never completes).
      if (PollFault(&out)) break;
      Router::StepResult step = router_.ProcessGeneration(
          StepCapacity(arb), parallel, timed ? &deadline : nullptr);
      // Superstep barrier: workers are joined, every live BDD node is
      // reachable from a Ref'd root, so this is the safe (and only) GC
      // point of a concurrent drain.
      if (parallel) bdd_.CollectAtBarrier();
      if (step.deadline_exceeded) {
        out.timed_out = true;
        break;
      }
      MaybeBarrierHook();
    }
    if (out.timed_out || out.faulted) break;
    EnforceBudgets(&arb, &out);
  } while (PollAfterQuiescent(arb.aborted));
  bdd_.set_concurrent(false);
  return out;
}

}  // namespace recnet
