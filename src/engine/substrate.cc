#include "engine/substrate.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "engine/runtime_base.h"

namespace recnet {

Substrate::Substrate(int num_nodes, const SubstrateOptions& options)
    : router_(num_nodes,
              // The physical peer pool is capped by the initial logical
              // topology exactly as the one-runtime-per-router design did;
              // a substrate created empty (num_nodes == 0, nodes arrive
              // with the first facts) keeps the full peer pool.
              num_nodes > 0 ? std::min(num_nodes, options.num_physical)
                            : options.num_physical,
              std::max(1, options.shards)) {
  router_.set_batch_handler(
      [this](const Envelope* envs, size_t n) { Dispatch(envs, n); });
  router_.set_batching(options.batch_delivery);
  injector_ = options.injector;
  if (injector_ == nullptr && options.faults.enabled()) {
    injector_ = std::make_shared<fault::FaultInjector>(options.faults);
  }
  if (injector_ != nullptr) router_.set_fault_injector(injector_.get());
  next_k_.assign(static_cast<size_t>(router_.num_shards()), 0);
}

Substrate::~Substrate() {
  for (auto& slot : dead_chunks_) {
    delete[] slot.load(std::memory_order_relaxed);
  }
}

bool Substrate::PollFault(DrainOutcome* out) {
  if (injector_ == nullptr) return false;
  injector_->TickGeneration();
  std::string site;
  if (injector_->ShouldKillWorker(&site) ||
      injector_->ShouldFailAlloc(&site)) {
    out->faulted = true;
    out->fault_site = std::move(site);
    return true;
  }
  return false;
}

void Substrate::MaybeBarrierHook() {
  if (barrier_hook_ == nullptr || hook_interval_ == 0) return;
  if (++gens_since_hook_ >= hook_interval_) {
    gens_since_hook_ = 0;
    barrier_hook_();
  }
}

void Substrate::EnsureNodes(int num_nodes) {
  if (num_nodes <= router_.num_logical()) return;
  router_.GrowLogical(num_nodes);
  for (RuntimeBase* rt : runtimes_) {
    if (rt != nullptr) rt->OnTopologyGrown(num_nodes);
  }
}

bdd::Var Substrate::AllocVar() {
  // Draw from the calling shard's id stream: shard workers allocate from
  // their own stream, external callers (current_shard() == 0 outside a
  // drain) from stream 0. Stream counters need no synchronization — each
  // is advanced by exactly one thread per generation, with barriers
  // ordering the generations.
  size_t shard = static_cast<size_t>(Router::current_shard());
  uint64_t stride = static_cast<uint64_t>(router_.num_shards());
  uint64_t v = next_k_[shard]++ * stride + shard;
  RECNET_CHECK_LT(v, kMaxDeadChunks * kDeadChunkSize);
  return static_cast<bdd::Var>(v);
}

std::atomic<uint32_t>& Substrate::DeadSlot(bdd::Var v) {
  size_t chunk_idx = v >> kDeadChunkBits;
  std::atomic<uint32_t>* chunk =
      dead_chunks_[chunk_idx].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    while (dead_alloc_lock_.exchange(true, std::memory_order_acquire)) {
    }
    chunk = dead_chunks_[chunk_idx].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new std::atomic<uint32_t>[kDeadChunkSize];
      for (size_t i = 0; i < kDeadChunkSize; ++i) {
        chunk[i].store(0, std::memory_order_relaxed);
      }
      dead_chunks_[chunk_idx].store(chunk, std::memory_order_release);
    }
    dead_alloc_lock_.store(false, std::memory_order_release);
  }
  return chunk[v & kDeadChunkMask];
}

bool Substrate::MarkDead(bdd::Var v) {
  // Epoch-at-mark + 1, plus one more when the mark is staged mid-generation
  // (visible only after the next barrier advances the epoch). The CAS makes
  // first-marker-wins exact under parallel workers; losing means the
  // variable was already dead.
  uint64_t t = dead_epoch() + (router_.draining() ? 2 : 1);
  RECNET_CHECK_LT(t, UINT32_MAX);
  uint32_t expected = 0;
  if (!DeadSlot(v).compare_exchange_strong(expected,
                                           static_cast<uint32_t>(t),
                                           std::memory_order_relaxed)) {
    return false;
  }
  num_dead_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint64_t Substrate::VarWatermark() const {
  uint64_t stride = static_cast<uint64_t>(router_.num_shards());
  uint64_t watermark = 0;
  for (size_t s = 0; s < next_k_.size(); ++s) {
    if (next_k_[s] == 0) continue;
    watermark = std::max(watermark, (next_k_[s] - 1) * stride + s + 1);
  }
  return watermark;
}

std::vector<char> Substrate::dead_vars() const {
  uint64_t len = VarWatermark();
  std::vector<char> out(static_cast<size_t>(len), 0);
  uint64_t visible_bound = dead_epoch() + 1;
  for (uint64_t v = 0; v < len; ++v) {
    const std::atomic<uint32_t>* chunk =
        dead_chunks_[v >> kDeadChunkBits].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      v |= kDeadChunkMask;  // Skip the rest of the absent chunk.
      continue;
    }
    uint32_t t = chunk[v & kDeadChunkMask].load(std::memory_order_relaxed);
    if (t == 0) continue;
    out[static_cast<size_t>(v)] = t <= visible_bound ? 1 : 2;
  }
  return out;
}

void Substrate::RestoreDeadVars(std::vector<char> dead) {
  // Only a virgin substrate may be restored into: any allocation that
  // happened before this point would alias the snapshot's variable ids.
  for (uint64_t k : next_k_) RECNET_CHECK_EQ(k, 0u);
  size_t marked = 0;
  for (size_t v = 0; v < dead.size(); ++v) {
    if (dead[v] == 0) continue;
    // Visible marks restore below the fresh epoch; staged marks restore at
    // it, becoming visible at the resumed drain's next barrier — exactly
    // the visibility the checkpoint captured.
    DeadSlot(static_cast<bdd::Var>(v))
        .store(dead[v] == 1 ? 1u : static_cast<uint32_t>(dead_epoch() + 2),
               std::memory_order_relaxed);
    ++marked;
  }
  num_dead_.store(marked, std::memory_order_relaxed);
  // Advance every id stream past the snapshot's watermark. Ids below it
  // that fall on this substrate's streams but were holes (or live ids) of
  // the snapshot's stream layout cannot be told apart, so all are skipped —
  // id values are unobservable, only freshness matters.
  uint64_t stride = static_cast<uint64_t>(router_.num_shards());
  uint64_t len = static_cast<uint64_t>(dead.size());
  for (size_t s = 0; s < next_k_.size(); ++s) {
    next_k_[s] = len > s ? (len - 1 - s) / stride + 1 : 0;
  }
}

int Substrate::Attach(RuntimeBase* runtime) {
  int ns = static_cast<int>(runtimes_.size());
  if (ns > 0) {
    int router_ns = router_.AddNamespace();
    RECNET_CHECK_EQ(router_ns, ns);
  }
  runtimes_.push_back(runtime);
  return ns;
}

void Substrate::Detach(RuntimeBase* runtime) {
  for (size_t ns = 0; ns < runtimes_.size(); ++ns) {
    if (runtimes_[ns] != runtime) continue;
    runtimes_[ns] = nullptr;
    // Drop any traffic the retiring view still has queued, so a later
    // drain cannot dispatch into the dead namespace (Dispatch CHECKs).
    router_.PurgeNamespace(static_cast<int>(ns));
  }
}

void Substrate::Dispatch(const Envelope* envs, size_t n) {
  // A delivery run never mixes ports, so one namespace lookup routes the
  // whole batch to its owning view.
  size_t ns = static_cast<size_t>(envs[0].port) /
              static_cast<size_t>(Router::kPortsPerNamespace);
  if (ns >= runtimes_.size()) ns = runtimes_.size() - 1;
  RuntimeBase* rt = runtimes_[ns];
  RECNET_CHECK(rt != nullptr);
  rt->DeliverBatch(envs, n);
}

bool Substrate::PollAfterQuiescent(const std::vector<char>& skip_aborted) {
  // Quiescence is a barrier: every queued generation has completed, so any
  // dead-variable mark staged during the drain becomes visible here. The
  // epoch bump happens before the views are polled — kRelative's
  // underivability sweep must see the kills the drain just staged.
  ++quiesce_epochs_;
  // Every live view is polled every round (no short-circuit): one view's
  // re-derivation must not starve another's. Budget-aborted views are
  // skipped — their queues were just purged, so seeding re-derivation work
  // for them would resurrect a run the arbitration cut off.
  bool any = false;
  for (size_t ns = 0; ns < runtimes_.size(); ++ns) {
    RuntimeBase* rt = runtimes_[ns];
    if (rt == nullptr || skip_aborted[ns] != 0) continue;
    if (rt->AfterQuiescent()) any = true;
  }
  return any;
}

Substrate::Arbitration Substrate::BeginArbitration() const {
  Arbitration arb;
  arb.views.resize(runtimes_.size());
  arb.aborted.assign(runtimes_.size(), 0);
  for (size_t ns = 0; ns < runtimes_.size(); ++ns) {
    RuntimeBase* rt = runtimes_[ns];
    if (rt == nullptr) continue;
    arb.views[ns].rt = rt;
    arb.views[ns].base = router_.DeliveredByNs(static_cast<int>(ns));
    arb.views[ns].budget = rt->options().message_budget;
  }
  return arb;
}

void Substrate::EnforceBudgets(Arbitration* arb, DrainOutcome* out) {
  for (size_t ns = 0; ns < arb->views.size(); ++ns) {
    const ViewBudget& v = arb->views[ns];
    if (v.rt == nullptr || arb->aborted[ns] != 0) continue;
    uint64_t used = router_.DeliveredByNs(static_cast<int>(ns)) - v.base;
    if (used >= v.budget) {
      arb->aborted[ns] = 1;
      out->aborted.push_back(static_cast<int>(ns));
      v.rt->AbortForBudget();
    }
  }
}

uint64_t Substrate::StepCapacity(const Arbitration& arb) const {
  uint64_t cap = std::numeric_limits<uint64_t>::max();
  for (size_t ns = 0; ns < arb.views.size(); ++ns) {
    const ViewBudget& v = arb.views[ns];
    if (v.rt == nullptr || arb.aborted[ns] != 0) continue;
    uint64_t used = router_.DeliveredByNs(static_cast<int>(ns)) - v.base;
    // EnforceBudgets runs before every step, so live views have headroom.
    cap = std::min(cap, v.budget - used);
  }
  return cap;
}

Substrate::DrainOutcome Substrate::DrainToFixpoint(const DrainBudget& budget) {
  return router_.num_shards() == 1 ? DrainSequential(budget)
                                   : DrainSupersteps(budget);
}

Substrate::DrainOutcome Substrate::DrainSequential(const DrainBudget& budget) {
  auto start = std::chrono::steady_clock::now();
  DrainOutcome out;
  Arbitration arb = BeginArbitration();
  uint64_t processed = 0;
  // The wall-clock budget is polled every 32 deliveries; batches are
  // clipped at the next poll point so a long coalesced run cannot overshoot
  // the time cap unchecked.
  uint64_t next_time_check = 32;
  do {
    while (router_.pending() > 0) {
      EnforceBudgets(&arb, &out);
      if (router_.pending() == 0) break;  // Aborts purged everything queued.
      // One injector tick per delivery round — the sequential analogue of a
      // superstep generation. A fault stops the drain with the queue intact.
      if (PollFault(&out)) break;
      uint64_t step_cap = StepCapacity(arb);
      if (budget.time_budget_s > 0) {
        step_cap = std::min(step_cap, next_time_check - processed);
      }
      processed += router_.StepBatch(static_cast<size_t>(step_cap));
      if (budget.time_budget_s > 0 && processed >= next_time_check) {
        next_time_check = processed + 32;
        double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        if (elapsed > budget.time_budget_s) {
          out.timed_out = true;
          break;
        }
      }
      MaybeBarrierHook();
    }
    if (out.timed_out || out.faulted) break;
    // Quiescence is the historic abort point for a view that landed exactly
    // on its budget: charge the final step before polling for more work.
    EnforceBudgets(&arb, &out);
  } while (PollAfterQuiescent(arb.aborted));
  return out;
}

Substrate::DrainOutcome Substrate::DrainSupersteps(const DrainBudget& budget) {
  std::chrono::steady_clock::time_point deadline;
  bool timed = budget.time_budget_s > 0;
  if (timed) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(budget.time_budget_s));
  }
  // Shard workers share the manager through the striped unique table and
  // per-worker op caches: give every shard its private slot and switch the
  // hot path to its concurrent (stripe-locked, barrier-GC) mode. Workers
  // are joined at every superstep barrier, so toggling here is race-free.
  // Every provenance mode runs parallel now — kRelative's pseudo-variable
  // allocation uses per-shard interleaved id streams and its kills are
  // staged behind the barrier epoch, so the schedule no longer leaks.
  // A single-hardware-thread host never spawns drain workers (the router
  // interleaves shards on this thread), so it keeps the manager's cheaper
  // single-threaded mode; results are bit-identical either way.
  const bool parallel = Router::ParallelWidth() > 1;
  bdd_.EnsureWorkerSlots(static_cast<size_t>(router_.num_shards()));
  bdd_.set_concurrent(parallel);
  DrainOutcome out;
  Arbitration arb = BeginArbitration();
  do {
    while (router_.pending() > 0) {
      // Between generations the workers are joined, so enforcing budgets
      // (and the namespace purges an abort triggers) is race-free.
      EnforceBudgets(&arb, &out);
      if (router_.pending() == 0) break;
      // One injector tick per superstep generation, polled on the
      // coordinator with workers joined: a fired fault models a shard
      // worker dying mid-superstep (the generation never completes).
      if (PollFault(&out)) break;
      Router::StepResult step = router_.ProcessGeneration(
          StepCapacity(arb), parallel, timed ? &deadline : nullptr);
      // Superstep barrier: workers are joined, every live BDD node is
      // reachable from a Ref'd root, so this is the safe (and only) GC
      // point of a concurrent drain.
      if (parallel) bdd_.CollectAtBarrier();
      if (step.deadline_exceeded) {
        out.timed_out = true;
        break;
      }
      MaybeBarrierHook();
    }
    if (out.timed_out || out.faulted) break;
    EnforceBudgets(&arb, &out);
  } while (PollAfterQuiescent(arb.aborted));
  bdd_.set_concurrent(false);
  return out;
}

}  // namespace recnet
