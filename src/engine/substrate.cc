#include "engine/substrate.h"

#include <algorithm>
#include <chrono>

#include "engine/runtime_base.h"

namespace recnet {

Substrate::Substrate(int num_nodes, const SubstrateOptions& options)
    : router_(num_nodes,
              // The physical peer pool is capped by the initial logical
              // topology exactly as the one-runtime-per-router design did;
              // a substrate created empty (num_nodes == 0, nodes arrive
              // with the first facts) keeps the full peer pool.
              num_nodes > 0 ? std::min(num_nodes, options.num_physical)
                            : options.num_physical,
              std::max(1, options.shards)) {
  router_.set_batch_handler(
      [this](const Envelope* envs, size_t n) { Dispatch(envs, n); });
  router_.set_batching(options.batch_delivery);
}

void Substrate::EnsureNodes(int num_nodes) {
  if (num_nodes <= router_.num_logical()) return;
  router_.GrowLogical(num_nodes);
  for (RuntimeBase* rt : runtimes_) {
    if (rt != nullptr) rt->OnTopologyGrown(num_nodes);
  }
}

bdd::Var Substrate::AllocVar() {
  bdd::Var v = static_cast<bdd::Var>(dead_.size());
  dead_.push_back(0);
  return v;
}

bool Substrate::MarkDead(bdd::Var v) {
  RECNET_CHECK_LT(v, dead_.size());
  if (dead_[v] != 0) return false;
  dead_[v] = 1;
  ++num_dead_;
  return true;
}

int Substrate::Attach(RuntimeBase* runtime) {
  int ns = static_cast<int>(runtimes_.size());
  if (ns > 0) {
    int router_ns = router_.AddNamespace();
    RECNET_CHECK_EQ(router_ns, ns);
  }
  runtimes_.push_back(runtime);
  return ns;
}

void Substrate::Detach(RuntimeBase* runtime) {
  for (size_t ns = 0; ns < runtimes_.size(); ++ns) {
    if (runtimes_[ns] != runtime) continue;
    runtimes_[ns] = nullptr;
    // Drop any traffic the retiring view still has queued, so a later
    // drain cannot dispatch into the dead namespace (Dispatch CHECKs).
    router_.PurgeNamespace(static_cast<int>(ns));
  }
}

void Substrate::Dispatch(const Envelope* envs, size_t n) {
  // A delivery run never mixes ports, so one namespace lookup routes the
  // whole batch to its owning view.
  size_t ns = static_cast<size_t>(envs[0].port) /
              static_cast<size_t>(Router::kPortsPerNamespace);
  if (ns >= runtimes_.size()) ns = runtimes_.size() - 1;
  RuntimeBase* rt = runtimes_[ns];
  RECNET_CHECK(rt != nullptr);
  rt->DeliverBatch(envs, n);
}

bool Substrate::PollAfterQuiescent() {
  // Every view is polled every round (no short-circuit): one view's
  // re-derivation must not starve another's.
  bool any = false;
  for (RuntimeBase* rt : runtimes_) {
    if (rt != nullptr && rt->AfterQuiescent()) any = true;
  }
  return any;
}

bool Substrate::ParallelSafe() const {
  for (RuntimeBase* rt : runtimes_) {
    if (rt != nullptr && rt->options().prov == ProvMode::kRelative) {
      // Relative provenance allocates tuple pseudo-variables and marks
      // variables dead *during* the drain; both are cross-node effects
      // whose timing the parallel schedule would perturb. The serialized
      // superstep schedule is bit-identical to the sequential drain, so
      // correctness (and the determinism contract) is preserved — only the
      // parallelism is given up.
      return false;
    }
  }
  return true;
}

bool Substrate::DrainToFixpoint(const DrainBudget& budget) {
  return router_.num_shards() == 1 ? DrainSequential(budget)
                                   : DrainSupersteps(budget);
}

bool Substrate::DrainSequential(const DrainBudget& budget) {
  auto start = std::chrono::steady_clock::now();
  bool ok = true;
  uint64_t processed = 0;
  // The wall-clock budget is polled every 32 deliveries; batches are
  // clipped at the next poll point so a long coalesced run cannot overshoot
  // the time cap unchecked.
  uint64_t next_time_check = 32;
  do {
    while (router_.pending() > 0) {
      uint64_t step_cap = budget.message_budget - processed;
      if (budget.time_budget_s > 0) {
        step_cap = std::min(step_cap, next_time_check - processed);
      }
      processed += router_.StepBatch(static_cast<size_t>(step_cap));
      if (processed >= budget.message_budget) {
        ok = false;
        break;
      }
      if (budget.time_budget_s > 0 && processed >= next_time_check) {
        next_time_check = processed + 32;
        double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        if (elapsed > budget.time_budget_s) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) break;
  } while (PollAfterQuiescent());
  return ok;
}

bool Substrate::DrainSupersteps(const DrainBudget& budget) {
  std::chrono::steady_clock::time_point deadline;
  bool timed = budget.time_budget_s > 0;
  if (timed) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(budget.time_budget_s));
  }
  bool parallel = ParallelSafe();
  // Shard workers share the manager: engage its operation lock for the
  // drain. Workers are joined at every superstep barrier, so toggling here
  // is race-free.
  bdd_.set_concurrent(parallel);
  bool ok = true;
  uint64_t processed = 0;
  do {
    while (router_.pending() > 0) {
      Router::StepResult step = router_.ProcessGeneration(
          budget.message_budget - processed, parallel,
          timed ? &deadline : nullptr);
      processed += step.delivered;
      // Superstep barrier: workers are joined, every live BDD node is
      // reachable from a Ref'd root, so this is the safe (and only) GC
      // point of a concurrent drain.
      if (parallel) bdd_.CollectAtBarrier();
      if (processed >= budget.message_budget || step.deadline_exceeded) {
        ok = false;
        break;
      }
    }
    if (!ok) break;
  } while (PollAfterQuiescent());
  bdd_.set_concurrent(false);
  return ok;
}

}  // namespace recnet
