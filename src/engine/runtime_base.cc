#include "engine/runtime_base.h"

#include <algorithm>
#include <chrono>

#include "persist/codec.h"

namespace recnet {

RuntimeBase::RuntimeBase(int num_logical, const RuntimeOptions& options)
    : RuntimeBase(std::make_shared<Substrate>(
                      num_logical,
                      SubstrateOptions{options.num_physical,
                                       options.batch_delivery,
                                       options.shards,
                                       /*injector=*/nullptr,
                                       options.faults}),
                  num_logical, options) {}

RuntimeBase::RuntimeBase(std::shared_ptr<Substrate> substrate, int num_logical,
                         const RuntimeOptions& options)
    : opts_(options), sub_(std::move(substrate)) {
  RECNET_CHECK(sub_ != nullptr);
  // Grow the shared node-id space first (only other views are notified —
  // this one is being built at the requested size), then claim a port
  // namespace.
  sub_->EnsureNodes(num_logical);
  num_logical_ = num_logical;
  ns_ = sub_->Attach(this);
  port_base_ = ns_ * Router::kPortsPerNamespace;
  subs_.resize(static_cast<size_t>(num_logical));
  kills_done_.resize(static_cast<size_t>(num_logical));
  view_delta_logs_.resize(
      static_cast<size_t>(sub_->router().num_shards()));
}

RuntimeBase::~RuntimeBase() {
  if (sub_ != nullptr) sub_->Detach(this);
}

void RuntimeBase::GrowKillRouting(int num_nodes) {
  if (num_nodes <= num_logical_) return;
  num_logical_ = num_nodes;
  subs_.resize(static_cast<size_t>(num_nodes));
  kills_done_.resize(static_cast<size_t>(num_nodes));
}

bool RuntimeBase::Run() {
  // A fresh run supersedes any frozen abort snapshot: its metrics must be
  // visible again (converged_ stays false until ResetMetrics, recording
  // that some run since the last reset was cut off).
  abort_metrics_.reset();
  last_fault_.clear();
  auto start = std::chrono::steady_clock::now();
  Substrate::DrainOutcome out = sub_->DrainToFixpoint(
      Substrate::DrainBudget{opts_.message_budget, opts_.time_budget_s});
  auto end = std::chrono::steady_clock::now();
  wall_seconds_ += std::chrono::duration<double>(end - start).count();
  bool self_aborted = std::find(out.aborted.begin(), out.aborted.end(), ns_) !=
                      out.aborted.end();
  if (self_aborted && abort_metrics_.has_value()) {
    // The drain's arbitration froze the snapshot (via AbortForBudget)
    // before this run's wall time was booked; patch the timing fields so a
    // ">budget" figure cell still reports what the cutoff cost.
    abort_metrics_->wall_seconds = wall_seconds_;
    abort_metrics_->sim_seconds = EstimateSimSeconds(
        wall_seconds_, abort_metrics_->messages, router().num_physical(),
        opts_.per_msg_latency_s);
  }
  if (out.faulted) {
    // An injected infrastructure fault stopped the drain. Unlike a budget
    // cutoff nothing is purged or marked non-converged: the queues (and the
    // charge counters that describe them) are exactly the resumable state a
    // recovery rolls back to, so the run is merely incomplete.
    last_fault_ = out.fault_site.empty() ? "fault" : out.fault_site;
    return false;
  }
  if (out.timed_out && !self_aborted) {
    // Wall-clock cutoff: the time budget belongs to the initiating view, so
    // it pays — only THIS view's queued envelopes are dropped (and
    // uncharged), only this view is marked non-converged, and its metrics
    // freeze at the moment of the cutoff. Co-resident views keep their
    // in-flight traffic in FIFO order and can converge on a later Apply.
    // (Message budgets are per view and already enforced inside the drain.)
    router().AbortNamespace(ns_);
    converged_ = false;
    abort_metrics_ = ComputeMetrics();
  }
  return !out.timed_out && !self_aborted;
}

void RuntimeBase::AbortForBudget() {
  // See Run(): identical record to a budget-aborted solo run, produced
  // mid-drain by the fair-share arbitration. Purging uncharges the dropped
  // queue before the metrics snapshot, so the frozen cell is consistent.
  router().AbortNamespace(ns_);
  converged_ = false;
  abort_metrics_ = ComputeMetrics();
}

RunMetrics RuntimeBase::Metrics() const {
  if (abort_metrics_.has_value()) return *abort_metrics_;
  return ComputeMetrics();
}

RunMetrics RuntimeBase::ComputeMetrics() const {
  const NetworkStats s = router().stats(ns_);  // Merged across shards.
  RunMetrics m;
  m.per_tuple_prov_bytes = s.AvgProvBytesPerTuple();
  m.comm_mb = s.CommMB();
  m.state_mb = static_cast<double>(StateSizeBytes()) / (1024.0 * 1024.0);
  m.wall_seconds = wall_seconds_;
  m.sim_seconds = EstimateSimSeconds(wall_seconds_, s.messages,
                                     router().num_physical(),
                                     opts_.per_msg_latency_s);
  m.messages = s.messages;
  m.kill_messages = s.kill_messages;
  m.batches = s.batches;
  m.aborted_runs = s.aborted_runs;
  m.dropped_messages = s.dropped_messages;
  m.link_dropped = s.link_dropped;
  m.link_duplicated = s.link_duplicated;
  m.link_retried = s.link_retried;
  m.converged = converged_;
  const bdd::Manager& mgr = *sub_->bdd_manager();
  m.bdd_stripe_contention = mgr.stripe_contention();
  uint64_t lookups = mgr.cache_lookups();
  m.bdd_cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(mgr.cache_hits()) /
                         static_cast<double>(lookups);
  m.bdd_store_segments = static_cast<uint64_t>(mgr.store_segments());
  m.ship_demotions = CountShipDemotions();
  return m;
}

void RuntimeBase::SaveState(persist::SnapshotWriter& w) const {
  persist::Writer& raw = w.raw();
  raw.U64(num_dead_.load(std::memory_order_relaxed));
  // Relative-provenance pseudo-variables. tuple_vars_ re-inserts in
  // iteration order (flat-table layout reproduction — TupleVar misses probe
  // it); var_tuples_ is lookup-only.
  raw.U64(tuple_vars_.size());
  for (const auto& [tuple, var] : tuple_vars_) {
    w.PutTuple(tuple);
    raw.U32(var);
  }
  raw.U64(var_tuples_.size());
  for (const auto& [var, tuple] : var_tuples_) {
    raw.U32(var);
    w.PutTuple(tuple);
  }
  // Kill-subscription routing, per logical node, in table order (AcceptKill
  // only probes, but ShipInsert appends to the per-variable destination
  // lists, whose order decides kill fan-out order — saved verbatim).
  raw.U32(static_cast<uint32_t>(subs_.size()));
  for (const auto& node_subs : subs_) {
    raw.U64(node_subs.size());
    for (const auto& [var, dests] : node_subs) {
      raw.U32(var);
      raw.U32(static_cast<uint32_t>(dests.size()));
      for (LogicalNode d : dests) raw.I32(d);
    }
  }
  // Per-node kill dedup sets (membership-only).
  raw.U32(static_cast<uint32_t>(kills_done_.size()));
  for (const auto& done : kills_done_) {
    raw.U64(done.size());
    for (bdd::Var v : done) raw.U32(v);
  }
  raw.F64(wall_seconds_);
  raw.Bool(converged_);
  raw.Bool(abort_metrics_.has_value());
  if (abort_metrics_.has_value()) w.PutMetrics(*abort_metrics_);
}

Status RuntimeBase::LoadState(persist::SnapshotReader& r) {
  persist::Reader& raw = r.raw();
  num_dead_.store(static_cast<size_t>(raw.U64()), std::memory_order_relaxed);
  uint64_t num_tuple_vars = raw.Count(4);
  tuple_vars_.reserve(num_tuple_vars);
  for (uint64_t i = 0; i < num_tuple_vars && raw.ok(); ++i) {
    Tuple tuple = r.GetTuple();
    bdd::Var var = raw.U32();
    tuple_vars_.emplace(std::move(tuple), var);
  }
  uint64_t num_var_tuples = raw.Count(4);
  var_tuples_.reserve(num_var_tuples);
  for (uint64_t i = 0; i < num_var_tuples && raw.ok(); ++i) {
    bdd::Var var = raw.U32();
    var_tuples_.emplace(var, r.GetTuple());
  }
  uint32_t num_sub_nodes = raw.U32();
  if (raw.ok() && num_sub_nodes != subs_.size()) {
    return Status::InvalidArgument(
        "snapshot view state spans a different node count than the "
        "reconstructed runtime");
  }
  for (uint32_t n = 0; n < num_sub_nodes && raw.ok(); ++n) {
    auto& node_subs = subs_[n];
    RECNET_CHECK(node_subs.empty());
    uint64_t nvars = raw.Count(9);
    node_subs.reserve(nvars);
    for (uint64_t i = 0; i < nvars && raw.ok(); ++i) {
      bdd::Var var = raw.U32();
      uint32_t ndests = raw.U32();
      if (!raw.CanRead(static_cast<size_t>(ndests) * 4)) break;
      std::vector<LogicalNode>& dests = node_subs[var];
      dests.reserve(ndests);
      for (uint32_t j = 0; j < ndests; ++j) dests.push_back(raw.I32());
    }
  }
  uint32_t num_kill_nodes = raw.U32();
  if (raw.ok() && num_kill_nodes != kills_done_.size()) {
    return Status::InvalidArgument(
        "snapshot kill-dedup state spans a different node count than the "
        "reconstructed runtime");
  }
  for (uint32_t n = 0; n < num_kill_nodes && raw.ok(); ++n) {
    auto& done = kills_done_[n];
    RECNET_CHECK(done.empty());
    uint64_t nvars = raw.Count(4);
    done.reserve(nvars);
    for (uint64_t i = 0; i < nvars && raw.ok(); ++i) done.insert(raw.U32());
  }
  wall_seconds_ = raw.F64();
  converged_ = raw.Bool();
  if (raw.Bool()) {
    abort_metrics_ = r.GetMetrics();
  } else {
    abort_metrics_.reset();
  }
  return r.Check("runtime base state");
}

void RuntimeBase::ResetMetrics() {
  router().ResetStats(ns_);
  wall_seconds_ = 0;
  converged_ = true;
  abort_metrics_.reset();
}

Prov RuntimeBase::GuardIncoming(const Prov& pv) const {
  // Per-view fast path: only this view's own dead variables can appear in
  // its annotations, so neighbors' kills never force the support scan.
  if (!AnyDead() || opts_.prov == ProvMode::kSet) return pv;
  // Scratch for the support extraction is thread-local (not a member):
  // parallel shard workers guard concurrently for different nodes, and the
  // common case still allocates nothing after warm-up.
  static thread_local std::vector<bdd::Var> support_scratch;
  static thread_local std::vector<bdd::Var> dead_scratch;
  support_scratch.clear();
  pv.SupportVars(&support_scratch);
  dead_scratch.clear();
  for (bdd::Var v : support_scratch) {
    if (sub_->is_dead(v)) dead_scratch.push_back(v);
  }
  if (dead_scratch.empty()) return pv;
  return pv.RestrictFalse(dead_scratch);
}

void RuntimeBase::ShipInsert(LogicalNode from, LogicalNode to, int port,
                             Tuple tuple, Prov pv) {
  if (opts_.prov != ProvMode::kSet && from != to) {
    static thread_local std::vector<bdd::Var> support_scratch;
    support_scratch.clear();
    pv.SupportVars(&support_scratch);
    auto& from_subs = subs_[static_cast<size_t>(from)];
    for (bdd::Var v : support_scratch) {
      std::vector<LogicalNode>& dests = from_subs[v];
      if (std::find(dests.begin(), dests.end(), to) == dests.end()) {
        dests.push_back(to);
      }
    }
  }
  Send(from, to, port, Update::Insert(std::move(tuple), std::move(pv)));
}

void RuntimeBase::StartKill(LogicalNode origin, std::vector<bdd::Var> killed) {
  for (bdd::Var v : killed) MarkDead(v);
  Send(origin, origin, kPortKill, Update::Kill(std::move(killed)));
}

std::vector<bdd::Var> RuntimeBase::AcceptKill(
    LogicalNode at, const std::vector<bdd::Var>& killed) {
  auto& done = kills_done_[static_cast<size_t>(at)];
  std::vector<bdd::Var> fresh;
  for (bdd::Var v : killed) {
    if (done.insert(v).second) fresh.push_back(v);
  }
  if (fresh.empty()) return fresh;
  // Forward along subscription edges, grouped per destination so each
  // neighbor receives one kill message for this batch. The per-destination
  // buffers come from the router's kill arena (recycled storage scavenged
  // from delivered kill envelopes on this node's shard), so steady-state
  // kill routing does not allocate. The grouping map itself stays a fresh
  // local: its iteration order decides kill send order, and a reused map's
  // bucket history would perturb that order between schedules.
  std::unordered_map<LogicalNode, std::vector<bdd::Var>> forward;
  auto& at_subs = subs_[static_cast<size_t>(at)];
  for (bdd::Var v : fresh) {
    auto it = at_subs.find(v);
    if (it == at_subs.end()) continue;
    for (LogicalNode dest : it->second) {
      auto [slot, inserted] = forward.try_emplace(dest);
      if (inserted) slot->second = router().AcquireKillBuffer(at);
      slot->second.push_back(v);
    }
  }
  for (auto& [dest, vars] : forward) {
    Send(at, dest, kPortKill, Update::Kill(std::move(vars)));
  }
  return fresh;
}

bdd::Var RuntimeBase::TupleVar(const Tuple& t) {
  // Parallel shard workers race to name the same tuple; the mutex makes the
  // find-or-alloc atomic so exactly one pseudo-variable ever stands for a
  // tuple. AllocVar is safe under the lock: it only advances the calling
  // shard's private id stream.
  std::lock_guard<std::mutex> lock(tuple_vars_mu_);
  auto it = tuple_vars_.find(t);
  if (it != tuple_vars_.end()) return it->second;
  bdd::Var v = AllocVar();
  tuple_vars_.emplace(t, v);
  var_tuples_.emplace(v, t);
  return v;
}

Prov RuntimeBase::RefProv(const Tuple& t) {
  return Prov::BaseVar(opts_.prov, sub_->bdd_manager(), TupleVar(t));
}

void RuntimeBase::OnTupleRemoved(LogicalNode owner, const Tuple& t) {
  if (opts_.prov != ProvMode::kRelative) return;
  bdd::Var v;
  {
    std::lock_guard<std::mutex> lock(tuple_vars_mu_);
    auto it = tuple_vars_.find(t);
    if (it == tuple_vars_.end()) return;
    v = it->second;
    tuple_vars_.erase(it);
    // Keep the reverse entry: annotations in flight may still mention v,
    // and the dead-variable guard needs to classify it. The variable is
    // dead and never reused.
  }
  // The kill is sent outside the lock — StartKill routes through the
  // subscription tables and the router, neither of which touches the
  // pseudo-variable tables.
  StartKill(owner, {v});
}

std::vector<std::pair<LogicalNode, Tuple>> RuntimeBase::FindUnderivable(
    const std::vector<ViewEntry>& view) const {
  // Least fixpoint: a tuple is derivable iff some derivation references
  // only live base variables and derivable antecedent tuples. Tuples
  // supported only through cycles never enter the fixpoint.
  std::unordered_map<Tuple, size_t, TupleHash> index;
  index.reserve(view.size());
  for (size_t i = 0; i < view.size(); ++i) index.emplace(*view[i].tuple, i);
  std::vector<bool> derivable(view.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < view.size(); ++i) {
      if (derivable[i]) continue;
      for (const auto& derivation : view[i].pv->rel().derivations) {
        bool valid = true;
        for (bdd::Var v : derivation) {
          if (sub_->is_dead(v)) {
            valid = false;
            break;
          }
          auto vt = var_tuples_.find(v);
          if (vt != var_tuples_.end()) {
            auto idx = index.find(vt->second);
            if (idx == index.end() || !derivable[idx->second]) {
              valid = false;
              break;
            }
          }
        }
        if (valid) {
          derivable[i] = true;
          changed = true;
          break;
        }
      }
    }
  }
  std::vector<std::pair<LogicalNode, Tuple>> underivable;
  for (size_t i = 0; i < view.size(); ++i) {
    if (!derivable[i]) underivable.emplace_back(view[i].owner, *view[i].tuple);
  }
  return underivable;
}

}  // namespace recnet
