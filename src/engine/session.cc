#include "engine/session.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "datalog/analyzer.h"
#include "datalog/parser.h"

namespace recnet {
namespace {

// Numeric literals with an exact integral value become int64 (node ids);
// everything else stays double (costs).
Value NumberToValue(double d) {
  if (std::floor(d) == d && std::abs(d) < 9.0e15) {
    return Value(static_cast<int64_t>(d));
  }
  return Value(d);
}

Tuple TupleOfDoubles(std::initializer_list<double> vals) {
  std::vector<Value> out;
  out.reserve(vals.size());
  for (double d : vals) out.push_back(NumberToValue(d));
  return Tuple(std::move(out));
}

// A ground fact's arguments as a Tuple (the planner already rejected
// non-constant arguments).
Tuple FactTuple(const datalog::Rule& fact) {
  std::vector<Value> out;
  out.reserve(fact.head.args.size());
  for (const datalog::Term& term : fact.head.args) {
    if (term.kind == datalog::Term::Kind::kString) {
      out.push_back(Value(term.text));
    } else {
      out.push_back(NumberToValue(term.number));
    }
  }
  return Tuple(std::move(out));
}

}  // namespace

Session::Session(const SessionOptions& options)
    // A negative initial size is clamped: AddProgram surfaces the typed
    // InvalidArgument (the substrate itself must exist to report it).
    : substrate_(std::make_shared<Substrate>(
          options.num_nodes > 0 ? options.num_nodes : 0,
          SubstrateOptions{options.num_physical, options.batch_delivery,
                           options.shards})) {}

Session::~Session() = default;

StatusOr<View*> Session::AddProgram(const std::string& source,
                                    const EngineOptions& options) {
  StatusOr<datalog::Program> program = datalog::Parse(source);
  if (!program.ok()) return program.status();
  StatusOr<datalog::ProgramInfo> info = datalog::Analyze(program.value());
  if (!info.ok()) return info.status();
  StatusOr<datalog::PlanSpec> plan =
      datalog::PlanProgram(program.value(), info.value());
  if (!plan.ok()) return plan.status();

  // Shared-EDB schema agreement: a relation two views share must mean the
  // same thing in both, or one fan-out fact would be valid for one view and
  // an error for the other.
  for (const datalog::RelationDecl& decl : plan.value().Relations()) {
    auto it = relations_.find(decl.name);
    if (it != relations_.end() && (it->second.arity != decl.arity ||
                                   it->second.dynamic != decl.dynamic)) {
      return Status::InvalidArgument(
          "relation '" + decl.name + "' (arity " + std::to_string(decl.arity) +
          (decl.dynamic ? ", dynamic" : ", deployment-defined") +
          ") conflicts with a co-resident view's declaration (arity " +
          std::to_string(it->second.arity) +
          (it->second.dynamic ? ", dynamic" : ", deployment-defined") + ")");
    }
  }

  StatusOr<std::unique_ptr<QueryRuntime>> runtime =
      InstantiateRuntime(plan.value(), options, *this);
  if (!runtime.ok()) return runtime.status();

  std::unique_ptr<View> view(
      new View(this, std::move(plan).value(), std::move(runtime).value()));
  View* handle = view.get();

  const std::vector<datalog::RelationDecl> decls = handle->plan_.Relations();

  // Cross-view EDB sharing, part 1: the session's live facts flow into the
  // late-added view so it starts from the shared base state.
  for (const auto& [relation, fact] : fact_log_) {
    if (relation.empty()) continue;  // Tombstone (deleted fact).
    bool declared = false;
    for (const datalog::RelationDecl& decl : decls) {
      if (decl.dynamic && decl.name == relation) {
        declared = true;
        break;
      }
    }
    if (!declared) continue;
    Status st = handle->runtime_->Insert(relation, fact);
    if (!st.ok()) {
      return Status(st.code(), "replaying session fact " + relation +
                                   fact.ToString() + ": " + st.message());
    }
  }

  views_.push_back(std::move(view));
  for (const datalog::RelationDecl& decl : decls) {
    RelationInfo& info_entry = relations_[decl.name];
    info_entry.arity = decl.arity;
    info_entry.dynamic = decl.dynamic;
    info_entry.views.push_back(handle);
  }

  // Cross-view EDB sharing, part 2: the program's own ground facts load
  // through the session store, fanning out to every co-resident view that
  // declares the relation. Deployment facts (the region plan's seed and
  // proximity EDBs) were consumed by the runtime factory and stay static.
  for (const datalog::Rule& fact : handle->plan_.facts) {
    if (handle->plan_.IsStaticRelation(fact.head.predicate)) continue;
    Status st = Insert(fact.head.predicate, FactTuple(fact));
    if (!st.ok()) {
      // The error must be rendered before the rollback below destroys the
      // view (and with it the plan's fact storage `fact` points into).
      Status out(st.code(), "loading fact " + fact.ToString() + " (line " +
                                std::to_string(fact.line) +
                                "): " + st.message());
      // Keep the session consistent: retract the failed view's
      // registration (facts already fanned to older views stay — shared
      // enqueues cannot be unsent).
      for (const datalog::RelationDecl& decl : decls) {
        auto rel_it = relations_.find(decl.name);
        if (rel_it == relations_.end()) continue;
        auto& declaring = rel_it->second.views;
        declaring.erase(
            std::remove(declaring.begin(), declaring.end(), handle),
            declaring.end());
        if (declaring.empty()) relations_.erase(rel_it);
      }
      views_.pop_back();
      return out;
    }
  }
  return handle;
}

Tuple Session::TaggedFact(const std::string& relation, const Tuple& fact) {
  std::vector<Value> key;
  key.reserve(fact.size() + 1);
  key.push_back(Value(relation));
  for (const Value& v : fact.values()) key.push_back(v);
  return Tuple(std::move(key));
}

Status Session::IngestInsert(const std::string& relation, const Tuple& fact) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("unknown base relation '" + relation +
                            "' (no co-resident view declares it)");
  }
  for (View* view : it->second.views) {
    RECNET_RETURN_IF_ERROR(view->runtime_->Insert(relation, fact));
  }
  // Record for replay into late-added programs (dynamic relations only; a
  // static relation never reaches this point — its view rejected it
  // above). A fact deleted earlier reclaims its tombstoned slot, so the
  // log is bounded by the number of distinct facts, not by churn.
  Tuple tag = TaggedFact(relation, fact);
  auto [slot, fresh] = fact_index_.try_emplace(std::move(tag),
                                               fact_log_.size());
  if (fresh) {
    fact_log_.emplace_back(relation, fact);
  } else if (fact_log_[slot->second].first.empty()) {
    fact_log_[slot->second].first = relation;
  }
  return Status::OK();
}

Status Session::IngestDelete(const std::string& relation, const Tuple& fact) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("unknown base relation '" + relation +
                            "' (no co-resident view declares it)");
  }
  for (View* view : it->second.views) {
    RECNET_RETURN_IF_ERROR(view->runtime_->Delete(relation, fact));
  }
  auto idx = fact_index_.find(TaggedFact(relation, fact));
  if (idx != fact_index_.end()) {
    // Tombstone the slot but keep the index entry: a re-insert reclaims it
    // instead of growing the log.
    fact_log_[idx->second].first.clear();
  }
  return Status::OK();
}

Status Session::Insert(const std::string& relation, const Tuple& fact) {
  // A plain insert makes the fact permanent: drop any soft-state deadline
  // a prior InsertWithTtl left behind so it cannot expire later.
  clock_.Remove(TaggedFact(relation, fact));
  return IngestInsert(relation, fact);
}

Status Session::Delete(const std::string& relation, const Tuple& fact) {
  clock_.Remove(TaggedFact(relation, fact));
  return IngestDelete(relation, fact);
}

Status Session::Insert(const std::string& relation,
                       std::initializer_list<double> fact) {
  return Insert(relation, TupleOfDoubles(fact));
}

Status Session::Delete(const std::string& relation,
                       std::initializer_list<double> fact) {
  return Delete(relation, TupleOfDoubles(fact));
}

Status Session::InsertWithTtl(const std::string& relation, const Tuple& fact,
                              double ttl) {
  Tuple key = TaggedFact(relation, fact);
  if (clock_.Contains(key)) {
    // Soft-state renewal: extend the deadline; the live fact and its base
    // variables stay put, so nothing propagates.
    clock_.Insert(key, ttl);
    return Status::OK();
  }
  RECNET_RETURN_IF_ERROR(IngestInsert(relation, fact));
  clock_.Insert(key, ttl);
  return Status::OK();
}

Status Session::AdvanceTime(double t) {
  if (t < clock_.now()) {
    return Status::InvalidArgument("clock cannot run backwards (now=" +
                                   std::to_string(clock_.now()) + ")");
  }
  std::vector<Tuple> expirations = clock_.AdvanceTo(t);
  // TTL expiry is the one mutation source outside the incremental delta
  // flow (deadlines fire from the session clock, not the dataflow); it
  // stays a full cache rebuild, in every view.
  if (!expirations.empty()) {
    for (const auto& view : views_) {
      view->runtime_->InvalidateCachesForExpiry();
    }
  }
  // The clock has already dropped every deadline, so process the whole
  // expiration batch even if one deletion fails — stopping early would
  // silently make the remaining expired facts permanent.
  Status first_error = Status::OK();
  for (const Tuple& expired : expirations) {
    std::vector<Value> fact(expired.values().begin() + 1,
                            expired.values().end());
    Status st = IngestDelete(expired.StringAt(0), Tuple(std::move(fact)));
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status Session::ApplyFrom(QueryRuntime* initiator) {
  if (views_.empty()) return Status::OK();
  if (initiator == nullptr) initiator = views_.front()->runtime_.get();
  // One drain converges every co-resident view (they share the FIFO), so
  // every view's cache maintenance must bracket it: arm all delta logs
  // before, patch all caches after.
  for (const auto& view : views_) view->runtime_->PrepareApply();
  Status run_status = initiator->ApplyUpdates();
  for (const auto& view : views_) view->runtime_->FinishApply(run_status);
  return run_status;
}

Status Session::Apply() { return ApplyFrom(nullptr); }

int Session::AddNode() {
  int id = substrate_->num_logical();
  substrate_->EnsureNodes(id + 1);
  return id;
}

void Session::EnsureNodes(int num_nodes) { substrate_->EnsureNodes(num_nodes); }

int Session::num_nodes() const { return substrate_->num_logical(); }

// --- View -------------------------------------------------------------------

Status View::Apply() { return session_->ApplyFrom(runtime_.get()); }

StatusOr<std::vector<Tuple>> View::Scan(const std::string& view) const {
  return runtime_->Scan(view);
}

StatusOr<bool> View::Contains(const std::string& view,
                              const Tuple& tuple) const {
  StatusOr<Tuple> found = runtime_->Lookup(view, tuple);
  if (found.ok()) return true;
  if (found.status().code() == StatusCode::kNotFound) return false;
  return found.status();
}

StatusOr<bool> View::Contains(const std::string& view,
                              std::initializer_list<double> tuple) const {
  return Contains(view, TupleOfDoubles(tuple));
}

StatusOr<Tuple> View::Lookup(const std::string& view, const Tuple& key) const {
  return runtime_->Lookup(view, key);
}

StatusOr<Tuple> View::Lookup(const std::string& view,
                             std::initializer_list<double> key) const {
  return Lookup(view, TupleOfDoubles(key));
}

StatusOr<std::vector<Tuple>> View::Explain(const std::string& view,
                                           const Tuple& tuple) const {
  if (view != plan_.view) {
    return Status::InvalidArgument(
        "provenance witnesses exist for the recursive view '" + plan_.view +
        "' only, not '" + view + "'");
  }
  return runtime_->Explain(tuple);
}

}  // namespace recnet
