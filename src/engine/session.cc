#include "engine/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <utility>

#include "datalog/analyzer.h"
#include "datalog/parser.h"
#include "persist/codec.h"
#include "persist/snapshot.h"
#include "provenance/prov.h"

namespace recnet {
namespace {

// Numeric literals with an exact integral value become int64 (node ids);
// everything else stays double (costs).
Value NumberToValue(double d) {
  if (std::floor(d) == d && std::abs(d) < 9.0e15) {
    return Value(static_cast<int64_t>(d));
  }
  return Value(d);
}

Tuple TupleOfDoubles(std::initializer_list<double> vals) {
  std::vector<Value> out;
  out.reserve(vals.size());
  for (double d : vals) out.push_back(NumberToValue(d));
  return Tuple(std::move(out));
}

// A ground fact's arguments as a Tuple (the planner already rejected
// non-constant arguments).
Tuple FactTuple(const datalog::Rule& fact) {
  std::vector<Value> out;
  out.reserve(fact.head.args.size());
  for (const datalog::Term& term : fact.head.args) {
    if (term.kind == datalog::Term::Kind::kString) {
      out.push_back(Value(term.text));
    } else {
      out.push_back(NumberToValue(term.number));
    }
  }
  return Tuple(std::move(out));
}

// --- EngineOptions wire codec ------------------------------------------------
//
// A program record in a snapshot is (source text, EngineOptions): enough to
// re-run the full compile pipeline on restore, so the plan, operator
// wiring, and port layout are rebuilt by the same code paths an
// uninterrupted session used.

void EncodeSensorField(persist::Writer* w, const SensorField& f) {
  w->I32(f.num_sensors);
  w->F64(f.k);
  w->U32(static_cast<uint32_t>(f.positions.size()));
  for (const auto& [x, y] : f.positions) {
    w->F64(x);
    w->F64(y);
  }
  w->U32(static_cast<uint32_t>(f.seed_sensors.size()));
  for (int s : f.seed_sensors) w->I32(s);
  w->U32(static_cast<uint32_t>(f.neighbors.size()));
  for (const std::vector<int>& adj : f.neighbors) {
    w->U32(static_cast<uint32_t>(adj.size()));
    for (int n : adj) w->I32(n);
  }
}

void EncodeEngineOptions(persist::Writer* w, const EngineOptions& o) {
  w->U8(static_cast<uint8_t>(o.runtime.prov));
  w->U8(static_cast<uint8_t>(o.runtime.ship));
  w->U64(o.runtime.batch_window);
  w->I32(o.runtime.num_physical);
  w->U64(o.runtime.message_budget);
  w->F64(o.runtime.time_budget_s);
  w->F64(o.runtime.per_msg_latency_s);
  w->Bool(o.runtime.batch_delivery);
  w->I32(o.runtime.shards);
  w->I32(o.num_nodes);
  w->U8(static_cast<uint8_t>(o.aggsel));
  w->Bool(o.field.has_value());
  if (o.field.has_value()) EncodeSensorField(w, *o.field);
}

Status DecodeSensorField(persist::Reader* r, SensorField* f) {
  f->num_sensors = r->I32();
  f->k = r->F64();
  uint64_t npos = r->U32();
  if (!r->CanRead(npos * 16)) return r->Check("sensor positions");
  f->positions.reserve(npos);
  for (uint64_t i = 0; i < npos; ++i) {
    double x = r->F64();
    double y = r->F64();
    f->positions.emplace_back(x, y);
  }
  uint64_t nseeds = r->U32();
  if (!r->CanRead(nseeds * 4)) return r->Check("sensor seeds");
  f->seed_sensors.reserve(nseeds);
  for (uint64_t i = 0; i < nseeds; ++i) f->seed_sensors.push_back(r->I32());
  uint64_t nadj = r->U32();
  if (!r->CanRead(nadj * 4)) return r->Check("sensor neighbor lists");
  f->neighbors.resize(nadj);
  for (uint64_t i = 0; i < nadj; ++i) {
    uint64_t n = r->U32();
    if (!r->CanRead(n * 4)) break;
    f->neighbors[i].reserve(n);
    for (uint64_t j = 0; j < n; ++j) f->neighbors[i].push_back(r->I32());
  }
  return r->Check("sensor field");
}

Status DecodeEngineOptions(persist::Reader* r, EngineOptions* o) {
  uint8_t prov = r->U8();
  uint8_t ship = r->U8();
  if (r->ok() &&
      (prov > static_cast<uint8_t>(ProvMode::kRelative) ||
       ship > static_cast<uint8_t>(ShipMode::kLazy))) {
    return Status::DataLoss("snapshot program options hold an unknown mode");
  }
  o->runtime.prov = static_cast<ProvMode>(prov);
  o->runtime.ship = static_cast<ShipMode>(ship);
  o->runtime.batch_window = r->U64();
  o->runtime.num_physical = r->I32();
  o->runtime.message_budget = r->U64();
  o->runtime.time_budget_s = r->F64();
  o->runtime.per_msg_latency_s = r->F64();
  o->runtime.batch_delivery = r->Bool();
  o->runtime.shards = r->I32();
  o->num_nodes = r->I32();
  uint8_t aggsel = r->U8();
  if (r->ok() && aggsel > static_cast<uint8_t>(AggSelPolicy::kNone)) {
    return Status::DataLoss(
        "snapshot program options hold an unknown aggsel policy");
  }
  o->aggsel = static_cast<AggSelPolicy>(aggsel);
  if (r->Bool()) {
    o->field.emplace();
    RECNET_RETURN_IF_ERROR(DecodeSensorField(r, &*o->field));
  }
  return r->Check("program options");
}

}  // namespace

Session::Session(const SessionOptions& options)
    // A negative initial size is clamped: AddProgram surfaces the typed
    // InvalidArgument (the substrate itself must exist to report it).
    : options_(options),
      injector_(options.faults.enabled()
                    ? std::make_shared<fault::FaultInjector>(options.faults)
                    : nullptr),
      substrate_(std::make_shared<Substrate>(
          options.num_nodes > 0 ? options.num_nodes : 0,
          SubstrateOptions{options.num_physical, options.batch_delivery,
                           options.shards, injector_, options.faults})) {
  ArmBarrierHook();
}

Session::~Session() = default;

StatusOr<View*> Session::AddProgram(const std::string& source,
                                    const EngineOptions& options) {
  return AddProgramImpl(source, options, /*load_facts=*/true);
}

StatusOr<View*> Session::AddProgramImpl(const std::string& source,
                                        const EngineOptions& options,
                                        bool load_facts) {
  StatusOr<datalog::Program> program = datalog::Parse(source);
  if (!program.ok()) return program.status();
  StatusOr<datalog::ProgramInfo> info = datalog::Analyze(program.value());
  if (!info.ok()) return info.status();
  StatusOr<datalog::PlanSpec> plan =
      datalog::PlanProgram(program.value(), info.value());
  if (!plan.ok()) return plan.status();

  // Shared-EDB schema agreement: a relation two views share must mean the
  // same thing in both, or one fan-out fact would be valid for one view and
  // an error for the other.
  for (const datalog::RelationDecl& decl : plan.value().Relations()) {
    auto it = relations_.find(decl.name);
    if (it != relations_.end() && (it->second.arity != decl.arity ||
                                   it->second.dynamic != decl.dynamic)) {
      return Status::InvalidArgument(
          "relation '" + decl.name + "' (arity " + std::to_string(decl.arity) +
          (decl.dynamic ? ", dynamic" : ", deployment-defined") +
          ") conflicts with a co-resident view's declaration (arity " +
          std::to_string(it->second.arity) +
          (it->second.dynamic ? ", dynamic" : ", deployment-defined") + ")");
    }
  }

  StatusOr<std::unique_ptr<QueryRuntime>> runtime =
      InstantiateRuntime(plan.value(), options, *this);
  if (!runtime.ok()) return runtime.status();

  std::unique_ptr<View> view(new View(this, std::move(plan).value(),
                                      std::move(runtime).value(), source,
                                      options));
  View* handle = view.get();

  const std::vector<datalog::RelationDecl> decls = handle->plan_.Relations();

  // Cross-view EDB sharing, part 1: the session's live facts flow into the
  // late-added view so it starts from the shared base state. (Skipped on
  // restore: the deserialized operator state already embeds every fact's
  // effects, base variables included.)
  if (load_facts) {
    for (const auto& [relation, fact] : fact_log_) {
      if (relation.empty()) continue;  // Tombstone (deleted fact).
      bool declared = false;
      for (const datalog::RelationDecl& decl : decls) {
        if (decl.dynamic && decl.name == relation) {
          declared = true;
          break;
        }
      }
      if (!declared) continue;
      Status st = handle->runtime_->Insert(relation, fact);
      if (!st.ok()) {
        return Status(st.code(), "replaying session fact " + relation +
                                     fact.ToString() + ": " + st.message());
      }
    }
  }

  views_.push_back(std::move(view));
  for (const datalog::RelationDecl& decl : decls) {
    RelationInfo& info_entry = relations_[decl.name];
    info_entry.arity = decl.arity;
    info_entry.dynamic = decl.dynamic;
    info_entry.views.push_back(handle);
  }

  // Cross-view EDB sharing, part 2: the program's own ground facts load
  // through the session store, fanning out to every co-resident view that
  // declares the relation. Deployment facts (the region plan's seed and
  // proximity EDBs) were consumed by the runtime factory and stay static.
  if (!load_facts) return handle;
  for (const datalog::Rule& fact : handle->plan_.facts) {
    if (handle->plan_.IsStaticRelation(fact.head.predicate)) continue;
    Status st = Insert(fact.head.predicate, FactTuple(fact));
    if (!st.ok()) {
      // The error must be rendered before the rollback below destroys the
      // view (and with it the plan's fact storage `fact` points into).
      Status out(st.code(), "loading fact " + fact.ToString() + " (line " +
                                std::to_string(fact.line) +
                                "): " + st.message());
      // Keep the session consistent: retract the failed view's
      // registration (facts already fanned to older views stay — shared
      // enqueues cannot be unsent).
      for (const datalog::RelationDecl& decl : decls) {
        auto rel_it = relations_.find(decl.name);
        if (rel_it == relations_.end()) continue;
        auto& declaring = rel_it->second.views;
        declaring.erase(
            std::remove(declaring.begin(), declaring.end(), handle),
            declaring.end());
        if (declaring.empty()) relations_.erase(rel_it);
      }
      views_.pop_back();
      return out;
    }
  }
  return handle;
}

Status Session::RemoveProgram(View* view) {
  auto it = std::find_if(
      views_.begin(), views_.end(),
      [view](const std::unique_ptr<View>& v) { return v.get() == view; });
  if (it == views_.end()) {
    return Status::NotFound("view is not resident in this session");
  }
  // Deregister the view's relation declarations; facts it contributed stay
  // in the shared EDB store (co-resident views may declare them, and a
  // future AddProgram may replay them).
  for (const datalog::RelationDecl& decl : view->plan_.Relations()) {
    auto rel_it = relations_.find(decl.name);
    if (rel_it == relations_.end()) continue;
    auto& declaring = rel_it->second.views;
    declaring.erase(std::remove(declaring.begin(), declaring.end(), view),
                    declaring.end());
    if (declaring.empty()) relations_.erase(rel_it);
  }
  // Destroying the runtime detaches it from the substrate: the router frees
  // the port namespace (purging any queued messages addressed to it) and
  // the runtime releases its provenance handles. The BDD sweep then
  // reclaims every node only this view's annotations kept alive, returning
  // the manager to its pre-AddProgram footprint.
  views_.erase(it);
  substrate_->bdd_manager()->GarbageCollect();
  return Status::OK();
}

Tuple Session::TaggedFact(const std::string& relation, const Tuple& fact) {
  std::vector<Value> key;
  key.reserve(fact.size() + 1);
  key.push_back(Value(relation));
  for (const Value& v : fact.values()) key.push_back(v);
  return Tuple(std::move(key));
}

Status Session::IngestInsert(const std::string& relation, const Tuple& fact) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("unknown base relation '" + relation +
                            "' (no co-resident view declares it)");
  }
  for (View* view : it->second.views) {
    RECNET_RETURN_IF_ERROR(view->runtime_->Insert(relation, fact));
  }
  // Record for replay into late-added programs (dynamic relations only; a
  // static relation never reaches this point — its view rejected it
  // above). A fact deleted earlier reclaims its tombstoned slot, so the
  // log is bounded by the number of distinct facts, not by churn.
  Tuple tag = TaggedFact(relation, fact);
  auto [slot, fresh] = fact_index_.try_emplace(std::move(tag),
                                               fact_log_.size());
  if (fresh) {
    fact_log_.emplace_back(relation, fact);
  } else if (fact_log_[slot->second].first.empty()) {
    fact_log_[slot->second].first = relation;
  }
  return Status::OK();
}

Status Session::IngestDelete(const std::string& relation, const Tuple& fact) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("unknown base relation '" + relation +
                            "' (no co-resident view declares it)");
  }
  for (View* view : it->second.views) {
    RECNET_RETURN_IF_ERROR(view->runtime_->Delete(relation, fact));
  }
  auto idx = fact_index_.find(TaggedFact(relation, fact));
  if (idx != fact_index_.end()) {
    // Tombstone the slot but keep the index entry: a re-insert reclaims it
    // instead of growing the log.
    fact_log_[idx->second].first.clear();
  }
  return Status::OK();
}

Status Session::Insert(const std::string& relation, const Tuple& fact) {
  // A plain insert makes the fact permanent: drop any soft-state deadline
  // a prior InsertWithTtl left behind so it cannot expire later.
  clock_.Remove(TaggedFact(relation, fact));
  return IngestInsert(relation, fact);
}

Status Session::Delete(const std::string& relation, const Tuple& fact) {
  clock_.Remove(TaggedFact(relation, fact));
  return IngestDelete(relation, fact);
}

Status Session::Insert(const std::string& relation,
                       std::initializer_list<double> fact) {
  return Insert(relation, TupleOfDoubles(fact));
}

Status Session::Delete(const std::string& relation,
                       std::initializer_list<double> fact) {
  return Delete(relation, TupleOfDoubles(fact));
}

Status Session::InsertWithTtl(const std::string& relation, const Tuple& fact,
                              double ttl) {
  Tuple key = TaggedFact(relation, fact);
  if (clock_.Contains(key)) {
    // Soft-state renewal: extend the deadline; the live fact and its base
    // variables stay put, so nothing propagates.
    clock_.Insert(key, ttl);
    return Status::OK();
  }
  RECNET_RETURN_IF_ERROR(IngestInsert(relation, fact));
  clock_.Insert(key, ttl);
  return Status::OK();
}

Status Session::AdvanceTime(double t) {
  if (t < clock_.now()) {
    return Status::InvalidArgument("clock cannot run backwards (now=" +
                                   std::to_string(clock_.now()) + ")");
  }
  std::vector<Tuple> expirations = clock_.AdvanceTo(t);
  // TTL expiry is the one mutation source outside the incremental delta
  // flow (deadlines fire from the session clock, not the dataflow); it
  // stays a full cache rebuild, in every view.
  if (!expirations.empty()) {
    for (const auto& view : views_) {
      view->runtime_->InvalidateCachesForExpiry();
    }
  }
  // The clock has already dropped every deadline, so process the whole
  // expiration batch even if one deletion fails — stopping early would
  // silently make the remaining expired facts permanent.
  Status first_error = Status::OK();
  for (const Tuple& expired : expirations) {
    std::vector<Value> fact(expired.values().begin() + 1,
                            expired.values().end());
    Status st = IngestDelete(expired.StringAt(0), Tuple(std::move(fact)));
    // A removed program may leave TTL deadlines for relations no view
    // declares anymore; their expiry is a no-op, not an error.
    if (st.code() == StatusCode::kNotFound) continue;
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status Session::ApplyFrom(QueryRuntime* initiator) {
  if (views_.empty()) return Status::OK();
  // The initiator is tracked by index: a recovery mid-loop replaces every
  // view's runtime, so a QueryRuntime pointer would dangle across attempts.
  size_t initiator_idx = 0;
  for (size_t i = 0; initiator != nullptr && i < views_.size(); ++i) {
    if (views_[i]->runtime_.get() == initiator) {
      initiator_idx = i;
      break;
    }
  }
  const fault::RecoveryPolicy& recovery = options_.recovery;
  const bool recoverable = recovery.enabled && RecoverySupported();
  // Entry micro-checkpoint: the rollback point for a fault during this
  // Apply. (Barrier-interval checkpoints, if configured, refresh it
  // mid-drain so less work re-executes.)
  if (recoverable) CaptureMicroCheckpoint();
  int attempts = 0;
  for (;;) {
    // One drain converges every co-resident view (they share the FIFO), so
    // every view's cache maintenance must bracket it: arm all delta logs
    // before, patch all caches after.
    for (const auto& view : views_) view->runtime_->PrepareApply();
    Status run_status = views_[initiator_idx]->runtime_->ApplyUpdates();
    if (recoverable && run_status.code() == StatusCode::kUnavailable &&
        attempts < recovery.max_recoveries) {
      // An injected infrastructure fault killed the drain. The faulted
      // runtimes are replaced wholesale by the rebuild, so their armed
      // delta logs die with them — no FinishApply bracket to close.
      if (recovery.backoff_initial_s > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            recovery.backoff_initial_s *
            std::pow(recovery.backoff_factor, attempts)));
      }
      RECNET_RETURN_IF_ERROR(RecoverFromFault());
      ++attempts;
      continue;
    }
    for (const auto& view : views_) view->runtime_->FinishApply(run_status);
    return run_status;
  }
}

Status Session::Apply() { return ApplyFrom(nullptr); }

int Session::AddNode() {
  int id = substrate_->num_logical();
  substrate_->EnsureNodes(id + 1);
  return id;
}

void Session::EnsureNodes(int num_nodes) { substrate_->EnsureNodes(num_nodes); }

int Session::num_nodes() const { return substrate_->num_logical(); }

// --- Fault recovery ----------------------------------------------------------
//
// Micro-checkpoint payload (in-memory, no file container):
//
//   [view namespaces]    u32 count + each view's port namespace at capture
//   [topology]           logical node count
//   [dead vars]          the base-variable allocator image
//   [flow state]         router ordering context + delivered totals
//   [bdd node table]     live unique table for the states and provs below
//   [view states]        per view: RuntimeBase + runtime-specific state
//   [view stats]         per view: NetworkStats totals
//   [envelopes]          every in-flight envelope with its home, ordering
//                        key, and payload
//
// Captured only with workers joined (Apply entry / drain barriers), where
// queue contents are sequence-stamped: restoring the queues, seqs, and
// operator states resumes the EXACT delivery schedule of the captured run,
// which is what makes a recovered run bit-identical to an uninterrupted one.

bool Session::RecoverySupported() const {
  for (const auto& view : views_) {
    if (view->runtime_->native_runtime() == nullptr) return false;
  }
  return true;
}

void Session::ArmBarrierHook() {
  if (!options_.recovery.enabled ||
      options_.recovery.checkpoint_interval == 0) {
    return;
  }
  substrate_->set_barrier_hook([this] { CaptureMicroCheckpoint(); },
                               options_.recovery.checkpoint_interval);
}

void Session::CaptureMicroCheckpoint() {
  if (!RecoverySupported()) return;
  const Router& router = substrate_->router();
  persist::Writer body;
  persist::BddEncoder enc(substrate_->bdd_manager());

  body.U32(static_cast<uint32_t>(views_.size()));
  for (const auto& view : views_) {
    body.I32(view->runtime_->native_runtime()->port_namespace());
  }
  body.I32(router.num_logical());
  const std::vector<char>& dead = substrate_->dead_vars();
  body.U64(dead.size());
  body.Bytes(dead.data(), dead.size());
  Router::FlowState fs = router.SaveFlowState();
  body.U64(fs.next_seq);
  body.U64(fs.ext_trig);
  body.U32(fs.ext_sub);
  body.U64(fs.delivered);
  for (const auto& view : views_) {
    body.U64(router.DeliveredByNs(
        view->runtime_->native_runtime()->port_namespace()));
  }

  // View states, stats, and envelopes encode into a side buffer first:
  // encoding registers the live BDD roots, and the node table those ids
  // index must precede them in the payload.
  persist::Writer side;
  persist::SnapshotWriter ssw(&side, &enc);
  for (const auto& view : views_) {
    view->runtime_->native_runtime()->SaveState(ssw);
  }
  for (const auto& view : views_) {
    ssw.PutStats(
        router.stats(view->runtime_->native_runtime()->port_namespace()));
  }
  side.U64(router.pending());
  router.ForEachPendingEnvelope([&](Router::EnvelopeHome home,
                                    const Envelope& env) {
    side.U8(static_cast<uint8_t>(home));
    side.I32(env.src);
    side.I32(env.dst);
    side.I32(env.port);
    side.U64(env.key_trig);
    side.U32(env.key_sub);
    side.U32(env.attempts);
    side.U8(static_cast<uint8_t>(env.update.type));
    switch (env.update.type) {
      case UpdateType::kInsert:
        ssw.PutTuple(env.update.tuple);
        ssw.PutProv(env.update.pv);
        break;
      case UpdateType::kDelete:
        ssw.PutTuple(env.update.tuple);
        break;
      case UpdateType::kKill:
        side.U32(static_cast<uint32_t>(env.update.killed.size()));
        for (bdd::Var v : env.update.killed) side.U32(v);
        break;
    }
  });

  enc.WriteNodeTable(&body);
  body.Append(side);
  micro_ckpt_ = body.bytes();
}

Status Session::RecoverFromFault() {
  if (micro_ckpt_.empty()) {
    return Status::Unavailable(
        "fault fired before any micro-checkpoint was captured");
  }
  // Fresh substrate, identical deployment, SAME injector: the fault clock
  // (generation counter, one-shot kill) survives the rebuild.
  substrate_ = std::make_shared<Substrate>(
      options_.num_nodes > 0 ? options_.num_nodes : 0,
      SubstrateOptions{options_.num_physical, options_.batch_delivery,
                       options_.shards, injector_, options_.faults});
  // Re-instantiate every view's runtime on the new substrate, in residency
  // order so view i claims namespace i. Each replacement destroys the old
  // runtime (detaching it from the dead substrate, which is freed with its
  // last view).
  std::vector<int> new_ns(views_.size());
  for (size_t i = 0; i < views_.size(); ++i) {
    View* view = views_[i].get();
    StatusOr<std::unique_ptr<QueryRuntime>> rebuilt =
        InstantiateRuntime(view->plan_, view->options_, *this);
    if (!rebuilt.ok()) {
      return Status(rebuilt.status().code(),
                    "recovery could not re-instantiate view '" +
                        view->plan_.view + "': " + rebuilt.status().message());
    }
    view->runtime_ = std::move(rebuilt).value();
    if (view->runtime_->native_runtime() == nullptr) {
      return Status::Internal("recovered view '" + view->plan_.view +
                              "' lost its native runtime");
    }
    new_ns[i] = view->runtime_->native_runtime()->port_namespace();
  }

  persist::Reader raw(micro_ckpt_);
  uint32_t nviews = raw.U32();
  if (raw.ok() && nviews != views_.size()) {
    return Status::Internal(
        "micro-checkpoint view count disagrees with the session");
  }
  // Old namespace -> rebuilt namespace, for the port remap below (the old
  // ids can be sparse when programs were removed earlier in the session).
  std::unordered_map<int, int> ns_remap;
  for (uint32_t i = 0; i < nviews && raw.ok(); ++i) {
    ns_remap.emplace(raw.I32(), new_ns[i]);
  }
  int num_logical = raw.I32();
  uint64_t ndead = raw.Count(1);
  std::vector<char> dead(ndead);
  for (uint64_t i = 0; i < ndead && raw.ok(); ++i) {
    dead[i] = static_cast<char>(raw.U8());
  }
  Router::FlowState fs;
  fs.next_seq = raw.U64();
  fs.ext_trig = raw.U64();
  fs.ext_sub = raw.U32();
  fs.delivered = raw.U64();
  std::vector<uint64_t> delivered_ns(nviews, 0);
  for (uint32_t i = 0; i < nviews && raw.ok(); ++i) {
    delivered_ns[i] = raw.U64();
  }
  RECNET_RETURN_IF_ERROR(raw.Check("micro-checkpoint header"));

  EnsureNodes(num_logical);
  substrate_->RestoreDeadVars(std::move(dead));

  // The decoder must outlive every LoadState: it holds the protecting
  // references on restored BDD nodes until the view states own them.
  persist::BddDecoder dec(substrate_->bdd_manager());
  persist::SnapshotReader sr(&raw, &dec);
  RECNET_RETURN_IF_ERROR(dec.ReadNodeTable(&raw));
  for (const auto& view : views_) {
    RECNET_RETURN_IF_ERROR(view->runtime_->native_runtime()->LoadState(sr));
  }
  Router& router = substrate_->router();
  for (uint32_t i = 0; i < nviews; ++i) {
    NetworkStats stats = sr.GetStats();
    router.LoadStats(new_ns[i], stats);
    router.RestoreDeliveredByNs(new_ns[i], delivered_ns[i]);
  }
  router.RestoreFlowState(fs);

  // In-flight envelopes, replayed in capture order. Their wire charges are
  // inside the restored stats, so re-enqueueing must not (and does not)
  // re-charge.
  uint64_t nenv = raw.Count(30);
  for (uint64_t i = 0; i < nenv && raw.ok(); ++i) {
    uint8_t home = raw.U8();
    if (home > static_cast<uint8_t>(Router::EnvelopeHome::kRetry)) {
      return Status::Internal("micro-checkpoint envelope has a bad home");
    }
    Envelope env;
    env.src = raw.I32();
    env.dst = raw.I32();
    int port = raw.I32();
    env.key_trig = raw.U64();
    env.key_sub = raw.U32();
    env.attempts = raw.U32();
    uint8_t type = raw.U8();
    switch (type) {
      case static_cast<uint8_t>(UpdateType::kInsert): {
        Tuple t = sr.GetTuple();
        Prov pv = sr.GetProv();
        env.update = Update::Insert(std::move(t), std::move(pv));
        break;
      }
      case static_cast<uint8_t>(UpdateType::kDelete):
        env.update = Update::Delete(sr.GetTuple());
        break;
      case static_cast<uint8_t>(UpdateType::kKill): {
        uint32_t n = raw.U32();
        if (!raw.CanRead(static_cast<size_t>(n) * 4)) break;
        std::vector<bdd::Var> killed;
        killed.reserve(n);
        for (uint32_t j = 0; j < n; ++j) killed.push_back(raw.U32());
        env.update = Update::Kill(std::move(killed));
        break;
      }
      default:
        return Status::Internal("micro-checkpoint envelope has a bad type");
    }
    auto remapped = ns_remap.find(port / Router::kPortsPerNamespace);
    if (remapped == ns_remap.end()) {
      return Status::Internal(
          "micro-checkpoint envelope addresses an unknown namespace");
    }
    env.port = remapped->second * Router::kPortsPerNamespace +
               port % Router::kPortsPerNamespace;
    if (!raw.ok()) break;
    router.RestoreEnvelope(static_cast<Router::EnvelopeHome>(home),
                           std::move(env));
  }
  RECNET_RETURN_IF_ERROR(sr.Check("micro-checkpoint"));

  ArmBarrierHook();
  // Re-randomize rate-based faults for the re-executed generations so a
  // recovered run is not doomed to re-die at the same point.
  if (injector_ != nullptr) injector_->BumpEpoch();
  ++recoveries_;
  return Status::OK();
}

// --- Checkpoint / restore ----------------------------------------------------
//
// Payload layout (after the self-describing summary, see
// persist/snapshot.h):
//
//   [summary]            inspector-readable: deployment, relations, views
//   [clock]              now + (deadline, tagged fact) in expiry order
//   [fact log]           per slot: live flag + tagged fact (tombstones too —
//                        slot indices are stable and fact_index_ keys on
//                        them, so replay order survives the round trip)
//   [programs]           per view: source text + EngineOptions
//   [dead vars]          the substrate's base-variable allocator image
//   [bdd node table]     the manager's live unique table, topologically
//                        ordered with remapped ids
//   [view states]        per view: RuntimeBase + runtime-specific state
//                        (encoded against the node table above)
//   [view stats]         per view: NetworkStats totals
//
// The view states are serialized into a side buffer first: encoding them
// discovers which BDD roots are live, and the node table those ids index
// must precede them in the payload so Restore can decode front to back.

Status Session::Checkpoint(const std::string& path) const {
  const Router& router = substrate_->router();
  if (router.pending() > 0) {
    return Status::FailedPrecondition(
        "cannot checkpoint with " + std::to_string(router.pending()) +
        " undelivered message(s); call Apply() to reach fixpoint first");
  }
  for (const auto& view : views_) {
    if (view->runtime_->native_runtime() == nullptr) {
      return Status::Unimplemented(
          "view '" + view->plan_.view +
          "' wraps an external runtime without snapshot support");
    }
  }

  persist::SnapshotSummary summary;
  summary.num_nodes = router.num_logical();
  summary.num_physical = router.num_physical();
  summary.batch_delivery = router.batching();
  summary.shards = router.num_shards();
  {
    std::vector<std::string> names;
    names.reserve(relations_.size());
    for (const auto& [name, info] : relations_) names.push_back(name);
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      const RelationInfo& info = relations_.at(name);
      persist::SnapshotRelationInfo rel;
      rel.name = name;
      rel.arity = info.arity;
      rel.dynamic = info.dynamic;
      for (const auto& [relation, fact] : fact_log_) {
        if (relation == name) ++rel.live_facts;
      }
      summary.relations.push_back(std::move(rel));
    }
  }
  for (const auto& view : views_) {
    persist::SnapshotViewInfo vi;
    vi.name = view->plan_.view;
    vi.prov_mode = ProvModeName(view->runtime_->options().prov);
    vi.messages =
        router.stats(view->runtime_->native_runtime()->port_namespace())
            .messages;
    summary.views.push_back(std::move(vi));
  }

  persist::Writer body;
  size_t bdd_patch = persist::WriteSummary(&body, summary);
  persist::BddEncoder enc(substrate_->bdd_manager());
  persist::SnapshotWriter sw(&body, &enc);

  // Clock.
  body.F64(clock_.now());
  body.U64(clock_.deadlines().size());
  for (const auto& [deadline, tagged] : clock_.deadlines()) {
    body.F64(deadline);
    sw.PutTuple(tagged);
  }

  // Fact log. Tombstoned slots lost their relation name, but every slot
  // (live or not) has exactly one index entry carrying the tagged fact.
  std::vector<const Tuple*> tag_of(fact_log_.size(), nullptr);
  for (const auto& [tag, slot] : fact_index_) tag_of[slot] = &tag;
  body.U64(fact_log_.size());
  for (size_t i = 0; i < fact_log_.size(); ++i) {
    RECNET_CHECK(tag_of[i] != nullptr);
    body.Bool(!fact_log_[i].first.empty());
    sw.PutTuple(*tag_of[i]);
  }

  // Programs.
  body.U32(static_cast<uint32_t>(views_.size()));
  for (const auto& view : views_) {
    body.Str(view->source_);
    EncodeEngineOptions(&body, view->options_);
  }

  // Base-variable allocator.
  const std::vector<char>& dead = substrate_->dead_vars();
  body.U64(dead.size());
  body.Bytes(dead.data(), dead.size());

  // View states into the side buffer (registers BDD roots with `enc`), then
  // the node table, then the states.
  persist::Writer views_buf;
  persist::SnapshotWriter views_sw(&views_buf, &enc);
  for (const auto& view : views_) {
    view->runtime_->native_runtime()->SaveState(views_sw);
  }
  body.PatchU32(bdd_patch, static_cast<uint32_t>(enc.num_nodes()));
  enc.WriteNodeTable(&body);
  body.Append(views_buf);

  // Per-view network counters.
  for (const auto& view : views_) {
    sw.PutStats(
        router.stats(view->runtime_->native_runtime()->port_namespace()));
  }

  // Injected snapshot tear: the write stops short inside the `.tmp` and the
  // rename never happens, so `path` is untouched — a prior checkpoint there
  // survives intact and the caller sees a typed Unavailable.
  fault::FaultInjector* injector = substrate_->fault_injector();
  if (injector != nullptr && injector->ShouldTearSnapshot()) {
    const size_t total = persist::kSnapshotHeaderBytes + body.bytes().size();
    return persist::WriteSnapshotFile(path, body, total / 2);
  }
  return persist::WriteSnapshotFile(path, body);
}

Status Session::Restore(const std::string& path) {
  if (!views_.empty() || !fact_log_.empty() || !fact_index_.empty() ||
      clock_.live() > 0 || substrate_->router().pending() > 0) {
    return Status::FailedPrecondition(
        "Restore requires a freshly constructed session (no views, facts, "
        "or pending messages)");
  }
  std::vector<uint8_t> payload;
  persist::SnapshotHeader header;
  RECNET_RETURN_IF_ERROR(persist::ReadSnapshotPayload(path, &payload, &header));
  persist::Reader raw(payload);
  persist::SnapshotSummary summary;
  RECNET_RETURN_IF_ERROR(persist::ReadSummary(&raw, &summary));

  const Router& router = substrate_->router();
  if (summary.num_physical != router.num_physical() ||
      summary.batch_delivery != router.batching()) {
    return Status::InvalidArgument(
        "snapshot deployment (num_physical=" +
        std::to_string(summary.num_physical) + ", batch_delivery=" +
        (summary.batch_delivery ? "true" : "false") +
        ") does not match this session's; the shard count alone may differ");
  }
  if (summary.num_nodes < router.num_logical()) {
    return Status::InvalidArgument(
        "this session's node-id space (" +
        std::to_string(router.num_logical()) +
        " nodes) already exceeds the snapshot's (" +
        std::to_string(summary.num_nodes) + ")");
  }

  // The decoder speaks the on-disk version: a pre-complement-edge (v2)
  // node table decodes into canonical tagged refs via the restore path.
  persist::BddDecoder dec(substrate_->bdd_manager(), header.version);
  persist::SnapshotReader sr(&raw, &dec);

  // Clock.
  double now = raw.F64();
  uint64_t ndeadlines = raw.Count(9);
  std::vector<std::pair<double, Tuple>> deadlines;
  deadlines.reserve(ndeadlines);
  for (uint64_t i = 0; i < ndeadlines && raw.ok(); ++i) {
    double deadline = raw.F64();
    deadlines.emplace_back(deadline, sr.GetTuple());
  }

  // Fact log.
  uint64_t nslots = raw.Count(2);
  std::vector<std::pair<bool, Tuple>> slots;
  slots.reserve(nslots);
  for (uint64_t i = 0; i < nslots && raw.ok(); ++i) {
    bool live = raw.Bool();
    slots.emplace_back(live, sr.GetTuple());
  }
  RECNET_RETURN_IF_ERROR(sr.Check("session store"));

  // Programs.
  uint32_t nprograms = raw.U32();
  if (raw.ok() && nprograms != summary.views.size()) {
    return Status::DataLoss(
        "snapshot program count disagrees with its summary");
  }
  struct ProgramRecord {
    std::string source;
    EngineOptions options;
  };
  std::vector<ProgramRecord> programs(raw.ok() ? nprograms : 0);
  for (ProgramRecord& prog : programs) {
    prog.source = raw.Str();
    RECNET_RETURN_IF_ERROR(DecodeEngineOptions(&raw, &prog.options));
  }

  // Base-variable allocator image (applied after the programs rebuild, when
  // the substrate's allocator is still empty).
  uint64_t ndead = raw.Count(1);
  std::vector<char> dead_vars(ndead);
  for (uint64_t i = 0; i < ndead && raw.ok(); ++i) {
    dead_vars[i] = static_cast<char>(raw.U8());
  }
  RECNET_RETURN_IF_ERROR(raw.Check("program records"));

  // Re-instantiate every program without loading any facts: the operator
  // states carry their effects. This must precede EnsureNodes so the graph
  // views exist to observe the topology growth.
  for (const ProgramRecord& prog : programs) {
    StatusOr<View*> added =
        AddProgramImpl(prog.source, prog.options, /*load_facts=*/false);
    if (!added.ok()) {
      return Status(added.status().code(),
                    "restoring program: " + added.status().message());
    }
    if (added.value()->runtime_->native_runtime() == nullptr) {
      return Status::Unimplemented(
          "restored view '" + added.value()->plan_.view +
          "' wraps an external runtime without snapshot support");
    }
  }
  for (size_t i = 0; i < views_.size(); ++i) {
    if (views_[i]->plan_.view != summary.views[i].name) {
      return Status::DataLoss(
          "snapshot view order disagrees with its summary");
    }
  }
  EnsureNodes(summary.num_nodes);
  substrate_->RestoreDeadVars(std::move(dead_vars));

  RECNET_RETURN_IF_ERROR(dec.ReadNodeTable(&raw));
  for (const auto& view : views_) {
    RECNET_RETURN_IF_ERROR(
        view->runtime_->native_runtime()->LoadState(sr));
  }
  for (const auto& view : views_) {
    NetworkStats stats = sr.GetStats();
    substrate_->router().LoadStats(
        view->runtime_->native_runtime()->port_namespace(), stats);
  }
  RECNET_RETURN_IF_ERROR(sr.Check("snapshot"));
  if (raw.remaining() != 0) {
    return Status::DataLoss("snapshot payload has trailing bytes");
  }

  // Commit the session-local state last, once nothing can fail.
  clock_.RestoreNow(now);
  for (const auto& [deadline, tagged] : deadlines) {
    clock_.RestoreDeadline(deadline, tagged);
  }
  fact_log_.reserve(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    auto& [live, tag] = slots[i];
    if (tag.size() < 1 || !tag.at(0).is_string()) {
      return Status::DataLoss("snapshot fact log holds a malformed tag");
    }
    std::string relation = tag.StringAt(0);
    std::vector<Value> values(tag.values().begin() + 1, tag.values().end());
    fact_log_.emplace_back(live ? relation : std::string(),
                           Tuple(std::move(values)));
    fact_index_.emplace(std::move(tag), i);
  }
  return Status::OK();
}

// --- View -------------------------------------------------------------------

Status View::Apply() { return session_->ApplyFrom(runtime_.get()); }

StatusOr<std::vector<Tuple>> View::Scan(const std::string& view) const {
  return runtime_->Scan(view);
}

StatusOr<bool> View::Contains(const std::string& view,
                              const Tuple& tuple) const {
  StatusOr<Tuple> found = runtime_->Lookup(view, tuple);
  if (found.ok()) return true;
  if (found.status().code() == StatusCode::kNotFound) return false;
  return found.status();
}

StatusOr<bool> View::Contains(const std::string& view,
                              std::initializer_list<double> tuple) const {
  return Contains(view, TupleOfDoubles(tuple));
}

StatusOr<Tuple> View::Lookup(const std::string& view, const Tuple& key) const {
  return runtime_->Lookup(view, key);
}

StatusOr<Tuple> View::Lookup(const std::string& view,
                             std::initializer_list<double> key) const {
  return Lookup(view, TupleOfDoubles(key));
}

StatusOr<std::vector<Tuple>> View::Explain(const std::string& view,
                                           const Tuple& tuple) const {
  if (view != plan_.view) {
    return Status::InvalidArgument(
        "provenance witnesses exist for the recursive view '" + plan_.view +
        "' only, not '" + view + "'");
  }
  return runtime_->Explain(tuple);
}

}  // namespace recnet
