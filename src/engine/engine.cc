#include "engine/engine.h"

#include <utility>

namespace recnet {

StatusOr<std::unique_ptr<Engine>> Engine::Compile(
    const std::string& source, const EngineOptions& options) {
  SessionOptions session_options;
  session_options.num_nodes = options.num_nodes;
  session_options.num_physical = options.runtime.num_physical;
  session_options.batch_delivery = options.runtime.batch_delivery;
  // Deployment-shape knobs ride in RuntimeOptions for the one-program
  // facade; the session underneath owns the actual substrate, so they must
  // be forwarded or a sharded/faulty Engine silently runs a 1-shard,
  // fault-free drain.
  session_options.shards = options.runtime.shards;
  session_options.faults = options.runtime.faults;
  auto session = std::make_unique<Session>(session_options);
  StatusOr<View*> view = session->AddProgram(source, options);
  if (!view.ok()) return view.status();
  return std::unique_ptr<Engine>(
      new Engine(std::move(session), view.value()));
}

}  // namespace recnet
