#include "engine/engine.h"

#include <cmath>
#include <utility>

#include "datalog/analyzer.h"
#include "datalog/parser.h"

namespace recnet {
namespace {

// Numeric literals with an exact integral value become int64 (node ids);
// everything else stays double (costs).
Value NumberToValue(double d) {
  if (std::floor(d) == d && std::abs(d) < 9.0e15) {
    return Value(static_cast<int64_t>(d));
  }
  return Value(d);
}

Tuple TupleOfDoubles(std::initializer_list<double> vals) {
  std::vector<Value> out;
  out.reserve(vals.size());
  for (double d : vals) out.push_back(NumberToValue(d));
  return Tuple(std::move(out));
}

// A ground fact's arguments as a Tuple (the planner already rejected
// non-constant arguments).
Tuple FactTuple(const datalog::Rule& fact) {
  std::vector<Value> out;
  out.reserve(fact.head.args.size());
  for (const datalog::Term& term : fact.head.args) {
    if (term.kind == datalog::Term::Kind::kString) {
      out.push_back(Value(term.text));
    } else {
      out.push_back(NumberToValue(term.number));
    }
  }
  return Tuple(std::move(out));
}

}  // namespace

StatusOr<std::unique_ptr<Engine>> Engine::Compile(
    const std::string& source, const EngineOptions& options) {
  StatusOr<datalog::Program> program = datalog::Parse(source);
  if (!program.ok()) return program.status();
  StatusOr<datalog::ProgramInfo> info = datalog::Analyze(program.value());
  if (!info.ok()) return info.status();
  StatusOr<datalog::PlanSpec> plan =
      datalog::PlanProgram(program.value(), info.value());
  if (!plan.ok()) return plan.status();
  StatusOr<std::unique_ptr<QueryRuntime>> runtime =
      InstantiateRuntime(plan.value(), options);
  if (!runtime.ok()) return runtime.status();

  std::unique_ptr<Engine> engine(
      new Engine(std::move(plan).value(), std::move(runtime).value()));
  // Load the program's ground facts as initial insertions; the caller's
  // first Apply() computes the view over them.
  for (const datalog::Rule& fact : engine->plan_.facts) {
    Status st = engine->runtime_->Insert(fact.head.predicate, FactTuple(fact));
    if (!st.ok()) {
      return Status(st.code(), "loading fact " + fact.ToString() + " (line " +
                                   std::to_string(fact.line) +
                                   "): " + st.message());
    }
  }
  return engine;
}

Status Engine::Insert(const std::string& relation, const Tuple& fact) {
  // A plain insert makes the fact permanent: drop any soft-state deadline
  // a prior InsertWithTtl left behind so it cannot expire later.
  clock_.Remove(ClockKey(relation, fact));
  return runtime_->Insert(relation, fact);
}

Status Engine::Delete(const std::string& relation, const Tuple& fact) {
  clock_.Remove(ClockKey(relation, fact));
  return runtime_->Delete(relation, fact);
}

Status Engine::Insert(const std::string& relation,
                      std::initializer_list<double> fact) {
  return Insert(relation, TupleOfDoubles(fact));
}

Status Engine::Delete(const std::string& relation,
                      std::initializer_list<double> fact) {
  return Delete(relation, TupleOfDoubles(fact));
}

Status Engine::InsertWithTtl(const std::string& relation, const Tuple& fact,
                             double ttl) {
  Tuple key = ClockKey(relation, fact);
  if (clock_.Contains(key)) {
    // Soft-state renewal: extend the deadline; the live fact and its base
    // variable stay put, so nothing propagates.
    clock_.Insert(key, ttl);
    return Status::OK();
  }
  RECNET_RETURN_IF_ERROR(runtime_->Insert(relation, fact));
  clock_.Insert(key, ttl);
  return Status::OK();
}

Status Engine::AdvanceTime(double t) {
  if (t < clock_.now()) {
    return Status::InvalidArgument("clock cannot run backwards (now=" +
                                   std::to_string(clock_.now()) + ")");
  }
  std::vector<Tuple> expirations = clock_.AdvanceTo(t);
  // TTL expiry is the one mutation source outside the incremental delta
  // flow (deadlines fire from the engine clock, not the dataflow); it stays
  // a full cache rebuild.
  if (!expirations.empty()) runtime_->InvalidateCachesForExpiry();
  for (const Tuple& expired : expirations) {
    std::vector<Value> fact(expired.values().begin() + 1,
                            expired.values().end());
    RECNET_RETURN_IF_ERROR(
        runtime_->Delete(expired.StringAt(0), Tuple(std::move(fact))));
  }
  return Status::OK();
}

Status Engine::Apply() { return runtime_->Apply(); }

StatusOr<std::vector<Tuple>> Engine::Scan(const std::string& view) const {
  return runtime_->Scan(view);
}

StatusOr<bool> Engine::Contains(const std::string& view,
                                const Tuple& tuple) const {
  StatusOr<Tuple> found = runtime_->Lookup(view, tuple);
  if (found.ok()) return true;
  if (found.status().code() == StatusCode::kNotFound) return false;
  return found.status();
}

StatusOr<bool> Engine::Contains(const std::string& view,
                                std::initializer_list<double> tuple) const {
  return Contains(view, TupleOfDoubles(tuple));
}

StatusOr<Tuple> Engine::Lookup(const std::string& view,
                               const Tuple& key) const {
  return runtime_->Lookup(view, key);
}

StatusOr<Tuple> Engine::Lookup(const std::string& view,
                               std::initializer_list<double> key) const {
  return Lookup(view, TupleOfDoubles(key));
}

StatusOr<std::vector<Tuple>> Engine::Explain(const std::string& view,
                                             const Tuple& tuple) const {
  if (view != plan_.view) {
    return Status::InvalidArgument(
        "provenance witnesses exist for the recursive view '" + plan_.view +
        "' only, not '" + view + "'");
  }
  return runtime_->Explain(tuple);
}

Tuple Engine::ClockKey(const std::string& relation, const Tuple& fact) {
  std::vector<Value> key;
  key.reserve(fact.size() + 1);
  key.push_back(Value(relation));
  for (const Value& v : fact.values()) key.push_back(v);
  return Tuple(std::move(key));
}

}  // namespace recnet
