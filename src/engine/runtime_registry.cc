#include "engine/runtime_registry.h"

#include <algorithm>
#include <map>
#include <utility>

#include "engine/reachable_runtime.h"
#include "engine/region_runtime.h"
#include "engine/session.h"

namespace recnet {
namespace {

using datalog::AggViewSpec;
using datalog::PlanKind;
using datalog::PlanSpec;

Status CheckArity(const std::string& relation, const Tuple& fact,
                  size_t expected) {
  if (fact.size() != expected) {
    return Status::InvalidArgument(
        "relation '" + relation + "' has arity " + std::to_string(expected) +
        ", got tuple " + fact.ToString());
  }
  return Status::OK();
}

// Validates that fact column `i` is a node id in [0, limit).
Status CheckNode(const std::string& relation, const Tuple& fact, size_t i,
                 int limit) {
  if (!fact.at(i).is_int()) {
    return Status::InvalidArgument("relation '" + relation + "' column " +
                                   std::to_string(i) +
                                   " must be an integer node id, got " +
                                   fact.at(i).ToString());
  }
  int64_t v = fact.IntAt(i);
  if (v < 0 || v >= limit) {
    return Status::OutOfRange("relation '" + relation + "' column " +
                              std::to_string(i) + " node id " +
                              std::to_string(v) + " outside [0, " +
                              std::to_string(limit) + ")");
  }
  return Status::OK();
}

// Cap on the dynamic node-id space. The runtimes keep dense per-node
// operator state, so a topology is bounded by memory, not by int range; a
// fact naming an id beyond this is a typo or an attack, not a deployment.
constexpr int64_t kMaxNodeId = (int64_t{1} << 20) - 1;  // ~1M nodes.

// Graph plans have a dynamic node-id space: a fact column naming an unseen
// (non-negative, bounded) node id grows the session topology (and with it
// every graph-shaped view on the substrate) instead of erroring. Negative,
// non-integral, or absurd ids stay typed errors.
Status GrowNodeSpace(RuntimeBase& rt, const std::string& relation,
                     const Tuple& fact, size_t i, bool grow = true) {
  if (!fact.at(i).is_int()) {
    return Status::InvalidArgument("relation '" + relation + "' column " +
                                   std::to_string(i) +
                                   " must be an integer node id, got " +
                                   fact.at(i).ToString());
  }
  int64_t v = fact.IntAt(i);
  if (v < 0 || v > kMaxNodeId) {
    return Status::OutOfRange("relation '" + relation + "' column " +
                              std::to_string(i) + " node id " +
                              std::to_string(v) + " outside [0, " +
                              std::to_string(kMaxNodeId) +
                              "] (node state is dense per id)");
  }
  if (grow && v >= rt.num_logical()) {
    rt.substrate().EnsureNodes(static_cast<int>(v) + 1);
  }
  return Status::OK();
}

Status UnknownRelation(const std::string& relation, const std::string& known) {
  return Status::NotFound("unknown base relation '" + relation +
                          "' (this plan ingests '" + known + "')");
}

// Key/tuple comparison for lookups: numeric values compare by magnitude
// (the convenience ingestion converts integral literals to int64 while
// runtime columns may hold doubles), everything else structurally.
bool ValuesEqualNumeric(const Value& a, const Value& b) {
  if ((a.is_int() || a.is_double()) && (b.is_int() || b.is_double())) {
    double da = a.is_int() ? static_cast<double>(a.AsInt()) : a.AsDouble();
    double db = b.is_int() ? static_cast<double>(b.AsInt()) : b.AsDouble();
    return da == db;
  }
  return a == b;
}

// The hashed form of a lookup key / row prefix: integers widen to double so
// that hash-index probes agree with ValuesEqualNumeric (int 2 and double
// 2.0 must land in the same bucket and compare equal).
Tuple NormalizedPrefix(const Tuple& t, size_t len) {
  Tuple::Values vals;
  vals.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    const Value& v = t.at(i);
    if (v.is_int()) {
      vals.push_back(Value(static_cast<double>(v.AsInt())));
    } else {
      vals.push_back(v);
    }
  }
  return Tuple(std::move(vals));
}

Status RunToFixpoint(RuntimeBase* rt) {
  if (!rt->Run()) {
    // A faulted run is transient and resumable (queues intact), not a
    // budget exhaustion: Unavailable routes it into Session's recovery
    // loop instead of the terminal budget-abort path.
    if (!rt->last_fault().empty()) {
      return Status::Unavailable("injected fault: " + rt->last_fault());
    }
    return Status::ResourceExhausted(
        "message budget exceeded before fixpoint");
  }
  return Status::OK();
}

const AggViewSpec* FindAggView(const PlanSpec& plan, const std::string& name) {
  for (const AggViewSpec& agg : plan.agg_views) {
    if (agg.name == name) return &agg;
  }
  return nullptr;
}

// Scan dispatch shared by the adapters: the recursive view by name, else a
// declared aggregate view evaluated over it. Aggregate views read the
// recursive view through the adapter's *cached* Scan, so they re-derive
// from the incrementally patched rows instead of sweeping the runtime.
template <typename ScanFn>
StatusOr<std::vector<Tuple>> ScanByName(const QueryRuntime& rt,
                                        const PlanSpec& plan,
                                        const std::string& view,
                                        ScanFn&& scan_view) {
  if (view == plan.view) return scan_view();
  if (const AggViewSpec* agg = FindAggView(plan, view)) {
    StatusOr<std::vector<Tuple>> rows = rt.Scan(plan.view);
    if (!rows.ok()) return rows.status();
    return EvalAggView(*agg, rows.value());
  }
  return Status::NotFound("unknown view '" + view + "' (plan defines '" +
                          plan.view + "' and " +
                          std::to_string(plan.agg_views.size()) +
                          " aggregate view(s))");
}

// --- Reachable (paper Query 1) ---------------------------------------------

class ReachableAdapter : public QueryRuntime {
 public:
  ReachableAdapter(const PlanSpec& plan, const EngineOptions& options,
                   int num_nodes, Session& session)
      : plan_(plan), rt_(session.substrate(), num_nodes, options.runtime) {}

  Status InsertFact(const std::string& relation, const Tuple& fact) override {
    RECNET_RETURN_IF_ERROR(CheckLink(relation, fact));
    rt_.InsertLink(static_cast<LogicalNode>(fact.IntAt(0)),
                   static_cast<LogicalNode>(fact.IntAt(1)));
    return Status::OK();
  }

  Status DeleteFact(const std::string& relation, const Tuple& fact) override {
    RECNET_RETURN_IF_ERROR(CheckLink(relation, fact, /*grow=*/false));
    if (fact.IntAt(0) >= rt_.num_logical() ||
        fact.IntAt(1) >= rt_.num_logical()) {
      return Status::OK();  // Unknown node: the link cannot exist.
    }
    rt_.DeleteLink(static_cast<LogicalNode>(fact.IntAt(0)),
                   static_cast<LogicalNode>(fact.IntAt(1)));
    return Status::OK();
  }

  Status ApplyUpdates() override { return RunToFixpoint(&rt_); }

  std::string IncrementalView() const override { return plan_.view; }
  void BeginViewDeltaLog(bool enabled) override {
    rt_.SetViewDeltaLogging(enabled);
  }
  bool DrainViewDeltas(std::vector<Tuple>* removed,
                       std::vector<Tuple>* added) override {
    // The runtime's reachable(src, dst) fixpoint tuples are the view rows.
    CompressDeltaLog(rt_.TakeViewDeltaLog(), removed, added);
    return true;
  }

  StatusOr<std::vector<Tuple>> ScanView(const std::string& view) const override {
    return ScanByName(*this, plan_, view,
                      [this]() -> StatusOr<std::vector<Tuple>> {
      std::vector<Tuple> out;
      for (int src = 0; src < rt_.num_logical(); ++src) {
        for (LogicalNode dst : rt_.ReachableFrom(src)) {
          out.push_back(Tuple::OfInts({src, dst}));
        }
      }
      return out;
    });
  }

  StatusOr<std::vector<Tuple>> Explain(const Tuple& view_tuple) const override {
    RECNET_RETURN_IF_ERROR(CheckArity(plan_.view, view_tuple, 2));
    if (rt_.options().prov != ProvMode::kAbsorption) {
      return Status::Unimplemented(
          "provenance witnesses require ProvMode::kAbsorption");
    }
    RECNET_RETURN_IF_ERROR(
        CheckNode(plan_.view, view_tuple, 0, rt_.num_logical()));
    RECNET_RETURN_IF_ERROR(
        CheckNode(plan_.view, view_tuple, 1, rt_.num_logical()));
    LogicalNode src = static_cast<LogicalNode>(view_tuple.IntAt(0));
    LogicalNode dst = static_cast<LogicalNode>(view_tuple.IntAt(1));
    const Prov* pv = rt_.ViewProvenance(src, dst);
    if (pv == nullptr) {
      return Status::NotFound("tuple " + view_tuple.ToString() +
                              " is not in view '" + plan_.view + "'");
    }
    std::vector<std::pair<bdd::Var, bool>> assignment;
    const bdd::Bdd& b = pv->bdd();
    if (!b.manager()->AnyWitness(b.index(), &assignment)) {
      return Status::NotFound("no witness for " + view_tuple.ToString());
    }
    std::vector<Tuple> links;
    for (const auto& [var, value] : assignment) {
      if (!value) continue;
      auto link = rt_.LinkOfVar(var);
      if (link.has_value()) {
        links.push_back(Tuple::OfInts({link->first, link->second}));
      }
    }
    return links;
  }

  RunMetrics Metrics() const override { return rt_.Metrics(); }
  void ResetMetrics() override { rt_.ResetMetrics(); }
  bool converged() const override { return rt_.converged(); }
  const RuntimeOptions& options() const override { return rt_.options(); }
  RuntimeBase* native_runtime() override { return &rt_; }

 private:
  // Validates an incoming link fact. Inserts grow the node-id space for
  // unseen ids (the dynamic-topology path); deletes only validate — a
  // fact on an unknown node cannot exist, so nothing should grow for it.
  Status CheckLink(const std::string& relation, const Tuple& fact,
                   bool grow = true) {
    if (relation != plan_.edb) return UnknownRelation(relation, plan_.edb);
    RECNET_RETURN_IF_ERROR(CheckArity(relation, fact, 2));
    RECNET_RETURN_IF_ERROR(GrowNodeSpace(rt_, relation, fact, 0, grow));
    return GrowNodeSpace(rt_, relation, fact, 1, grow);
  }

  PlanSpec plan_;
  ReachableRuntime rt_;
};

// --- Shortest path (paper Query 2) -----------------------------------------

class ShortestPathAdapter : public QueryRuntime {
 public:
  ShortestPathAdapter(const PlanSpec& plan, const EngineOptions& options,
                      int num_nodes, Session& session)
      : plan_(plan),
        rt_(session.substrate(), num_nodes, options.runtime, options.aggsel) {}

  Status InsertFact(const std::string& relation, const Tuple& fact) override {
    RECNET_RETURN_IF_ERROR(GrowEndpoints(relation, fact, 3));
    const Value& cost = fact.at(plan_.cost_col);
    if (!cost.is_int() && !cost.is_double()) {
      return Status::InvalidArgument("relation '" + relation +
                                     "' cost column must be numeric, got " +
                                     cost.ToString());
    }
    rt_.InsertLink(static_cast<LogicalNode>(fact.IntAt(0)),
                   static_cast<LogicalNode>(fact.IntAt(1)),
                   cost.is_int() ? static_cast<double>(cost.AsInt())
                                 : cost.AsDouble());
    return Status::OK();
  }

  Status DeleteFact(const std::string& relation, const Tuple& fact) override {
    // Deletion is keyed by the link endpoints; the cost column is optional.
    RECNET_RETURN_IF_ERROR(GrowEndpoints(relation, fact,
                                         fact.size() == 2 ? 2 : 3,
                                         /*grow=*/false));
    if (fact.IntAt(0) >= rt_.num_logical() ||
        fact.IntAt(1) >= rt_.num_logical()) {
      return Status::OK();  // Unknown node: the link cannot exist.
    }
    rt_.DeleteLink(static_cast<LogicalNode>(fact.IntAt(0)),
                   static_cast<LogicalNode>(fact.IntAt(1)));
    return Status::OK();
  }

  Status ApplyUpdates() override { return RunToFixpoint(&rt_); }

  std::string IncrementalView() const override { return plan_.view; }
  void BeginViewDeltaLog(bool enabled) override {
    rt_.SetViewDeltaLogging(enabled);
  }
  bool DrainViewDeltas(std::vector<Tuple>* removed,
                       std::vector<Tuple>* added) override {
    // The view rows are the min-cost projection of the runtime's path
    // tuples: a fixpoint delta for path(src, dst, ...) means the (src, dst)
    // row may have changed. Recompute each affected pair and diff it
    // against the cached row.
    std::vector<std::pair<Tuple, bool>> log = rt_.TakeViewDeltaLog();
    if (log.empty()) return true;
    const std::vector<Tuple>* rows = CachedRows(plan_.view);
    if (rows == nullptr) return false;
    // Distinct affected destinations, grouped per source so each source's
    // partition is swept once (MinCosts) no matter how many of its pairs a
    // delta touched.
    FlatTable<Tuple, bool, TupleHash> seen;
    seen.reserve(log.size());
    FlatTable<LogicalNode, std::vector<LogicalNode>> by_src;
    for (const auto& [path, was_added] : log) {
      (void)was_added;
      auto [it, fresh] =
          seen.try_emplace(Tuple::OfInts({path.IntAt(0), path.IntAt(1)}));
      if (fresh) {
        by_src[static_cast<LogicalNode>(path.IntAt(0))].push_back(
            static_cast<LogicalNode>(path.IntAt(1)));
      }
    }
    for (const auto& [src, dsts] : by_src) {
      std::vector<std::optional<double>> costs = rt_.MinCosts(src, dsts);
      for (size_t i = 0; i < dsts.size(); ++i) {
        LogicalNode dst = dsts[i];
        Tuple pair = Tuple::OfInts({src, dst});
        // Rows are sorted by (src, dst, cost); binary-search the pair.
        auto it = std::lower_bound(
            rows->begin(), rows->end(), pair,
            [](const Tuple& row, const Tuple& key) {
              if (row.IntAt(0) != key.IntAt(0)) {
                return row.IntAt(0) < key.IntAt(0);
              }
              return row.IntAt(1) < key.IntAt(1);
            });
        const Tuple* old_row = nullptr;
        if (it != rows->end() && it->IntAt(0) == src && it->IntAt(1) == dst) {
          old_row = &*it;
        }
        std::optional<Tuple> new_row;
        if (costs[i].has_value()) {
          new_row = Tuple({Value(static_cast<int64_t>(src)),
                           Value(static_cast<int64_t>(dst)),
                           Value(*costs[i])});
        }
        if (old_row != nullptr && new_row.has_value() &&
            *old_row == *new_row) {
          continue;
        }
        if (old_row != nullptr) removed->push_back(*old_row);
        if (new_row.has_value()) added->push_back(*new_row);
      }
    }
    return true;
  }

  StatusOr<std::vector<Tuple>> ScanView(const std::string& view) const override {
    return ScanByName(*this, plan_, view,
                      [this]() -> StatusOr<std::vector<Tuple>> {
      // The materialized path view is pruned by aggregate selection; its
      // stable projection is the min-cost tuple per (src, dst).
      std::vector<Tuple> out;
      for (int src = 0; src < rt_.num_logical(); ++src) {
        for (int dst = 0; dst < rt_.num_logical(); ++dst) {
          std::optional<double> cost = rt_.MinCost(src, dst);
          if (!cost.has_value()) continue;
          out.push_back(Tuple({Value(static_cast<int64_t>(src)),
                               Value(static_cast<int64_t>(dst)),
                               Value(*cost)}));
        }
      }
      return out;
    });
  }

  StatusOr<Tuple> Lookup(const std::string& view,
                         const Tuple& key) const override {
    // Lookups into the path view surface the runtime's auxiliary columns:
    // (src, dst, cost, vec, length) — the paper's full Query-2 tuple.
    if (view == plan_.view) {
      RECNET_RETURN_IF_ERROR(CheckEndpoints(plan_.edb, key,
                                            key.size() == 2 ? 2 : 3));
      LogicalNode src = static_cast<LogicalNode>(key.IntAt(0));
      LogicalNode dst = static_cast<LogicalNode>(key.IntAt(1));
      std::optional<double> cost = rt_.MinCost(src, dst);
      std::optional<std::string> vec = rt_.CheapestPathVec(src, dst);
      std::optional<int64_t> hops = rt_.MinHops(src, dst);
      if (!cost || !vec || !hops) {
        return Status::NotFound("no path " + key.ToString());
      }
      // A three-column key also constrains the cost, so membership tests
      // cannot succeed with a wrong cost value.
      if (key.size() == 3 && !ValuesEqualNumeric(key.at(2), Value(*cost))) {
        return Status::NotFound("min-cost path " + key.ToString() +
                                " has cost " + std::to_string(*cost));
      }
      return Tuple({Value(static_cast<int64_t>(src)),
                    Value(static_cast<int64_t>(dst)), Value(*cost),
                    Value(*vec), Value(*hops)});
    }
    return QueryRuntime::Lookup(view, key);
  }

  StatusOr<std::vector<Tuple>> Explain(const Tuple& view_tuple) const override {
    // Witnesses explain the min-cost projection Lookup surfaces; the key is
    // (src, dst) or (src, dst, cost), like a Lookup key.
    RECNET_RETURN_IF_ERROR(CheckEndpoints(plan_.view, view_tuple,
                                          view_tuple.size() == 2 ? 2 : 3));
    LogicalNode src = static_cast<LogicalNode>(view_tuple.IntAt(0));
    LogicalNode dst = static_cast<LogicalNode>(view_tuple.IntAt(1));
    const Prov* pv = rt_.ViewProvenance(src, dst);
    if (pv == nullptr) {
      return Status::NotFound("tuple " + view_tuple.ToString() +
                              " is not in view '" + plan_.view + "'");
    }
    if (view_tuple.size() == 3) {
      std::optional<double> cost = rt_.MinCost(src, dst);
      if (!cost.has_value() ||
          !ValuesEqualNumeric(view_tuple.at(2), Value(*cost))) {
        return Status::NotFound("min-cost path " + view_tuple.ToString() +
                                " is not in view '" + plan_.view + "'");
      }
    }
    std::vector<std::pair<bdd::Var, bool>> assignment;
    const bdd::Bdd& b = pv->bdd();
    if (!b.manager()->AnyWitness(b.index(), &assignment)) {
      return Status::NotFound("no witness for " + view_tuple.ToString());
    }
    std::vector<Tuple> links;
    for (const auto& [var, value] : assignment) {
      if (!value) continue;
      std::optional<Tuple> link = rt_.LinkOfVar(var);
      if (link.has_value()) links.push_back(std::move(*link));
    }
    return links;
  }

  RunMetrics Metrics() const override { return rt_.Metrics(); }
  void ResetMetrics() override { rt_.ResetMetrics(); }
  bool converged() const override { return rt_.converged(); }
  const RuntimeOptions& options() const override { return rt_.options(); }
  RuntimeBase* native_runtime() override { return &rt_; }

 private:
  // Read path: endpoints must name existing nodes.
  Status CheckEndpoints(const std::string& relation, const Tuple& fact,
                        size_t arity) const {
    if (relation != plan_.edb && relation != plan_.view) {
      return UnknownRelation(relation, plan_.edb);
    }
    RECNET_RETURN_IF_ERROR(CheckArity(relation, fact, arity));
    RECNET_RETURN_IF_ERROR(CheckNode(relation, fact, 0, rt_.num_logical()));
    return CheckNode(relation, fact, 1, rt_.num_logical());
  }

  // Ingestion path: unseen endpoints grow the node-id space on insert;
  // deletes only validate (a fact on an unknown node cannot exist).
  Status GrowEndpoints(const std::string& relation, const Tuple& fact,
                       size_t arity, bool grow = true) {
    if (relation != plan_.edb) return UnknownRelation(relation, plan_.edb);
    RECNET_RETURN_IF_ERROR(CheckArity(relation, fact, arity));
    RECNET_RETURN_IF_ERROR(GrowNodeSpace(rt_, relation, fact, 0, grow));
    return GrowNodeSpace(rt_, relation, fact, 1, grow);
  }

  PlanSpec plan_;
  ShortestPathRuntime rt_;
};

// --- Region (paper Query 3) ------------------------------------------------

class RegionAdapter : public QueryRuntime {
 public:
  RegionAdapter(const PlanSpec& plan, const SensorField& field,
                const EngineOptions& options, Session& session)
      : plan_(plan), rt_(session.substrate(), field, options.runtime) {}

  Status InsertFact(const std::string& relation, const Tuple& fact) override {
    RECNET_RETURN_IF_ERROR(CheckTrigger(relation, fact));
    rt_.Trigger(static_cast<int>(fact.IntAt(0)));
    return Status::OK();
  }

  Status DeleteFact(const std::string& relation, const Tuple& fact) override {
    RECNET_RETURN_IF_ERROR(CheckTrigger(relation, fact));
    rt_.Untrigger(static_cast<int>(fact.IntAt(0)));
    return Status::OK();
  }

  Status ApplyUpdates() override { return RunToFixpoint(&rt_); }

  std::string IncrementalView() const override { return plan_.view; }
  void BeginViewDeltaLog(bool enabled) override {
    rt_.SetViewDeltaLogging(enabled);
  }
  bool DrainViewDeltas(std::vector<Tuple>* removed,
                       std::vector<Tuple>* added) override {
    // The runtime's activeRegion(region, sensor) fixpoint tuples are the
    // view rows.
    CompressDeltaLog(rt_.TakeViewDeltaLog(), removed, added);
    return true;
  }

  StatusOr<std::vector<Tuple>> ScanView(const std::string& view) const override {
    return ScanByName(*this, plan_, view,
                      [this]() -> StatusOr<std::vector<Tuple>> {
      std::vector<Tuple> out;
      for (int r = 0; r < rt_.num_regions(); ++r) {
        for (int member : rt_.RegionMembers(r)) {
          out.push_back(Tuple::OfInts({r, member}));
        }
      }
      return out;
    });
  }

  StatusOr<std::vector<Tuple>> Explain(const Tuple& view_tuple) const override {
    // Witnesses for activeRegion(region, sensor): the set of isTriggered
    // facts whose conjunction keeps the sensor in the region (the seed's
    // trigger plus a contiguous triggered chain to it). Completes the trio
    // with the reachable and shortest-path adapters.
    RECNET_RETURN_IF_ERROR(CheckArity(plan_.view, view_tuple, 2));
    if (rt_.options().prov != ProvMode::kAbsorption) {
      return Status::Unimplemented(
          "provenance witnesses require ProvMode::kAbsorption");
    }
    if (!view_tuple.at(0).is_int() || view_tuple.IntAt(0) < 0 ||
        view_tuple.IntAt(0) >= rt_.num_regions()) {
      return Status::OutOfRange("region id " + view_tuple.at(0).ToString() +
                                " outside [0, " +
                                std::to_string(rt_.num_regions()) + ")");
    }
    RECNET_RETURN_IF_ERROR(
        CheckNode(plan_.view, view_tuple, 1, rt_.num_logical()));
    int region = static_cast<int>(view_tuple.IntAt(0));
    int sensor = static_cast<int>(view_tuple.IntAt(1));
    const Prov* pv = rt_.ViewProvenance(region, sensor);
    if (pv == nullptr) {
      return Status::NotFound("tuple " + view_tuple.ToString() +
                              " is not in view '" + plan_.view + "'");
    }
    std::vector<std::pair<bdd::Var, bool>> assignment;
    const bdd::Bdd& b = pv->bdd();
    if (!b.manager()->AnyWitness(b.index(), &assignment)) {
      return Status::NotFound("no witness for " + view_tuple.ToString());
    }
    std::vector<Tuple> triggers;
    for (const auto& [var, value] : assignment) {
      if (!value) continue;
      std::optional<int> trigger = rt_.SensorOfVar(var);
      if (trigger.has_value()) {
        triggers.push_back(Tuple::OfInts({*trigger}));
      }
    }
    return triggers;
  }

  RunMetrics Metrics() const override { return rt_.Metrics(); }
  void ResetMetrics() override { rt_.ResetMetrics(); }
  bool converged() const override { return rt_.converged(); }
  const RuntimeOptions& options() const override { return rt_.options(); }
  RuntimeBase* native_runtime() override { return &rt_; }

 private:
  Status CheckTrigger(const std::string& relation, const Tuple& fact) const {
    if (relation == plan_.edb || relation == plan_.proximity_edb) {
      return Status::InvalidArgument(
          "relation '" + relation +
          "' is defined by the sensor-field deployment "
          "(EngineOptions::field); only '" +
          plan_.trigger_edb + "' facts are dynamic");
    }
    if (relation != plan_.trigger_edb) {
      return UnknownRelation(relation, plan_.trigger_edb);
    }
    RECNET_RETURN_IF_ERROR(CheckArity(relation, fact, 1));
    return CheckNode(relation, fact, 0, rt_.num_logical());
  }

  PlanSpec plan_;
  RegionRuntime rt_;
};

// --- Registry ---------------------------------------------------------------

// The node span of a graph-shaped view: at least EngineOptions::num_nodes,
// and never smaller than the session's current topology (graph views track
// the shared node-id space, so all of them grow in lockstep).
StatusOr<int> GraphViewNodes(const PlanSpec& plan, const EngineOptions& options,
                             Session& session) {
  if (options.num_nodes < 0) {
    return Status::InvalidArgument(
        "EngineOptions::num_nodes must be non-negative for the " +
        std::string(PlanKindName(plan.kind)) +
        " plan (the node-id space grows on demand; 0 starts empty)");
  }
  return std::max(options.num_nodes, session.substrate()->num_logical());
}

StatusOr<std::unique_ptr<QueryRuntime>> MakeReachable(
    const PlanSpec& plan, const EngineOptions& options, Session& session) {
  StatusOr<int> num_nodes = GraphViewNodes(plan, options, session);
  if (!num_nodes.ok()) return num_nodes.status();
  return std::unique_ptr<QueryRuntime>(
      new ReachableAdapter(plan, options, num_nodes.value(), session));
}

StatusOr<std::unique_ptr<QueryRuntime>> MakeShortestPath(
    const PlanSpec& plan, const EngineOptions& options, Session& session) {
  StatusOr<int> num_nodes = GraphViewNodes(plan, options, session);
  if (!num_nodes.ok()) return num_nodes.status();
  if (options.runtime.prov != ProvMode::kAbsorption) {
    // The runtime CHECK-fails otherwise (the paper's Figure 14 evaluates
    // aggregate selection under the main scheme only); surface a typed
    // error at the facade instead.
    return Status::Unimplemented(
        "the shortest-path runtime runs under absorption provenance only");
  }
  return std::unique_ptr<QueryRuntime>(
      new ShortestPathAdapter(plan, options, num_nodes.value(), session));
}

// Derives the sensor deployment from the program's ground facts:
// seed(region, sensor) facts anchor the regions and near(x, y) facts are
// the precomputed proximity EDB (write both directions for symmetric
// contiguity). Positions are not needed at runtime — proximity is already
// explicit — so they are left at the origin.
StatusOr<SensorField> DeriveFieldFromFacts(const PlanSpec& plan) {
  auto int_arg = [](const datalog::Rule& fact, size_t i) -> StatusOr<int> {
    const datalog::Term& term = fact.head.args[i];
    if (term.kind == datalog::Term::Kind::kString ||
        term.number != static_cast<double>(static_cast<int>(term.number)) ||
        term.number < 0) {
      return Status::InvalidArgument(
          "deployment fact " + fact.ToString() + " (line " +
          std::to_string(fact.line) + "): argument " + std::to_string(i) +
          " must be a non-negative integer");
    }
    return static_cast<int>(term.number);
  };

  std::map<int, int> seed_of_region;
  std::vector<std::pair<int, int>> nears;
  int max_sensor = -1;
  for (const datalog::Rule& fact : plan.facts) {
    const std::string& rel = fact.head.predicate;
    bool is_seed = rel == plan.edb;
    bool is_near = rel == plan.proximity_edb;
    if (!is_seed && !is_near) continue;
    if (fact.head.args.size() != 2) {
      return Status::InvalidArgument(
          "deployment fact " + fact.ToString() + " (line " +
          std::to_string(fact.line) + "): '" + rel + "' has arity 2");
    }
    StatusOr<int> a = int_arg(fact, 0);
    if (!a.ok()) return a.status();
    StatusOr<int> b = int_arg(fact, 1);
    if (!b.ok()) return b.status();
    if (is_seed) {
      auto [it, fresh] = seed_of_region.emplace(a.value(), b.value());
      if (!fresh && it->second != b.value()) {
        return Status::InvalidArgument(
            "deployment fact " + fact.ToString() + " (line " +
            std::to_string(fact.line) + "): region " +
            std::to_string(a.value()) + " already has seed sensor " +
            std::to_string(it->second));
      }
      max_sensor = std::max(max_sensor, b.value());
    } else {
      nears.emplace_back(a.value(), b.value());
      max_sensor = std::max({max_sensor, a.value(), b.value()});
    }
  }
  if (seed_of_region.empty()) {
    return Status::InvalidArgument("no ground " + plan.edb +
                                   "(region, sensor) facts to derive the "
                                   "region deployment from");
  }
  // Regions are dense ids 0..R-1 (the runtime owns one partition slot per
  // region id).
  int num_regions = static_cast<int>(seed_of_region.size());
  if (seed_of_region.rbegin()->first != num_regions - 1 ||
      seed_of_region.begin()->first != 0) {
    return Status::InvalidArgument(
        "ground " + plan.edb + " facts must cover contiguous region ids 0.." +
        std::to_string(num_regions - 1));
  }

  SensorField field;
  field.num_sensors = max_sensor + 1;
  field.positions.assign(static_cast<size_t>(field.num_sensors), {0.0, 0.0});
  field.seed_sensors.resize(static_cast<size_t>(num_regions));
  for (const auto& [region, sensor] : seed_of_region) {
    field.seed_sensors[static_cast<size_t>(region)] = sensor;
  }
  field.neighbors.resize(static_cast<size_t>(field.num_sensors));
  for (const auto& [x, y] : nears) {
    if (x == y) continue;
    auto& nbrs = field.neighbors[static_cast<size_t>(x)];
    if (std::find(nbrs.begin(), nbrs.end(), y) == nbrs.end()) {
      nbrs.push_back(y);
    }
  }
  return field;
}

StatusOr<std::unique_ptr<QueryRuntime>> MakeRegion(
    const PlanSpec& plan, const EngineOptions& options, Session& session) {
  bool has_deployment_facts = false;
  for (const datalog::Rule& fact : plan.facts) {
    if (fact.head.predicate == plan.edb ||
        fact.head.predicate == plan.proximity_edb) {
      has_deployment_facts = true;
      break;
    }
  }
  SensorField field;
  if (options.field.has_value()) {
    if (options.field->num_sensors <= 0) {
      return Status::InvalidArgument(
          "EngineOptions::field (sensor deployment) has no sensors");
    }
    if (has_deployment_facts) {
      return Status::InvalidArgument(
          "ambiguous region deployment: both EngineOptions::field and ground "
          "'" + plan.edb + "'/'" + plan.proximity_edb +
          "' facts were provided; use one");
    }
    field = *options.field;
  } else if (has_deployment_facts) {
    StatusOr<SensorField> derived = DeriveFieldFromFacts(plan);
    if (!derived.ok()) return derived.status();
    field = std::move(derived).value();
  } else {
    return Status::InvalidArgument(
        "the region plan needs a sensor deployment: set "
        "EngineOptions::field or write ground '" + plan.edb +
        "(region, sensor)' / '" + plan.proximity_edb +
        "(x, y)' facts in the program");
  }
  return std::unique_ptr<QueryRuntime>(
      new RegionAdapter(plan, field, options, session));
}

std::map<PlanKind, RuntimeFactory>& Registry() {
  static std::map<PlanKind, RuntimeFactory>* registry = [] {
    auto* r = new std::map<PlanKind, RuntimeFactory>();
    (*r)[PlanKind::kReachable] = &MakeReachable;
    (*r)[PlanKind::kShortestPath] = &MakeShortestPath;
    (*r)[PlanKind::kRegion] = &MakeRegion;
    return r;
  }();
  return *registry;
}

}  // namespace

// --- Caching layer (QueryRuntime public entry points) ------------------------

Status QueryRuntime::Insert(const std::string& relation, const Tuple& fact) {
  // Base mutations only enqueue into the dataflow; no view state (and thus
  // no cache) can change before Apply().
  return InsertFact(relation, fact);
}

Status QueryRuntime::Delete(const std::string& relation, const Tuple& fact) {
  return DeleteFact(relation, fact);
}

void QueryRuntime::PrepareApply() {
  const std::string inc = IncrementalView();
  patching_ = !inc.empty() && view_caches_.count(inc) > 0;
  // Delta logging is armed only while a cache exists to patch, so runs
  // without live readers (every benchmark) never pay for it.
  if (patching_) BeginViewDeltaLog(true);
}

Status QueryRuntime::FinishApply(Status run_status) {
  if (!patching_) {
    InvalidateViewCaches();
    return run_status;
  }
  patching_ = false;
  const std::string inc = IncrementalView();
  std::vector<Tuple> removed, added;
  bool drained = run_status.ok() && DrainViewDeltas(&removed, &added);
  BeginViewDeltaLog(false);  // Disarm only after the log is drained.
  if (!drained) {
    // Aborted runs may have dropped part of the delta stream with the
    // queue; fall back to a rebuild rather than patch from a torn log.
    InvalidateViewCaches();
    return run_status;
  }
  if (removed.empty() && added.empty()) return run_status;  // View unchanged.
  ApplyRowDelta(&view_caches_[inc], std::move(removed), std::move(added));
  // Dependent (aggregate) caches re-derive lazily from the patched rows;
  // drop just their entries.
  for (auto it = view_caches_.begin(); it != view_caches_.end();) {
    if (it->first == inc) {
      ++it;
    } else {
      it = view_caches_.erase(it);
    }
  }
  return run_status;
}

Status QueryRuntime::Apply() {
  PrepareApply();
  return FinishApply(ApplyUpdates());
}

const std::vector<Tuple>* QueryRuntime::CachedRows(
    const std::string& view) const {
  auto it = view_caches_.find(view);
  return it == view_caches_.end() ? nullptr : &it->second.rows;
}

void QueryRuntime::CompressDeltaLog(std::vector<std::pair<Tuple, bool>> log,
                                    std::vector<Tuple>* removed,
                                    std::vector<Tuple>* added) {
  // Chronological membership events; the final event per tuple decides
  // whether it ends up present (added) or absent (removed). ApplyRowDelta
  // tolerates adds of already-present rows and removals of absent ones, so
  // no diff against the pre-run rows is needed.
  FlatTable<Tuple, bool, TupleHash> last;
  last.reserve(log.size());
  for (auto& [tuple, was_added] : log) last[tuple] = was_added;
  for (const auto& [tuple, was_added] : last) {
    (was_added ? added : removed)->push_back(tuple);
  }
}

void QueryRuntime::ApplyRowDelta(ViewCache* cache, std::vector<Tuple> removed,
                                 std::vector<Tuple> added) {
  std::sort(removed.begin(), removed.end());
  std::sort(added.begin(), added.end());
  // One merge pass keeps the rows sorted: skip removed rows, interleave the
  // additions, collapse adds of rows that are already present.
  std::vector<Tuple> next;
  next.reserve(cache->rows.size() + added.size());
  size_t ri = 0, ai = 0;
  // Added rows are copied (not moved): the index patch below still needs
  // them.
  for (Tuple& row : cache->rows) {
    while (ai < added.size() && added[ai] < row) next.push_back(added[ai++]);
    if (ai < added.size() && added[ai] == row) ++ai;  // Already present.
    while (ri < removed.size() && removed[ri] < row) ++ri;
    if (ri < removed.size() && removed[ri] == row) continue;
    next.push_back(std::move(row));
  }
  while (ai < added.size()) next.push_back(added[ai++]);
  cache->rows = std::move(next);

  // Patch the live lookup indexes. An index maps each normalized prefix to
  // its first (smallest) matching row; entries whose first match was
  // removed are recomputed in one pass over the patched rows.
  for (auto& [len, index] : cache->index) {
    FlatTable<Tuple, bool, TupleHash> repair;
    for (const Tuple& r : removed) {
      if (r.size() < len) continue;
      Tuple prefix = NormalizedPrefix(r, len);
      auto hit = index.find(prefix);
      if (hit != index.end() && hit->second == r) {
        index.erase(prefix);
        repair[std::move(prefix)] = false;
      }
    }
    for (const Tuple& a : added) {
      if (a.size() < len) continue;
      Tuple prefix = NormalizedPrefix(a, len);
      if (repair.contains(prefix)) continue;  // Repair pass decides.
      auto [hit, inserted] = index.try_emplace(prefix, a);
      if (!inserted && a < hit->second) hit->second = a;
    }
    if (!repair.empty()) {
      size_t outstanding = repair.size();
      for (const Tuple& row : cache->rows) {
        if (row.size() < len) continue;
        auto hit = repair.find(NormalizedPrefix(row, len));
        if (hit == repair.end() || hit->second) continue;
        hit->second = true;
        index[hit->first] = row;
        if (--outstanding == 0) break;
      }
    }
  }
}

StatusOr<QueryRuntime::ViewCache*> QueryRuntime::CacheFor(
    const std::string& view) const {
  auto it = view_caches_.find(view);
  if (it != view_caches_.end()) return &it->second;
  StatusOr<std::vector<Tuple>> rows = ScanView(view);
  if (!rows.ok()) return rows.status();
  ViewCache& cache = view_caches_[view];
  cache.rows = std::move(rows).value();
  // Adapters enumerate sorted; enforce the invariant incremental patching
  // relies on regardless.
  std::sort(cache.rows.begin(), cache.rows.end());
  return &cache;
}

StatusOr<std::vector<Tuple>> QueryRuntime::Scan(const std::string& view) const {
  StatusOr<ViewCache*> cache = CacheFor(view);
  if (!cache.ok()) return cache.status();
  return cache.value()->rows;
}

StatusOr<Tuple> QueryRuntime::Lookup(const std::string& view,
                                     const Tuple& key) const {
  StatusOr<ViewCache*> cache_or = CacheFor(view);
  if (!cache_or.ok()) return cache_or.status();
  ViewCache* cache = cache_or.value();
  auto idx_it = cache->index.find(key.size());
  if (idx_it == cache->index.end()) {
    // First probe with this key length: index the cached rows by normalized
    // prefix. try_emplace keeps the first row per prefix, preserving the
    // first-match-in-scan-order contract of the old linear search.
    idx_it = cache->index.emplace(key.size(),
                                  FlatTable<Tuple, Tuple, TupleHash>())
                 .first;
    FlatTable<Tuple, Tuple, TupleHash>& built = idx_it->second;
    built.reserve(cache->rows.size());
    for (const Tuple& row : cache->rows) {
      if (row.size() < key.size()) continue;
      built.try_emplace(NormalizedPrefix(row, key.size()), row);
    }
  }
  auto hit = idx_it->second.find(NormalizedPrefix(key, key.size()));
  if (hit == idx_it->second.end()) {
    return Status::NotFound("no tuple matching " + key.ToString() +
                            " in view '" + view + "'");
  }
  return hit->second;
}

StatusOr<std::vector<Tuple>> QueryRuntime::Explain(
    const Tuple& view_tuple) const {
  return Status::Unimplemented("this runtime does not expose per-tuple "
                               "provenance witnesses (tuple " +
                               view_tuple.ToString() + ")");
}

std::vector<Tuple> EvalAggView(const AggViewSpec& spec,
                               const std::vector<Tuple>& view_tuples) {
  struct Acc {
    int64_t count = 0;
    double sum = 0;
    bool sum_is_int = true;
    std::optional<Value> best;  // min / max.
  };
  std::map<Tuple, Acc> groups;
  for (const Tuple& row : view_tuples) {
    std::vector<Value> key;
    key.reserve(spec.group_cols.size());
    for (size_t col : spec.group_cols) key.push_back(row.at(col));
    Acc& acc = groups[Tuple(std::move(key))];
    acc.count += 1;
    const Value& v = row.at(spec.value_col);
    if (spec.agg == datalog::AggKind::kSum) {
      if (v.is_double()) {
        acc.sum_is_int = false;
        acc.sum += v.AsDouble();
      } else if (v.is_int()) {
        acc.sum += static_cast<double>(v.AsInt());
      }
    }
    if (spec.agg == datalog::AggKind::kMin || spec.agg == datalog::AggKind::kMax) {
      if (!acc.best.has_value() ||
          (spec.agg == datalog::AggKind::kMin ? v < *acc.best
                                              : *acc.best < v)) {
        acc.best = v;
      }
    }
  }
  std::vector<Tuple> out;
  out.reserve(groups.size());
  for (const auto& [key, acc] : groups) {
    std::vector<Value> vals(key.values().begin(), key.values().end());
    switch (spec.agg) {
      case datalog::AggKind::kCount:
        vals.push_back(Value(acc.count));
        break;
      case datalog::AggKind::kSum:
        if (acc.sum_is_int) {
          vals.push_back(Value(static_cast<int64_t>(acc.sum)));
        } else {
          vals.push_back(Value(acc.sum));
        }
        break;
      case datalog::AggKind::kMin:
      case datalog::AggKind::kMax:
        vals.push_back(*acc.best);
        break;
      case datalog::AggKind::kNone:
        break;
    }
    out.push_back(Tuple(std::move(vals)));
  }
  return out;
}

void RegisterRuntimeFactory(datalog::PlanKind kind, RuntimeFactory factory) {
  Registry()[kind] = factory;
}

StatusOr<std::unique_ptr<QueryRuntime>> InstantiateRuntime(
    const datalog::PlanSpec& plan, const EngineOptions& options,
    Session& session) {
  auto it = Registry().find(plan.kind);
  if (it == Registry().end()) {
    return Status::Unimplemented(
        std::string("no runtime registered for plan kind '") +
        PlanKindName(plan.kind) + "'");
  }
  return it->second(plan, options, session);
}

}  // namespace recnet
