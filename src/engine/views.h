#ifndef RECNET_ENGINE_VIEWS_H_
#define RECNET_ENGINE_VIEWS_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/reachable_runtime.h"
#include "engine/region_runtime.h"
#include "engine/shortest_path_runtime.h"
#include "engine/soft_state.h"
#include "topology/sensor_grid.h"

namespace recnet {

// ---------------------------------------------------------------------------
// Typed per-query view wrappers. These are thin internals kept for tests and
// benchmarks that pin one runtime; the public session API is recnet::Engine
// (engine/engine.h), which compiles Datalog source and dispatches onto the
// same runtimes through the runtime registry.
//
// Each view wraps a distributed runtime (simulated network of per-partition
// query processors). The pattern is:
//
//   recnet::ReachabilityView view(num_nodes, options);
//   view.InsertLink(a, b);
//   ...
//   RECNET_CHECK(view.Apply().ok());     // run to fixpoint
//   view.IsReachable(a, c);
//   view.DeleteLink(a, b);
//   RECNET_CHECK(view.Apply().ok());     // incremental maintenance
//
// Options select the maintenance strategy (absorption provenance, relative
// provenance, or the DRed baseline) and the MinShip policy.
// ---------------------------------------------------------------------------

// Network reachability (paper Query 1).
class ReachabilityView {
 public:
  ReachabilityView(int num_nodes, const RuntimeOptions& options)
      : rt_(num_nodes, options) {}

  void InsertLink(int src, int dst) { rt_.InsertLink(src, dst); }
  void DeleteLink(int src, int dst) { rt_.DeleteLink(src, dst); }

  // Propagates pending updates to fixpoint. Fails with ResourceExhausted if
  // the message budget was exceeded.
  Status Apply();

  bool IsReachable(int src, int dst) const {
    return rt_.IsReachable(src, dst);
  }
  std::set<int> ReachableFrom(int src) const {
    return rt_.ReachableFrom(src);
  }

  // Diagnostics: one witness set of links that supports reachable(src, dst)
  // (absorption mode only) — the paper's "forensic analysis" direction.
  std::optional<std::vector<std::pair<int, int>>> Why(int src, int dst) const;

  RunMetrics Metrics() const { return rt_.Metrics(); }
  ReachableRuntime& runtime() { return rt_; }

 private:
  ReachableRuntime rt_;
};

// Shortest / cheapest paths (paper Query 2).
class ShortestPathView {
 public:
  ShortestPathView(int num_nodes, const RuntimeOptions& options,
                   AggSelPolicy policy = AggSelPolicy::kMulti)
      : rt_(num_nodes, options, policy) {}

  void InsertLink(int src, int dst, double cost) {
    rt_.InsertLink(src, dst, cost);
  }
  void DeleteLink(int src, int dst) { rt_.DeleteLink(src, dst); }
  Status Apply();

  std::optional<double> MinCost(int src, int dst) const {
    return rt_.MinCost(src, dst);
  }
  std::optional<int64_t> MinHops(int src, int dst) const {
    return rt_.MinHops(src, dst);
  }
  std::optional<std::string> CheapestPath(int src, int dst) const {
    return rt_.CheapestPathVec(src, dst);
  }
  std::optional<std::string> FewestHops(int src, int dst) const {
    return rt_.FewestHopsVec(src, dst);
  }

  RunMetrics Metrics() const { return rt_.Metrics(); }
  ShortestPathRuntime& runtime() { return rt_; }

 private:
  ShortestPathRuntime rt_;
};

// Contiguous triggered regions with size aggregates (paper Query 3).
class RegionView {
 public:
  RegionView(const SensorField& field, const RuntimeOptions& options)
      : rt_(field, options) {}

  void Trigger(int sensor) { rt_.Trigger(sensor); }
  void Untrigger(int sensor) { rt_.Untrigger(sensor); }
  Status Apply();

  bool InRegion(int region, int sensor) const {
    return rt_.InRegion(region, sensor);
  }
  std::set<int> RegionMembers(int region) const {
    return rt_.RegionMembers(region);
  }
  int64_t RegionSize(int region) const { return rt_.RegionSize(region); }
  int64_t LargestRegionSize() const { return rt_.LargestRegionSize(); }
  std::vector<int> LargestRegions() const { return rt_.LargestRegions(); }

  RunMetrics Metrics() const { return rt_.Metrics(); }
  RegionRuntime& runtime() { return rt_; }

 private:
  RegionRuntime rt_;
};

// Reachability over soft-state links (paper §3.1): every link carries a
// time-to-live; AdvanceTime() expires overdue links, processing each expiry
// as an ordinary incremental deletion. Re-inserting a live link renews it.
class SoftStateReachabilityView {
 public:
  SoftStateReachabilityView(int num_nodes, const RuntimeOptions& options)
      : rt_(num_nodes, options) {}

  // Inserts link(src, dst) expiring `ttl` time units from now (renewal if
  // the link is already alive).
  void InsertLink(int src, int dst, double ttl);
  // Explicit deletion before expiry.
  void DeleteLink(int src, int dst);
  // Advances the clock, expiring overdue links.
  void AdvanceTime(double t);

  Status Apply();

  double now() const { return clock_.now(); }
  size_t live_links() const { return clock_.live(); }
  bool IsReachable(int src, int dst) const {
    return rt_.IsReachable(src, dst);
  }
  std::set<int> ReachableFrom(int src) const {
    return rt_.ReachableFrom(src);
  }
  RunMetrics Metrics() const { return rt_.Metrics(); }

 private:
  ReachableRuntime rt_;
  SoftStateClock clock_;
};

}  // namespace recnet

#endif  // RECNET_ENGINE_VIEWS_H_
