#ifndef RECNET_ENGINE_ENGINE_H_
#define RECNET_ENGINE_ENGINE_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "datalog/planner.h"
#include "engine/runtime_registry.h"
#include "engine/session.h"

namespace recnet {

// ---------------------------------------------------------------------------
// recnet::Engine — the one-program facade of the system: compile a Datalog
// program straight to an executing distributed runtime.
//
//   recnet::EngineOptions options;
//   options.num_nodes = 5;
//   auto engine = recnet::Engine::Compile(R"(
//     reachable(x,y) :- link(x,y).
//     reachable(x,y) :- link(x,z), reachable(z,y).
//     fanout(x,count<y>) :- reachable(x,y).
//   )", options);
//   engine->Insert("link", {0, 1});
//   engine->Insert("link", {1, 2});
//   engine->Apply();                       // run to fixpoint
//   engine->Contains("reachable", {0, 2}); // -> true
//   engine->Scan("fanout");                // -> {(0,2), (1,1)}
//   engine->Delete("link", {1, 2});
//   engine->Apply();                       // incremental maintenance
//
// Compile runs parse -> analyze -> plan and instantiates the runtime the
// planner selected (reachable / shortest path / region) behind the uniform
// QueryRuntime interface; ground facts written in the program are loaded as
// initial insertions. Which maintenance strategy annotates tuples
// (absorption or relative provenance, or the DRed baseline) is chosen by
// EngineOptions::runtime, independent of the program.
//
// An Engine is a thin single-view recnet::Session (engine/session.h): the
// session owns the substrate (router + BDD manager + dynamic node-id
// space), the compiled program is its only view, and every Engine method
// delegates. Programs that should share one substrate — many recursive
// views over one link EDB — use Session directly.
// ---------------------------------------------------------------------------
class Engine {
 public:
  // Compiles `source` and instantiates its runtime. Errors: lexer/parser/
  // analyzer errors; Unimplemented for recursion outside the executable
  // fragment; InvalidArgument for malformed plans or missing deployment
  // parameters (a region plan with neither EngineOptions::field nor ground
  // deployment facts); fact-loading validation errors (InvalidArgument /
  // OutOfRange) for in-program ground facts the instantiated runtime
  // rejects.
  static StatusOr<std::unique_ptr<Engine>> Compile(
      const std::string& source, const EngineOptions& options);

  // The plan the program lowered onto.
  const datalog::PlanSpec& plan() const { return view_->plan(); }

  // --- Fact ingestion, keyed by relation name ------------------------------
  //
  // Updates are enqueued into the distributed dataflow and propagate on the
  // next Apply(), so a batch of inserts/deletes converges in one run. Facts
  // of graph plans may name unseen node ids: the topology grows on demand.

  Status Insert(const std::string& relation, const Tuple& fact) {
    return session_->Insert(relation, fact);
  }
  Status Delete(const std::string& relation, const Tuple& fact) {
    return session_->Delete(relation, fact);
  }

  // Convenience: numeric facts without Tuple boilerplate, converted per the
  // relation's schema (node-id columns to integers), e.g.
  // Insert("link", {0, 1}) or Insert("link", {0, 1, 2.5}).
  Status Insert(const std::string& relation,
                std::initializer_list<double> fact) {
    return session_->Insert(relation, fact);
  }
  Status Delete(const std::string& relation,
                std::initializer_list<double> fact) {
    return session_->Delete(relation, fact);
  }

  // Soft-state ingestion (paper §3.1): the fact expires `ttl` time units
  // after the engine clock; expiry is processed as an ordinary deletion.
  // Re-inserting a live fact renews its deadline without re-propagating.
  Status InsertWithTtl(const std::string& relation, const Tuple& fact,
                       double ttl) {
    return session_->InsertWithTtl(relation, fact, ttl);
  }
  // Advances the soft-state clock, enqueueing deletions for expired facts
  // (propagated on the next Apply()).
  Status AdvanceTime(double t) { return session_->AdvanceTime(t); }
  double now() const { return session_->now(); }

  // Runs the distributed dataflow to fixpoint. ResourceExhausted when the
  // message or time budget was exceeded before convergence.
  Status Apply() { return view_->Apply(); }

  // --- Uniform view access --------------------------------------------------

  // All tuples of the recursive view or a declared aggregate view.
  StatusOr<std::vector<Tuple>> Scan(const std::string& view) const {
    return view_->Scan(view);
  }

  // Membership test against the recursive view or an aggregate view.
  StatusOr<bool> Contains(const std::string& view, const Tuple& tuple) const {
    return view_->Contains(view, tuple);
  }
  StatusOr<bool> Contains(const std::string& view,
                          std::initializer_list<double> tuple) const {
    return view_->Contains(view, tuple);
  }

  // First tuple of `view` whose leading columns equal `key` (group-by
  // columns for aggregate views). Path-view lookups surface the runtime's
  // auxiliary columns: (src, dst, cost, vec, length).
  StatusOr<Tuple> Lookup(const std::string& view, const Tuple& key) const {
    return view_->Lookup(view, key);
  }
  StatusOr<Tuple> Lookup(const std::string& view,
                         std::initializer_list<double> key) const {
    return view_->Lookup(view, key);
  }

  // Provenance witness: one set of base facts supporting `tuple` in the
  // recursive view — the paper's "why is this tuple here" diagnostic.
  // Requires ProvMode::kAbsorption.
  StatusOr<std::vector<Tuple>> Explain(const std::string& view,
                                       const Tuple& tuple) const {
    return view_->Explain(view, tuple);
  }

  // --- Run bookkeeping ------------------------------------------------------

  RunMetrics Metrics() const { return view_->Metrics(); }
  void ResetMetrics() { view_->ResetMetrics(); }
  bool converged() const { return view_->converged(); }
  const RuntimeOptions& options() const { return view_->options(); }

  // The underlying single-view session (e.g. to grow the topology
  // explicitly with AddNode()).
  Session& session() { return *session_; }

 private:
  Engine(std::unique_ptr<Session> session, View* view)
      : session_(std::move(session)), view_(view) {}

  std::unique_ptr<Session> session_;
  View* view_;  // Owned by session_.
};

}  // namespace recnet

#endif  // RECNET_ENGINE_ENGINE_H_
