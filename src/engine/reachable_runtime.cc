#include "engine/reachable_runtime.h"

#include <algorithm>

namespace recnet {
namespace {

// link(x, y) ⋈ reachable(y, z) -> reachable(x, z).
Tuple CombineLinkReach(const Tuple& link, const Tuple& reach) {
  return Tuple::OfInts({link.IntAt(0), reach.IntAt(1)});
}

}  // namespace

ReachableRuntime::ReachableRuntime(int num_nodes,
                                   const RuntimeOptions& options)
    : RuntimeBase(num_nodes, options) {
  nodes_.resize(static_cast<size_t>(num_nodes));
  links_by_src_.resize(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    InitNode(n, static_cast<size_t>(num_nodes));
  }
}

ReachableRuntime::ReachableRuntime(std::shared_ptr<Substrate> substrate,
                                   int num_nodes,
                                   const RuntimeOptions& options)
    : RuntimeBase(std::move(substrate), num_nodes, options) {
  nodes_.resize(static_cast<size_t>(num_nodes));
  links_by_src_.resize(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    InitNode(n, static_cast<size_t>(num_nodes));
  }
}

void ReachableRuntime::InitNode(int n, size_t expected_nodes) {
  NodeState& state = nodes_[static_cast<size_t>(n)];
  state.fix = std::make_unique<Fixpoint>(opts_.prov);
  // The view partition reachable(n, *) holds at most one tuple per
  // destination node; size the operator tables for it up front.
  state.fix->Reserve(expected_nodes);
  // Join key: link.dst (attr 1) = reachable.src (attr 0).
  state.join = std::make_unique<PipelinedHashJoin>(
      opts_.prov, std::vector<size_t>{1}, std::vector<size_t>{0},
      CombineLinkReach);
  state.join->Reserve(expected_nodes);
  // DRed (set mode) ships directly; the provenance schemes use MinShip.
  ShipMode ship_mode =
      opts_.prov == ProvMode::kSet ? ShipMode::kDirect : opts_.ship;
  state.ship = std::make_unique<MinShip>(
      opts_.prov, ship_mode, opts_.batch_window,
      [this, n](const Tuple& tuple, const Prov& pv) {
        LogicalNode dest = static_cast<LogicalNode>(tuple.IntAt(0));
        ShipInsert(n, dest, kPortFix, tuple, pv);
      },
      opts_.eager_demote_width);
  state.ship->Reserve(expected_nodes);
}

void ReachableRuntime::OnTopologyGrown(int num_nodes) {
  if (num_nodes <= num_logical()) return;
  int old_nodes = num_logical();
  GrowKillRouting(num_nodes);
  nodes_.resize(static_cast<size_t>(num_nodes));
  links_by_src_.resize(static_cast<size_t>(num_nodes));
  for (int n = old_nodes; n < num_nodes; ++n) {
    InitNode(n, static_cast<size_t>(num_nodes));
  }
}

void ReachableRuntime::InsertLink(LogicalNode src, LogicalNode dst) {
  Tuple link = Tuple::OfInts({src, dst});
  if (link_vars_.find(link) != link_vars_.end()) return;  // Already alive.
  bdd::Var v = AllocVar();
  link_vars_.emplace(link, v);
  links_by_src_[static_cast<size_t>(src)].push_back(dst);
  Prov pv = VarProv(v);
  // Base case (DistributedScan -> Fixpoint): local, no wire cost.
  Send(src, src, kPortFix, Update::Insert(Tuple::OfInts({src, dst}), pv));
  // Distributed join: ship the link to the node owning its dst attribute.
  ShipInsert(src, dst, kPortJoinBuild, link, pv);
}

void ReachableRuntime::DeleteLink(LogicalNode src, LogicalNode dst) {
  Tuple link = Tuple::OfInts({src, dst});
  auto it = link_vars_.find(link);
  if (it == link_vars_.end()) return;
  bdd::Var v = it->second;
  link_vars_.erase(it);
  auto& by_src = links_by_src_[static_cast<size_t>(src)];
  by_src.erase(std::remove(by_src.begin(), by_src.end(), dst), by_src.end());

  if (opts_.prov == ProvMode::kSet) {
    // DRed over-deletion phase: retract the base-case tuple locally and the
    // shipped link copy at the join; retractions cascade through the plan.
    Send(src, src, kPortFix, Update::Delete(Tuple::OfInts({src, dst})));
    Send(src, dst, kPortJoinBuild, Update::Delete(link));
    rederive_pending_ = true;
    return;
  }
  StartKill(src, {v});
}

bool ReachableRuntime::HasLink(LogicalNode src, LogicalNode dst) const {
  return link_vars_.find(Tuple::OfInts({src, dst})) != link_vars_.end();
}

bool ReachableRuntime::IsReachable(LogicalNode src, LogicalNode dst) const {
  return node(src).fix->Contains(Tuple::OfInts({src, dst}));
}

std::set<LogicalNode> ReachableRuntime::ReachableFrom(LogicalNode src) const {
  std::set<LogicalNode> out;
  for (const auto& [tuple, pv] : node(src).fix->contents()) {
    out.insert(static_cast<LogicalNode>(tuple.IntAt(1)));
  }
  return out;
}

size_t ReachableRuntime::ViewSize() const {
  size_t total = 0;
  for (const NodeState& state : nodes_) total += state.fix->size();
  return total;
}

const Prov* ReachableRuntime::ViewProvenance(LogicalNode src,
                                             LogicalNode dst) const {
  return node(src).fix->Lookup(Tuple::OfInts({src, dst}));
}

std::optional<std::pair<LogicalNode, LogicalNode>> ReachableRuntime::LinkOfVar(
    bdd::Var v) const {
  for (const auto& [link, var] : link_vars_) {
    if (var == v) {
      return std::make_pair(static_cast<LogicalNode>(link.IntAt(0)),
                            static_cast<LogicalNode>(link.IntAt(1)));
    }
  }
  return std::nullopt;
}

void ReachableRuntime::ShipJoinOutputs(LogicalNode at, NodeState& state,
                                       std::vector<Update> outs) {
  for (Update& out : outs) {
    if (out.type == UpdateType::kInsert) {
      if (opts_.prov == ProvMode::kSet) {
        // DRed ships every derivation directly; duplicates are eliminated
        // only after reaching their destination (paper §3.2).
        LogicalNode dest = static_cast<LogicalNode>(out.tuple.IntAt(0));
        Send(at, dest, kPortFix, std::move(out));
      } else {
        state.ship->ProcessInsert(out.tuple, out.pv);
      }
    } else {
      SendDirect(at, state, std::move(out));
    }
  }
}

void ReachableRuntime::SendDirect(LogicalNode at, NodeState& state,
                                  Update out) {
  LogicalNode dest = static_cast<LogicalNode>(out.tuple.IntAt(0));
  state.ship->ProcessDelete(out.tuple);
  Send(at, dest, kPortFix, std::move(out));
}

void ReachableRuntime::HandleFixInsert(LogicalNode at, NodeState& state,
                                       const Tuple& tuple, const Prov& pv) {
  Prov guarded = GuardIncoming(pv);
  if (guarded.IsFalse()) return;
  bool is_new = false;
  std::optional<Prov> delta = state.fix->ProcessInsert(tuple, guarded, &is_new);
  if (!delta.has_value()) return;
  if (is_new) LogViewDelta(tuple, /*added=*/true);
  // The fixpoint feeds into the recursive subplan: probe the local join's
  // reachable side. Absorption mode propagates the provenance delta;
  // relative mode propagates a *reference* to this tuple (derivation-edge
  // model), so only the first derivation probes — downstream derivations
  // point at the tuple, not at its provenance.
  if (opts_.prov == ProvMode::kRelative) {
    if (!is_new) return;
    ShipJoinOutputs(at, state,
                    state.join->ProcessInsert(PipelinedHashJoin::kRight, tuple,
                                              RefProv(tuple)));
    return;
  }
  ShipJoinOutputs(at, state,
                  state.join->ProcessInsert(PipelinedHashJoin::kRight, tuple,
                                            *delta));
}

void ReachableRuntime::HandleFixDelete(LogicalNode at, NodeState& state,
                                       const Tuple& tuple) {
  if (!state.fix->ProcessDelete(tuple)) return;  // Already absent.
  LogViewDelta(tuple, /*added=*/false);
  // Over-deletion cascades through the local join probe side.
  std::vector<Update> outs =
      state.join->ProcessDelete(PipelinedHashJoin::kRight, tuple);
  for (Update& out : outs) SendDirect(at, state, std::move(out));
}

void ReachableRuntime::HandleKill(LogicalNode at, NodeState& state,
                                  const std::vector<bdd::Var>& killed) {
  std::vector<bdd::Var> fresh = AcceptKill(at, killed);
  if (fresh.empty()) return;
  Fixpoint::KillResult result = state.fix->ProcessKill(fresh);
  for (const Tuple& removed : result.removed) {
    LogViewDelta(removed, /*added=*/false);
  }
  state.join->ProcessKill(fresh);
  // MinShip may promote buffered alternate derivations; the promotions are
  // enqueued after the forwarded kills, so FIFO order delivers the kill
  // first at every destination.
  state.ship->ProcessKill(fresh);
  if (opts_.prov == ProvMode::kRelative) {
    // Removed tuples invalidate the derivations that reference them.
    for (const Tuple& removed : result.removed) OnTupleRemoved(at, removed);
    relative_check_pending_ = true;
  }
}

void ReachableRuntime::HandleBatch(const Envelope* envs, size_t n) {
  // The run shares one (dst, port): resolve the destination's operator
  // state and the port dispatch once, then apply the operator across the
  // whole batch.
  LogicalNode at = envs[0].dst;
  NodeState& state = node(at);
  switch (LocalPort(envs[0])) {
    case kPortJoinBuild:
      for (size_t i = 0; i < n; ++i) {
        const Update& u = envs[i].update;
        if (u.type == UpdateType::kInsert) {
          Prov guarded = GuardIncoming(u.pv);
          if (guarded.IsFalse()) continue;
          ShipJoinOutputs(at, state,
                          state.join->ProcessInsert(PipelinedHashJoin::kLeft,
                                                    u.tuple, guarded));
        } else if (u.type == UpdateType::kDelete) {
          std::vector<Update> outs =
              state.join->ProcessDelete(PipelinedHashJoin::kLeft, u.tuple);
          for (Update& out : outs) SendDirect(at, state, std::move(out));
        }
      }
      return;
    case kPortFix:
      for (size_t i = 0; i < n; ++i) {
        const Update& u = envs[i].update;
        if (u.type == UpdateType::kInsert) {
          HandleFixInsert(at, state, u.tuple, u.pv);
        } else if (u.type == UpdateType::kDelete) {
          HandleFixDelete(at, state, u.tuple);
        }
      }
      return;
    case kPortKill:
      for (size_t i = 0; i < n; ++i) {
        HandleKill(at, state, envs[i].update.killed);
      }
      return;
    default:
      RECNET_CHECK(false);
  }
}

void ReachableRuntime::HandleEnvelope(const Envelope& env) {
  HandleBatch(&env, 1);
}

uint64_t ReachableRuntime::CountShipDemotions() const {
  uint64_t total = 0;
  for (LogicalNode n = 0; n < num_logical(); ++n) {
    total += node(n).ship->demotions();
  }
  return total;
}

bool ReachableRuntime::AfterQuiescent() {
  // Demoted MinShips compact their buffers against the shipped state now
  // that the insert storm has drained (no traffic is generated).
  bool reabsorbed = false;
  for (LogicalNode n = 0; n < num_logical(); ++n) {
    if (node(n).ship->FlushIfDemoted()) reabsorbed = true;
  }
  if (reabsorbed) return true;
  if (rederive_pending_) {
    rederive_pending_ = false;
    SeedRederivation();
    return true;
  }
  if (relative_check_pending_) {
    // The derivation-graph traversal of relative provenance: the kill
    // cascade removed everything reference-counting can remove; tuples
    // surviving only through cyclic self-support are found by the global
    // derivability fixpoint and force-removed.
    relative_check_pending_ = false;
    std::vector<ViewEntry> view;
    for (LogicalNode n = 0; n < num_logical(); ++n) {
      for (const auto& [tuple, pv] : node(n).fix->contents()) {
        view.push_back(ViewEntry{n, &tuple, &pv});
      }
    }
    auto underivable = FindUnderivable(view);
    for (const auto& [owner, tuple] : underivable) {
      node(owner).fix->ProcessDelete(tuple);
      LogViewDelta(tuple, /*added=*/false);
      OnTupleRemoved(owner, tuple);
    }
    return !underivable.empty();
  }
  return false;
}

void ReachableRuntime::SeedRederivation() {
  // DRed re-derivation (paper Figure 5, steps 5-8): re-run the rules over
  // the surviving base and view tuples. Tuples already present are absorbed
  // by the destination fixpoints — but only after paying the shipping cost,
  // exactly as DRed does.
  for (LogicalNode n = 0; n < num_logical(); ++n) {
    // Base case: re-derive reachable(n, y) from every live link(n, y),
    // enqueued as one per-destination batch.
    const auto& by_src = links_by_src_[static_cast<size_t>(n)];
    if (!by_src.empty()) {
      std::vector<Update> batch;
      batch.reserve(by_src.size());
      for (LogicalNode dst : by_src) {
        batch.push_back(Update::Insert(Tuple::OfInts({n, dst}), TrueProv()));
      }
      SendBatch(n, n, kPortFix, std::move(batch));
    }
    // Recursive case: re-fire the join over surviving reachable tuples.
    for (const Tuple& tuple :
         node(n).join->TuplesOn(PipelinedHashJoin::kRight)) {
      ShipJoinOutputs(n, node(n),
                      node(n).join->Refire(PipelinedHashJoin::kRight, tuple));
    }
  }
}

size_t ReachableRuntime::StateSizeBytes() const {
  size_t bytes = 0;
  for (const NodeState& state : nodes_) {
    bytes += state.fix->StateSizeBytes() + state.join->StateSizeBytes() +
             state.ship->StateSizeBytes();
  }
  return bytes;
}

}  // namespace recnet
