#ifndef RECNET_BDD_BDD_H_
#define RECNET_BDD_BDD_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace recnet {
namespace bdd {

// Index of a node inside a Manager. Indices 0 and 1 are the FALSE and TRUE
// terminals. Indices are stable for live nodes across garbage collections.
using NodeIndex = uint32_t;

// A Boolean variable. In recnet each base tuple (a `link` or `isTriggered`
// fact) is assigned one variable; absorption provenance annotates every view
// tuple with a Boolean function over these variables (paper Section 4).
using Var = uint32_t;

inline constexpr NodeIndex kFalse = 0;
inline constexpr NodeIndex kTrue = 1;

// Reduced Ordered Binary Decision Diagram manager.
//
// This is a from-scratch replacement for the JavaBDD library the paper used:
// hash-consed unique table (so isomorphic subgraphs are shared and Boolean
// absorption `a ∧ (a ∨ b) ≡ a` happens automatically by canonicity),
// direct-mapped memoization caches for the apply operations, and external
// reference counting with mark-and-sweep garbage collection.
//
// The unique table is intrusive: each node carries the index of the next
// node in its hash bucket, so a MakeNode is one bucket probe with no
// per-entry allocation — the dominant cost of every provenance composition
// in an engine run.
//
// Threading (the concurrent manager):
//  - Node storage is a spine of append-only segments (2^16 nodes each).
//    Interning a node never moves existing nodes, so readers traverse
//    published BDDs without any lock while other workers intern.
//  - The unique table is partitioned into 2^6 lock stripes (stripe =
//    hash & 63, invariant under bucket growth, so every bucket belongs to
//    exactly one stripe). In concurrent mode MakeNode takes only its
//    stripe's spinlock; failed first acquisitions are counted in
//    stripe_contention() for observability.
//  - Ref/Deref — the per-envelope hot path, firing on every Prov handle
//    copy — are a single relaxed fetch_add/fetch_sub on a per-node atomic.
//    No lock, ever.
//  - Each worker thread owns a private direct-mapped op cache, count memo,
//    and traversal scratch (slot chosen by SetThreadWorkerSlot, wired from
//    the router shard id during parallel drains). Caches never contend and
//    are cleared together at barrier GC. Canonicity makes results
//    interleaving-independent: whichever worker interns a node first, every
//    equal Boolean function resolves to the same index, so semantic
//    outcomes (and wire-size accounting, which is per-BDD structure) do not
//    depend on the schedule — the shard_parity_test suite pins this.
//  - GC stays barrier-only in concurrent mode: set_concurrent(true)
//    suppresses automatic collection (a sibling worker may hold a
//    just-computed index it has not Ref'd yet), and the engine calls
//    CollectAtBarrier() at superstep barriers where workers are joined.
//    Bucket-array growth is likewise deferred to the barrier; chains
//    simply run longer within a generation.
class Manager {
 public:
  struct Options {
    // GC is considered when the node store exceeds this many nodes; the
    // threshold doubles whenever a collection frees less than 25%.
    size_t gc_threshold = 1 << 17;
    // Size (entries, power of two) of each worker's direct-mapped
    // operation cache.
    size_t cache_size = 1 << 17;
  };

  Manager() : Manager(Options()) {}
  explicit Manager(const Options& options);
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // Enters (or leaves) concurrent mode. While concurrent: MakeNode locks
  // its unique-table stripe, refcount updates are atomic RMWs, automatic GC
  // and bucket growth are deferred to CollectAtBarrier(). Must be toggled
  // only while no concurrent callers exist (worker threads are joined at
  // every superstep barrier). Enabling materializes the unique table and
  // segment spine so the first parallel MakeNode never races lazy setup.
  void set_concurrent(bool enabled);
  bool concurrent() const { return concurrent_; }

  // Grows the per-worker cache/scratch slot array to `n` slots (idempotent;
  // never shrinks). Call while quiescent, before workers run.
  void EnsureWorkerSlots(size_t n);
  size_t worker_slots() const { return workers_.size(); }

  // Binds the calling thread to per-worker slot `w` (clamped to the slots
  // that exist). The engine sets this to the router shard id while a shard
  // worker drains; external threads default to slot 0.
  static void SetThreadWorkerSlot(int w) { tls_worker_ = w; }
  static int thread_worker_slot() { return tls_worker_; }

  // --- Core algebra (all results are canonical ROBDD roots) ---------------

  NodeIndex False() const { return kFalse; }
  NodeIndex True() const { return kTrue; }

  // The single-variable function v.
  NodeIndex MakeVar(Var v);

  NodeIndex And(NodeIndex a, NodeIndex b);
  NodeIndex Or(NodeIndex a, NodeIndex b);
  NodeIndex Not(NodeIndex a);
  // a ∧ ¬b; the BDD `restrict`-style difference used when merging deltas
  // (Algorithm 1 line 19 computes deltaPv = newPv ∧ ¬oldPv).
  NodeIndex Diff(NodeIndex a, NodeIndex b);

  // f with variable v fixed to `value` (paper: "restrict"; deleting base
  // tuple p zeroes out its variable, Section 4).
  NodeIndex Restrict(NodeIndex f, Var v, bool value);

  // f with every variable in `vars` fixed to false.
  NodeIndex RestrictAllFalse(NodeIndex f, const std::vector<Var>& vars);

  // --- Inspection ----------------------------------------------------------

  bool IsTerminal(NodeIndex n) const { return n <= kTrue; }

  // Number of internal (non-terminal) nodes reachable from f.
  size_t CountNodes(NodeIndex f) const;

  // Estimated wire size of f when shipped inside an update message. Each
  // internal node serializes to (var, low, high) ≈ 10 bytes plus an 8-byte
  // header. This backs the paper's per-tuple provenance overhead metric.
  size_t SerializedSizeBytes(NodeIndex f) const {
    return 8 + 10 * CountNodes(f);
  }

  // Appends (sorted, deduplicated) the variables f depends on.
  void Support(NodeIndex f, std::vector<Var>* vars) const;

  // True iff variable v is in the support of f.
  bool DependsOn(NodeIndex f, Var v) const;

  // If f is satisfiable, fills `assignment` with one satisfying partial
  // assignment (variables on the path to the TRUE terminal) and returns
  // true. Used for "why is this tuple in the view" diagnostics.
  bool AnyWitness(NodeIndex f,
                  std::vector<std::pair<Var, bool>>* assignment) const;

  // Evaluates f under `truth` (vars absent from the map default to false).
  bool Evaluate(NodeIndex f,
                const std::unordered_map<Var, bool>& truth) const;

  // Graphviz rendering of f, for debugging and docs.
  std::string ToDot(NodeIndex f) const;

  // --- Reference counting & GC --------------------------------------------

  // Lock-free on every path: a relaxed atomic RMW in concurrent mode, a
  // plain load/store otherwise. Terminals are permanently live and skip the
  // counter entirely.
  void Ref(NodeIndex n) {
    if (n <= kTrue) return;
    RECNET_DCHECK(n < next_index_.load(std::memory_order_relaxed));
    std::atomic<uint32_t>& rc = ref_at(n);
    if (concurrent_) {
      rc.fetch_add(1, std::memory_order_relaxed);
    } else {
      rc.store(rc.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
    }
  }
  void Deref(NodeIndex n) {
    if (n <= kTrue) return;
    RECNET_DCHECK(n < next_index_.load(std::memory_order_relaxed));
    std::atomic<uint32_t>& rc = ref_at(n);
    if (concurrent_) {
      rc.fetch_sub(1, std::memory_order_relaxed);
    } else {
      RECNET_DCHECK(rc.load(std::memory_order_relaxed) > 0);
      rc.store(rc.load(std::memory_order_relaxed) - 1,
               std::memory_order_relaxed);
    }
  }

  // Mark-and-sweep over externally referenced roots. Indices of live nodes
  // are preserved. Returns the number of nodes freed. Single-threaded
  // contexts only (in concurrent mode, only at a quiescent barrier).
  size_t GarbageCollect();

  // GC poll for concurrent mode, called by the engine at superstep barriers
  // (no workers running, so no un-Ref'd intermediates exist). Also performs
  // the bucket-array growth that MakeNode defers while concurrent.
  void CollectAtBarrier();

  size_t live_nodes() const {
    return live_nodes_.load(std::memory_order_relaxed);
  }
  size_t allocated_nodes() const {
    return next_index_.load(std::memory_order_relaxed);
  }
  uint64_t gc_runs() const { return gc_runs_; }
  // Aggregated over all worker op caches.
  uint64_t cache_hits() const;
  uint64_t cache_lookups() const;
  // Number of failed first acquisitions of unique-table stripe locks, over
  // all stripes: the direct measure of MakeNode contention.
  uint64_t stripe_contention() const;
  // Allocated node-store segments (each 2^16 node slots).
  size_t store_segments() const {
    return segments_allocated_.load(std::memory_order_relaxed);
  }

  Var var_of(NodeIndex n) const {
    return n <= kTrue ? kTerminalVar : node_at(n).var;
  }
  NodeIndex low_of(NodeIndex n) const {
    return n <= kTrue ? n : node_at(n).low;
  }
  NodeIndex high_of(NodeIndex n) const {
    return n <= kTrue ? n : node_at(n).high;
  }

  // Interns one node while decoding a snapshot (children must already be
  // interned). Same hash-consing as the internal MakeNode but never triggers
  // GC, so a decoder can hold freshly interned, not-yet-referenced nodes
  // across calls. The caller is expected to Ref (e.g. via a Bdd handle)
  // every returned root it wants to keep.
  NodeIndex MakeNodeForRestore(Var var, NodeIndex low, NodeIndex high);

 private:
  struct Node {
    Var var;
    NodeIndex low;
    NodeIndex high;
    // Intrusive unique-table chain (next node in the same hash bucket).
    // kNilNode terminates a chain; free-list slots are not chained. Only
    // MakeNode touches it, under the stripe lock in concurrent mode.
    NodeIndex next;
  };

  // Node storage: fixed-capacity spine of lazily allocated segments. A
  // segment never moves once published, so concurrent readers index it
  // without synchronization beyond the acquire load of the spine pointer.
  static constexpr size_t kSegBits = 16;
  static constexpr size_t kSegSize = size_t{1} << kSegBits;
  static constexpr size_t kSegMask = kSegSize - 1;
  // Matches the CacheKey packing bound: operands stay below 2^30.
  static constexpr size_t kMaxNodes = size_t{1} << 30;
  static constexpr size_t kMaxSegments = kMaxNodes >> kSegBits;

  struct Segment {
    std::unique_ptr<Node[]> nodes;
    std::unique_ptr<std::atomic<uint32_t>[]> refs;
  };

  // Unique-table lock stripes. Stripe choice is hash & kStripeMask —
  // independent of the bucket count, so a bucket's stripe never changes
  // when the table grows. Each stripe also owns a share of the free list,
  // so post-GC recycling needs no extra lock.
  static constexpr size_t kStripeCount = 64;
  static constexpr size_t kStripeMask = kStripeCount - 1;

  struct alignas(64) Stripe {
    std::atomic<bool> locked{false};
    std::atomic<uint64_t> contended{0};
    std::vector<NodeIndex> free_list;
  };

  struct CacheEntry {
    uint64_t key = ~0ULL;
    NodeIndex result = 0;
  };

  // Per-worker private state: direct-mapped op cache, count memo, and the
  // stamped traversal scratch. Indexed by the thread's worker slot.
  struct WorkerSlot {
    std::vector<CacheEntry> op_cache;
    std::unordered_map<NodeIndex, size_t> count_memo;
    std::vector<uint32_t> visit_stamp;
    uint32_t current_stamp = 0;
    std::vector<NodeIndex> traverse_stack;
    uint64_t cache_hits = 0;
    uint64_t cache_lookups = 0;
  };

  enum class Op : uint8_t { kAnd = 0, kOr = 1, kNot = 2, kRestrict = 3, kDiff = 4 };
  static constexpr Var kTerminalVar = ~Var{0};
  // Chain terminator. Index 0 is the FALSE terminal, which never lives in
  // the unique table, so it doubles as the nil sentinel.
  static constexpr NodeIndex kNilNode = 0;

  static uint64_t NodeHash(Var var, NodeIndex low, NodeIndex high);

  // Segment 0 backs every index below 2^16 — the entire store for all but
  // the largest workloads — so its base pointers are cached flat to keep
  // the recursion's per-node cost at one predictable branch plus one
  // indexed load (the spine's double indirection is the cold path).
  // Relaxed reads suffice: the cache is written (under seg_alloc_lock_)
  // before any index into segment 0 exists, and every cross-thread path
  // that hands over an index carries an acquire/release edge.
  Node& node_at(NodeIndex n) const {
    if (n < kSegSize) return seg0_nodes_.load(std::memory_order_relaxed)[n];
    return spine_[n >> kSegBits].load(std::memory_order_acquire)
        ->nodes[n & kSegMask];
  }
  std::atomic<uint32_t>& ref_at(NodeIndex n) const {
    if (n < kSegSize) return seg0_refs_.load(std::memory_order_relaxed)[n];
    return spine_[n >> kSegBits].load(std::memory_order_acquire)
        ->refs[n & kSegMask];
  }

  WorkerSlot& worker() const {
    size_t w = static_cast<size_t>(tls_worker_);
    if (w == 0) return *worker0_;  // Sequential mode and external callers.
    return *workers_[w < workers_.size() ? w : 0];
  }

  void LockStripe(Stripe& s) {
    if (!s.locked.exchange(true, std::memory_order_acquire)) return;
    s.contended.fetch_add(1, std::memory_order_relaxed);
    do {
      while (s.locked.load(std::memory_order_relaxed)) {
      }
    } while (s.locked.exchange(true, std::memory_order_acquire));
  }
  void UnlockStripe(Stripe& s) {
    s.locked.store(false, std::memory_order_release);
  }

  // Stamped visited-marking for the const traversals (CountNodes, Support,
  // DependsOn), per worker slot: one stamp array reused across calls
  // instead of a fresh unordered_set per call. Not reentrant; traversals
  // do not nest within a worker.
  void BeginTraversal(WorkerSlot& w) const;
  bool VisitFirst(WorkerSlot& w, NodeIndex n) const;

  // Materializes the unique-table buckets and the segment spine (first node
  // only).
  void EnsureTables();
  void EnsureSegment(size_t seg);
  NodeIndex MakeNode(Var var, NodeIndex low, NodeIndex high);
  void GrowBuckets();
  NodeIndex ApplyAndOr(Op op, NodeIndex a, NodeIndex b, WorkerSlot& w);
  // One-pass a ∧ ¬b: the complement of b is never materialized, so a delta
  // computation costs one apply instead of a full Not plus an And.
  NodeIndex ApplyDiff(NodeIndex a, NodeIndex b, WorkerSlot& w);
  NodeIndex NotRec(NodeIndex a, WorkerSlot& w);
  NodeIndex RestrictRec(NodeIndex f, Var v, bool value, WorkerSlot& w);
  void MaybeGc();
  void ClearCaches();

  // Injective packing (node indices and operands stay below 2^30): op in
  // the top bits, a and b in disjoint 30-bit fields. The direct-mapped
  // cache hashes this key with a full 64-bit mix so entries spread across
  // all slots.
  uint64_t CacheKey(Op op, NodeIndex a, uint64_t b) const {
    RECNET_DCHECK(b < (1ULL << 30));
    RECNET_DCHECK(a < (1U << 30));
    return (static_cast<uint64_t>(op) << 60) |
           (static_cast<uint64_t>(a) << 30) | b;
  }
  bool CacheLookup(WorkerSlot& w, uint64_t key, NodeIndex* out);
  void CacheStore(WorkerSlot& w, uint64_t key, NodeIndex result);

  // __thread (not thread_local): constant init is part of the declaration,
  // so every TU compiles direct TLS loads. A plain thread_local member
  // routes cross-TU accesses through the compiler's TLS init wrapper —
  // which misresolves in freshly spawned threads under sanitizers — and a
  // function-local static would pay a __tls_get_addr call per access.
  static __thread int tls_worker_;

  Options options_;
  bool concurrent_ = false;

  // Node store spine (lazily allocated, fixed capacity so the array itself
  // never moves under concurrent readers).
  mutable std::unique_ptr<std::atomic<Segment*>[]> spine_;
  // Flat base pointers of segment 0 (see node_at): written once when the
  // segment allocates, read relaxed on the hot path.
  mutable std::atomic<Node*> seg0_nodes_{nullptr};
  mutable std::atomic<std::atomic<uint32_t>*> seg0_refs_{nullptr};
  std::atomic<size_t> segments_allocated_{0};
  std::atomic<bool> seg_alloc_lock_{false};
  std::atomic<NodeIndex> next_index_{2};

  // Unique-table buckets (power-of-two length): head node index per bucket,
  // chained through Node::next. Grown only while single-threaded.
  std::vector<NodeIndex> buckets_;
  std::array<Stripe, kStripeCount> stripes_;
  std::atomic<size_t> table_entries_{0};
  std::atomic<size_t> live_nodes_{0};

  mutable std::vector<std::unique_ptr<WorkerSlot>> workers_;
  // workers_[0], pre-resolved: slot 0 serves sequential mode and external
  // threads, so the common worker() call skips the vector walk entirely.
  // workers_ only ever appends (EnsureWorkerSlots), so the pointer is
  // stable for the manager's lifetime.
  WorkerSlot* worker0_ = nullptr;

  size_t gc_threshold_ = 0;
  bool in_operation_ = false;  // Guards against GC mid-recursion.
  uint64_t gc_runs_ = 0;
};

// RAII handle to a BDD root. Copying increments the external reference
// count; destruction decrements it, making roots eligible for GC.
class Bdd {
 public:
  Bdd() : mgr_(nullptr), idx_(kFalse) {}
  Bdd(Manager* mgr, NodeIndex idx) : mgr_(mgr), idx_(idx) {
    if (mgr_ != nullptr) mgr_->Ref(idx_);
  }
  Bdd(const Bdd& o) : mgr_(o.mgr_), idx_(o.idx_) {
    if (mgr_ != nullptr) mgr_->Ref(idx_);
  }
  Bdd(Bdd&& o) noexcept : mgr_(o.mgr_), idx_(o.idx_) { o.mgr_ = nullptr; }
  Bdd& operator=(const Bdd& o) {
    if (this == &o) return *this;
    Bdd tmp(o);
    std::swap(mgr_, tmp.mgr_);
    std::swap(idx_, tmp.idx_);
    return *this;
  }
  Bdd& operator=(Bdd&& o) noexcept {
    std::swap(mgr_, o.mgr_);
    std::swap(idx_, o.idx_);
    return *this;
  }
  ~Bdd() {
    if (mgr_ != nullptr) mgr_->Deref(idx_);
  }

  bool is_null() const { return mgr_ == nullptr; }
  bool IsFalse() const { return idx_ == kFalse; }
  bool IsTrue() const { return idx_ == kTrue; }
  NodeIndex index() const { return idx_; }
  Manager* manager() const { return mgr_; }

  Bdd And(const Bdd& o) const {
    RECNET_DCHECK(mgr_ == o.mgr_);
    return Bdd(mgr_, mgr_->And(idx_, o.idx_));
  }
  Bdd Or(const Bdd& o) const {
    RECNET_DCHECK(mgr_ == o.mgr_);
    return Bdd(mgr_, mgr_->Or(idx_, o.idx_));
  }
  Bdd Not() const { return Bdd(mgr_, mgr_->Not(idx_)); }
  Bdd Diff(const Bdd& o) const {
    RECNET_DCHECK(mgr_ == o.mgr_);
    return Bdd(mgr_, mgr_->Diff(idx_, o.idx_));
  }
  Bdd Restrict(Var v, bool value) const {
    return Bdd(mgr_, mgr_->Restrict(idx_, v, value));
  }
  Bdd RestrictAllFalse(const std::vector<Var>& vars) const {
    return Bdd(mgr_, mgr_->RestrictAllFalse(idx_, vars));
  }

  size_t CountNodes() const { return mgr_->CountNodes(idx_); }
  size_t SerializedSizeBytes() const {
    return mgr_ == nullptr ? 8 : mgr_->SerializedSizeBytes(idx_);
  }

  friend bool operator==(const Bdd& a, const Bdd& b) {
    return a.mgr_ == b.mgr_ && a.idx_ == b.idx_;
  }
  friend bool operator!=(const Bdd& a, const Bdd& b) { return !(a == b); }

 private:
  Manager* mgr_;
  NodeIndex idx_;
};

}  // namespace bdd
}  // namespace recnet

#endif  // RECNET_BDD_BDD_H_
