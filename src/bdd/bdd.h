#ifndef RECNET_BDD_BDD_H_
#define RECNET_BDD_BDD_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace recnet {
namespace bdd {

// Index of a node inside a Manager. Indices 0 and 1 are the FALSE and TRUE
// terminals. Indices are stable for live nodes across garbage collections.
using NodeIndex = uint32_t;

// A Boolean variable. In recnet each base tuple (a `link` or `isTriggered`
// fact) is assigned one variable; absorption provenance annotates every view
// tuple with a Boolean function over these variables (paper Section 4).
using Var = uint32_t;

inline constexpr NodeIndex kFalse = 0;
inline constexpr NodeIndex kTrue = 1;

// Reduced Ordered Binary Decision Diagram manager.
//
// This is a from-scratch replacement for the JavaBDD library the paper used:
// hash-consed unique table (so isomorphic subgraphs are shared and Boolean
// absorption `a ∧ (a ∨ b) ≡ a` happens automatically by canonicity),
// direct-mapped memoization caches for the apply operations, and external
// reference counting with mark-and-sweep garbage collection.
//
// The unique table is intrusive: each node carries the index of the next
// node in its hash bucket, so a MakeNode is one bucket probe over the
// contiguous node array with no per-entry allocation — the dominant cost of
// every provenance composition in an engine run.
//
// Threading: single-threaded by default (the conditional lock below is a
// plain branch). During a parallel sharded drain the engine calls
// set_concurrent(true), which engages one manager-wide recursive mutex on
// every public operation — including Ref/Deref, which fire on every Prov
// handle copy — so shard workers can share the manager safely. Canonicity
// makes the results order-independent: whichever worker interns a node
// first, every equal Boolean function still resolves to the same index, so
// semantic outcomes (and all wire-size accounting, which is per-BDD
// structure) do not depend on the interleaving. The coarse lock serializes
// annotation-heavy workloads; distbdd-style striped unique-table locking is
// the planned follow-on.
class Manager {
 public:
  struct Options {
    // GC is considered when the node store exceeds this many nodes; the
    // threshold doubles whenever a collection frees less than 25%.
    size_t gc_threshold = 1 << 17;
    // Size (entries, power of two) of each direct-mapped operation cache.
    size_t cache_size = 1 << 17;
  };

  Manager() : Manager(Options()) {}
  explicit Manager(const Options& options);

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // Engages (or releases) the manager-wide operation mutex. The engine
  // brackets parallel sharded drains with this; everything else runs
  // lock-free as before. Must be toggled only while no concurrent callers
  // exist (worker threads are joined at every superstep barrier).
  void set_concurrent(bool enabled) { concurrent_ = enabled; }
  bool concurrent() const { return concurrent_; }

  // --- Core algebra (all results are canonical ROBDD roots) ---------------

  NodeIndex False() const { return kFalse; }
  NodeIndex True() const { return kTrue; }

  // The single-variable function v.
  NodeIndex MakeVar(Var v);

  NodeIndex And(NodeIndex a, NodeIndex b);
  NodeIndex Or(NodeIndex a, NodeIndex b);
  NodeIndex Not(NodeIndex a);
  // a ∧ ¬b; the BDD `restrict`-style difference used when merging deltas
  // (Algorithm 1 line 19 computes deltaPv = newPv ∧ ¬oldPv).
  NodeIndex Diff(NodeIndex a, NodeIndex b);

  // f with variable v fixed to `value` (paper: "restrict"; deleting base
  // tuple p zeroes out its variable, Section 4).
  NodeIndex Restrict(NodeIndex f, Var v, bool value);

  // f with every variable in `vars` fixed to false.
  NodeIndex RestrictAllFalse(NodeIndex f, const std::vector<Var>& vars);

  // --- Inspection ----------------------------------------------------------

  bool IsTerminal(NodeIndex n) const { return n <= kTrue; }

  // Number of internal (non-terminal) nodes reachable from f.
  size_t CountNodes(NodeIndex f) const;

  // Estimated wire size of f when shipped inside an update message. Each
  // internal node serializes to (var, low, high) ≈ 10 bytes plus an 8-byte
  // header. This backs the paper's per-tuple provenance overhead metric.
  size_t SerializedSizeBytes(NodeIndex f) const {
    return 8 + 10 * CountNodes(f);
  }

  // Appends (sorted, deduplicated) the variables f depends on.
  void Support(NodeIndex f, std::vector<Var>* vars) const;

  // True iff variable v is in the support of f.
  bool DependsOn(NodeIndex f, Var v) const;

  // If f is satisfiable, fills `assignment` with one satisfying partial
  // assignment (variables on the path to the TRUE terminal) and returns
  // true. Used for "why is this tuple in the view" diagnostics.
  bool AnyWitness(NodeIndex f,
                  std::vector<std::pair<Var, bool>>* assignment) const;

  // Evaluates f under `truth` (vars absent from the map default to false).
  bool Evaluate(NodeIndex f,
                const std::unordered_map<Var, bool>& truth) const;

  // Graphviz rendering of f, for debugging and docs.
  std::string ToDot(NodeIndex f) const;

  // --- Reference counting & GC --------------------------------------------

  void Ref(NodeIndex n);
  void Deref(NodeIndex n);

  // Mark-and-sweep over externally referenced roots. Indices of live nodes
  // are preserved. Returns the number of nodes freed.
  size_t GarbageCollect();

  // GC poll for concurrent mode, called by the engine at superstep barriers
  // (no workers running, so no un-Ref'd intermediates exist). Automatic GC
  // inside operations is suppressed while concurrent() — see MaybeGc.
  void CollectAtBarrier();

  size_t live_nodes() const { return live_nodes_; }
  size_t allocated_nodes() const { return nodes_.size(); }
  uint64_t gc_runs() const { return gc_runs_; }
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_lookups() const { return cache_lookups_; }

  Var var_of(NodeIndex n) const { return nodes_[n].var; }
  NodeIndex low_of(NodeIndex n) const { return nodes_[n].low; }
  NodeIndex high_of(NodeIndex n) const { return nodes_[n].high; }

  // Interns one node while decoding a snapshot (children must already be
  // interned). Same hash-consing as the internal MakeNode but never triggers
  // GC, so a decoder can hold freshly interned, not-yet-referenced nodes
  // across calls. The caller is expected to Ref (e.g. via a Bdd handle)
  // every returned root it wants to keep.
  NodeIndex MakeNodeForRestore(Var var, NodeIndex low, NodeIndex high);

 private:
  struct Node {
    Var var;
    NodeIndex low;
    NodeIndex high;
    // Intrusive unique-table chain (next node in the same hash bucket).
    // kNilNode terminates a chain; free-list slots are not chained.
    NodeIndex next;
  };

  enum class Op : uint8_t { kAnd = 0, kOr = 1, kNot = 2, kRestrict = 3, kDiff = 4 };

  struct CacheEntry {
    uint64_t key = ~0ULL;
    NodeIndex result = 0;
  };

  // Conditional critical section: a no-op branch unless set_concurrent(true)
  // is in effect. Recursive because public operations compose (e.g.
  // RestrictAllFalse calls Restrict, SerializedSizeBytes calls CountNodes).
  class MaybeLock {
   public:
    explicit MaybeLock(const Manager* mgr)
        : mgr_(mgr->concurrent_ ? mgr : nullptr) {
      if (mgr_ != nullptr) mgr_->mu_.lock();
    }
    ~MaybeLock() {
      if (mgr_ != nullptr) mgr_->mu_.unlock();
    }
    MaybeLock(const MaybeLock&) = delete;
    MaybeLock& operator=(const MaybeLock&) = delete;

   private:
    const Manager* mgr_;
  };

  static constexpr Var kTerminalVar = ~Var{0};
  // Chain terminator. Index 0 is the FALSE terminal, which never lives in
  // the unique table, so it doubles as the nil sentinel.
  static constexpr NodeIndex kNilNode = 0;

  static uint64_t NodeHash(Var var, NodeIndex low, NodeIndex high);

  // Stamped visited-marking for the const traversals (CountNodes, Support,
  // DependsOn): one stamp array reused across calls instead of a fresh
  // unordered_set per call. Not reentrant; traversals do not nest.
  void BeginTraversal() const;
  bool VisitFirst(NodeIndex n) const;

  // Materializes the unique-table buckets and op caches (first node only).
  void EnsureTables();
  NodeIndex MakeNode(Var var, NodeIndex low, NodeIndex high);
  void GrowBuckets();
  NodeIndex ApplyAndOr(Op op, NodeIndex a, NodeIndex b);
  // One-pass a ∧ ¬b: the complement of b is never materialized, so a delta
  // computation costs one apply instead of a full Not plus an And.
  NodeIndex ApplyDiff(NodeIndex a, NodeIndex b);
  NodeIndex NotRec(NodeIndex a);
  NodeIndex RestrictRec(NodeIndex f, Var v, bool value);
  void MaybeGc();
  void ClearCaches();

  // Injective packing (node indices and operands stay below 2^30): op in
  // the top bits, a and b in disjoint 30-bit fields. The direct-mapped
  // cache hashes this key with a full 64-bit mix so entries spread across
  // all slots.
  uint64_t CacheKey(Op op, NodeIndex a, uint64_t b) const {
    RECNET_DCHECK(b < (1ULL << 30));
    RECNET_DCHECK(a < (1U << 30));
    return (static_cast<uint64_t>(op) << 60) |
           (static_cast<uint64_t>(a) << 30) | b;
  }
  bool CacheLookup(uint64_t key, NodeIndex* out);
  void CacheStore(uint64_t key, NodeIndex result);

  Options options_;
  mutable std::recursive_mutex mu_;
  bool concurrent_ = false;
  std::vector<Node> nodes_;
  std::vector<uint32_t> refcount_;
  std::vector<NodeIndex> free_list_;
  // Unique-table buckets (power-of-two length): head node index per bucket,
  // chained through Node::next.
  std::vector<NodeIndex> buckets_;
  size_t table_entries_ = 0;
  std::vector<CacheEntry> op_cache_;
  // Root index -> reachable internal-node count (wire-size accounting);
  // cleared with the op caches whenever GC may recycle indices.
  mutable std::unordered_map<NodeIndex, size_t> count_memo_;
  mutable std::vector<uint32_t> visit_stamp_;
  mutable uint32_t current_stamp_ = 0;
  mutable std::vector<NodeIndex> traverse_stack_;
  size_t live_nodes_ = 0;
  size_t gc_threshold_ = 0;
  bool in_operation_ = false;  // Guards against GC mid-recursion.
  uint64_t gc_runs_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_lookups_ = 0;
};

// RAII handle to a BDD root. Copying increments the external reference
// count; destruction decrements it, making roots eligible for GC.
class Bdd {
 public:
  Bdd() : mgr_(nullptr), idx_(kFalse) {}
  Bdd(Manager* mgr, NodeIndex idx) : mgr_(mgr), idx_(idx) {
    if (mgr_ != nullptr) mgr_->Ref(idx_);
  }
  Bdd(const Bdd& o) : mgr_(o.mgr_), idx_(o.idx_) {
    if (mgr_ != nullptr) mgr_->Ref(idx_);
  }
  Bdd(Bdd&& o) noexcept : mgr_(o.mgr_), idx_(o.idx_) { o.mgr_ = nullptr; }
  Bdd& operator=(const Bdd& o) {
    if (this == &o) return *this;
    Bdd tmp(o);
    std::swap(mgr_, tmp.mgr_);
    std::swap(idx_, tmp.idx_);
    return *this;
  }
  Bdd& operator=(Bdd&& o) noexcept {
    std::swap(mgr_, o.mgr_);
    std::swap(idx_, o.idx_);
    return *this;
  }
  ~Bdd() {
    if (mgr_ != nullptr) mgr_->Deref(idx_);
  }

  bool is_null() const { return mgr_ == nullptr; }
  bool IsFalse() const { return idx_ == kFalse; }
  bool IsTrue() const { return idx_ == kTrue; }
  NodeIndex index() const { return idx_; }
  Manager* manager() const { return mgr_; }

  Bdd And(const Bdd& o) const {
    RECNET_DCHECK(mgr_ == o.mgr_);
    return Bdd(mgr_, mgr_->And(idx_, o.idx_));
  }
  Bdd Or(const Bdd& o) const {
    RECNET_DCHECK(mgr_ == o.mgr_);
    return Bdd(mgr_, mgr_->Or(idx_, o.idx_));
  }
  Bdd Not() const { return Bdd(mgr_, mgr_->Not(idx_)); }
  Bdd Diff(const Bdd& o) const {
    RECNET_DCHECK(mgr_ == o.mgr_);
    return Bdd(mgr_, mgr_->Diff(idx_, o.idx_));
  }
  Bdd Restrict(Var v, bool value) const {
    return Bdd(mgr_, mgr_->Restrict(idx_, v, value));
  }
  Bdd RestrictAllFalse(const std::vector<Var>& vars) const {
    return Bdd(mgr_, mgr_->RestrictAllFalse(idx_, vars));
  }

  size_t CountNodes() const { return mgr_->CountNodes(idx_); }
  size_t SerializedSizeBytes() const {
    return mgr_ == nullptr ? 8 : mgr_->SerializedSizeBytes(idx_);
  }

  friend bool operator==(const Bdd& a, const Bdd& b) {
    return a.mgr_ == b.mgr_ && a.idx_ == b.idx_;
  }
  friend bool operator!=(const Bdd& a, const Bdd& b) { return !(a == b); }

 private:
  Manager* mgr_;
  NodeIndex idx_;
};

}  // namespace bdd
}  // namespace recnet

#endif  // RECNET_BDD_BDD_H_
