#ifndef RECNET_BDD_BDD_H_
#define RECNET_BDD_BDD_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace recnet {
namespace bdd {

// A reference to a BDD root: a node index shifted left by one, with the
// complement ("negated") bit in the low bit. Node index 0 is the single
// TRUE terminal, so the constant refs are kTrue = 0 and kFalse = ¬kTrue = 1.
// Refs are stable for live nodes across garbage collections.
using BddRef = uint32_t;

// Index of a node inside a Manager (a BddRef with the complement bit
// stripped and shifted out). Kept as a distinct alias because the unique
// table, refcounts, and GC operate on nodes, not refs.
using NodeIndex = uint32_t;

// A Boolean variable. In recnet each base tuple (a `link` or `isTriggered`
// fact) is assigned one variable; absorption provenance annotates every view
// tuple with a Boolean function over these variables (paper Section 4).
using Var = uint32_t;

inline constexpr BddRef kTrue = 0;
inline constexpr BddRef kFalse = 1;

// Reduced Ordered Binary Decision Diagram manager with complement edges
// (the Brace–Rudell–Bryant DAC'90 package design).
//
// This is a from-scratch replacement for the JavaBDD library the paper used:
// hash-consed unique table (so isomorphic subgraphs are shared and Boolean
// absorption `a ∧ (a ∨ b) ≡ a` happens automatically by canonicity),
// direct-mapped memoization caches for the apply operations, and external
// reference counting with mark-and-sweep garbage collection.
//
// Complement edges: every edge (and every external ref) may carry a
// complement bit, meaning "the function rooted here, negated". Canonicity
// is restored by the regular-then-edge rule — a stored node's high (then)
// edge is always regular; MakeNode factors a complemented then-edge out of
// the node and returns a complemented ref instead. Consequences:
//  - Not() is a one-bit XOR: no unique-table probe, no allocation, O(1).
//  - A function and its negation share every node, halving many stores.
//  - One AND recursion serves the whole algebra (Or by De Morgan over
//    complemented refs, Diff(a,b) = a ∧ ¬b by flipping b's bit), so the
//    op cache is polarity-aware by construction: computing ¬(a ∨ b) hits
//    the same cache entry as a ∨ b.
//
// The unique table is intrusive: each node carries the index of the next
// node in its hash bucket, so a MakeNode is one bucket probe with no
// per-entry allocation — the dominant cost of every provenance composition
// in an engine run.
//
// Threading (the concurrent manager):
//  - Node storage is a spine of append-only segments (2^16 nodes each).
//    Interning a node never moves existing nodes, so readers traverse
//    published BDDs without any lock while other workers intern.
//  - The unique table is partitioned into 2^6 lock stripes (stripe =
//    hash & 63, invariant under bucket growth, so every bucket belongs to
//    exactly one stripe). In concurrent mode MakeNode takes only its
//    stripe's spinlock; failed first acquisitions are counted in
//    stripe_contention() for observability.
//  - Ref/Deref — the per-envelope hot path, firing on every Prov handle
//    copy — are a single relaxed fetch_add/fetch_sub on a per-node atomic.
//    No lock, ever.
//  - Each worker thread owns a private direct-mapped op cache, count memo,
//    and traversal scratch (slot chosen by SetThreadWorkerSlot, wired from
//    the router shard id during parallel drains). Caches never contend and
//    are cleared together at barrier GC. Canonicity makes results
//    interleaving-independent: whichever worker interns a node first, every
//    equal Boolean function resolves to the same tagged ref, so semantic
//    outcomes (and wire-size accounting, which is per-BDD structure) do not
//    depend on the schedule — the shard_parity_test suite pins this.
//  - GC stays barrier-only in concurrent mode: set_concurrent(true)
//    suppresses automatic collection (a sibling worker may hold a
//    just-computed ref it has not Ref'd yet), and the engine calls
//    CollectAtBarrier() at superstep barriers where workers are joined.
//    Bucket-array growth is likewise deferred to the barrier; chains
//    simply run longer within a generation.
class Manager {
 public:
  struct Options {
    // GC is considered when the node store exceeds this many nodes; the
    // threshold doubles whenever a collection frees less than 25%.
    size_t gc_threshold = 1 << 17;
    // Size (entries, power of two) of each worker's direct-mapped
    // operation cache.
    size_t cache_size = 1 << 17;
  };

  Manager() : Manager(Options()) {}
  explicit Manager(const Options& options);
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // Enters (or leaves) concurrent mode. While concurrent: MakeNode locks
  // its unique-table stripe, refcount updates are atomic RMWs, automatic GC
  // and bucket growth are deferred to CollectAtBarrier(). Must be toggled
  // only while no concurrent callers exist (worker threads are joined at
  // every superstep barrier). Enabling materializes the unique table and
  // segment spine so the first parallel MakeNode never races lazy setup.
  void set_concurrent(bool enabled);
  bool concurrent() const { return concurrent_; }

  // Grows the per-worker cache/scratch slot array to `n` slots (idempotent;
  // never shrinks). Call while quiescent, before workers run.
  void EnsureWorkerSlots(size_t n);
  size_t worker_slots() const { return workers_.size(); }

  // Binds the calling thread to per-worker slot `w` (clamped to the slots
  // that exist). The engine sets this to the router shard id while a shard
  // worker drains; external threads default to slot 0.
  static void SetThreadWorkerSlot(int w) { tls_worker_ = w; }
  static int thread_worker_slot() { return tls_worker_; }

  // --- Core algebra (all results are canonical tagged refs) ----------------

  BddRef False() const { return kFalse; }
  BddRef True() const { return kTrue; }

  // The single-variable function v.
  BddRef MakeVar(Var v);

  BddRef And(BddRef a, BddRef b);
  BddRef Or(BddRef a, BddRef b);
  // Complement-edge negation: flip the tag bit. No unique-table probe, no
  // allocation, no cache traffic — the unique_probes() and
  // allocated_nodes() counters are flat across any number of calls (the
  // micro-ops gate asserts this).
  BddRef Not(BddRef a) const { return a ^ 1u; }
  // a ∧ ¬b; the BDD `restrict`-style difference used when merging deltas
  // (Algorithm 1 line 19 computes deltaPv = newPv ∧ ¬oldPv). With
  // complement edges this is the AND recursion over a complemented b — the
  // negation is never materialized and the cache entry is shared with any
  // other AND touching the same (ref, ¬ref) pair.
  BddRef Diff(BddRef a, BddRef b);

  // f with variable v fixed to `value` (paper: "restrict"; deleting base
  // tuple p zeroes out its variable, Section 4).
  BddRef Restrict(BddRef f, Var v, bool value);

  // f with every variable in `vars` fixed to false.
  BddRef RestrictAllFalse(BddRef f, const std::vector<Var>& vars);

  // --- Inspection ----------------------------------------------------------

  // Both polarities of the terminal node: kTrue and kFalse.
  bool IsTerminal(BddRef n) const { return (n >> 1) == kTerminalNode; }

  // Number of internal (non-terminal) nodes reachable from f. Polarity-
  // independent: f and ¬f share their entire graph.
  size_t CountNodes(BddRef f) const;

  // Estimated wire size of f when shipped inside an update message. Each
  // internal node serializes to (var, low, high) ≈ 10 bytes plus an 8-byte
  // header. This backs the paper's per-tuple provenance overhead metric.
  size_t SerializedSizeBytes(BddRef f) const {
    return 8 + 10 * CountNodes(f);
  }

  // Appends (sorted, deduplicated) the variables f depends on.
  void Support(BddRef f, std::vector<Var>* vars) const;

  // True iff variable v is in the support of f.
  bool DependsOn(BddRef f, Var v) const;

  // If f is satisfiable, fills `assignment` with one satisfying partial
  // assignment (variables on the path to the TRUE terminal) and returns
  // true. Used for "why is this tuple in the view" diagnostics.
  bool AnyWitness(BddRef f,
                  std::vector<std::pair<Var, bool>>* assignment) const;

  // Evaluates f under `truth` (vars absent from the map default to false).
  bool Evaluate(BddRef f,
                const std::unordered_map<Var, bool>& truth) const;

  // Graphviz rendering of f, for debugging and docs. Complemented edges are
  // drawn with a dot arrowhead (the classic complement-edge notation);
  // there is a single terminal box labeled "1".
  std::string ToDot(BddRef f) const;

  // --- Reference counting & GC --------------------------------------------

  // Lock-free on every path: a relaxed atomic RMW in concurrent mode, a
  // plain load/store otherwise. The terminal is permanently live and skips
  // the counter entirely. Both polarities of a ref share one count (the
  // node is what GC keeps alive).
  void Ref(BddRef n) {
    NodeIndex idx = n >> 1;
    if (idx == kTerminalNode) return;
    RECNET_DCHECK(idx < next_index_.load(std::memory_order_relaxed));
    std::atomic<uint32_t>& rc = ref_at(idx);
    if (concurrent_) {
      rc.fetch_add(1, std::memory_order_relaxed);
    } else {
      rc.store(rc.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
    }
  }
  void Deref(BddRef n) {
    NodeIndex idx = n >> 1;
    if (idx == kTerminalNode) return;
    RECNET_DCHECK(idx < next_index_.load(std::memory_order_relaxed));
    std::atomic<uint32_t>& rc = ref_at(idx);
    if (concurrent_) {
      rc.fetch_sub(1, std::memory_order_relaxed);
    } else {
      RECNET_DCHECK(rc.load(std::memory_order_relaxed) > 0);
      rc.store(rc.load(std::memory_order_relaxed) - 1,
               std::memory_order_relaxed);
    }
  }

  // Mark-and-sweep over externally referenced roots. Refs of live nodes
  // are preserved. Returns the number of nodes freed. Single-threaded
  // contexts only (in concurrent mode, only at a quiescent barrier).
  size_t GarbageCollect();

  // GC poll for concurrent mode, called by the engine at superstep barriers
  // (no workers running, so no un-Ref'd intermediates exist). Also performs
  // the bucket-array growth that MakeNode defers while concurrent.
  void CollectAtBarrier();

  size_t live_nodes() const {
    return live_nodes_.load(std::memory_order_relaxed);
  }
  size_t allocated_nodes() const {
    return next_index_.load(std::memory_order_relaxed);
  }
  uint64_t gc_runs() const { return gc_runs_; }
  // Aggregated over all worker op caches.
  uint64_t cache_hits() const;
  uint64_t cache_lookups() const;
  // Unique-table probes (MakeNode intern attempts past the trivial
  // reductions), aggregated over workers. Not() never moves this counter.
  uint64_t unique_probes() const;
  // Number of failed first acquisitions of unique-table stripe locks, over
  // all stripes: the direct measure of MakeNode contention.
  uint64_t stripe_contention() const;
  // Allocated node-store segments (each 2^16 node slots).
  size_t store_segments() const {
    return segments_allocated_.load(std::memory_order_relaxed);
  }

  Var var_of(BddRef n) const {
    return IsTerminal(n) ? kTerminalVar : node_at(n >> 1).var;
  }
  // Cofactors of the *function* n refers to: the complement bit distributes
  // over the stored node's edges (cofactor of ¬f is ¬(cofactor of f)).
  BddRef low_of(BddRef n) const {
    return IsTerminal(n) ? n : node_at(n >> 1).low ^ (n & 1u);
  }
  BddRef high_of(BddRef n) const {
    return IsTerminal(n) ? n : node_at(n >> 1).high ^ (n & 1u);
  }

  // Interns one node while decoding a snapshot (children must already be
  // interned; either may be complemented — the canonical polarity is
  // re-derived here, so pre-complement-edge snapshots decode to canonical
  // tagged refs). Never triggers GC, so a decoder can hold freshly
  // interned, not-yet-referenced nodes across calls. The caller is
  // expected to Ref (e.g. via a Bdd handle) every returned root it wants
  // to keep.
  BddRef MakeNodeForRestore(Var var, BddRef low, BddRef high);

 private:
  struct Node {
    Var var;
    // Tagged child refs. Canonical polarity: `high` is always regular
    // (complement bit clear); `low` may carry a complement bit.
    BddRef low;
    BddRef high;
    // Intrusive unique-table chain (next node in the same hash bucket).
    // kNilNode terminates a chain; free-list slots are not chained. Only
    // MakeNode touches it, under the stripe lock in concurrent mode.
    NodeIndex next;
  };

  // Node storage: fixed-capacity spine of lazily allocated segments. A
  // segment never moves once published, so concurrent readers index it
  // without synchronization beyond the acquire load of the spine pointer.
  static constexpr size_t kSegBits = 16;
  static constexpr size_t kSegSize = size_t{1} << kSegBits;
  static constexpr size_t kSegMask = kSegSize - 1;
  // Tagged refs (index << 1 | bit) must fit the CacheKey packing bound of
  // 2^30, so node indices stay below 2^29.
  static constexpr size_t kMaxNodes = size_t{1} << 29;
  static constexpr size_t kMaxSegments = kMaxNodes >> kSegBits;

  // Unique-table lock stripes. Stripe choice is hash & kStripeMask —
  // independent of the bucket count, so a bucket's stripe never changes
  // when the table grows. Each stripe also owns a share of the free list,
  // so post-GC recycling needs no extra lock.
  static constexpr size_t kStripeCount = 64;
  static constexpr size_t kStripeMask = kStripeCount - 1;

  struct Segment {
    std::unique_ptr<Node[]> nodes;
    std::unique_ptr<std::atomic<uint32_t>[]> refs;
  };

  struct alignas(64) Stripe {
    std::atomic<bool> locked{false};
    std::atomic<uint64_t> contended{0};
    std::vector<NodeIndex> free_list;
  };

  struct CacheEntry {
    uint64_t key = ~0ULL;
    BddRef result = 0;
  };

  // Per-worker private state: direct-mapped op cache, count memo, and the
  // stamped traversal scratch. Indexed by the thread's worker slot.
  struct WorkerSlot {
    std::vector<CacheEntry> op_cache;
    std::unordered_map<NodeIndex, size_t> count_memo;
    std::vector<uint32_t> visit_stamp;
    uint32_t current_stamp = 0;
    std::vector<NodeIndex> traverse_stack;
    uint64_t cache_hits = 0;
    uint64_t cache_lookups = 0;
    uint64_t unique_probes = 0;
  };

  // With complement edges one AND recursion serves And/Or/Diff (all three
  // are ANDs over possibly-complemented refs), so only two ops key the
  // cache.
  enum class Op : uint8_t { kAnd = 0, kRestrict = 1 };
  static constexpr Var kTerminalVar = ~Var{0};
  // The single terminal: node index 0 represents TRUE (ref 0) and, through
  // its complemented ref 1, FALSE. It is virtual — never stored, never
  // refcounted, never collected — so index 0 doubles as the unique-table
  // nil sentinel.
  static constexpr NodeIndex kTerminalNode = 0;
  static constexpr NodeIndex kNilNode = 0;

  static uint64_t NodeHash(Var var, BddRef low, BddRef high);

  // Segment 0 backs every index below 2^16 — the entire store for all but
  // the largest workloads — so its base pointers are cached flat to keep
  // the recursion's per-node cost at one predictable branch plus one
  // indexed load (the spine's double indirection is the cold path).
  // Relaxed reads suffice: the cache is written (under seg_alloc_lock_)
  // before any index into segment 0 exists, and every cross-thread path
  // that hands over an index carries an acquire/release edge.
  Node& node_at(NodeIndex n) const {
    if (n < kSegSize) return seg0_nodes_.load(std::memory_order_relaxed)[n];
    return spine_[n >> kSegBits].load(std::memory_order_acquire)
        ->nodes[n & kSegMask];
  }
  std::atomic<uint32_t>& ref_at(NodeIndex n) const {
    if (n < kSegSize) return seg0_refs_.load(std::memory_order_relaxed)[n];
    return spine_[n >> kSegBits].load(std::memory_order_acquire)
        ->refs[n & kSegMask];
  }

  WorkerSlot& worker() const {
    size_t w = static_cast<size_t>(tls_worker_);
    if (w == 0) return *worker0_;  // Sequential mode and external callers.
    return *workers_[w < workers_.size() ? w : 0];
  }

  void LockStripe(Stripe& s) {
    if (!s.locked.exchange(true, std::memory_order_acquire)) return;
    s.contended.fetch_add(1, std::memory_order_relaxed);
    do {
      while (s.locked.load(std::memory_order_relaxed)) {
      }
    } while (s.locked.exchange(true, std::memory_order_acquire));
  }
  void UnlockStripe(Stripe& s) {
    s.locked.store(false, std::memory_order_release);
  }

  // Stamped visited-marking for the const traversals (CountNodes, Support,
  // DependsOn), per worker slot: one stamp array reused across calls
  // instead of a fresh unordered_set per call. Operates on node indices
  // (complement bits stripped). Not reentrant; traversals do not nest
  // within a worker.
  void BeginTraversal(WorkerSlot& w) const;
  bool VisitFirst(WorkerSlot& w, NodeIndex n) const;

  // Materializes the unique-table buckets and the segment spine (first node
  // only).
  void EnsureTables();
  void EnsureSegment(size_t seg);
  BddRef MakeNode(Var var, BddRef low, BddRef high);
  void GrowBuckets();
  // The single apply recursion: a ∧ b over tagged refs. Or and Diff are
  // expressed through it by complementing operands/results, which is what
  // makes the op cache polarity-aware.
  BddRef ApplyAnd(BddRef a, BddRef b, WorkerSlot& w);
  BddRef RestrictRec(BddRef f, Var v, bool value, WorkerSlot& w);
  void MaybeGc();
  void ClearCaches();

  // Injective packing (tagged refs stay below 2^30 because node indices
  // stay below 2^29): op in the top bits, a and b in disjoint 30-bit
  // fields. The direct-mapped cache hashes this key with a full 64-bit mix
  // so entries spread across all slots.
  uint64_t CacheKey(Op op, BddRef a, uint64_t b) const {
    RECNET_DCHECK(b < (1ULL << 30));
    RECNET_DCHECK(a < (1U << 30));
    return (static_cast<uint64_t>(op) << 60) |
           (static_cast<uint64_t>(a) << 30) | b;
  }
  bool CacheLookup(WorkerSlot& w, uint64_t key, BddRef* out);
  void CacheStore(WorkerSlot& w, uint64_t key, BddRef result);

  // __thread (not thread_local): constant init is part of the declaration,
  // so every TU compiles direct TLS loads. A plain thread_local member
  // routes cross-TU accesses through the compiler's TLS init wrapper —
  // which misresolves in freshly spawned threads under sanitizers — and a
  // function-local static would pay a __tls_get_addr call per access.
  static __thread int tls_worker_;

  Options options_;
  bool concurrent_ = false;

  // Node store spine (lazily allocated, fixed capacity so the array itself
  // never moves under concurrent readers).
  mutable std::unique_ptr<std::atomic<Segment*>[]> spine_;
  // Flat base pointers of segment 0 (see node_at): written once when the
  // segment allocates, read relaxed on the hot path.
  mutable std::atomic<Node*> seg0_nodes_{nullptr};
  mutable std::atomic<std::atomic<uint32_t>*> seg0_refs_{nullptr};
  std::atomic<size_t> segments_allocated_{0};
  std::atomic<bool> seg_alloc_lock_{false};
  std::atomic<NodeIndex> next_index_{1};

  // Unique-table buckets (power-of-two length): head node index per bucket,
  // chained through Node::next. Grown only while single-threaded.
  std::vector<NodeIndex> buckets_;
  std::array<Stripe, kStripeCount> stripes_;
  std::atomic<size_t> table_entries_{0};
  std::atomic<size_t> live_nodes_{0};

  mutable std::vector<std::unique_ptr<WorkerSlot>> workers_;
  // workers_[0], pre-resolved: slot 0 serves sequential mode and external
  // threads, so the common worker() call skips the vector walk entirely.
  // workers_ only ever appends (EnsureWorkerSlots), so the pointer is
  // stable for the manager's lifetime.
  WorkerSlot* worker0_ = nullptr;

  size_t gc_threshold_ = 0;
  bool in_operation_ = false;  // Guards against GC mid-recursion.
  uint64_t gc_runs_ = 0;
};

// RAII handle to a BDD root. Copying increments the external reference
// count; destruction decrements it, making roots eligible for GC.
class Bdd {
 public:
  Bdd() : mgr_(nullptr), idx_(kFalse) {}
  Bdd(Manager* mgr, BddRef idx) : mgr_(mgr), idx_(idx) {
    if (mgr_ != nullptr) mgr_->Ref(idx_);
  }
  Bdd(const Bdd& o) : mgr_(o.mgr_), idx_(o.idx_) {
    if (mgr_ != nullptr) mgr_->Ref(idx_);
  }
  Bdd(Bdd&& o) noexcept : mgr_(o.mgr_), idx_(o.idx_) { o.mgr_ = nullptr; }
  Bdd& operator=(const Bdd& o) {
    if (this == &o) return *this;
    Bdd tmp(o);
    std::swap(mgr_, tmp.mgr_);
    std::swap(idx_, tmp.idx_);
    return *this;
  }
  Bdd& operator=(Bdd&& o) noexcept {
    std::swap(mgr_, o.mgr_);
    std::swap(idx_, o.idx_);
    return *this;
  }
  ~Bdd() {
    if (mgr_ != nullptr) mgr_->Deref(idx_);
  }

  bool is_null() const { return mgr_ == nullptr; }
  bool IsFalse() const { return idx_ == kFalse; }
  bool IsTrue() const { return idx_ == kTrue; }
  BddRef index() const { return idx_; }
  Manager* manager() const { return mgr_; }

  Bdd And(const Bdd& o) const {
    RECNET_DCHECK(mgr_ == o.mgr_);
    return Bdd(mgr_, mgr_->And(idx_, o.idx_));
  }
  Bdd Or(const Bdd& o) const {
    RECNET_DCHECK(mgr_ == o.mgr_);
    return Bdd(mgr_, mgr_->Or(idx_, o.idx_));
  }
  Bdd Not() const { return Bdd(mgr_, mgr_->Not(idx_)); }
  Bdd Diff(const Bdd& o) const {
    RECNET_DCHECK(mgr_ == o.mgr_);
    return Bdd(mgr_, mgr_->Diff(idx_, o.idx_));
  }
  Bdd Restrict(Var v, bool value) const {
    return Bdd(mgr_, mgr_->Restrict(idx_, v, value));
  }
  Bdd RestrictAllFalse(const std::vector<Var>& vars) const {
    return Bdd(mgr_, mgr_->RestrictAllFalse(idx_, vars));
  }

  size_t CountNodes() const { return mgr_->CountNodes(idx_); }
  size_t SerializedSizeBytes() const {
    return mgr_ == nullptr ? 8 : mgr_->SerializedSizeBytes(idx_);
  }

  friend bool operator==(const Bdd& a, const Bdd& b) {
    return a.mgr_ == b.mgr_ && a.idx_ == b.idx_;
  }
  friend bool operator!=(const Bdd& a, const Bdd& b) { return !(a == b); }

 private:
  Manager* mgr_;
  BddRef idx_;
};

}  // namespace bdd
}  // namespace recnet

#endif  // RECNET_BDD_BDD_H_
