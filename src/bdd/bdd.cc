#include "bdd/bdd.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/value.h"

namespace recnet {
namespace bdd {

__thread int Manager::tls_worker_ = 0;

uint64_t Manager::NodeHash(Var var, NodeIndex low, NodeIndex high) {
  return Mix64((static_cast<uint64_t>(low) << 32 | high) ^
               static_cast<uint64_t>(var) * 0xda942042e4dd58b5ULL);
}

Manager::Manager(const Options& options)
    : options_(options), gc_threshold_(options.gc_threshold) {
  RECNET_CHECK((options.cache_size & (options.cache_size - 1)) == 0);
  // Terminals are virtual: they are permanently live, never stored, never
  // refcounted (Ref/Deref early-return), and never collected. live_nodes_
  // counts them for continuity with the accounting the engine reports.
  live_nodes_.store(2, std::memory_order_relaxed);
  workers_.push_back(std::make_unique<WorkerSlot>());
  worker0_ = workers_.front().get();
  // The unique-table buckets, segment spine, and op caches (several MB)
  // materialize lazily on the first node creation: set-semantics and
  // relative-mode engines construct a Manager per run and never build a
  // BDD node.
}

Manager::~Manager() {
  if (spine_ == nullptr) return;
  for (size_t i = 0; i < kMaxSegments; ++i) {
    delete spine_[i].load(std::memory_order_relaxed);
  }
}

void Manager::EnsureWorkerSlots(size_t n) {
  while (workers_.size() < n) {
    workers_.push_back(std::make_unique<WorkerSlot>());
  }
}

void Manager::set_concurrent(bool enabled) {
  // Toggled only between superstep barriers (no concurrent callers), but
  // the first MakeNode *after* the toggle may come from a worker thread:
  // materialize the lazily-built tables now so no worker races the
  // one-time setup.
  if (enabled && buckets_.empty()) EnsureTables();
  concurrent_ = enabled;
}

void Manager::EnsureTables() {
  // Pre-size the bucket array to the GC threshold: the node store grows to
  // at least that many entries before any collection, so starting smaller
  // only buys repeated rehashes of the whole table.
  size_t buckets = 1 << 12;
  while (buckets < options_.gc_threshold) buckets <<= 1;
  buckets_.assign(buckets, kNilNode);
  spine_ = std::make_unique<std::atomic<Segment*>[]>(kMaxSegments);
  for (size_t i = 0; i < kMaxSegments; ++i) {
    spine_[i].store(nullptr, std::memory_order_relaxed);
  }
}

void Manager::EnsureSegment(size_t seg) {
  RECNET_CHECK_LT(seg, kMaxSegments);
  if (spine_[seg].load(std::memory_order_acquire) != nullptr) return;
  // Double-checked under a dedicated spinlock: segment allocation is rare
  // (once per 2^16 nodes) and may race between stripes.
  while (seg_alloc_lock_.exchange(true, std::memory_order_acquire)) {
  }
  if (spine_[seg].load(std::memory_order_relaxed) == nullptr) {
    Segment* s = new Segment();
    s->nodes = std::make_unique<Node[]>(kSegSize);
    s->refs = std::make_unique<std::atomic<uint32_t>[]>(kSegSize);
    for (size_t i = 0; i < kSegSize; ++i) {
      s->refs[i].store(0, std::memory_order_relaxed);
    }
    spine_[seg].store(s, std::memory_order_release);
    if (seg == 0) {
      seg0_nodes_.store(s->nodes.get(), std::memory_order_release);
      seg0_refs_.store(s->refs.get(), std::memory_order_release);
    }
    segments_allocated_.fetch_add(1, std::memory_order_relaxed);
  }
  seg_alloc_lock_.store(false, std::memory_order_release);
}

// Marks n visited in the worker's current stamped traversal; returns true
// on first visit. Replaces per-traversal unordered_sets: one word-compare
// against a flat array, no allocation after warm-up.
bool Manager::VisitFirst(WorkerSlot& w, NodeIndex n) const {
  if (w.visit_stamp[n] == w.current_stamp) return false;
  w.visit_stamp[n] = w.current_stamp;
  return true;
}

void Manager::BeginTraversal(WorkerSlot& w) const {
  size_t allocated = next_index_.load(std::memory_order_relaxed);
  if (w.visit_stamp.size() < allocated) {
    w.visit_stamp.resize(allocated, 0);
  }
  if (++w.current_stamp == 0) {  // Stamp wrap: reset marks once per 2^32.
    std::fill(w.visit_stamp.begin(), w.visit_stamp.end(), 0);
    w.current_stamp = 1;
  }
  w.traverse_stack.clear();
}

bool Manager::CacheLookup(WorkerSlot& w, uint64_t key, NodeIndex* out) {
  ++w.cache_lookups;
  if (w.op_cache.empty()) return false;
  const CacheEntry& e = w.op_cache[Mix64(key) & (w.op_cache.size() - 1)];
  if (e.key == key) {
    ++w.cache_hits;
    *out = e.result;
    return true;
  }
  return false;
}

void Manager::CacheStore(WorkerSlot& w, uint64_t key, NodeIndex result) {
  if (w.op_cache.empty()) w.op_cache.assign(options_.cache_size, CacheEntry{});
  CacheEntry& e = w.op_cache[Mix64(key) & (w.op_cache.size() - 1)];
  e.key = key;
  e.result = result;
}

NodeIndex Manager::MakeNode(Var var, NodeIndex low, NodeIndex high) {
  if (low == high) return low;  // Reduction rule: redundant test.
  if (buckets_.empty()) EnsureTables();
  uint64_t hash = NodeHash(var, low, high);
  Stripe& stripe = stripes_[hash & kStripeMask];
  // Buckets are a power of two ≥ the stripe count, so bucket ≡ stripe
  // (mod kStripeCount): each bucket is only ever touched under its own
  // stripe's lock, at any bucket-array size.
  const bool locked = concurrent_;
  if (locked) LockStripe(stripe);
  size_t bucket = hash & (buckets_.size() - 1);
  for (NodeIndex n = buckets_[bucket]; n != kNilNode; n = node_at(n).next) {
    const Node& node = node_at(n);
    if (node.var == var && node.low == low && node.high == high) {
      if (locked) UnlockStripe(stripe);
      return n;
    }
  }
  if (!locked && table_entries_.load(std::memory_order_relaxed) >=
                     buckets_.size()) {
    // Concurrent mode defers growth to CollectAtBarrier (chains just run
    // longer within the generation); sequential mode grows in place.
    GrowBuckets();
    bucket = hash & (buckets_.size() - 1);
  }
  NodeIndex idx;
  if (!stripe.free_list.empty()) {
    idx = stripe.free_list.back();
    stripe.free_list.pop_back();
  } else {
    idx = next_index_.fetch_add(1, std::memory_order_relaxed);
    RECNET_CHECK_LT(idx, kMaxNodes);
    EnsureSegment(idx >> kSegBits);
  }
  node_at(idx) = Node{var, low, high, buckets_[bucket]};
  ref_at(idx).store(0, std::memory_order_relaxed);
  buckets_[bucket] = idx;
  table_entries_.fetch_add(1, std::memory_order_relaxed);
  live_nodes_.fetch_add(1, std::memory_order_relaxed);
  if (locked) UnlockStripe(stripe);
  return idx;
}

void Manager::GrowBuckets() {
  std::vector<NodeIndex> old = std::move(buckets_);
  buckets_.assign(old.size() * 2, kNilNode);
  for (NodeIndex head : old) {
    for (NodeIndex n = head; n != kNilNode;) {
      Node& node = node_at(n);
      NodeIndex next = node.next;
      size_t bucket =
          NodeHash(node.var, node.low, node.high) & (buckets_.size() - 1);
      node.next = buckets_[bucket];
      buckets_[bucket] = n;
      n = next;
    }
  }
}

NodeIndex Manager::MakeVar(Var v) {
  RECNET_CHECK_NE(v, kTerminalVar);
  MaybeGc();
  return MakeNode(v, kFalse, kTrue);
}

NodeIndex Manager::MakeNodeForRestore(Var var, NodeIndex low, NodeIndex high) {
  RECNET_CHECK_NE(var, kTerminalVar);
  RECNET_CHECK_LT(low, next_index_.load(std::memory_order_relaxed));
  RECNET_CHECK_LT(high, next_index_.load(std::memory_order_relaxed));
  return MakeNode(var, low, high);
}

NodeIndex Manager::And(NodeIndex a, NodeIndex b) {
  MaybeGc();
  WorkerSlot& w = worker();
  if (!concurrent_) in_operation_ = true;
  NodeIndex r = ApplyAndOr(Op::kAnd, a, b, w);
  if (!concurrent_) in_operation_ = false;
  return r;
}

NodeIndex Manager::Or(NodeIndex a, NodeIndex b) {
  MaybeGc();
  WorkerSlot& w = worker();
  if (!concurrent_) in_operation_ = true;
  NodeIndex r = ApplyAndOr(Op::kOr, a, b, w);
  if (!concurrent_) in_operation_ = false;
  return r;
}

NodeIndex Manager::Not(NodeIndex a) {
  MaybeGc();
  WorkerSlot& w = worker();
  if (!concurrent_) in_operation_ = true;
  NodeIndex r = NotRec(a, w);
  if (!concurrent_) in_operation_ = false;
  return r;
}

NodeIndex Manager::Restrict(NodeIndex f, Var v, bool value) {
  MaybeGc();
  WorkerSlot& w = worker();
  if (!concurrent_) in_operation_ = true;
  NodeIndex r = RestrictRec(f, v, value, w);
  if (!concurrent_) in_operation_ = false;
  return r;
}

NodeIndex Manager::Diff(NodeIndex a, NodeIndex b) {
  MaybeGc();
  WorkerSlot& w = worker();
  if (!concurrent_) in_operation_ = true;
  NodeIndex r = ApplyDiff(a, b, w);
  if (!concurrent_) in_operation_ = false;
  return r;
}

NodeIndex Manager::RestrictAllFalse(NodeIndex f,
                                    const std::vector<Var>& vars) {
  // Pin each intermediate result across the next Restrict (which may GC).
  NodeIndex r = f;
  Ref(r);
  for (Var v : vars) {
    NodeIndex next = Restrict(r, v, false);
    Ref(next);
    Deref(r);
    r = next;
  }
  Deref(r);
  return r;
}

NodeIndex Manager::ApplyAndOr(Op op, NodeIndex a, NodeIndex b,
                              WorkerSlot& w) {
  // Terminal cases.
  if (op == Op::kAnd) {
    if (a == kFalse || b == kFalse) return kFalse;
    if (a == kTrue) return b;
    if (b == kTrue) return a;
    if (a == b) return a;
  } else {
    if (a == kTrue || b == kTrue) return kTrue;
    if (a == kFalse) return b;
    if (b == kFalse) return a;
    if (a == b) return a;
  }
  // AND/OR are commutative: normalize operand order for cache locality.
  if (a > b) std::swap(a, b);
  uint64_t key = CacheKey(op, a, b);
  NodeIndex cached;
  if (CacheLookup(w, key, &cached)) return cached;

  const Node& na = node_at(a);
  const Node& nb = node_at(b);
  Var top = std::min(na.var, nb.var);
  NodeIndex a_lo = (na.var == top) ? na.low : a;
  NodeIndex a_hi = (na.var == top) ? na.high : a;
  NodeIndex b_lo = (nb.var == top) ? nb.low : b;
  NodeIndex b_hi = (nb.var == top) ? nb.high : b;

  NodeIndex lo = ApplyAndOr(op, a_lo, b_lo, w);
  NodeIndex hi = ApplyAndOr(op, a_hi, b_hi, w);
  NodeIndex r = MakeNode(top, lo, hi);
  CacheStore(w, key, r);
  return r;
}

NodeIndex Manager::ApplyDiff(NodeIndex a, NodeIndex b, WorkerSlot& w) {
  // Terminal cases of a ∧ ¬b.
  if (a == kFalse || b == kTrue || a == b) return kFalse;
  if (b == kFalse) return a;
  if (a == kTrue) return NotRec(b, w);
  uint64_t key = CacheKey(Op::kDiff, a, b);
  NodeIndex cached;
  if (CacheLookup(w, key, &cached)) return cached;
  const Node& na = node_at(a);
  const Node& nb = node_at(b);
  Var top = std::min(na.var, nb.var);
  NodeIndex a_lo = (na.var == top) ? na.low : a;
  NodeIndex a_hi = (na.var == top) ? na.high : a;
  NodeIndex b_lo = (nb.var == top) ? nb.low : b;
  NodeIndex b_hi = (nb.var == top) ? nb.high : b;
  NodeIndex lo = ApplyDiff(a_lo, b_lo, w);
  NodeIndex hi = ApplyDiff(a_hi, b_hi, w);
  NodeIndex r = MakeNode(top, lo, hi);
  CacheStore(w, key, r);
  return r;
}

NodeIndex Manager::NotRec(NodeIndex a, WorkerSlot& w) {
  if (a == kFalse) return kTrue;
  if (a == kTrue) return kFalse;
  uint64_t key = CacheKey(Op::kNot, a, 0);
  NodeIndex cached;
  if (CacheLookup(w, key, &cached)) return cached;
  const Node& n = node_at(a);
  NodeIndex lo = NotRec(n.low, w);
  NodeIndex hi = NotRec(n.high, w);
  NodeIndex r = MakeNode(n.var, lo, hi);
  CacheStore(w, key, r);
  return r;
}

NodeIndex Manager::RestrictRec(NodeIndex f, Var v, bool value,
                               WorkerSlot& w) {
  if (IsTerminal(f)) return f;
  const Node& n = node_at(f);
  if (n.var > v) return f;  // Ordered: v cannot appear below.
  if (n.var == v) return value ? n.high : n.low;
  uint64_t key =
      CacheKey(Op::kRestrict, f,
               (static_cast<uint64_t>(v) << 1) | (value ? 1u : 0u));
  NodeIndex cached;
  if (CacheLookup(w, key, &cached)) return cached;
  NodeIndex lo = RestrictRec(n.low, v, value, w);
  NodeIndex hi = RestrictRec(n.high, v, value, w);
  NodeIndex r = MakeNode(n.var, lo, hi);
  CacheStore(w, key, r);
  return r;
}

size_t Manager::CountNodes(NodeIndex f) const {
  if (IsTerminal(f)) return 0;
  WorkerSlot& w = worker();
  // Wire-size accounting calls this once per shipped copy of an
  // annotation; memoize per root (entries die with the next GC, which is
  // when indices can be recycled).
  auto memo = w.count_memo.find(f);
  if (memo != w.count_memo.end()) return memo->second;
  BeginTraversal(w);
  w.traverse_stack.push_back(f);
  size_t count = 0;
  while (!w.traverse_stack.empty()) {
    NodeIndex n = w.traverse_stack.back();
    w.traverse_stack.pop_back();
    if (IsTerminal(n) || !VisitFirst(w, n)) continue;
    ++count;
    const Node& node = node_at(n);
    w.traverse_stack.push_back(node.low);
    w.traverse_stack.push_back(node.high);
  }
  w.count_memo.emplace(f, count);
  return count;
}

void Manager::Support(NodeIndex f, std::vector<Var>* vars) const {
  WorkerSlot& w = worker();
  size_t start = vars->size();
  BeginTraversal(w);
  w.traverse_stack.push_back(f);
  while (!w.traverse_stack.empty()) {
    NodeIndex n = w.traverse_stack.back();
    w.traverse_stack.pop_back();
    if (IsTerminal(n) || !VisitFirst(w, n)) continue;
    const Node& node = node_at(n);
    vars->push_back(node.var);
    w.traverse_stack.push_back(node.low);
    w.traverse_stack.push_back(node.high);
  }
  std::sort(vars->begin() + start, vars->end());
  vars->erase(std::unique(vars->begin() + start, vars->end()), vars->end());
}

bool Manager::DependsOn(NodeIndex f, Var v) const {
  WorkerSlot& w = worker();
  BeginTraversal(w);
  w.traverse_stack.push_back(f);
  while (!w.traverse_stack.empty()) {
    NodeIndex n = w.traverse_stack.back();
    w.traverse_stack.pop_back();
    if (IsTerminal(n) || !VisitFirst(w, n)) continue;
    const Node& node = node_at(n);
    if (node.var == v) return true;
    if (node.var > v) continue;  // Ordered: v cannot appear below.
    w.traverse_stack.push_back(node.low);
    w.traverse_stack.push_back(node.high);
  }
  return false;
}

bool Manager::AnyWitness(NodeIndex f,
                         std::vector<std::pair<Var, bool>>* assignment) const {
  assignment->clear();
  if (f == kFalse) return false;
  NodeIndex n = f;
  while (!IsTerminal(n)) {
    const Node& node = node_at(n);
    // Prefer the high branch (variable true) when it can reach TRUE; for
    // monotone provenance functions this yields a minimal witness of
    // present base tuples.
    if (node.high != kFalse) {
      assignment->emplace_back(node.var, true);
      n = node.high;
    } else {
      assignment->emplace_back(node.var, false);
      n = node.low;
    }
  }
  RECNET_CHECK_EQ(n, kTrue);
  return true;
}

bool Manager::Evaluate(NodeIndex f,
                       const std::unordered_map<Var, bool>& truth) const {
  NodeIndex n = f;
  while (!IsTerminal(n)) {
    const Node& node = node_at(n);
    auto it = truth.find(node.var);
    bool value = (it != truth.end()) && it->second;
    n = value ? node.high : node.low;
  }
  return n == kTrue;
}

std::string Manager::ToDot(NodeIndex f) const {
  std::ostringstream os;
  os << "digraph bdd {\n";
  os << "  f [shape=none,label=\"f\"];\n  f -> n" << f << ";\n";
  os << "  n0 [shape=box,label=\"0\"];\n  n1 [shape=box,label=\"1\"];\n";
  std::unordered_set<NodeIndex> seen;
  std::vector<NodeIndex> stack{f};
  while (!stack.empty()) {
    NodeIndex n = stack.back();
    stack.pop_back();
    if (IsTerminal(n) || !seen.insert(n).second) continue;
    const Node& node = node_at(n);
    os << "  n" << n << " [label=\"x" << node.var << "\"];\n";
    os << "  n" << n << " -> n" << node.low << " [style=dashed];\n";
    os << "  n" << n << " -> n" << node.high << ";\n";
    stack.push_back(node.low);
    stack.push_back(node.high);
  }
  os << "}\n";
  return os.str();
}

void Manager::MaybeGc() {
  if (in_operation_) return;
  // Concurrent mode: never collect from inside an operation. A sibling
  // worker may hold a just-computed node index it has not Ref'd yet (the
  // gap between e.g. And() returning and the Bdd handle construction),
  // which a collection would recycle under it. The engine instead calls
  // CollectAtBarrier() at superstep barriers, where workers are joined and
  // every live node is reachable from a Ref'd root.
  if (concurrent_) return;
  if (live_nodes_.load(std::memory_order_relaxed) < gc_threshold_) return;
  size_t freed = GarbageCollect();
  // If the collection recovered little, grow the threshold so we do not
  // thrash on workloads whose live set is genuinely large.
  if (freed * 4 < live_nodes_.load(std::memory_order_relaxed) + freed) {
    gc_threshold_ *= 2;
  }
}

void Manager::CollectAtBarrier() {
  // Bucket growth deferred by concurrent MakeNode: do it here, where no
  // workers are running.
  while (!buckets_.empty() &&
         table_entries_.load(std::memory_order_relaxed) >= buckets_.size()) {
    GrowBuckets();
  }
  if (live_nodes_.load(std::memory_order_relaxed) < gc_threshold_) return;
  size_t freed = GarbageCollect();
  if (freed * 4 < live_nodes_.load(std::memory_order_relaxed) + freed) {
    gc_threshold_ *= 2;
  }
}

size_t Manager::GarbageCollect() {
  ++gc_runs_;
  size_t allocated = next_index_.load(std::memory_order_relaxed);
  std::vector<bool> marked(allocated, false);
  std::vector<NodeIndex> stack;
  for (NodeIndex i = 2; i < allocated; ++i) {
    if (ref_at(i).load(std::memory_order_relaxed) > 0 && !marked[i]) {
      stack.push_back(i);
      marked[i] = true;
    }
  }
  while (!stack.empty()) {
    NodeIndex n = stack.back();
    stack.pop_back();
    const Node& node = node_at(n);
    for (NodeIndex child : {node.low, node.high}) {
      if (child > kTrue && !marked[child]) {
        marked[child] = true;
        stack.push_back(child);
      }
    }
  }
  // Sweep: rebuild the unique table and the per-stripe free lists from the
  // mark bits in one linear pass (every unmarked slot is free, whether it
  // died now or was already on a free list). Free slots are distributed
  // round-robin over stripes so recycling stays lock-local.
  size_t entries_before = table_entries_.load(std::memory_order_relaxed);
  std::fill(buckets_.begin(), buckets_.end(), kNilNode);
  for (Stripe& s : stripes_) s.free_list.clear();
  size_t entries = 0;
  for (NodeIndex i = 2; i < allocated; ++i) {
    if (!marked[i]) {
      stripes_[i & kStripeMask].free_list.push_back(i);
      continue;
    }
    Node& node = node_at(i);
    size_t bucket = NodeHash(node.var, node.low, node.high) &
                    (buckets_.size() - 1);
    node.next = buckets_[bucket];
    buckets_[bucket] = i;
    ++entries;
  }
  table_entries_.store(entries, std::memory_order_relaxed);
  size_t freed = entries_before - entries;
  live_nodes_.fetch_sub(freed, std::memory_order_relaxed);
  ClearCaches();
  return freed;
}

void Manager::ClearCaches() {
  // Node indices are recycled after a collection; cached results and
  // memoized counts keyed by index would go stale. Every worker's private
  // caches are cleared together (callers guarantee quiescence).
  for (const std::unique_ptr<WorkerSlot>& w : workers_) {
    std::fill(w->op_cache.begin(), w->op_cache.end(), CacheEntry{});
    w->count_memo.clear();
  }
}

uint64_t Manager::cache_hits() const {
  uint64_t total = 0;
  for (const std::unique_ptr<WorkerSlot>& w : workers_) {
    total += w->cache_hits;
  }
  return total;
}

uint64_t Manager::cache_lookups() const {
  uint64_t total = 0;
  for (const std::unique_ptr<WorkerSlot>& w : workers_) {
    total += w->cache_lookups;
  }
  return total;
}

uint64_t Manager::stripe_contention() const {
  uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.contended.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace bdd
}  // namespace recnet
