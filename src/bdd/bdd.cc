#include "bdd/bdd.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/value.h"

namespace recnet {
namespace bdd {

uint64_t Manager::NodeHash(Var var, NodeIndex low, NodeIndex high) {
  return Mix64((static_cast<uint64_t>(low) << 32 | high) ^
               static_cast<uint64_t>(var) * 0xda942042e4dd58b5ULL);
}

Manager::Manager(const Options& options)
    : options_(options), gc_threshold_(options.gc_threshold) {
  RECNET_CHECK((options.cache_size & (options.cache_size - 1)) == 0);
  // Terminals. They are permanently referenced and never collected.
  nodes_.push_back(Node{kTerminalVar, kFalse, kFalse, kNilNode});  // FALSE
  nodes_.push_back(Node{kTerminalVar, kTrue, kTrue, kNilNode});    // TRUE
  refcount_.assign(2, 1);
  live_nodes_ = 2;
  // The unique-table buckets and operation caches (several MB) materialize
  // lazily on the first node creation: set-semantics and relative-mode
  // engines construct a Manager per run and never build a BDD node.
}

void Manager::EnsureTables() {
  // Pre-size the bucket array to the GC threshold: the node store grows to
  // at least that many entries before any collection, so starting smaller
  // only buys repeated rehashes of the whole table.
  size_t buckets = 1 << 12;
  while (buckets < options_.gc_threshold) buckets <<= 1;
  buckets_.assign(buckets, kNilNode);
  op_cache_.assign(options_.cache_size, CacheEntry{});
}

// Marks n visited in the current stamped traversal; returns true on first
// visit. Replaces per-traversal unordered_sets: one byte-compare against a
// flat array, no allocation after warm-up.
bool Manager::VisitFirst(NodeIndex n) const {
  if (visit_stamp_[n] == current_stamp_) return false;
  visit_stamp_[n] = current_stamp_;
  return true;
}

void Manager::BeginTraversal() const {
  if (visit_stamp_.size() < nodes_.size()) {
    visit_stamp_.resize(nodes_.size(), 0);
  }
  if (++current_stamp_ == 0) {  // Stamp wrap: reset all marks once per 2^32.
    std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0);
    current_stamp_ = 1;
  }
  traverse_stack_.clear();
}

bool Manager::CacheLookup(uint64_t key, NodeIndex* out) {
  ++cache_lookups_;
  const CacheEntry& e = op_cache_[Mix64(key) & (op_cache_.size() - 1)];
  if (e.key == key) {
    ++cache_hits_;
    *out = e.result;
    return true;
  }
  return false;
}

void Manager::CacheStore(uint64_t key, NodeIndex result) {
  CacheEntry& e = op_cache_[Mix64(key) & (op_cache_.size() - 1)];
  e.key = key;
  e.result = result;
}

NodeIndex Manager::MakeNode(Var var, NodeIndex low, NodeIndex high) {
  if (low == high) return low;  // Reduction rule: redundant test.
  if (buckets_.empty()) EnsureTables();
  size_t bucket = NodeHash(var, low, high) & (buckets_.size() - 1);
  for (NodeIndex n = buckets_[bucket]; n != kNilNode; n = nodes_[n].next) {
    const Node& node = nodes_[n];
    if (node.var == var && node.low == low && node.high == high) return n;
  }
  if (table_entries_ >= buckets_.size()) {
    GrowBuckets();
    bucket = NodeHash(var, low, high) & (buckets_.size() - 1);
  }
  NodeIndex idx;
  if (!free_list_.empty()) {
    idx = free_list_.back();
    free_list_.pop_back();
    nodes_[idx] = Node{var, low, high, buckets_[bucket]};
    refcount_[idx] = 0;
  } else {
    idx = static_cast<NodeIndex>(nodes_.size());
    nodes_.push_back(Node{var, low, high, buckets_[bucket]});
    refcount_.push_back(0);
  }
  buckets_[bucket] = idx;
  ++table_entries_;
  ++live_nodes_;
  return idx;
}

void Manager::GrowBuckets() {
  std::vector<NodeIndex> old = std::move(buckets_);
  buckets_.assign(old.size() * 2, kNilNode);
  for (NodeIndex head : old) {
    for (NodeIndex n = head; n != kNilNode;) {
      NodeIndex next = nodes_[n].next;
      size_t bucket =
          NodeHash(nodes_[n].var, nodes_[n].low, nodes_[n].high) &
          (buckets_.size() - 1);
      nodes_[n].next = buckets_[bucket];
      buckets_[bucket] = n;
      n = next;
    }
  }
}

NodeIndex Manager::MakeVar(Var v) {
  MaybeLock lock(this);
  RECNET_CHECK_NE(v, kTerminalVar);
  MaybeGc();
  return MakeNode(v, kFalse, kTrue);
}

NodeIndex Manager::MakeNodeForRestore(Var var, NodeIndex low, NodeIndex high) {
  MaybeLock lock(this);
  RECNET_CHECK_NE(var, kTerminalVar);
  RECNET_CHECK_LT(low, nodes_.size());
  RECNET_CHECK_LT(high, nodes_.size());
  return MakeNode(var, low, high);
}

NodeIndex Manager::And(NodeIndex a, NodeIndex b) {
  MaybeLock lock(this);
  MaybeGc();
  in_operation_ = true;
  NodeIndex r = ApplyAndOr(Op::kAnd, a, b);
  in_operation_ = false;
  return r;
}

NodeIndex Manager::Or(NodeIndex a, NodeIndex b) {
  MaybeLock lock(this);
  MaybeGc();
  in_operation_ = true;
  NodeIndex r = ApplyAndOr(Op::kOr, a, b);
  in_operation_ = false;
  return r;
}

NodeIndex Manager::Not(NodeIndex a) {
  MaybeLock lock(this);
  MaybeGc();
  in_operation_ = true;
  NodeIndex r = NotRec(a);
  in_operation_ = false;
  return r;
}

NodeIndex Manager::Restrict(NodeIndex f, Var v, bool value) {
  MaybeLock lock(this);
  MaybeGc();
  in_operation_ = true;
  NodeIndex r = RestrictRec(f, v, value);
  in_operation_ = false;
  return r;
}

NodeIndex Manager::Diff(NodeIndex a, NodeIndex b) {
  MaybeLock lock(this);
  MaybeGc();
  in_operation_ = true;
  NodeIndex r = ApplyDiff(a, b);
  in_operation_ = false;
  return r;
}

NodeIndex Manager::RestrictAllFalse(NodeIndex f,
                                    const std::vector<Var>& vars) {
  MaybeLock lock(this);
  // Pin each intermediate result across the next Restrict (which may GC).
  NodeIndex r = f;
  Ref(r);
  for (Var v : vars) {
    NodeIndex next = Restrict(r, v, false);
    Ref(next);
    Deref(r);
    r = next;
  }
  Deref(r);
  return r;
}

NodeIndex Manager::ApplyAndOr(Op op, NodeIndex a, NodeIndex b) {
  // Terminal cases.
  if (op == Op::kAnd) {
    if (a == kFalse || b == kFalse) return kFalse;
    if (a == kTrue) return b;
    if (b == kTrue) return a;
    if (a == b) return a;
  } else {
    if (a == kTrue || b == kTrue) return kTrue;
    if (a == kFalse) return b;
    if (b == kFalse) return a;
    if (a == b) return a;
  }
  // AND/OR are commutative: normalize operand order for cache locality.
  if (a > b) std::swap(a, b);
  uint64_t key = CacheKey(op, a, b);
  NodeIndex cached;
  if (CacheLookup(key, &cached)) return cached;

  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  Var top = std::min(na.var, nb.var);
  NodeIndex a_lo = (na.var == top) ? na.low : a;
  NodeIndex a_hi = (na.var == top) ? na.high : a;
  NodeIndex b_lo = (nb.var == top) ? nb.low : b;
  NodeIndex b_hi = (nb.var == top) ? nb.high : b;

  NodeIndex lo = ApplyAndOr(op, a_lo, b_lo);
  NodeIndex hi = ApplyAndOr(op, a_hi, b_hi);
  NodeIndex r = MakeNode(top, lo, hi);
  CacheStore(key, r);
  return r;
}

NodeIndex Manager::ApplyDiff(NodeIndex a, NodeIndex b) {
  // Terminal cases of a ∧ ¬b.
  if (a == kFalse || b == kTrue || a == b) return kFalse;
  if (b == kFalse) return a;
  if (a == kTrue) return NotRec(b);
  uint64_t key = CacheKey(Op::kDiff, a, b);
  NodeIndex cached;
  if (CacheLookup(key, &cached)) return cached;
  // Copy: recursive calls may grow (reallocate) the node store.
  const Node na = nodes_[a];
  const Node nb = nodes_[b];
  Var top = std::min(na.var, nb.var);
  NodeIndex a_lo = (na.var == top) ? na.low : a;
  NodeIndex a_hi = (na.var == top) ? na.high : a;
  NodeIndex b_lo = (nb.var == top) ? nb.low : b;
  NodeIndex b_hi = (nb.var == top) ? nb.high : b;
  NodeIndex lo = ApplyDiff(a_lo, b_lo);
  NodeIndex hi = ApplyDiff(a_hi, b_hi);
  NodeIndex r = MakeNode(top, lo, hi);
  CacheStore(key, r);
  return r;
}

NodeIndex Manager::NotRec(NodeIndex a) {
  if (a == kFalse) return kTrue;
  if (a == kTrue) return kFalse;
  uint64_t key = CacheKey(Op::kNot, a, 0);
  NodeIndex cached;
  if (CacheLookup(key, &cached)) return cached;
  // Copy: recursive calls may grow (reallocate) the node store.
  Node n = nodes_[a];
  NodeIndex lo = NotRec(n.low);
  NodeIndex hi = NotRec(n.high);
  NodeIndex r = MakeNode(n.var, lo, hi);
  CacheStore(key, r);
  return r;
}

NodeIndex Manager::RestrictRec(NodeIndex f, Var v, bool value) {
  if (IsTerminal(f)) return f;
  // Copy: recursive calls may grow (reallocate) the node store.
  Node n = nodes_[f];
  if (n.var > v) return f;  // Ordered: v cannot appear below.
  if (n.var == v) return value ? n.high : n.low;
  uint64_t key =
      CacheKey(Op::kRestrict, f,
               (static_cast<uint64_t>(v) << 1) | (value ? 1u : 0u));
  NodeIndex cached;
  if (CacheLookup(key, &cached)) return cached;
  NodeIndex lo = RestrictRec(n.low, v, value);
  NodeIndex hi = RestrictRec(n.high, v, value);
  NodeIndex r = MakeNode(n.var, lo, hi);
  CacheStore(key, r);
  return r;
}

size_t Manager::CountNodes(NodeIndex f) const {
  MaybeLock lock(this);
  if (IsTerminal(f)) return 0;
  // Wire-size accounting calls this once per shipped copy of an
  // annotation; memoize per root (entries die with the next GC, which is
  // when indices can be recycled).
  auto memo = count_memo_.find(f);
  if (memo != count_memo_.end()) return memo->second;
  BeginTraversal();
  traverse_stack_.push_back(f);
  size_t count = 0;
  while (!traverse_stack_.empty()) {
    NodeIndex n = traverse_stack_.back();
    traverse_stack_.pop_back();
    if (IsTerminal(n) || !VisitFirst(n)) continue;
    ++count;
    traverse_stack_.push_back(nodes_[n].low);
    traverse_stack_.push_back(nodes_[n].high);
  }
  count_memo_.emplace(f, count);
  return count;
}

void Manager::Support(NodeIndex f, std::vector<Var>* vars) const {
  MaybeLock lock(this);
  size_t start = vars->size();
  BeginTraversal();
  traverse_stack_.push_back(f);
  while (!traverse_stack_.empty()) {
    NodeIndex n = traverse_stack_.back();
    traverse_stack_.pop_back();
    if (IsTerminal(n) || !VisitFirst(n)) continue;
    vars->push_back(nodes_[n].var);
    traverse_stack_.push_back(nodes_[n].low);
    traverse_stack_.push_back(nodes_[n].high);
  }
  std::sort(vars->begin() + start, vars->end());
  vars->erase(std::unique(vars->begin() + start, vars->end()), vars->end());
}

bool Manager::DependsOn(NodeIndex f, Var v) const {
  MaybeLock lock(this);
  BeginTraversal();
  traverse_stack_.push_back(f);
  while (!traverse_stack_.empty()) {
    NodeIndex n = traverse_stack_.back();
    traverse_stack_.pop_back();
    if (IsTerminal(n) || !VisitFirst(n)) continue;
    if (nodes_[n].var == v) return true;
    if (nodes_[n].var > v) continue;  // Ordered: v cannot appear below.
    traverse_stack_.push_back(nodes_[n].low);
    traverse_stack_.push_back(nodes_[n].high);
  }
  return false;
}

bool Manager::AnyWitness(NodeIndex f,
                         std::vector<std::pair<Var, bool>>* assignment) const {
  MaybeLock lock(this);
  assignment->clear();
  if (f == kFalse) return false;
  NodeIndex n = f;
  while (!IsTerminal(n)) {
    const Node& node = nodes_[n];
    // Prefer the high branch (variable true) when it can reach TRUE; for
    // monotone provenance functions this yields a minimal witness of
    // present base tuples.
    if (node.high != kFalse) {
      assignment->emplace_back(node.var, true);
      n = node.high;
    } else {
      assignment->emplace_back(node.var, false);
      n = node.low;
    }
  }
  RECNET_CHECK_EQ(n, kTrue);
  return true;
}

bool Manager::Evaluate(NodeIndex f,
                       const std::unordered_map<Var, bool>& truth) const {
  MaybeLock lock(this);
  NodeIndex n = f;
  while (!IsTerminal(n)) {
    const Node& node = nodes_[n];
    auto it = truth.find(node.var);
    bool value = (it != truth.end()) && it->second;
    n = value ? node.high : node.low;
  }
  return n == kTrue;
}

std::string Manager::ToDot(NodeIndex f) const {
  MaybeLock lock(this);
  std::ostringstream os;
  os << "digraph bdd {\n";
  os << "  f [shape=none,label=\"f\"];\n  f -> n" << f << ";\n";
  os << "  n0 [shape=box,label=\"0\"];\n  n1 [shape=box,label=\"1\"];\n";
  std::unordered_set<NodeIndex> seen;
  std::vector<NodeIndex> stack{f};
  while (!stack.empty()) {
    NodeIndex n = stack.back();
    stack.pop_back();
    if (IsTerminal(n) || !seen.insert(n).second) continue;
    const Node& node = nodes_[n];
    os << "  n" << n << " [label=\"x" << node.var << "\"];\n";
    os << "  n" << n << " -> n" << node.low << " [style=dashed];\n";
    os << "  n" << n << " -> n" << node.high << ";\n";
    stack.push_back(node.low);
    stack.push_back(node.high);
  }
  os << "}\n";
  return os.str();
}

void Manager::Ref(NodeIndex n) {
  MaybeLock lock(this);
  RECNET_DCHECK(n < refcount_.size());
  ++refcount_[n];
}

void Manager::Deref(NodeIndex n) {
  MaybeLock lock(this);
  RECNET_DCHECK(n < refcount_.size());
  RECNET_DCHECK(refcount_[n] > 0);
  --refcount_[n];
}

void Manager::MaybeGc() {
  if (in_operation_) return;
  // Concurrent mode: never collect from inside an operation. A sibling
  // worker may hold a just-computed node index it has not Ref'd yet (the
  // gap between e.g. And() returning and the Bdd handle construction),
  // which a collection would recycle under it. The engine instead calls
  // CollectAtBarrier() at superstep barriers, where workers are joined and
  // every live node is reachable from a Ref'd root.
  if (concurrent_) return;
  if (live_nodes_ < gc_threshold_) return;
  size_t freed = GarbageCollect();
  // If the collection recovered little, grow the threshold so we do not
  // thrash on workloads whose live set is genuinely large.
  if (freed * 4 < live_nodes_ + freed) gc_threshold_ *= 2;
}

void Manager::CollectAtBarrier() {
  if (live_nodes_ < gc_threshold_) return;
  size_t freed = GarbageCollect();
  if (freed * 4 < live_nodes_ + freed) gc_threshold_ *= 2;
}

size_t Manager::GarbageCollect() {
  MaybeLock lock(this);
  ++gc_runs_;
  std::vector<bool> marked(nodes_.size(), false);
  marked[kFalse] = marked[kTrue] = true;
  std::vector<NodeIndex> stack;
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (refcount_[i] > 0 && !marked[i]) {
      stack.push_back(i);
      marked[i] = true;
    }
  }
  while (!stack.empty()) {
    NodeIndex n = stack.back();
    stack.pop_back();
    for (NodeIndex child : {nodes_[n].low, nodes_[n].high}) {
      if (!marked[child]) {
        marked[child] = true;
        stack.push_back(child);
      }
    }
  }
  // Sweep: rebuild the unique table and free list from the mark bits in one
  // linear pass (every unmarked slot is free, whether it died now or was
  // already on the free list).
  size_t entries_before = table_entries_;
  std::fill(buckets_.begin(), buckets_.end(), kNilNode);
  free_list_.clear();
  table_entries_ = 0;
  for (NodeIndex i = 2; i < nodes_.size(); ++i) {
    if (!marked[i]) {
      free_list_.push_back(i);
      continue;
    }
    size_t bucket = NodeHash(nodes_[i].var, nodes_[i].low, nodes_[i].high) &
                    (buckets_.size() - 1);
    nodes_[i].next = buckets_[bucket];
    buckets_[bucket] = i;
    ++table_entries_;
  }
  size_t freed = entries_before - table_entries_;
  live_nodes_ -= freed;
  ClearCaches();
  return freed;
}

void Manager::ClearCaches() {
  std::fill(op_cache_.begin(), op_cache_.end(), CacheEntry{});
  // Node indices are recycled after a collection; memoized counts keyed by
  // root index would go stale.
  count_memo_.clear();
}

}  // namespace bdd
}  // namespace recnet
