#include "bdd/bdd.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/value.h"

namespace recnet {
namespace bdd {

__thread int Manager::tls_worker_ = 0;

uint64_t Manager::NodeHash(Var var, BddRef low, BddRef high) {
  return Mix64((static_cast<uint64_t>(low) << 32 | high) ^
               static_cast<uint64_t>(var) * 0xda942042e4dd58b5ULL);
}

Manager::Manager(const Options& options)
    : options_(options), gc_threshold_(options.gc_threshold) {
  RECNET_CHECK((options.cache_size & (options.cache_size - 1)) == 0);
  // The terminal is virtual: node 0 serves both constants (TRUE as ref 0,
  // FALSE as its complement, ref 1). It is permanently live, never stored,
  // never refcounted (Ref/Deref early-return), and never collected.
  // live_nodes_ counts it for continuity with the accounting the engine
  // reports.
  live_nodes_.store(1, std::memory_order_relaxed);
  workers_.push_back(std::make_unique<WorkerSlot>());
  worker0_ = workers_.front().get();
  // The unique-table buckets, segment spine, and op caches (several MB)
  // materialize lazily on the first node creation: set-semantics and
  // relative-mode engines construct a Manager per run and never build a
  // BDD node.
}

Manager::~Manager() {
  if (spine_ == nullptr) return;
  for (size_t i = 0; i < kMaxSegments; ++i) {
    delete spine_[i].load(std::memory_order_relaxed);
  }
}

void Manager::EnsureWorkerSlots(size_t n) {
  while (workers_.size() < n) {
    workers_.push_back(std::make_unique<WorkerSlot>());
  }
}

void Manager::set_concurrent(bool enabled) {
  // Toggled only between superstep barriers (no concurrent callers), but
  // the first MakeNode *after* the toggle may come from a worker thread:
  // materialize the lazily-built tables now so no worker races the
  // one-time setup.
  if (enabled && buckets_.empty()) EnsureTables();
  concurrent_ = enabled;
}

void Manager::EnsureTables() {
  // Pre-size the bucket array to the GC threshold: the node store grows to
  // at least that many entries before any collection, so starting smaller
  // only buys repeated rehashes of the whole table.
  size_t buckets = 1 << 12;
  while (buckets < options_.gc_threshold) buckets <<= 1;
  buckets_.assign(buckets, kNilNode);
  spine_ = std::make_unique<std::atomic<Segment*>[]>(kMaxSegments);
  for (size_t i = 0; i < kMaxSegments; ++i) {
    spine_[i].store(nullptr, std::memory_order_relaxed);
  }
}

void Manager::EnsureSegment(size_t seg) {
  RECNET_CHECK_LT(seg, kMaxSegments);
  if (spine_[seg].load(std::memory_order_acquire) != nullptr) return;
  // Double-checked under a dedicated spinlock: segment allocation is rare
  // (once per 2^16 nodes) and may race between stripes.
  while (seg_alloc_lock_.exchange(true, std::memory_order_acquire)) {
  }
  if (spine_[seg].load(std::memory_order_relaxed) == nullptr) {
    Segment* s = new Segment();
    s->nodes = std::make_unique<Node[]>(kSegSize);
    s->refs = std::make_unique<std::atomic<uint32_t>[]>(kSegSize);
    for (size_t i = 0; i < kSegSize; ++i) {
      s->refs[i].store(0, std::memory_order_relaxed);
    }
    spine_[seg].store(s, std::memory_order_release);
    if (seg == 0) {
      seg0_nodes_.store(s->nodes.get(), std::memory_order_release);
      seg0_refs_.store(s->refs.get(), std::memory_order_release);
    }
    segments_allocated_.fetch_add(1, std::memory_order_relaxed);
  }
  seg_alloc_lock_.store(false, std::memory_order_release);
}

// Marks n visited in the worker's current stamped traversal; returns true
// on first visit. Replaces per-traversal unordered_sets: one word-compare
// against a flat array, no allocation after warm-up.
bool Manager::VisitFirst(WorkerSlot& w, NodeIndex n) const {
  if (w.visit_stamp[n] == w.current_stamp) return false;
  w.visit_stamp[n] = w.current_stamp;
  return true;
}

void Manager::BeginTraversal(WorkerSlot& w) const {
  size_t allocated = next_index_.load(std::memory_order_relaxed);
  if (w.visit_stamp.size() < allocated) {
    w.visit_stamp.resize(allocated, 0);
  }
  if (++w.current_stamp == 0) {  // Stamp wrap: reset marks once per 2^32.
    std::fill(w.visit_stamp.begin(), w.visit_stamp.end(), 0);
    w.current_stamp = 1;
  }
  w.traverse_stack.clear();
}

bool Manager::CacheLookup(WorkerSlot& w, uint64_t key, BddRef* out) {
  ++w.cache_lookups;
  if (w.op_cache.empty()) return false;
  const CacheEntry& e = w.op_cache[Mix64(key) & (w.op_cache.size() - 1)];
  if (e.key == key) {
    ++w.cache_hits;
    *out = e.result;
    return true;
  }
  return false;
}

void Manager::CacheStore(WorkerSlot& w, uint64_t key, BddRef result) {
  if (w.op_cache.empty()) w.op_cache.assign(options_.cache_size, CacheEntry{});
  CacheEntry& e = w.op_cache[Mix64(key) & (w.op_cache.size() - 1)];
  e.key = key;
  e.result = result;
}

BddRef Manager::MakeNode(Var var, BddRef low, BddRef high) {
  if (low == high) return low;  // Reduction rule: redundant test.
  // Canonical polarity (regular then-edge): a complemented high cofactor is
  // factored out of the node — (var ? ¬h : ¬l) ≡ ¬(var ? h : l) — so each
  // function/negation pair shares one stored node and ref equality stays a
  // canonical-function test.
  const uint32_t flip = high & 1u;
  low ^= flip;
  high ^= flip;
  ++worker().unique_probes;
  if (buckets_.empty()) EnsureTables();
  uint64_t hash = NodeHash(var, low, high);
  Stripe& stripe = stripes_[hash & kStripeMask];
  // Buckets are a power of two ≥ the stripe count, so bucket ≡ stripe
  // (mod kStripeCount): each bucket is only ever touched under its own
  // stripe's lock, at any bucket-array size.
  const bool locked = concurrent_;
  if (locked) LockStripe(stripe);
  size_t bucket = hash & (buckets_.size() - 1);
  for (NodeIndex n = buckets_[bucket]; n != kNilNode; n = node_at(n).next) {
    const Node& node = node_at(n);
    if (node.var == var && node.low == low && node.high == high) {
      if (locked) UnlockStripe(stripe);
      return (n << 1) | flip;
    }
  }
  if (!locked && table_entries_.load(std::memory_order_relaxed) >=
                     buckets_.size()) {
    // Concurrent mode defers growth to CollectAtBarrier (chains just run
    // longer within the generation); sequential mode grows in place.
    GrowBuckets();
    bucket = hash & (buckets_.size() - 1);
  }
  NodeIndex idx;
  if (!stripe.free_list.empty()) {
    idx = stripe.free_list.back();
    stripe.free_list.pop_back();
  } else {
    idx = next_index_.fetch_add(1, std::memory_order_relaxed);
    RECNET_CHECK_LT(idx, kMaxNodes);
    EnsureSegment(idx >> kSegBits);
  }
  node_at(idx) = Node{var, low, high, buckets_[bucket]};
  ref_at(idx).store(0, std::memory_order_relaxed);
  buckets_[bucket] = idx;
  table_entries_.fetch_add(1, std::memory_order_relaxed);
  live_nodes_.fetch_add(1, std::memory_order_relaxed);
  if (locked) UnlockStripe(stripe);
  return (idx << 1) | flip;
}

void Manager::GrowBuckets() {
  std::vector<NodeIndex> old = std::move(buckets_);
  buckets_.assign(old.size() * 2, kNilNode);
  for (NodeIndex head : old) {
    for (NodeIndex n = head; n != kNilNode;) {
      Node& node = node_at(n);
      NodeIndex next = node.next;
      size_t bucket =
          NodeHash(node.var, node.low, node.high) & (buckets_.size() - 1);
      node.next = buckets_[bucket];
      buckets_[bucket] = n;
      n = next;
    }
  }
}

BddRef Manager::MakeVar(Var v) {
  RECNET_CHECK_NE(v, kTerminalVar);
  MaybeGc();
  return MakeNode(v, kFalse, kTrue);
}

BddRef Manager::MakeNodeForRestore(Var var, BddRef low, BddRef high) {
  RECNET_CHECK_NE(var, kTerminalVar);
  RECNET_CHECK_LT(low >> 1, next_index_.load(std::memory_order_relaxed));
  RECNET_CHECK_LT(high >> 1, next_index_.load(std::memory_order_relaxed));
  return MakeNode(var, low, high);
}

BddRef Manager::And(BddRef a, BddRef b) {
  MaybeGc();
  WorkerSlot& w = worker();
  if (!concurrent_) in_operation_ = true;
  BddRef r = ApplyAnd(a, b, w);
  if (!concurrent_) in_operation_ = false;
  return r;
}

BddRef Manager::Or(BddRef a, BddRef b) {
  // De Morgan over complement edges: a ∨ b = ¬(¬a ∧ ¬b). The negations are
  // bit flips, so Or shares the AND recursion *and its cache entries* —
  // a later ¬(a ∨ b) resolves to the identical cached AND result.
  MaybeGc();
  WorkerSlot& w = worker();
  if (!concurrent_) in_operation_ = true;
  BddRef r = Not(ApplyAnd(Not(a), Not(b), w));
  if (!concurrent_) in_operation_ = false;
  return r;
}

BddRef Manager::Diff(BddRef a, BddRef b) {
  // a ∧ ¬b with ¬b a tag flip: one AND pass, nothing materialized.
  MaybeGc();
  WorkerSlot& w = worker();
  if (!concurrent_) in_operation_ = true;
  BddRef r = ApplyAnd(a, Not(b), w);
  if (!concurrent_) in_operation_ = false;
  return r;
}

BddRef Manager::Restrict(BddRef f, Var v, bool value) {
  MaybeGc();
  WorkerSlot& w = worker();
  if (!concurrent_) in_operation_ = true;
  BddRef r = RestrictRec(f, v, value, w);
  if (!concurrent_) in_operation_ = false;
  return r;
}

BddRef Manager::RestrictAllFalse(BddRef f, const std::vector<Var>& vars) {
  // Pin each intermediate result across the next Restrict (which may GC).
  BddRef r = f;
  Ref(r);
  for (Var v : vars) {
    BddRef next = Restrict(r, v, false);
    Ref(next);
    Deref(r);
    r = next;
  }
  Deref(r);
  return r;
}

BddRef Manager::ApplyAnd(BddRef a, BddRef b, WorkerSlot& w) {
  // Terminal cases. a ∧ ¬a is the one complement-edge case a plain-node
  // manager never sees syntactically.
  if (a == kFalse || b == kFalse || a == Not(b)) return kFalse;
  if (a == kTrue) return b;
  if (b == kTrue) return a;
  if (a == b) return a;
  // AND is commutative: normalize operand order for cache locality.
  if (a > b) std::swap(a, b);
  uint64_t key = CacheKey(Op::kAnd, a, b);
  BddRef cached;
  if (CacheLookup(w, key, &cached)) return cached;

  const Node& na = node_at(a >> 1);
  const Node& nb = node_at(b >> 1);
  // The complement bit distributes over cofactors: (¬f)|_{x=c} = ¬(f|_{x=c}).
  const uint32_t ca = a & 1u;
  const uint32_t cb = b & 1u;
  Var top = std::min(na.var, nb.var);
  BddRef a_lo = (na.var == top) ? (na.low ^ ca) : a;
  BddRef a_hi = (na.var == top) ? (na.high ^ ca) : a;
  BddRef b_lo = (nb.var == top) ? (nb.low ^ cb) : b;
  BddRef b_hi = (nb.var == top) ? (nb.high ^ cb) : b;

  BddRef lo = ApplyAnd(a_lo, b_lo, w);
  BddRef hi = ApplyAnd(a_hi, b_hi, w);
  BddRef r = MakeNode(top, lo, hi);
  CacheStore(w, key, r);
  return r;
}

BddRef Manager::RestrictRec(BddRef f, Var v, bool value, WorkerSlot& w) {
  // Factor the polarity out up front: restrict commutes with complement,
  // so the cache is keyed on the regular ref and one entry serves both
  // polarities of f.
  const uint32_t c = f & 1u;
  const BddRef g = f ^ c;
  if (IsTerminal(g)) return f;
  const Node& n = node_at(g >> 1);
  if (n.var > v) return f;  // Ordered: v cannot appear below.
  if (n.var == v) return (value ? n.high : n.low) ^ c;
  uint64_t key =
      CacheKey(Op::kRestrict, g,
               (static_cast<uint64_t>(v) << 1) | (value ? 1u : 0u));
  BddRef cached;
  if (CacheLookup(w, key, &cached)) return cached ^ c;
  BddRef lo = RestrictRec(n.low, v, value, w);
  BddRef hi = RestrictRec(n.high, v, value, w);
  BddRef r = MakeNode(n.var, lo, hi);
  CacheStore(w, key, r);
  return r ^ c;
}

size_t Manager::CountNodes(BddRef f) const {
  NodeIndex root = f >> 1;
  if (root == kTerminalNode) return 0;
  WorkerSlot& w = worker();
  // Wire-size accounting calls this once per shipped copy of an
  // annotation; memoize per root node — counts are polarity-independent,
  // so f and ¬f share the entry (entries die with the next GC, which is
  // when indices can be recycled).
  auto memo = w.count_memo.find(root);
  if (memo != w.count_memo.end()) return memo->second;
  BeginTraversal(w);
  w.traverse_stack.push_back(root);
  size_t count = 0;
  while (!w.traverse_stack.empty()) {
    NodeIndex n = w.traverse_stack.back();
    w.traverse_stack.pop_back();
    if (n == kTerminalNode || !VisitFirst(w, n)) continue;
    ++count;
    const Node& node = node_at(n);
    w.traverse_stack.push_back(node.low >> 1);
    w.traverse_stack.push_back(node.high >> 1);
  }
  w.count_memo.emplace(root, count);
  return count;
}

void Manager::Support(BddRef f, std::vector<Var>* vars) const {
  WorkerSlot& w = worker();
  size_t start = vars->size();
  BeginTraversal(w);
  w.traverse_stack.push_back(f >> 1);
  while (!w.traverse_stack.empty()) {
    NodeIndex n = w.traverse_stack.back();
    w.traverse_stack.pop_back();
    if (n == kTerminalNode || !VisitFirst(w, n)) continue;
    const Node& node = node_at(n);
    vars->push_back(node.var);
    w.traverse_stack.push_back(node.low >> 1);
    w.traverse_stack.push_back(node.high >> 1);
  }
  std::sort(vars->begin() + start, vars->end());
  vars->erase(std::unique(vars->begin() + start, vars->end()), vars->end());
}

bool Manager::DependsOn(BddRef f, Var v) const {
  WorkerSlot& w = worker();
  BeginTraversal(w);
  w.traverse_stack.push_back(f >> 1);
  while (!w.traverse_stack.empty()) {
    NodeIndex n = w.traverse_stack.back();
    w.traverse_stack.pop_back();
    if (n == kTerminalNode || !VisitFirst(w, n)) continue;
    const Node& node = node_at(n);
    if (node.var == v) return true;
    if (node.var > v) continue;  // Ordered: v cannot appear below.
    w.traverse_stack.push_back(node.low >> 1);
    w.traverse_stack.push_back(node.high >> 1);
  }
  return false;
}

bool Manager::AnyWitness(BddRef f,
                         std::vector<std::pair<Var, bool>>* assignment) const {
  assignment->clear();
  if (f == kFalse) return false;
  // Walk with the complement parity folded into the current ref. With
  // complement edges every internal node is non-constant, so any internal
  // child can still reach TRUE and the greedy descent cannot dead-end.
  BddRef r = f;
  while (!IsTerminal(r)) {
    const Node& node = node_at(r >> 1);
    const uint32_t c = r & 1u;
    BddRef hi = node.high ^ c;
    // Prefer the high branch (variable true) when it can reach TRUE; for
    // monotone provenance functions this yields a minimal witness of
    // present base tuples.
    if (hi != kFalse) {
      assignment->emplace_back(node.var, true);
      r = hi;
    } else {
      assignment->emplace_back(node.var, false);
      r = node.low ^ c;
    }
  }
  RECNET_CHECK_EQ(r, kTrue);
  return true;
}

bool Manager::Evaluate(BddRef f,
                       const std::unordered_map<Var, bool>& truth) const {
  BddRef r = f;
  while (!IsTerminal(r)) {
    const Node& node = node_at(r >> 1);
    auto it = truth.find(node.var);
    bool value = (it != truth.end()) && it->second;
    r = (value ? node.high : node.low) ^ (r & 1u);
  }
  return r == kTrue;
}

std::string Manager::ToDot(BddRef f) const {
  std::ostringstream os;
  os << "digraph bdd {\n";
  os << "  f [shape=none,label=\"f\"];\n  f -> n" << (f >> 1)
     << ((f & 1u) != 0 ? " [arrowhead=odot]" : "") << ";\n";
  os << "  n0 [shape=box,label=\"1\"];\n";
  std::unordered_set<NodeIndex> seen;
  std::vector<NodeIndex> stack{f >> 1};
  while (!stack.empty()) {
    NodeIndex n = stack.back();
    stack.pop_back();
    if (n == kTerminalNode || !seen.insert(n).second) continue;
    const Node& node = node_at(n);
    os << "  n" << n << " [label=\"x" << node.var << "\"];\n";
    // Complemented else-edges get the classic dot arrowhead; then-edges are
    // regular by canonicity.
    os << "  n" << n << " -> n" << (node.low >> 1) << " [style=dashed"
       << ((node.low & 1u) != 0 ? ",arrowhead=odot" : "") << "];\n";
    os << "  n" << n << " -> n" << (node.high >> 1) << ";\n";
    stack.push_back(node.low >> 1);
    stack.push_back(node.high >> 1);
  }
  os << "}\n";
  return os.str();
}

void Manager::MaybeGc() {
  if (in_operation_) return;
  // Concurrent mode: never collect from inside an operation. A sibling
  // worker may hold a just-computed ref it has not Ref'd yet (the gap
  // between e.g. And() returning and the Bdd handle construction), which a
  // collection would recycle under it. The engine instead calls
  // CollectAtBarrier() at superstep barriers, where workers are joined and
  // every live node is reachable from a Ref'd root.
  if (concurrent_) return;
  if (live_nodes_.load(std::memory_order_relaxed) < gc_threshold_) return;
  size_t freed = GarbageCollect();
  // If the collection recovered little, grow the threshold so we do not
  // thrash on workloads whose live set is genuinely large.
  if (freed * 4 < live_nodes_.load(std::memory_order_relaxed) + freed) {
    gc_threshold_ *= 2;
  }
}

void Manager::CollectAtBarrier() {
  // Bucket growth deferred by concurrent MakeNode: do it here, where no
  // workers are running.
  while (!buckets_.empty() &&
         table_entries_.load(std::memory_order_relaxed) >= buckets_.size()) {
    GrowBuckets();
  }
  if (live_nodes_.load(std::memory_order_relaxed) < gc_threshold_) return;
  size_t freed = GarbageCollect();
  if (freed * 4 < live_nodes_.load(std::memory_order_relaxed) + freed) {
    gc_threshold_ *= 2;
  }
}

size_t Manager::GarbageCollect() {
  ++gc_runs_;
  size_t allocated = next_index_.load(std::memory_order_relaxed);
  std::vector<bool> marked(allocated, false);
  std::vector<NodeIndex> stack;
  for (NodeIndex i = 1; i < allocated; ++i) {
    if (ref_at(i).load(std::memory_order_relaxed) > 0 && !marked[i]) {
      stack.push_back(i);
      marked[i] = true;
    }
  }
  while (!stack.empty()) {
    NodeIndex n = stack.back();
    stack.pop_back();
    const Node& node = node_at(n);
    for (NodeIndex child : {node.low >> 1, node.high >> 1}) {
      if (child != kTerminalNode && !marked[child]) {
        marked[child] = true;
        stack.push_back(child);
      }
    }
  }
  // Sweep: rebuild the unique table and the per-stripe free lists from the
  // mark bits in one linear pass (every unmarked slot is free, whether it
  // died now or was already on a free list). Free slots are distributed
  // round-robin over stripes so recycling stays lock-local.
  size_t entries_before = table_entries_.load(std::memory_order_relaxed);
  std::fill(buckets_.begin(), buckets_.end(), kNilNode);
  for (Stripe& s : stripes_) s.free_list.clear();
  size_t entries = 0;
  for (NodeIndex i = 1; i < allocated; ++i) {
    if (!marked[i]) {
      stripes_[i & kStripeMask].free_list.push_back(i);
      continue;
    }
    Node& node = node_at(i);
    size_t bucket = NodeHash(node.var, node.low, node.high) &
                    (buckets_.size() - 1);
    node.next = buckets_[bucket];
    buckets_[bucket] = i;
    ++entries;
  }
  table_entries_.store(entries, std::memory_order_relaxed);
  size_t freed = entries_before - entries;
  live_nodes_.fetch_sub(freed, std::memory_order_relaxed);
  ClearCaches();
  return freed;
}

void Manager::ClearCaches() {
  // Node indices are recycled after a collection; cached results and
  // memoized counts keyed by index would go stale. Every worker's private
  // caches are cleared together (callers guarantee quiescence).
  for (const std::unique_ptr<WorkerSlot>& w : workers_) {
    std::fill(w->op_cache.begin(), w->op_cache.end(), CacheEntry{});
    w->count_memo.clear();
  }
}

uint64_t Manager::cache_hits() const {
  uint64_t total = 0;
  for (const std::unique_ptr<WorkerSlot>& w : workers_) {
    total += w->cache_hits;
  }
  return total;
}

uint64_t Manager::cache_lookups() const {
  uint64_t total = 0;
  for (const std::unique_ptr<WorkerSlot>& w : workers_) {
    total += w->cache_lookups;
  }
  return total;
}

uint64_t Manager::unique_probes() const {
  uint64_t total = 0;
  for (const std::unique_ptr<WorkerSlot>& w : workers_) {
    total += w->unique_probes;
  }
  return total;
}

uint64_t Manager::stripe_contention() const {
  uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.contended.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace bdd
}  // namespace recnet
