#ifndef RECNET_PROVENANCE_PROV_H_
#define RECNET_PROVENANCE_PROV_H_

#include <memory>
#include <string>
#include <vector>

#include "bdd/bdd.h"

namespace recnet {

// Which provenance model annotates view tuples (paper Section 4,
// "Provenance alternatives").
enum class ProvMode {
  // Plain set semantics: no annotations. Incremental deletion is impossible
  // locally; the DRed engine (over-delete + re-derive) uses this mode.
  kSet,
  // Absorption provenance: a Boolean function over base-tuple variables,
  // stored as a canonical ROBDD so Boolean absorption is applied
  // automatically. The paper's contribution.
  kAbsorption,
  // Relative provenance (Green et al. [14] as characterized by the paper):
  // every derivation is kept explicitly. We normalize each derivation to
  // the multiset-free set of base variables it uses and keep the full list
  // of derivations without absorption, which reproduces its larger
  // annotations and extra propagation.
  kRelative,
};

const char* ProvModeName(ProvMode mode);

// The explicit sum-of-derivations representation behind ProvMode::kRelative.
// `derivations` is sorted and deduplicated; each derivation is a sorted,
// deduplicated list of base variables. Unlike absorption provenance, a
// derivation that is a superset of another is retained.
struct RelSop {
  std::vector<std::vector<bdd::Var>> derivations;

  bool operator==(const RelSop& o) const {
    return derivations == o.derivations;
  }
};

// A provenance annotation: tagged union over the three models with the
// composition laws of the paper's Figure 6 (join = AND, union/projection =
// OR) and the deletion primitive (restrict killed variables to false).
class Prov {
 public:
  // A "no annotation / present" value (used in kSet mode and as the
  // annotation of static base relations that are never deleted).
  static Prov True(ProvMode mode, bdd::Manager* mgr);
  static Prov False(ProvMode mode, bdd::Manager* mgr);
  // The annotation of a freshly inserted base tuple: variable v.
  static Prov BaseVar(ProvMode mode, bdd::Manager* mgr, bdd::Var v);

  Prov() : mode_(ProvMode::kSet), set_true_(false) {}

  ProvMode mode() const { return mode_; }

  // Figure 6: join composes with AND.
  Prov And(const Prov& o) const;
  // Figure 6: union / duplicate-eliminating projection composes with OR.
  Prov Or(const Prov& o) const;
  // The delta between a merged annotation and the previous one
  // (Algorithm 1 line 19: deltaPv = newPv ∧ ¬oldPv). For the relative model
  // this is the set of derivations present here but not in `o`.
  Prov DeltaOver(const Prov& o) const;
  // Deletion of base tuples: fix all `killed` variables to false
  // (Algorithm 1 line 30 and the BDD "restrict" of Section 4.2).
  Prov RestrictFalse(const std::vector<bdd::Var>& killed) const;

  // True iff no derivation survives — the tuple must leave the view.
  bool IsFalse() const;

  bool operator==(const Prov& o) const;
  bool operator!=(const Prov& o) const { return !(*this == o); }

  // Bytes this annotation adds to a shipped update (the paper's per-tuple
  // provenance overhead metric). Zero in kSet mode.
  size_t WireSizeBytes() const;

  // Appends the base variables this annotation depends on (sorted,
  // deduplicated). Drives the deletion-subscription routing.
  void SupportVars(std::vector<bdd::Var>* vars) const;

  std::string ToString() const;

  const bdd::Bdd& bdd() const { return bdd_; }
  const RelSop& rel() const { return *rel_; }

  // Raw constructors from an already-built representation. Used internally
  // by the composition laws and by the persistence layer when decoding a
  // snapshot back into annotations.
  static Prov FromBdd(bdd::Bdd b);
  static Prov FromRel(std::shared_ptr<const RelSop> rel);

 private:
  Prov(ProvMode mode, bool set_true) : mode_(mode), set_true_(set_true) {}

  ProvMode mode_;
  bool set_true_ = false;                // kSet
  bdd::Bdd bdd_;                         // kAbsorption
  std::shared_ptr<const RelSop> rel_;    // kRelative (immutable, shared)
};

}  // namespace recnet

#endif  // RECNET_PROVENANCE_PROV_H_
