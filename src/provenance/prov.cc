#include "provenance/prov.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace recnet {
namespace {

std::shared_ptr<const RelSop> EmptyRel() {
  static const std::shared_ptr<const RelSop>* kEmpty =
      new std::shared_ptr<const RelSop>(std::make_shared<RelSop>());
  return *kEmpty;
}

std::shared_ptr<const RelSop> TrueRel() {
  // One empty derivation: derivable with no base support (static fact).
  static const std::shared_ptr<const RelSop>* kTrue = [] {
    auto r = std::make_shared<RelSop>();
    r->derivations.push_back({});
    return new std::shared_ptr<const RelSop>(std::move(r));
  }();
  return *kTrue;
}

void Normalize(RelSop* r) {
  std::sort(r->derivations.begin(), r->derivations.end());
  r->derivations.erase(
      std::unique(r->derivations.begin(), r->derivations.end()),
      r->derivations.end());
}

}  // namespace

const char* ProvModeName(ProvMode mode) {
  switch (mode) {
    case ProvMode::kSet:
      return "set";
    case ProvMode::kAbsorption:
      return "absorption";
    case ProvMode::kRelative:
      return "relative";
  }
  return "?";
}

Prov Prov::FromBdd(bdd::Bdd b) {
  Prov p(ProvMode::kAbsorption, false);
  p.bdd_ = std::move(b);
  return p;
}

Prov Prov::FromRel(std::shared_ptr<const RelSop> rel) {
  Prov p(ProvMode::kRelative, false);
  p.rel_ = std::move(rel);
  return p;
}

Prov Prov::True(ProvMode mode, bdd::Manager* mgr) {
  switch (mode) {
    case ProvMode::kSet:
      return Prov(ProvMode::kSet, true);
    case ProvMode::kAbsorption:
      // The TRUE terminal is a manager-independent constant; `mgr` may be
      // null for annotations that never compose (retraction markers).
      return FromBdd(bdd::Bdd(mgr, bdd::kTrue));
    case ProvMode::kRelative:
      return FromRel(TrueRel());
  }
  RECNET_CHECK(false);
  return Prov();
}

Prov Prov::False(ProvMode mode, bdd::Manager* mgr) {
  switch (mode) {
    case ProvMode::kSet:
      return Prov(ProvMode::kSet, false);
    case ProvMode::kAbsorption:
      return FromBdd(bdd::Bdd(mgr, bdd::kFalse));
    case ProvMode::kRelative:
      return FromRel(EmptyRel());
  }
  RECNET_CHECK(false);
  return Prov();
}

Prov Prov::BaseVar(ProvMode mode, bdd::Manager* mgr, bdd::Var v) {
  switch (mode) {
    case ProvMode::kSet:
      return Prov(ProvMode::kSet, true);
    case ProvMode::kAbsorption:
      return FromBdd(bdd::Bdd(mgr, mgr->MakeVar(v)));
    case ProvMode::kRelative: {
      auto r = std::make_shared<RelSop>();
      r->derivations.push_back({v});
      return FromRel(std::move(r));
    }
  }
  RECNET_CHECK(false);
  return Prov();
}

Prov Prov::And(const Prov& o) const {
  RECNET_DCHECK(mode_ == o.mode_);
  switch (mode_) {
    case ProvMode::kSet:
      return Prov(ProvMode::kSet, set_true_ && o.set_true_);
    case ProvMode::kAbsorption:
      return FromBdd(bdd_.And(o.bdd_));
    case ProvMode::kRelative: {
      auto out = std::make_shared<RelSop>();
      out->derivations.reserve(rel_->derivations.size() *
                               o.rel_->derivations.size());
      for (const auto& a : rel_->derivations) {
        for (const auto& b : o.rel_->derivations) {
          std::vector<bdd::Var> merged;
          merged.reserve(a.size() + b.size());
          std::merge(a.begin(), a.end(), b.begin(), b.end(),
                     std::back_inserter(merged));
          merged.erase(std::unique(merged.begin(), merged.end()),
                       merged.end());
          out->derivations.push_back(std::move(merged));
        }
      }
      Normalize(out.get());
      return FromRel(std::move(out));
    }
  }
  RECNET_CHECK(false);
  return Prov();
}

Prov Prov::Or(const Prov& o) const {
  RECNET_DCHECK(mode_ == o.mode_);
  switch (mode_) {
    case ProvMode::kSet:
      return Prov(ProvMode::kSet, set_true_ || o.set_true_);
    case ProvMode::kAbsorption:
      return FromBdd(bdd_.Or(o.bdd_));
    case ProvMode::kRelative: {
      auto out = std::make_shared<RelSop>();
      out->derivations.reserve(rel_->derivations.size() +
                               o.rel_->derivations.size());
      std::set_union(rel_->derivations.begin(), rel_->derivations.end(),
                     o.rel_->derivations.begin(), o.rel_->derivations.end(),
                     std::back_inserter(out->derivations));
      return FromRel(std::move(out));
    }
  }
  RECNET_CHECK(false);
  return Prov();
}

Prov Prov::DeltaOver(const Prov& o) const {
  RECNET_DCHECK(mode_ == o.mode_);
  switch (mode_) {
    case ProvMode::kSet:
      return Prov(ProvMode::kSet, set_true_ && !o.set_true_);
    case ProvMode::kAbsorption:
      return FromBdd(bdd_.Diff(o.bdd_));
    case ProvMode::kRelative: {
      auto out = std::make_shared<RelSop>();
      std::set_difference(rel_->derivations.begin(), rel_->derivations.end(),
                          o.rel_->derivations.begin(),
                          o.rel_->derivations.end(),
                          std::back_inserter(out->derivations));
      return FromRel(std::move(out));
    }
  }
  RECNET_CHECK(false);
  return Prov();
}

Prov Prov::RestrictFalse(const std::vector<bdd::Var>& killed) const {
  switch (mode_) {
    case ProvMode::kSet:
      // Set semantics cannot apply deletions locally (that is DRed's job).
      return *this;
    case ProvMode::kAbsorption:
      return FromBdd(bdd_.RestrictAllFalse(killed));
    case ProvMode::kRelative: {
      auto out = std::make_shared<RelSop>();
      for (const auto& d : rel_->derivations) {
        bool dead = false;
        for (bdd::Var v : killed) {
          if (std::binary_search(d.begin(), d.end(), v)) {
            dead = true;
            break;
          }
        }
        if (!dead) out->derivations.push_back(d);
      }
      if (out->derivations.size() == rel_->derivations.size()) return *this;
      return FromRel(std::move(out));
    }
  }
  RECNET_CHECK(false);
  return Prov();
}

bool Prov::IsFalse() const {
  switch (mode_) {
    case ProvMode::kSet:
      return !set_true_;
    case ProvMode::kAbsorption:
      return bdd_.IsFalse();
    case ProvMode::kRelative:
      return rel_->derivations.empty();
  }
  RECNET_CHECK(false);
  return true;
}

bool Prov::operator==(const Prov& o) const {
  if (mode_ != o.mode_) return false;
  switch (mode_) {
    case ProvMode::kSet:
      return set_true_ == o.set_true_;
    case ProvMode::kAbsorption:
      return bdd_ == o.bdd_;  // Canonical: pointer equality is semantic.
    case ProvMode::kRelative:
      return *rel_ == *o.rel_;
  }
  RECNET_CHECK(false);
  return false;
}

size_t Prov::WireSizeBytes() const {
  switch (mode_) {
    case ProvMode::kSet:
      return 0;
    case ProvMode::kAbsorption:
      return bdd_.SerializedSizeBytes();
    case ProvMode::kRelative: {
      // Relative provenance serializes derivation edges whose members are
      // full tuple/base-fact descriptors (site, relation, key — cf. the
      // mapping tables of [14]), not compact variable ids: ~20 bytes per
      // member. This is why the paper measures larger per-tuple overhead
      // for relative provenance than for absorption provenance.
      size_t bytes = 4;
      for (const auto& d : rel_->derivations) bytes += 2 + 20 * d.size();
      return bytes;
    }
  }
  RECNET_CHECK(false);
  return 0;
}

void Prov::SupportVars(std::vector<bdd::Var>* vars) const {
  switch (mode_) {
    case ProvMode::kSet:
      return;
    case ProvMode::kAbsorption:
      bdd_.manager()->Support(bdd_.index(), vars);
      return;
    case ProvMode::kRelative: {
      std::set<bdd::Var> all;
      for (const auto& d : rel_->derivations) all.insert(d.begin(), d.end());
      vars->insert(vars->end(), all.begin(), all.end());
      return;
    }
  }
}

std::string Prov::ToString() const {
  std::ostringstream os;
  switch (mode_) {
    case ProvMode::kSet:
      os << (set_true_ ? "true" : "false");
      break;
    case ProvMode::kAbsorption:
      os << "bdd[" << bdd_.index() << "," << bdd_.CountNodes() << "n]";
      break;
    case ProvMode::kRelative: {
      os << "{";
      bool first_d = true;
      for (const auto& d : rel_->derivations) {
        if (!first_d) os << " v ";
        first_d = false;
        if (d.empty()) os << "T";
        for (size_t i = 0; i < d.size(); ++i) {
          if (i > 0) os << "^";
          os << "p" << d[i];
        }
      }
      os << "}";
      break;
    }
  }
  return os.str();
}

}  // namespace recnet
