#ifndef RECNET_TOPOLOGY_SENSOR_GRID_H_
#define RECNET_TOPOLOGY_SENSOR_GRID_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace recnet {

// A simulated sensor deployment (paper Workload 2): sensors on a bounded
// field, a proximity threshold k defining which sensors are "contiguous",
// and seed sensors anchoring the regions of Query 3 (one region per seed).
struct SensorField {
  int num_sensors = 0;
  std::vector<std::pair<double, double>> positions;
  double k = 20.0;
  // seed_sensors[r] is the main sensor of region r.
  std::vector<int> seed_sensors;
  // neighbors[x] = sensors y != x with distance(x, y) < k.
  std::vector<std::vector<int>> neighbors;
};

struct SensorGridOptions {
  // Sensors are placed on a grid_dim x grid_dim lattice.
  int grid_dim = 10;
  // Lattice spacing in meters (10 x 10 m over 100 m x 100 m by default).
  double spacing_m = 10.0;
  // Contiguity threshold (paper default k = 20 m).
  double k = 20.0;
  // Number of seed groups (paper default 5).
  int num_seeds = 5;
  uint64_t seed = 1;
};

// Builds the lattice field with `num_seeds` distinct random seed sensors and
// precomputed proximity neighbor lists.
SensorField MakeSensorGrid(const SensorGridOptions& options);

}  // namespace recnet

#endif  // RECNET_TOPOLOGY_SENSOR_GRID_H_
