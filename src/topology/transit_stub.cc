#include "topology/transit_stub.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"

namespace recnet {
namespace {

constexpr double kTransitTransitMs = 50.0;
constexpr double kTransitStubMs = 10.0;
constexpr double kIntraStubMs = 2.0;

// Adds a ring plus `extra_chords` random chords over nodes [first,
// first+count), all with the given latency. Ring guarantees connectivity
// inside the domain.
void AddDomain(Topology* topo, int first, int count, int extra_chords,
               double latency, Rng* rng) {
  std::set<std::pair<int, int>> present;
  auto add = [&](int a, int b) {
    if (a == b) return false;
    auto key = std::minmax(a, b);
    if (!present.insert(key).second) return false;
    topo->links.push_back(TopoLink{key.first, key.second, latency});
    return true;
  };
  for (int i = 0; i < count; ++i) {
    if (count > 1) add(first + i, first + (i + 1) % count);
  }
  int attempts = 0;
  int added = 0;
  while (added < extra_chords && attempts < extra_chords * 20) {
    ++attempts;
    int a = first + static_cast<int>(rng->NextBounded(count));
    int b = first + static_cast<int>(rng->NextBounded(count));
    if (add(a, b)) ++added;
  }
}

}  // namespace

Topology MakeTransitStub(const TransitStubOptions& options) {
  RECNET_CHECK_GT(options.transit_nodes, 0);
  RECNET_CHECK_GE(options.stubs_per_transit, 0);
  RECNET_CHECK_GT(options.stub_size, 0);
  Rng rng(options.seed);
  int total_stubs = options.total_stubs >= 0
                        ? options.total_stubs
                        : options.transit_nodes * options.stubs_per_transit;
  Topology topo;
  topo.num_nodes = options.transit_nodes + total_stubs * options.stub_size;

  // Transit domain: ring + chords among the transit nodes.
  int transit_chords = options.dense ? options.transit_nodes / 2 : 0;
  AddDomain(&topo, 0, options.transit_nodes, transit_chords,
            kTransitTransitMs, &rng);

  // Stub domains: ring + chords, attached to their transit node. Dense
  // stubs get roughly one chord per node (≈4 links/node overall); sparse
  // stubs are rings only (≈half the links).
  int next = options.transit_nodes;
  for (int s = 0; s < total_stubs; ++s) {
    int t = s % options.transit_nodes;
    int first = next;
    next += options.stub_size;
    int chords = options.dense ? options.stub_size - 1 : 0;
    AddDomain(&topo, first, options.stub_size, chords, kIntraStubMs, &rng);
    // Attach the stub to its transit node through a random gateway.
    int gateway =
        first + static_cast<int>(rng.NextBounded(options.stub_size));
    topo.links.push_back(TopoLink{t, gateway, kTransitStubMs});
  }
  RECNET_CHECK(IsConnected(topo));
  return topo;
}

Topology MakeTransitStubWithTargetLinks(int target_link_count, bool dense,
                                        uint64_t seed) {
  RECNET_CHECK_GT(target_link_count, 0);
  // Links per stub: ring (stub_size) + chords + 1 attachment.
  TransitStubOptions options;
  options.dense = dense;
  options.seed = seed;
  int per_stub = dense ? (8 + 7 + 1) : (8 + 1);
  int transit_links = dense ? 6 : 4;
  options.total_stubs =
      std::max(1, (target_link_count - transit_links + per_stub / 2) /
                      per_stub);
  return MakeTransitStub(options);
}

}  // namespace recnet
