#include "topology/workload.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace recnet {

std::vector<LinkTuple> DirectedLinks(const Topology& topo) {
  std::vector<LinkTuple> out;
  out.reserve(topo.links.size() * 2);
  for (const TopoLink& link : topo.links) {
    out.push_back(LinkTuple{link.a, link.b, link.cost_ms});
    out.push_back(LinkTuple{link.b, link.a, link.cost_ms});
  }
  return out;
}

std::vector<LinkTuple> InsertionPrefix(const Topology& topo, double ratio,
                                       uint64_t seed) {
  RECNET_CHECK(ratio >= 0.0 && ratio <= 1.0);
  std::vector<LinkTuple> links = DirectedLinks(topo);
  Rng rng(seed);
  rng.Shuffle(&links);
  links.resize(static_cast<size_t>(ratio * static_cast<double>(links.size())));
  return links;
}

std::vector<LinkTuple> DeletionSequence(const Topology& topo, double ratio,
                                        uint64_t seed) {
  RECNET_CHECK(ratio >= 0.0 && ratio <= 1.0);
  std::vector<LinkTuple> links = DirectedLinks(topo);
  Rng rng(seed ^ 0xdeadbeefULL);
  rng.Shuffle(&links);
  links.resize(static_cast<size_t>(ratio * static_cast<double>(links.size())));
  return links;
}

}  // namespace recnet
