#ifndef RECNET_TOPOLOGY_TOPOLOGY_H_
#define RECNET_TOPOLOGY_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace recnet {

// An undirected network link with a latency cost (the paper's link(src,
// dst, cost); each undirected link yields two link tuples).
struct TopoLink {
  int a = 0;
  int b = 0;
  double cost_ms = 1.0;
};

// A generated network topology: `num_nodes` routers and a set of undirected
// links. The engines insert both directed link tuples per entry, matching
// the paper's "approximately 200 bidirectional links (hence 400 link
// tuples)".
struct Topology {
  int num_nodes = 0;
  std::vector<TopoLink> links;

  size_t num_link_tuples() const { return 2 * links.size(); }
};

// True iff the undirected graph is connected (generators guarantee this).
bool IsConnected(const Topology& topo);

}  // namespace recnet

#endif  // RECNET_TOPOLOGY_TOPOLOGY_H_
