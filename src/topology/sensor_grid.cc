#include "topology/sensor_grid.h"

#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"

namespace recnet {

SensorField MakeSensorGrid(const SensorGridOptions& options) {
  RECNET_CHECK_GT(options.grid_dim, 0);
  SensorField field;
  field.num_sensors = options.grid_dim * options.grid_dim;
  field.k = options.k;
  field.positions.reserve(static_cast<size_t>(field.num_sensors));
  for (int r = 0; r < options.grid_dim; ++r) {
    for (int c = 0; c < options.grid_dim; ++c) {
      field.positions.emplace_back(c * options.spacing_m,
                                   r * options.spacing_m);
    }
  }
  field.neighbors.resize(static_cast<size_t>(field.num_sensors));
  for (int a = 0; a < field.num_sensors; ++a) {
    for (int b = 0; b < field.num_sensors; ++b) {
      if (a == b) continue;
      double dx = field.positions[a].first - field.positions[b].first;
      double dy = field.positions[a].second - field.positions[b].second;
      if (std::sqrt(dx * dx + dy * dy) < options.k) {
        field.neighbors[a].push_back(b);
      }
    }
  }
  RECNET_CHECK_LE(options.num_seeds, field.num_sensors);
  Rng rng(options.seed);
  std::unordered_set<int> chosen;
  while (static_cast<int>(chosen.size()) < options.num_seeds) {
    chosen.insert(
        static_cast<int>(rng.NextBounded(static_cast<uint64_t>(field.num_sensors))));
  }
  field.seed_sensors.assign(chosen.begin(), chosen.end());
  return field;
}

}  // namespace recnet
