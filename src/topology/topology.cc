#include "topology/topology.h"

#include <queue>

namespace recnet {

bool IsConnected(const Topology& topo) {
  if (topo.num_nodes == 0) return true;
  std::vector<std::vector<int>> adj(static_cast<size_t>(topo.num_nodes));
  for (const TopoLink& link : topo.links) {
    adj[static_cast<size_t>(link.a)].push_back(link.b);
    adj[static_cast<size_t>(link.b)].push_back(link.a);
  }
  std::vector<bool> seen(static_cast<size_t>(topo.num_nodes), false);
  std::queue<int> frontier;
  frontier.push(0);
  seen[0] = true;
  int visited = 1;
  while (!frontier.empty()) {
    int n = frontier.front();
    frontier.pop();
    for (int next : adj[static_cast<size_t>(n)]) {
      if (!seen[static_cast<size_t>(next)]) {
        seen[static_cast<size_t>(next)] = true;
        ++visited;
        frontier.push(next);
      }
    }
  }
  return visited == topo.num_nodes;
}

}  // namespace recnet
