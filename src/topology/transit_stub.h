#ifndef RECNET_TOPOLOGY_TRANSIT_STUB_H_
#define RECNET_TOPOLOGY_TRANSIT_STUB_H_

#include "topology/topology.h"

namespace recnet {

// Parameters of the GT-ITM-style transit-stub generator (paper §7.1: "eight
// nodes per stub, three stubs per transit node, and four nodes per transit
// domain", giving 100 nodes and ~200 bidirectional links by default).
// Latencies follow the paper: 50 ms transit-transit, 10 ms transit-stub,
// 2 ms intra-stub.
struct TransitStubOptions {
  int transit_nodes = 4;
  int stubs_per_transit = 3;
  int stub_size = 8;
  // When >= 0, overrides transit_nodes * stubs_per_transit with an exact
  // stub count (assigned to transit nodes round-robin); used by the
  // target-link-count sweep.
  int total_stubs = -1;
  // Dense topologies have roughly four links per node; sparse halves the
  // link count for the same node count (paper §7.3).
  bool dense = true;
  uint64_t seed = 1;
};

// Generates a connected transit-stub topology.
Topology MakeTransitStub(const TransitStubOptions& options);

// Scales the generator to approximately `target_link_count` undirected
// links (the paper's 100/200/400/800-link sweep, Figures 11-12) by varying
// the number of stub domains.
Topology MakeTransitStubWithTargetLinks(int target_link_count, bool dense,
                                        uint64_t seed);

}  // namespace recnet

#endif  // RECNET_TOPOLOGY_TRANSIT_STUB_H_
