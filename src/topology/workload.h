#ifndef RECNET_TOPOLOGY_WORKLOAD_H_
#define RECNET_TOPOLOGY_WORKLOAD_H_

#include <vector>

#include "topology/topology.h"

namespace recnet {

// A directed link tuple as fed to the engines: link(src, dst, cost).
struct LinkTuple {
  int src = 0;
  int dst = 0;
  double cost_ms = 1.0;
};

// Expands undirected topology links into directed link tuples (both
// directions), in a deterministic order.
std::vector<LinkTuple> DirectedLinks(const Topology& topo);

// The paper's insertion workloads insert a shuffled fraction of the link
// tuples ("the fraction of links inserted, in an incremental fashion").
// Returns the first `ratio` of a seeded shuffle of all directed links.
std::vector<LinkTuple> InsertionPrefix(const Topology& topo, double ratio,
                                       uint64_t seed);

// Deletion sequences delete links one at a time after the full view exists
// ("we then delete link tuples in sequence; each deletion occurs in
// isolation"). Returns a seeded shuffle of the first `ratio` of directed
// links to delete.
std::vector<LinkTuple> DeletionSequence(const Topology& topo, double ratio,
                                        uint64_t seed);

}  // namespace recnet

#endif  // RECNET_TOPOLOGY_WORKLOAD_H_
