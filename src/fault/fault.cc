#include "fault/fault.h"

#include <cstdio>
#include <cstdlib>

namespace recnet {
namespace fault {
namespace {

// Site tags keep the per-site decision streams independent even when their
// numeric keys coincide.
constexpr uint64_t kSiteWorkerDeath = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kSiteAllocFail = 0xbf58476d1ce4e5b9ull;
constexpr uint64_t kSiteSnapshotTear = 0x94d049bb133111ebull;
constexpr uint64_t kSiteLinkDrop = 0x2545f4914f6cdd1dull;
constexpr uint64_t kSiteLinkDup = 0xd6e8feb86659fd93ull;

uint64_t Mix(uint64_t x) {
  // SplitMix64 finalizer: full-avalanche, so nearby keys give independent
  // draws.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::string FaultPlan::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "seed=%llu,kill_gen=%lld,death=%g,alloc=%g,tear=%g,"
                "drop=%g,dup=%g,max_attempts=%u",
                static_cast<unsigned long long>(seed),
                static_cast<long long>(kill_at_generation), worker_death_rate,
                alloc_fail_rate, snapshot_tear_rate, link_drop_rate,
                link_dup_rate, max_drop_attempts);
  return buf;
}

double FaultInjector::Draw(uint64_t site_tag, uint64_t a, uint64_t b,
                           uint64_t c) const {
  uint64_t h = Mix(plan_.seed ^ site_tag);
  h = Mix(h ^ Mix(epoch_));
  h = Mix(h ^ Mix(a));
  h = Mix(h ^ Mix(b));
  h = Mix(h ^ Mix(c));
  // Top 53 bits -> [0,1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::ShouldKillWorker(std::string* site) {
  if (plan_.kill_at_generation >= 0 &&
      generation_ == static_cast<uint64_t>(plan_.kill_at_generation)) {
    if (site != nullptr) {
      *site = "worker-death@gen=" + std::to_string(generation_);
    }
    return true;
  }
  if (plan_.worker_death_rate > 0.0 &&
      Draw(kSiteWorkerDeath, generation_, 0, 0) < plan_.worker_death_rate) {
    if (site != nullptr) {
      *site = "worker-death@gen=" + std::to_string(generation_) +
              ",epoch=" + std::to_string(epoch_);
    }
    return true;
  }
  return false;
}

bool FaultInjector::ShouldFailAlloc(std::string* site) {
  if (plan_.alloc_fail_rate > 0.0 &&
      Draw(kSiteAllocFail, generation_, 0, 0) < plan_.alloc_fail_rate) {
    if (site != nullptr) {
      *site = "alloc-fail@gen=" + std::to_string(generation_) +
              ",epoch=" + std::to_string(epoch_);
    }
    return true;
  }
  return false;
}

bool FaultInjector::ShouldTearSnapshot() {
  if (plan_.snapshot_tear_rate <= 0.0) return false;
  return Draw(kSiteSnapshotTear, checkpoints_++, 0, 0) <
         plan_.snapshot_tear_rate;
}

bool FaultInjector::ShouldDropLink(uint64_t key_trig, uint32_t key_sub,
                                   uint32_t attempts) {
  if (plan_.link_drop_rate <= 0.0) return false;
  if (attempts >= plan_.max_drop_attempts) return false;  // Force-deliver.
  return Draw(kSiteLinkDrop, key_trig, key_sub, attempts) <
         plan_.link_drop_rate;
}

bool FaultInjector::ShouldDuplicateLink(uint64_t key_trig, uint32_t key_sub) {
  if (plan_.link_dup_rate <= 0.0) return false;
  return Draw(kSiteLinkDup, key_trig, key_sub, 0) < plan_.link_dup_rate;
}

namespace {

Status ParseU64(const std::string& key, const std::string& val,
                uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(val.c_str(), &end, 10);
  if (end == val.c_str() || *end != '\0') {
    return Status::InvalidArgument("fault spec: '" + key +
                                   "' wants an integer, got '" + val + "'");
  }
  return Status::OK();
}

Status ParseRate(const std::string& key, const std::string& val,
                 double* out) {
  char* end = nullptr;
  *out = std::strtod(val.c_str(), &end);
  if (end == val.c_str() || *end != '\0') {
    return Status::InvalidArgument("fault spec: '" + key +
                                   "' wants a number, got '" + val + "'");
  }
  if (*out < 0.0 || *out > 1.0) {
    return Status::InvalidArgument("fault spec: '" + key +
                                   "' must be in [0,1], got '" + val + "'");
  }
  return Status::OK();
}

}  // namespace

StatusOr<FaultPlan> ParseFaultSpec(const std::string& spec) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string pair = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec: expected key=value, got '" +
                                     pair + "'");
    }
    const std::string key = pair.substr(0, eq);
    const std::string val = pair.substr(eq + 1);
    if (key == "seed") {
      RECNET_RETURN_IF_ERROR(ParseU64(key, val, &plan.seed));
    } else if (key == "kill_gen") {
      uint64_t gen = 0;
      RECNET_RETURN_IF_ERROR(ParseU64(key, val, &gen));
      plan.kill_at_generation = static_cast<int64_t>(gen);
    } else if (key == "death") {
      RECNET_RETURN_IF_ERROR(ParseRate(key, val, &plan.worker_death_rate));
    } else if (key == "alloc") {
      RECNET_RETURN_IF_ERROR(ParseRate(key, val, &plan.alloc_fail_rate));
    } else if (key == "tear") {
      RECNET_RETURN_IF_ERROR(ParseRate(key, val, &plan.snapshot_tear_rate));
    } else if (key == "drop") {
      RECNET_RETURN_IF_ERROR(ParseRate(key, val, &plan.link_drop_rate));
    } else if (key == "dup") {
      RECNET_RETURN_IF_ERROR(ParseRate(key, val, &plan.link_dup_rate));
    } else if (key == "max_attempts") {
      uint64_t n = 0;
      RECNET_RETURN_IF_ERROR(ParseU64(key, val, &n));
      if (n == 0) {
        return Status::InvalidArgument(
            "fault spec: 'max_attempts' must be >= 1");
      }
      plan.max_drop_attempts = static_cast<uint32_t>(n);
    } else {
      return Status::InvalidArgument("fault spec: unknown key '" + key + "'");
    }
  }
  return plan;
}

}  // namespace fault
}  // namespace recnet
