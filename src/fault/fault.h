#ifndef RECNET_FAULT_FAULT_H_
#define RECNET_FAULT_FAULT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace recnet {
namespace fault {

// ---------------------------------------------------------------------------
// Deterministic fault injection.
//
// The paper's setting is recursive view maintenance over *unreliable*
// networks; this module is how the reproduction exercises that setting
// without giving up replayability. A FaultPlan describes WHICH faults a run
// should suffer; a FaultInjector decides WHEN they fire as a pure function
// of (seed, recovery epoch, injection site, site-local counters) — never
// wall clock, thread ids, or addresses — so every failure schedule is
// exactly reproducible from the seed alone.
//
// Two fault classes with different contracts:
//  * Infrastructure faults (worker death mid-superstep, allocation failure,
//    torn snapshot writes) surface as StatusCode::kUnavailable and are
//    MASKED by Session's micro-checkpoint + RecoverFromFault machinery: a
//    killed-and-recovered run finishes with Scan results and per-view
//    traffic counters bit-identical to an uninterrupted run.
//  * Network faults (seeded drop/duplication on shard-boundary links) are a
//    lossy WORKLOAD mode: dropped envelopes are retried at the next
//    superstep barrier (bounded by max_drop_attempts, so delivery is
//    eventual) and duplicates are delivered twice. The acceptance contract
//    is convergence to the same fixpoint, not identical traffic.
// ---------------------------------------------------------------------------

// What to inject. Default-constructed = no faults (enabled() is false).
struct FaultPlan {
  // Seed for every injection decision. Two runs with the same plan see the
  // same failure schedule.
  uint64_t seed = 0;

  // --- Infrastructure faults (masked by recovery) --------------------------
  // One-shot: kill the drain when the injector's generation clock reaches
  // exactly this value (< 0 = off). The clock ticks once per superstep
  // generation (sharded drain) / per delivery round (sequential drain) and
  // is never rewound by recovery, so the kill fires exactly once.
  int64_t kill_at_generation = -1;
  // Per-generation probability of a shard-worker death. Re-randomized per
  // recovery epoch, so a recovered run is not doomed to re-die at the same
  // point.
  double worker_death_rate = 0.0;
  // Per-generation probability of a simulated BDD/operator allocation
  // failure (same masking contract as worker death).
  double alloc_fail_rate = 0.0;
  // Probability that a Session::Checkpoint write tears: a truncated
  // `<path>.tmp` is left behind, the target is untouched, and the call
  // returns Unavailable.
  double snapshot_tear_rate = 0.0;

  // --- Network faults (lossy workload mode) --------------------------------
  // Per-envelope probability that a shard-boundary message is dropped at
  // the superstep merge (retried next generation) / duplicated on delivery.
  // Same-shard traffic is never lossy: the paper's unreliable links are
  // between machines, and intra-shard delivery models a local queue.
  double link_drop_rate = 0.0;
  double link_dup_rate = 0.0;
  // An envelope dropped this many times is force-delivered: delivery is
  // eventual, which is what makes the lossy mode converge.
  uint32_t max_drop_attempts = 16;

  bool enabled() const {
    return kill_at_generation >= 0 || worker_death_rate > 0.0 ||
           alloc_fail_rate > 0.0 || snapshot_tear_rate > 0.0 || lossy();
  }
  bool lossy() const { return link_drop_rate > 0.0 || link_dup_rate > 0.0; }

  std::string ToString() const;
};

// How Session masks infrastructure faults. Default-constructed = recovery
// off: a fault surfaces as Unavailable to the caller.
struct RecoveryPolicy {
  bool enabled = false;
  // Recovery attempts per Apply before giving up and returning the fault.
  int max_recoveries = 8;
  // Exponential backoff between recovery attempts: sleep
  // backoff_initial_s * backoff_factor^attempt before rebuilding the
  // substrate. Tests use 0 to keep the suite fast.
  double backoff_initial_s = 0.0;
  double backoff_factor = 2.0;
  // Refresh the micro-checkpoint every N superstep barriers (0 = only at
  // Apply entry). Smaller intervals bound re-execution after a fault at the
  // cost of more frequent state serialization.
  uint64_t checkpoint_interval = 0;
};

// Decides when the plan's faults fire. All decisions are pure hashes over
// (seed, epoch, site tag, caller-supplied keys); the only mutable state is
// the monotone generation clock and the recovery epoch, both controlled by
// the caller. One injector is shared across Substrate rebuilds so the clock
// survives recovery (the one-shot kill must not re-fire on the re-run).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }

  // Advances the generation clock (one tick per superstep generation or
  // sequential delivery round). Returns the new value.
  uint64_t TickGeneration() { return ++generation_; }
  uint64_t generation() const { return generation_; }

  // Recovery bumps the epoch so rate-based decisions re-randomize: the
  // re-executed generations draw fresh coins instead of deterministically
  // re-dying.
  void BumpEpoch() { ++epoch_; }
  uint64_t epoch() const { return epoch_; }

  // Infrastructure faults, polled on the coordinator thread at generation
  // granularity. On fire, `site` names the fault for diagnostics.
  bool ShouldKillWorker(std::string* site);
  bool ShouldFailAlloc(std::string* site);
  // Snapshot tear, keyed by a per-checkpoint counter so successive
  // checkpoints draw independent coins.
  bool ShouldTearSnapshot();

  // Network faults, decided per shard-boundary envelope at the superstep
  // merge. Keys are the envelope's pre-merge stamp — stable across shard
  // counts of the SAME configuration, so a lossy run replays exactly.
  bool ShouldDropLink(uint64_t key_trig, uint32_t key_sub, uint32_t attempts);
  bool ShouldDuplicateLink(uint64_t key_trig, uint32_t key_sub);

 private:
  // Uniform [0,1) draw from the decision keys (SplitMix64-style mixing).
  double Draw(uint64_t site_tag, uint64_t a, uint64_t b, uint64_t c) const;

  FaultPlan plan_;
  uint64_t generation_ = 0;
  uint64_t epoch_ = 0;
  uint64_t checkpoints_ = 0;
};

// Parses a bench/CLI fault spec: comma-separated key=value pairs, e.g.
//   "seed=7,kill_gen=12,death=0.001,alloc=0.0,drop=0.01,dup=0.005,
//    tear=0.5,max_attempts=16"
// Unknown keys, malformed numbers, and out-of-range rates are typed
// InvalidArgument errors.
StatusOr<FaultPlan> ParseFaultSpec(const std::string& spec);

}  // namespace fault
}  // namespace recnet

#endif  // RECNET_FAULT_FAULT_H_
