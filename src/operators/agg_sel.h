#ifndef RECNET_OPERATORS_AGG_SEL_H_
#define RECNET_OPERATORS_AGG_SEL_H_

#include <optional>
#include <vector>

#include "common/flat_table.h"
#include "common/status.h"
#include "operators/update.h"

namespace recnet {

namespace persist {
class SnapshotReader;
class SnapshotWriter;
}  // namespace persist

// Aggregate functions supported by aggregate selection. COUNT and SUM are
// handled by the final GroupByAggregate (every tuple contributes to them, so
// there is nothing for aggregate selection to prune, as the paper notes by
// pruning only on "better" comparisons).
enum class AggFn { kMin, kMax };

struct AggSpec {
  AggFn fn;
  size_t value_col;  // Attribute holding the aggregated value.
};

// The aggregate-selection module of the paper's Algorithm 4, extended to
// streams of insertions and deletions.
//
// Embedded in Fixpoint and MinShip (Algorithm 1 lines 2-8; Algorithm 3
// lines 4-8), it suppresses tuples that cannot affect any of the group's
// aggregate values, while *buffering* every tuple (tables H and P) so that
// when the current winner of a group is deleted, the runner-up can be found
// and propagated (Algorithm 4 lines 39-53).
class AggSel {
 public:
  AggSel(ProvMode mode, std::vector<size_t> group_cols,
         std::vector<AggSpec> aggs);

  // Insertion path (Algorithm 4 lines 6-29). Returns the updates to
  // propagate: possibly DELs of displaced winners followed by the INS of
  // the new tuple; empty if the tuple affects no aggregate.
  std::vector<Update> ProcessInsert(const Tuple& tuple, const Prov& pv);

  // Retraction path (Algorithm 4 lines 30-56), used by set-semantics
  // cascades. Returns INSs of replacement winners plus the DEL itself when
  // the retracted tuple was a winner; empty otherwise.
  std::vector<Update> ProcessDelete(const Tuple& tuple);

  // Base-deletion path for the provenance models: restricts all buffered
  // annotations; buffered tuples whose annotation dies are removed, and for
  // every group whose winner died the surviving runner-up is emitted as an
  // insertion. (Downstream removes the dead winner via the same kill.)
  std::vector<Update> ProcessKill(const std::vector<bdd::Var>& killed);

  size_t StateSizeBytes() const;
  size_t buffered_tuples() const { return prov_.size(); }

  // Snapshot round-trip of tables H, B and P in iteration order. LoadState
  // requires an empty operator.
  void SaveState(persist::SnapshotWriter& w) const;
  Status LoadState(persist::SnapshotReader& r);

 private:
  struct GroupState {
    std::vector<Tuple> members;               // Table H for this group.
    std::vector<std::optional<Tuple>> best;   // Table B: winner per agg.
  };

  Tuple GroupOf(const Tuple& t) const;
  // True iff a is strictly better than b under agg i.
  bool Better(const Tuple& a, const Tuple& b, size_t i) const;
  // Recomputes the winner of agg i for `group` by scanning its members.
  std::optional<Tuple> Rescan(const GroupState& g, size_t i) const;

  ProvMode mode_;
  std::vector<size_t> group_cols_;
  std::vector<AggSpec> aggs_;
  FlatTable<Tuple, GroupState, TupleHash> groups_;
  FlatTable<Tuple, Prov, TupleHash> prov_;  // Table P.
};

}  // namespace recnet

#endif  // RECNET_OPERATORS_AGG_SEL_H_
