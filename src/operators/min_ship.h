#ifndef RECNET_OPERATORS_MIN_SHIP_H_
#define RECNET_OPERATORS_MIN_SHIP_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/flat_table.h"
#include "common/status.h"
#include "operators/update.h"

namespace recnet {

namespace persist {
class SnapshotReader;
class SnapshotWriter;
}  // namespace persist

// Shipping policy of the MinShip operator (paper Section 5).
enum class ShipMode {
  // Conventional Ship: every derivation is forwarded immediately. Used as
  // the no-MinShip ablation and by maintenance schemes without buffering.
  kDirect,
  // Buffer alternate derivations and flush them every `batch_window`
  // processed updates (the paper's eager strategy: "propagate state from
  // MinShip once a second").
  kEager,
  // Lazy provenance propagation: infinite batching interval; buffered
  // derivations are shipped only when the previously shipped derivation of
  // the same tuple is deleted (paper: "alternate derivations of a tuple
  // will only be propagated when they affect downstream results").
  kLazy,
};

const char* ShipModeName(ShipMode mode);

// The MinShip operator (paper Algorithm 3).
//
// Always forwards the first derivation of each tuple; subsequent derivations
// are merged (with absorption) into a buffer (Pins). Bsent tracks what has
// been shipped so far. When a kill makes a shipped annotation false, the
// buffered alternative — if any survives — is promoted and shipped, so
// downstream state stays correct without eager propagation of every
// derivation.
//
// Adaptive eager→lazy demotion: eager mode pays for its freshness by
// re-shipping (and re-absorbing downstream) every buffered derivation each
// batch window — on dense fan-in that Or-churn is quadratic in annotation
// width and is exactly what blows the budget on the paper's hardest cell.
// When `demote_width` > 0 and an absorption annotation this operator merges
// grows past that many live BDD nodes, the operator demotes itself for the
// rest of the run: the periodic batch-window Flush stops and the buffer
// gets exactly lazy's treatment — alternates ship only when a kill
// promotes them — while FlushIfDemoted() re-absorbs the buffer against
// the shipped state at each quiescent point. Nothing buffered ships
// proactively once demoted: forwarding the wide annotations would seed
// downstream joins with huge operands and re-ignite the Or-storm the
// demotion exists to stop. Demotion is sticky (widths only grow;
// re-arming thrashes demote/flush cycles).
class MinShip {
 public:
  // `send` forwards an update towards its destination (routing by tuple is
  // the runtime's job).
  using SendFn = std::function<void(const Tuple&, const Prov&)>;

  MinShip(ProvMode prov_mode, ShipMode ship_mode, size_t batch_window,
          SendFn send, size_t demote_width = 0);

  // Pre-sizes the shipped/buffered tables for an expected tuple count.
  void Reserve(size_t expected_tuples) {
    bsent_.reserve(expected_tuples);
    pins_.reserve(expected_tuples);
  }

  // Algorithm 3 main loop body for an insertion.
  void ProcessInsert(const Tuple& tuple, const Prov& pv);

  // Restricts killed variables across Bsent and Pins. Shipped annotations
  // that die are replaced by surviving buffered derivations, which are sent
  // (BatchShipLazy semantics). The kill itself is forwarded by the runtime.
  void ProcessKill(const std::vector<bdd::Var>& killed);

  // Set-mode retraction passthrough (DRed ships directly).
  void ProcessDelete(const Tuple& tuple);

  // Ships all buffered derivations (end-of-stream / timer flush,
  // Algorithm 3 line 33).
  void Flush();

  // Quiescence hook for the demotion policy: if this operator is demoted,
  // re-absorb the buffer against the shipped state (dropping pins that no
  // longer add anything) without shipping. Always returns false — the
  // compaction generates no traffic, so it never extends the drain.
  bool FlushIfDemoted();

  bool demoted() const { return demoted_; }
  // Times this operator demoted eager→lazy (observability; surfaces as the
  // run metric ship_demotions).
  uint64_t demotions() const { return demotions_; }

  size_t StateSizeBytes() const;
  size_t buffered() const { return pins_.size(); }

  // Snapshot round-trip. Bsent re-inserts in iteration order (flat-table
  // layout reproduction); Pins additionally records its bucket count and
  // re-inserts in *reverse* iteration order — the node container prepends
  // within a bucket, so reverse insertion into the same bucket layout
  // rebuilds the exact iteration order the eager Flush and ProcessKill
  // trajectories depend on. LoadState requires an empty operator.
  void SaveState(persist::SnapshotWriter& w) const;
  Status LoadState(persist::SnapshotReader& r);

 private:
  ProvMode prov_mode_;
  ShipMode ship_mode_;
  size_t batch_window_;
  SendFn send_;
  // Annotation-width ceiling for eager mode (live BDD nodes; 0 disables).
  size_t demote_width_;
  size_t since_flush_ = 0;
  bool demoted_ = false;
  uint64_t demotions_ = 0;
  FlatTable<Tuple, Prov, TupleHash> bsent_;
  // The eager-mode Flush ships the buffer in iteration order, and delivery
  // order feeds back into absorption results (which annotation reaches a
  // fixpoint first decides what later derivations are absorbed into), so
  // the benchmark trajectories pin the exact message sequence. Pins stays
  // on the node-based container whose iteration order that sequence was
  // recorded under; it is the cold side of MinShip (only non-first
  // derivations land here), while the per-insert hot path — Bsent — is
  // flat.
  std::unordered_map<Tuple, Prov, TupleHash> pins_;
};

}  // namespace recnet

#endif  // RECNET_OPERATORS_MIN_SHIP_H_
