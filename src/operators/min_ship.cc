#include "operators/min_ship.h"

namespace recnet {

const char* ShipModeName(ShipMode mode) {
  switch (mode) {
    case ShipMode::kDirect:
      return "direct";
    case ShipMode::kEager:
      return "eager";
    case ShipMode::kLazy:
      return "lazy";
  }
  return "?";
}

MinShip::MinShip(ProvMode prov_mode, ShipMode ship_mode, size_t batch_window,
                 SendFn send)
    : prov_mode_(prov_mode),
      ship_mode_(ship_mode),
      batch_window_(batch_window),
      send_(std::move(send)) {
  RECNET_CHECK(send_ != nullptr);
}

void MinShip::ProcessInsert(const Tuple& tuple, const Prov& pv) {
  // One probe handles both the first-derivation and the merge path.
  auto [sent, is_new] = bsent_.try_emplace(tuple, pv);
  if (is_new) {
    // Algorithm 3 lines 11-13: first derivation ships right away.
    send_(tuple, pv);
  } else if (ship_mode_ == ShipMode::kDirect) {
    // Conventional Ship: forward every non-absorbed derivation.
    Prov merged = sent->second.Or(pv);
    if (!(merged == sent->second)) {
      sent->second = merged;
      send_(tuple, pv);
    }
  } else {
    // Lines 15-18: buffer unless already absorbed by what was shipped.
    Prov merged = sent->second.Or(pv);
    if (!(merged == sent->second)) {
      auto [it, inserted] = pins_.emplace(tuple, pv);
      if (!inserted) it->second = it->second.Or(pv);
    }
  }
  if (ship_mode_ == ShipMode::kEager && ++since_flush_ >= batch_window_) {
    Flush();
  }
}

void MinShip::ProcessKill(const std::vector<bdd::Var>& killed) {
  // Restrict the buffered (unshipped) derivations first (Algorithm 3
  // lines 20-25).
  for (auto it = pins_.begin(); it != pins_.end();) {
    Prov next = it->second.RestrictFalse(killed);
    if (next.IsFalse()) {
      it = pins_.erase(it);
    } else {
      it->second = next;
      ++it;
    }
  }
  // A shipped derivation that dies is replaced by a surviving buffered
  // alternative, shipped immediately so downstream can re-derive
  // (BatchShipLazy lines 6-12 applied at deletion time).
  for (auto it = bsent_.begin(); it != bsent_.end();) {
    Prov next = it->second.RestrictFalse(killed);
    if (!next.IsFalse()) {
      it->second = next;
      ++it;
      continue;
    }
    auto buffered = pins_.find(it->first);
    if (buffered != pins_.end()) {
      it->second = buffered->second;
      send_(it->first, buffered->second);
      pins_.erase(buffered);
      ++it;
    } else {
      it = bsent_.erase(it);
    }
  }
}

void MinShip::ProcessDelete(const Tuple& tuple) {
  bsent_.erase(tuple);
  pins_.erase(tuple);
}

void MinShip::Flush() {
  since_flush_ = 0;
  for (auto& [tuple, pv] : pins_) {
    auto sent = bsent_.find(tuple);
    if (sent == bsent_.end()) {
      bsent_.emplace(tuple, pv);
    } else {
      sent->second = sent->second.Or(pv);
    }
    send_(tuple, pv);
  }
  pins_.clear();
}

size_t MinShip::StateSizeBytes() const {
  size_t bytes = 0;
  for (const auto& [tuple, pv] : bsent_) {
    bytes += tuple.WireSizeBytes() + pv.WireSizeBytes();
  }
  for (const auto& [tuple, pv] : pins_) {
    bytes += tuple.WireSizeBytes() + pv.WireSizeBytes();
  }
  return bytes;
}

}  // namespace recnet
