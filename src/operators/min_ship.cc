#include "operators/min_ship.h"

namespace recnet {

const char* ShipModeName(ShipMode mode) {
  switch (mode) {
    case ShipMode::kDirect:
      return "direct";
    case ShipMode::kEager:
      return "eager";
    case ShipMode::kLazy:
      return "lazy";
  }
  return "?";
}

MinShip::MinShip(ProvMode prov_mode, ShipMode ship_mode, size_t batch_window,
                 SendFn send, size_t demote_width)
    : prov_mode_(prov_mode),
      ship_mode_(ship_mode),
      batch_window_(batch_window),
      send_(std::move(send)),
      demote_width_(demote_width) {
  RECNET_CHECK(send_ != nullptr);
}

namespace {

// Live BDD nodes of an absorption annotation (0 for the other provenance
// modes, whose width never feeds the demotion policy). CountNodes is
// memoized per root in the manager, so repeated probes of a stable
// annotation are one hash lookup.
size_t AnnotationWidth(const Prov& pv) {
  if (pv.mode() != ProvMode::kAbsorption || pv.bdd().is_null()) return 0;
  return pv.bdd().CountNodes();
}

}  // namespace

void MinShip::ProcessInsert(const Tuple& tuple, const Prov& pv) {
  // One probe handles both the first-derivation and the merge path.
  auto [sent, is_new] = bsent_.try_emplace(tuple, pv);
  if (is_new) {
    // Algorithm 3 lines 11-13: first derivation ships right away.
    send_(tuple, pv);
  } else if (ship_mode_ == ShipMode::kDirect) {
    // Conventional Ship: forward every non-absorbed derivation.
    Prov merged = sent->second.Or(pv);
    if (!(merged == sent->second)) {
      sent->second = merged;
      send_(tuple, pv);
    }
  } else {
    // Lines 15-18: buffer unless already absorbed by what was shipped.
    Prov merged = sent->second.Or(pv);
    if (!(merged == sent->second)) {
      auto [it, inserted] = pins_.emplace(tuple, pv);
      if (!inserted) it->second = it->second.Or(pv);
      // Adaptive demotion: once this tuple's full annotation (shipped ∨
      // buffered) is wider than the ceiling, eager re-shipping of it each
      // batch window costs more Or-churn than its freshness is worth.
      // Drop to lazy until quiescence (FlushIfDemoted re-arms).
      if (ship_mode_ == ShipMode::kEager && demote_width_ > 0 && !demoted_ &&
          AnnotationWidth(merged) > demote_width_) {
        demoted_ = true;
        ++demotions_;
      }
    }
  }
  if (ship_mode_ == ShipMode::kEager && !demoted_ &&
      ++since_flush_ >= batch_window_) {
    Flush();
  }
}

void MinShip::ProcessKill(const std::vector<bdd::Var>& killed) {
  // Restrict the buffered (unshipped) derivations first (Algorithm 3
  // lines 20-25).
  for (auto it = pins_.begin(); it != pins_.end();) {
    Prov next = it->second.RestrictFalse(killed);
    if (next.IsFalse()) {
      it = pins_.erase(it);
    } else {
      it->second = next;
      ++it;
    }
  }
  // A shipped derivation that dies is replaced by a surviving buffered
  // alternative, shipped immediately so downstream can re-derive
  // (BatchShipLazy lines 6-12 applied at deletion time).
  for (auto it = bsent_.begin(); it != bsent_.end();) {
    Prov next = it->second.RestrictFalse(killed);
    if (!next.IsFalse()) {
      it->second = next;
      ++it;
      continue;
    }
    auto buffered = pins_.find(it->first);
    if (buffered != pins_.end()) {
      it->second = buffered->second;
      send_(it->first, buffered->second);
      pins_.erase(buffered);
      ++it;
    } else {
      it = bsent_.erase(it);
    }
  }
}

void MinShip::ProcessDelete(const Tuple& tuple) {
  bsent_.erase(tuple);
  pins_.erase(tuple);
}

bool MinShip::FlushIfDemoted() {
  if (!demoted_ || pins_.empty()) return false;
  // Quiescence: the insert storm that tripped the ceiling has drained.
  // Re-absorb the buffer against what was shipped — pins whose merged
  // annotation no longer adds anything over Bsent are dropped — but ship
  // nothing: forwarding the wide buffered derivations downstream seeds the
  // receiving joins with huge operands and re-ignites the Or-storm the
  // demotion exists to stop. The surviving pins keep lazy semantics (they
  // ship only when a kill promotes them). Demotion is sticky for the rest
  // of the run: annotation widths only grow, so re-arming eager mode just
  // thrashes demote/flush cycles.
  for (auto it = pins_.begin(); it != pins_.end();) {
    auto sent = bsent_.find(it->first);
    if (sent != bsent_.end() && sent->second.Or(it->second) == sent->second) {
      it = pins_.erase(it);
    } else {
      ++it;
    }
  }
  return false;
}

void MinShip::Flush() {
  since_flush_ = 0;
  for (auto& [tuple, pv] : pins_) {
    auto sent = bsent_.find(tuple);
    if (sent == bsent_.end()) {
      bsent_.emplace(tuple, pv);
    } else {
      sent->second = sent->second.Or(pv);
    }
    send_(tuple, pv);
  }
  pins_.clear();
}

size_t MinShip::StateSizeBytes() const {
  size_t bytes = 0;
  for (const auto& [tuple, pv] : bsent_) {
    bytes += tuple.WireSizeBytes() + pv.WireSizeBytes();
  }
  for (const auto& [tuple, pv] : pins_) {
    bytes += tuple.WireSizeBytes() + pv.WireSizeBytes();
  }
  return bytes;
}

}  // namespace recnet
