#include "operators/group_by.h"

#include "common/logging.h"

namespace recnet {
namespace {

double NumericOf(const Value& v) {
  return v.is_double() ? v.AsDouble() : static_cast<double>(v.AsInt());
}

}  // namespace

GroupByAggregate::GroupByAggregate(std::vector<size_t> group_cols,
                                   std::vector<GroupAggSpec> aggs)
    : group_cols_(std::move(group_cols)), aggs_(std::move(aggs)) {
  RECNET_CHECK(!aggs_.empty());
}

Tuple GroupByAggregate::GroupOf(const Tuple& t) const {
  Tuple::Values values;
  for (size_t i : group_cols_) values.push_back(t.at(i));
  return Tuple(std::move(values));
}

void GroupByAggregate::OnInsert(const Tuple& tuple) {
  GroupState& g = groups_[GroupOf(tuple)];
  if (g.values.empty()) {
    g.values.resize(aggs_.size());
    g.sum.assign(aggs_.size(), 0.0);
  }
  ++g.count;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (aggs_[i].fn == GroupAggFn::kCount) continue;
    double v = NumericOf(tuple.at(aggs_[i].value_col));
    g.values[i][v] += 1;
    g.sum[i] += v;
  }
}

void GroupByAggregate::OnDelete(const Tuple& tuple) {
  auto it = groups_.find(GroupOf(tuple));
  if (it == groups_.end()) return;
  GroupState& g = it->second;
  --g.count;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (aggs_[i].fn == GroupAggFn::kCount) continue;
    double v = NumericOf(tuple.at(aggs_[i].value_col));
    auto vit = g.values[i].find(v);
    RECNET_CHECK(vit != g.values[i].end());
    if (--vit->second == 0) g.values[i].erase(vit);
    g.sum[i] -= v;
  }
  if (g.count == 0) groups_.erase(it);
}

std::optional<std::vector<Value>> GroupByAggregate::Result(
    const Tuple& group) const {
  auto it = groups_.find(group);
  if (it == groups_.end()) return std::nullopt;
  const GroupState& g = it->second;
  std::vector<Value> out;
  out.reserve(aggs_.size());
  for (size_t i = 0; i < aggs_.size(); ++i) {
    switch (aggs_[i].fn) {
      case GroupAggFn::kMin:
        out.emplace_back(g.values[i].begin()->first);
        break;
      case GroupAggFn::kMax:
        out.emplace_back(g.values[i].rbegin()->first);
        break;
      case GroupAggFn::kCount:
        out.emplace_back(static_cast<int64_t>(g.count));
        break;
      case GroupAggFn::kSum:
        out.emplace_back(g.sum[i]);
        break;
    }
  }
  return out;
}

std::vector<Tuple> GroupByAggregate::Groups() const {
  std::vector<Tuple> out;
  out.reserve(groups_.size());
  for (const auto& [group, state] : groups_) out.push_back(group);
  return out;
}

size_t GroupByAggregate::StateSizeBytes() const {
  size_t bytes = 0;
  for (const auto& [group, g] : groups_) {
    bytes += group.WireSizeBytes() + 16;
    for (const auto& m : g.values) bytes += 12 * m.size();
  }
  return bytes;
}

}  // namespace recnet
