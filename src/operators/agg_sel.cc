#include "operators/agg_sel.h"

#include <algorithm>

namespace recnet {
namespace {

double NumericOf(const Value& v) {
  return v.is_double() ? v.AsDouble() : static_cast<double>(v.AsInt());
}

}  // namespace

AggSel::AggSel(ProvMode mode, std::vector<size_t> group_cols,
               std::vector<AggSpec> aggs)
    : mode_(mode), group_cols_(std::move(group_cols)), aggs_(std::move(aggs)) {
  RECNET_CHECK(!aggs_.empty());
}

Tuple AggSel::GroupOf(const Tuple& t) const {
  Tuple::Values values;
  for (size_t i : group_cols_) values.push_back(t.at(i));
  return Tuple(std::move(values));
}

bool AggSel::Better(const Tuple& a, const Tuple& b, size_t i) const {
  double va = NumericOf(a.at(aggs_[i].value_col));
  double vb = NumericOf(b.at(aggs_[i].value_col));
  return aggs_[i].fn == AggFn::kMin ? va < vb : va > vb;
}

std::optional<Tuple> AggSel::Rescan(const GroupState& g, size_t i) const {
  const Tuple* best = nullptr;
  for (const Tuple& t : g.members) {
    if (best == nullptr || Better(t, *best, i)) best = &t;
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::vector<Update> AggSel::ProcessInsert(const Tuple& tuple,
                                          const Prov& pv) {
  std::vector<Update> out;
  // Lines 7-12: update buffered state H and P.
  auto [pit, is_new] = prov_.emplace(tuple, pv);
  if (!is_new) {
    Prov merged = pit->second.Or(pv);
    if (merged == pit->second) return out;  // Line 13: provenance unchanged.
    pit->second = merged;
  }
  Tuple group = GroupOf(tuple);
  GroupState& g = groups_[group];
  if (g.best.empty()) g.best.resize(aggs_.size());
  if (is_new) g.members.push_back(tuple);

  // Lines 14-28: check each aggregate function.
  bool changed = false;
  std::vector<Tuple> displaced;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (!g.best[i].has_value()) {
      g.best[i] = tuple;
      changed = true;
    } else if (Better(tuple, *g.best[i], i)) {
      displaced.push_back(*g.best[i]);
      g.best[i] = tuple;
      changed = true;
    }
  }
  if (!changed) return out;  // Line 28: no aggregate affected; suppress.
  // Lines 20-25: retract displaced winners downstream — but only tuples
  // that are no longer the winner of *any* aggregate (a cost-displaced
  // tuple may still be the fewest-hops winner).
  for (const Tuple& d : displaced) {
    bool still_winning = false;
    for (const auto& b : g.best) {
      if (b.has_value() && *b == d) still_winning = true;
    }
    bool already_emitted = false;
    for (const Update& u : out) {
      if (u.type == UpdateType::kDelete && u.tuple == d) {
        already_emitted = true;
      }
    }
    if (!still_winning && !already_emitted) {
      out.push_back(Update::Delete(d));
    }
  }
  out.push_back(Update::Insert(tuple, pv));
  return out;
}

std::vector<Update> AggSel::ProcessDelete(const Tuple& tuple) {
  std::vector<Update> out;
  auto pit = prov_.find(tuple);
  if (pit == prov_.end()) return out;  // Line 30: unseen tuple; ignore.
  prov_.erase(pit);
  Tuple group = GroupOf(tuple);
  auto git = groups_.find(group);
  RECNET_CHECK(git != groups_.end());
  GroupState& g = git->second;
  g.members.erase(std::remove(g.members.begin(), g.members.end(), tuple),
                  g.members.end());

  // Lines 39-53: if the retracted tuple was a winner, promote a runner-up.
  bool changed = false;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (!g.best[i].has_value() || !(*g.best[i] == tuple)) continue;
    changed = true;
    g.best[i] = Rescan(g, i);
    if (g.best[i].has_value()) {
      out.push_back(Update::Insert(*g.best[i], prov_.at(*g.best[i])));
    }
  }
  if (g.members.empty()) groups_.erase(git);
  if (changed) out.push_back(Update::Delete(tuple));
  return out;
}

std::vector<Update> AggSel::ProcessKill(const std::vector<bdd::Var>& killed) {
  std::vector<Update> out;
  // Restrict every buffered annotation; collect tuples whose annotation
  // became false.
  std::vector<Tuple> dead;
  for (auto it = prov_.begin(); it != prov_.end();) {
    Prov next = it->second.RestrictFalse(killed);
    if (next.IsFalse()) {
      dead.push_back(it->first);
      it = prov_.erase(it);
    } else {
      it->second = next;
      ++it;
    }
  }
  // First prune every dead tuple from its group (rescanning too early
  // could elect another not-yet-pruned dead tuple as the new winner), then
  // re-elect winners per affected group.
  std::vector<Tuple> affected_groups;
  for (const Tuple& tuple : dead) {
    Tuple group = GroupOf(tuple);
    auto git = groups_.find(group);
    if (git == groups_.end()) continue;
    GroupState& g = git->second;
    g.members.erase(std::remove(g.members.begin(), g.members.end(), tuple),
                    g.members.end());
    for (size_t i = 0; i < aggs_.size(); ++i) {
      if (g.best[i].has_value() && *g.best[i] == tuple) {
        g.best[i].reset();
        affected_groups.push_back(group);
      }
    }
  }
  for (const Tuple& group : affected_groups) {
    auto git = groups_.find(group);
    if (git == groups_.end()) continue;
    GroupState& g = git->second;
    if (g.members.empty()) {
      groups_.erase(git);
      continue;
    }
    for (size_t i = 0; i < aggs_.size(); ++i) {
      if (g.best[i].has_value()) continue;
      g.best[i] = Rescan(g, i);
      if (g.best[i].has_value()) {
        // The dead winner disappears downstream via the same kill; only the
        // replacement needs to travel.
        out.push_back(Update::Insert(*g.best[i], prov_.at(*g.best[i])));
      }
    }
  }
  return out;
}

size_t AggSel::StateSizeBytes() const {
  size_t bytes = 0;
  for (const auto& [tuple, pv] : prov_) {
    bytes += tuple.WireSizeBytes() + pv.WireSizeBytes();
  }
  for (const auto& [group, g] : groups_) {
    bytes += group.WireSizeBytes() + 8 * g.best.size();
  }
  return bytes;
}

}  // namespace recnet
