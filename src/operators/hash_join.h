#ifndef RECNET_OPERATORS_HASH_JOIN_H_
#define RECNET_OPERATORS_HASH_JOIN_H_

#include <functional>
#include <vector>

#include "common/flat_table.h"
#include "common/status.h"
#include "operators/update.h"

namespace recnet {

namespace persist {
class SnapshotReader;
class SnapshotWriter;
}  // namespace persist

// The provenance-aware pipelined (symmetric) hash join of the paper's
// Algorithm 2.
//
// Both inputs are stored: hash tables h{L,R} index tuples by join key, and
// provenance tables p{L,R} map each distinct tuple to its merged annotation.
// An insertion on one side probes the other side and emits joined tuples
// whose annotation is the AND of the incoming *delta* provenance and the
// stored annotation of the match (HalfPipeIns line 12).
//
// Deletions:
//  * Set mode (DRed) retracts an exact tuple and emits retractions of all
//    join results it participated in (HalfPipeDel).
//  * Provenance modes restrict killed base variables across both sides'
//    stored annotations (the join's part of "zeroing out" a deleted base
//    tuple); downstream operators restrict their own state when the kill
//    reaches them, so no per-result messages are needed.
class PipelinedHashJoin {
 public:
  enum Side { kLeft = 0, kRight = 1 };

  using CombineFn = std::function<Tuple(const Tuple& left, const Tuple& right)>;

  // `left_key` / `right_key` are attribute positions forming the join key.
  PipelinedHashJoin(ProvMode mode, std::vector<size_t> left_key,
                    std::vector<size_t> right_key, CombineFn combine);

  // Pre-sizes both sides' hash tables for the expected stored tuple count
  // per side (derived from topology size) instead of growing from empty.
  void Reserve(size_t expected_per_side);

  // Inserts (tuple, delta_pv) on `side`; returns joined insertions.
  std::vector<Update> ProcessInsert(Side side, const Tuple& tuple,
                                    const Prov& delta_pv);

  // Set-mode retraction on `side`; returns joined retractions.
  std::vector<Update> ProcessDelete(Side side, const Tuple& tuple);

  // Restricts killed variables across both sides; drops dead entries.
  void ProcessKill(const std::vector<bdd::Var>& killed);

  // Re-emits the join results of `tuple` (which must be present on `side`)
  // without changing state. DRed's re-derivation phase uses this to re-fire
  // rule bodies over surviving tuples (paper Figure 5, steps 5-8).
  std::vector<Update> Refire(Side side, const Tuple& tuple) const;

  bool Contains(Side side, const Tuple& tuple) const;
  size_t StateSizeBytes() const;
  size_t size(Side side) const { return side_[side].prov.size(); }

  // All tuples currently stored on `side` (used by re-derivation sweeps).
  std::vector<Tuple> TuplesOn(Side side) const;

  // Snapshot round-trip of both sides' index and provenance tables (the key
  // column config is reconstructed by the constructor). Preserves table and
  // per-key row order, so post-restore probes emit matches in the same
  // order. LoadState requires an empty operator.
  void SaveState(persist::SnapshotWriter& w) const;
  Status LoadState(persist::SnapshotReader& r);

 private:
  struct SideState {
    std::vector<size_t> key;
    // Join key -> distinct tuples with that key.
    FlatTable<Tuple, std::vector<Tuple>, TupleHash> index;
    // Tuple -> merged provenance.
    FlatTable<Tuple, Prov, TupleHash> prov;
  };

  Tuple KeyOf(const SideState& s, const Tuple& t) const;
  void RemoveFromIndex(SideState* s, const Tuple& t);
  std::vector<Update> Probe(Side probe_side, const Tuple& tuple,
                            const Prov& pv, UpdateType out_type) const;

  ProvMode mode_;
  CombineFn combine_;
  SideState side_[2];
};

}  // namespace recnet

#endif  // RECNET_OPERATORS_HASH_JOIN_H_
