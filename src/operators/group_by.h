#ifndef RECNET_OPERATORS_GROUP_BY_H_
#define RECNET_OPERATORS_GROUP_BY_H_

#include <map>
#include <optional>
#include <vector>

#include "common/flat_table.h"
#include "common/status.h"
#include "common/value.h"

namespace recnet {

namespace persist {
class SnapshotReader;
class SnapshotWriter;
}  // namespace persist

// Aggregate function of the final (windowed) group-by computation that the
// paper layers on top of recursive views (minCost, regionSizes,
// largestRegion...). AVERAGE is derivable from SUM and COUNT as the paper
// notes (§6, footnote 3).
enum class GroupAggFn { kMin, kMax, kCount, kSum };

struct GroupAggSpec {
  GroupAggFn fn;
  // Attribute aggregated over; ignored for kCount.
  size_t value_col = 0;
};

// GroupByAggregate maintains MIN/MAX/COUNT/SUM per group under a stream of
// tuple-level insertions and deletions (revisions), the "final aggregation
// computation done at the end" of the paper's split aggregate scheme (§6).
//
// Each distinct tuple contributes once (set semantics; callers feed it from
// view-level membership changes). Deleting a group's extreme value falls
// back to the next value, which is why full value multisets are kept.
class GroupByAggregate {
 public:
  GroupByAggregate(std::vector<size_t> group_cols,
                   std::vector<GroupAggSpec> aggs);

  // Pre-sizes the group table for the expected number of groups (derived
  // from topology size) instead of growing from empty.
  void Reserve(size_t expected_groups) { groups_.reserve(expected_groups); }

  void OnInsert(const Tuple& tuple);
  void OnDelete(const Tuple& tuple);

  // Current aggregate values for `group` (one per spec), or nullopt if the
  // group is empty.
  std::optional<std::vector<Value>> Result(const Tuple& group) const;

  // All non-empty groups.
  std::vector<Tuple> Groups() const;

  size_t StateSizeBytes() const;

  // Snapshot round-trip of the group table (value multisets and running
  // accumulators). LoadState requires an empty operator.
  void SaveState(persist::SnapshotWriter& w) const;
  Status LoadState(persist::SnapshotReader& r);

 private:
  struct GroupState {
    // Per aggregate: ordered multiset of contributing values (value ->
    // multiplicity). MIN/MAX read the ends; SUM/COUNT use the running
    // accumulators below.
    std::vector<std::map<double, int>> values;
    std::vector<double> sum;
    int64_t count = 0;
  };

  Tuple GroupOf(const Tuple& t) const;

  std::vector<size_t> group_cols_;
  std::vector<GroupAggSpec> aggs_;
  FlatTable<Tuple, GroupState, TupleHash> groups_;
};

}  // namespace recnet

#endif  // RECNET_OPERATORS_GROUP_BY_H_
