#ifndef RECNET_OPERATORS_UPDATE_H_
#define RECNET_OPERATORS_UPDATE_H_

#include <string>
#include <vector>

#include "common/value.h"
#include "provenance/prov.h"

namespace recnet {

// The kind of an update flowing through the stream query plan (paper §3.1:
// inputs are streams of insertions and deletions over base data).
enum class UpdateType {
  // A tuple insertion (or an additional derivation of an existing tuple)
  // annotated with provenance.
  kInsert,
  // A retraction of a specific tuple. Used by set-semantics maintenance
  // (DRed's over-deletion phase) and by aggregate selection when a group's
  // winning tuple is displaced (Algorithm 4 lines 20-23).
  kDelete,
  // A base-tuple deletion in the provenance models: carries the set of base
  // variables being zeroed out. Every provenance-bearing operator restricts
  // these variables to false across its state (paper §4: "zero out p4 in
  // the provenance expressions of all reachable tuples").
  kKill,
};

// One element of an update stream.
struct Update {
  UpdateType type = UpdateType::kInsert;
  Tuple tuple;                    // kInsert / kDelete
  Prov pv;                        // kInsert
  std::vector<bdd::Var> killed;   // kKill

  static Update Insert(Tuple t, Prov pv) {
    Update u;
    u.type = UpdateType::kInsert;
    u.tuple = std::move(t);
    u.pv = std::move(pv);
    return u;
  }
  static Update Delete(Tuple t) {
    Update u;
    u.type = UpdateType::kDelete;
    u.tuple = std::move(t);
    return u;
  }
  static Update Kill(std::vector<bdd::Var> killed) {
    Update u;
    u.type = UpdateType::kKill;
    u.killed = std::move(killed);
    return u;
  }

  // Wire size when shipped between physical peers: header + tuple values +
  // provenance annotation (+ killed variable list). Backs the paper's
  // communication-overhead and per-tuple-provenance metrics.
  size_t WireSizeBytes() const;

  std::string ToString() const;
};

}  // namespace recnet

#endif  // RECNET_OPERATORS_UPDATE_H_
