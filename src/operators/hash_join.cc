#include "operators/hash_join.h"

#include <algorithm>

namespace recnet {

PipelinedHashJoin::PipelinedHashJoin(ProvMode mode,
                                     std::vector<size_t> left_key,
                                     std::vector<size_t> right_key,
                                     CombineFn combine)
    : mode_(mode), combine_(std::move(combine)) {
  side_[kLeft].key = std::move(left_key);
  side_[kRight].key = std::move(right_key);
  RECNET_CHECK_EQ(side_[kLeft].key.size(), side_[kRight].key.size());
}

void PipelinedHashJoin::Reserve(size_t expected_per_side) {
  for (SideState& s : side_) {
    s.index.reserve(expected_per_side);
    s.prov.reserve(expected_per_side);
  }
}

Tuple PipelinedHashJoin::KeyOf(const SideState& s, const Tuple& t) const {
  Tuple::Values key_values;
  for (size_t i : s.key) key_values.push_back(t.at(i));
  return Tuple(std::move(key_values));
}

std::vector<Update> PipelinedHashJoin::Probe(Side probe_side,
                                             const Tuple& tuple,
                                             const Prov& pv,
                                             UpdateType out_type) const {
  // Probe the *other* side with this tuple's key.
  Side self = probe_side;
  Side other = (self == kLeft) ? kRight : kLeft;
  std::vector<Update> out;
  Tuple key = KeyOf(side_[self], tuple);
  auto it = side_[other].index.find(key);
  if (it == side_[other].index.end()) return out;
  out.reserve(it->second.size());  // At most one update per match.
  for (const Tuple& match : it->second) {
    const Prov& match_pv = side_[other].prov.at(match);
    Tuple joined = (self == kLeft) ? combine_(tuple, match)
                                   : combine_(match, tuple);
    if (out_type == UpdateType::kInsert) {
      // HalfPipeIns line 12: u'.pv = u.pv ∧ pj[t].
      Prov joined_pv = pv.And(match_pv);
      if (joined_pv.IsFalse()) continue;
      out.push_back(Update::Insert(std::move(joined), std::move(joined_pv)));
    } else {
      out.push_back(Update::Delete(std::move(joined)));
    }
  }
  return out;
}

std::vector<Update> PipelinedHashJoin::ProcessInsert(Side side,
                                                     const Tuple& tuple,
                                                     const Prov& delta_pv) {
  SideState& s = side_[side];
  auto [it, is_new] = s.prov.try_emplace(tuple, delta_pv);
  if (is_new) {
    // HalfPipeIns lines 2-4: new tuple; index it under its join key.
    s.index[KeyOf(s, tuple)].push_back(tuple);
    return Probe(side, tuple, delta_pv, UpdateType::kInsert);
  }
  // HalfPipeIns line 6: merge provenance; only a changed annotation
  // produces output (line 8).
  Prov merged = it->second.Or(delta_pv);
  if (merged == it->second) return {};
  it->second = merged;
  return Probe(side, tuple, delta_pv, UpdateType::kInsert);
}

std::vector<Update> PipelinedHashJoin::ProcessDelete(Side side,
                                                     const Tuple& tuple) {
  // Tuple-level deletion, used by DRed's over-deletion cascade (kSet) and
  // by the shortest-path runtime's retraction stream in the provenance
  // modes (aggregate selection displaces exact tuples; base-variable death
  // goes through ProcessKill instead).
  SideState& s = side_[side];
  auto it = s.prov.find(tuple);
  if (it == s.prov.end()) return {};
  s.prov.erase(it);
  RemoveFromIndex(&s, tuple);
  // HalfPipeDel lines 9-16: cascade retractions of all join results.
  return Probe(side, tuple, Prov::True(mode_, nullptr), UpdateType::kDelete);
}

void PipelinedHashJoin::ProcessKill(const std::vector<bdd::Var>& killed) {
  for (SideState& s : side_) {
    for (auto it = s.prov.begin(); it != s.prov.end();) {
      Prov next = it->second.RestrictFalse(killed);
      if (next.IsFalse()) {
        Tuple dead = it->first;
        it = s.prov.erase(it);
        RemoveFromIndex(&s, dead);
        continue;
      }
      it->second = next;
      ++it;
    }
  }
}

std::vector<Update> PipelinedHashJoin::Refire(Side side,
                                              const Tuple& tuple) const {
  auto it = side_[side].prov.find(tuple);
  if (it == side_[side].prov.end()) return {};
  return Probe(side, tuple, it->second, UpdateType::kInsert);
}

bool PipelinedHashJoin::Contains(Side side, const Tuple& tuple) const {
  return side_[side].prov.find(tuple) != side_[side].prov.end();
}

void PipelinedHashJoin::RemoveFromIndex(SideState* s, const Tuple& t) {
  auto idx = s->index.find(KeyOf(*s, t));
  RECNET_CHECK(idx != s->index.end());
  auto& bucket = idx->second;
  bucket.erase(std::remove(bucket.begin(), bucket.end(), t), bucket.end());
  if (bucket.empty()) s->index.erase(idx);
}

size_t PipelinedHashJoin::StateSizeBytes() const {
  size_t bytes = 0;
  for (const SideState& s : side_) {
    for (const auto& [tuple, pv] : s.prov) {
      bytes += tuple.WireSizeBytes() + pv.WireSizeBytes();
    }
  }
  return bytes;
}

std::vector<Tuple> PipelinedHashJoin::TuplesOn(Side side) const {
  std::vector<Tuple> out;
  out.reserve(side_[side].prov.size());
  for (const auto& [tuple, pv] : side_[side].prov) out.push_back(tuple);
  return out;
}

}  // namespace recnet
