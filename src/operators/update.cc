#include "operators/update.h"

namespace recnet {

size_t Update::WireSizeBytes() const {
  size_t bytes = 16;  // Message header: type, relation id, lengths.
  switch (type) {
    case UpdateType::kInsert:
      bytes += tuple.WireSizeBytes() + pv.WireSizeBytes();
      break;
    case UpdateType::kDelete:
      bytes += tuple.WireSizeBytes();
      break;
    case UpdateType::kKill:
      bytes += 4 * killed.size();
      break;
  }
  return bytes;
}

std::string Update::ToString() const {
  switch (type) {
    case UpdateType::kInsert:
      return "+" + tuple.ToString() + "@" + pv.ToString();
    case UpdateType::kDelete:
      return "-" + tuple.ToString();
    case UpdateType::kKill: {
      std::string out = "kill{";
      for (size_t i = 0; i < killed.size(); ++i) {
        if (i > 0) out += ",";
        out += "p" + std::to_string(killed[i]);
      }
      return out + "}";
    }
  }
  return "?";
}

}  // namespace recnet
