// Snapshot round-trips for the stateful operators. Kept in one translation
// unit so the operator headers stay free of the persistence layer: each
// SaveState writes the operator's tables in iteration order and each
// LoadState re-inserts in an order that reproduces the container layout,
// because post-restore trajectories must be bit-identical and iteration
// order feeds back into message order (MinShip flushes, join probes) and
// absorption results.

#include <utility>
#include <vector>

#include "operators/agg_sel.h"
#include "operators/fixpoint.h"
#include "operators/group_by.h"
#include "operators/hash_join.h"
#include "operators/min_ship.h"
#include "persist/codec.h"

namespace recnet {

void Fixpoint::SaveState(persist::SnapshotWriter& w) const {
  w.raw().U64(view_.size());
  for (const auto& [tuple, pv] : view_) {
    w.PutTuple(tuple);
    w.PutProv(pv);
  }
}

Status Fixpoint::LoadState(persist::SnapshotReader& r) {
  RECNET_CHECK(view_.empty());
  uint64_t n = r.raw().Count(3);
  view_.reserve(n);
  for (uint64_t i = 0; i < n && r.raw().ok(); ++i) {
    Tuple tuple = r.GetTuple();
    Prov pv = r.GetProv();
    view_.try_emplace(tuple, std::move(pv));
  }
  return r.Check("fixpoint state");
}

void PipelinedHashJoin::SaveState(persist::SnapshotWriter& w) const {
  for (const SideState& s : side_) {
    w.raw().U64(s.index.size());
    for (const auto& [key, rows] : s.index) {
      w.PutTuple(key);
      w.raw().U32(static_cast<uint32_t>(rows.size()));
      for (const Tuple& row : rows) w.PutTuple(row);
    }
    w.raw().U64(s.prov.size());
    for (const auto& [tuple, pv] : s.prov) {
      w.PutTuple(tuple);
      w.PutProv(pv);
    }
  }
}

Status PipelinedHashJoin::LoadState(persist::SnapshotReader& r) {
  for (SideState& s : side_) {
    RECNET_CHECK(s.index.empty() && s.prov.empty());
    uint64_t nkeys = r.raw().Count(3);
    s.index.reserve(nkeys);
    for (uint64_t i = 0; i < nkeys && r.raw().ok(); ++i) {
      Tuple key = r.GetTuple();
      uint32_t nrows = r.raw().U32();
      if (!r.raw().CanRead(nrows)) break;
      std::vector<Tuple>& rows = s.index[key];
      rows.reserve(nrows);
      for (uint32_t j = 0; j < nrows; ++j) rows.push_back(r.GetTuple());
    }
    uint64_t nprov = r.raw().Count(3);
    s.prov.reserve(nprov);
    for (uint64_t i = 0; i < nprov && r.raw().ok(); ++i) {
      Tuple tuple = r.GetTuple();
      Prov pv = r.GetProv();
      s.prov.try_emplace(tuple, std::move(pv));
    }
  }
  return r.Check("hash-join state");
}

void MinShip::SaveState(persist::SnapshotWriter& w) const {
  w.raw().U64(since_flush_);
  // Demotion state (snapshot v3+): a micro-checkpoint can land while the
  // operator is demoted mid-drain, and recovery must resume with the same
  // policy state for the replayed trajectory to stay bit-identical.
  w.raw().Bool(demoted_);
  w.raw().U64(demotions_);
  w.raw().U64(bsent_.size());
  for (const auto& [tuple, pv] : bsent_) {
    w.PutTuple(tuple);
    w.PutProv(pv);
  }
  w.raw().U64(pins_.bucket_count());
  w.raw().U64(pins_.size());
  for (const auto& [tuple, pv] : pins_) {
    w.PutTuple(tuple);
    w.PutProv(pv);
  }
}

Status MinShip::LoadState(persist::SnapshotReader& r) {
  RECNET_CHECK(bsent_.empty() && pins_.empty());
  since_flush_ = static_cast<size_t>(r.raw().U64());
  if (r.version() >= 3) {
    demoted_ = r.raw().Bool();
    demotions_ = r.raw().U64();
  }
  uint64_t nsent = r.raw().Count(3);
  bsent_.reserve(nsent);
  for (uint64_t i = 0; i < nsent && r.raw().ok(); ++i) {
    Tuple tuple = r.GetTuple();
    Prov pv = r.GetProv();
    bsent_.try_emplace(tuple, std::move(pv));
  }
  // Pins lives on a node-based map whose iteration order is observable (the
  // eager Flush ships in it, ProcessKill promotes in it). libstdc++ chains
  // all nodes on one list segmented by bucket and *prepends* on insert, so
  // inserting the saved sequence in reverse, into the saved bucket layout,
  // reconstructs the exact order: each insert puts its node in front of the
  // nodes of its bucket inserted after it — which are exactly the ones that
  // followed it in the saved order.
  uint64_t buckets = r.raw().U64();
  uint64_t npins = r.raw().Count(3);
  std::vector<std::pair<Tuple, Prov>> saved;
  saved.reserve(npins);
  for (uint64_t i = 0; i < npins && r.raw().ok(); ++i) {
    Tuple tuple = r.GetTuple();
    Prov pv = r.GetProv();
    saved.emplace_back(std::move(tuple), std::move(pv));
  }
  RECNET_RETURN_IF_ERROR(r.Check("min-ship state"));
  pins_.rehash(static_cast<size_t>(buckets));
  for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
    pins_.emplace(std::move(it->first), std::move(it->second));
  }
  return Status::OK();
}

void AggSel::SaveState(persist::SnapshotWriter& w) const {
  w.raw().U64(groups_.size());
  for (const auto& [group, state] : groups_) {
    w.PutTuple(group);
    w.raw().U32(static_cast<uint32_t>(state.members.size()));
    for (const Tuple& m : state.members) w.PutTuple(m);
    w.raw().U32(static_cast<uint32_t>(state.best.size()));
    for (const std::optional<Tuple>& b : state.best) {
      w.raw().Bool(b.has_value());
      if (b.has_value()) w.PutTuple(*b);
    }
  }
  w.raw().U64(prov_.size());
  for (const auto& [tuple, pv] : prov_) {
    w.PutTuple(tuple);
    w.PutProv(pv);
  }
}

Status AggSel::LoadState(persist::SnapshotReader& r) {
  RECNET_CHECK(groups_.empty() && prov_.empty());
  uint64_t ngroups = r.raw().Count(3);
  groups_.reserve(ngroups);
  for (uint64_t i = 0; i < ngroups && r.raw().ok(); ++i) {
    Tuple group = r.GetTuple();
    GroupState& state = groups_[group];
    uint32_t nmembers = r.raw().U32();
    if (!r.raw().CanRead(nmembers)) break;
    state.members.reserve(nmembers);
    for (uint32_t j = 0; j < nmembers; ++j) {
      state.members.push_back(r.GetTuple());
    }
    uint32_t nbest = r.raw().U32();
    if (!r.raw().CanRead(nbest)) break;
    state.best.reserve(nbest);
    for (uint32_t j = 0; j < nbest; ++j) {
      if (r.raw().Bool()) {
        state.best.emplace_back(r.GetTuple());
      } else {
        state.best.emplace_back(std::nullopt);
      }
    }
  }
  uint64_t nprov = r.raw().Count(3);
  prov_.reserve(nprov);
  for (uint64_t i = 0; i < nprov && r.raw().ok(); ++i) {
    Tuple tuple = r.GetTuple();
    Prov pv = r.GetProv();
    prov_.try_emplace(tuple, std::move(pv));
  }
  return r.Check("agg-sel state");
}

void GroupByAggregate::SaveState(persist::SnapshotWriter& w) const {
  w.raw().U64(groups_.size());
  for (const auto& [group, state] : groups_) {
    w.PutTuple(group);
    w.raw().U32(static_cast<uint32_t>(state.values.size()));
    for (const std::map<double, int>& multiset : state.values) {
      w.raw().U32(static_cast<uint32_t>(multiset.size()));
      for (const auto& [value, mult] : multiset) {
        w.raw().F64(value);
        w.raw().I32(mult);
      }
    }
    w.raw().U32(static_cast<uint32_t>(state.sum.size()));
    for (double s : state.sum) w.raw().F64(s);
    w.raw().I64(state.count);
  }
}

Status GroupByAggregate::LoadState(persist::SnapshotReader& r) {
  RECNET_CHECK(groups_.empty());
  uint64_t ngroups = r.raw().Count(3);
  groups_.reserve(ngroups);
  for (uint64_t i = 0; i < ngroups && r.raw().ok(); ++i) {
    Tuple group = r.GetTuple();
    GroupState& state = groups_[group];
    uint32_t nvalues = r.raw().U32();
    if (!r.raw().CanRead(nvalues)) break;
    state.values.resize(nvalues);
    for (uint32_t j = 0; j < nvalues; ++j) {
      uint32_t nentries = r.raw().U32();
      if (!r.raw().CanRead(static_cast<size_t>(nentries) * 12)) break;
      for (uint32_t k = 0; k < nentries; ++k) {
        double value = r.raw().F64();
        int mult = r.raw().I32();
        state.values[j].emplace(value, mult);
      }
    }
    uint32_t nsums = r.raw().U32();
    if (!r.raw().CanRead(static_cast<size_t>(nsums) * 8)) break;
    state.sum.reserve(nsums);
    for (uint32_t j = 0; j < nsums; ++j) state.sum.push_back(r.raw().F64());
    state.count = r.raw().I64();
  }
  return r.Check("group-by state");
}

}  // namespace recnet
