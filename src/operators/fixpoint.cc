#include "operators/fixpoint.h"

namespace recnet {

std::optional<Prov> Fixpoint::ProcessInsert(const Tuple& tuple,
                                            const Prov& pv, bool* is_new) {
  if (is_new != nullptr) *is_new = false;
  if (pv.IsFalse()) return std::nullopt;
  // Single probe with one hash computation covers both the first-derivation
  // and the merge path.
  auto [it, inserted] = view_.try_emplace(tuple, pv);
  if (inserted) {
    // Algorithm 1 lines 12-15: first derivation; store and propagate as-is.
    if (is_new != nullptr) *is_new = true;
    return pv;
  }
  // Algorithm 1 lines 17-25: merge and propagate the non-absorbed delta.
  Prov old_pv = it->second;
  if (pv == old_pv) return std::nullopt;  // Trivially absorbed.
  Prov merged = old_pv.Or(pv);
  if (merged == old_pv) return std::nullopt;  // Fully absorbed.
  it->second = merged;
  // deltaPv = newPv ∧ ¬oldPv (line 19). Since newPv = oldPv ∨ pv, this
  // equals pv ∧ ¬oldPv — the same canonical function computed over the
  // (usually much smaller) incoming annotation instead of the merged one.
  return pv.DeltaOver(old_pv);
}

Fixpoint::KillResult Fixpoint::ProcessKill(
    const std::vector<bdd::Var>& killed) {
  KillResult result;
  for (auto it = view_.begin(); it != view_.end();) {
    Prov next = it->second.RestrictFalse(killed);
    if (next.IsFalse()) {
      result.removed.push_back(it->first);
      result.changed = true;
      it = view_.erase(it);
      continue;
    }
    if (!(next == it->second)) {
      result.changed = true;
      it->second = next;
    }
    ++it;
  }
  return result;
}

bool Fixpoint::ProcessDelete(const Tuple& tuple) {
  return view_.erase(tuple) > 0;
}

const Prov* Fixpoint::Lookup(const Tuple& tuple) const {
  auto it = view_.find(tuple);
  return it == view_.end() ? nullptr : &it->second;
}

size_t Fixpoint::StateSizeBytes() const {
  size_t bytes = 0;
  for (const auto& [tuple, pv] : view_) {
    bytes += tuple.WireSizeBytes() + pv.WireSizeBytes();
  }
  return bytes;
}

}  // namespace recnet
