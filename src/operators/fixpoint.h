#ifndef RECNET_OPERATORS_FIXPOINT_H_
#define RECNET_OPERATORS_FIXPOINT_H_

#include <optional>
#include <vector>

#include "common/flat_table.h"
#include "common/status.h"
#include "operators/update.h"

namespace recnet {

namespace persist {
class SnapshotReader;
class SnapshotWriter;
}  // namespace persist

// The Fixpoint operator (paper Algorithm 1).
//
// Maintains the hash map P: tuple -> absorption provenance for one partition
// of a recursive view, merges every incoming derivation with OR, and reports
// the provenance *delta* that must be propagated to the recursive subplan.
// The recursion reaches fixpoint when no update changes any stored
// annotation (paper §4.2), which the caller observes as a sequence of
// ProcessInsert calls that all return nullopt.
//
// Deletions:
//  * Provenance modes use ProcessKill: every stored annotation has the
//    killed base variables restricted to false; annotations that become
//    false leave the view (Algorithm 1 lines 27-35).
//  * Set mode (DRed) uses ProcessDelete, which removes the exact tuple
//    (the over-deletion phase retracts tuples one by one).
class Fixpoint {
 public:
  explicit Fixpoint(ProvMode mode) : mode_(mode) {}

  ProvMode mode() const { return mode_; }

  // Pre-sizes the view table for an expected partition cardinality (derived
  // from topology size), avoiding rehash cascades on the insert hot path.
  void Reserve(size_t expected_tuples) { view_.reserve(expected_tuples); }

  // Handles an insertion u = (tuple, pv). Returns the delta provenance to
  // propagate (the whole pv for a first derivation; newPv ∧ ¬oldPv for a
  // merged one), or nullopt when the new derivation was fully absorbed.
  // `is_new` (optional) reports whether the tuple entered the view, saving
  // callers a second table probe.
  std::optional<Prov> ProcessInsert(const Tuple& tuple, const Prov& pv,
                                    bool* is_new = nullptr);

  struct KillResult {
    // Tuples whose provenance became false and were removed from the view.
    std::vector<Tuple> removed;
    // Whether any stored annotation changed at all.
    bool changed = false;
  };

  // Zeroes out `killed` base variables across all stored annotations.
  KillResult ProcessKill(const std::vector<bdd::Var>& killed);

  // Set-mode retraction. Returns true if the tuple was present (and is now
  // removed), i.e. the retraction must cascade.
  bool ProcessDelete(const Tuple& tuple);

  bool Contains(const Tuple& tuple) const { return view_.contains(tuple); }
  const Prov* Lookup(const Tuple& tuple) const;

  const FlatTable<Tuple, Prov, TupleHash>& contents() const { return view_; }
  size_t size() const { return view_.size(); }

  // Bytes of operator state (tuples + annotations); backs the paper's
  // "state within operators" metric.
  size_t StateSizeBytes() const;

  // Snapshot round-trip. Entries are stored and re-inserted in iteration
  // order, which reproduces the table's dense layout exactly — later
  // operations (and hence the whole post-restore trajectory) see identical
  // iteration order. LoadState requires an empty operator.
  void SaveState(persist::SnapshotWriter& w) const;
  Status LoadState(persist::SnapshotReader& r);

 private:
  ProvMode mode_;
  FlatTable<Tuple, Prov, TupleHash> view_;
};

}  // namespace recnet

#endif  // RECNET_OPERATORS_FIXPOINT_H_
