// Invalidation coverage for the QueryRuntime scan caches and lookup
// indexes: cached Scan / Lookup results must reflect Apply batches,
// deletions, and soft-state TTL expiry across all three runtimes
// (reachable, shortest path, region).

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "topology/sensor_grid.h"

namespace recnet {
namespace {

constexpr char kReachable[] = R"(
  reachable(x,y) :- link(x,y).
  reachable(x,y) :- link(x,z), reachable(z,y).
  fanout(x,count<y>) :- reachable(x,y).
)";

constexpr char kShortestPath[] = R"(
  path(x,y,c) :- link(x,y,c).
  path(x,y,c) :- link(x,z,c), path(z,y,c2).
  minCost(x,y,min<c>) :- path(x,y,c).
)";

constexpr char kRegion[] = R"(
  activeRegion(r,x) :- seed(r,x), triggered(x).
  activeRegion(r,y) :- activeRegion(r,x), triggered(x), near(x,y).
  regionSizes(r,count<x>) :- activeRegion(r,x).
)";

EngineOptions GraphOptions(int num_nodes, ProvMode prov) {
  EngineOptions options;
  options.num_nodes = num_nodes;
  options.runtime.prov = prov;
  options.runtime.num_physical = 4;
  return options;
}

class ScanCacheProvTest : public ::testing::TestWithParam<ProvMode> {};

INSTANTIATE_TEST_SUITE_P(AllProvModes, ScanCacheProvTest,
                         ::testing::Values(ProvMode::kAbsorption,
                                           ProvMode::kRelative,
                                           ProvMode::kSet),
                         [](const ::testing::TestParamInfo<ProvMode>& info) {
                           return ProvModeName(info.param);
                         });

TEST_P(ScanCacheProvTest, ReachableScanReflectsApplyBatches) {
  auto engine = Engine::Compile(kReachable, GraphOptions(5, GetParam()));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(e.Insert("link", {1, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());

  // Repeated reads hit the materialized cache and agree with each other.
  auto first = e.Scan("reachable");
  ASSERT_TRUE(first.ok());
  auto second = e.Scan("reachable");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(first->size(), 3u);  // (0,1) (0,2) (1,2).
  EXPECT_TRUE(*e.Contains("reachable", {0, 2}));

  // A new Apply batch must show up in subsequent scans and lookups.
  ASSERT_TRUE(e.Insert("link", {2, 3}).ok());
  ASSERT_TRUE(e.Insert("link", {3, 4}).ok());
  ASSERT_TRUE(e.Apply().ok());
  auto grown = e.Scan("reachable");
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown->size(), 10u);  // Full chain closure over 5 nodes.
  EXPECT_TRUE(*e.Contains("reachable", {0, 4}));

  // Deletion invalidates both the scan rows and the lookup index.
  ASSERT_TRUE(e.Delete("link", {1, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_FALSE(*e.Contains("reachable", {0, 2}));
  EXPECT_FALSE(*e.Contains("reachable", {0, 4}));
  auto shrunk = e.Scan("reachable");
  ASSERT_TRUE(shrunk.ok());
  EXPECT_LT(shrunk->size(), grown->size());
}

TEST_P(ScanCacheProvTest, AggregateViewCacheInvalidates) {
  auto engine = Engine::Compile(kReachable, GraphOptions(4, GetParam()));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(e.Insert("link", {0, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());

  auto fanout = e.Lookup("fanout", {0});
  ASSERT_TRUE(fanout.ok());
  EXPECT_EQ(fanout->IntAt(1), 2);

  ASSERT_TRUE(e.Insert("link", {0, 3}).ok());
  ASSERT_TRUE(e.Apply().ok());
  fanout = e.Lookup("fanout", {0});
  ASSERT_TRUE(fanout.ok());
  EXPECT_EQ(fanout->IntAt(1), 3);

  ASSERT_TRUE(e.Delete("link", {0, 1}).ok());
  ASSERT_TRUE(e.Delete("link", {0, 2}).ok());
  ASSERT_TRUE(e.Delete("link", {0, 3}).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_FALSE(e.Lookup("fanout", {0}).ok());
}

TEST_P(ScanCacheProvTest, TtlExpiryInvalidatesCachedScans) {
  auto engine = Engine::Compile(kReachable, GraphOptions(4, GetParam()));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(e.InsertWithTtl("link", Tuple::OfInts({1, 2}), 5.0).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_TRUE(*e.Contains("reachable", {0, 2}));
  auto before = e.Scan("reachable");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 3u);

  // Advancing past the deadline expires the soft-state link; the expiry is
  // an ordinary deletion and must purge the cached scan and lookup index.
  ASSERT_TRUE(e.AdvanceTime(6.0).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_FALSE(*e.Contains("reachable", {0, 2}));
  EXPECT_FALSE(*e.Contains("reachable", {1, 2}));
  auto after = e.Scan("reachable");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 1u);  // Only (0,1) survives.
}

TEST(ScanCacheTest, ShortestPathLookupTracksDeletions) {
  auto engine =
      Engine::Compile(kShortestPath, GraphOptions(4, ProvMode::kAbsorption));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("link", {0, 1, 1.0}).ok());
  ASSERT_TRUE(e.Insert("link", {1, 2, 1.0}).ok());
  ASSERT_TRUE(e.Insert("link", {0, 2, 5.0}).ok());
  ASSERT_TRUE(e.Apply().ok());

  auto cost = e.Lookup("minCost", {0, 2});
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(cost->DoubleAt(2), 2.0);

  // Deleting the cheap relay must re-route lookups through the direct link.
  ASSERT_TRUE(e.Delete("link", {1, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());
  cost = e.Lookup("minCost", {0, 2});
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(cost->DoubleAt(2), 5.0);

  ASSERT_TRUE(e.Delete("link", {0, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_FALSE(e.Lookup("minCost", {0, 2}).ok());
}

TEST(ScanCacheTest, LookupIndexNormalizesNumericKeys) {
  auto engine =
      Engine::Compile(kShortestPath, GraphOptions(3, ProvMode::kAbsorption));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("link", {0, 1, 2.5}).ok());
  ASSERT_TRUE(e.Apply().ok());

  // The aggregate view stores (int, int, double); probing the hash index
  // with double-typed key columns must still hit (numeric normalization).
  auto by_double = e.Lookup("minCost", Tuple({Value(0.0), Value(1.0)}));
  ASSERT_TRUE(by_double.ok()) << by_double.status().ToString();
  EXPECT_DOUBLE_EQ(by_double->DoubleAt(2), 2.5);
  auto by_int = e.Lookup("minCost", Tuple::OfInts({0, 1}));
  ASSERT_TRUE(by_int.ok());
  EXPECT_EQ(*by_double, *by_int);
}

// The incremental patch path (cached rows + indexes updated from run
// deltas) must be indistinguishable from a fresh engine that materializes
// its caches from scratch at every step — across maintenance strategies,
// for the recursive and the aggregate view, for scans and indexed lookups.
TEST_P(ScanCacheProvTest, IncrementalPatchMatchesFreshEngine) {
  const int n = 6;
  auto cached = Engine::Compile(kReachable, GraphOptions(n, GetParam()));
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  // `fresh` replays the same ops but is re-compiled before every read, so
  // its caches are always built by a full ScanView sweep.
  std::vector<std::pair<bool, std::pair<int, int>>> ops = {
      {true, {0, 1}},  {true, {1, 2}},  {true, {2, 3}},  {true, {3, 0}},
      {false, {1, 2}}, {true, {1, 4}},  {true, {4, 5}},  {false, {0, 1}},
      {true, {0, 2}},  {false, {2, 3}}, {true, {2, 3}},  {false, {4, 5}},
  };
  std::vector<std::pair<bool, std::pair<int, int>>> applied;
  for (const auto& op : ops) {
    applied.push_back(op);
    Engine& c = **cached;
    if (op.first) {
      ASSERT_TRUE(c.Insert("link", {double(op.second.first),
                                    double(op.second.second)}).ok());
    } else {
      ASSERT_TRUE(c.Delete("link", {double(op.second.first),
                                    double(op.second.second)}).ok());
    }
    ASSERT_TRUE(c.Apply().ok());

    auto fresh = Engine::Compile(kReachable, GraphOptions(n, GetParam()));
    ASSERT_TRUE(fresh.ok());
    for (const auto& past : applied) {
      // Apply per op, like the cached engine above (DRed requires each
      // deletion's over-delete/re-derive cycle to run in isolation).
      if (past.first) {
        ASSERT_TRUE((*fresh)->Insert("link", {double(past.second.first),
                                              double(past.second.second)}).ok());
      } else {
        ASSERT_TRUE((*fresh)->Delete("link", {double(past.second.first),
                                              double(past.second.second)}).ok());
      }
      ASSERT_TRUE((*fresh)->Apply().ok());
    }

    for (const char* view : {"reachable", "fanout"}) {
      auto got = c.Scan(view);
      auto want = (*fresh)->Scan(view);
      ASSERT_TRUE(got.ok() && want.ok()) << view;
      EXPECT_EQ(*got, *want) << view << " after op " << applied.size();
    }
    // Indexed lookups agree entry-for-entry with the fresh engine.
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < n; ++dst) {
        auto got = c.Contains("reachable", {double(src), double(dst)});
        auto want = (*fresh)->Contains("reachable", {double(src), double(dst)});
        ASSERT_TRUE(got.ok() && want.ok());
        EXPECT_EQ(*got, *want) << src << "->" << dst;
      }
      auto got = c.Lookup("fanout", {double(src)});
      auto want = (*fresh)->Lookup("fanout", {double(src)});
      ASSERT_EQ(got.ok(), want.ok()) << "fanout " << src;
      if (got.ok()) {
        EXPECT_EQ(*got, *want);
      }
    }
  }
}

// Same equivalence for the shortest-path adapter's min-cost projection,
// whose deltas are recomputed per affected (src, dst) pair.
TEST(ScanCacheTest, ShortestPathIncrementalPatchMatchesFreshEngine) {
  const int n = 5;
  auto cached =
      Engine::Compile(kShortestPath, GraphOptions(n, ProvMode::kAbsorption));
  ASSERT_TRUE(cached.ok());
  std::vector<std::pair<bool, std::vector<double>>> ops = {
      {true, {0, 1, 1.0}}, {true, {1, 2, 1.0}}, {true, {0, 2, 5.0}},
      {true, {2, 3, 2.0}}, {false, {1, 2}},     {true, {1, 2, 0.5}},
      {true, {3, 4, 1.0}}, {false, {0, 2}},
  };
  std::vector<std::pair<bool, std::vector<double>>> applied;
  for (const auto& op : ops) {
    applied.push_back(op);
    Engine& c = **cached;
    Status st = op.first
                    ? c.Insert("link",
                               Tuple({Value(static_cast<int64_t>(op.second[0])),
                                      Value(static_cast<int64_t>(op.second[1])),
                                      Value(op.second[2])}))
                    : c.Delete("link", Tuple::OfInts(
                          {static_cast<int64_t>(op.second[0]),
                           static_cast<int64_t>(op.second[1])}));
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_TRUE(c.Apply().ok());

    auto fresh =
        Engine::Compile(kShortestPath, GraphOptions(n, ProvMode::kAbsorption));
    ASSERT_TRUE(fresh.ok());
    for (const auto& past : applied) {
      Status pst =
          past.first
              ? (*fresh)->Insert(
                    "link",
                    Tuple({Value(static_cast<int64_t>(past.second[0])),
                           Value(static_cast<int64_t>(past.second[1])),
                           Value(past.second[2])}))
              : (*fresh)->Delete("link", Tuple::OfInts(
                    {static_cast<int64_t>(past.second[0]),
                     static_cast<int64_t>(past.second[1])}));
      ASSERT_TRUE(pst.ok());
      ASSERT_TRUE((*fresh)->Apply().ok());
    }

    for (const char* view : {"path", "minCost"}) {
      auto got = c.Scan(view);
      auto want = (*fresh)->Scan(view);
      ASSERT_TRUE(got.ok() && want.ok()) << view;
      EXPECT_EQ(*got, *want) << view << " after op " << applied.size();
    }
  }
}

// Same equivalence for the region adapter, replaying trigger/untrigger
// sequences (kills, re-derivations, and relative-mode underivability
// sweeps all flow through the delta log) across maintenance strategies.
TEST_P(ScanCacheProvTest, RegionIncrementalPatchMatchesFreshEngine) {
  SensorGridOptions grid;
  grid.grid_dim = 4;
  grid.num_seeds = 2;
  grid.seed = 11;
  EngineOptions options;
  options.field = MakeSensorGrid(grid);
  options.runtime.prov = GetParam();
  options.runtime.num_physical = 4;

  auto cached = Engine::Compile(kRegion, options);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  int seed0 = options.field->seed_sensors[0];
  int seed1 = options.field->seed_sensors[1];
  const auto& nbrs = options.field->neighbors[static_cast<size_t>(seed0)];
  // Trigger both seeds and a neighborhood, then untrigger parts of it.
  std::vector<std::pair<bool, int>> ops = {{true, seed0}, {true, seed1}};
  for (int nb : nbrs) ops.emplace_back(true, nb);
  ops.emplace_back(false, seed0);
  ops.emplace_back(true, seed0);
  if (!nbrs.empty()) ops.emplace_back(false, nbrs[0]);
  ops.emplace_back(false, seed1);

  std::vector<std::pair<bool, int>> applied;
  for (const auto& op : ops) {
    applied.push_back(op);
    Engine& c = **cached;
    Status st = op.first ? c.Insert("triggered", {double(op.second)})
                         : c.Delete("triggered", {double(op.second)});
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_TRUE(c.Apply().ok());

    auto fresh = Engine::Compile(kRegion, options);
    ASSERT_TRUE(fresh.ok());
    for (const auto& past : applied) {
      Status pst = past.first
                       ? (*fresh)->Insert("triggered", {double(past.second)})
                       : (*fresh)->Delete("triggered", {double(past.second)});
      ASSERT_TRUE(pst.ok());
      ASSERT_TRUE((*fresh)->Apply().ok());
    }

    for (const char* view : {"activeRegion", "regionSizes"}) {
      auto got = c.Scan(view);
      auto want = (*fresh)->Scan(view);
      ASSERT_TRUE(got.ok() && want.ok()) << view;
      EXPECT_EQ(*got, *want)
          << view << " after op " << applied.size() << " ("
          << ProvModeName(GetParam()) << ")";
    }
    auto got0 = c.Lookup("regionSizes", {0});
    auto want0 = (*fresh)->Lookup("regionSizes", {0});
    ASSERT_EQ(got0.ok(), want0.ok());
    if (got0.ok()) {
      EXPECT_EQ(*got0, *want0);
    }
  }
}

TEST(ScanCacheTest, RegionScansTrackTriggerChanges) {
  SensorGridOptions grid;
  grid.grid_dim = 4;
  grid.num_seeds = 2;
  grid.seed = 7;
  EngineOptions options;
  options.field = MakeSensorGrid(grid);
  options.runtime.prov = ProvMode::kAbsorption;
  options.runtime.num_physical = 4;

  auto engine = Engine::Compile(kRegion, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  int seed0 = options.field->seed_sensors[0];
  ASSERT_TRUE(e.Insert("triggered", {double(seed0)}).ok());
  ASSERT_TRUE(e.Apply().ok());

  auto members = e.Scan("activeRegion");
  ASSERT_TRUE(members.ok());
  size_t seed_only = members->size();
  EXPECT_GE(seed_only, 1u);
  auto size0 = e.Lookup("regionSizes", {0});
  ASSERT_TRUE(size0.ok());

  // Triggering the neighborhood grows the cached region view.
  for (int nb : options.field->neighbors[static_cast<size_t>(seed0)]) {
    ASSERT_TRUE(e.Insert("triggered", {double(nb)}).ok());
  }
  ASSERT_TRUE(e.Apply().ok());
  members = e.Scan("activeRegion");
  ASSERT_TRUE(members.ok());
  EXPECT_GT(members->size(), seed_only);
  auto grown0 = e.Lookup("regionSizes", {0});
  ASSERT_TRUE(grown0.ok());
  EXPECT_GT(grown0->IntAt(1), size0->IntAt(1));

  // Untriggering everything empties the cached view and its index.
  ASSERT_TRUE(e.Delete("triggered", {double(seed0)}).ok());
  for (int nb : options.field->neighbors[static_cast<size_t>(seed0)]) {
    ASSERT_TRUE(e.Delete("triggered", {double(nb)}).ok());
  }
  ASSERT_TRUE(e.Apply().ok());
  auto emptied = e.Scan("activeRegion");
  ASSERT_TRUE(emptied.ok());
  EXPECT_TRUE(emptied->empty());
  EXPECT_FALSE(e.Lookup("regionSizes", {0}).ok());
}

}  // namespace
}  // namespace recnet
