// Invalidation coverage for the QueryRuntime scan caches and lookup
// indexes: cached Scan / Lookup results must reflect Apply batches,
// deletions, and soft-state TTL expiry across all three runtimes
// (reachable, shortest path, region).

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "topology/sensor_grid.h"

namespace recnet {
namespace {

constexpr char kReachable[] = R"(
  reachable(x,y) :- link(x,y).
  reachable(x,y) :- link(x,z), reachable(z,y).
  fanout(x,count<y>) :- reachable(x,y).
)";

constexpr char kShortestPath[] = R"(
  path(x,y,c) :- link(x,y,c).
  path(x,y,c) :- link(x,z,c), path(z,y,c2).
  minCost(x,y,min<c>) :- path(x,y,c).
)";

constexpr char kRegion[] = R"(
  activeRegion(r,x) :- seed(r,x), triggered(x).
  activeRegion(r,y) :- activeRegion(r,x), triggered(x), near(x,y).
  regionSizes(r,count<x>) :- activeRegion(r,x).
)";

EngineOptions GraphOptions(int num_nodes, ProvMode prov) {
  EngineOptions options;
  options.num_nodes = num_nodes;
  options.runtime.prov = prov;
  options.runtime.num_physical = 4;
  return options;
}

class ScanCacheProvTest : public ::testing::TestWithParam<ProvMode> {};

INSTANTIATE_TEST_SUITE_P(AllProvModes, ScanCacheProvTest,
                         ::testing::Values(ProvMode::kAbsorption,
                                           ProvMode::kRelative,
                                           ProvMode::kSet),
                         [](const ::testing::TestParamInfo<ProvMode>& info) {
                           return ProvModeName(info.param);
                         });

TEST_P(ScanCacheProvTest, ReachableScanReflectsApplyBatches) {
  auto engine = Engine::Compile(kReachable, GraphOptions(5, GetParam()));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(e.Insert("link", {1, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());

  // Repeated reads hit the materialized cache and agree with each other.
  auto first = e.Scan("reachable");
  ASSERT_TRUE(first.ok());
  auto second = e.Scan("reachable");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(first->size(), 3u);  // (0,1) (0,2) (1,2).
  EXPECT_TRUE(*e.Contains("reachable", {0, 2}));

  // A new Apply batch must show up in subsequent scans and lookups.
  ASSERT_TRUE(e.Insert("link", {2, 3}).ok());
  ASSERT_TRUE(e.Insert("link", {3, 4}).ok());
  ASSERT_TRUE(e.Apply().ok());
  auto grown = e.Scan("reachable");
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown->size(), 10u);  // Full chain closure over 5 nodes.
  EXPECT_TRUE(*e.Contains("reachable", {0, 4}));

  // Deletion invalidates both the scan rows and the lookup index.
  ASSERT_TRUE(e.Delete("link", {1, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_FALSE(*e.Contains("reachable", {0, 2}));
  EXPECT_FALSE(*e.Contains("reachable", {0, 4}));
  auto shrunk = e.Scan("reachable");
  ASSERT_TRUE(shrunk.ok());
  EXPECT_LT(shrunk->size(), grown->size());
}

TEST_P(ScanCacheProvTest, AggregateViewCacheInvalidates) {
  auto engine = Engine::Compile(kReachable, GraphOptions(4, GetParam()));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(e.Insert("link", {0, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());

  auto fanout = e.Lookup("fanout", {0});
  ASSERT_TRUE(fanout.ok());
  EXPECT_EQ(fanout->IntAt(1), 2);

  ASSERT_TRUE(e.Insert("link", {0, 3}).ok());
  ASSERT_TRUE(e.Apply().ok());
  fanout = e.Lookup("fanout", {0});
  ASSERT_TRUE(fanout.ok());
  EXPECT_EQ(fanout->IntAt(1), 3);

  ASSERT_TRUE(e.Delete("link", {0, 1}).ok());
  ASSERT_TRUE(e.Delete("link", {0, 2}).ok());
  ASSERT_TRUE(e.Delete("link", {0, 3}).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_FALSE(e.Lookup("fanout", {0}).ok());
}

TEST_P(ScanCacheProvTest, TtlExpiryInvalidatesCachedScans) {
  auto engine = Engine::Compile(kReachable, GraphOptions(4, GetParam()));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(e.InsertWithTtl("link", Tuple::OfInts({1, 2}), 5.0).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_TRUE(*e.Contains("reachable", {0, 2}));
  auto before = e.Scan("reachable");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 3u);

  // Advancing past the deadline expires the soft-state link; the expiry is
  // an ordinary deletion and must purge the cached scan and lookup index.
  ASSERT_TRUE(e.AdvanceTime(6.0).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_FALSE(*e.Contains("reachable", {0, 2}));
  EXPECT_FALSE(*e.Contains("reachable", {1, 2}));
  auto after = e.Scan("reachable");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 1u);  // Only (0,1) survives.
}

TEST(ScanCacheTest, ShortestPathLookupTracksDeletions) {
  auto engine =
      Engine::Compile(kShortestPath, GraphOptions(4, ProvMode::kAbsorption));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("link", {0, 1, 1.0}).ok());
  ASSERT_TRUE(e.Insert("link", {1, 2, 1.0}).ok());
  ASSERT_TRUE(e.Insert("link", {0, 2, 5.0}).ok());
  ASSERT_TRUE(e.Apply().ok());

  auto cost = e.Lookup("minCost", {0, 2});
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(cost->DoubleAt(2), 2.0);

  // Deleting the cheap relay must re-route lookups through the direct link.
  ASSERT_TRUE(e.Delete("link", {1, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());
  cost = e.Lookup("minCost", {0, 2});
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(cost->DoubleAt(2), 5.0);

  ASSERT_TRUE(e.Delete("link", {0, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_FALSE(e.Lookup("minCost", {0, 2}).ok());
}

TEST(ScanCacheTest, LookupIndexNormalizesNumericKeys) {
  auto engine =
      Engine::Compile(kShortestPath, GraphOptions(3, ProvMode::kAbsorption));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("link", {0, 1, 2.5}).ok());
  ASSERT_TRUE(e.Apply().ok());

  // The aggregate view stores (int, int, double); probing the hash index
  // with double-typed key columns must still hit (numeric normalization).
  auto by_double = e.Lookup("minCost", Tuple({Value(0.0), Value(1.0)}));
  ASSERT_TRUE(by_double.ok()) << by_double.status().ToString();
  EXPECT_DOUBLE_EQ(by_double->DoubleAt(2), 2.5);
  auto by_int = e.Lookup("minCost", Tuple::OfInts({0, 1}));
  ASSERT_TRUE(by_int.ok());
  EXPECT_EQ(*by_double, *by_int);
}

TEST(ScanCacheTest, RegionScansTrackTriggerChanges) {
  SensorGridOptions grid;
  grid.grid_dim = 4;
  grid.num_seeds = 2;
  grid.seed = 7;
  EngineOptions options;
  options.field = MakeSensorGrid(grid);
  options.runtime.prov = ProvMode::kAbsorption;
  options.runtime.num_physical = 4;

  auto engine = Engine::Compile(kRegion, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  int seed0 = options.field->seed_sensors[0];
  ASSERT_TRUE(e.Insert("triggered", {double(seed0)}).ok());
  ASSERT_TRUE(e.Apply().ok());

  auto members = e.Scan("activeRegion");
  ASSERT_TRUE(members.ok());
  size_t seed_only = members->size();
  EXPECT_GE(seed_only, 1u);
  auto size0 = e.Lookup("regionSizes", {0});
  ASSERT_TRUE(size0.ok());

  // Triggering the neighborhood grows the cached region view.
  for (int nb : options.field->neighbors[static_cast<size_t>(seed0)]) {
    ASSERT_TRUE(e.Insert("triggered", {double(nb)}).ok());
  }
  ASSERT_TRUE(e.Apply().ok());
  members = e.Scan("activeRegion");
  ASSERT_TRUE(members.ok());
  EXPECT_GT(members->size(), seed_only);
  auto grown0 = e.Lookup("regionSizes", {0});
  ASSERT_TRUE(grown0.ok());
  EXPECT_GT(grown0->IntAt(1), size0->IntAt(1));

  // Untriggering everything empties the cached view and its index.
  ASSERT_TRUE(e.Delete("triggered", {double(seed0)}).ok());
  for (int nb : options.field->neighbors[static_cast<size_t>(seed0)]) {
    ASSERT_TRUE(e.Delete("triggered", {double(nb)}).ok());
  }
  ASSERT_TRUE(e.Apply().ok());
  auto emptied = e.Scan("activeRegion");
  ASSERT_TRUE(emptied.ok());
  EXPECT_TRUE(emptied->empty());
  EXPECT_FALSE(e.Lookup("regionSizes", {0}).ok());
}

}  // namespace
}  // namespace recnet
