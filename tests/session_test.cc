// Multi-view Session coverage: several compiled programs co-resident on one
// router + BDD manager + shared EDB store must behave exactly like isolated
// Engine instances (bit-identical per-view message/kill counters and scan
// results), shared EDBs must fan out to every declaring view (including
// programs added later), the node-id space must grow on demand, and the
// region deployment must be derivable from ground facts.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/session.h"
#include "topology/sensor_grid.h"

namespace recnet {
namespace {

constexpr char kReachable[] = R"(
  reachable(x,y) :- edge(x,y).
  reachable(x,y) :- edge(x,z), reachable(z,y).
  fanout(x,count<y>) :- reachable(x,y).
)";

constexpr char kShortestPath[] = R"(
  path(x,y,c) :- link(x,y,c).
  path(x,y,c) :- link(x,z,c), path(z,y,c2).
  minCost(x,y,min<c>) :- path(x,y,c).
)";

constexpr char kRegion[] = R"(
  activeRegion(r,x) :- seed(r,x), triggered(x).
  activeRegion(r,y) :- activeRegion(r,x), triggered(x), near(x,y).
  regionSizes(r,count<x>) :- activeRegion(r,x).
)";

constexpr int kNodes = 16;  // Grid 4x4 sensors == graph nodes.

EngineOptions GraphOptions(ProvMode prov) {
  EngineOptions options;
  options.num_nodes = kNodes;
  options.runtime.prov = prov;
  options.runtime.num_physical = 4;
  return options;
}

EngineOptions RegionOptions(const SensorField& field, ProvMode prov) {
  EngineOptions options;
  options.field = field;
  options.runtime.prov = prov;
  options.runtime.num_physical = 4;
  return options;
}

SensorField TestField() {
  SensorGridOptions grid;
  grid.grid_dim = 4;
  grid.num_seeds = 2;
  grid.seed = 7;
  return MakeSensorGrid(grid);
}

SessionOptions SharedOptions() {
  SessionOptions options;
  options.num_nodes = kNodes;
  options.num_physical = 4;
  return options;
}

// One step of the equivalence workload: the same mutation stream applied to
// a view (session side) or an engine (isolated side).
struct GraphOp {
  bool insert;
  int src, dst;
  double cost;  // Shortest-path workload only.
};

std::vector<GraphOp> EdgeOps(bool deletes) {
  std::vector<GraphOp> ops;
  for (int i = 0; i < kNodes; ++i) {
    ops.push_back({true, i, (i + 1) % kNodes, 0});
    if (i % 3 == 0) ops.push_back({true, i, (i + 5) % kNodes, 0});
  }
  if (deletes) {
    ops.push_back({false, 2, 3, 0});
    ops.push_back({false, 0, 5, 0});
    ops.push_back({false, 15, 0, 0});
  }
  return ops;
}

std::vector<GraphOp> LinkOps(bool deletes) {
  std::vector<GraphOp> ops;
  for (int i = 0; i < kNodes; ++i) {
    ops.push_back({true, i, (i + 1) % kNodes, 1.0 + i % 3});
  }
  ops.push_back({true, 0, 7, 9.5});
  ops.push_back({true, 7, 0, 2.5});
  if (deletes) {
    ops.push_back({false, 3, 4, 0});
    ops.push_back({false, 0, 7, 0});
  }
  return ops;
}

class SessionEquivalenceTest : public ::testing::TestWithParam<ProvMode> {};

INSTANTIATE_TEST_SUITE_P(AllProvModes, SessionEquivalenceTest,
                         ::testing::Values(ProvMode::kAbsorption,
                                           ProvMode::kRelative,
                                           ProvMode::kSet),
                         [](const ::testing::TestParamInfo<ProvMode>& info) {
                           return ProvModeName(info.param);
                         });

// The ISSUE-4 acceptance bar: a session hosting reachable + shortest-path +
// region views produces bit-identical per-view message/kill counters and
// scan results vs. three isolated Engine instances on the same topology.
// (The shortest-path view joins under absorption only — its runtime's
// contract — so the other modes run the two-view variant.)
TEST_P(SessionEquivalenceTest, SharedSubstrateMatchesIsolatedEngines) {
  ProvMode prov = GetParam();
  SensorField field = TestField();
  bool with_paths = prov == ProvMode::kAbsorption;

  // --- Isolated baselines --------------------------------------------------
  auto reach_engine = Engine::Compile(kReachable, GraphOptions(prov));
  ASSERT_TRUE(reach_engine.ok()) << reach_engine.status().ToString();
  auto region_engine = Engine::Compile(kRegion, RegionOptions(field, prov));
  ASSERT_TRUE(region_engine.ok()) << region_engine.status().ToString();
  StatusOr<std::unique_ptr<Engine>> path_engine =
      Engine::Compile(kShortestPath, GraphOptions(prov));
  if (with_paths) {
    ASSERT_TRUE(path_engine.ok()) << path_engine.status().ToString();
  }

  // --- One shared session --------------------------------------------------
  Session session(SharedOptions());
  auto reach_view = session.AddProgram(kReachable, GraphOptions(prov));
  ASSERT_TRUE(reach_view.ok()) << reach_view.status().ToString();
  View* path_view = nullptr;
  if (with_paths) {
    auto added = session.AddProgram(kShortestPath, GraphOptions(prov));
    ASSERT_TRUE(added.ok()) << added.status().ToString();
    path_view = added.value();
  }
  auto region_view = session.AddProgram(kRegion, RegionOptions(field, prov));
  ASSERT_TRUE(region_view.ok()) << region_view.status().ToString();
  EXPECT_EQ(session.num_views(), with_paths ? 3u : 2u);

  int seed0 = field.seed_sensors[0];
  const auto& nbrs = field.neighbors[static_cast<size_t>(seed0)];

  auto run_phase = [&](bool deletes) {
    // Same per-view mutation order on both sides; the session interleaves
    // the enqueues of all views on one FIFO.
    for (const GraphOp& op : EdgeOps(deletes)) {
      if (!op.insert && !deletes) continue;
      Status iso = op.insert
                       ? (*reach_engine)->Insert("edge", {double(op.src),
                                                          double(op.dst)})
                       : (*reach_engine)->Delete("edge", {double(op.src),
                                                          double(op.dst)});
      Status shared = op.insert
                          ? session.Insert("edge", {double(op.src),
                                                    double(op.dst)})
                          : session.Delete("edge", {double(op.src),
                                                    double(op.dst)});
      ASSERT_TRUE(iso.ok()) << iso.ToString();
      ASSERT_TRUE(shared.ok()) << shared.ToString();
    }
    if (with_paths) {
      for (const GraphOp& op : LinkOps(deletes)) {
        Status iso, shared;
        if (op.insert) {
          Tuple link({Value(static_cast<int64_t>(op.src)),
                      Value(static_cast<int64_t>(op.dst)), Value(op.cost)});
          iso = (*path_engine)->Insert("link", link);
          shared = session.Insert("link", link);
        } else {
          Tuple key = Tuple::OfInts({op.src, op.dst});
          iso = (*path_engine)->Delete("link", key);
          shared = session.Delete("link", key);
        }
        ASSERT_TRUE(iso.ok()) << iso.ToString();
        ASSERT_TRUE(shared.ok()) << shared.ToString();
      }
    }
    if (!deletes) {
      ASSERT_TRUE((*region_engine)->Insert("triggered", {double(seed0)}).ok());
      ASSERT_TRUE(session.Insert("triggered", {double(seed0)}).ok());
      for (int nb : nbrs) {
        ASSERT_TRUE((*region_engine)->Insert("triggered", {double(nb)}).ok());
        ASSERT_TRUE(session.Insert("triggered", {double(nb)}).ok());
      }
    } else {
      ASSERT_TRUE((*region_engine)->Delete("triggered", {double(seed0)}).ok());
      ASSERT_TRUE(session.Delete("triggered", {double(seed0)}).ok());
    }

    // Isolated engines converge one by one; the session converges all views
    // in one shared drain.
    ASSERT_TRUE((*reach_engine)->Apply().ok());
    if (with_paths) {
      ASSERT_TRUE((*path_engine)->Apply().ok());
    }
    ASSERT_TRUE((*region_engine)->Apply().ok());
    ASSERT_TRUE(session.Apply().ok());
  };

  auto expect_equivalent = [&](const char* phase) {
    struct Pair {
      Engine* isolated;
      View* view;
      std::vector<std::string> views;
    };
    std::vector<Pair> pairs = {
        {reach_engine->get(), reach_view.value(), {"reachable", "fanout"}},
        {region_engine->get(), region_view.value(),
         {"activeRegion", "regionSizes"}},
    };
    if (with_paths) {
      pairs.push_back({path_engine->get(), path_view, {"path", "minCost"}});
    }
    for (const Pair& pair : pairs) {
      RunMetrics iso = pair.isolated->Metrics();
      RunMetrics shared = pair.view->Metrics();
      EXPECT_EQ(iso.messages, shared.messages)
          << phase << " " << pair.views[0];
      EXPECT_EQ(iso.kill_messages, shared.kill_messages)
          << phase << " " << pair.views[0];
      EXPECT_TRUE(shared.converged);
      for (const std::string& name : pair.views) {
        auto want = pair.isolated->Scan(name);
        auto got = pair.view->Scan(name);
        ASSERT_TRUE(want.ok() && got.ok()) << phase << " " << name;
        EXPECT_EQ(*got, *want) << phase << " " << name;
      }
    }
  };

  run_phase(/*deletes=*/false);
  expect_equivalent("insert-phase");
  run_phase(/*deletes=*/true);
  expect_equivalent("delete-phase");
}

TEST(SessionTest, SharedEdbFansOutAndReplaysIntoLatePrograms) {
  Session session(SessionOptions{4, 4, true});
  auto reach = session.AddProgram(R"(
    reachable(x,y) :- link(x,y).
    reachable(x,y) :- link(x,z), reachable(z,y).
  )", {});
  ASSERT_TRUE(reach.ok()) << reach.status().ToString();
  auto span = session.AddProgram(R"(
    span(x,y) :- link(x,y).
    span(x,y) :- span(x,z), link(z,y).
  )", {});
  ASSERT_TRUE(span.ok()) << span.status().ToString();

  // One insert feeds every view declaring `link`.
  ASSERT_TRUE(session.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(session.Insert("link", {1, 2}).ok());
  ASSERT_TRUE(session.Apply().ok());
  EXPECT_TRUE(*(*reach)->Contains("reachable", {0, 2}));
  EXPECT_TRUE(*(*span)->Contains("span", {0, 2}));

  // A program added later starts from the shared EDB: the session's live
  // link facts are replayed into it.
  auto hop = session.AddProgram(R"(
    hop(x,y) :- link(x,y).
    hop(x,y) :- link(x,z), hop(z,y).
  )", {});
  ASSERT_TRUE(hop.ok()) << hop.status().ToString();
  ASSERT_TRUE(session.Apply().ok());
  EXPECT_TRUE(*(*hop)->Contains("hop", {0, 2}));

  // Shared deletion contracts all three views in one fixpoint.
  ASSERT_TRUE(session.Delete("link", {1, 2}).ok());
  ASSERT_TRUE(session.Apply().ok());
  EXPECT_FALSE(*(*reach)->Contains("reachable", {0, 2}));
  EXPECT_FALSE(*(*span)->Contains("span", {0, 2}));
  EXPECT_FALSE(*(*hop)->Contains("hop", {0, 2}));
}

TEST(SessionTest, GroundFactsOfOneProgramReachCoResidentViews) {
  Session session(SessionOptions{3, 3, true});
  auto reach = session.AddProgram(R"(
    reachable(x,y) :- link(x,y).
    reachable(x,y) :- link(x,z), reachable(z,y).
  )", {});
  ASSERT_TRUE(reach.ok());
  // The second program carries the ground facts; both views see them.
  auto span = session.AddProgram(R"(
    span(x,y) :- link(x,y).
    span(x,y) :- span(x,z), link(z,y).
    link(0,1). link(1,2).
  )", {});
  ASSERT_TRUE(span.ok()) << span.status().ToString();
  ASSERT_TRUE(session.Apply().ok());
  EXPECT_TRUE(*(*reach)->Contains("reachable", {0, 2}));
  EXPECT_TRUE(*(*span)->Contains("span", {0, 2}));
}

TEST(SessionTest, ConflictingRelationSchemasAreRejected) {
  Session session(SessionOptions{4, 4, true});
  ASSERT_TRUE(session.AddProgram(R"(
    reachable(x,y) :- link(x,y).
    reachable(x,y) :- link(x,z), reachable(z,y).
  )", {}).ok());
  // `link` is already declared with arity 2; a shortest-path program would
  // ingest 3-column links through the same name.
  auto conflict = session.AddProgram(kShortestPath, {});
  EXPECT_EQ(conflict.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.num_views(), 1u);
}

TEST(SessionTest, LateFactsGrowAllGraphViewsTogether) {
  Session session(SessionOptions{3, 4, true});
  auto reach = session.AddProgram(R"(
    reachable(x,y) :- edge(x,y).
    reachable(x,y) :- edge(x,z), reachable(z,y).
  )", {});
  ASSERT_TRUE(reach.ok());
  EngineOptions path_options;
  auto path = session.AddProgram(kShortestPath, path_options);
  ASSERT_TRUE(path.ok()) << path.status().ToString();

  // A late edge extends the shared node-id space; the co-resident path view
  // accepts links on the new nodes without recompilation.
  ASSERT_TRUE(session.Insert("edge", {0, 9}).ok());
  EXPECT_EQ(session.num_nodes(), 10);
  ASSERT_TRUE(session.Insert("link", {9, 0, 2.0}).ok());
  ASSERT_TRUE(session.Apply().ok());
  EXPECT_TRUE(*(*reach)->Contains("reachable", {0, 9}));
  auto cost = (*path)->Lookup("minCost", {9, 0});
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_DOUBLE_EQ(cost->DoubleAt(2), 2.0);

  // Explicit growth is also available.
  EXPECT_EQ(session.AddNode(), 10);
  EXPECT_EQ(session.num_nodes(), 11);
}

TEST(SessionTest, ApplyPatchesEveryViewsLiveCaches) {
  Session session(SessionOptions{4, 4, true});
  auto reach = session.AddProgram(R"(
    reachable(x,y) :- link(x,y).
    reachable(x,y) :- link(x,z), reachable(z,y).
  )", {});
  auto span = session.AddProgram(R"(
    span(x,y) :- link(x,y).
    span(x,y) :- span(x,z), link(z,y).
  )", {});
  ASSERT_TRUE(reach.ok() && span.ok());
  ASSERT_TRUE(session.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(session.Apply().ok());

  // Materialize both views' caches, then mutate through ONE view's Apply:
  // the session must arm and patch every co-resident cache, not just the
  // initiator's.
  EXPECT_EQ((*reach)->Scan("reachable")->size(), 1u);
  EXPECT_EQ((*span)->Scan("span")->size(), 1u);
  ASSERT_TRUE(session.Insert("link", {1, 2}).ok());
  ASSERT_TRUE((*reach)->Apply().ok());
  EXPECT_EQ((*reach)->Scan("reachable")->size(), 3u);
  EXPECT_EQ((*span)->Scan("span")->size(), 3u);
  EXPECT_TRUE(*(*span)->Contains("span", {0, 2}));
}

TEST(SessionTest, FailedAddProgramLeavesSessionUsable) {
  Session session(SessionOptions{4, 4, true});
  auto reach = session.AddProgram(R"(
    reachable(x,y) :- link(x,y).
    reachable(x,y) :- link(x,z), reachable(z,y).
  )", {});
  ASSERT_TRUE(reach.ok());
  // The second program's first ground fact fans out to the live view
  // before the second fact fails validation; the failed view's
  // registration and queued traffic must be fully retracted.
  auto bad = session.AddProgram(R"(
    span(x,y) :- link(x,y).
    span(x,y) :- span(x,z), link(z,y).
    link(0,1). link(0,1.5).
  )", {});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.num_views(), 1u);
  ASSERT_TRUE(session.Apply().ok());  // Must not dispatch into a dead view.
  EXPECT_TRUE(*(*reach)->Contains("reachable", {0, 1}));
}

TEST(SessionTest, NodeIdSpaceIsBounded) {
  auto engine = Engine::Compile(R"(
    reachable(x,y) :- link(x,y).
    reachable(x,y) :- link(x,z), reachable(z,y).
  )", {});
  ASSERT_TRUE(engine.ok());
  Engine& e = **engine;
  // Absurd ids are typed errors, not allocations (node state is dense).
  EXPECT_EQ(e.Insert("link", {0, 4e9}).code(), StatusCode::kOutOfRange);
  // Deleting a fact on an unknown node is a no-op that must NOT grow the
  // topology (the fact cannot exist).
  ASSERT_TRUE(e.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(e.Delete("link", {0, 500}).ok());
  EXPECT_EQ(e.session().num_nodes(), 2);
}

TEST(SessionTest, RegionDeploymentDerivedFromGroundFacts) {
  // No EngineOptions::field: the seed / proximity EDBs come from the ground
  // facts in the program (ROADMAP item).
  constexpr char kSelfContainedRegion[] = R"(
    activeRegion(r,x) :- seed(r,x), triggered(x).
    activeRegion(r,y) :- activeRegion(r,x), triggered(x), near(x,y).
    regionSizes(r,count<x>) :- activeRegion(r,x).
    seed(0, 0). seed(1, 3).
    near(0, 1). near(1, 0). near(1, 2). near(2, 1). near(2, 3). near(3, 2).
    triggered(0). triggered(1).
  )";
  auto engine = Engine::Compile(kSelfContainedRegion, {});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Apply().ok());

  // Triggered chain 0-1 grows region 0 to {0, 1, 2}; region 1's seed (3) is
  // untriggered, so it stays empty.
  auto rows = e.Scan("activeRegion");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<Tuple>{Tuple::OfInts({0, 0}),
                                       Tuple::OfInts({0, 1}),
                                       Tuple::OfInts({0, 2})}));
  ASSERT_TRUE(e.Insert("triggered", {3}).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_TRUE(*e.Contains("activeRegion", {1, 3}));
  EXPECT_TRUE(*e.Contains("activeRegion", {1, 2}));

  // Deployment facts stay static after compile.
  EXPECT_EQ(e.Insert("seed", {2, 2}).code(), StatusCode::kInvalidArgument);

  // Providing both the option and in-program deployment facts is ambiguous.
  SensorGridOptions grid;
  grid.grid_dim = 3;
  grid.num_seeds = 1;
  EngineOptions both;
  both.field = MakeSensorGrid(grid);
  EXPECT_EQ(Engine::Compile(kSelfContainedRegion, both).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionTest, ShortestPathExplainReturnsWitnessLinks) {
  auto engine = Engine::Compile(kShortestPath, GraphOptions(
                                    ProvMode::kAbsorption));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("link", {0, 1, 1.0}).ok());
  ASSERT_TRUE(e.Insert("link", {1, 2, 1.0}).ok());
  ASSERT_TRUE(e.Insert("link", {0, 2, 9.0}).ok());
  ASSERT_TRUE(e.Apply().ok());

  auto why = e.Explain("path", Tuple::OfInts({0, 2}));
  ASSERT_TRUE(why.ok()) << why.status().ToString();
  ASSERT_FALSE(why->empty());
  // Every witness fact is a live 3-column link.
  for (const Tuple& link : *why) {
    ASSERT_EQ(link.size(), 3u);
    bool live = (link.IntAt(0) == 0 && link.IntAt(1) == 1) ||
                (link.IntAt(0) == 1 && link.IntAt(1) == 2) ||
                (link.IntAt(0) == 0 && link.IntAt(1) == 2);
    EXPECT_TRUE(live) << link.ToString();
  }

  // The 3-column form constrains the cost, like Lookup keys.
  EXPECT_TRUE(e.Explain("path", Tuple({Value(int64_t{0}), Value(int64_t{2}),
                                       Value(2.0)})).ok());
  EXPECT_EQ(e.Explain("path", Tuple({Value(int64_t{0}), Value(int64_t{2}),
                                     Value(99.0)})).status().code(),
            StatusCode::kNotFound);
  // Witnesses exist for the recursive view only.
  EXPECT_EQ(e.Explain("minCost", Tuple::OfInts({0, 2})).status().code(),
            StatusCode::kInvalidArgument);
  // Absent pairs are typed NotFound.
  EXPECT_EQ(e.Explain("path", Tuple::OfInts({2, 0})).status().code(),
            StatusCode::kNotFound);
}

TEST(SessionTest, RegionExplainReturnsWitnessTriggers) {
  // Provenance witnesses for the region adapter, completing the trio with
  // reachable and shortest-path: a membership witness is the set of
  // isTriggered facts whose conjunction keeps the sensor in the region.
  constexpr char kSelfContainedRegion[] = R"(
    activeRegion(r,x) :- seed(r,x), triggered(x).
    activeRegion(r,y) :- activeRegion(r,x), triggered(x), near(x,y).
    regionSizes(r,count<x>) :- activeRegion(r,x).
    seed(0, 0). seed(1, 3).
    near(0, 1). near(1, 0). near(1, 2). near(2, 1). near(2, 3). near(3, 2).
    triggered(0). triggered(1).
  )";
  auto engine = Engine::Compile(kSelfContainedRegion, {});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Apply().ok());

  // Sensor 2 joined region 0 through the triggered chain 0 -> 1: the
  // witness must name both triggers.
  auto why = e.Explain("activeRegion", Tuple::OfInts({0, 2}));
  ASSERT_TRUE(why.ok()) << why.status().ToString();
  std::vector<Tuple> expected = {Tuple::OfInts({0}), Tuple::OfInts({1})};
  std::sort(why->begin(), why->end());
  EXPECT_EQ(*why, expected);

  // Absent memberships are typed NotFound; aggregate views have no
  // witnesses; bad region ids are typed OutOfRange.
  EXPECT_EQ(e.Explain("activeRegion", Tuple::OfInts({1, 0})).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(e.Explain("regionSizes", Tuple::OfInts({0, 2})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(e.Explain("activeRegion", Tuple::OfInts({7, 0})).status().code(),
            StatusCode::kOutOfRange);

  // Witnesses exist under absorption provenance only.
  EngineOptions dred;
  dred.runtime.prov = ProvMode::kSet;
  auto dred_engine = Engine::Compile(kSelfContainedRegion, dred);
  ASSERT_TRUE(dred_engine.ok());
  ASSERT_TRUE((*dred_engine)->Apply().ok());
  EXPECT_EQ((*dred_engine)
                ->Explain("activeRegion", Tuple::OfInts({0, 1}))
                .status()
                .code(),
            StatusCode::kUnimplemented);
}

TEST(SessionTest, BudgetAbortPoisonsOnlyTheInitiatingView) {
  // Satellite of the sharding PR: one view exhausting its budget must drop
  // (and be charged for) only ITS queued envelopes; the co-resident view
  // keeps its in-flight traffic and converges on its own later Apply,
  // matching an isolated engine bit for bit.
  constexpr char kReach[] = R"(
    reachable(x,y) :- link(x,y).
    reachable(x,y) :- link(x,z), reachable(z,y).
  )";
  constexpr char kSpan[] = R"(
    span(x,y) :- link(x,y).
    span(x,y) :- span(x,z), link(z,y).
  )";
  Session session(SessionOptions{8, 4, true});
  EngineOptions tiny;
  tiny.runtime.message_budget = 10;  // Exhausts mid-drain.
  auto reach = session.AddProgram(kReach, tiny);
  auto span = session.AddProgram(kSpan, {});
  ASSERT_TRUE(reach.ok() && span.ok());

  auto isolated = Engine::Compile(kSpan, {});
  ASSERT_TRUE(isolated.ok());

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(session.Insert("link", {double(i), double((i + 1) % 8)}).ok());
    ASSERT_TRUE(
        (*isolated)->Insert("link", {double(i), double((i + 1) % 8)}).ok());
  }
  // The initiating view's budget governs the drain; it aborts mid-fixpoint.
  Status st = (*reach)->Apply();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE((*reach)->converged());
  RunMetrics aborted = (*reach)->Metrics();
  EXPECT_EQ(aborted.aborted_runs, 1u);
  EXPECT_GT(aborted.dropped_messages, 0u);

  // The co-resident view was NOT poisoned: nothing of its traffic was
  // dropped, it is not marked aborted, and its own Apply finishes the
  // fixpoint with counters and contents identical to an isolated engine.
  RunMetrics survivor = (*span)->Metrics();
  EXPECT_EQ(survivor.aborted_runs, 0u);
  EXPECT_EQ(survivor.dropped_messages, 0u);
  ASSERT_TRUE((*span)->Apply().ok());
  ASSERT_TRUE((*isolated)->Apply().ok());
  EXPECT_TRUE((*span)->converged());
  EXPECT_EQ((*span)->Metrics().messages, (*isolated)->Metrics().messages);
  EXPECT_EQ((*span)->Metrics().kill_messages,
            (*isolated)->Metrics().kill_messages);
  EXPECT_EQ(*(*span)->Scan("span"), *(*isolated)->Scan("span"));
}

TEST(SessionTest, SoftStateExpiryFansOutToEveryView) {
  Session session(SessionOptions{3, 3, true});
  auto reach = session.AddProgram(R"(
    reachable(x,y) :- link(x,y).
    reachable(x,y) :- link(x,z), reachable(z,y).
  )", {});
  auto span = session.AddProgram(R"(
    span(x,y) :- link(x,y).
    span(x,y) :- span(x,z), link(z,y).
  )", {});
  ASSERT_TRUE(reach.ok() && span.ok());
  ASSERT_TRUE(session.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(session.InsertWithTtl("link", Tuple::OfInts({1, 2}), 5.0).ok());
  ASSERT_TRUE(session.Apply().ok());
  EXPECT_TRUE(*(*reach)->Contains("reachable", {0, 2}));
  EXPECT_TRUE(*(*span)->Contains("span", {0, 2}));

  ASSERT_TRUE(session.AdvanceTime(6.0).ok());
  ASSERT_TRUE(session.Apply().ok());
  EXPECT_FALSE(*(*reach)->Contains("reachable", {0, 2}));
  EXPECT_FALSE(*(*span)->Contains("span", {0, 2}));
  EXPECT_TRUE(*(*reach)->Contains("reachable", {0, 1}));
}

}  // namespace
}  // namespace recnet
