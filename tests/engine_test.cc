// End-to-end tests of the recnet::Engine facade: Datalog source in,
// inserts / deletes / batched Apply, view scan + aggregate views +
// provenance witnesses out, across all three maintenance strategies.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "engine/engine.h"
#include "topology/sensor_grid.h"

namespace recnet {
namespace {

constexpr char kReachable[] = R"(
  reachable(x,y) :- link(x,y).
  reachable(x,y) :- link(x,z), reachable(z,y).
  fanout(x,count<y>) :- reachable(x,y).
)";

constexpr char kShortestPath[] = R"(
  path(x,y,c) :- link(x,y,c).
  path(x,y,c) :- link(x,z,c), path(z,y,c2).
  minCost(x,y,min<c>) :- path(x,y,c).
)";

constexpr char kRegion[] = R"(
  activeRegion(r,x) :- seed(r,x), triggered(x).
  activeRegion(r,y) :- activeRegion(r,x), triggered(x), near(x,y).
  regionSizes(r,count<x>) :- activeRegion(r,x).
)";

EngineOptions GraphOptions(int num_nodes, ProvMode prov) {
  EngineOptions options;
  options.num_nodes = num_nodes;
  options.runtime.prov = prov;
  options.runtime.num_physical = 4;
  return options;
}

class EngineProvTest : public ::testing::TestWithParam<ProvMode> {};

INSTANTIATE_TEST_SUITE_P(AllProvModes, EngineProvTest,
                         ::testing::Values(ProvMode::kAbsorption,
                                           ProvMode::kRelative,
                                           ProvMode::kSet),
                         [](const ::testing::TestParamInfo<ProvMode>& info) {
                           return ProvModeName(info.param);
                         });

TEST_P(EngineProvTest, ReachableInsertDeleteMaintain) {
  auto engine = Engine::Compile(kReachable, GraphOptions(5, GetParam()));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  EXPECT_EQ(e.plan().kind, datalog::PlanKind::kReachable);

  // Batched ingestion: one Apply converges the whole chain + shortcut.
  ASSERT_TRUE(e.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(e.Insert("link", {1, 2}).ok());
  ASSERT_TRUE(e.Insert("link", {2, 3}).ok());
  ASSERT_TRUE(e.Insert("link", {0, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());

  EXPECT_TRUE(*e.Contains("reachable", {0, 3}));
  EXPECT_FALSE(*e.Contains("reachable", {3, 0}));
  auto rows = e.Scan("reachable");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 6u);  // 0->{1,2,3}, 1->{2,3}, 2->{3}.

  // Deleting the redundant link keeps reachability; deleting the bridge
  // removes it — incremental maintenance through the facade.
  ASSERT_TRUE(e.Delete("link", {1, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_TRUE(*e.Contains("reachable", {0, 3}));
  ASSERT_TRUE(e.Delete("link", {2, 3}).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_FALSE(*e.Contains("reachable", {0, 3}));
  EXPECT_TRUE(e.converged());
}

TEST_P(EngineProvTest, AggregateViewScanAndLookup) {
  auto engine = Engine::Compile(kReachable, GraphOptions(4, GetParam()));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(e.Insert("link", {1, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());

  auto fanout = e.Scan("fanout");
  ASSERT_TRUE(fanout.ok());
  ASSERT_EQ(fanout->size(), 2u);
  EXPECT_EQ((*fanout)[0], Tuple::OfInts({0, 2}));
  EXPECT_EQ((*fanout)[1], Tuple::OfInts({1, 1}));

  auto row = e.Lookup("fanout", {0});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->IntAt(1), 2);
}

TEST_P(EngineProvTest, ShortestPathFromDatalogSource) {
  auto engine = Engine::Compile(kShortestPath, GraphOptions(4, GetParam()));
  if (GetParam() != ProvMode::kAbsorption) {
    // The shortest-path runtime supports absorption only; the facade turns
    // that into a typed error instead of a crash.
    EXPECT_EQ(engine.status().code(), StatusCode::kUnimplemented);
    return;
  }
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  EXPECT_EQ(e.plan().kind, datalog::PlanKind::kShortestPath);

  ASSERT_TRUE(e.Insert("link", {0, 1, 1.0}).ok());
  ASSERT_TRUE(e.Insert("link", {1, 2, 1.0}).ok());
  ASSERT_TRUE(e.Insert("link", {0, 2, 5.0}).ok());
  ASSERT_TRUE(e.Apply().ok());

  auto cost = e.Lookup("minCost", {0, 2});
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_DOUBLE_EQ(cost->DoubleAt(2), 2.0);

  // The path-view lookup surfaces the runtime's vec / length columns. The
  // length column is the independent fewest-hops minimum: 1 via the direct
  // (expensive) link.
  auto route = e.Lookup("path", {0, 2});
  ASSERT_TRUE(route.ok());
  ASSERT_EQ(route->size(), 5u);
  EXPECT_DOUBLE_EQ(route->DoubleAt(2), 2.0);
  EXPECT_EQ(route->IntAt(4), 1);

  // A three-column key constrains the cost: membership with the wrong
  // cost fails, and integral keys compare numerically against the
  // double-valued cost column.
  EXPECT_FALSE(*e.Contains("path", {0, 2, 999}));
  EXPECT_TRUE(*e.Contains("path", {0, 2, 2}));
  EXPECT_TRUE(*e.Contains("minCost", {0, 2, 2}));

  // Losing the cheap hop reroutes onto the direct expensive link.
  ASSERT_TRUE(e.Delete("link", {1, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());
  cost = e.Lookup("minCost", {0, 2});
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(cost->DoubleAt(2), 5.0);
}

TEST_P(EngineProvTest, RegionFromDatalogSource) {
  SensorGridOptions grid;
  grid.grid_dim = 4;
  grid.num_seeds = 2;
  grid.seed = 7;
  EngineOptions options;
  options.field = MakeSensorGrid(grid);
  options.runtime.prov = GetParam();
  options.runtime.num_physical = 4;

  auto engine = Engine::Compile(kRegion, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  EXPECT_EQ(e.plan().kind, datalog::PlanKind::kRegion);
  EXPECT_EQ(e.plan().trigger_edb, "triggered");
  EXPECT_EQ(e.plan().proximity_edb, "near");

  int seed0 = options.field->seed_sensors[0];
  ASSERT_TRUE(e.Insert("triggered", {double(seed0)}).ok());
  for (int nb : options.field->neighbors[static_cast<size_t>(seed0)]) {
    ASSERT_TRUE(e.Insert("triggered", {double(nb)}).ok());
  }
  ASSERT_TRUE(e.Apply().ok());

  EXPECT_TRUE(*e.Contains("activeRegion", {0, double(seed0)}));
  auto size0 = e.Lookup("regionSizes", {0});
  ASSERT_TRUE(size0.ok());
  EXPECT_GE(size0->IntAt(1), 2);
  auto members = e.Scan("activeRegion");
  ASSERT_TRUE(members.ok());
  EXPECT_GE(members->size(), static_cast<size_t>(size0->IntAt(1)));

  // Untriggering the seed's neighborhood empties region 0.
  ASSERT_TRUE(e.Delete("triggered", {double(seed0)}).ok());
  for (int nb : options.field->neighbors[static_cast<size_t>(seed0)]) {
    ASSERT_TRUE(e.Delete("triggered", {double(nb)}).ok());
  }
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_FALSE(*e.Contains("activeRegion", {0, double(seed0)}));
  EXPECT_FALSE(e.Lookup("regionSizes", {0}).ok());
}

TEST(EngineTest, ExplainReturnsWitnessLinks) {
  auto engine =
      Engine::Compile(kReachable, GraphOptions(4, ProvMode::kAbsorption));
  ASSERT_TRUE(engine.ok());
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(e.Insert("link", {1, 2}).ok());
  ASSERT_TRUE(e.Insert("link", {0, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());

  auto why = e.Explain("reachable", Tuple::OfInts({0, 2}));
  ASSERT_TRUE(why.ok()) << why.status().ToString();
  ASSERT_FALSE(why->empty());
  // Every witness fact is a live link, and the witness is one of the two
  // supports: {0->2} or {0->1, 1->2}.
  for (const Tuple& link : *why) {
    bool live = link == Tuple::OfInts({0, 1}) ||
                link == Tuple::OfInts({1, 2}) ||
                link == Tuple::OfInts({0, 2});
    EXPECT_TRUE(live) << link.ToString();
  }

  // Witnesses are only defined for the recursive view.
  EXPECT_EQ(e.Explain("fanout", Tuple::OfInts({0, 2})).status().code(),
            StatusCode::kInvalidArgument);
  // Non-absorption modes refuse.
  auto dred =
      Engine::Compile(kReachable, GraphOptions(4, ProvMode::kSet));
  ASSERT_TRUE(dred.ok());
  ASSERT_TRUE((*dred)->Insert("link", {0, 1}).ok());
  ASSERT_TRUE((*dred)->Apply().ok());
  EXPECT_EQ((*dred)->Explain("reachable", Tuple::OfInts({0, 1}))
                .status()
                .code(),
            StatusCode::kUnimplemented);
}

TEST(EngineTest, LoadsGroundFactsFromProgram) {
  auto engine = Engine::Compile(R"(
    span(x,y) :- wire(x,y).
    span(x,y) :- span(x,z), wire(z,y).
    wire(0,1). wire(1,2).
  )", GraphOptions(3, ProvMode::kAbsorption));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->Apply().ok());
  EXPECT_TRUE(*(*engine)->Contains("span", {0, 2}));
}

TEST(EngineTest, RightLinearOrientationExecutes) {
  auto engine = Engine::Compile(R"(
    hop(a,b) :- edge(a,b).
    hop(a,b) :- hop(a,m), edge(m,b).
  )", GraphOptions(4, ProvMode::kAbsorption));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("edge", {0, 1}).ok());
  ASSERT_TRUE(e.Insert("edge", {1, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_TRUE(*e.Contains("hop", {0, 2}));
}

TEST(EngineTest, SoftStateTtlExpiryIsDeletion) {
  auto engine =
      Engine::Compile(kReachable, GraphOptions(3, ProvMode::kAbsorption));
  ASSERT_TRUE(engine.ok());
  Engine& e = **engine;
  ASSERT_TRUE(e.InsertWithTtl("link", Tuple::OfInts({0, 1}), 20.0).ok());
  ASSERT_TRUE(e.InsertWithTtl("link", Tuple::OfInts({1, 2}), 5.0).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_TRUE(*e.Contains("reachable", {0, 2}));

  // Renewal at t=3 extends 1->2's deadline to t=8 without re-propagating,
  // so it survives t=6.
  ASSERT_TRUE(e.AdvanceTime(3.0).ok());
  ASSERT_TRUE(e.InsertWithTtl("link", Tuple::OfInts({1, 2}), 5.0).ok());
  ASSERT_TRUE(e.AdvanceTime(6.0).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_TRUE(*e.Contains("reachable", {0, 2}));

  // Past the renewed deadline the link expires and the view contracts;
  // 0->1 (ttl 20) is still alive.
  ASSERT_TRUE(e.AdvanceTime(9.0).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_FALSE(*e.Contains("reachable", {0, 2}));
  EXPECT_TRUE(*e.Contains("reachable", {0, 1}));
}

TEST(EngineTest, PlainInsertCancelsSoftStateDeadline) {
  auto engine =
      Engine::Compile(kReachable, GraphOptions(3, ProvMode::kAbsorption));
  ASSERT_TRUE(engine.ok());
  Engine& e = **engine;
  ASSERT_TRUE(e.InsertWithTtl("link", Tuple::OfInts({0, 1}), 5.0).ok());
  // Upgrading to a permanent fact drops the pending expiry.
  ASSERT_TRUE(e.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(e.AdvanceTime(10.0).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_TRUE(*e.Contains("reachable", {0, 1}));
}

TEST(EngineTest, IngestionErrorsAreTyped) {
  auto engine =
      Engine::Compile(kReachable, GraphOptions(3, ProvMode::kAbsorption));
  ASSERT_TRUE(engine.ok());
  Engine& e = **engine;
  EXPECT_EQ(e.Insert("nolink", {0, 1}).code(), StatusCode::kNotFound);
  EXPECT_EQ(e.Insert("link", {0}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(e.Insert("link", {0, -1}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(e.Insert("link", {0, 1.5}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(e.Scan("nosuchview").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(e.Lookup("reachable", {0, 1}).status().code(),
            StatusCode::kNotFound);  // Nothing applied yet.
}

TEST(EngineTest, LateFactsGrowTheNodeIdSpace) {
  // The node-id space is dynamic: a fact naming an unseen node extends the
  // topology instead of erroring (the pre-session facade rejected it with
  // OutOfRange).
  auto engine =
      Engine::Compile(kReachable, GraphOptions(3, ProvMode::kAbsorption));
  ASSERT_TRUE(engine.ok());
  Engine& e = **engine;
  ASSERT_TRUE(e.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(e.Insert("link", {1, 99}).ok());  // Grows 3 -> 100 nodes.
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_EQ(e.session().num_nodes(), 100);
  EXPECT_TRUE(*e.Contains("reachable", {0, 99}));
  auto rows = e.Scan("reachable");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // 0->1, 0->99, 1->99.

  // Deleting the grown link contracts the view again.
  ASSERT_TRUE(e.Delete("link", {1, 99}).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_FALSE(*e.Contains("reachable", {0, 99}));
}

TEST(EngineTest, CompileWithoutNumNodesStartsEmptyAndGrows) {
  // num_nodes is no longer required up front: the topology starts empty and
  // grows as facts arrive (ROADMAP's dynamic node-id space).
  EngineOptions no_nodes;
  auto engine = Engine::Compile(kReachable, no_nodes);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Engine& e = **engine;
  EXPECT_EQ(e.session().num_nodes(), 0);
  ASSERT_TRUE(e.Insert("link", {0, 1}).ok());
  ASSERT_TRUE(e.Insert("link", {1, 2}).ok());
  ASSERT_TRUE(e.Apply().ok());
  EXPECT_EQ(e.session().num_nodes(), 3);
  EXPECT_TRUE(*e.Contains("reachable", {0, 2}));

  EngineOptions negative;
  negative.num_nodes = -4;
  EXPECT_EQ(Engine::Compile(kReachable, negative).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, CompileErrorsAreTyped) {
  // A region program with neither EngineOptions::field nor in-program
  // deployment facts has no sensor deployment to run on.
  EngineOptions no_field;
  EXPECT_EQ(Engine::Compile(kRegion, no_field).status().code(),
            StatusCode::kInvalidArgument);

  // Region triggers are dynamic but the deployment EDBs are not.
  SensorGridOptions grid;
  grid.grid_dim = 3;
  grid.num_seeds = 1;
  EngineOptions options;
  options.field = MakeSensorGrid(grid);
  auto region = Engine::Compile(kRegion, options);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ((*region)->Insert("seed", {0, 1}).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace recnet
