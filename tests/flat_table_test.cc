// FlatTable correctness: randomized interleavings of insert / erase / find /
// rehash checked against std::unordered_map, plus the iterator-contract
// details the operators rely on (erase-while-iterating, tombstone reuse).

#include "common/flat_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/value.h"

namespace recnet {
namespace {

Tuple RandomTuple(Rng* rng, int key_space) {
  return Tuple::OfInts({static_cast<int64_t>(rng->NextBounded(key_space)),
                        static_cast<int64_t>(rng->NextBounded(key_space))});
}

// Everything the reference sees, the table must see, in every state the
// interleaving can produce (including tombstone-heavy and just-rehashed).
TEST(FlatTableTest, RandomizedParityWithUnorderedMap) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u}) {
    Rng rng(seed);
    FlatTable<Tuple, int64_t, TupleHash> table;
    std::unordered_map<Tuple, int64_t, TupleHash> ref;
    for (int op = 0; op < 5000; ++op) {
      int key_space = op < 2500 ? 40 : 400;  // Grow the live set mid-run.
      Tuple key = RandomTuple(&rng, key_space);
      switch (rng.NextBounded(5)) {
        case 0:
        case 1: {  // Insert-or-assign through try_emplace + merge.
          int64_t v = static_cast<int64_t>(rng.NextBounded(1000));
          auto [it, inserted] = table.try_emplace(key, v);
          auto [rit, rinserted] = ref.try_emplace(key, v);
          ASSERT_EQ(inserted, rinserted);
          ASSERT_EQ(it->second, rit->second);
          it->second += 3;
          rit->second += 3;
          break;
        }
        case 2: {  // Erase by key.
          ASSERT_EQ(table.erase(key), ref.erase(key));
          break;
        }
        case 3: {  // Find.
          auto it = table.find(key);
          auto rit = ref.find(key);
          ASSERT_EQ(it == table.end(), rit == ref.end());
          if (rit != ref.end()) {
            ASSERT_EQ(it->second, rit->second);
          }
          break;
        }
        case 4: {  // operator[] default-constructs like unordered_map.
          table[key] += 5;
          ref[key] += 5;
          break;
        }
      }
      if (op % 613 == 0) table.reserve(rng.NextBounded(700));  // Force rehash.
      ASSERT_EQ(table.size(), ref.size());
    }
    // Full-contents parity, independent of iteration order.
    std::map<Tuple, int64_t> sorted_table(table.begin(), table.end());
    std::map<Tuple, int64_t> sorted_ref(ref.begin(), ref.end());
    EXPECT_EQ(sorted_table, sorted_ref);
  }
}

// Adversarial hashes for the SWAR group-probe loop. `kLowBits` pins every
// key's home slot into a handful of 8-slot groups so probes always cross
// group boundaries and wrap; `kFragments` additionally collapses the 7-bit
// control fragment to two values, forcing the per-group match mask to flag
// many false candidates that only the full-hash verify can reject.
enum class Adversary { kLowBits, kFragments };

template <Adversary kMode>
struct ClusteredHash {
  size_t operator()(int k) const {
    size_t h = static_cast<size_t>(k);
    if (kMode == Adversary::kLowBits) {
      // Distinct top bits (distinct fragments), home slots all in [0, 16).
      return (h << (sizeof(size_t) * 8 - 16)) | (h & 0xF);
    }
    // Two fragment values, home slots spread by the key: every group scan
    // sees fragment matches for roughly half its occupied slots.
    return ((h & 1) << (sizeof(size_t) * 8 - 1)) | h;
  }
};

template <typename Hash>
void RunGroupProbeParity(uint64_t seed) {
  Rng rng(seed);
  FlatTable<int, int64_t, Hash> table;
  std::unordered_map<int, int64_t> ref;
  for (int op = 0; op < 8000; ++op) {
    // A tight key space keeps the table small (few groups, frequent
    // wraparound) while erases seed tombstones between live clusters.
    int key = static_cast<int>(rng.NextBounded(op < 4000 ? 48 : 300));
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {
        int64_t v = static_cast<int64_t>(rng.NextBounded(1000));
        auto [it, inserted] = table.try_emplace(key, v);
        auto [rit, rinserted] = ref.try_emplace(key, v);
        ASSERT_EQ(inserted, rinserted);
        ASSERT_EQ(it->second, rit->second);
        break;
      }
      case 2:
        ASSERT_EQ(table.erase(key), ref.erase(key));
        break;
      case 3: {
        auto it = table.find(key);
        auto rit = ref.find(key);
        ASSERT_EQ(it == table.end(), rit == ref.end());
        if (rit != ref.end()) {
          ASSERT_EQ(it->second, rit->second);
        }
        break;
      }
    }
    ASSERT_EQ(table.size(), ref.size());
  }
  std::map<int, int64_t> sorted_table(table.begin(), table.end());
  std::map<int, int64_t> sorted_ref(ref.begin(), ref.end());
  EXPECT_EQ(sorted_table, sorted_ref);
}

TEST(FlatTableTest, GroupProbeParityUnderHomeSlotClustering) {
  for (uint64_t seed : {3u, 19u, 271u}) {
    RunGroupProbeParity<ClusteredHash<Adversary::kLowBits>>(seed);
  }
}

TEST(FlatTableTest, GroupProbeParityUnderFragmentCollisions) {
  for (uint64_t seed : {5u, 23u, 977u}) {
    RunGroupProbeParity<ClusteredHash<Adversary::kFragments>>(seed);
  }
}

TEST(FlatTableTest, EraseWhileIteratingVisitsEverySurvivor) {
  FlatTable<int, int> table;
  for (int i = 0; i < 100; ++i) table.try_emplace(i, i * 10);
  std::vector<int> survivors;
  for (auto it = table.begin(); it != table.end();) {
    if (it->first % 3 == 0) {
      it = table.erase(it);
    } else {
      survivors.push_back(it->first);
      ++it;
    }
  }
  EXPECT_EQ(table.size(), 66u);
  EXPECT_EQ(survivors.size(), 66u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.contains(i), i % 3 != 0) << i;
  }
}

TEST(FlatTableTest, TombstoneSlotsAreReusedAndRehashReclaims) {
  FlatTable<int, std::string> table;
  // Churn far more keys through the table than its high-water capacity: if
  // tombstones leaked, probes would degrade or the table would grow without
  // bound.
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 20; ++i) {
      table.try_emplace(round * 20 + i, "v");
    }
    for (int i = 0; i < 20; ++i) {
      ASSERT_EQ(table.erase(round * 20 + i), 1u);
    }
  }
  EXPECT_TRUE(table.empty());
  table.try_emplace(-1, "last");
  EXPECT_EQ(table.at(-1), "last");
}

TEST(FlatTableTest, HashedEntryPointsAgreeWithPlainOnes) {
  FlatTable<Tuple, int, TupleHash> table;
  Tuple key = Tuple::OfInts({3, 4});
  size_t h = table.hash_of(key);
  auto [it, inserted] = table.try_emplace_hashed(key, h, 9);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(table.find_hashed(key, h)->second, 9);
  EXPECT_EQ(table.find(key)->second, 9);
}

TEST(FlatTableTest, ClearKeepsCapacityAndResetsContents) {
  FlatTable<int, int> table;
  for (int i = 0; i < 50; ++i) table.try_emplace(i, i);
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.begin(), table.end());
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(table.contains(i));
  table.try_emplace(7, 7);
  EXPECT_EQ(table.size(), 1u);
}

}  // namespace
}  // namespace recnet
