// Randomized multi-thread stress suite for the concurrent BDD manager:
// worker threads hammer one shared Manager — interning through the striped
// unique table, racing Ref/Deref on shared nodes, colliding on identical
// subproblems — and every outcome is checked against hash-consing
// canonicity (equal Boolean functions resolve to equal node indices, no
// matter which worker interned first) or against a sequential reference
// manager. The TSan CI job runs this suite; the assertions here make the
// interleavings meaningful, TSan makes them race-free.

#include <gtest/gtest.h>

#include <thread>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"
#include "common/rng.h"

namespace recnet {
namespace bdd {
namespace {

constexpr int kThreads = 4;
constexpr int kVars = 24;

// One deterministic random expression: a postfix program over variable
// leaves, folded with And/Or/Diff/Restrict. The same seed always builds the
// same Boolean function in any manager.
NodeIndex BuildExpr(Manager* m, uint64_t seed, int ops) {
  Rng rng(seed);
  NodeIndex acc = m->MakeVar(static_cast<Var>(rng.NextBounded(kVars)));
  for (int i = 0; i < ops; ++i) {
    NodeIndex leaf = m->MakeVar(static_cast<Var>(rng.NextBounded(kVars)));
    switch (rng.NextBounded(4)) {
      case 0:
        acc = m->And(acc, m->Or(leaf, acc));
        break;
      case 1:
        acc = m->Or(acc, m->And(leaf, m->Not(acc)));
        break;
      case 2:
        acc = m->Diff(acc, leaf);
        break;
      default:
        acc = m->Or(m->Restrict(acc, static_cast<Var>(rng.NextBounded(kVars)),
                                rng.NextBool(0.5)),
                    leaf);
        break;
    }
  }
  return acc;
}

// Semantic fingerprint of f: its value under a seed-deterministic set of
// assignments. Index-independent, so it can compare functions across
// managers.
uint64_t Fingerprint(const Manager& m, NodeIndex f) {
  uint64_t h = 0;
  for (uint64_t s = 0; s < 64; ++s) {
    Rng rng(s * 2654435761 + 17);
    std::unordered_map<Var, bool> truth;
    for (Var v = 0; v < kVars; ++v) truth[v] = rng.NextBool(0.5);
    h = (h << 1) | (m.Evaluate(f, truth) ? 1 : 0);
  }
  return h;
}

// Every thread computes the SAME expressions concurrently. Canonicity
// requires all of them to get the exact same node index back — whichever
// worker interns a node first, the rest must find it in the (striped)
// unique table, never intern a duplicate.
TEST(BddConcurrencyStress, IdenticalExpressionsResolveToIdenticalIndices) {
  for (uint64_t round = 0; round < 3; ++round) {
    Manager m;
    m.EnsureWorkerSlots(kThreads);
    m.set_concurrent(true);
    constexpr int kExprs = 40;
    NodeIndex results[kThreads][kExprs];
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Manager::SetThreadWorkerSlot(t);
        for (int e = 0; e < kExprs; ++e) {
          NodeIndex r = BuildExpr(&m, round * 1000 + e, 30);
          m.Ref(r);
          results[t][e] = r;
        }
      });
    }
    for (std::thread& th : threads) th.join();
    m.set_concurrent(false);
    for (int e = 0; e < kExprs; ++e) {
      for (int t = 1; t < kThreads; ++t) {
        ASSERT_EQ(results[t][e], results[0][e])
            << "round " << round << " expr " << e << " thread " << t;
      }
    }
  }
}

// Disjoint random expression sets built concurrently must be semantically
// identical to the same expressions built in a fresh sequential manager,
// and must survive a barrier GC that recycles everything unreferenced.
TEST(BddConcurrencyStress, ParallelBuildMatchesSequentialReference) {
  constexpr int kExprsPerThread = 25;
  Manager par;
  par.EnsureWorkerSlots(kThreads);
  par.set_concurrent(true);
  NodeIndex built[kThreads][kExprsPerThread];
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Manager::SetThreadWorkerSlot(t);
      for (int e = 0; e < kExprsPerThread; ++e) {
        NodeIndex r = BuildExpr(&par, t * 10000 + e, 40);
        par.Ref(r);
        built[t][e] = r;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  par.CollectAtBarrier();  // Workers joined: the legal GC point.
  par.set_concurrent(false);

  Manager seq;
  for (int t = 0; t < kThreads; ++t) {
    for (int e = 0; e < kExprsPerThread; ++e) {
      NodeIndex ref = BuildExpr(&seq, t * 10000 + e, 40);
      EXPECT_EQ(Fingerprint(par, built[t][e]), Fingerprint(seq, ref))
          << "thread " << t << " expr " << e;
    }
  }
}

// Ref/Deref churn from many threads on a shared node set: counts are
// relaxed atomic RMWs, so balanced churn must leave every node's liveness
// exactly as it started — checked by a barrier GC that must not reclaim
// any of the still-referenced nodes.
TEST(BddConcurrencyStress, RefDerefChurnPreservesLiveness) {
  Manager m;
  m.EnsureWorkerSlots(kThreads);
  constexpr int kShared = 60;
  std::vector<NodeIndex> shared;
  std::vector<uint64_t> prints;
  for (int e = 0; e < kShared; ++e) {
    NodeIndex r = BuildExpr(&m, 777 + e, 25);
    m.Ref(r);
    shared.push_back(r);
    prints.push_back(Fingerprint(m, r));
  }
  m.set_concurrent(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Manager::SetThreadWorkerSlot(t);
      Rng rng(91 + static_cast<uint64_t>(t));
      // Ref-heavy prefix, then the exactly matching Deref suffix, in a
      // shuffled order: counts dip and spike concurrently but net to zero.
      std::vector<NodeIndex> local;
      for (int i = 0; i < 5000; ++i) {
        NodeIndex n = shared[rng.NextBounded(kShared)];
        m.Ref(n);
        local.push_back(n);
      }
      rng.Shuffle(&local);
      for (NodeIndex n : local) m.Deref(n);
    });
  }
  for (std::thread& th : threads) th.join();
  m.CollectAtBarrier();
  m.set_concurrent(false);
  m.GarbageCollect();  // Force a full sweep regardless of thresholds.
  for (int e = 0; e < kShared; ++e) {
    EXPECT_EQ(Fingerprint(m, shared[e]), prints[e]) << "expr " << e;
  }
}

// Mixed workload across barriers: rounds of concurrent building with
// barrier GC in between, exactly the engine's superstep shape. Exercises
// deferred bucket growth, free-list recycling across stripes, and cache
// clearing, while results from earlier rounds must stay intact.
TEST(BddConcurrencyStress, SuperstepRoundsWithBarrierGc) {
  Manager::Options opts;
  opts.gc_threshold = 1 << 10;  // Small, so barrier GC really runs.
  Manager m(opts);
  m.EnsureWorkerSlots(kThreads);
  std::vector<NodeIndex> kept;
  std::vector<uint64_t> prints;
  for (uint64_t round = 0; round < 6; ++round) {
    m.set_concurrent(true);
    NodeIndex fresh[kThreads];
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t, round] {
        Manager::SetThreadWorkerSlot(t);
        // Garbage-heavy: only the last expression survives the barrier.
        NodeIndex r = kFalse;
        for (int e = 0; e < 10; ++e) {
          r = BuildExpr(&m, round * 131 + t * 17 + e, 35);
        }
        m.Ref(r);
        fresh[t] = r;
      });
    }
    for (std::thread& th : threads) th.join();
    m.CollectAtBarrier();
    m.set_concurrent(false);
    for (int t = 0; t < kThreads; ++t) {
      kept.push_back(fresh[t]);
      prints.push_back(Fingerprint(m, fresh[t]));
    }
    // Everything referenced so far must have survived the barrier GC.
    for (size_t i = 0; i < kept.size(); ++i) {
      ASSERT_EQ(Fingerprint(m, kept[i]), prints[i])
          << "round " << round << " kept " << i;
    }
  }
  EXPECT_GT(m.gc_runs(), 0u);
}

// Complement-edge canonicity under contention: half the threads build f,
// the other half build ¬f by pushing the negation through every operator
// (De Morgan). Whichever side interns a node first, the tagged-ref pairing
// must come out exact — thread t's result for expression e is bit-for-bit
// the complement (low-bit flip) of the dual side's, which also means both
// sides share one stored subgraph and the op caches never hold a
// polarity-duplicated entry.
TEST(BddConcurrencyStress, ConcurrentNegationPairsShareOneSubgraph) {
  constexpr int kExprs = 30;
  Manager m;
  m.EnsureWorkerSlots(kThreads);
  m.set_concurrent(true);
  NodeIndex straight[kThreads / 2][kExprs];
  NodeIndex negated[kThreads / 2][kExprs];
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Manager::SetThreadWorkerSlot(t);
      const bool dual = (t % 2) != 0;
      for (int e = 0; e < kExprs; ++e) {
        NodeIndex r = BuildExpr(&m, 5000 + e, 30);
        // The dual side negates at the end; Not is a tag flip, so the race
        // is entirely in the shared BuildExpr interning below it.
        if (dual) r = m.Not(r);
        m.Ref(r);
        // Decayed pointer, not `(dual ? negated : straight)[...]`: gcc's
        // -fsanitize=bounds miscompiles a subscripted conditional over two
        // array glvalues (wild row index on the false branch).
        NodeIndex(*out)[kExprs] = dual ? negated : straight;
        out[t / 2][e] = r;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  m.set_concurrent(false);
  for (int e = 0; e < kExprs; ++e) {
    for (int half = 0; half < kThreads / 2; ++half) {
      ASSERT_EQ(straight[half][e], straight[0][e]) << "expr " << e;
      ASSERT_EQ(negated[half][e], negated[0][e]) << "expr " << e;
      // Tagged-ref pairing: ¬f is exactly f with the complement bit
      // flipped, never a separately interned subgraph.
      ASSERT_EQ(negated[half][e], m.Not(straight[0][e])) << "expr " << e;
      ASSERT_EQ(negated[half][e] ^ straight[0][e], 1u) << "expr " << e;
    }
  }
}

}  // namespace
}  // namespace bdd
}  // namespace recnet
