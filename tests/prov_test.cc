#include "provenance/prov.h"

#include <gtest/gtest.h>

namespace recnet {
namespace {

class ProvModesTest : public ::testing::TestWithParam<ProvMode> {
 protected:
  ProvMode mode() const { return GetParam(); }
  bdd::Manager mgr_;
};

TEST_P(ProvModesTest, TrueFalseBasics) {
  Prov t = Prov::True(mode(), &mgr_);
  Prov f = Prov::False(mode(), &mgr_);
  EXPECT_FALSE(t.IsFalse());
  EXPECT_TRUE(f.IsFalse());
  EXPECT_TRUE(t == t);
  EXPECT_TRUE(t != f);
}

// Figure 6 composition laws (join = AND, union = OR).
TEST_P(ProvModesTest, AndOrIdentities) {
  Prov t = Prov::True(mode(), &mgr_);
  Prov f = Prov::False(mode(), &mgr_);
  Prov a = Prov::BaseVar(mode(), &mgr_, 1);
  EXPECT_TRUE(a.And(t) == a);
  EXPECT_TRUE(a.And(f).IsFalse());
  EXPECT_TRUE(a.Or(f) == a);
  EXPECT_TRUE(a.Or(a) == a);
}

TEST_P(ProvModesTest, RestrictFalseRemovesDependentDerivations) {
  if (mode() == ProvMode::kSet) return;  // No deletion support in set mode.
  Prov p1 = Prov::BaseVar(mode(), &mgr_, 1);
  Prov p2 = Prov::BaseVar(mode(), &mgr_, 2);
  Prov p3 = Prov::BaseVar(mode(), &mgr_, 3);
  Prov f = p1.And(p2).Or(p3);  // (p1 ∧ p2) ∨ p3.
  EXPECT_FALSE(f.RestrictFalse({1}).IsFalse());  // p3 survives.
  EXPECT_TRUE(f.RestrictFalse({1, 3}).IsFalse());
  EXPECT_TRUE(f.RestrictFalse({2, 3}).IsFalse());
  EXPECT_TRUE(f.RestrictFalse({9}) == f);  // Unrelated variable.
}

TEST_P(ProvModesTest, SupportVars) {
  if (mode() == ProvMode::kSet) return;
  Prov p1 = Prov::BaseVar(mode(), &mgr_, 1);
  Prov p5 = Prov::BaseVar(mode(), &mgr_, 5);
  Prov f = p1.And(p5).Or(p1);
  std::vector<bdd::Var> support;
  f.SupportVars(&support);
  // Absorption collapses to p1 (support {1}); relative keeps both
  // derivations (support {1, 5}).
  if (mode() == ProvMode::kAbsorption) {
    EXPECT_EQ(support, (std::vector<bdd::Var>{1}));
  } else {
    EXPECT_EQ(support, (std::vector<bdd::Var>{1, 5}));
  }
}

TEST_P(ProvModesTest, DeltaOverReturnsNewDerivations) {
  Prov p1 = Prov::BaseVar(mode(), &mgr_, 1);
  Prov p2 = Prov::BaseVar(mode(), &mgr_, 2);
  Prov merged = p1.Or(p2);
  Prov delta = merged.DeltaOver(p1);
  if (mode() == ProvMode::kSet) {
    // p1 already present: no delta under set semantics.
    EXPECT_TRUE(delta.IsFalse());
  } else {
    EXPECT_FALSE(delta.IsFalse());
    // The delta must not claim anything already covered: for absorption,
    // delta ∧ p1-only assignments are false.
    if (mode() == ProvMode::kAbsorption) {
      EXPECT_TRUE(delta.RestrictFalse({2}).IsFalse());
    }
  }
}

TEST_P(ProvModesTest, WireSizeBehaviour) {
  Prov t = Prov::True(mode(), &mgr_);
  Prov a = Prov::BaseVar(mode(), &mgr_, 1);
  if (mode() == ProvMode::kSet) {
    EXPECT_EQ(t.WireSizeBytes(), 0u);
    EXPECT_EQ(a.WireSizeBytes(), 0u);
  } else {
    EXPECT_GT(a.WireSizeBytes(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ProvModesTest,
                         ::testing::Values(ProvMode::kSet,
                                           ProvMode::kAbsorption,
                                           ProvMode::kRelative));

// --- Model-specific behaviour ----------------------------------------------

TEST(AbsorptionProvTest, AbsorbsSupersetDerivations) {
  bdd::Manager mgr;
  Prov p1 = Prov::BaseVar(ProvMode::kAbsorption, &mgr, 1);
  Prov p2 = Prov::BaseVar(ProvMode::kAbsorption, &mgr, 2);
  Prov longer = p1.And(p2);
  // p1 ∨ (p1 ∧ p2) = p1: merging the longer derivation changes nothing.
  EXPECT_TRUE(p1.Or(longer) == p1);
}

TEST(RelativeProvTest, KeepsSupersetDerivations) {
  bdd::Manager mgr;
  Prov p1 = Prov::BaseVar(ProvMode::kRelative, &mgr, 1);
  Prov p2 = Prov::BaseVar(ProvMode::kRelative, &mgr, 2);
  Prov longer = p1.And(p2);
  Prov merged = p1.Or(longer);
  // Relative provenance does not absorb: the annotation grows.
  EXPECT_FALSE(merged == p1);
  EXPECT_EQ(merged.rel().derivations.size(), 2u);
  // And it is therefore strictly larger on the wire.
  EXPECT_GT(merged.WireSizeBytes(), p1.WireSizeBytes());
}

TEST(RelativeProvTest, AndDistributesOverDerivations) {
  bdd::Manager mgr;
  Prov a = Prov::BaseVar(ProvMode::kRelative, &mgr, 1)
               .Or(Prov::BaseVar(ProvMode::kRelative, &mgr, 2));
  Prov b = Prov::BaseVar(ProvMode::kRelative, &mgr, 3);
  Prov product = a.And(b);
  EXPECT_EQ(product.rel().derivations.size(), 2u);  // {1,3} and {2,3}.
}

TEST(RelativeProvTest, DuplicateVariablesCollapseWithinDerivation) {
  bdd::Manager mgr;
  Prov p1 = Prov::BaseVar(ProvMode::kRelative, &mgr, 1);
  Prov sq = p1.And(p1);
  EXPECT_EQ(sq.rel().derivations.size(), 1u);
  EXPECT_EQ(sq.rel().derivations[0], (std::vector<bdd::Var>{1}));
}

TEST(ProvModeNameTest, Names) {
  EXPECT_STREQ(ProvModeName(ProvMode::kSet), "set");
  EXPECT_STREQ(ProvModeName(ProvMode::kAbsorption), "absorption");
  EXPECT_STREQ(ProvModeName(ProvMode::kRelative), "relative");
}

}  // namespace
}  // namespace recnet
