// Deterministic fault injection + crash recovery coverage. The contracts
// under test:
//  * FaultInjector decisions are pure functions of (seed, epoch, site,
//    keys) — two injectors with the same plan walk the same schedule, and
//    BumpEpoch re-randomizes the rate-based draws.
//  * An injected infrastructure fault (worker death / alloc failure) under
//    SessionOptions::recovery finishes with Scan results and per-view
//    traffic counters bit-identical to an uninterrupted run, for every
//    ProvMode x shard count.
//  * A torn Session::Checkpoint never touches the target file: a prior
//    snapshot there survives and stays restorable.
//  * The lossy shard-link mode (seeded drop/dup with bounded retry)
//    converges to the same fixpoint as a lossless run, with the loss
//    visible in the link_dropped/link_retried/link_duplicated counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/session.h"
#include "fault/fault.h"

namespace recnet {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::ParseFaultSpec;

// CI's fault-matrix job re-runs this suite under several fault seeds
// (RECNET_FAULT_SEED=<n>); the offset shifts every rate-based plan seed so
// the parity contracts are exercised against fresh fault schedules, not one
// hard-coded trajectory.
uint64_t FaultSeed(uint64_t base) {
  const char* s = std::getenv("RECNET_FAULT_SEED");
  return s == nullptr ? base : base + std::strtoull(s, nullptr, 10);
}

// --- Injector purity ---------------------------------------------------------

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultPlan plan;
  plan.seed = 42;
  plan.worker_death_rate = 0.3;
  plan.link_drop_rate = 0.3;
  plan.link_dup_rate = 0.3;
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int gen = 0; gen < 64; ++gen) {
    a.TickGeneration();
    b.TickGeneration();
    EXPECT_EQ(a.ShouldKillWorker(nullptr), b.ShouldKillWorker(nullptr))
        << "gen " << gen;
  }
  for (uint64_t trig = 0; trig < 32; ++trig) {
    for (uint32_t sub = 0; sub < 4; ++sub) {
      EXPECT_EQ(a.ShouldDropLink(trig, sub, 0), b.ShouldDropLink(trig, sub, 0));
      EXPECT_EQ(a.ShouldDuplicateLink(trig, sub),
                b.ShouldDuplicateLink(trig, sub));
    }
  }
}

TEST(FaultInjectorTest, DecisionsAreRepeatable) {
  // No hidden state: asking the same question twice gives the same answer.
  FaultPlan plan;
  plan.seed = 7;
  plan.link_drop_rate = 0.5;
  FaultInjector inj(plan);
  for (uint64_t trig = 0; trig < 64; ++trig) {
    bool first = inj.ShouldDropLink(trig, 1, 2);
    EXPECT_EQ(inj.ShouldDropLink(trig, 1, 2), first);
  }
}

TEST(FaultInjectorTest, EpochRerandomizesRateDraws) {
  FaultPlan plan;
  plan.seed = 11;
  plan.worker_death_rate = 0.5;
  FaultInjector a(plan);
  FaultInjector b(plan);
  b.BumpEpoch();
  int differ = 0;
  for (int gen = 0; gen < 64; ++gen) {
    a.TickGeneration();
    b.TickGeneration();
    if (a.ShouldKillWorker(nullptr) != b.ShouldKillWorker(nullptr)) ++differ;
  }
  EXPECT_GT(differ, 0) << "epoch bump left the death schedule unchanged";
}

TEST(FaultInjectorTest, OneShotKillFiresAtExactGeneration) {
  FaultPlan plan;
  plan.kill_at_generation = 5;
  FaultInjector inj(plan);
  for (int gen = 1; gen <= 10; ++gen) {
    inj.TickGeneration();
    std::string site;
    bool killed = inj.ShouldKillWorker(&site);
    EXPECT_EQ(killed, gen == 5) << "gen " << gen;
    if (killed) EXPECT_NE(site.find("worker-death@gen=5"), std::string::npos);
  }
}

TEST(FaultInjectorTest, DropIsForceDeliveredAtMaxAttempts) {
  FaultPlan plan;
  plan.seed = 3;
  plan.link_drop_rate = 1.0;
  plan.max_drop_attempts = 4;
  FaultInjector inj(plan);
  for (uint32_t attempts = 0; attempts < 4; ++attempts) {
    EXPECT_TRUE(inj.ShouldDropLink(9, 0, attempts)) << attempts;
  }
  EXPECT_FALSE(inj.ShouldDropLink(9, 0, 4));
  EXPECT_FALSE(inj.ShouldDropLink(9, 0, 5));
}

TEST(FaultInjectorTest, TearDrawsPerCheckpoint) {
  FaultPlan always;
  always.snapshot_tear_rate = 1.0;
  FaultInjector inj(always);
  EXPECT_TRUE(inj.ShouldTearSnapshot());
  EXPECT_TRUE(inj.ShouldTearSnapshot());

  FaultPlan never;
  never.seed = 5;
  never.worker_death_rate = 1.0;  // enabled(), but tear stays off.
  FaultInjector off(never);
  EXPECT_FALSE(off.ShouldTearSnapshot());

  // Successive checkpoints draw independent coins from the same seed: two
  // injectors agree call-by-call.
  FaultPlan half;
  half.seed = 13;
  half.snapshot_tear_rate = 0.5;
  FaultInjector c(half);
  FaultInjector d(half);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(c.ShouldTearSnapshot(), d.ShouldTearSnapshot()) << i;
  }
}

// --- Spec parsing ------------------------------------------------------------

TEST(ParseFaultSpecTest, FullSpecRoundTrips) {
  auto plan = ParseFaultSpec(
      "seed=7,kill_gen=12,death=0.001,alloc=0.25,tear=0.5,drop=0.01,"
      "dup=0.005,max_attempts=8");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_EQ(plan->kill_at_generation, 12);
  EXPECT_DOUBLE_EQ(plan->worker_death_rate, 0.001);
  EXPECT_DOUBLE_EQ(plan->alloc_fail_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan->snapshot_tear_rate, 0.5);
  EXPECT_DOUBLE_EQ(plan->link_drop_rate, 0.01);
  EXPECT_DOUBLE_EQ(plan->link_dup_rate, 0.005);
  EXPECT_EQ(plan->max_drop_attempts, 8u);
  EXPECT_TRUE(plan->enabled());
  EXPECT_TRUE(plan->lossy());

  auto again = ParseFaultSpec(plan->ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->ToString(), plan->ToString());
}

TEST(ParseFaultSpecTest, EmptySpecDisablesEverything) {
  auto plan = ParseFaultSpec("");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->enabled());
  EXPECT_FALSE(plan->lossy());
}

TEST(ParseFaultSpecTest, TypedErrors) {
  EXPECT_EQ(ParseFaultSpec("bogus=1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("seed").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("seed=xyz").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("drop=1.5").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("death=-0.1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("max_attempts=0").status().code(),
            StatusCode::kInvalidArgument);
}

// --- Crash recovery ----------------------------------------------------------

constexpr char kReachable[] = R"(
  reachable(x,y) :- link(x,y).
  reachable(x,y) :- link(x,z), reachable(z,y).
  fanout(x,count<y>) :- reachable(x,y).
)";

constexpr int kNodes = 16;

EngineOptions GraphOptions(ProvMode prov, int shards) {
  EngineOptions options;
  options.num_nodes = kNodes;
  options.runtime.prov = prov;
  options.runtime.num_physical = 4;
  options.runtime.shards = shards;
  return options;
}

SessionOptions BaseSessionOptions(int shards) {
  SessionOptions options;
  options.num_nodes = kNodes;
  options.num_physical = 4;
  options.shards = shards;
  return options;
}

// Ring + chords, with a delete phase so kill messages flow too.
void InsertPhase(Session* session) {
  for (int i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(
        session->Insert("link", {double(i), double((i + 1) % kNodes)}).ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(
          session->Insert("link", {double(i), double((i + 5) % kNodes)}).ok());
    }
  }
}

void DeletePhase(Session* session) {
  ASSERT_TRUE(session->Delete("link", {2, 3}).ok());
  ASSERT_TRUE(session->Delete("link", {0, 5}).ok());
}

struct SessionOutcome {
  std::vector<Tuple> reachable;
  std::vector<Tuple> fanout;
  RunMetrics metrics;
};

// The shared workload: insert phase, Apply, delete phase, Apply, scan.
void RunWorkload(Session* session, View* view, SessionOutcome* out) {
  InsertPhase(session);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  Status st = session->Apply();
  ASSERT_TRUE(st.ok()) << st.ToString();
  DeletePhase(session);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  st = session->Apply();
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto reachable = view->Scan("reachable");
  auto fanout = view->Scan("fanout");
  ASSERT_TRUE(reachable.ok() && fanout.ok());
  out->reachable = *reachable;
  out->fanout = *fanout;
  out->metrics = view->Metrics();
}

class CrashRecoveryTest
    : public ::testing::TestWithParam<std::tuple<ProvMode, int>> {};

INSTANTIATE_TEST_SUITE_P(
    ProvModesByShards, CrashRecoveryTest,
    ::testing::Combine(::testing::Values(ProvMode::kAbsorption,
                                         ProvMode::kRelative, ProvMode::kSet),
                       ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<std::tuple<ProvMode, int>>& info) {
      return std::string(ProvModeName(std::get<0>(info.param))) + "Shards" +
             std::to_string(std::get<1>(info.param));
    });

// The tentpole acceptance bar: a run killed mid-drain and recovered from
// the entry micro-checkpoint finishes with Scan results and traffic
// counters bit-identical to a run that never faulted.
TEST_P(CrashRecoveryTest, RecoveredRunIsBitIdentical) {
  const auto [prov, shards] = GetParam();

  SessionOutcome baseline;
  {
    Session session(BaseSessionOptions(shards));
    auto view = session.AddProgram(kReachable, GraphOptions(prov, shards));
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    RunWorkload(&session, *view, &baseline);
    ASSERT_FALSE(HasFatalFailure());
    EXPECT_EQ(session.recoveries(), 0u);
  }

  SessionOptions faulted_options = BaseSessionOptions(shards);
  faulted_options.faults.seed = FaultSeed(21);
  faulted_options.faults.kill_at_generation = 3;
  faulted_options.recovery.enabled = true;
  Session faulted(faulted_options);
  auto view = faulted.AddProgram(kReachable, GraphOptions(prov, shards));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  SessionOutcome recovered;
  RunWorkload(&faulted, *view, &recovered);
  ASSERT_FALSE(HasFatalFailure());

  EXPECT_GE(faulted.recoveries(), 1u) << "the one-shot kill never fired";
  EXPECT_EQ(recovered.reachable, baseline.reachable);
  EXPECT_EQ(recovered.fanout, baseline.fanout);
  EXPECT_EQ(recovered.metrics.messages, baseline.metrics.messages);
  EXPECT_EQ(recovered.metrics.kill_messages, baseline.metrics.kill_messages);
  EXPECT_DOUBLE_EQ(recovered.metrics.comm_mb, baseline.metrics.comm_mb);
  EXPECT_EQ(recovered.metrics.recoveries, faulted.recoveries());
}

// Rate-based deaths (re-randomized per recovery epoch) are masked the same
// way; with a generous retry budget the run converges to the baseline.
TEST_P(CrashRecoveryTest, RateBasedDeathsAreMasked) {
  const auto [prov, shards] = GetParam();

  SessionOutcome baseline;
  {
    Session session(BaseSessionOptions(shards));
    auto view = session.AddProgram(kReachable, GraphOptions(prov, shards));
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    RunWorkload(&session, *view, &baseline);
    ASSERT_FALSE(HasFatalFailure());
  }

  SessionOptions faulted_options = BaseSessionOptions(shards);
  faulted_options.faults.seed = FaultSeed(77);
  faulted_options.faults.worker_death_rate = 0.02;
  faulted_options.recovery.enabled = true;
  faulted_options.recovery.max_recoveries = 64;
  faulted_options.recovery.checkpoint_interval = 4;
  Session faulted(faulted_options);
  auto view = faulted.AddProgram(kReachable, GraphOptions(prov, shards));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  SessionOutcome recovered;
  RunWorkload(&faulted, *view, &recovered);
  ASSERT_FALSE(HasFatalFailure());

  EXPECT_EQ(recovered.reachable, baseline.reachable);
  EXPECT_EQ(recovered.fanout, baseline.fanout);
  EXPECT_EQ(recovered.metrics.messages, baseline.metrics.messages);
  EXPECT_EQ(recovered.metrics.kill_messages, baseline.metrics.kill_messages);
}

TEST(CrashRecoveryEdgeTest, RecoveryDisabledSurfacesUnavailable) {
  SessionOptions options = BaseSessionOptions(2);
  options.faults.kill_at_generation = 2;
  Session session(options);
  auto view =
      session.AddProgram(kReachable, GraphOptions(ProvMode::kAbsorption, 2));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  InsertPhase(&session);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  Status st = session.Apply();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  EXPECT_EQ(session.recoveries(), 0u);
}

TEST(CrashRecoveryEdgeTest, RetryBudgetExhaustionSurfacesTheFault) {
  // Every generation dies: max_recoveries runs out and the fault escapes.
  SessionOptions options = BaseSessionOptions(1);
  options.faults.seed = 5;
  options.faults.worker_death_rate = 1.0;
  options.recovery.enabled = true;
  options.recovery.max_recoveries = 3;
  Session session(options);
  auto view =
      session.AddProgram(kReachable, GraphOptions(ProvMode::kAbsorption, 1));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  InsertPhase(&session);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  Status st = session.Apply();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  EXPECT_EQ(session.recoveries(), 3u);
}

// --- Torn checkpoints --------------------------------------------------------

class TornCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "fault_test_torn.snap";
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  static bool Exists(const std::string& p) {
    std::FILE* f = std::fopen(p.c_str(), "rb");
    if (f != nullptr) std::fclose(f);
    return f != nullptr;
  }
  std::string path_;
};

TEST_F(TornCheckpointTest, TearNeverTouchesTheTarget) {
  // A good snapshot first, from a fault-free session.
  {
    Session session(BaseSessionOptions(1));
    auto view =
        session.AddProgram(kReachable, GraphOptions(ProvMode::kAbsorption, 1));
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    InsertPhase(&session);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    ASSERT_TRUE(session.Apply().ok());
    Status st = session.Checkpoint(path_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  ASSERT_TRUE(Exists(path_));
  EXPECT_FALSE(Exists(path_ + ".tmp")) << "rename must consume the tmp file";

  // A session whose every checkpoint tears: the write stops inside the
  // .tmp, the call reports Unavailable, and the good snapshot survives.
  {
    SessionOptions options = BaseSessionOptions(1);
    options.faults.seed = 2;
    options.faults.snapshot_tear_rate = 1.0;
    Session session(options);
    auto view =
        session.AddProgram(kReachable, GraphOptions(ProvMode::kAbsorption, 1));
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    InsertPhase(&session);
    DeletePhase(&session);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    ASSERT_TRUE(session.Apply().ok());
    Status st = session.Checkpoint(path_);
    EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
    EXPECT_TRUE(Exists(path_ + ".tmp")) << "the torn write leaves the tmp";
  }

  // The untouched target still restores, with the pre-tear contents.
  Session restored(BaseSessionOptions(1));
  Status st = restored.Restore(path_);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(restored.num_views(), 1u);
  auto contains = restored.view(0)->Contains("reachable", {2, 3});
  ASSERT_TRUE(contains.ok());
  EXPECT_TRUE(*contains) << "restored the torn write instead of the original";
}

// --- Lossy links -------------------------------------------------------------

std::vector<std::string> SortedTupleStrings(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) out.push_back(t.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(LossyLinkTest, ConvergesToTheLosslessFixpoint) {
  SessionOutcome lossless;
  {
    Session session(BaseSessionOptions(2));
    auto view =
        session.AddProgram(kReachable, GraphOptions(ProvMode::kAbsorption, 2));
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    RunWorkload(&session, *view, &lossless);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    EXPECT_EQ(lossless.metrics.link_dropped, 0u);
    EXPECT_EQ(lossless.metrics.link_duplicated, 0u);
    EXPECT_EQ(lossless.metrics.link_retried, 0u);
  }

  SessionOptions options = BaseSessionOptions(2);
  options.faults.seed = FaultSeed(9);
  options.faults.link_drop_rate = 0.25;
  options.faults.link_dup_rate = 0.2;
  Session session(options);
  auto view =
      session.AddProgram(kReachable, GraphOptions(ProvMode::kAbsorption, 2));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  SessionOutcome lossy;
  RunWorkload(&session, *view, &lossy);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  // Same fixpoint (delivery order differs, so compare as sets)...
  EXPECT_EQ(SortedTupleStrings(lossy.reachable),
            SortedTupleStrings(lossless.reachable));
  EXPECT_EQ(SortedTupleStrings(lossy.fanout),
            SortedTupleStrings(lossless.fanout));
  // ...and the loss actually happened, visible in the counters.
  EXPECT_GT(lossy.metrics.link_dropped, 0u);
  EXPECT_GT(lossy.metrics.link_retried, 0u);
  EXPECT_GT(lossy.metrics.link_duplicated, 0u);
}

TEST(LossyLinkTest, LossyRunIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    SessionOptions options = BaseSessionOptions(4);
    options.faults.seed = seed;
    options.faults.link_drop_rate = 0.3;
    Session session(options);
    auto view =
        session.AddProgram(kReachable, GraphOptions(ProvMode::kSet, 4));
    EXPECT_TRUE(view.ok()) << view.status().ToString();
    SessionOutcome out;
    RunWorkload(&session, *view, &out);
    return out;
  };
  SessionOutcome a = run(FaultSeed(31));
  SessionOutcome b = run(FaultSeed(31));
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  EXPECT_EQ(a.reachable, b.reachable);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.link_dropped, b.metrics.link_dropped);
  EXPECT_EQ(a.metrics.link_retried, b.metrics.link_retried);
  EXPECT_EQ(a.metrics.link_duplicated, b.metrics.link_duplicated);
}

TEST(LossyLinkTest, InertAtOneShard) {
  // Loss is injected on shard-boundary links only: a single shard has none,
  // so the run is bit-identical to a lossless one.
  SessionOutcome lossless;
  {
    Session session(BaseSessionOptions(1));
    auto view =
        session.AddProgram(kReachable, GraphOptions(ProvMode::kAbsorption, 1));
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    RunWorkload(&session, *view, &lossless);
  }
  SessionOptions options = BaseSessionOptions(1);
  options.faults.seed = FaultSeed(4);
  options.faults.link_drop_rate = 0.5;
  options.faults.link_dup_rate = 0.5;
  Session session(options);
  auto view =
      session.AddProgram(kReachable, GraphOptions(ProvMode::kAbsorption, 1));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  SessionOutcome lossy;
  RunWorkload(&session, *view, &lossy);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  EXPECT_EQ(lossy.metrics.link_dropped, 0u);
  EXPECT_EQ(lossy.metrics.link_duplicated, 0u);
  EXPECT_EQ(lossy.reachable, lossless.reachable);
  EXPECT_EQ(lossy.metrics.messages, lossless.metrics.messages);
}

}  // namespace
}  // namespace recnet
