// Cross-module property tests: randomized update sequences, applied in
// batches (so insertions, deletions and kill propagation interleave in
// flight), must leave every maintenance strategy's view equal to a
// from-scratch recomputation — the paper's core correctness claim ("while
// still maintaining correct answers").

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "engine/reachable_runtime.h"
#include "queries/reference.h"

namespace recnet {
namespace {

struct StrategyCase {
  ProvMode prov;
  ShipMode ship;
};

class BatchedUpdatesTest
    : public ::testing::TestWithParam<std::tuple<ProvMode, ShipMode, int>> {};

TEST_P(BatchedUpdatesTest, ViewEqualsReferenceAfterEveryBatch) {
  auto [prov, ship, seed] = GetParam();
  const int n = 7;
  RuntimeOptions opts;
  opts.prov = prov;
  opts.ship = ship;
  opts.num_physical = 3;  // Co-locate logical nodes: mixed local/remote.
  opts.batch_window = 2;
  opts.message_budget = 10'000'000;
  ReachableRuntime rt(n, opts);
  Rng rng(static_cast<uint64_t>(seed) * 104729 + 7);
  std::map<std::pair<int, int>, bool> live;

  for (int batch = 0; batch < 12; ++batch) {
    // Inject 1-4 operations without draining in between.
    int ops = 1 + static_cast<int>(rng.NextBounded(4));
    for (int i = 0; i < ops; ++i) {
      int src = static_cast<int>(rng.NextBounded(n));
      int dst = static_cast<int>(rng.NextBounded(n));
      if (src == dst) continue;
      auto key = std::make_pair(src, dst);
      if (live[key]) {
        // In set mode (DRed) each deletion requires its own over-delete +
        // re-derive cycle; batching deletions with insertions is only
        // defined for the provenance models.
        if (prov == ProvMode::kSet) {
          ASSERT_TRUE(rt.Run());
        }
        rt.DeleteLink(src, dst);
        live[key] = false;
        if (prov == ProvMode::kSet) {
          ASSERT_TRUE(rt.Run());
        }
      } else {
        rt.InsertLink(src, dst);
        live[key] = true;
      }
    }
    ASSERT_TRUE(rt.Run());
    std::vector<LinkTuple> links;
    for (const auto& [key, alive] : live) {
      if (alive) links.push_back(LinkTuple{key.first, key.second, 1.0});
    }
    auto expected = ReferenceReachability(n, links);
    for (int src = 0; src < n; ++src) {
      ASSERT_EQ(rt.ReachableFrom(src), expected[static_cast<size_t>(src)])
          << ProvModeName(prov) << "/" << ShipModeName(ship) << " seed "
          << seed << " batch " << batch << " src " << src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchedUpdatesTest,
    ::testing::Combine(::testing::Values(ProvMode::kSet, ProvMode::kAbsorption,
                                         ProvMode::kRelative),
                       ::testing::Values(ShipMode::kDirect, ShipMode::kEager,
                                         ShipMode::kLazy),
                       ::testing::Values(1, 2, 3, 4)));

// Strategies must agree with each other, not just with the oracle: the view
// contents are invariant across maintenance schemes.
TEST(StrategyAgreementTest, AllStrategiesProduceIdenticalViews) {
  const int n = 6;
  std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3},
                                            {3, 4}, {4, 5}, {5, 3}, {1, 4}};
  std::vector<std::unique_ptr<ReachableRuntime>> rts;
  for (StrategyCase c :
       {StrategyCase{ProvMode::kSet, ShipMode::kDirect},
        StrategyCase{ProvMode::kAbsorption, ShipMode::kEager},
        StrategyCase{ProvMode::kAbsorption, ShipMode::kLazy},
        StrategyCase{ProvMode::kRelative, ShipMode::kLazy}}) {
    RuntimeOptions opts;
    opts.prov = c.prov;
    opts.ship = c.ship;
    rts.push_back(std::make_unique<ReachableRuntime>(n, opts));
  }
  for (auto& rt : rts) {
    for (auto [s, d] : edges) rt->InsertLink(s, d);
    ASSERT_TRUE(rt->Run());
  }
  for (int src = 0; src < n; ++src) {
    auto baseline = rts[0]->ReachableFrom(src);
    for (size_t i = 1; i < rts.size(); ++i) {
      EXPECT_EQ(rts[i]->ReachableFrom(src), baseline) << "strategy " << i;
    }
  }
  // Delete a redundant edge everywhere and re-compare.
  for (auto& rt : rts) {
    rt->DeleteLink(2, 0);
    ASSERT_TRUE(rt->Run());
  }
  for (int src = 0; src < n; ++src) {
    auto baseline = rts[0]->ReachableFrom(src);
    for (size_t i = 1; i < rts.size(); ++i) {
      EXPECT_EQ(rts[i]->ReachableFrom(src), baseline) << "strategy " << i;
    }
  }
}

// Absorption provenance state must stay bounded by the view: every stored
// annotation depends only on live base variables.
TEST(ProvenanceHygieneTest, DeadVariablesNeverLingerInTheView) {
  const int n = 5;
  RuntimeOptions opts;
  opts.prov = ProvMode::kAbsorption;
  ReachableRuntime rt(n, opts);
  Rng rng(31337);
  std::map<std::pair<int, int>, bool> live;
  std::vector<std::pair<int, int>> dead_links;
  for (int step = 0; step < 30; ++step) {
    int src = static_cast<int>(rng.NextBounded(n));
    int dst = static_cast<int>(rng.NextBounded(n));
    if (src == dst) continue;
    auto key = std::make_pair(src, dst);
    if (live[key]) {
      rt.DeleteLink(src, dst);
      live[key] = false;
    } else {
      rt.InsertLink(src, dst);
      live[key] = true;
    }
    ASSERT_TRUE(rt.Run());
  }
  // Every view tuple must be derivable from the live links alone: setting
  // all live variables true must satisfy its annotation.
  for (int src = 0; src < n; ++src) {
    for (int dst : rt.ReachableFrom(src)) {
      const Prov* pv = rt.ViewProvenance(src, dst);
      ASSERT_NE(pv, nullptr);
      EXPECT_FALSE(pv->IsFalse());
      std::vector<bdd::Var> support;
      pv->SupportVars(&support);
      for (bdd::Var v : support) {
        EXPECT_TRUE(rt.LinkOfVar(v).has_value())
            << "annotation of (" << src << "," << dst
            << ") depends on dead variable p" << v;
      }
    }
  }
}

}  // namespace
}  // namespace recnet
