#include "engine/soft_state.h"

#include <gtest/gtest.h>

#include "engine/views.h"

namespace recnet {
namespace {

TEST(SoftStateClockTest, ExpiresInDeadlineOrder) {
  SoftStateClock clock;
  clock.Insert(Tuple::OfInts({1}), 10.0);
  clock.Insert(Tuple::OfInts({2}), 5.0);
  clock.Insert(Tuple::OfInts({3}), 20.0);
  EXPECT_EQ(clock.live(), 3u);
  auto expired = clock.AdvanceTo(12.0);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0], Tuple::OfInts({2}));
  EXPECT_EQ(expired[1], Tuple::OfInts({1}));
  EXPECT_EQ(clock.live(), 1u);
}

TEST(SoftStateClockTest, RenewalExtendsDeadline) {
  SoftStateClock clock;
  clock.Insert(Tuple::OfInts({1}), 5.0);
  clock.AdvanceTo(3.0);
  clock.Insert(Tuple::OfInts({1}), 5.0);  // Renewed: expires at 8.
  EXPECT_TRUE(clock.AdvanceTo(6.0).empty());
  auto expired = clock.AdvanceTo(9.0);
  ASSERT_EQ(expired.size(), 1u);
}

TEST(SoftStateClockTest, RemoveCancelsExpiry) {
  SoftStateClock clock;
  clock.Insert(Tuple::OfInts({1}), 5.0);
  clock.Remove(Tuple::OfInts({1}));
  EXPECT_FALSE(clock.Contains(Tuple::OfInts({1})));
  EXPECT_TRUE(clock.AdvanceTo(10.0).empty());
}

TEST(SoftStateClockTest, EqualDeadlinesAllExpire) {
  SoftStateClock clock;
  clock.Insert(Tuple::OfInts({1}), 5.0);
  clock.Insert(Tuple::OfInts({2}), 5.0);
  EXPECT_EQ(clock.AdvanceTo(5.0).size(), 2u);
}

TEST(SoftStateViewTest, ExpirationsDeleteIncrementally) {
  RuntimeOptions opts;
  opts.prov = ProvMode::kAbsorption;
  SoftStateReachabilityView view(3, opts);
  view.InsertLink(0, 1, /*ttl=*/10.0);
  view.InsertLink(1, 2, /*ttl=*/5.0);
  ASSERT_TRUE(view.Apply().ok());
  EXPECT_TRUE(view.IsReachable(0, 2));

  view.AdvanceTime(7.0);  // link(1,2) expires.
  ASSERT_TRUE(view.Apply().ok());
  EXPECT_FALSE(view.IsReachable(0, 2));
  EXPECT_TRUE(view.IsReachable(0, 1));
  EXPECT_EQ(view.live_links(), 1u);

  view.AdvanceTime(11.0);  // link(0,1) expires.
  ASSERT_TRUE(view.Apply().ok());
  EXPECT_FALSE(view.IsReachable(0, 1));
  EXPECT_EQ(view.live_links(), 0u);
}

TEST(SoftStateViewTest, RenewalKeepsViewStableWithoutTraffic) {
  RuntimeOptions opts;
  opts.prov = ProvMode::kAbsorption;
  opts.num_physical = 3;
  SoftStateReachabilityView view(3, opts);
  view.InsertLink(0, 1, 10.0);
  view.InsertLink(1, 2, 10.0);
  ASSERT_TRUE(view.Apply().ok());
  uint64_t messages = view.Metrics().messages;
  // Periodic refresh before expiry: the derivations stay valid, no
  // propagation happens.
  for (double t : {4.0, 8.0, 12.0, 16.0}) {
    view.AdvanceTime(t);
    view.InsertLink(0, 1, 10.0);
    view.InsertLink(1, 2, 10.0);
    ASSERT_TRUE(view.Apply().ok());
    EXPECT_TRUE(view.IsReachable(0, 2));
  }
  EXPECT_EQ(view.Metrics().messages, messages);
}

TEST(SoftStateViewTest, MissedRefreshExpiresThenReinsertRestores) {
  RuntimeOptions opts;
  opts.prov = ProvMode::kAbsorption;
  SoftStateReachabilityView view(3, opts);
  view.InsertLink(0, 1, 5.0);
  view.InsertLink(1, 2, 5.0);
  ASSERT_TRUE(view.Apply().ok());
  view.AdvanceTime(6.0);  // Both expire.
  ASSERT_TRUE(view.Apply().ok());
  EXPECT_FALSE(view.IsReachable(0, 2));
  view.InsertLink(0, 1, 5.0);  // Fresh insertion (new base variable).
  view.InsertLink(1, 2, 5.0);
  ASSERT_TRUE(view.Apply().ok());
  EXPECT_TRUE(view.IsReachable(0, 2));
}

}  // namespace
}  // namespace recnet
