#include <gtest/gtest.h>

#include "operators/agg_sel.h"
#include "operators/fixpoint.h"
#include "operators/group_by.h"
#include "operators/hash_join.h"
#include "operators/min_ship.h"

namespace recnet {
namespace {

// --- Fixpoint (Algorithm 1) --------------------------------------------------

class FixpointTest : public ::testing::Test {
 protected:
  bdd::Manager mgr_;
  Prov Var(bdd::Var v) {
    return Prov::BaseVar(ProvMode::kAbsorption, &mgr_, v);
  }
};

TEST_F(FixpointTest, FirstDerivationPropagatesAsIs) {
  Fixpoint fix(ProvMode::kAbsorption);
  Tuple t = Tuple::OfInts({1, 2});
  auto delta = fix.ProcessInsert(t, Var(1));
  ASSERT_TRUE(delta.has_value());
  EXPECT_TRUE(*delta == Var(1));
  EXPECT_TRUE(fix.Contains(t));
}

TEST_F(FixpointTest, AbsorbedDerivationDoesNotPropagate) {
  Fixpoint fix(ProvMode::kAbsorption);
  Tuple t = Tuple::OfInts({1, 2});
  fix.ProcessInsert(t, Var(1));
  // p1 ∧ p2 is absorbed by p1.
  EXPECT_FALSE(fix.ProcessInsert(t, Var(1).And(Var(2))).has_value());
  // A genuinely new derivation propagates its delta.
  EXPECT_TRUE(fix.ProcessInsert(t, Var(3)).has_value());
}

TEST_F(FixpointTest, FalseInsertIsIgnored) {
  Fixpoint fix(ProvMode::kAbsorption);
  EXPECT_FALSE(fix.ProcessInsert(Tuple::OfInts({1, 2}),
                                 Prov::False(ProvMode::kAbsorption, &mgr_))
                   .has_value());
  EXPECT_EQ(fix.size(), 0u);
}

TEST_F(FixpointTest, KillRemovesUnderivableTuples) {
  Fixpoint fix(ProvMode::kAbsorption);
  Tuple t1 = Tuple::OfInts({1, 2});
  Tuple t2 = Tuple::OfInts({1, 3});
  fix.ProcessInsert(t1, Var(1));
  fix.ProcessInsert(t1, Var(2));  // t1 = p1 ∨ p2.
  fix.ProcessInsert(t2, Var(1));  // t2 = p1.
  auto result = fix.ProcessKill({1});
  EXPECT_TRUE(result.changed);
  ASSERT_EQ(result.removed.size(), 1u);
  EXPECT_EQ(result.removed[0], t2);
  EXPECT_TRUE(fix.Contains(t1));
  EXPECT_FALSE(fix.Contains(t2));
}

TEST_F(FixpointTest, KillOfUnrelatedVarChangesNothing) {
  Fixpoint fix(ProvMode::kAbsorption);
  fix.ProcessInsert(Tuple::OfInts({1, 2}), Var(1));
  auto result = fix.ProcessKill({42});
  EXPECT_FALSE(result.changed);
  EXPECT_TRUE(result.removed.empty());
}

TEST_F(FixpointTest, SetModeDeduplicates) {
  bdd::Manager mgr;
  Fixpoint fix(ProvMode::kSet);
  Prov t = Prov::True(ProvMode::kSet, &mgr);
  EXPECT_TRUE(fix.ProcessInsert(Tuple::OfInts({1, 2}), t).has_value());
  EXPECT_FALSE(fix.ProcessInsert(Tuple::OfInts({1, 2}), t).has_value());
  EXPECT_TRUE(fix.ProcessDelete(Tuple::OfInts({1, 2})));
  EXPECT_FALSE(fix.ProcessDelete(Tuple::OfInts({1, 2})));
}

TEST_F(FixpointTest, StateSizeGrowsWithContents) {
  Fixpoint fix(ProvMode::kAbsorption);
  size_t empty = fix.StateSizeBytes();
  fix.ProcessInsert(Tuple::OfInts({1, 2}), Var(1));
  EXPECT_GT(fix.StateSizeBytes(), empty);
}

// --- PipelinedHashJoin (Algorithm 2) ----------------------------------------

class JoinTest : public ::testing::Test {
 protected:
  JoinTest()
      : join_(ProvMode::kAbsorption, {1}, {0},
              [](const Tuple& l, const Tuple& r) {
                return Tuple::OfInts({l.IntAt(0), r.IntAt(1)});
              }) {}
  bdd::Manager mgr_;
  PipelinedHashJoin join_;
  Prov Var(bdd::Var v) {
    return Prov::BaseVar(ProvMode::kAbsorption, &mgr_, v);
  }
};

TEST_F(JoinTest, InsertProbesOtherSide) {
  // Build: link(1, 5); probe: reachable(5, 9) -> reachable(1, 9).
  auto outs =
      join_.ProcessInsert(PipelinedHashJoin::kLeft, Tuple::OfInts({1, 5}),
                          Var(1));
  EXPECT_TRUE(outs.empty());
  outs = join_.ProcessInsert(PipelinedHashJoin::kRight, Tuple::OfInts({5, 9}),
                             Var(2));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].tuple, Tuple::OfInts({1, 9}));
  EXPECT_TRUE(outs[0].pv == Var(1).And(Var(2)));
}

TEST_F(JoinTest, NoMatchNoOutput) {
  auto outs =
      join_.ProcessInsert(PipelinedHashJoin::kLeft, Tuple::OfInts({1, 5}),
                          Var(1));
  EXPECT_TRUE(outs.empty());
  outs = join_.ProcessInsert(PipelinedHashJoin::kRight, Tuple::OfInts({6, 9}),
                             Var(2));
  EXPECT_TRUE(outs.empty());
}

TEST_F(JoinTest, UnchangedProvenanceProducesNoOutput) {
  join_.ProcessInsert(PipelinedHashJoin::kLeft, Tuple::OfInts({1, 5}),
                      Var(1));
  join_.ProcessInsert(PipelinedHashJoin::kRight, Tuple::OfInts({5, 9}),
                      Var(2));
  // Absorbed delta on the probe side: no new outputs.
  auto outs = join_.ProcessInsert(PipelinedHashJoin::kRight,
                                  Tuple::OfInts({5, 9}), Var(2));
  EXPECT_TRUE(outs.empty());
}

TEST_F(JoinTest, MultipleMatchesAllJoin) {
  join_.ProcessInsert(PipelinedHashJoin::kLeft, Tuple::OfInts({1, 5}),
                      Var(1));
  join_.ProcessInsert(PipelinedHashJoin::kLeft, Tuple::OfInts({2, 5}),
                      Var(2));
  auto outs = join_.ProcessInsert(PipelinedHashJoin::kRight,
                                  Tuple::OfInts({5, 9}), Var(3));
  EXPECT_EQ(outs.size(), 2u);
}

TEST_F(JoinTest, KillDropsDeadEntries) {
  join_.ProcessInsert(PipelinedHashJoin::kLeft, Tuple::OfInts({1, 5}),
                      Var(1));
  join_.ProcessKill({1});
  EXPECT_FALSE(join_.Contains(PipelinedHashJoin::kLeft, Tuple::OfInts({1, 5})));
  // No stale match remains for later probes.
  auto outs = join_.ProcessInsert(PipelinedHashJoin::kRight,
                                  Tuple::OfInts({5, 9}), Var(2));
  EXPECT_TRUE(outs.empty());
}

TEST_F(JoinTest, RefireReturnsJoinResultsWithoutStateChange) {
  join_.ProcessInsert(PipelinedHashJoin::kLeft, Tuple::OfInts({1, 5}),
                      Var(1));
  join_.ProcessInsert(PipelinedHashJoin::kRight, Tuple::OfInts({5, 9}),
                      Var(2));
  auto outs = join_.Refire(PipelinedHashJoin::kRight, Tuple::OfInts({5, 9}));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].tuple, Tuple::OfInts({1, 9}));
  // Refire again: same result (state unchanged).
  EXPECT_EQ(join_.Refire(PipelinedHashJoin::kRight, Tuple::OfInts({5, 9}))
                .size(),
            1u);
}

TEST(JoinSetModeTest, DeleteCascades) {
  bdd::Manager mgr;
  PipelinedHashJoin join(ProvMode::kSet, {1}, {0},
                         [](const Tuple& l, const Tuple& r) {
                           return Tuple::OfInts({l.IntAt(0), r.IntAt(1)});
                         });
  Prov t = Prov::True(ProvMode::kSet, &mgr);
  join.ProcessInsert(PipelinedHashJoin::kLeft, Tuple::OfInts({1, 5}), t);
  join.ProcessInsert(PipelinedHashJoin::kRight, Tuple::OfInts({5, 9}), t);
  auto outs = join.ProcessDelete(PipelinedHashJoin::kLeft,
                                 Tuple::OfInts({1, 5}));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].type, UpdateType::kDelete);
  EXPECT_EQ(outs[0].tuple, Tuple::OfInts({1, 9}));
  EXPECT_TRUE(
      join.ProcessDelete(PipelinedHashJoin::kLeft, Tuple::OfInts({1, 5}))
          .empty());
}

// --- MinShip (Algorithm 3) ---------------------------------------------------

class MinShipTest : public ::testing::Test {
 protected:
  Prov Var(bdd::Var v) {
    return Prov::BaseVar(ProvMode::kAbsorption, &mgr_, v);
  }
  MinShip Make(ShipMode mode, size_t window = 4) {
    return MinShip(ProvMode::kAbsorption, mode, window,
                   [this](const Tuple& t, const Prov& pv) {
                     sent_.emplace_back(t, pv);
                   });
  }
  bdd::Manager mgr_;
  std::vector<std::pair<Tuple, Prov>> sent_;
};

TEST_F(MinShipTest, FirstDerivationShipsImmediately) {
  MinShip ship = Make(ShipMode::kLazy);
  ship.ProcessInsert(Tuple::OfInts({1, 2}), Var(1));
  ASSERT_EQ(sent_.size(), 1u);
}

TEST_F(MinShipTest, LazyBuffersAlternateDerivations) {
  MinShip ship = Make(ShipMode::kLazy);
  Tuple t = Tuple::OfInts({1, 2});
  ship.ProcessInsert(t, Var(1));
  ship.ProcessInsert(t, Var(2));
  ship.ProcessInsert(t, Var(3));
  EXPECT_EQ(sent_.size(), 1u);  // Only the first derivation shipped.
  EXPECT_EQ(ship.buffered(), 1u);
}

TEST_F(MinShipTest, AbsorbedDerivationsAreNotEvenBuffered) {
  MinShip ship = Make(ShipMode::kLazy);
  Tuple t = Tuple::OfInts({1, 2});
  ship.ProcessInsert(t, Var(1));
  ship.ProcessInsert(t, Var(1).And(Var(2)));  // Absorbed by p1.
  EXPECT_EQ(ship.buffered(), 0u);
}

TEST_F(MinShipTest, LazyPromotesBufferedDerivationOnKill) {
  MinShip ship = Make(ShipMode::kLazy);
  Tuple t = Tuple::OfInts({1, 2});
  ship.ProcessInsert(t, Var(1));
  ship.ProcessInsert(t, Var(2));
  ASSERT_EQ(sent_.size(), 1u);
  ship.ProcessKill({1});
  // The buffered alternate derivation p2 must ship.
  ASSERT_EQ(sent_.size(), 2u);
  EXPECT_TRUE(sent_[1].second == Var(2));
  EXPECT_EQ(ship.buffered(), 0u);
}

TEST_F(MinShipTest, KillWithNoAlternativeDropsTuple) {
  MinShip ship = Make(ShipMode::kLazy);
  Tuple t = Tuple::OfInts({1, 2});
  ship.ProcessInsert(t, Var(1));
  ship.ProcessKill({1});
  EXPECT_EQ(sent_.size(), 1u);  // Nothing new shipped.
  // Re-insertion after death is a fresh first derivation: ships again.
  ship.ProcessInsert(t, Var(3));
  EXPECT_EQ(sent_.size(), 2u);
}

TEST_F(MinShipTest, EagerFlushesEveryWindow) {
  MinShip ship = Make(ShipMode::kEager, 2);
  Tuple t = Tuple::OfInts({1, 2});
  ship.ProcessInsert(t, Var(1));  // Ships (first).
  ship.ProcessInsert(t, Var(2));  // Buffered; window hit -> flush.
  EXPECT_EQ(sent_.size(), 2u);
  EXPECT_EQ(ship.buffered(), 0u);
}

TEST_F(MinShipTest, DirectShipsEveryNewDerivation) {
  MinShip ship = Make(ShipMode::kDirect);
  Tuple t = Tuple::OfInts({1, 2});
  ship.ProcessInsert(t, Var(1));
  ship.ProcessInsert(t, Var(2));
  ship.ProcessInsert(t, Var(2));  // Absorbed: not re-shipped.
  EXPECT_EQ(sent_.size(), 2u);
}

TEST_F(MinShipTest, FlushShipsAllBuffered) {
  MinShip ship = Make(ShipMode::kLazy);
  ship.ProcessInsert(Tuple::OfInts({1, 2}), Var(1));
  ship.ProcessInsert(Tuple::OfInts({1, 2}), Var(2));
  ship.Flush();
  EXPECT_EQ(sent_.size(), 2u);
  EXPECT_EQ(ship.buffered(), 0u);
}

// --- AggSel (Algorithm 4) ----------------------------------------------------

class AggSelTest : public ::testing::Test {
 protected:
  Prov Var(bdd::Var v) {
    return Prov::BaseVar(ProvMode::kAbsorption, &mgr_, v);
  }
  static Tuple Path(int64_t s, int64_t d, double cost, int64_t len) {
    std::vector<Value> v;
    v.emplace_back(s);
    v.emplace_back(d);
    v.emplace_back(cost);
    v.emplace_back(len);
    return Tuple(std::move(v));
  }
  bdd::Manager mgr_;
};

TEST_F(AggSelTest, FirstTupleOfGroupPropagates) {
  AggSel agg(ProvMode::kAbsorption, {0, 1}, {{AggFn::kMin, 2}});
  auto outs = agg.ProcessInsert(Path(1, 2, 10.0, 1), Var(1));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].type, UpdateType::kInsert);
}

TEST_F(AggSelTest, WorseTupleIsSuppressed) {
  AggSel agg(ProvMode::kAbsorption, {0, 1}, {{AggFn::kMin, 2}});
  agg.ProcessInsert(Path(1, 2, 10.0, 1), Var(1));
  auto outs = agg.ProcessInsert(Path(1, 2, 15.0, 1), Var(2));
  EXPECT_TRUE(outs.empty());
  EXPECT_EQ(agg.buffered_tuples(), 2u);  // Still buffered for deletions.
}

TEST_F(AggSelTest, BetterTupleDisplacesWinner) {
  AggSel agg(ProvMode::kAbsorption, {0, 1}, {{AggFn::kMin, 2}});
  agg.ProcessInsert(Path(1, 2, 10.0, 1), Var(1));
  auto outs = agg.ProcessInsert(Path(1, 2, 5.0, 2), Var(2));
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs[0].type, UpdateType::kDelete);  // Displaced winner.
  EXPECT_EQ(outs[0].tuple, Path(1, 2, 10.0, 1));
  EXPECT_EQ(outs[1].type, UpdateType::kInsert);
  EXPECT_EQ(outs[1].tuple, Path(1, 2, 5.0, 2));
}

TEST_F(AggSelTest, DifferentGroupsAreIndependent) {
  AggSel agg(ProvMode::kAbsorption, {0, 1}, {{AggFn::kMin, 2}});
  agg.ProcessInsert(Path(1, 2, 10.0, 1), Var(1));
  auto outs = agg.ProcessInsert(Path(1, 3, 99.0, 1), Var(2));
  EXPECT_EQ(outs.size(), 1u);
}

TEST_F(AggSelTest, MultiAggregatePassesIfAnyImproves) {
  AggSel agg(ProvMode::kAbsorption, {0, 1},
             {{AggFn::kMin, 2}, {AggFn::kMin, 3}});
  agg.ProcessInsert(Path(1, 2, 10.0, 5), Var(1));
  // Worse cost but better length: must propagate.
  auto outs = agg.ProcessInsert(Path(1, 2, 20.0, 2), Var(2));
  ASSERT_FALSE(outs.empty());
  EXPECT_EQ(outs.back().type, UpdateType::kInsert);
  // Worse on both: suppressed.
  EXPECT_TRUE(agg.ProcessInsert(Path(1, 2, 30.0, 9), Var(3)).empty());
}

TEST_F(AggSelTest, DeleteOfWinnerPromotesRunnerUp) {
  AggSel agg(ProvMode::kAbsorption, {0, 1}, {{AggFn::kMin, 2}});
  agg.ProcessInsert(Path(1, 2, 10.0, 1), Var(1));
  agg.ProcessInsert(Path(1, 2, 15.0, 1), Var(2));  // Buffered runner-up.
  auto outs = agg.ProcessDelete(Path(1, 2, 10.0, 1));
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs[0].type, UpdateType::kInsert);  // Promoted runner-up.
  EXPECT_EQ(outs[0].tuple, Path(1, 2, 15.0, 1));
  EXPECT_EQ(outs[1].type, UpdateType::kDelete);
}

TEST_F(AggSelTest, DeleteOfNonWinnerIsSilent) {
  AggSel agg(ProvMode::kAbsorption, {0, 1}, {{AggFn::kMin, 2}});
  agg.ProcessInsert(Path(1, 2, 10.0, 1), Var(1));
  agg.ProcessInsert(Path(1, 2, 15.0, 1), Var(2));
  EXPECT_TRUE(agg.ProcessDelete(Path(1, 2, 15.0, 1)).empty());
}

TEST_F(AggSelTest, DeleteBeforeInsertIsIgnored) {
  AggSel agg(ProvMode::kAbsorption, {0, 1}, {{AggFn::kMin, 2}});
  EXPECT_TRUE(agg.ProcessDelete(Path(1, 2, 10.0, 1)).empty());
}

TEST_F(AggSelTest, KillOfWinnerPromotesRunnerUp) {
  AggSel agg(ProvMode::kAbsorption, {0, 1}, {{AggFn::kMin, 2}});
  agg.ProcessInsert(Path(1, 2, 10.0, 1), Var(1));
  agg.ProcessInsert(Path(1, 2, 15.0, 1), Var(2));
  auto outs = agg.ProcessKill({1});
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].type, UpdateType::kInsert);
  EXPECT_EQ(outs[0].tuple, Path(1, 2, 15.0, 1));
  EXPECT_EQ(agg.buffered_tuples(), 1u);
}

// Regression: with multiple aggregates, displacing the cost winner must not
// retract it if it is still the length winner (the direct expensive hop
// stays in the view as the fewest-hops path).
TEST_F(AggSelTest, DisplacedWinnerStillWinningOtherAggIsNotDeleted) {
  AggSel agg(ProvMode::kAbsorption, {0, 1},
             {{AggFn::kMin, 2}, {AggFn::kMin, 3}});
  Tuple direct = Path(0, 3, 10.0, 1);   // Expensive, 1 hop.
  Tuple detour = Path(0, 3, 3.0, 3);    // Cheap, 3 hops.
  agg.ProcessInsert(direct, Var(1));
  auto outs = agg.ProcessInsert(detour, Var(2));
  ASSERT_EQ(outs.size(), 1u);  // No DEL: direct still wins on hops.
  EXPECT_EQ(outs[0].type, UpdateType::kInsert);
  EXPECT_EQ(outs[0].tuple, detour);
}

// Regression: a tuple winning both aggregates and displaced on both at once
// must be retracted exactly once.
TEST_F(AggSelTest, DoubleDisplacementEmitsSingleDelete) {
  AggSel agg(ProvMode::kAbsorption, {0, 1},
             {{AggFn::kMin, 2}, {AggFn::kMin, 3}});
  Tuple first = Path(0, 3, 10.0, 5);
  Tuple better = Path(0, 3, 2.0, 1);  // Better on both aggregates.
  agg.ProcessInsert(first, Var(1));
  auto outs = agg.ProcessInsert(better, Var(2));
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs[0].type, UpdateType::kDelete);
  EXPECT_EQ(outs[0].tuple, first);
  EXPECT_EQ(outs[1].type, UpdateType::kInsert);
}

// Regression: when a kill removes several buffered tuples of one group, the
// re-elected winner must be a surviving tuple (never another dead one).
TEST_F(AggSelTest, KillOfMultipleGroupMembersElectsSurvivor) {
  AggSel agg(ProvMode::kAbsorption, {0, 1}, {{AggFn::kMin, 2}});
  agg.ProcessInsert(Path(1, 2, 10.0, 1), Var(1));  // Winner, dies.
  agg.ProcessInsert(Path(1, 2, 11.0, 1), Var(1));  // Runner-up, also dies.
  agg.ProcessInsert(Path(1, 2, 15.0, 1), Var(2));  // Survivor.
  auto outs = agg.ProcessKill({1});
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].type, UpdateType::kInsert);
  EXPECT_EQ(outs[0].tuple, Path(1, 2, 15.0, 1));
  EXPECT_EQ(agg.buffered_tuples(), 1u);
}

TEST_F(AggSelTest, MaxAggregateWorks) {
  AggSel agg(ProvMode::kAbsorption, {0}, {{AggFn::kMax, 1}});
  auto t1 = Tuple::OfInts({7, 3});
  auto t2 = Tuple::OfInts({7, 9});
  EXPECT_EQ(agg.ProcessInsert(t1, Var(1)).size(), 1u);
  auto outs = agg.ProcessInsert(t2, Var(2));
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs[0].type, UpdateType::kDelete);
  EXPECT_EQ(outs[0].tuple, t1);
}

// --- GroupByAggregate --------------------------------------------------------

TEST(GroupByTest, CountWithDeletions) {
  GroupByAggregate counts({0}, {{GroupAggFn::kCount, 0}});
  counts.OnInsert(Tuple::OfInts({1, 10}));
  counts.OnInsert(Tuple::OfInts({1, 11}));
  counts.OnInsert(Tuple::OfInts({2, 12}));
  auto r = counts.Result(Tuple::OfInts({1}));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)[0].AsInt(), 2);
  counts.OnDelete(Tuple::OfInts({1, 10}));
  EXPECT_EQ((*counts.Result(Tuple::OfInts({1})))[0].AsInt(), 1);
  counts.OnDelete(Tuple::OfInts({1, 11}));
  EXPECT_FALSE(counts.Result(Tuple::OfInts({1})).has_value());
  EXPECT_EQ((*counts.Result(Tuple::OfInts({2})))[0].AsInt(), 1);
}

TEST(GroupByTest, MinFallsBackOnDeletion) {
  GroupByAggregate mins({0}, {{GroupAggFn::kMin, 1}});
  mins.OnInsert(Tuple::OfInts({1, 5}));
  mins.OnInsert(Tuple::OfInts({1, 9}));
  EXPECT_EQ((*mins.Result(Tuple::OfInts({1})))[0].AsDouble(), 5.0);
  mins.OnDelete(Tuple::OfInts({1, 5}));
  EXPECT_EQ((*mins.Result(Tuple::OfInts({1})))[0].AsDouble(), 9.0);
}

TEST(GroupByTest, MaxAndSum) {
  GroupByAggregate agg({0}, {{GroupAggFn::kMax, 1}, {GroupAggFn::kSum, 1}});
  agg.OnInsert(Tuple::OfInts({1, 5}));
  agg.OnInsert(Tuple::OfInts({1, 7}));
  auto r = agg.Result(Tuple::OfInts({1}));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)[0].AsDouble(), 7.0);
  EXPECT_EQ((*r)[1].AsDouble(), 12.0);
  agg.OnDelete(Tuple::OfInts({1, 7}));
  r = agg.Result(Tuple::OfInts({1}));
  EXPECT_EQ((*r)[0].AsDouble(), 5.0);
  EXPECT_EQ((*r)[1].AsDouble(), 5.0);
}

TEST(GroupByTest, DuplicateValuesCountedWithMultiplicity) {
  GroupByAggregate mins({0}, {{GroupAggFn::kMin, 1}});
  mins.OnInsert(Tuple::OfInts({1, 5}));
  mins.OnInsert(Tuple::OfInts({2, 5}));  // Different group.
  mins.OnInsert(Tuple::OfInts({1, 5}));  // Same value twice in group 1.
  mins.OnDelete(Tuple::OfInts({1, 5}));
  // One instance remains.
  EXPECT_EQ((*mins.Result(Tuple::OfInts({1})))[0].AsDouble(), 5.0);
}

TEST(GroupByTest, GroupsEnumerates) {
  GroupByAggregate counts({0}, {{GroupAggFn::kCount, 0}});
  counts.OnInsert(Tuple::OfInts({1, 10}));
  counts.OnInsert(Tuple::OfInts({2, 11}));
  EXPECT_EQ(counts.Groups().size(), 2u);
}

}  // namespace
}  // namespace recnet
