#include <gtest/gtest.h>

#include "datalog/analyzer.h"
#include "datalog/lexer.h"
#include "datalog/parser.h"
#include "datalog/planner.h"

namespace recnet {
namespace datalog {
namespace {

constexpr char kReachable[] = R"(
  % Query 1 from the paper.
  reachable(x,y) :- link(x,y).
  reachable(x,y) :- link(x,z), reachable(z,y).
)";

TEST(LexerTest, TokenizesRule) {
  auto tokens = Lex("reachable(x,y) :- link(x,y).");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 15u);  // 14 tokens + end.
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "reachable");
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kColonDash);
  EXPECT_EQ((*tokens)[13].kind, TokenKind::kPeriod);
}

TEST(LexerTest, SkipsCommentsAndTracksLines) {
  auto tokens = Lex("% comment line\nfoo(x).");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "foo");
  EXPECT_EQ((*tokens)[0].line, 2);
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Lex("f(1, 2.5, \"hi\").");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[2].number, 1.0);
  EXPECT_EQ((*tokens)[4].number, 2.5);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[6].text, "hi");
}

TEST(LexerTest, NumberFollowedByPeriodTerminator) {
  auto tokens = Lex("f(1).");
  ASSERT_TRUE(tokens.ok());
  // 1 must not swallow the rule terminator.
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kPeriod);
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Lex("f(x) ;").ok());
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Lex("f(\"oops).").ok());
}

TEST(ParserTest, ParsesReachable) {
  auto program = Parse(kReachable);
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program->rules.size(), 2u);
  EXPECT_EQ(program->rules[0].head.predicate, "reachable");
  EXPECT_EQ(program->rules[0].body.size(), 1u);
  EXPECT_EQ(program->rules[1].body.size(), 2u);
  EXPECT_EQ(program->rules[1].ToString(),
            "reachable(x,y) :- link(x,z), reachable(z,y).");
}

TEST(ParserTest, ParsesAggregateHeads) {
  auto program = Parse("minCost(x,y,min<c>) :- path(x,y,p,c,l).");
  ASSERT_TRUE(program.ok());
  const Term& agg = program->rules[0].head.args[2];
  EXPECT_EQ(agg.kind, Term::Kind::kAggregate);
  EXPECT_EQ(agg.agg, AggKind::kMin);
  EXPECT_EQ(agg.name, "c");
}

TEST(ParserTest, ParsesFacts) {
  auto program = Parse("link(1,2).");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->rules[0].IsFact());
  EXPECT_EQ(program->rules[0].head.args[0].kind, Term::Kind::kNumber);
}

TEST(ParserTest, MinAsPlainVariableStillParses) {
  // `min` without angle brackets is an ordinary identifier.
  auto program = Parse("f(min) :- g(min).");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->rules[0].head.args[0].kind, Term::Kind::kVariable);
}

TEST(ParserTest, RejectsAggregateInBody) {
  EXPECT_FALSE(Parse("f(x) :- g(min<x>).").ok());
}

TEST(ParserTest, RejectsMissingPeriod) {
  EXPECT_FALSE(Parse("f(x) :- g(x)").ok());
}

TEST(ParserTest, RejectsDanglingComma) {
  EXPECT_FALSE(Parse("f(x) :- g(x), .").ok());
}

TEST(AnalyzerTest, ClassifiesEdbIdbAndRecursion) {
  auto program = Parse(kReachable);
  ASSERT_TRUE(program.ok());
  auto info = Analyze(*program);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->idb, (std::set<std::string>{"reachable"}));
  EXPECT_EQ(info->edb, (std::set<std::string>{"link"}));
  EXPECT_EQ(info->recursive, (std::set<std::string>{"reachable"}));
  EXPECT_TRUE(info->linear_recursion);
}

TEST(AnalyzerTest, DetectsNonLinearRecursion) {
  auto program = Parse(
      "reachable(x,y) :- link(x,y)."
      "reachable(x,y) :- reachable(x,z), reachable(z,y).");
  ASSERT_TRUE(program.ok());
  auto info = Analyze(*program);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->linear_recursion);
}

TEST(AnalyzerTest, DetectsMutualRecursion) {
  auto program = Parse(
      "even(x) :- zero(x)."
      "even(x) :- succ(y,x), odd(y)."
      "odd(x) :- succ(y,x), even(y).");
  ASSERT_TRUE(program.ok());
  auto info = Analyze(*program);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->recursive, (std::set<std::string>{"even", "odd"}));
}

TEST(AnalyzerTest, RejectsUnsafeHeadVariable) {
  auto program = Parse("f(x,q) :- g(x).");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Analyze(*program).ok());
}

TEST(AnalyzerTest, RejectsUnsafeAggregate) {
  auto program = Parse("m(x,min<z>) :- g(x,y).");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Analyze(*program).ok());
}

TEST(AnalyzerTest, RejectsInconsistentArity) {
  auto program = Parse("f(x) :- g(x). f(x,y) :- g(x), g(y).");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Analyze(*program).ok());
}

TEST(AnalyzerTest, RejectsAggregateInRecursion) {
  auto program = Parse(
      "p(x,min<y>) :- e(x,y)."
      "p(x,min<y>) :- e(x,z), p(z,y).");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Analyze(*program).ok());
}

TEST(PlannerTest, LowersReachableOntoFigure4Plan) {
  auto plan = PlanSource(kReachable);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->kind, PlanKind::kReachable);
  EXPECT_EQ(plan->view, "reachable");
  EXPECT_EQ(plan->edb, "link");
  EXPECT_EQ(plan->edb_join_col, 1u);
  EXPECT_EQ(plan->view_join_col, 0u);
  EXPECT_NE(plan->ToString().find("reachable"), std::string::npos);
}

TEST(PlannerTest, AcceptsRightLinearOrientation) {
  // The paper's alternate join-column orientation:
  // view(x,y) :- view(x,z), edb(z,y).
  auto plan = PlanSource(
      "r(x,y) :- link(x,y)."
      "r(x,y) :- r(x,z), link(z,y).");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->kind, PlanKind::kReachable);
  EXPECT_EQ(plan->edb_join_col, 0u);
  EXPECT_EQ(plan->view_join_col, 1u);
}

TEST(PlannerTest, PlansShortestPathShape) {
  auto plan = PlanSource(
      "path(x,y,c) :- link(x,y,c)."
      "path(x,y,c) :- link(x,z,c), path(z,y,c2)."
      "minCost(x,y,min<c>) :- path(x,y,c).");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->kind, PlanKind::kShortestPath);
  EXPECT_EQ(plan->view, "path");
  EXPECT_EQ(plan->edb, "link");
  EXPECT_EQ(plan->cost_col, 2u);
  ASSERT_EQ(plan->agg_views.size(), 1u);
  EXPECT_EQ(plan->agg_views[0].agg, AggKind::kMin);
}

TEST(PlannerTest, RejectsNonMinAggregateOverPath) {
  auto plan = PlanSource(
      "path(x,y,c) :- link(x,y,c)."
      "path(x,y,c) :- link(x,z,c), path(z,y,c2)."
      "pathCount(x,count<y>) :- path(x,y,c).");
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnimplemented);
}

TEST(PlannerTest, PlansRegionShape) {
  auto plan = PlanSource(
      "activeRegion(r,x) :- seed(r,x), triggered(x)."
      "activeRegion(r,y) :- activeRegion(r,x), triggered(x), near(x,y)."
      "regionSizes(r,count<x>) :- activeRegion(r,x).");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->kind, PlanKind::kRegion);
  EXPECT_EQ(plan->view, "activeRegion");
  EXPECT_EQ(plan->edb, "seed");
  EXPECT_EQ(plan->trigger_edb, "triggered");
  EXPECT_EQ(plan->proximity_edb, "near");
  ASSERT_EQ(plan->agg_views.size(), 1u);
}

TEST(PlannerTest, RejectsFactForUningestedRelation) {
  auto plan = PlanSource(
      "r(x,y) :- link(x,y)."
      "r(x,y) :- link(x,z), r(z,y)."
      "cfg(42).");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().message().find("cfg"), std::string::npos);
}

TEST(PlannerTest, CollectsGroundFacts) {
  auto plan = PlanSource(
      "r(x,y) :- link(x,y)."
      "r(x,y) :- link(x,z), r(z,y)."
      "link(0,1). link(1,2).");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->facts.size(), 2u);
  EXPECT_EQ(plan->facts[0].head.predicate, "link");
}

TEST(PlannerTest, VariableNamesAreIrrelevant) {
  auto plan = PlanSource(
      "hop(a,b) :- edge(a,b)."
      "hop(a,b) :- edge(a,m), hop(m,b).");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->view, "hop");
  EXPECT_EQ(plan->edb, "edge");
}

TEST(PlannerTest, AcceptsAggregateViewsOverRecursion) {
  auto plan = PlanSource(
      "reachable(x,y) :- link(x,y)."
      "reachable(x,y) :- link(x,z), reachable(z,y)."
      "fanout(x,count<y>) :- reachable(x,y).");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->agg_views.size(), 1u);
  EXPECT_EQ(plan->agg_views[0].name, "fanout");
  EXPECT_EQ(plan->agg_views[0].agg, AggKind::kCount);
  EXPECT_EQ(plan->agg_views[0].group_cols, (std::vector<size_t>{0}));
  EXPECT_EQ(plan->agg_views[0].value_col, 1u);
}

TEST(PlannerTest, RejectsNonRecursivePrograms) {
  auto plan = PlanSource("f(x) :- g(x).");
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnimplemented);
}

TEST(PlannerTest, RejectsNonLinearRecursion) {
  auto plan = PlanSource(
      "reachable(x,y) :- link(x,y)."
      "reachable(x,y) :- reachable(x,z), reachable(z,y).");
  EXPECT_FALSE(plan.ok());
}

TEST(PlannerTest, RejectsWrongJoinShapeWithRuleContext) {
  // Swapped head: computes the reverse closure, which matches neither
  // linear orientation. Malformed shapes are InvalidArgument with the
  // offending rule and its source line.
  auto plan = PlanSource(
      "r(x,y) :- link(x,y).\n"
      "r(x,y) :- link(y,z), r(z,x).");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().message().find("line 2"), std::string::npos)
      << plan.status().ToString();
  EXPECT_NE(plan.status().message().find("r(x,y)"), std::string::npos);
}

TEST(PlannerTest, RejectsBaseRuleThatDoesNotCopyTheEdb) {
  auto plan = PlanSource(
      "r(x,y) :- link(y,x).\n"
      "r(x,y) :- link(x,z), r(z,y).");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().message().find("line 1"), std::string::npos);
}

TEST(PlannerTest, RejectsRuleOutsideThePlan) {
  auto plan = PlanSource(
      "r(x,y) :- link(x,y)."
      "r(x,y) :- link(x,z), r(z,y)."
      "stray(x) :- other(x).");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().message().find("stray"), std::string::npos);
}

TEST(PlannerTest, ProgramRoundTripsThroughToString) {
  auto program = Parse(kReachable);
  ASSERT_TRUE(program.ok());
  auto reparsed = Parse(program->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(program->ToString(), reparsed->ToString());
}

}  // namespace
}  // namespace datalog
}  // namespace recnet
