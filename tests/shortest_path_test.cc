#include "engine/shortest_path_runtime.h"

#include <gtest/gtest.h>

#include "queries/reference.h"
#include "topology/transit_stub.h"
#include "topology/workload.h"

namespace recnet {
namespace {

RuntimeOptions Opts() {
  RuntimeOptions opts;
  opts.prov = ProvMode::kAbsorption;
  opts.ship = ShipMode::kLazy;
  opts.num_physical = 1000;
  opts.message_budget = 5'000'000;
  return opts;
}

void ExpectAggregatesMatchReference(const ShortestPathRuntime& rt, int n,
                                    const std::vector<LinkTuple>& links,
                                    bool check_cost, bool check_hops) {
  ReferenceShortestPaths ref = ReferenceShortest(n, links);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (check_cost) {
        auto expect = ref.min_cost[static_cast<size_t>(s)][static_cast<size_t>(d)];
        auto got = rt.MinCost(s, d);
        ASSERT_EQ(got.has_value(), expect.has_value()) << s << "->" << d;
        if (expect.has_value()) {
          EXPECT_DOUBLE_EQ(*got, *expect) << s << "->" << d;
        }
      }
      if (check_hops) {
        auto expect = ref.min_hops[static_cast<size_t>(s)][static_cast<size_t>(d)];
        auto got = rt.MinHops(s, d);
        ASSERT_EQ(got.has_value(), expect.has_value()) << s << "->" << d;
        if (expect.has_value()) {
          EXPECT_EQ(*got, *expect) << s << "->" << d;
        }
      }
    }
  }
}

TEST(ShortestPathTest, DiamondPrefersCheaperRoute) {
  //   0 -> 1 (1.0) -> 3 (1.0)   total 2.0
  //   0 -> 2 (5.0) -> 3 (5.0)   total 10.0
  ShortestPathRuntime rt(4, Opts(), AggSelPolicy::kMulti);
  rt.InsertLink(0, 1, 1.0);
  rt.InsertLink(1, 3, 1.0);
  rt.InsertLink(0, 2, 5.0);
  rt.InsertLink(2, 3, 5.0);
  ASSERT_TRUE(rt.Run());
  EXPECT_DOUBLE_EQ(*rt.MinCost(0, 3), 2.0);
  EXPECT_EQ(*rt.MinHops(0, 3), 2);
  EXPECT_EQ(*rt.CheapestPathVec(0, 3), "0.1.3");
}

TEST(ShortestPathTest, CheapestAndFewestHopsCanDiffer) {
  // Direct hop is expensive; the detour is cheap but long.
  ShortestPathRuntime rt(4, Opts(), AggSelPolicy::kMulti);
  rt.InsertLink(0, 3, 10.0);
  rt.InsertLink(0, 1, 1.0);
  rt.InsertLink(1, 2, 1.0);
  rt.InsertLink(2, 3, 1.0);
  ASSERT_TRUE(rt.Run());
  auto sc = rt.ShortestCheapestPath(0, 3);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->cheapest_vec, "0.1.2.3");
  EXPECT_DOUBLE_EQ(sc->cost, 3.0);
  EXPECT_EQ(sc->fewest_vec, "0.3");
  EXPECT_EQ(sc->length, 1);
}

TEST(ShortestPathTest, UnreachablePairsHaveNoEntry) {
  ShortestPathRuntime rt(3, Opts(), AggSelPolicy::kMulti);
  rt.InsertLink(0, 1, 1.0);
  ASSERT_TRUE(rt.Run());
  EXPECT_FALSE(rt.MinCost(0, 2).has_value());
  EXPECT_FALSE(rt.MinCost(1, 0).has_value());
  EXPECT_FALSE(rt.ShortestCheapestPath(0, 2).has_value());
}

class SpPolicyTest : public ::testing::TestWithParam<AggSelPolicy> {};

TEST_P(SpPolicyTest, RandomTopologyMatchesDijkstra) {
  TransitStubOptions topt;
  topt.transit_nodes = 2;
  topt.stubs_per_transit = 1;
  topt.stub_size = 4;
  topt.seed = 3;
  Topology topo = MakeTransitStub(topt);  // 10 nodes.
  std::vector<LinkTuple> links = DirectedLinks(topo);
  ShortestPathRuntime rt(topo.num_nodes, Opts(), GetParam());
  for (const LinkTuple& l : links) rt.InsertLink(l.src, l.dst, l.cost_ms);
  ASSERT_TRUE(rt.Run());
  bool cost = GetParam() != AggSelPolicy::kHops;
  bool hops = GetParam() != AggSelPolicy::kCost;
  ExpectAggregatesMatchReference(rt, topo.num_nodes, links, cost, hops);
}

INSTANTIATE_TEST_SUITE_P(Policies, SpPolicyTest,
                         ::testing::Values(AggSelPolicy::kMulti,
                                           AggSelPolicy::kCost,
                                           AggSelPolicy::kHops));

TEST(ShortestPathDeletionTest, DeletionReroutesToAlternative) {
  ShortestPathRuntime rt(4, Opts(), AggSelPolicy::kMulti);
  rt.InsertLink(0, 1, 1.0);
  rt.InsertLink(1, 3, 1.0);
  rt.InsertLink(0, 2, 5.0);
  rt.InsertLink(2, 3, 5.0);
  ASSERT_TRUE(rt.Run());
  ASSERT_DOUBLE_EQ(*rt.MinCost(0, 3), 2.0);
  rt.DeleteLink(1, 3);
  ASSERT_TRUE(rt.Run());
  ASSERT_TRUE(rt.MinCost(0, 3).has_value());
  EXPECT_DOUBLE_EQ(*rt.MinCost(0, 3), 10.0);
  EXPECT_EQ(*rt.CheapestPathVec(0, 3), "0.2.3");
}

TEST(ShortestPathDeletionTest, DeletionCanDisconnect) {
  ShortestPathRuntime rt(3, Opts(), AggSelPolicy::kMulti);
  rt.InsertLink(0, 1, 1.0);
  rt.InsertLink(1, 2, 1.0);
  ASSERT_TRUE(rt.Run());
  rt.DeleteLink(0, 1);
  ASSERT_TRUE(rt.Run());
  EXPECT_FALSE(rt.MinCost(0, 2).has_value());
  EXPECT_FALSE(rt.MinCost(0, 1).has_value());
  EXPECT_TRUE(rt.MinCost(1, 2).has_value());
}

TEST(ShortestPathDeletionTest, RandomDeletionsMatchDijkstra) {
  TransitStubOptions topt;
  topt.transit_nodes = 2;
  topt.stubs_per_transit = 1;
  topt.stub_size = 3;
  topt.seed = 5;
  Topology topo = MakeTransitStub(topt);  // 8 nodes.
  std::vector<LinkTuple> links = DirectedLinks(topo);
  ShortestPathRuntime rt(topo.num_nodes, Opts(), AggSelPolicy::kMulti);
  for (const LinkTuple& l : links) rt.InsertLink(l.src, l.dst, l.cost_ms);
  ASSERT_TRUE(rt.Run());
  // Delete a third of the links one at a time, checking after each.
  std::vector<LinkTuple> live = links;
  for (int i = 0; i < static_cast<int>(links.size()) / 3; ++i) {
    LinkTuple victim = live.front();
    live.erase(live.begin());
    rt.DeleteLink(victim.src, victim.dst);
    ASSERT_TRUE(rt.Run());
    ExpectAggregatesMatchReference(rt, topo.num_nodes, live, true, true);
  }
}

TEST(AggSelEffectivenessTest, NoAggSelShipsStrictlyMore) {
  // Aggregate selection prunes tuples that cannot affect the aggregates
  // (paper §6 / Figure 14): without it the same workload costs strictly
  // more messages (and may not terminate on cyclic graphs — bounded here
  // by the budget).
  TransitStubOptions topt;
  topt.transit_nodes = 2;
  topt.stubs_per_transit = 1;
  topt.stub_size = 3;
  topt.seed = 7;
  Topology topo = MakeTransitStub(topt);
  auto run = [&](AggSelPolicy policy) {
    RuntimeOptions opts = Opts();
    opts.message_budget = 200'000;
    ShortestPathRuntime rt(topo.num_nodes, opts, policy);
    for (const LinkTuple& l : DirectedLinks(topo)) {
      rt.InsertLink(l.src, l.dst, l.cost_ms);
    }
    rt.Run();  // May hit the budget for kNone.
    return rt.Metrics().messages;
  };
  EXPECT_LT(run(AggSelPolicy::kMulti), run(AggSelPolicy::kNone));
}

TEST(AggSelPolicyNameTest, Names) {
  EXPECT_STREQ(AggSelPolicyName(AggSelPolicy::kMulti), "multi");
  EXPECT_STREQ(AggSelPolicyName(AggSelPolicy::kCost), "cost");
  EXPECT_STREQ(AggSelPolicyName(AggSelPolicy::kHops), "hops");
  EXPECT_STREQ(AggSelPolicyName(AggSelPolicy::kNone), "none");
}

}  // namespace
}  // namespace recnet
