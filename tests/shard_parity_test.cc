// Shard-determinism suite: the sharded network layer must be a pure
// execution-strategy change. For ANY shard count the superstep drain (and
// its parallel worker schedule) has to reproduce, bit for bit, the classic
// single-FIFO router: per-view NetworkStats counters (everything except
// delivery `batches`), converged view contents, and Scan results — across
// all ProvModes and maintenance strategies, on randomized topologies and
// update streams.

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "engine/reachable_runtime.h"
#include "engine/session.h"
#include "engine/shortest_path_runtime.h"
#include "engine/region_runtime.h"
#include "topology/sensor_grid.h"

namespace recnet {
namespace {

// Force the genuinely multi-threaded drain regardless of the CI machine's
// core count: parity against the sequential baseline is exactly the
// property the parallel worker schedule must uphold, and the TSan job
// needs real concurrent workers to have anything to check.
class ForceParallelDrain : public ::testing::Environment {
 public:
  void SetUp() override { Router::OverrideParallelWidth(4); }
  void TearDown() override { Router::OverrideParallelWidth(0); }
};
const auto* const kForceParallelDrain =
    ::testing::AddGlobalTestEnvironment(new ForceParallelDrain);

// Shard counts exercised against the shards=1 baseline (include one count
// larger than some test topologies so empty shards are covered too).
const int kShardCounts[] = {2, 3, 7};

void ExpectStatsEqual(const NetworkStats& got, const NetworkStats& want,
                      const char* label) {
  EXPECT_EQ(got.messages, want.messages) << label;
  EXPECT_EQ(got.bytes, want.bytes) << label;
  EXPECT_EQ(got.local_messages, want.local_messages) << label;
  EXPECT_EQ(got.insert_messages, want.insert_messages) << label;
  EXPECT_EQ(got.delete_messages, want.delete_messages) << label;
  EXPECT_EQ(got.kill_messages, want.kill_messages) << label;
  EXPECT_EQ(got.prov_bytes, want.prov_bytes) << label;
  EXPECT_EQ(got.prov_samples, want.prov_samples) << label;
  EXPECT_EQ(got.aborted_runs, want.aborted_runs) << label;
  EXPECT_EQ(got.dropped_messages, want.dropped_messages) << label;
  EXPECT_EQ(got.link_dropped, want.link_dropped) << label;
  EXPECT_EQ(got.link_duplicated, want.link_duplicated) << label;
  EXPECT_EQ(got.link_retried, want.link_retried) << label;
  EXPECT_EQ(got.per_peer_bytes, want.per_peer_bytes) << label;
  // `batches` is the one permitted difference: shard-local queues can
  // coalesce runs differently than the global FIFO.
}

struct GraphWorkload {
  std::vector<std::pair<int, int>> inserts;
  std::vector<std::pair<int, int>> deletes;
};

// A random directed graph plus a random deletion subset, seed-deterministic.
GraphWorkload MakeGraphWorkload(int num_nodes, int num_links, uint64_t seed) {
  Rng rng(seed);
  GraphWorkload w;
  std::set<std::pair<int, int>> used;
  while (static_cast<int>(w.inserts.size()) < num_links) {
    int src = static_cast<int>(rng.NextBounded(num_nodes));
    int dst = static_cast<int>(rng.NextBounded(num_nodes));
    if (src == dst) continue;
    if (!used.insert({src, dst}).second) continue;
    w.inserts.emplace_back(src, dst);
  }
  for (const auto& link : w.inserts) {
    if (rng.NextBool(0.25)) w.deletes.push_back(link);
  }
  return w;
}

struct Strategy {
  const char* name;
  ProvMode prov;
  ShipMode ship;
};

const Strategy kStrategies[] = {
    {"DRed", ProvMode::kSet, ShipMode::kDirect},
    {"AbsorptionLazy", ProvMode::kAbsorption, ShipMode::kLazy},
    {"AbsorptionEager", ProvMode::kAbsorption, ShipMode::kEager},
    {"RelativeLazy", ProvMode::kRelative, ShipMode::kLazy},
    {"RelativeEager", ProvMode::kRelative, ShipMode::kEager},
};

RuntimeOptions ShardedOptions(const Strategy& strategy, int shards) {
  RuntimeOptions opts;
  opts.prov = strategy.prov;
  opts.ship = strategy.ship;
  opts.num_physical = 5;
  // Small eager window so eager flushes actually fire inside the drain.
  opts.batch_window = 16;
  opts.shards = shards;
  return opts;
}

struct ReachableOutcome {
  NetworkStats insert_stats;
  NetworkStats delete_stats;
  std::vector<std::set<LogicalNode>> view;
};

ReachableOutcome RunReachable(const Strategy& strategy, int shards,
                              int num_nodes, const GraphWorkload& w) {
  ReachableRuntime rt(num_nodes, ShardedOptions(strategy, shards));
  for (const auto& [src, dst] : w.inserts) rt.InsertLink(src, dst);
  EXPECT_TRUE(rt.Run());
  ReachableOutcome out;
  out.insert_stats = rt.router().stats();
  rt.ResetMetrics();
  for (const auto& [src, dst] : w.deletes) rt.DeleteLink(src, dst);
  EXPECT_TRUE(rt.Run());
  out.delete_stats = rt.router().stats();
  for (int n = 0; n < num_nodes; ++n) out.view.push_back(rt.ReachableFrom(n));
  return out;
}

class ShardParityTest : public ::testing::TestWithParam<Strategy> {};

INSTANTIATE_TEST_SUITE_P(AllStrategies, ShardParityTest,
                         ::testing::ValuesIn(kStrategies),
                         [](const ::testing::TestParamInfo<Strategy>& info) {
                           return std::string(info.param.name);
                         });

TEST_P(ShardParityTest, ReachableRandomTopologies) {
  const Strategy& strategy = GetParam();
  for (uint64_t seed : {1u, 7u}) {
    int num_nodes = seed == 1 ? 20 : 4;  // Second round: fewer nodes than
                                         // shards, so some shards are empty.
    int num_links = seed == 1 ? 44 : 8;
    GraphWorkload w = MakeGraphWorkload(num_nodes, num_links, seed);
    ReachableOutcome base = RunReachable(strategy, 1, num_nodes, w);
    for (int shards : kShardCounts) {
      SCOPED_TRACE(testing::Message() << strategy.name << " shards=" << shards
                                      << " seed=" << seed);
      ReachableOutcome got = RunReachable(strategy, shards, num_nodes, w);
      ExpectStatsEqual(got.insert_stats, base.insert_stats, "insert-phase");
      ExpectStatsEqual(got.delete_stats, base.delete_stats, "delete-phase");
      EXPECT_EQ(got.view, base.view);
    }
  }
}

TEST(ShardParityTest, ShortestPathWithAggregateSelection) {
  Rng rng(11);
  int num_nodes = 12;
  std::vector<std::tuple<int, int, double>> links;
  std::set<std::pair<int, int>> used;
  while (links.size() < 26) {
    int src = static_cast<int>(rng.NextBounded(num_nodes));
    int dst = static_cast<int>(rng.NextBounded(num_nodes));
    if (src == dst || !used.insert({src, dst}).second) continue;
    links.emplace_back(src, dst, 1.0 + static_cast<double>(rng.NextBounded(9)));
  }
  auto run = [&](int shards) {
    Strategy absorption{"AbsorptionLazy", ProvMode::kAbsorption,
                        ShipMode::kLazy};
    ShortestPathRuntime rt(num_nodes, ShardedOptions(absorption, shards),
                           AggSelPolicy::kMulti);
    for (const auto& [src, dst, cost] : links) rt.InsertLink(src, dst, cost);
    EXPECT_TRUE(rt.Run());
    rt.DeleteLink(std::get<0>(links[3]), std::get<1>(links[3]));
    rt.DeleteLink(std::get<0>(links[9]), std::get<1>(links[9]));
    EXPECT_TRUE(rt.Run());
    std::vector<std::pair<NetworkStats, std::vector<double>>> out;
    std::vector<double> costs;
    for (int s = 0; s < num_nodes; ++s) {
      for (int d = 0; d < num_nodes; ++d) {
        auto c = rt.MinCost(s, d);
        costs.push_back(c.has_value() ? *c : -1.0);
      }
    }
    return std::make_pair(rt.router().stats(), costs);
  };
  auto base = run(1);
  for (int shards : kShardCounts) {
    SCOPED_TRACE(shards);
    auto got = run(shards);
    ExpectStatsEqual(got.first, base.first, "shortest-path");
    EXPECT_EQ(got.second, base.second);
  }
}

TEST(ShardParityTest, RegionTriggerWaves) {
  SensorGridOptions grid;
  grid.grid_dim = 5;
  grid.num_seeds = 3;
  grid.seed = 13;
  SensorField field = MakeSensorGrid(grid);
  for (const Strategy& strategy : kStrategies) {
    if (strategy.ship == ShipMode::kEager) continue;  // Keep runtime modest.
    auto run = [&](int shards) {
      RegionRuntime rt(field, ShardedOptions(strategy, shards));
      Rng rng(3);
      std::vector<int> triggered;
      for (int s = 0; s < field.num_sensors; ++s) {
        if (rng.NextBool(0.6)) {
          rt.Trigger(s);
          triggered.push_back(s);
        }
      }
      EXPECT_TRUE(rt.Run());
      NetworkStats insert_stats = rt.router().stats();
      rt.ResetMetrics();
      for (size_t i = 0; i < triggered.size(); i += 3) {
        rt.Untrigger(triggered[i]);
      }
      EXPECT_TRUE(rt.Run());
      std::vector<std::set<int>> members;
      for (int r = 0; r < rt.num_regions(); ++r) {
        members.push_back(rt.RegionMembers(r));
      }
      return std::make_tuple(insert_stats, rt.router().stats(), members,
                             rt.LargestRegions());
    };
    auto base = run(1);
    for (int shards : kShardCounts) {
      SCOPED_TRACE(testing::Message() << strategy.name << " shards=" << shards);
      auto got = run(shards);
      ExpectStatsEqual(std::get<0>(got), std::get<0>(base), "insert-phase");
      ExpectStatsEqual(std::get<1>(got), std::get<1>(base), "delete-phase");
      EXPECT_EQ(std::get<2>(got), std::get<2>(base));
      EXPECT_EQ(std::get<3>(got), std::get<3>(base));
    }
  }
}

// Facade-level parity: compiled programs, materialized scan caches (the
// incremental per-shard delta-log path), and soft-state expiry all behave
// identically on a sharded substrate.
TEST(ShardParityTest, EngineScanCachesAcrossShards) {
  constexpr char kProgram[] = R"(
    reachable(x,y) :- link(x,y).
    reachable(x,y) :- link(x,z), reachable(z,y).
    fanout(x,count<y>) :- reachable(x,y).
  )";
  GraphWorkload w = MakeGraphWorkload(14, 30, 21);
  auto run = [&](int shards, ProvMode prov) {
    EngineOptions options;
    options.num_nodes = 14;
    options.runtime.prov = prov;
    options.runtime.num_physical = 5;
    options.runtime.shards = shards;
    auto engine = Engine::Compile(kProgram, options);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    for (size_t i = 0; i + 4 < w.inserts.size(); ++i) {
      auto [src, dst] = w.inserts[i];
      EXPECT_TRUE(
          (*engine)->Insert("link", {double(src), double(dst)}).ok());
    }
    EXPECT_TRUE((*engine)->Apply().ok());
    // Materialize the caches, then mutate so Apply patches them from the
    // (per-shard) delta logs. Inserts and deletes go in separate Applies:
    // deleting a link whose insert is still queued trips a (pre-existing)
    // DRed over-deletion storm that exhausts the budget at every shard
    // count alike.
    std::vector<Tuple> first_scan = *(*engine)->Scan("reachable");
    for (size_t i = w.inserts.size() - 4; i < w.inserts.size(); ++i) {
      auto [src, dst] = w.inserts[i];
      EXPECT_TRUE(
          (*engine)->Insert("link", {double(src), double(dst)}).ok());
    }
    EXPECT_TRUE((*engine)->Apply().ok());
    for (size_t i = 0; i < w.deletes.size() && i < 5; ++i) {
      auto [src, dst] = w.deletes[i];
      EXPECT_TRUE(
          (*engine)->Delete("link", {double(src), double(dst)}).ok());
    }
    EXPECT_TRUE((*engine)->Apply().ok());
    RunMetrics m = (*engine)->Metrics();
    return std::make_tuple(first_scan, *(*engine)->Scan("reachable"),
                           *(*engine)->Scan("fanout"), m.messages,
                           m.kill_messages);
  };
  for (ProvMode prov :
       {ProvMode::kAbsorption, ProvMode::kRelative, ProvMode::kSet}) {
    auto base = run(1, prov);
    for (int shards : kShardCounts) {
      SCOPED_TRACE(testing::Message()
                   << ProvModeName(prov) << " shards=" << shards);
      auto got = run(shards, prov);
      EXPECT_EQ(std::get<0>(got), std::get<0>(base));
      EXPECT_EQ(std::get<1>(got), std::get<1>(base));
      EXPECT_EQ(std::get<2>(got), std::get<2>(base));
      EXPECT_EQ(std::get<3>(got), std::get<3>(base));
      EXPECT_EQ(std::get<4>(got), std::get<4>(base));
    }
  }
}

// Multi-view sessions on a sharded substrate: per-view counters and scans
// match the single-shard session exactly.
TEST(ShardParityTest, SessionViewsAcrossShards) {
  constexpr char kReach[] = R"(
    reachable(x,y) :- link(x,y).
    reachable(x,y) :- link(x,z), reachable(z,y).
  )";
  constexpr char kSpan[] = R"(
    span(x,y) :- link(x,y).
    span(x,y) :- span(x,z), link(z,y).
  )";
  GraphWorkload w = MakeGraphWorkload(10, 20, 5);
  auto run = [&](int shards) {
    SessionOptions so;
    so.num_nodes = 10;
    so.num_physical = 4;
    so.shards = shards;
    Session session(so);
    auto reach = session.AddProgram(kReach, {});
    auto span = session.AddProgram(kSpan, {});
    EXPECT_TRUE(reach.ok() && span.ok());
    for (const auto& [src, dst] : w.inserts) {
      EXPECT_TRUE(session.Insert("link", {double(src), double(dst)}).ok());
    }
    EXPECT_TRUE(session.Apply().ok());
    for (const auto& [src, dst] : w.deletes) {
      EXPECT_TRUE(session.Delete("link", {double(src), double(dst)}).ok());
    }
    EXPECT_TRUE(session.Apply().ok());
    RunMetrics rm = (*reach)->Metrics();
    RunMetrics sm = (*span)->Metrics();
    return std::make_tuple(rm.messages, rm.kill_messages, sm.messages,
                           sm.kill_messages, *(*reach)->Scan("reachable"),
                           *(*span)->Scan("span"));
  };
  auto base = run(1);
  for (int shards : kShardCounts) {
    SCOPED_TRACE(shards);
    EXPECT_EQ(run(shards), base);
  }
}

// Budget aborts cut the sharded drain at the exact same global delivery as
// the sequential router, so even ">budget" cells are reproducible across
// shard counts (message budgets only — wall-clock cutoffs are inherently
// machine-dependent).
TEST(ShardParityTest, BudgetAbortCutsAtSameDelivery) {
  GraphWorkload w = MakeGraphWorkload(16, 40, 9);
  auto run = [&](int shards) {
    Strategy absorption{"AbsorptionLazy", ProvMode::kAbsorption,
                        ShipMode::kLazy};
    RuntimeOptions opts = ShardedOptions(absorption, shards);
    opts.message_budget = 300;  // Exhausts mid-fixpoint.
    ReachableRuntime rt(16, opts);
    for (const auto& [src, dst] : w.inserts) rt.InsertLink(src, dst);
    EXPECT_FALSE(rt.Run());
    return rt.router().stats();
  };
  NetworkStats base = run(1);
  EXPECT_EQ(base.aborted_runs, 1u);
  EXPECT_GT(base.dropped_messages, 0u);
  for (int shards : kShardCounts) {
    SCOPED_TRACE(shards);
    ExpectStatsEqual(run(shards), base, "aborted");
  }
}

// Wall-clock cutoffs are inherently machine-dependent (see the caveat
// above), so the deadline-exceeded drain is pinned behaviorally rather than
// bit-for-bit: at EVERY shard count an already-expired time budget must
// abort the run, book exactly one aborted run, purge (and uncharge) the
// initiating view's queued envelopes, and freeze a non-converged metrics
// snapshot — the sequential poll loop and the superstep workers' shared
// deadline have to agree on all of that.
TEST(ShardParityTest, DeadlineExceededDrainAbortsAtEveryShardCount) {
  GraphWorkload w = MakeGraphWorkload(16, 40, 9);
  for (int shards : {1, 2, 3, 7}) {
    SCOPED_TRACE(shards);
    Strategy absorption{"AbsorptionLazy", ProvMode::kAbsorption,
                        ShipMode::kLazy};
    RuntimeOptions opts = ShardedOptions(absorption, shards);
    opts.time_budget_s = 1e-9;  // Expired before the first poll point.
    ReachableRuntime rt(16, opts);
    for (const auto& [src, dst] : w.inserts) rt.InsertLink(src, dst);
    EXPECT_FALSE(rt.Run());
    NetworkStats stats = rt.router().stats();
    EXPECT_EQ(stats.aborted_runs, 1u);
    EXPECT_GT(stats.dropped_messages, 0u);
    RunMetrics m = rt.Metrics();
    EXPECT_FALSE(m.converged);
    // The purge uncharged the dropped envelopes: the frozen charge counter
    // only covers deliveries that actually happened before the cutoff.
    EXPECT_EQ(m.messages, stats.messages);
    EXPECT_EQ(m.dropped_messages, stats.dropped_messages);
  }
}

}  // namespace
}  // namespace recnet
